(* Benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks — one Test.make per paper table/figure,
      each timing the simulation workload that regenerates that item (a
      single representative data point, so the suite completes quickly).
      This measures the *harness* cost on the host machine.

   2. The actual reproduction: every figure and table regenerated at the
      default sweep options — the output to compare against the paper
      (also recorded in EXPERIMENTS.md). *)

open Bechamel
open Bechamel.Toolkit
open Pnp_engine
open Pnp_harness

let quickest =
  {
    Pnp_figures.Opts.max_procs = 4;
    seeds = 1;
    warmup = Pnp_util.Units.ms 100.0;
    measure = Pnp_util.Units.ms 150.0;
  }

let cfg_point ?(arch = Arch.challenge_100) ?(procs = 4) ?(side = Config.Send)
    ?(protocol = Config.Tcp) ?(checksum = true) ?(lock_disc = Lock.Unfair)
    ?(tcp_locking = Pnp_proto.Tcp.One) ?(assume_in_order = false) ?(ticketing = false)
    ?(refcnt_mode = Atomic_ctr.Ll_sc) ?(message_caching = true) ?(connections = 1) () =
  Config.v ~arch ~procs ~side ~protocol ~payload:4096 ~checksum ~lock_disc ~tcp_locking
    ~assume_in_order ~ticketing ~refcnt_mode ~message_caching ~connections
    ~warmup:quickest.Pnp_figures.Opts.warmup ~measure:quickest.Pnp_figures.Opts.measure ()

let point name cfg =
  Test.make ~name (Staged.stage (fun () -> ignore (Run.run cfg)))

let tests =
  Test.make_grouped ~name:"figures"
    [
      point "fig2-3:udp-send" (cfg_point ~protocol:Config.Udp ~side:Config.Send ());
      point "fig4-5:udp-recv" (cfg_point ~protocol:Config.Udp ~side:Config.Recv ());
      point "fig6-7:tcp-send" (cfg_point ~side:Config.Send ());
      point "fig8-9:tcp-recv" (cfg_point ~side:Config.Recv ());
      point "fig10:mcs-recv" (cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ());
      point "table1:ooo" (cfg_point ~side:Config.Recv ~procs:4 ());
      point "fig11:ticketing" (cfg_point ~side:Config.Recv ~ticketing:true ());
      point "send-ooo:wire" (cfg_point ~side:Config.Send ~procs:4 ());
      point "fig12:multiconn"
        (cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ~connections:4 ());
      point "fig13:tcp6-send" (cfg_point ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Six ());
      point "fig14:tcp6-recv" (cfg_point ~side:Config.Recv ~tcp_locking:Pnp_proto.Tcp.Six ());
      point "fig15:locked-refs" (cfg_point ~refcnt_mode:Atomic_ctr.Locked ());
      point "fig16:no-caching" (cfg_point ~message_caching:false ());
      point "fig17-18:power-series"
        (cfg_point ~arch:Arch.power_series_33 ~side:Config.Recv ());
      Test.make ~name:"micro-cksum"
        (Staged.stage (fun () ->
             ignore (Pnp_figures.Fig_micro.checksum_points quickest)));
      point "ext-clp"
        (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~lock_disc:Lock.Fifo ~connections:8 ~placement:Config.Connection_level
           ~skew:1.0 ~offered_mbps:360.0 ~procs:4
           ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
      point "ext-grant" (cfg_point ~side:Config.Recv ~lock_disc:Lock.Barging ());
      point "ext-jitter" (cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ());
      point "ext-cksum-lock"
        (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~lock_disc:Lock.Fifo ~cksum_under_lock:true ~procs:4
           ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
      point "ext-pres"
        (Config.v ~protocol:Config.Udp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~presentation:true ~procs:4 ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
      point "ext-steering:last-sender"
        (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~connections:256 ~steering:Pnp_driver.Steer.Last_sender ~demux_shards:64
           ~procs:4 ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
      point "ext-scr:scr-recv"
        (cfg_point ~side:Config.Recv ~tcp_locking:Pnp_proto.Tcp.Scr ());
    ]

let run_bechamel () =
  let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      (Instance.monotonic_clock) raw
  in
  Printf.printf "%-28s %16s\n" "benchmark" "host ms/run";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-28s %16.2f\n" name (est /. 1e6)
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results;
  flush stdout

(* --quick: the CI perf gate.  A fixed deterministic batch of sweep cells
   (the bechamel configurations, several seeds each) run with the
   sweep-cell memo OFF — the gate measures the engine, not the cache —
   and reported as one events-per-host-second figure.  [--out FILE]
   writes the profile as JSON; [--baseline FILE] compares against a
   previously written profile and fails (exit 1) on a >25% regression. *)

let quick_cells =
  [
    cfg_point ~protocol:Config.Udp ~side:Config.Send ();
    cfg_point ~protocol:Config.Udp ~side:Config.Recv ();
    cfg_point ~side:Config.Send ();
    cfg_point ~side:Config.Recv ();
    cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ();
    cfg_point ~side:Config.Recv ~ticketing:true ();
    cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ~connections:4 ();
    cfg_point ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Six ();
    cfg_point ~refcnt_mode:Atomic_ctr.Locked ();
    cfg_point ~message_caching:false ();
    cfg_point ~arch:Arch.power_series_33 ~side:Config.Recv ();
  ]

let quick_rounds = 4

let quick_json ~jobs ~best (d : Hostprof.delta) =
  Printf.sprintf
    "{\"bench\":\"quick\",\"jobs\":%d,\"rounds\":%d,\"cells\":%d,\"host\":{\"events\":%d,\"events_per_sec\":%.6g,\"mean_events_per_sec\":%.6g,\"elapsed_s\":%.6g,\"gc_minor_words\":%.6g,\"gc_major_words\":%.6g}}\n"
    jobs quick_rounds
    (List.length quick_cells)
    d.Hostprof.sim_events best (Hostprof.events_per_sec d) d.Hostprof.elapsed_s
    d.Hostprof.gc_minor_words d.Hostprof.gc_major_words

(* How to (re)record a baseline — printed whenever [--baseline FILE] is
   unusable, so the fix is in the error message, not in a doc hunt. *)
let baseline_help file =
  Printf.sprintf
    "expected a committed bench profile at %s (schema: {\"bench\":\"quick\",...,\
     \"host\":{...,\"events_per_sec\":N,...}}).\n\
     Record one with:  dune exec bench/main.exe -- --quick -j 2 --out %s\n\
     then commit it (the .gitignore negates BENCH_*.json)." file file

(* Pull ["events_per_sec": <num>] out of a baseline file without a JSON
   parser: find the field name, then read the number after the colon. *)
let baseline_events_per_sec file =
  if not (Sys.file_exists file) then begin
    Printf.eprintf "bench: baseline file %s does not exist.\n%s\n" file
      (baseline_help file);
    exit 2
  end;
  let ic =
    try open_in_bin file
    with Sys_error msg ->
      Printf.eprintf "bench: cannot read baseline %s (%s).\n%s\n" file msg
        (baseline_help file);
      exit 2
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let field = "\"events_per_sec\":" in
  let rec find i =
    if i + String.length field > String.length s then None
    else if String.sub s i (String.length field) = field then
      let j = i + String.length field in
      let k = ref j in
      while
        !k < String.length s
        && (match s.[!k] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub s j (!k - j))
    else find (i + 1)
  in
  find 0

let run_quick ~out ~baseline ~profile () =
  (* Measure the engine, not the cache. *)
  Run.set_cell_memo false;
  let seeds = 3 in
  let best = ref 0.0 in
  let rounds () =
    for round = 1 to quick_rounds do
      let (), rd =
        Hostprof.measure (fun () ->
            List.iter
              (fun cfg ->
                (* Distinct seeds per round so no two cells repeat even
                   if the memo were on by mistake. *)
                ignore
                  (Run.run_seeds { cfg with Config.seed = round * 100 } ~seeds))
              quick_cells)
      in
      let rate = Hostprof.events_per_sec rd in
      Printf.printf "  round %d/%d: %.0f events/sec\n%!" round quick_rounds rate;
      if rate > !best then best := rate
    done
  in
  let (), d =
    Hostprof.measure (fun () ->
        match profile with
        | None -> rounds ()
        | Some file ->
          let (), n = Profiler.profile ~file rounds in
          Printf.printf "  profile: %d samples -> %s (collapsed stacks)\n" n file)
  in
  Report.print_host_profile ~title:"bench --quick host profile" d;
  (* The gate metric is the BEST round, not the mean: a transient stall
     on a shared CI host slows some rounds, but nothing makes the engine
     run faster than it can, so max-of-rounds tracks the code while
     shrugging off noise. *)
  Printf.printf "  best round: %.0f events/sec\n" !best;
  (match out with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     output_string oc (quick_json ~jobs:(Pool.jobs ()) ~best:!best d);
     close_out oc;
     Printf.printf "wrote %s\n" file);
  match baseline with
  | None -> ()
  | Some file ->
    (match baseline_events_per_sec file with
     | None ->
       Printf.eprintf
         "bench: baseline %s has no \"events_per_sec\" field — an old-schema \
          or corrupt profile.\n%s\n"
         file (baseline_help file);
       exit 2
     | Some base ->
       let fresh = !best in
       let ratio = if base > 0.0 then fresh /. base else 1.0 in
       Printf.printf "baseline %s: %.0f events/sec; fresh: %.0f (%.2fx)\n" file base
         fresh ratio;
       if ratio < 0.8 then begin
         Printf.eprintf
           "bench: PERF REGRESSION: %.0f events/sec is less than 80%% of the \
            baseline %.0f\n"
           fresh base;
         exit 1
       end
       else Printf.printf "perf gate: ok (threshold 0.8x)\n")

type mode = {
  jobs : int;
  quick : bool;
  out : string option;
  baseline : string option;
  profile : string option;
}

(* `bench/main.exe [-j N] [--quick] [--out FILE] [--baseline FILE]
   [--profile FILE]`: five flags, so a hand scan beats cmdliner here. *)
let mode_of_argv () =
  let m =
    ref
      {
        jobs = Pool.default_jobs ();
        quick = false;
        out = None;
        baseline = None;
        profile = None;
      }
  in
  let rec scan = function
    | "-j" :: n :: rest | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> m := { !m with jobs = n }
       | _ ->
         Printf.eprintf "bench: -j expects a positive integer, got %S\n" n;
         exit 2);
      scan rest
    | "--quick" :: rest ->
      m := { !m with quick = true };
      scan rest
    | "--out" :: f :: rest ->
      m := { !m with out = Some f };
      scan rest
    | "--baseline" :: f :: rest ->
      m := { !m with baseline = Some f };
      scan rest
    | "--profile" :: f :: rest ->
      m := { !m with profile = Some f };
      scan rest
    | arg :: _ ->
      Printf.eprintf
        "bench: unknown argument %S (usage: bench [-j N] [--quick] [--out FILE] \
         [--baseline FILE] [--profile FILE])\n"
        arg;
      exit 2
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  !m

(* Same minor-heap sizing as bin/repro.ml: the sweeps allocate tens of
   words per simulated event, and GC scheduling never feeds back into
   simulated time. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 }

let () =
  let m = mode_of_argv () in
  Pool.set_jobs m.jobs;
  if m.quick then run_quick ~out:m.out ~baseline:m.baseline ~profile:m.profile ()
  else begin
    Printf.printf "### Bechamel: host cost of regenerating each figure/table ###\n%!";
    (* Micro-benchmarks call Run.run on the same configuration over and
       over; with the memo on they would measure a Hashtbl lookup. *)
    Run.set_cell_memo false;
    run_bechamel ();
    Run.set_cell_memo true;
    Run.clear_cell_memo ();
    Printf.printf "\n### Reproduction: every figure and table (-j %d) ###\n%!"
      (Pool.jobs ());
    (* Mirror every printed table to BENCH_<id>.json next to the run, each
       stamped with the jobs level and the data phase's wall-clock cost. *)
    Pnp_figures.Registry.run_all ~json:(Json_out.make ~dir:"." ())
      Pnp_figures.Opts.default
  end
