(* Benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks — one Test.make per paper table/figure,
      each timing the simulation workload that regenerates that item (a
      single representative data point, so the suite completes quickly).
      This measures the *harness* cost on the host machine.

   2. The actual reproduction: every figure and table regenerated at the
      default sweep options — the output to compare against the paper
      (also recorded in EXPERIMENTS.md). *)

open Bechamel
open Bechamel.Toolkit
open Pnp_engine
open Pnp_harness

let quickest =
  {
    Pnp_figures.Opts.max_procs = 4;
    seeds = 1;
    warmup = Pnp_util.Units.ms 100.0;
    measure = Pnp_util.Units.ms 150.0;
  }

let cfg_point ?(arch = Arch.challenge_100) ?(procs = 4) ?(side = Config.Send)
    ?(protocol = Config.Tcp) ?(checksum = true) ?(lock_disc = Lock.Unfair)
    ?(tcp_locking = Pnp_proto.Tcp.One) ?(assume_in_order = false) ?(ticketing = false)
    ?(refcnt_mode = Atomic_ctr.Ll_sc) ?(message_caching = true) ?(connections = 1) () =
  Config.v ~arch ~procs ~side ~protocol ~payload:4096 ~checksum ~lock_disc ~tcp_locking
    ~assume_in_order ~ticketing ~refcnt_mode ~message_caching ~connections
    ~warmup:quickest.Pnp_figures.Opts.warmup ~measure:quickest.Pnp_figures.Opts.measure ()

let point name cfg =
  Test.make ~name (Staged.stage (fun () -> ignore (Run.run cfg)))

let tests =
  Test.make_grouped ~name:"figures"
    [
      point "fig2-3:udp-send" (cfg_point ~protocol:Config.Udp ~side:Config.Send ());
      point "fig4-5:udp-recv" (cfg_point ~protocol:Config.Udp ~side:Config.Recv ());
      point "fig6-7:tcp-send" (cfg_point ~side:Config.Send ());
      point "fig8-9:tcp-recv" (cfg_point ~side:Config.Recv ());
      point "fig10:mcs-recv" (cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ());
      point "table1:ooo" (cfg_point ~side:Config.Recv ~procs:4 ());
      point "fig11:ticketing" (cfg_point ~side:Config.Recv ~ticketing:true ());
      point "send-ooo:wire" (cfg_point ~side:Config.Send ~procs:4 ());
      point "fig12:multiconn"
        (cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ~connections:4 ());
      point "fig13:tcp6-send" (cfg_point ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Six ());
      point "fig14:tcp6-recv" (cfg_point ~side:Config.Recv ~tcp_locking:Pnp_proto.Tcp.Six ());
      point "fig15:locked-refs" (cfg_point ~refcnt_mode:Atomic_ctr.Locked ());
      point "fig16:no-caching" (cfg_point ~message_caching:false ());
      point "fig17-18:power-series"
        (cfg_point ~arch:Arch.power_series_33 ~side:Config.Recv ());
      Test.make ~name:"micro-cksum"
        (Staged.stage (fun () ->
             ignore (Pnp_figures.Fig_micro.checksum_points quickest)));
      point "ext-clp"
        (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~lock_disc:Lock.Fifo ~connections:8 ~placement:Config.Connection_level
           ~skew:1.0 ~offered_mbps:360.0 ~procs:4
           ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
      point "ext-grant" (cfg_point ~side:Config.Recv ~lock_disc:Lock.Barging ());
      point "ext-jitter" (cfg_point ~side:Config.Recv ~lock_disc:Lock.Fifo ());
      point "ext-cksum-lock"
        (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~lock_disc:Lock.Fifo ~cksum_under_lock:true ~procs:4
           ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
      point "ext-pres"
        (Config.v ~protocol:Config.Udp ~side:Config.Recv ~payload:4096 ~checksum:true
           ~presentation:true ~procs:4 ~warmup:quickest.Pnp_figures.Opts.warmup
           ~measure:quickest.Pnp_figures.Opts.measure ());
    ]

let run_bechamel () =
  let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      (Instance.monotonic_clock) raw
  in
  Printf.printf "%-28s %16s\n" "benchmark" "host ms/run";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-28s %16.2f\n" name (est /. 1e6)
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results;
  flush stdout

(* `bench/main.exe [-j N]`: the only flag, so a hand scan beats pulling
   in cmdliner here. *)
let jobs_of_argv () =
  let jobs = ref (Pool.default_jobs ()) in
  let rec scan = function
    | "-j" :: n :: rest | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ ->
         Printf.eprintf "bench: -j expects a positive integer, got %S\n" n;
         exit 2);
      scan rest
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %S (usage: bench [-j N])\n" arg;
      exit 2
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  !jobs

let () =
  Pool.set_jobs (jobs_of_argv ());
  Printf.printf "### Bechamel: host cost of regenerating each figure/table ###\n%!";
  run_bechamel ();
  Printf.printf "\n### Reproduction: every figure and table (-j %d) ###\n%!" (Pool.jobs ());
  (* Mirror every printed table to BENCH_<id>.json next to the run, each
     stamped with the jobs level and the data phase's wall-clock cost. *)
  Pnp_figures.Registry.run_all ~json:(Json_out.make ~dir:"." ()) Pnp_figures.Opts.default
