(* Source-invariant lint runner: walks the given source roots (default
   lib, bin and test) and exits non-zero if any invariant is violated.
   Wired into [dune build @lint] and CI. *)

let () =
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib"; "bin"; "test" ] | _ :: rest -> rest
  in
  let findings = Pnp_analysis.Lint.check_tree ~roots in
  List.iter
    (fun f -> Format.printf "%a@." Pnp_analysis.Lint.pp_finding f)
    findings;
  match findings with
  | [] -> Format.printf "lint: %s clean@." (String.concat " " roots)
  | fs ->
    Format.printf "lint: %d finding(s)@." (List.length fs);
    exit 1
