(* Source-invariant lint runner: walks the given source roots (default
   lib, bin and test) and exits non-zero if any invariant is violated.
   Wired into [dune build @lint] and CI.

   --matrix prints the lib/proto state-access matrix (which shared-state
   classes each binding touches, under which locks); --matrix-json FILE
   writes it as JSON.  Both run the full lint as well, so the matrix
   view never hides a violation. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse roots show_matrix matrix_json = function
    | [] -> (List.rev roots, show_matrix, matrix_json)
    | "--matrix" :: rest -> parse roots true matrix_json rest
    | "--matrix-json" :: file :: rest -> parse roots show_matrix (Some file) rest
    | "--matrix-json" :: [] ->
      prerr_endline "lint: --matrix-json needs a file argument";
      exit 2
    | root :: rest -> parse (root :: roots) show_matrix matrix_json rest
  in
  let roots, show_matrix, matrix_json = parse [] false None args in
  let roots = if roots = [] then [ "lib"; "bin"; "test" ] else roots in
  if show_matrix || matrix_json <> None then begin
    let rows = Pnp_analysis.Lint.state_matrix ~roots in
    if show_matrix then print_string (Pnp_analysis.Lint.matrix_to_string rows);
    match matrix_json with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Pnp_analysis.Lint.matrix_json rows);
      close_out oc;
      Format.printf "state-access matrix: %d binding(s) -> %s@." (List.length rows) file
  end;
  let findings = Pnp_analysis.Lint.check_tree ~roots in
  List.iter
    (fun f -> Format.printf "%a@." Pnp_analysis.Lint.pp_finding f)
    findings;
  match findings with
  | [] -> Format.printf "lint: %s clean@." (String.concat " " roots)
  | fs ->
    Format.printf "lint: %d finding(s)@." (List.length fs);
    exit 1
