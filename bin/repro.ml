(* Command-line driver: regenerate the paper's figures and tables. *)

open Cmdliner

let opts_term =
  let max_procs =
    let doc = "Sweep processor counts 1..$(docv)." in
    Arg.(value & opt int 8 & info [ "p"; "max-procs" ] ~docv:"N" ~doc)
  in
  let seeds =
    let doc = "Independent seeded runs averaged per data point." in
    Arg.(value & opt int 3 & info [ "s"; "seeds" ] ~docv:"N" ~doc)
  in
  let measure_ms =
    let doc = "Steady-state measurement window in simulated milliseconds." in
    Arg.(value & opt float 500.0 & info [ "m"; "measure-ms" ] ~docv:"MS" ~doc)
  in
  let warmup_ms =
    let doc = "Warmup before measurement, simulated milliseconds." in
    Arg.(value & opt float 200.0 & info [ "w"; "warmup-ms" ] ~docv:"MS" ~doc)
  in
  let quick =
    let doc = "Short smoke-test sweep (2 seeds, 250 ms)." in
    Arg.(value & flag & info [ "q"; "quick" ] ~doc)
  in
  let build max_procs seeds measure_ms warmup_ms quick =
    if quick then { Pnp_figures.Opts.quick with Pnp_figures.Opts.max_procs }
    else
      {
        Pnp_figures.Opts.max_procs;
        seeds;
        warmup = Pnp_util.Units.ms warmup_ms;
        measure = Pnp_util.Units.ms measure_ms;
      }
  in
  Term.(const build $ max_procs $ seeds $ measure_ms $ warmup_ms $ quick)

let jobs_term =
  let doc =
    "Worker domains for the sweep pool (default: the number of cores). The \
     results are byte-identical at any $(docv); $(b,-j 1) is the serial path."
  in
  Arg.(
    value
    & opt int (Pnp_harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_memo_term =
  let doc =
    "Disable the sweep-cell memo, recomputing every (config, seed) cell even \
     when figures share it.  Output is byte-identical either way; this only \
     trades wall clock for a cache-free measurement."
  in
  Arg.(value & flag & info [ "no-cell-memo" ] ~doc)

let json_ctx = function
  | None -> Pnp_harness.Json_out.disabled
  | Some dir -> Pnp_harness.Json_out.make ~dir ()

let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-14s %s\n" e.Pnp_figures.Registry.id e.Pnp_figures.Registry.title)
      Pnp_figures.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List every reproducible figure/table id.")
    Term.(const run $ const ())

let json_dir_term =
  let doc =
    "Also write each figure's tables to $(docv)/BENCH_<id>.json (machine-readable)."
  in
  Arg.(value & opt (some dir) None & info [ "json" ] ~docv:"DIR" ~doc)

let fig_cmd =
  let ids =
    let doc = "Figure/table ids (see $(b,list)); e.g. fig8-9, table1." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run opts json_dir jobs no_memo ids =
    Pnp_harness.Pool.set_jobs jobs;
    Pnp_harness.Run.set_cell_memo (not no_memo);
    let json = json_ctx json_dir in
    List.iter
      (fun id ->
        match Pnp_figures.Registry.find id with
        | Some e -> Pnp_figures.Registry.run_entry ~json e opts
        | None ->
          Printf.eprintf "unknown figure id %S; try `repro list`\n" id;
          exit 1)
      ids
  in
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate specific figures/tables.")
    Term.(const run $ opts_term $ json_dir_term $ jobs_term $ no_memo_term $ ids)

let all_cmd =
  let run opts json_dir jobs no_memo =
    Pnp_harness.Pool.set_jobs jobs;
    Pnp_harness.Run.set_cell_memo (not no_memo);
    Pnp_figures.Registry.run_all ~json:(json_ctx json_dir) opts
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every figure and table.")
    Term.(const run $ opts_term $ json_dir_term $ jobs_term $ no_memo_term)

(* Profile the harness itself: run figure data phases (no table output)
   and report how fast the host retires simulated events.  All numbers
   here describe the host machine, never the modeled system, so this
   command's stdout is exempt from the byte-for-byte determinism checks
   that cover [fig] and [all]. *)
let perf_cmd =
  let open Pnp_harness in
  let ids_term =
    let doc = "Figure ids to profile (default: every figure; see $(b,list))." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let profile_term =
    let doc =
      "Also sample the host call stacks while the figures run and write them \
       to $(docv) in collapsed-stacks format (one `frame;frame;... count' \
       line per distinct stack, flamegraph-ready)."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let exec opts jobs no_memo profile ids =
    Pool.set_jobs jobs;
    Run.set_cell_memo (not no_memo);
    let entries =
      match ids with
      | [] -> Pnp_figures.Registry.all
      | ids ->
        List.map
          (fun id ->
            match Pnp_figures.Registry.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown figure id %S; try `repro list`\n" id;
              exit 1)
          ids
    in
    Printf.printf "host profile: %d figure(s), -j%d, cell memo %s\n\n"
      (List.length entries) (Pool.jobs ())
      (if no_memo then "off" else "on");
    Printf.printf "%-14s %9s %11s %13s %12s %10s\n" "figure" "wall s" "events"
      "events/sec" "hit/miss" "minor MW";
    let t0 = Hostprof.snapshot () in
    let figures () =
      List.iter
        (fun e ->
          let h0 = Hostprof.snapshot () in
          ignore (e.Pnp_figures.Registry.data opts);
          let d = Hostprof.delta h0 (Hostprof.snapshot ()) in
          Printf.printf "%-14s %9.3f %11d %13.0f %6d/%-5d %10.1f\n"
            e.Pnp_figures.Registry.id d.Hostprof.elapsed_s d.Hostprof.sim_events
            (Hostprof.events_per_sec d) d.Hostprof.cell_hits d.Hostprof.cell_misses
            (d.Hostprof.gc_minor_words /. 1e6))
        entries
    in
    (match profile with
    | None -> figures ()
    | Some file ->
      let (), n = Profiler.profile ~file figures in
      Printf.printf "\nprofile: %d samples -> %s (collapsed stacks)\n" n file);
    Report.print_host_profile ~title:"Host profile (total)"
      (Hostprof.delta t0 (Hostprof.snapshot ()))
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Profile the harness: simulated events per host second, GC traffic and \
          sweep-cell memo hit rate, per figure and in total.")
    Term.(const exec $ opts_term $ jobs_term $ no_memo_term $ profile_term $ ids_term)

(* A single custom experiment with every knob exposed. *)
let run_cmd =
  let open Pnp_harness in
  let enum_arg name values default doc =
    Arg.(value & opt (enum values) default & info [ name ] ~doc)
  in
  let protocol =
    enum_arg "proto" [ ("udp", Config.Udp); ("tcp", Config.Tcp) ] Config.Tcp
      "Protocol stack: $(b,udp) or $(b,tcp)."
  in
  let side =
    enum_arg "side" [ ("send", Config.Send); ("recv", Config.Recv) ] Config.Recv
      "Which path to exercise: $(b,send) or $(b,recv)."
  in
  let procs = Arg.(value & opt int 8 & info [ "procs" ] ~doc:"Processors.") in
  let payload = Arg.(value & opt int 4096 & info [ "payload" ] ~doc:"Bytes per packet.") in
  let no_cksum = Arg.(value & flag & info [ "no-cksum" ] ~doc:"Disable checksumming.") in
  let locks =
    enum_arg "locks"
      [
        ("mutex", Pnp_engine.Lock.Unfair);
        ("mcs", Pnp_engine.Lock.Fifo);
        ("barging", Pnp_engine.Lock.Barging);
      ]
      Pnp_engine.Lock.Unfair "Connection-state lock discipline."
  in
  let tcp_locking =
    enum_arg "tcp-locking"
      [
        ("1", Pnp_proto.Tcp.One);
        ("2", Pnp_proto.Tcp.Two);
        ("6", Pnp_proto.Tcp.Six);
        ("scr", Pnp_proto.Tcp.Scr);
        ("rcu", Pnp_proto.Tcp.Rcu);
      ]
      Pnp_proto.Tcp.One
      "Per-connection parallelization: lock granularity TCP-$(b,1)/$(b,2)/$(b,6), \
       $(b,scr) (state-compute replication: log replay instead of locking) or \
       $(b,rcu) (writer lock + lock-free snapshot readers)."
  in
  let connections =
    Arg.(value & opt int 1 & info [ "connections" ] ~doc:"Simultaneous connections.")
  in
  let steering =
    enum_arg "steering"
      [
        ("none", None);
        ("hash", Some Pnp_driver.Steer.Hash);
        ("last-sender", Some Pnp_driver.Steer.Last_sender);
      ]
      None
      "NIC packet steering (TCP recv only): $(b,none) keeps the classic \
       feeders, $(b,hash) pins each connection to one worker (RSS), \
       $(b,last-sender) follows the migrating application thread \
       (Flow-Director-style)."
  in
  let demux_shards =
    Arg.(
      value & opt int 1
      & info [ "demux-shards" ]
          ~doc:"Shards per demux map (rounded up to a power of two).")
  in
  let placement =
    enum_arg "placement"
      [ ("packet", Config.Packet_level); ("connection", Config.Connection_level) ]
      Config.Packet_level "Worker-to-connection placement."
  in
  let skew =
    Arg.(value & opt float 0.0 & info [ "skew" ] ~doc:"Zipf exponent of per-connection load.")
  in
  let offered =
    Arg.(
      value
      & opt (some float) None
      & info [ "offered-mbps" ] ~doc:"Arrival-limited offered load (default: saturating).")
  in
  let ticketing = Arg.(value & flag & info [ "ticketing" ] ~doc:"Preserve order above TCP.") in
  let assume = Arg.(value & flag & info [ "assume-in-order" ] ~doc:"Figure 10 upper bound.") in
  let locked_refs =
    Arg.(value & flag & info [ "locked-refs" ] ~doc:"Lock-inc-unlock reference counts.")
  in
  let no_caching =
    Arg.(value & flag & info [ "no-caching" ] ~doc:"Disable per-thread MNode caches.")
  in
  let arch =
    Arg.(
      value
      & opt string "challenge-100"
      & info [ "arch" ] ~doc:"Machine: challenge-100, challenge-150 or power-33.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.") in
  let presentation =
    Arg.(value & flag & info [ "presentation" ] ~doc:"Add per-packet XDR-style conversion.")
  in
  let cksum_under_lock =
    Arg.(
      value & flag
      & info [ "cksum-under-lock" ] ~doc:"Compute checksums inside the state lock (ablation).")
  in
  let jitter_us =
    Arg.(
      value & opt float 8.0
      & info [ "jitter-us" ] ~doc:"Mean driver service jitter in microseconds.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ]
          ~doc:
            "Bernoulli segment-loss probability on the receiving peer (TCP send \
             side only): exercises the full retransmission machinery.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~docv:"FILE"
          ~doc:
            "Record the measurement window of one run (base seed) as Chrome \
             trace-event JSON in $(docv) (open with chrome://tracing or \
             https://ui.perfetto.dev), and print the per-lock contention table.")
  in
  let exec opts jobs protocol side procs payload no_cksum locks tcp_locking connections
      steering demux_shards placement skew offered ticketing assume locked_refs no_caching
      arch seed presentation cksum_under_lock jitter_us loss trace_file =
    Pool.set_jobs jobs;
    let arch =
      match Pnp_engine.Arch.by_name arch with
      | Some a -> a
      | None ->
        Printf.eprintf "unknown architecture %S\n" arch;
        exit 1
    in
    let cfg =
      Config.v ~arch ~procs ~side ~protocol ~payload ~checksum:(not no_cksum)
        ~lock_disc:locks ~tcp_locking ~connections ?steering ~demux_shards ~placement
        ~skew ?offered_mbps:offered
        ~ticketing ~assume_in_order:assume
        ~refcnt_mode:
          (if locked_refs then Pnp_engine.Atomic_ctr.Locked else Pnp_engine.Atomic_ctr.Ll_sc)
        ~message_caching:(not no_caching) ~presentation ~cksum_under_lock
        ~driver_jitter_ns:(jitter_us *. 1000.0) ~loss_rate:loss
        ~warmup:opts.Pnp_figures.Opts.warmup ~measure:opts.Pnp_figures.Opts.measure ~seed ()
    in
    (* Fail on an unwritable trace destination before running the whole
       simulation, not after. *)
    (match trace_file with
     | None -> ()
     | Some file -> (
       match open_out_gen [ Open_append; Open_creat ] 0o644 file with
       | oc -> close_out oc
       | exception Sys_error msg ->
         Printf.eprintf "cannot write trace file: %s\n" msg;
         exit 1));
    Printf.printf "config: %s\n" (Config.describe cfg);
    let results = Run.run_seeds cfg ~seeds:opts.Pnp_figures.Opts.seeds in
    let s = Pnp_util.Stats.summary (List.map (fun r -> r.Run.throughput_mbps) results) in
    let avg f = Pnp_util.Stats.mean (List.map f results) in
    Printf.printf "throughput:     %8.1f Mbit/s (± %.1f, %d seeds)\n" s.Pnp_util.Stats.mean
      s.Pnp_util.Stats.ci90 s.Pnp_util.Stats.n;
    Printf.printf "packets:        %8.0f per run\n" (avg (fun r -> float_of_int r.Run.packets));
    Printf.printf "out-of-order:   %8.1f %%\n" (avg (fun r -> r.Run.ooo_pct));
    Printf.printf "pred misses:    %8.1f %%\n" (avg (fun r -> r.Run.pred_miss_pct));
    Printf.printf "lock waiting:   %8.1f %% of thread time\n"
      (avg (fun r -> r.Run.lock_wait_pct));
    Printf.printf "wire misorder:  %8.2f %%\n" (avg (fun r -> r.Run.wire_misorder_pct));
    Printf.printf "mnode cache:    %8.1f %% hit rate\n" (avg (fun r -> r.Run.cache_hit_pct));
    match trace_file with
    | None -> ()
    | Some file ->
      (* Re-run the base seed with the event tracer on.  Tracing never
         consumes simulated time, so this reproduces the seed's run
         exactly while recording the measurement window. *)
      let _, tracer = Run.run_traced cfg in
      Pnp_engine.Trace.write_chrome tracer file;
      Printf.printf "\ntrace:          %d events -> %s\n" (Pnp_engine.Trace.count tracer) file;
      Report.print_lock_table tracer
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment with explicit knobs and print all metrics.")
    Term.(
      const exec $ opts_term $ jobs_term $ protocol $ side $ procs $ payload $ no_cksum $ locks
      $ tcp_locking $ connections $ steering $ demux_shards $ placement $ skew $ offered
      $ ticketing $ assume $ locked_refs $ no_caching $ arch $ seed $ presentation
      $ cksum_under_lock $ jitter_us $ loss $ trace_file)

(* Trace-driven concurrency checking: run reference scenarios with the
   tracer on and feed the trace to Pnp_analysis (lockset, lock-order,
   FIFO grant order, reorder windows). *)
let check_cmd =
  let open Pnp_harness in
  let scenario ?(side = Config.Recv) ?(tcp_locking = Pnp_proto.Tcp.One)
      ?(lock_disc = Pnp_engine.Lock.Unfair) ?(ticketing = false) ?(loss_rate = 0.0)
      ?(map_locking = true) ?steering ?(demux_shards = 1) ?(connections = 1) () =
    Config.v ~arch:Pnp_engine.Arch.challenge_100 ~procs:4 ~side
      ~protocol:Config.Tcp ~payload:4096 ~checksum:true ~lock_disc ~tcp_locking
      ~ticketing ~loss_rate ~map_locking ?steering ~demux_shards ~connections
      ~warmup:(Pnp_util.Units.ms 20.0)
      ~measure:(Pnp_util.Units.ms 80.0)
      ~seed:1 ()
  in
  (* (fig tag, label, order-comparison role, config) *)
  let scenarios =
    [
      ("fig8-9", "tcp-recv locking=1 mutex", None, scenario ());
      ("fig8-9", "tcp-send locking=1 mutex", None, scenario ~side:Config.Send ());
      ("fig13", "tcp-recv locking=2 mutex", None,
       scenario ~tcp_locking:Pnp_proto.Tcp.Two ());
      ("fig13", "tcp-recv locking=6 mutex", None,
       scenario ~tcp_locking:Pnp_proto.Tcp.Six ());
      ("fig14", "tcp-send locking=2 mutex", None,
       scenario ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Two ());
      ("fig14", "tcp-send locking=6 mutex", None,
       scenario ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Six ());
      ("fig10", "tcp-recv locking=1 mutex (order baseline)", Some `Unfair,
       scenario ());
      ("fig10", "tcp-recv locking=1 mcs", Some `Fifo,
       scenario ~lock_disc:Pnp_engine.Lock.Fifo ());
      ("table1", "tcp-recv locking=1 mcs ticketing", None,
       scenario ~lock_disc:Pnp_engine.Lock.Fifo ~ticketing:true ());
      (* The retransmission machinery holds locks on paths idle traffic
         never exercises; check them under forced loss too. *)
      ("faults", "tcp-send locking=1 mcs loss=2%", None,
       scenario ~side:Config.Send ~lock_disc:Pnp_engine.Lock.Fifo ~loss_rate:0.02 ());
      ("faults", "tcp-send locking=6 mutex loss=2%", None,
       scenario ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Six ~loss_rate:0.02 ());
      (* The sharded demux under both steering policies, with map locking
         off: the per-thread one-behind caches must keep the unlocked
         lookup path free of unprotected shared accesses (the lockset
         checker watches every <map>#cache state). *)
      ("steering", "tcp-recv steer=hash shards=8 maplock=off", None,
       scenario ~steering:Pnp_driver.Steer.Hash ~map_locking:false ~demux_shards:8
         ~connections:256 ());
      ("steering", "tcp-recv steer=last-sender shards=8 maplock=off", None,
       scenario ~steering:Pnp_driver.Steer.Last_sender ~map_locking:false
         ~demux_shards:8 ~connections:256 ());
      (* State-compute replication holds no connection lock at all: every
         apply-section access must be covered by the synthetic per-log
         lock (lockset) and the append->apply->apply channel (HB), so a
         clean run here is the checkers signing off on the discipline.
         The send side under loss drives retransmission through the
         deferred-charge output sections too. *)
      ("ext-scr", "tcp-recv locking=scr mutex", None,
       scenario ~tcp_locking:Pnp_proto.Tcp.Scr ());
      ("ext-scr", "tcp-recv locking=scr mcs conns=2", None,
       scenario ~tcp_locking:Pnp_proto.Tcp.Scr ~lock_disc:Pnp_engine.Lock.Fifo
         ~connections:2 ());
      ("ext-scr", "tcp-send locking=scr mutex loss=2%", None,
       scenario ~side:Config.Send ~tcp_locking:Pnp_proto.Tcp.Scr ~loss_rate:0.02 ());
      ("ext-scr", "tcp-recv locking=rcu mutex", None,
       scenario ~tcp_locking:Pnp_proto.Tcp.Rcu ());
    ]
  in
  let figs_term =
    let doc =
      "Only check scenarios tagged with figure $(docv) (repeatable); e.g. \
       fig10, fig13."
    in
    Arg.(value & opt_all string [] & info [ "fig" ] ~docv:"ID" ~doc)
  in
  let all_term =
    let doc = "Check every scenario (the default when no $(b,--fig) is given)." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let json_term =
    let doc =
      "Also write the findings, the per-scenario lockset-vs-HB comparison \
       and the exit-code bits as machine-readable $(docv)/CHECK.json."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"DIR" ~doc)
  in
  let exec figs all_flag json_dir =
    let tags = List.sort_uniq compare (List.map (fun (t, _, _, _) -> t) scenarios) in
    List.iter
      (fun f ->
        if not (List.mem f tags) then begin
          Printf.eprintf "unknown check tag %S; available: %s\n" f
            (String.concat " " tags);
          exit 1
        end)
      figs;
    let selected =
      if figs = [] || all_flag then scenarios
      else List.filter (fun (t, _, _, _) -> List.mem t figs) scenarios
    in
    let all_findings = ref [] in
    let order_totals = ref [] in
    let json_rows = ref [] in
    List.iter
      (fun (tag, label, role, cfg) ->
        let _result, tracer = Run.run_traced cfg in
        let findings = Pnp_analysis.Check.all tracer in
        let stats = Pnp_analysis.Order_check.stats tracer in
        let reordered, grants = Pnp_analysis.Order_check.reordered_total stats in
        Printf.printf "%-8s %-42s %6d events  %4d/%d reordered grants  %d finding(s)\n"
          tag label
          (Pnp_engine.Trace.count tracer)
          reordered grants (List.length findings);
        (* Lockset vs happens-before, per state id: the two checkers
           disagree in both directions and the disagreement is the
           signal — lockset-only entries are false-positive candidates
           (ordering the lockset abstraction cannot see), HB-only
           entries are real races the lockset analysis missed. *)
        let states, ls_findings = Pnp_analysis.Lockset.run tracer in
        let ls_flagged =
          List.map (fun (f : Pnp_analysis.Finding.t) -> f.Pnp_analysis.Finding.subject)
            ls_findings
        in
        let hb_flagged = Pnp_analysis.Hb.races tracer in
        let comparison =
          List.map
            (fun (s : Pnp_analysis.Lockset.state) ->
              let ls = List.mem s.Pnp_analysis.Lockset.id ls_flagged in
              let hb = List.mem s.Pnp_analysis.Lockset.id hb_flagged in
              (s.Pnp_analysis.Lockset.id, ls, hb))
            states
        in
        let disagreement = List.exists (fun (_, ls, hb) -> ls || hb) comparison in
        if role <> None || disagreement then begin
          Printf.printf "         %-28s %-10s %-10s %s\n" "state" "lockset" "hb"
            "verdict";
          List.iter
            (fun (id, ls, hb) ->
              let verdict =
                match (ls, hb) with
                | true, true -> "race (both agree)"
                | true, false -> "lockset-only: false-positive candidate"
                | false, true -> "HB-only: real race lockset missed"
                | false, false -> "ordered"
              in
              Printf.printf "         %-28s %-10s %-10s %s\n" id
                (if ls then "FLAGGED" else "clean")
                (if hb then "FLAGGED" else "clean")
                verdict)
            comparison
        end;
        (match role with
         | Some r -> order_totals := (r, reordered) :: !order_totals
         | None -> ());
        List.iter
          (fun f -> Format.printf "  %a@." Pnp_analysis.Finding.pp f)
          findings;
        all_findings := !all_findings @ findings;
        json_rows :=
          (tag, label, Pnp_engine.Trace.count tracer, reordered, grants, findings,
           comparison)
          :: !json_rows)
      selected;
    (* Figure 10 as an assertion: the FIFO (MCS) discipline must not
       reorder more grants than the unfair mutex on the same workload. *)
    (match
       (List.assoc_opt `Unfair !order_totals, List.assoc_opt `Fifo !order_totals)
     with
     | Some unfair, Some fifo ->
       Printf.printf "fig10    reordered grants: mutex=%d mcs=%d\n" unfair fifo;
       if fifo > unfair then begin
         let f =
           Pnp_analysis.Finding.v ~checker:"fig10-direction" ~subject:"grant order"
             (Printf.sprintf
                "FIFO locking reordered more grants (%d) than the unfair mutex \
                 (%d); Figure 10 expects the opposite"
                fifo unfair)
         in
         Format.printf "  %a@." Pnp_analysis.Finding.pp f;
         all_findings := !all_findings @ [ f ]
       end
     | _ -> ());
    let findings = !all_findings in
    (* Exit code = OR of the checker-family bits (race=1, lifetime=2,
       order/other=4), so CI can tell the failure kinds apart. *)
    let code = Pnp_analysis.Finding.exit_code findings in
    (match json_dir with
     | None -> ()
     | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let esc = Pnp_harness.Json_out.escape in
       let b = Buffer.create 4096 in
       Buffer.add_string b "{\"check\":[";
       List.iteri
         (fun i (tag, label, events, reordered, grants, findings, comparison) ->
           if i > 0 then Buffer.add_char b ',';
           Buffer.add_string b
             (Printf.sprintf
                "{\"tag\":\"%s\",\"label\":\"%s\",\"events\":%d,\"reordered\":%d,\"grants\":%d,\"findings\":["
                (esc tag) (esc label) events reordered grants);
           List.iteri
             (fun j (f : Pnp_analysis.Finding.t) ->
               if j > 0 then Buffer.add_char b ',';
               Buffer.add_string b
                 (Printf.sprintf
                    "{\"checker\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"message\":\"%s\"}"
                    (esc f.Pnp_analysis.Finding.checker)
                    (match f.Pnp_analysis.Finding.severity with
                     | Pnp_analysis.Finding.Error -> "error"
                     | Pnp_analysis.Finding.Warning -> "warning")
                    (esc f.Pnp_analysis.Finding.subject)
                    (esc f.Pnp_analysis.Finding.message)))
             findings;
           Buffer.add_string b "],\"comparison\":[";
           List.iteri
             (fun j (id, ls, hb) ->
               if j > 0 then Buffer.add_char b ',';
               Buffer.add_string b
                 (Printf.sprintf "{\"state\":\"%s\",\"lockset\":%b,\"hb\":%b}"
                    (esc id) ls hb))
             comparison;
           Buffer.add_string b "]}")
         (List.rev !json_rows);
       Buffer.add_string b (Printf.sprintf "],\"exit_code\":%d}\n" code);
       let path = Filename.concat dir "CHECK.json" in
       let oc = open_out path in
       output_string oc (Buffer.contents b);
       close_out oc;
       Printf.printf "json:    %d scenario(s) -> %s\n" (List.length selected) path);
    if findings = [] then
      Printf.printf "check: %d scenario(s), no findings\n" (List.length selected)
    else begin
      Printf.printf "check: %d scenario(s), %d finding(s), exit code %d\n"
        (List.length selected) (List.length findings) code;
      exit code
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the trace-driven concurrency checkers (lockset, happens-before \
          races, arena lifetime, lock order, grant order) over reference \
          scenarios, with a lockset-vs-HB comparison per scenario.")
    Term.(const exec $ figs_term $ all_term $ json_term)

(* Deterministic fault injection with an end-to-end recovery oracle: each
   cell transfers a golden byte stream over a faulted link and must
   recover it exactly (TCP) and account for every datagram (UDP). *)
let chaos_cmd =
  let open Pnp_harness in
  let plan_term =
    let doc =
      "Run one built-in fault plan against both lock disciplines (see \
       $(b,--list-plans)); default: the full plan x discipline matrix."
    in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"NAME" ~doc)
  in
  let matrix_term =
    let doc = "Run every built-in plan x {mutex, mcs} (the default)." in
    Arg.(value & flag & info [ "matrix" ] ~doc)
  in
  let list_plans_term =
    let doc = "List the built-in fault plans and exit." in
    Arg.(value & flag & info [ "list-plans" ] ~doc)
  in
  let bytes_term =
    Arg.(
      value & opt int 200_000
      & info [ "bytes" ] ~doc:"TCP golden-stream length per cell (bytes).")
  in
  let datagrams_term =
    Arg.(value & opt int 600 & info [ "datagrams" ] ~doc:"Paced UDP datagrams per cell.")
  in
  let seed_term = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.") in
  let exec jobs plan matrix list_plans bytes datagrams seed =
    if list_plans then
      List.iter (fun (name, _) -> print_endline name) Pnp_faults.Faults.builtin
    else begin
      Pool.set_jobs jobs;
      let outcomes =
        match plan with
        | Some name when not matrix -> (
          match Pnp_faults.Faults.find name with
          | None ->
            Printf.eprintf "unknown fault plan %S; try `repro chaos --list-plans`\n" name;
            exit 1
          | Some p ->
            List.map
              (fun disc -> Chaos.run_cell ~bytes ~datagrams ~seed ~plan:p ~disc ())
              [ Pnp_engine.Lock.Unfair; Pnp_engine.Lock.Fifo ])
        | _ -> Chaos.matrix ~bytes ~datagrams ~seed ()
      in
      let failed = ref 0 in
      List.iter
        (fun o ->
          print_endline (Chaos.to_line o);
          if not (Chaos.passed o) then begin
            incr failed;
            List.iter
              (fun f -> Format.printf "  %a@." Pnp_analysis.Finding.pp f)
              o.Chaos.findings
          end)
        outcomes;
      Printf.printf "chaos: %d cell(s), %d failed\n" (List.length outcomes) !failed;
      if !failed > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject deterministic link faults (loss, bursts, duplication, reordering, \
          corruption, jitter, blackouts) and verify end-to-end recovery.")
    Term.(
      const exec $ jobs_term $ plan_term $ matrix_term $ list_plans_term $ bytes_term
      $ datagrams_term $ seed_term)

(* Cross-scenario overload comparison: incast (clean / burst-loss /
   bounded-pool) vs the shared-bottleneck fairness workload, each watched
   for liveness and checked by the overload oracle. *)
let compare_cmd =
  let open Pnp_harness in
  let senders_term =
    Arg.(
      value & opt int 32
      & info [ "senders" ] ~doc:"Incast fan-in width (flows into one port).")
  in
  let bytes_term =
    Arg.(
      value & opt int 4096
      & info [ "bytes" ] ~doc:"Bytes per incast flow (bottleneck flows stay 40 kB).")
  in
  let seed_term = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.") in
  let json_term =
    let doc = "Also write the comparison as machine-readable $(docv)/COMPARE.json." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"DIR" ~doc)
  in
  let exec jobs senders bytes_per_flow seed json_dir =
    Pool.set_jobs jobs;
    let rows = Compare.run ~senders ~bytes_per_flow ~seed () in
    Compare.print rows;
    (match json_dir with
     | None -> ()
     | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let path = Filename.concat dir "COMPARE.json" in
       let oc = open_out path in
       output_string oc (Compare.to_json rows);
       close_out oc;
       Printf.printf "json:    %d scenario(s) -> %s\n" (List.length rows) path);
    if not (Compare.passed rows) then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare overload scenarios (incast fan-in, burst loss, bounded pools, \
          shared bottleneck): goodput, fairness, latency percentiles, drop \
          accounting and oracle verdicts, byte-identical at any $(b,-j).")
    Term.(const exec $ jobs_term $ senders_term $ bytes_term $ seed_term $ json_term)

(* A short annotated wire trace of a TCP connection over the in-memory
   driver: handshake, data, acks. *)
let trace_cmd =
  let count =
    Arg.(value & opt int 40 & info [ "n" ] ~doc:"Number of frames to print.")
  in
  let exec count =
    let open Pnp_engine in
    let open Pnp_driver in
    let plat = Platform.create ~seed:4 Arch.challenge_100 in
    let stack = Stack.create plat ~local_addr:0x0a000001 () in
    let sniffer = Sniffer.attach stack () in
    let _peer =
      Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum:true ()
    in
    ignore
      (Sim.spawn plat.Platform.sim ~cpu:0 ~name:"app" (fun () ->
           let sess =
             Pnp_proto.Tcp.connect stack.Stack.tcp ~local_port:5000
               ~remote_addr:0x0a000002 ~remote_port:80
           in
           for i = 0 to 7 do
             let m = Pnp_xkern.Msg.create stack.Stack.pool 4096 in
             Pnp_xkern.Msg.fill_pattern m ~off:0 ~len:4096 ~stream_off:(i * 4096);
             Pnp_proto.Tcp.send sess m
           done;
           Pnp_proto.Tcp.close sess));
    Sim.run ~until:(Pnp_util.Units.sec 3.0) plat.Platform.sim;
    Printf.printf
      "Wire trace: TCP connect + 8 x 4KB + close over the in-memory driver\n\
       (-> transmitted by the stack, <- injected by the simulated peer)\n\n";
    let es = Sniffer.entries sniffer in
    List.iteri
      (fun i e -> if i < count then Format.printf "%a@." Sniffer.pp_entry e)
      es;
    if List.length es > count then
      Printf.printf "... (%d more frames; rerun with -n)\n" (List.length es - count)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print an annotated wire trace of a small TCP session.")
    Term.(const exec $ count)

let main =
  let doc =
    "Reproduction of 'Performance Issues in Parallelized Network Protocols' (OSDI '94)"
  in
  Cmd.group (Cmd.info "repro" ~doc)
    [
      list_cmd; fig_cmd; all_cmd; perf_cmd; run_cmd; check_cmd; chaos_cmd;
      compare_cmd; trace_cmd;
    ]

(* The sweeps allocate tens of words per simulated event (closures on the
   event queue, message descriptors), so the default 256k-word minor heap
   forces a minor collection every few milliseconds of host time.  A 2M-word
   (16 MB) per-domain minor heap trades a little memory for far fewer
   collections; it changes nothing observable — GC scheduling never feeds
   back into simulated time. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 }
let () = exit (Cmd.eval main)
