(* Edge cases: 32-bit sequence wraparound mid-transfer, simultaneous
   close, RST, overlap trimming, and stress on the infrastructure. *)

open Pnp_engine
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let plat () = Platform.create Arch.challenge_100

let in_sim ?(horizon = Pnp_util.Units.sec 30.0) plat body =
  let fin = ref false in
  let _ =
    Sim.spawn plat.Platform.sim ~name:"edge" (fun () ->
        body ();
        fin := true)
  in
  Sim.run ~until:horizon plat.Platform.sim;
  Alcotest.(check bool) "test thread completed" true !fin

(* ------------------------------------------------------------------ *)
(* 32-bit sequence wraparound                                          *)
(* ------------------------------------------------------------------ *)

let test_send_across_seq_wrap () =
  (* The sender's sequence space crosses 2^32 during the transfer. *)
  let p = plat () in
  let stack =
    Stack.create p
      ~tcp_config:{ Tcp.default_config with Tcp.mss = 1024; checksum = true }
      ~local_addr:0x0a000001 ()
  in
  let peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum:true ()
  in
  in_sim p (fun () ->
      (* 3 segments before the wrap boundary, then 13 after. *)
      let iss = Tcp_seq.mask (-(3 * 1024) - 1) in
      let sess =
        Tcp.connect ~iss stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      for i = 0 to 15 do
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:(i * 1024);
        Tcp.send sess m
      done;
      Alcotest.(check int) "all bytes across the wrap" (16 * 1024)
        (Tcp_peer.unique_bytes peer ~port:5000);
      Alcotest.(check int) "no retransmissions" 0 (Tcp.stats sess).Tcp.rexmits)

let test_recv_across_seq_wrap () =
  let p = plat () in
  let cfg = { Tcp.default_config with Tcp.mss = 1024; checksum = true } in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:1024 ~checksum:true
      ~sequential_payload:true
      ~iss_base:(Tcp_seq.mask (-(4 * 1024) - 2001))
      ~ports:[ (2000, 4000) ] ()
  in
  let bytes = ref 0 and in_order = ref true and next_off = ref 0 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              let len = Msg.length m in
              if not (Msg.check_pattern m ~off:0 ~len ~stream_off:!next_off) then
                in_order := false;
              next_off := !next_off + len;
              bytes := !bytes + len;
              Msg.destroy m));
      Tcp_source.start src;
      for _ = 1 to 16 do
        ignore (Tcp_source.next src ~stream:0)
      done);
  Alcotest.(check int) "all bytes across the wrap" (16 * 1024) !bytes;
  Alcotest.(check bool) "stream stayed in order" true !in_order

(* ------------------------------------------------------------------ *)
(* Connection teardown corners                                         *)
(* ------------------------------------------------------------------ *)

let test_simultaneous_close_reaches_closing () =
  let p = plat () in
  let cfg = { Tcp.default_config with Tcp.mss = 1024 } in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:1024 ~checksum:true
      ~ports:[ (2000, 4000) ] ()
  in
  let the_sess = ref None in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          the_sess := Some sess;
          Tcp.set_receiver sess (fun m -> Msg.destroy m));
      Tcp_source.start src;
      let sess = Option.get !the_sess in
      (* Our FIN goes out; a peer FIN arrives that does NOT ack ours (it
         crossed ours on the wire): a genuine simultaneous close. *)
      let ack_before_fin = Tcp.snd_nxt sess in
      Tcp.close sess;
      let crossing_fin =
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
          ~dport:4000
          ~seq:(Tcp_seq.add (Tcp_seq.mask (0x10000000 + 2000)) 1)
          ~ack:ack_before_fin ~flags:Tcp_wire.flag_fin_ack ~win:(1 lsl 20) ~payload:None
          ~checksum:true
      in
      Fddi.input stack.Stack.fddi crossing_fin;
      Alcotest.(check string) "simultaneous close" "CLOSING" (Tcp.state_name sess);
      (* Peer finally acks our FIN: TIME_WAIT. *)
      let snd_nxt = Tcp.snd_nxt sess in
      let ack_frame =
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
          ~dport:4000
          ~seq:(Tcp_seq.add (Tcp_seq.mask (0x10000000 + 2000)) 2)
          ~ack:snd_nxt ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20) ~payload:None
          ~checksum:true
      in
      Fddi.input stack.Stack.fddi ack_frame;
      Alcotest.(check string) "after final ack" "TIME_WAIT" (Tcp.state_name sess))

let test_rst_closes_connection () =
  let p = plat () in
  let stack = Stack.create p ~tcp_config:Tcp.default_config ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:4096 ~checksum:true
      ~ports:[ (2000, 4000) ] ()
  in
  let the_sess = ref None in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          the_sess := Some sess;
          Tcp.set_receiver sess (fun m -> Msg.destroy m));
      Tcp_source.start src;
      ignore (Tcp_source.next src ~stream:0);
      let rst =
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
          ~dport:4000 ~seq:0 ~ack:0 ~flags:Tcp_wire.flag_rst ~win:0 ~payload:None
          ~checksum:true
      in
      Fddi.input stack.Stack.fddi rst;
      Alcotest.(check string) "reset" "CLOSED" (Tcp.state_name (Option.get !the_sess)))

let test_overlapping_segments_trimmed () =
  (* Segment [0,512) delivered; duplicate overlapping [256,768) arrives:
     the first 256 bytes must be trimmed, never re-delivered. *)
  let p = plat () in
  let cfg = { Tcp.default_config with Tcp.mss = 512 } in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:512 ~checksum:true
      ~sequential_payload:true ~ports:[ (2000, 4000) ] ()
  in
  ignore src;
  let bytes = ref 0 and in_order = ref true and next_off = ref 0 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              let len = Msg.length m in
              if not (Msg.check_pattern m ~off:0 ~len ~stream_off:!next_off) then
                in_order := false;
              next_off := !next_off + len;
              bytes := !bytes + len;
              Msg.destroy m));
      Tcp_source.start src;
      let iss = Tcp_seq.mask (0x10000000 + 2000) in
      let seg ~start ~len =
        let payload = Msg.create stack.Stack.pool len in
        Msg.fill_pattern payload ~off:0 ~len ~stream_off:start;
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
          ~dport:4000
          ~seq:(Tcp_seq.add (Tcp_seq.add iss 1) start)
          ~ack:1 ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20) ~payload:(Some payload)
          ~checksum:true
      in
      Fddi.input stack.Stack.fddi (seg ~start:0 ~len:512);
      Fddi.input stack.Stack.fddi (seg ~start:256 ~len:512));
  Alcotest.(check int) "exactly 768 unique bytes" 768 !bytes;
  Alcotest.(check bool) "in order" true !in_order

let test_fully_duplicate_segment_reacked () =
  let p = plat () in
  let cfg = { Tcp.default_config with Tcp.mss = 512 } in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:512 ~checksum:true
      ~ports:[ (2000, 4000) ] ()
  in
  let the_sess = ref None in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          the_sess := Some sess;
          Tcp.set_receiver sess (fun m -> Msg.destroy m));
      Tcp_source.start src;
      let iss = Tcp_seq.mask (0x10000000 + 2000) in
      let seg () =
        let payload = Msg.create stack.Stack.pool 512 in
        Msg.fill_pattern payload ~off:0 ~len:512 ~stream_off:0;
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
          ~dport:4000 ~seq:(Tcp_seq.add iss 1) ~ack:1 ~flags:Tcp_wire.flag_ack
          ~win:(1 lsl 20) ~payload:(Some payload) ~checksum:true
      in
      Fddi.input stack.Stack.fddi (seg ());
      let sess = Option.get !the_sess in
      let acks_before = (Tcp.stats sess).Tcp.acks_out in
      Fddi.input stack.Stack.fddi (seg ());
      let st = Tcp.stats sess in
      Alcotest.(check bool) "duplicate forced an immediate ack" true
        (st.Tcp.acks_out > acks_before);
      Alcotest.(check int) "only 512 bytes delivered" 512 st.Tcp.bytes_in)

(* ------------------------------------------------------------------ *)
(* Nagle's algorithm                                                   *)
(* ------------------------------------------------------------------ *)

let nagle_env ~nodelay =
  let p = plat () in
  let cfg = { Tcp.default_config with Tcp.mss = 1024; nodelay } in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000001 () in
  let peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum:true ()
  in
  (p, stack, peer)

let test_nagle_coalesces_small_writes () =
  let p, stack, peer = nagle_env ~nodelay:false in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      (* Ten 100-byte writes back-to-back: the first goes out alone, the
         rest coalesce behind the outstanding data. *)
      for i = 0 to 9 do
        let m = Msg.create stack.Stack.pool 100 in
        Msg.fill_pattern m ~off:0 ~len:100 ~stream_off:(i * 100);
        Tcp.send sess m
      done;
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 2.0);
      Alcotest.(check int) "all bytes arrive" 1000 (Tcp_peer.unique_bytes peer ~port:5000);
      Alcotest.(check bool)
        (Printf.sprintf "far fewer than 10 data segments (%d)"
           (Tcp_peer.data_segments peer))
        true
        (Tcp_peer.data_segments peer <= 5))

let test_nodelay_sends_immediately () =
  let p, stack, peer = nagle_env ~nodelay:true in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      for i = 0 to 9 do
        let m = Msg.create stack.Stack.pool 100 in
        Msg.fill_pattern m ~off:0 ~len:100 ~stream_off:(i * 100);
        Tcp.send sess m
      done;
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 2.0);
      Alcotest.(check int) "all bytes arrive" 1000 (Tcp_peer.unique_bytes peer ~port:5000);
      (* 10 writes, plus possibly one odd-tail retransmission: the driver
         acks every other segment, so the last one is recovered by the
         retransmit timer. *)
      let segs = Tcp_peer.data_segments peer in
      Alcotest.(check bool)
        (Printf.sprintf "one segment per write (%d)" segs)
        true
        (segs >= 10 && segs <= 11))

let test_nagle_never_holds_full_segments () =
  let p, stack, peer = nagle_env ~nodelay:false in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      for i = 0 to 9 do
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:(i * 1024);
        Tcp.send sess m
      done;
      Alcotest.(check int) "mss-sized writes flow immediately" (10 * 1024)
        (Tcp_peer.unique_bytes peer ~port:5000))

(* ------------------------------------------------------------------ *)
(* Infrastructure stress                                               *)
(* ------------------------------------------------------------------ *)

let test_timewheel_stress () =
  let p = plat () in
  let w = Timewheel.create p ~slot_ns:(Pnp_util.Units.ms 1.0) ~slots:16 ~name:"stress" () in
  let rng = Pnp_util.Prng.create 77 in
  let fired = ref [] in
  let cancelled = ref 0 in
  in_sim p (fun () ->
      let handles =
        List.init 400 (fun i ->
            let after = Pnp_util.Units.ms (0.5 +. Pnp_util.Prng.float rng 200.0) in
            (Timewheel.schedule w ~after (fun () -> fired := i :: !fired), i))
      in
      List.iter
        (fun (h, i) ->
          if i mod 2 = 0 && Timewheel.cancel w h then incr cancelled)
        handles;
      Sim.delay p.Platform.sim (Pnp_util.Units.ms 300.0));
  Alcotest.(check int) "half cancelled" 200 !cancelled;
  Alcotest.(check int) "other half fired" 200 (List.length !fired);
  List.iter (fun i -> Alcotest.(check bool) "only odd ids fired" true (i mod 2 = 1)) !fired;
  Alcotest.(check int) "wheel accounting" 200 (Timewheel.fired w);
  Alcotest.(check int) "nothing pending" 0 (Timewheel.pending w)

module Int_key = struct
  type t = int

  let hash x = x * 0x9e3779b1
  let equal = Int.equal
end

module Imap = Xmap.Make (Int_key)

let prop_xmap_matches_hashtbl =
  QCheck.Test.make ~name:"map manager agrees with a reference Hashtbl" ~count:80
    QCheck.(list_of_size Gen.(0 -- 120) (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let p = plat () in
      let m = Imap.create p ~buckets:8 ~name:"stress" () in
      let h = Hashtbl.create 16 in
      let ok = ref true in
      let runner () =
        List.iteri
          (fun i (op, k) ->
            match op with
            | 0 ->
              Imap.insert m k i;
              Hashtbl.replace h k i
            | 1 ->
              let a = Imap.remove m k and b = Hashtbl.mem h k in
              Hashtbl.remove h k;
              if a <> b then ok := false
            | _ ->
              let a = Imap.lookup m k and b = Hashtbl.find_opt h k in
              if a <> b then ok := false)
          ops;
        if Imap.length m <> Hashtbl.length h then ok := false
      in
      let _ = Sim.spawn p.Platform.sim ~name:"runner" runner in
      Sim.run ~until:(Pnp_util.Units.sec 10.0) p.Platform.sim;
      !ok)

let test_mpool_cache_limit_overflow () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      (* Allocate and free 100 header nodes: the per-thread cache keeps 64,
         the rest go back to the global allocator. *)
      let nodes = List.init 100 (fun _ -> Mpool.alloc pool 64) in
      List.iter (fun n -> Mpool.decref pool n) nodes;
      Alcotest.(check int) "all free" 0 (Mpool.live_nodes pool);
      let before_global = Mpool.global_allocations pool in
      let again = List.init 100 (fun _ -> Mpool.alloc pool 64) in
      (* 64 from the cache, 36 fresh from the global allocator. *)
      Alcotest.(check int) "cache refills 64" (before_global + 36)
        (Mpool.global_allocations pool);
      List.iter (fun n -> Mpool.decref pool n) again)

let test_sim_blocked_thread_diagnostics () =
  let sim = Sim.create () in
  let lock = Lock.create sim Arch.challenge_100 Lock.Unfair ~name:"held" in
  let _ =
    Sim.spawn sim ~name:"holder" (fun () ->
        Lock.acquire lock (* never released: the waiter deadlocks *))
  in
  let _ = Sim.spawn sim ~name:"waiter" (fun () -> Lock.acquire lock) in
  Sim.run sim;
  let blocked = Sim.blocked_threads sim in
  Alcotest.(check int) "one thread reported blocked" 1 (List.length blocked);
  Alcotest.(check string) "it is the waiter" "waiter"
    (Sim.thread_name (List.hd blocked));
  let s = Format.asprintf "%a" Sim.pp_blocked sim in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "printer mentions it" true (contains s "waiter")

let suites =
  [
    ( "edge.tcp",
      [
        Alcotest.test_case "send across 2^32 wrap" `Quick test_send_across_seq_wrap;
        Alcotest.test_case "recv across 2^32 wrap" `Quick test_recv_across_seq_wrap;
        Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close_reaches_closing;
        Alcotest.test_case "RST closes connection" `Quick test_rst_closes_connection;
        Alcotest.test_case "overlapping segments trimmed" `Quick
          test_overlapping_segments_trimmed;
        Alcotest.test_case "full duplicate re-acked" `Quick
          test_fully_duplicate_segment_reacked;
        Alcotest.test_case "Nagle coalesces small writes" `Quick
          test_nagle_coalesces_small_writes;
        Alcotest.test_case "TCP_NODELAY sends immediately" `Quick
          test_nodelay_sends_immediately;
        Alcotest.test_case "Nagle never holds full segments" `Quick
          test_nagle_never_holds_full_segments;
      ] );
    ( "edge.infra",
      [
        Alcotest.test_case "timewheel stress" `Quick test_timewheel_stress;
        Qrand.to_alcotest prop_xmap_matches_hashtbl;
        Alcotest.test_case "mpool cache overflow" `Quick test_mpool_cache_limit_overflow;
        Alcotest.test_case "blocked-thread diagnostics" `Quick
          test_sim_blocked_thread_diagnostics;
      ] );
  ]
