open Pnp_engine
open Pnp_xkern

let plat ?(message_caching = true) ?(map_locking = true) () =
  Platform.create ~message_caching ~map_locking Arch.challenge_100

(* Run [body] inside a simulated thread and drive the world to completion. *)
let in_sim plat body =
  let result = ref None in
  let _ = Sim.spawn plat.Platform.sim ~name:"test" (fun () -> result := Some (body ())) in
  Sim.run plat.Platform.sim;
  match !result with Some r -> r | None -> Alcotest.fail "simulated thread did not finish"

(* ------------------------------------------------------------------ *)
(* Mpool                                                               *)
(* ------------------------------------------------------------------ *)

let test_mpool_alloc_free () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let n = Mpool.alloc pool 100 in
      Alcotest.(check bool) "capacity >= request" true (Mpool.capacity n >= 100);
      Alcotest.(check int) "initial refcount" 1 (Mpool.refs n);
      Alcotest.(check int) "live" 1 (Mpool.live_nodes pool);
      Mpool.decref pool n;
      Alcotest.(check int) "free" 0 (Mpool.live_nodes pool))

let test_mpool_refcounting () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let n = Mpool.alloc pool 10 in
      Mpool.incref pool n;
      Mpool.incref pool n;
      Alcotest.(check int) "three refs" 3 (Mpool.refs n);
      Mpool.decref pool n;
      Mpool.decref pool n;
      Alcotest.(check int) "still live" 1 (Mpool.live_nodes pool);
      Mpool.decref pool n;
      Alcotest.(check int) "freed at zero" 0 (Mpool.live_nodes pool))

let test_mpool_cache_reuse () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let n1 = Mpool.alloc pool 64 in
      Mpool.decref pool n1;
      let before = Mpool.global_allocations pool in
      let n2 = Mpool.alloc pool 64 in
      Alcotest.(check int) "no new global alloc" before (Mpool.global_allocations pool);
      Alcotest.(check bool) "same node reused (LIFO)" true
        (Mpool.data n1 == Mpool.data n2);
      Alcotest.(check int) "one cache hit" 1 (Mpool.cache_hits pool);
      Mpool.decref pool n2)

let test_mpool_no_cache_goes_global () =
  let p = plat ~message_caching:false () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let n1 = Mpool.alloc pool 64 in
      Mpool.decref pool n1;
      let n2 = Mpool.alloc pool 64 in
      Mpool.decref pool n2;
      Alcotest.(check int) "every alloc global" 2 (Mpool.global_allocations pool);
      Alcotest.(check int) "no cache hits" 0 (Mpool.cache_hits pool))

let test_mpool_caching_is_faster () =
  let elapsed caching =
    let p = plat ~message_caching:caching () in
    let pool = Mpool.create p in
    let t_end = ref 0 in
    let _ =
      Sim.spawn p.Platform.sim ~name:"t" (fun () ->
          for _ = 1 to 100 do
            let n = Mpool.alloc pool 64 in
            Mpool.decref pool n
          done;
          t_end := Sim.now p.Platform.sim)
    in
    Sim.run p.Platform.sim;
    !t_end
  in
  Alcotest.(check bool) "cached alloc cheaper" true (elapsed true < elapsed false)

let test_mpool_large_not_cached () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let n = Mpool.alloc pool 100_000 in
      Alcotest.(check bool) "capacity exact-ish" true (Mpool.capacity n >= 100_000);
      Mpool.decref pool n;
      let _ = Mpool.alloc pool 100_000 in
      Alcotest.(check int) "large allocs always global" 2 (Mpool.global_allocations pool))

let test_mpool_caches_are_per_thread () =
  let p = plat () in
  let pool = Mpool.create p in
  (* Thread A frees a node; thread B allocating afterwards must not get it
     from A's cache. *)
  let a_data = ref None in
  let b_data = ref None in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:0 ~name:"a" (fun () ->
        let n = Mpool.alloc pool 64 in
        a_data := Some (Mpool.data n);
        Mpool.decref pool n)
  in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:1 ~name:"b" (fun () ->
        Sim.delay p.Platform.sim 1_000_000;
        let n = Mpool.alloc pool 64 in
        b_data := Some (Mpool.data n))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check bool) "different buffers" true
    (Option.get !a_data != Option.get !b_data)

let test_mpool_decref_below_zero_fails () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let n = Mpool.alloc pool 8 in
      Mpool.decref pool n;
      match Mpool.decref pool n with
      | () -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

(* Regression pin for the tid-indexed cache table: the alloc/decref fast
   path must be pure array indexing.  The table only reorganizes when a
   thread id exceeds its capacity, so after a first growth sized it for
   the threads in play, arbitrarily many alloc/free bursts — including
   from newly spawned threads within that capacity — must leave the
   growth counter untouched. *)
let test_mpool_cache_growths_flat_on_fast_path () =
  let p = plat () in
  let pool = Mpool.create p in
  for _ = 1 to 6 do
    ignore
      (Sim.spawn p.Platform.sim ~name:"warm" (fun () ->
           Mpool.decref pool (Mpool.alloc pool 256)))
  done;
  Sim.run p.Platform.sim;
  let growths = Mpool.cache_table_growths pool in
  Alcotest.(check bool) "first touches grew the table" true (growths > 0);
  for _ = 1 to 6 do
    ignore
      (Sim.spawn p.Platform.sim ~name:"burst" (fun () ->
           for _ = 1 to 200 do
             Mpool.decref pool (Mpool.alloc pool 256)
           done))
  done;
  Sim.run p.Platform.sim;
  Alcotest.(check int) "no cache-table work on the alloc/decref fast path"
    growths
    (Mpool.cache_table_growths pool)

(* ------------------------------------------------------------------ *)
(* Buffer arena                                                        *)
(* ------------------------------------------------------------------ *)

let with_arena on f =
  let was = Mpool.arena_enabled () in
  Mpool.set_arena on;
  Fun.protect ~finally:(fun () -> Mpool.set_arena was) f

(* A buffer re-enters the arena free lists only at refcount zero: dup a
   message (the retransmission-queue situation), destroy the original,
   then churn same-class allocations hard enough to recycle every loose
   buffer — the survivor's bytes must be untouched.  Caching is off so
   decref hits the arena recycler directly instead of parking nodes in
   the simulated tid caches. *)
let test_arena_shared_buffer_not_recycled () =
  with_arena true (fun () ->
      let p = plat ~message_caching:false () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let original = Msg.create pool 600 in
          Msg.fill_pattern original ~off:0 ~len:600 ~stream_off:7;
          let survivor = Msg.dup original in
          Msg.destroy original;
          for i = 0 to 199 do
            let m = Msg.create pool 600 in
            Msg.fill_pattern m ~off:0 ~len:600 ~stream_off:(i * 600);
            Msg.destroy m
          done;
          Alcotest.(check bool) "survivor bytes intact" true
            (Msg.check_pattern survivor ~off:0 ~len:600 ~stream_off:7);
          Msg.destroy survivor))

(* Recycling reuses the backing bytes: with the per-thread caches off, a
   destroy followed by a same-class alloc must hand back the same
   [Bytes.t] rather than a fresh host allocation. *)
let test_arena_recycles_buffers () =
  with_arena true (fun () ->
      let p = plat ~message_caching:false () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let n1 = Mpool.alloc pool 64 in
          let b1 = Mpool.data n1 in
          Mpool.decref pool n1;
          let n2 = Mpool.alloc pool 64 in
          Alcotest.(check bool) "backing bytes reused" true (b1 == Mpool.data n2);
          Mpool.decref pool n2))

(* Accounting and reset-at-quiescence: the outstanding-bytes gauge
   returns to zero when everything is destroyed, the high-water mark
   keeps the peak, and [quiesce] only trims the free lists — a fresh
   alloc afterwards still works (and starts a new outstanding count). *)
let test_arena_accounting_and_quiesce () =
  with_arena true (fun () ->
      let p = plat ~message_caching:false () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let msgs = List.init 8 (fun _ -> Msg.create pool 600) in
          let peak = Mpool.arena_out pool in
          Alcotest.(check bool) "bytes outstanding" true (peak > 0);
          Alcotest.(check bool) "hwm >= outstanding" true (Mpool.arena_hwm pool >= peak);
          List.iter Msg.destroy msgs;
          Alcotest.(check int) "all returned" 0 (Mpool.arena_out pool);
          Alcotest.(check bool) "hwm survives the drain" true (Mpool.arena_hwm pool >= peak);
          Mpool.quiesce ~retain:0 pool;
          let again = Msg.create pool 600 in
          Alcotest.(check bool) "alloc after quiesce" true (Mpool.arena_out pool > 0);
          Msg.destroy again;
          Alcotest.(check int) "and returns again" 0 (Mpool.arena_out pool)))

(* With the arena toggled off, nodes get fresh GC-managed buffers and
   the gauges stay flat — the A/B leg the determinism CI runs. *)
let test_arena_off_is_inert () =
  with_arena false (fun () ->
      let p = plat ~message_caching:false () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let n1 = Mpool.alloc pool 64 in
          let b1 = Mpool.data n1 in
          Mpool.decref pool n1;
          let n2 = Mpool.alloc pool 64 in
          Alcotest.(check bool) "no reuse when off" true (b1 != Mpool.data n2);
          Mpool.decref pool n2;
          Alcotest.(check int) "gauges flat" 0 (Mpool.arena_hwm pool)))

(* [Msg.unshare] under the arena: unsharing a dup'd message copies out
   into arena-drawn buffers; mutating the copy must leave the original
   — still holding the old buffer — untouched. *)
let test_arena_unshare_composes () =
  with_arena true (fun () ->
      let p = plat ~message_caching:false () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let original = Msg.create pool 128 in
          Msg.fill_pattern original ~off:0 ~len:128 ~stream_off:0;
          let copy = Msg.dup original in
          Msg.unshare copy ~off:5;
          Msg.set_u8 copy 5 0xEE;
          Alcotest.(check bool) "original untouched" true
            (Msg.check_pattern original ~off:0 ~len:128 ~stream_off:0);
          Alcotest.(check int) "copy mutated" 0xEE (Msg.get_u8 copy 5);
          Msg.destroy original;
          Msg.destroy copy;
          Alcotest.(check int) "everything returned" 0 (Mpool.arena_out pool)))

(* ------------------------------------------------------------------ *)
(* Msg                                                                 *)
(* ------------------------------------------------------------------ *)

let msg_env () =
  let p = plat () in
  (p, Mpool.create p)

let test_msg_create_length () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.create pool 100 in
      Alcotest.(check int) "length" 100 (Msg.length m);
      Msg.destroy m;
      Alcotest.(check int) "no leak" 0 (Mpool.live_nodes pool))

let test_msg_of_string_roundtrip () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "hello world" in
      Alcotest.(check string) "roundtrip" "hello world" (Msg.to_string m);
      Msg.destroy m)

let test_msg_push_pop_headers () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "payload" in
      Msg.push m 4;
      Alcotest.(check int) "grown" 11 (Msg.length m);
      Msg.set_u32 m 0 0xdeadbeef;
      Alcotest.(check int) "header readback" 0xdeadbeef (Msg.get_u32 m 0);
      Alcotest.(check string) "payload intact"
        "payload"
        (String.sub (Msg.to_string m) 4 7);
      Msg.pop m 4;
      Alcotest.(check string) "back to payload" "payload" (Msg.to_string m);
      Msg.destroy m)

let test_msg_pop_partial_part () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "abcdefgh" in
      Msg.pop m 3;
      Alcotest.(check string) "partial strip" "defgh" (Msg.to_string m);
      Msg.pop m 5;
      Alcotest.(check int) "empty" 0 (Msg.length m);
      Msg.destroy m;
      Alcotest.(check int) "no leak" 0 (Mpool.live_nodes pool))

let test_msg_pop_too_much_rejected () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "ab" in
      (match Msg.pop m 3 with
       | () -> Alcotest.fail "expected Invalid_argument"
       | exception Invalid_argument _ -> ());
      Msg.destroy m)

let test_msg_truncate () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "abcdefgh" in
      Msg.push m 2;
      Msg.set_u16 m 0 0x4142;
      Msg.truncate m 5;
      Alcotest.(check string) "first five bytes" "ABabc" (Msg.to_string m);
      Msg.destroy m;
      Alcotest.(check int) "no leak" 0 (Mpool.live_nodes pool))

let test_msg_dup_shares_and_refcounts () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "shared" in
      let d = Msg.dup m in
      Alcotest.(check string) "same contents" (Msg.to_string m) (Msg.to_string d);
      Alcotest.(check int) "one node live" 1 (Mpool.live_nodes pool);
      Msg.destroy m;
      Alcotest.(check string) "dup survives" "shared" (Msg.to_string d);
      Msg.destroy d;
      Alcotest.(check int) "all freed" 0 (Mpool.live_nodes pool))

let test_msg_dup_then_pop_independent () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "abcdef" in
      let d = Msg.dup m in
      Msg.pop d 3;
      Alcotest.(check string) "original intact" "abcdef" (Msg.to_string m);
      Alcotest.(check string) "dup advanced" "def" (Msg.to_string d);
      Msg.destroy m;
      Msg.destroy d)

let test_msg_multibyte_accessors () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.create pool 8 in
      Msg.set_u32 m 0 0x01020304;
      Msg.set_u16 m 4 0xbeef;
      Msg.set_u8 m 6 0x7f;
      Alcotest.(check int) "u32" 0x01020304 (Msg.get_u32 m 0);
      Alcotest.(check int) "u16" 0xbeef (Msg.get_u16 m 4);
      Alcotest.(check int) "u8" 0x7f (Msg.get_u8 m 6);
      (* big-endian byte order on the wire *)
      Alcotest.(check int) "network order" 0x01 (Msg.get_u8 m 0);
      Msg.destroy m)

let test_msg_accessors_span_parts () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "zz" in
      Msg.push m 1;
      (* First byte is the pushed header; u16 at 0 spans header|payload. *)
      Msg.set_u8 m 0 0xab;
      Alcotest.(check int) "spanning u16" 0xab7a (Msg.get_u16 m 0);
      Msg.destroy m)

(* The single-part fast path and the byte-wise fallback must agree when a
   value straddles a part boundary; writes through the fallback must read
   back through the fast path and vice versa. *)
let test_msg_accessors_straddle_parts () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "abcdefgh" in
      Msg.push m 3;
      (* Parts: [3-byte header][8-byte payload]; offsets 0-2 are in the
         header, 3+ in the payload. *)
      Msg.set_u32 m 1 0xdeadbeef;
      Alcotest.(check int) "u32 across the boundary" 0xdeadbeef (Msg.get_u32 m 1);
      Msg.set_u16 m 2 0x7b2d;
      Alcotest.(check int) "u16 across the boundary" 0x7b2d (Msg.get_u16 m 2);
      (* Bytes land where the byte path would put them. *)
      Alcotest.(check int) "high byte in the header part" 0x7b (Msg.get_u8 m 2);
      Alcotest.(check int) "low byte in the payload part" 0x2d (Msg.get_u8 m 3);
      (* Flush against the boundary but inside one part: the fast path. *)
      Msg.set_u32 m 3 0x01020304;
      Alcotest.(check int) "u32 at the part start" 0x01020304 (Msg.get_u32 m 3);
      Msg.set_u16 m 0 0xfeed;
      Alcotest.(check int) "u16 inside the header part" 0xfeed (Msg.get_u16 m 0);
      Msg.destroy m)

let test_msg_pattern_fill_check () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.create pool 1000 in
      Msg.push m 20;
      Msg.fill_pattern m ~off:20 ~len:1000 ~stream_off:5000;
      Alcotest.(check bool) "pattern verifies" true
        (Msg.check_pattern m ~off:20 ~len:1000 ~stream_off:5000);
      Alcotest.(check bool) "wrong stream offset fails" false
        (Msg.check_pattern m ~off:20 ~len:1000 ~stream_off:5001);
      Msg.set_u8 m 999 ((Msg.get_u8 m 999 + 1) land 0xff);
      Alcotest.(check bool) "corruption detected" false
        (Msg.check_pattern m ~off:20 ~len:1000 ~stream_off:5000);
      Msg.destroy m)

let test_msg_append_moves_contents () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let a = Msg.of_string pool "front" in
      let b = Msg.of_string pool "-back" in
      Msg.append a b;
      Alcotest.(check string) "concatenated" "front-back" (Msg.to_string a);
      Alcotest.(check int) "source emptied" 0 (Msg.length b);
      Msg.destroy b;
      Alcotest.(check string) "destroying source is safe" "front-back" (Msg.to_string a);
      (match Msg.append a a with
       | () -> Alcotest.fail "self-append must be rejected"
       | exception Invalid_argument _ -> ());
      Msg.destroy a;
      Alcotest.(check int) "no leak" 0 (Mpool.live_nodes pool))

let test_msg_iter_slices_covers_all () =
  let p, pool = msg_env () in
  in_sim p (fun () ->
      let m = Msg.of_string pool "0123456789" in
      Msg.push m 3;
      Msg.set_u8 m 0 (Char.code 'x');
      Msg.set_u8 m 1 (Char.code 'y');
      Msg.set_u8 m 2 (Char.code 'z');
      let buf = Buffer.create 13 in
      Msg.iter_slices m (fun b off len -> Buffer.add_subbytes buf b off len);
      Alcotest.(check string) "slices in order" "xyz0123456789" (Buffer.contents buf);
      Alcotest.(check int) "two parts" 2 (Msg.parts m);
      Msg.destroy m)

let prop_msg_ops_preserve_contents =
  QCheck.Test.make ~name:"msg push/pop/dup preserve contents" ~count:100
    QCheck.(pair (string_of_size Gen.(1 -- 200)) (list_of_size Gen.(0 -- 12) (int_bound 2)))
    (fun (payload, ops) ->
      let p, pool = msg_env () in
      in_sim p (fun () ->
          let reference = ref payload in
          let m = ref (Msg.of_string pool payload) in
          let headers = ref 0 in
          List.iter
            (fun op ->
              match op with
              | 0 ->
                (* push a 2-byte header of known content *)
                Msg.push !m 2;
                Msg.set_u8 !m 0 (Char.code 'H');
                Msg.set_u8 !m 1 (Char.code 'H');
                reference := "HH" ^ !reference;
                incr headers
              | 1 ->
                if String.length !reference >= 2 then begin
                  Msg.pop !m 2;
                  reference := String.sub !reference 2 (String.length !reference - 2)
                end
              | _ ->
                let d = Msg.dup !m in
                Msg.destroy !m;
                m := d)
            ops;
          let ok = String.equal (Msg.to_string !m) !reference in
          Msg.destroy !m;
          ok && Mpool.live_nodes pool = 0))

(* ------------------------------------------------------------------ *)
(* Xmap                                                                *)
(* ------------------------------------------------------------------ *)

module Int_key = struct
  type t = int

  let hash x = x * 2654435761
  let equal = Int.equal
end

module Imap = Xmap.Make (Int_key)

let test_xmap_insert_lookup_remove () =
  let p = plat () in
  let m = Imap.create p ~name:"test" () in
  in_sim p (fun () ->
      Imap.insert m 1 "one";
      Imap.insert m 2 "two";
      Alcotest.(check (option string)) "lookup 1" (Some "one") (Imap.lookup m 1);
      Alcotest.(check (option string)) "lookup 2" (Some "two") (Imap.lookup m 2);
      Alcotest.(check (option string)) "lookup missing" None (Imap.lookup m 3);
      Alcotest.(check int) "length" 2 (Imap.length m);
      Alcotest.(check bool) "remove" true (Imap.remove m 1);
      Alcotest.(check bool) "remove again" false (Imap.remove m 1);
      Alcotest.(check (option string)) "gone" None (Imap.lookup m 1);
      Alcotest.(check int) "length after" 1 (Imap.length m))

let test_xmap_insert_replaces () =
  let p = plat () in
  let m = Imap.create p ~name:"test" () in
  in_sim p (fun () ->
      Imap.insert m 7 "a";
      Imap.insert m 7 "b";
      Alcotest.(check (option string)) "replaced" (Some "b") (Imap.lookup m 7);
      Alcotest.(check int) "no duplicate" 1 (Imap.length m))

let test_xmap_one_behind_cache () =
  let p = plat () in
  let m = Imap.create p ~name:"test" () in
  in_sim p (fun () ->
      Imap.insert m 5 "five";
      ignore (Imap.lookup m 5);
      ignore (Imap.lookup m 5);
      ignore (Imap.lookup m 5);
      (* insert seeds the cache, so all three lookups hit *)
      Alcotest.(check int) "cache hits" 3 (Imap.cache_hits m);
      ignore (Imap.lookup m 99);
      Alcotest.(check int) "miss not cached" 3 (Imap.cache_hits m))

let test_xmap_cache_invalidated_on_remove () =
  let p = plat () in
  let m = Imap.create p ~name:"test" () in
  in_sim p (fun () ->
      Imap.insert m 5 "five";
      ignore (Imap.lookup m 5);
      ignore (Imap.remove m 5);
      Alcotest.(check (option string)) "stale cache not served" None (Imap.lookup m 5))

let test_xmap_many_keys_with_collisions () =
  let p = plat () in
  let m = Imap.create p ~buckets:4 ~name:"test" () in
  in_sim p (fun () ->
      for i = 0 to 99 do
        Imap.insert m i (string_of_int i)
      done;
      Alcotest.(check int) "all present" 100 (Imap.length m);
      for i = 0 to 99 do
        Alcotest.(check (option string))
          (Printf.sprintf "key %d" i)
          (Some (string_of_int i))
          (Imap.lookup m i)
      done)

let test_xmap_iter_visits_all () =
  let p = plat () in
  let m = Imap.create p ~name:"test" () in
  in_sim p (fun () ->
      List.iter (fun i -> Imap.insert m i i) [ 1; 2; 3; 4; 5 ];
      let sum = ref 0 in
      Imap.iter m (fun _ v -> sum := !sum + v);
      Alcotest.(check int) "sum of values" 15 !sum)

let test_xmap_iter_can_recurse () =
  let p = plat () in
  let m = Imap.create p ~name:"test" () in
  in_sim p (fun () ->
      Imap.insert m 1 10;
      Imap.insert m 2 20;
      (* mapForEach calling lookup on the same (counting-)locked map *)
      let acc = ref 0 in
      Imap.iter m (fun k _ -> acc := !acc + Option.value ~default:0 (Imap.lookup m k));
      Alcotest.(check int) "recursive lookups fine" 30 !acc)

(* The sharded map against a Hashtbl oracle: a random mix of
   insert/remove/lookup over a colliding key space, spread over several
   shards with tiny initial bucket arrays so resizes fire constantly.
   Lookups (through the 1-behind cache), length and iter coverage must
   all agree with the oracle at every step. *)
let prop_xmap_matches_hashtbl =
  QCheck.Test.make ~name:"xmap agrees with a Hashtbl oracle" ~count:60
    QCheck.(
      list_of_size Gen.(0 -- 400) (pair (int_bound 2) (int_bound 100)))
    (fun ops ->
      let p = plat () in
      let m = Imap.create p ~shards:4 ~buckets:2 ~name:"oracle" () in
      let oracle : (int, int) Hashtbl.t = Hashtbl.create 16 in
      in_sim p (fun () ->
          List.iter
            (fun (op, k) ->
              match op with
              | 0 ->
                Imap.insert m k (k * 7);
                Hashtbl.replace oracle k (k * 7)
              | 1 ->
                let expect = Hashtbl.mem oracle k in
                Hashtbl.remove oracle k;
                if Imap.remove m k <> expect then
                  QCheck.Test.fail_report "remove disagrees with oracle"
              | _ ->
                if Imap.lookup m k <> Hashtbl.find_opt oracle k then
                  QCheck.Test.fail_report "lookup disagrees with oracle")
            ops;
          Hashtbl.iter
            (fun k v ->
              if Imap.lookup m k <> Some v then
                QCheck.Test.fail_report "binding lost (resize or remove ate it)")
            oracle;
          let seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
          Imap.iter m (fun k v ->
              if Hashtbl.mem seen k then QCheck.Test.fail_report "iter visited a key twice";
              Hashtbl.replace seen k v);
          Hashtbl.length seen = Hashtbl.length oracle
          && Imap.length m = Hashtbl.length oracle))

(* Chain-growth regression: at 10^5 keys the per-shard bucket doubling
   must keep the mean chain length at the [grow_load] bound instead of
   the seed behaviour (fixed 32 buckets, mean chains in the thousands). *)
let test_xmap_chain_length_bounded_at_100k () =
  let p = plat () in
  let m = Imap.create p ~shards:8 ~buckets:4 ~name:"big" () in
  in_sim p (fun () ->
      let n = 100_000 in
      for i = 1 to n do
        Imap.insert m i i
      done;
      Alcotest.(check int) "all inserted" n (Imap.length m);
      Alcotest.(check bool) "buckets doubled along the way" true (Imap.resizes m > 0);
      let mean = float_of_int (Imap.length m) /. float_of_int (Imap.bucket_count m) in
      Alcotest.(check bool)
        (Printf.sprintf "mean chain length %.2f stays bounded" mean)
        true (mean <= 2.01);
      Alcotest.(check (option int)) "first key survives" (Some 1) (Imap.lookup m 1);
      Alcotest.(check (option int)) "last key survives" (Some n) (Imap.lookup m n))

let test_xmap_unlocked_lookup_cheaper () =
  let cost locking =
    let p = plat ~map_locking:locking () in
    let m = Imap.create p ~name:"test" () in
    let t_end = ref 0 in
    let _ =
      Sim.spawn p.Platform.sim ~name:"t" (fun () ->
          Imap.insert m 1 1;
          for _ = 1 to 100 do
            ignore (Imap.lookup m 1)
          done;
          t_end := Sim.now p.Platform.sim)
    in
    Sim.run p.Platform.sim;
    !t_end
  in
  Alcotest.(check bool) "unlocked lookup cheaper" true (cost false < cost true)

(* ------------------------------------------------------------------ *)
(* Timewheel                                                           *)
(* ------------------------------------------------------------------ *)

let test_wheel_fires_in_order () =
  let p = plat () in
  let w = Timewheel.create p ~name:"w" () in
  let fired = ref [] in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 30.0) (fun () -> fired := 3 :: !fired));
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 10.0) (fun () -> fired := 1 :: !fired));
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 20.0) (fun () -> fired := 2 :: !fired)))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check (list int)) "fire order" [ 1; 2; 3 ] (List.rev !fired);
  Alcotest.(check int) "all fired" 3 (Timewheel.fired w);
  Alcotest.(check int) "none pending" 0 (Timewheel.pending w)

let test_wheel_cancel () =
  let p = plat () in
  let w = Timewheel.create p ~name:"w" () in
  let fired = ref false in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        let h = Timewheel.schedule w ~after:(Pnp_util.Units.ms 50.0) (fun () -> fired := true) in
        Sim.delay p.Platform.sim (Pnp_util.Units.ms 10.0);
        Alcotest.(check bool) "cancel succeeds" true (Timewheel.cancel w h);
        Alcotest.(check bool) "second cancel fails" false (Timewheel.cancel w h))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check bool) "never fired" false !fired;
  Alcotest.(check int) "not pending" 0 (Timewheel.pending w)

let test_wheel_wraps_around () =
  (* An event further away than slots*slot_ns must survive wheel laps. *)
  let p = plat () in
  let w = Timewheel.create p ~slot_ns:(Pnp_util.Units.ms 1.0) ~slots:8 ~name:"w" () in
  let fired_at = ref 0 in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        ignore
          (Timewheel.schedule w ~after:(Pnp_util.Units.ms 20.0) (fun () ->
               fired_at := Sim.now p.Platform.sim)))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check bool)
    (Printf.sprintf "fired after full laps (at %d)" !fired_at)
    true
    (!fired_at >= Pnp_util.Units.ms 20.0);
  Alcotest.(check int) "fired once" 1 (Timewheel.fired w)

let test_wheel_timer_can_take_locks () =
  let p = plat () in
  let w = Timewheel.create p ~name:"w" () in
  let lock = Lock.create p.Platform.sim p.Platform.arch Lock.Unfair ~name:"state" in
  let ok = ref false in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        ignore
          (Timewheel.schedule w ~after:(Pnp_util.Units.ms 5.0) (fun () ->
               Lock.with_lock lock (fun () -> ok := true))))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check bool) "callback ran under lock" true !ok

let test_wheel_reschedule_after_idle () =
  let p = plat () in
  let w = Timewheel.create p ~name:"w" () in
  let count = ref 0 in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 5.0) (fun () -> incr count));
        Sim.delay p.Platform.sim (Pnp_util.Units.ms 100.0);
        (* wheel went idle; a new schedule must restart it *)
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 5.0) (fun () -> incr count)))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check int) "both fired" 2 !count

let test_wheel_cancel_after_fire () =
  let p = plat () in
  let w = Timewheel.create p ~name:"w" () in
  let fired = ref false in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        let h = Timewheel.schedule w ~after:(Pnp_util.Units.ms 5.0) (fun () -> fired := true) in
        Sim.delay p.Platform.sim (Pnp_util.Units.ms 50.0);
        Alcotest.(check bool) "event already fired" true !fired;
        Alcotest.(check bool) "late cancel reports false" false (Timewheel.cancel w h))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check int) "fired once" 1 (Timewheel.fired w);
  Alcotest.(check int) "none pending" 0 (Timewheel.pending w)

let test_wheel_rearm_in_callback () =
  (* A callback that re-arms itself: the retransmission-timer shape.  The
     wheel must accept a schedule from inside an expiry callback. *)
  let p = plat () in
  let w = Timewheel.create p ~name:"w" () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 7.0) tick)
  in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 7.0) tick))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check int) "periodic timer fired 5 times" 5 !count;
  Alcotest.(check int) "fired counter" 5 (Timewheel.fired w);
  Alcotest.(check int) "none pending" 0 (Timewheel.pending w)

let test_wheel_mass_cancel () =
  (* Teardown shape: a connection dying with many timers outstanding
     cancels them all; the wheel must survive and stay usable. *)
  let p = plat () in
  let w = Timewheel.create p ~slot_ns:(Pnp_util.Units.ms 1.0) ~slots:8 ~name:"w" () in
  let fired = ref 0 in
  let late = ref false in
  let _ =
    Sim.spawn p.Platform.sim ~name:"sched" (fun () ->
        let handles =
          List.init 50 (fun i ->
              Timewheel.schedule w
                ~after:(Pnp_util.Units.ms (5.0 +. float_of_int i))
                (fun () -> incr fired))
        in
        Alcotest.(check int) "all pending" 50 (Timewheel.pending w);
        List.iter
          (fun h -> Alcotest.(check bool) "cancel succeeds" true (Timewheel.cancel w h))
          handles;
        Alcotest.(check int) "none pending after mass cancel" 0 (Timewheel.pending w);
        (* The wheel still works after the teardown. *)
        ignore (Timewheel.schedule w ~after:(Pnp_util.Units.ms 3.0) (fun () -> late := true)))
  in
  Sim.run p.Platform.sim;
  Alcotest.(check int) "no cancelled event fired" 0 !fired;
  Alcotest.(check bool) "wheel alive after mass cancel" true !late

let suites =
  [
    ( "xkern.mpool",
      [
        Alcotest.test_case "alloc/free" `Quick test_mpool_alloc_free;
        Alcotest.test_case "refcounting" `Quick test_mpool_refcounting;
        Alcotest.test_case "cache reuse (LIFO)" `Quick test_mpool_cache_reuse;
        Alcotest.test_case "no cache goes global" `Quick test_mpool_no_cache_goes_global;
        Alcotest.test_case "caching is faster" `Quick test_mpool_caching_is_faster;
        Alcotest.test_case "large not cached" `Quick test_mpool_large_not_cached;
        Alcotest.test_case "caches are per-thread" `Quick test_mpool_caches_are_per_thread;
        Alcotest.test_case "decref below zero fails" `Quick test_mpool_decref_below_zero_fails;
        Alcotest.test_case "arena spares shared buffers" `Quick
          test_arena_shared_buffer_not_recycled;
        Alcotest.test_case "arena recycles at refs zero" `Quick test_arena_recycles_buffers;
        Alcotest.test_case "arena accounting and quiesce" `Quick
          test_arena_accounting_and_quiesce;
        Alcotest.test_case "arena off is inert" `Quick test_arena_off_is_inert;
        Alcotest.test_case "arena composes with unshare" `Quick test_arena_unshare_composes;
        Alcotest.test_case "cache table flat on fast path" `Quick
          test_mpool_cache_growths_flat_on_fast_path;
      ] );
    ( "xkern.msg",
      [
        Alcotest.test_case "create/length" `Quick test_msg_create_length;
        Alcotest.test_case "of_string roundtrip" `Quick test_msg_of_string_roundtrip;
        Alcotest.test_case "push/pop headers" `Quick test_msg_push_pop_headers;
        Alcotest.test_case "pop partial part" `Quick test_msg_pop_partial_part;
        Alcotest.test_case "pop too much rejected" `Quick test_msg_pop_too_much_rejected;
        Alcotest.test_case "truncate" `Quick test_msg_truncate;
        Alcotest.test_case "dup shares/refcounts" `Quick test_msg_dup_shares_and_refcounts;
        Alcotest.test_case "dup then pop independent" `Quick test_msg_dup_then_pop_independent;
        Alcotest.test_case "multibyte accessors" `Quick test_msg_multibyte_accessors;
        Alcotest.test_case "accessors span parts" `Quick test_msg_accessors_span_parts;
        Alcotest.test_case "accessors straddle parts" `Quick
          test_msg_accessors_straddle_parts;
        Alcotest.test_case "pattern fill/check" `Quick test_msg_pattern_fill_check;
        Alcotest.test_case "append moves contents" `Quick test_msg_append_moves_contents;
        Alcotest.test_case "iter_slices covers all" `Quick test_msg_iter_slices_covers_all;
        Qrand.to_alcotest prop_msg_ops_preserve_contents;
      ] );
    ( "xkern.xmap",
      [
        Alcotest.test_case "insert/lookup/remove" `Quick test_xmap_insert_lookup_remove;
        Alcotest.test_case "insert replaces" `Quick test_xmap_insert_replaces;
        Alcotest.test_case "1-behind cache" `Quick test_xmap_one_behind_cache;
        Alcotest.test_case "cache invalidated on remove" `Quick
          test_xmap_cache_invalidated_on_remove;
        Alcotest.test_case "collisions handled" `Quick test_xmap_many_keys_with_collisions;
        Alcotest.test_case "iter visits all" `Quick test_xmap_iter_visits_all;
        Alcotest.test_case "iter can recurse (counting lock)" `Quick test_xmap_iter_can_recurse;
        Alcotest.test_case "unlocked lookup cheaper" `Quick test_xmap_unlocked_lookup_cheaper;
        Qrand.to_alcotest prop_xmap_matches_hashtbl;
        Alcotest.test_case "chain length bounded at 100k keys" `Slow
          test_xmap_chain_length_bounded_at_100k;
      ] );
    ( "xkern.timewheel",
      [
        Alcotest.test_case "fires in order" `Quick test_wheel_fires_in_order;
        Alcotest.test_case "cancel" `Quick test_wheel_cancel;
        Alcotest.test_case "wraps around" `Quick test_wheel_wraps_around;
        Alcotest.test_case "timer can take locks" `Quick test_wheel_timer_can_take_locks;
        Alcotest.test_case "reschedules after idle" `Quick test_wheel_reschedule_after_idle;
        Alcotest.test_case "cancel after fire" `Quick test_wheel_cancel_after_fire;
        Alcotest.test_case "re-arm inside callback" `Quick test_wheel_rearm_in_callback;
        Alcotest.test_case "mass cancel at teardown" `Quick test_wheel_mass_cancel;
      ] );
  ]
