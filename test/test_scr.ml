(* State-compute replication (SCR) and the read-mostly RCU hybrid:
   determinism of the ext-scr figure across -j and the cell memo, the
   bounded log's truncation/resync path, the append->apply happens-before
   channel (including its seeded defect), config validation, the
   recovery oracle over SCR, and RCU's lock-free read path under
   duplicated segments. *)

open Pnp_engine
open Pnp_util
open Pnp_faults
open Pnp_proto
open Pnp_driver
open Pnp_harness
open Pnp_analysis

let with_jobs n f =
  let old = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs old) f

let with_memo on f =
  Run.set_cell_memo on;
  Run.clear_cell_memo ();
  Fun.protect
    ~finally:(fun () ->
      Run.set_cell_memo true;
      Run.clear_cell_memo ())
    f

(* ------------------------------------------------------------------ *)
(* Figure determinism: -j and memo must not change a byte              *)
(* ------------------------------------------------------------------ *)

let scr_opts =
  {
    Pnp_figures.Opts.max_procs = 4;
    seeds = 1;
    warmup = Units.ms 10.0;
    measure = Units.ms 30.0;
  }

let scr_payload () =
  Json_out.figure_json ~id:"ext-scr" ~jobs:1 ~elapsed_s:0.0
    (Pnp_figures.Fig_scr.scr_data scr_opts)

let test_fig_scr_deterministic () =
  let cold = with_memo false scr_payload in
  let warm =
    with_memo true (fun () ->
        let first = scr_payload () in
        let second = scr_payload () in
        Alcotest.(check string) "memo-served repeat identical" first second;
        first)
  in
  Alcotest.(check string) "memo off and on byte-identical" cold warm;
  let serial = with_jobs 1 scr_payload in
  let parallel = with_jobs 4 scr_payload in
  Alcotest.(check string) "-j 1 and -j 4 byte-identical" serial parallel

(* ------------------------------------------------------------------ *)
(* Bounded log: a tiny bound must force truncation and resyncs         *)
(* ------------------------------------------------------------------ *)

let test_small_bound_truncates_and_resyncs () =
  let cfg =
    Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
      ~tcp_locking:Tcp.Scr ~scr_log_bound:4 ~procs:4
      ~warmup:(Units.ms 10.0) ~measure:(Units.ms 40.0) ()
  in
  let r = Run.run cfg in
  Alcotest.(check bool) "appends happened" true (r.Run.scr_appends > 0);
  Alcotest.(check bool)
    (Printf.sprintf "bound 4 forces resyncs (appends=%d replayed=%d resyncs=%d)"
       r.Run.scr_appends r.Run.scr_replayed r.Run.scr_resyncs)
    true
    (r.Run.scr_resyncs > 0);
  (* A roomy bound on the same cell stays on the replay path: resyncs
     are only the per-replica bootstraps, strictly fewer than above. *)
  let roomy = Run.run { cfg with Config.scr_log_bound = 4096 } in
  Alcotest.(check bool) "roomy bound resyncs fewer" true
    (roomy.Run.scr_resyncs < r.Run.scr_resyncs);
  Alcotest.(check bool) "roomy bound replays more" true
    (roomy.Run.scr_replayed >= r.Run.scr_replayed)

(* ------------------------------------------------------------------ *)
(* The append->apply HB channel and its seeded defect                  *)
(* ------------------------------------------------------------------ *)

let make_trace evs =
  let t = Trace.create () in
  Trace.enable t;
  (* The tracer was just enabled unconditionally above. *)
  List.iteri (fun i (tid, ev) -> Trace.emit t ~ts:(i * 10) ~tid ~cpu:0 ev) evs (* lint:allow *);
  t

let append idx = Trace.Scr_append { log = "scr:conn0"; idx }
let apply idx = Trace.Scr_apply { log = "scr:conn0"; idx }
let apply_end idx = Trace.Scr_apply_end { log = "scr:conn0"; idx }

(* The healthy shape, mirroring what the SCR receive path emits: the
   owner appends, then applies its own entry (writing replicated state
   inside the apply section); a replica later applies the same entry.
   The owner's apply-end release chains to the replica's apply acquire,
   ordering the two writes. *)
let test_hb_scr_chain_orders_accesses () =
  let t =
    make_trace
      [
        (0, append 0);
        (0, apply 0);
        (0, Trace.Access { state = "conn0.rcv_nxt"; write = true });
        (0, apply_end 0);
        (1, apply 0);
        (1, Trace.Access { state = "conn0.rcv_nxt"; write = true });
        (1, apply_end 0);
      ]
  in
  Alcotest.(check int) "no findings on the healthy chain" 0
    (List.length (Hb.check t))

(* The seeded defect: a replica applies log entry 2 when only entry 0
   has ever been appended — reading ahead of the published tail.  The
   checker must flag exactly this. *)
let test_hb_scr_read_ahead_flagged () =
  let t = make_trace [ (0, append 0); (1, apply 2); (1, apply_end 2) ] in
  let findings = Hb.check t in
  Alcotest.(check int) "exactly one finding" 1 (List.length findings);
  let f = List.hd findings in
  Alcotest.(check string) "from the hb checker" "hb-race" f.Finding.checker;
  Alcotest.(check bool)
    (Printf.sprintf "message names the read-ahead (%s)" f.Finding.message)
    true
    (let has needle =
       let n = String.length needle and m = String.length f.Finding.message in
       let rec go i = i + n <= m && (String.sub f.Finding.message i n = needle || go (i + 1)) in
       go 0
     in
     has "ahead of the appended tail")

(* ------------------------------------------------------------------ *)
(* Config validation                                                   *)
(* ------------------------------------------------------------------ *)

let stack_with cfg () =
  let plat = Platform.create ~seed:1 Arch.challenge_100 in
  ignore (Stack.create plat ~tcp_config:cfg ~local_addr:0x0a000001 ())

let rejects what cfg =
  match stack_with cfg () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_scr_config_validation () =
  rejects "scr+ticketing"
    { Tcp.default_config with Tcp.locking = Tcp.Scr; ticketing = true };
  rejects "scr+cksum_under_lock"
    { Tcp.default_config with Tcp.locking = Tcp.Scr; cksum_under_lock = true };
  rejects "scr_log_bound < 2"
    { Tcp.default_config with Tcp.locking = Tcp.Scr; scr_log_bound = 1 };
  (* The same knobs are fine under the locked disciplines. *)
  stack_with { Tcp.default_config with Tcp.locking = Tcp.One; ticketing = true } ()

(* ------------------------------------------------------------------ *)
(* Recovery oracle over SCR under overload                             *)
(* ------------------------------------------------------------------ *)

let test_incast_scr_recovers () =
  let o = Overload.incast ~senders:8 ~bytes_per_flow:2048 ~tcp_locking:Tcp.Scr () in
  if not (Overload.passed o) then
    Alcotest.failf "SCR incast failed the oracle:\n%s"
      (String.concat "\n" (List.map Finding.to_string o.Overload.findings));
  Alcotest.(check int) "all flows completed" o.Overload.accepted o.Overload.completed

(* ------------------------------------------------------------------ *)
(* RCU: duplicated segments are answered without the writer lock       *)
(* ------------------------------------------------------------------ *)

let test_rcu_reads_fire_on_duplicates () =
  let plat = Platform.create ~seed:1 Arch.challenge_100 in
  let cfg = { Tcp.default_config with Tcp.mss = 1024; locking = Tcp.Rcu } in
  let a = Stack.create plat ~tcp_config:cfg ~local_addr:0x0a000001 () in
  let b = Stack.create plat ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let plan = Faults.plan ~name:"dup-heavy" [ Faults.Duplicate { p = 0.25 } ] in
  let _link = Link.connect plat ~plan ~a ~b () in
  let payload = String.make 30_000 'x' in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"rcu-server" (fun () ->
        let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:80 in
        let sock = Socket.Listener.accept lst in
        let rec drain () =
          match Socket.recv_string sock with Some _ -> drain () | None -> ()
        in
        drain ())
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"rcu-client" (fun () ->
        let sock =
          Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:5000
            ~remote_addr:0x0a000002 ~remote_port:80
        in
        Socket.send_string sock payload;
        Socket.close sock)
  in
  Sim.run ~until:(Units.sec 30.0) plat.Platform.sim;
  let reads stack =
    List.fold_left
      (fun acc s ->
        match Tcp.rcu_counters s with Some (r, _) -> acc + r | None -> acc)
      0
      (Tcp.sessions stack.Stack.tcp)
  in
  let total = reads a + reads b in
  Alcotest.(check bool)
    (Printf.sprintf "duplicate segments took the lock-free path (reads=%d)" total)
    true (total > 0)

let suites =
  [
    ( "scr",
      [
        Alcotest.test_case "ext-scr figure deterministic (-j, memo)" `Quick
          test_fig_scr_deterministic;
        Alcotest.test_case "small log bound truncates and resyncs" `Quick
          test_small_bound_truncates_and_resyncs;
        Alcotest.test_case "HB: append->apply chain orders accesses" `Quick
          test_hb_scr_chain_orders_accesses;
        Alcotest.test_case "HB: read-ahead of the tail is flagged" `Quick
          test_hb_scr_read_ahead_flagged;
        Alcotest.test_case "config validation" `Quick test_scr_config_validation;
        Alcotest.test_case "incast over SCR passes the recovery oracle" `Quick
          test_incast_scr_recovers;
        Alcotest.test_case "RCU reads fire on duplicated segments" `Quick
          test_rcu_reads_fire_on_duplicates;
      ] );
  ]
