(* Overload robustness: fairness/percentile statistics, the soft-watermark
   admission machinery, the liveness watchdog, and the incast /
   shared-bottleneck scenarios with their end-to-end oracle. *)

open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_harness
open Pnp_analysis

let plat ?(seed = 17) () = Platform.create ~seed Arch.challenge_100
let ms = Units.ms

let in_sim plat body =
  let result = ref None in
  let _ = Sim.spawn plat.Platform.sim ~name:"test" (fun () -> result := Some (body ())) in
  Sim.run plat.Platform.sim;
  match !result with Some r -> r | None -> Alcotest.fail "simulated thread did not finish"

let feq name expected got =
  Alcotest.(check (float 1e-9)) name expected got

(* ------------------------------------------------------------------ *)
(* Report statistics                                                    *)
(* ------------------------------------------------------------------ *)

let test_jain () =
  feq "even split" 1.0 (Report.jain [ 1.0; 1.0; 1.0; 1.0 ]);
  feq "one flow has everything" 0.25 (Report.jain [ 1.0; 0.0; 0.0; 0.0 ]);
  (* (4+2)^2 / (2 * (16+4)) = 36/40 *)
  feq "two-to-one" 0.9 (Report.jain [ 4.0; 2.0 ]);
  feq "empty" 1.0 (Report.jain []);
  feq "all zero" 1.0 (Report.jain [ 0.0; 0.0; 0.0 ]);
  feq "scale invariant" (Report.jain [ 4.0; 2.0 ]) (Report.jain [ 400.0; 200.0 ])

let test_percentile () =
  let xs = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  feq "median" 3.0 (Report.percentile 50.0 xs);
  feq "max" 5.0 (Report.percentile 100.0 xs);
  feq "p99 is the max of five" 5.0 (Report.percentile 99.0 xs);
  feq "p20 nearest rank" 1.0 (Report.percentile 20.0 xs);
  feq "singleton" 7.0 (Report.percentile 50.0 [ 7.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Report.percentile: empty list")
    (fun () -> ignore (Report.percentile 50.0 []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Report.percentile: p out of range") (fun () ->
      ignore (Report.percentile 101.0 [ 1.0 ]))

(* ------------------------------------------------------------------ *)
(* Mpool soft watermark / admission control                             *)
(* ------------------------------------------------------------------ *)

let test_watermark_edges () =
  let p = plat () in
  let pool = Mpool.create ~capacity:8 ~soft_watermark:4 p in
  in_sim p (fun () ->
      Alcotest.(check bool) "fresh pool not under pressure" false
        (Mpool.under_pressure pool);
      let nodes = ref [] in
      for _ = 1 to 4 do
        nodes := Mpool.alloc pool 64 :: !nodes
      done;
      Alcotest.(check bool) "at watermark: under pressure" true
        (Mpool.under_pressure pool);
      Alcotest.(check int) "one upward crossing" 1 (Mpool.pressure_entries pool);
      Alcotest.(check int) "headroom counts to hard capacity" 4 (Mpool.headroom pool);
      for _ = 1 to 4 do
        nodes := Mpool.alloc pool 64 :: !nodes
      done;
      Alcotest.(check bool) "hard capacity refuses try_alloc" true
        (Mpool.try_alloc pool 64 = None);
      Alcotest.(check int) "refusal accounted" 1 (Mpool.refusals pool);
      List.iter (Mpool.decref pool) !nodes;
      Alcotest.(check bool) "drained pool not under pressure" false
        (Mpool.under_pressure pool);
      Alcotest.(check int) "still one crossing" 1 (Mpool.pressure_entries pool))

let test_await_headroom_wakes () =
  let p = plat () in
  let sim = p.Platform.sim in
  let pool = Mpool.create ~capacity:8 ~soft_watermark:4 p in
  let released_at = ref (-1) in
  let admitted_at = ref (-1) in
  let _ =
    Sim.spawn sim ~name:"hog" (fun () ->
        let nodes = List.init 6 (fun _ -> Mpool.alloc pool 64) in
        Sim.delay sim (ms 5.0);
        released_at := Sim.now sim;
        List.iter (Mpool.decref pool) nodes)
  in
  let _ =
    Sim.spawn sim ~name:"parked" (fun () ->
        Sim.delay sim (ms 1.0);
        Mpool.await_headroom pool;
        admitted_at := Sim.now sim)
  in
  Sim.run sim;
  Alcotest.(check bool) "parked thread was admitted" true (!admitted_at >= 0);
  Alcotest.(check bool) "only after the hog released" true
    (!admitted_at >= !released_at)

(* ------------------------------------------------------------------ *)
(* Sockbuf overflow policy                                              *)
(* ------------------------------------------------------------------ *)

let test_sockbuf_policies () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let dropper = Sockbuf.create ~policy:Sockbuf.Drop pool ~max:1000 in
      Alcotest.(check bool) "fits: queued" true
        (Sockbuf.offer dropper (Msg.of_string pool (String.make 800 'a')) = `Queued);
      Alcotest.(check bool) "overflow under Drop: dropped" true
        (Sockbuf.offer dropper (Msg.of_string pool (String.make 800 'b')) = `Dropped);
      Alcotest.(check int) "drop accounted" 1 (Sockbuf.drops dropper);
      Alcotest.(check int) "dropped bytes accounted" 800 (Sockbuf.dropped_bytes dropper);
      Alcotest.(check int) "buffer holds only the first message" 800 (Sockbuf.cc dropper);
      let blocker = Sockbuf.create pool ~max:1000 in
      let m1 = Msg.of_string pool (String.make 800 'a') in
      Alcotest.(check bool) "fits: queued" true (Sockbuf.offer blocker m1 = `Queued);
      let m2 = Msg.of_string pool (String.make 800 'b') in
      Alcotest.(check bool) "overflow under Block: must wait" true
        (Sockbuf.offer blocker m2 = `Must_wait);
      Alcotest.(check int) "nothing shed" 0 (Sockbuf.drops blocker);
      Msg.destroy m2)

(* ------------------------------------------------------------------ *)
(* Liveness watchdog                                                    *)
(* ------------------------------------------------------------------ *)

(* Seeded defect: a thread parks on a gate nobody will ever open.  The
   watchdog must turn the would-be hang into a finding that names the
   stuck thread, and stop the run. *)
let test_watchdog_catches_stall () =
  let p = plat () in
  let sim = p.Platform.sim in
  let _ =
    Sim.spawn sim ~name:"gate-waiter" (fun () ->
        Sim.suspend sim (fun _resume -> (* the gate never opens *) ()))
  in
  let wd = Watchdog.install sim ~stall_ns:(ms 10.0) ~stop_on_stall:true
      ~progress:(fun () -> 0) ()
  in
  Sim.run sim;
  (match Watchdog.stalls wd with
   | [ s ] ->
     Alcotest.(check bool) "stall time is one horizon" true (s.Watchdog.at = ms 10.0);
     Alcotest.(check bool) "suspect list names the waiter" true
       (List.exists (fun (_, name) -> name = "gate-waiter") s.Watchdog.blocked);
     let d = Watchdog.describe_stall s in
     let contains sub s =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "description names the stuck thread" true
       (contains "gate-waiter" d)
   | l -> Alcotest.failf "expected exactly one stall, got %d" (List.length l));
  Alcotest.(check bool) "stalled" true (Watchdog.stalled wd)

let test_watchdog_quiet_on_progress () =
  let p = plat () in
  let sim = p.Platform.sim in
  let counter = ref 0 in
  let _ =
    Sim.spawn sim ~name:"worker" (fun () ->
        for _ = 1 to 40 do
          Sim.delay sim (ms 2.0);
          incr counter
        done)
  in
  let wd =
    Watchdog.install sim ~stall_ns:(ms 10.0) ~progress:(fun () -> !counter) ()
  in
  Sim.run ~until:(ms 75.0) sim;
  Watchdog.disarm wd;
  Alcotest.(check int) "no stalls while progress flows" 0
    (List.length (Watchdog.stalls wd));
  Alcotest.(check bool) "not stalled" false (Watchdog.stalled wd)

(* ------------------------------------------------------------------ *)
(* Overload oracle (Recovery.check_overload)                            *)
(* ------------------------------------------------------------------ *)

let oracle_flow ?(accepted = true) ?(completed = true) ~sent ~received id =
  let body = String.init received (fun i -> Char.chr (65 + ((id + i) mod 26))) in
  {
    Recovery.flow = Printf.sprintf "flow/%d" id;
    accepted;
    completed;
    sent_bytes = sent;
    received_bytes = received;
    received_digest = Recovery.digest body;
    expected_digest = Recovery.digest body;
  }

let no_drops =
  { Recovery.link = 0; pool_pressure = 0; syn_backlog = 0; sockbuf_full = 0; checksum = 0 }

let test_oracle_silent_loss () =
  let ok =
    Recovery.check_overload
      { Recovery.scenario = "t"; flows = [ oracle_flow ~sent:100 ~received:100 0 ]; drops = no_drops }
  in
  Alcotest.(check int) "clean world passes" 0 (List.length ok);
  let silent =
    Recovery.check_overload
      {
        Recovery.scenario = "t";
        flows = [ oracle_flow ~completed:false ~sent:100 ~received:40 0 ];
        drops = no_drops;
      }
  in
  Alcotest.(check bool) "incomplete flow with zero named drops is silent loss" true
    (List.exists
       (fun (f : Finding.t) -> f.Finding.subject = "t/accounting")
       silent);
  let accounted =
    Recovery.check_overload
      {
        Recovery.scenario = "t";
        flows = [ oracle_flow ~completed:false ~sent:100 ~received:40 0 ];
        drops = { no_drops with Recovery.syn_backlog = 3 };
      }
  in
  Alcotest.(check int) "same shortfall with a named cause passes" 0
    (List.length accounted)

let test_oracle_catches_corruption () =
  let f = oracle_flow ~sent:100 ~received:100 0 in
  let bad = { f with Recovery.expected_digest = Recovery.digest "something else" } in
  let findings =
    Recovery.check_overload { Recovery.scenario = "t"; flows = [ bad ]; drops = no_drops }
  in
  Alcotest.(check bool) "digest mismatch is a finding" true (List.length findings > 0)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                            *)
(* ------------------------------------------------------------------ *)

let check_passed name (o : Overload.outcome) =
  if not (Overload.passed o) then begin
    List.iter (fun f -> Format.printf "%a@." Finding.pp f) o.Overload.findings;
    Alcotest.failf "%s: %s" name (Overload.to_line o)
  end

let test_incast_clean () =
  let o = Overload.incast ~senders:12 () in
  check_passed "incast clean" o;
  Alcotest.(check int) "all accepted" 12 o.Overload.accepted;
  Alcotest.(check int) "all completed" 12 o.Overload.completed;
  Alcotest.(check bool) "fair" true (o.Overload.fairness > 0.999);
  Alcotest.(check int) "no stalls" 0 (List.length o.Overload.stalls)

let test_incast_syn_flood () =
  (* 24 simultaneous SYNs against a 4-entry backlog: the listener must
     shed (accounted), and SYN retransmission must still land every
     connection. *)
  let o = Overload.incast ~senders:24 ~syn_backlog:4 () in
  check_passed "syn flood" o;
  Alcotest.(check bool) "backlog actually shed" true
    (o.Overload.drops.Recovery.syn_backlog > 0);
  Alcotest.(check int) "every connection still landed" 24 o.Overload.completed

let test_incast_burst_loss () =
  let plan = Option.get (Pnp_faults.Faults.find "burst") in
  let o = Overload.incast ~plan ~senders:16 () in
  check_passed "incast under burst loss" o;
  Alcotest.(check int) "every flow recovered" 16 o.Overload.completed;
  Alcotest.(check bool) "the wire actually dropped" true
    (o.Overload.drops.Recovery.link > 0)

let test_incast_bounded_pool () =
  let o = Overload.incast ~senders:32 ~pool_capacity:200 ~sb_policy:Sockbuf.Drop () in
  check_passed "incast with bounded pool" o;
  Alcotest.(check int) "every flow completed despite the bound" 32 o.Overload.completed

let test_bottleneck_fairness () =
  let o = Overload.shared_bottleneck () in
  check_passed "shared bottleneck" o;
  Alcotest.(check int) "all flows completed" 8 o.Overload.completed;
  Alcotest.(check bool) "bottleneck shared fairly" true (o.Overload.fairness > 0.99)

let test_scenarios_deterministic () =
  let a = Overload.incast ~senders:16 ~syn_backlog:4 () in
  let b = Overload.incast ~senders:16 ~syn_backlog:4 () in
  Alcotest.(check string) "same seed, same world" (Overload.to_line a)
    (Overload.to_line b)

let with_jobs n f =
  let old = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs old) f

let test_compare_matrix () =
  let rows = with_jobs 1 (fun () -> Compare.run ~senders:8 ~bytes_per_flow:1024 ()) in
  (* 3 + 2 fault-axis cells plus 2 x 15 lock-axis cells (3 disciplines
     x 5 granularities on both scenarios). *)
  Alcotest.(check int) "thirty-five cells" 35 (List.length rows);
  Alcotest.(check bool) "all pass" true (Compare.passed rows);
  (* The first fault-axis label and its lock-axis twin are the same
     world; the matrix labels must not lie. *)
  let find l = List.find (fun (r : Compare.row) -> r.Compare.label = l) rows in
  Alcotest.(check string) "baseline = mutex+tcp1"
    (Overload.to_line (find "incast/baseline").Compare.outcome)
    (Overload.to_line (find "incast/mutex+tcp1").Compare.outcome);
  let json = Compare.to_json rows in
  Alcotest.(check bool) "json document" true
    (String.length json > 2 && String.sub json 0 11 = "{\"compare\":");
  let rows4 = with_jobs 4 (fun () -> Compare.run ~senders:8 ~bytes_per_flow:1024 ()) in
  Alcotest.(check string) "byte-identical at -j 4" json (Compare.to_json rows4)

let suites =
  [
    ( "overload.stats",
      [
        Alcotest.test_case "jain fairness index" `Quick test_jain;
        Alcotest.test_case "nearest-rank percentile" `Quick test_percentile;
      ] );
    ( "overload.admission",
      [
        Alcotest.test_case "watermark edges and refusals" `Quick test_watermark_edges;
        Alcotest.test_case "await_headroom wakes on drain" `Quick
          test_await_headroom_wakes;
        Alcotest.test_case "sockbuf drop-vs-block policy" `Quick test_sockbuf_policies;
      ] );
    ( "overload.watchdog",
      [
        Alcotest.test_case "catches a stalled gate waiter" `Quick
          test_watchdog_catches_stall;
        Alcotest.test_case "quiet while progress flows" `Quick
          test_watchdog_quiet_on_progress;
      ] );
    ( "overload.oracle",
      [
        Alcotest.test_case "silent loss vs accounted shortfall" `Quick
          test_oracle_silent_loss;
        Alcotest.test_case "catches corruption" `Quick test_oracle_catches_corruption;
      ] );
    ( "overload.scenarios",
      [
        Alcotest.test_case "incast completes clean" `Quick test_incast_clean;
        Alcotest.test_case "syn flood sheds and recovers" `Quick test_incast_syn_flood;
        Alcotest.test_case "incast under burst loss" `Quick test_incast_burst_loss;
        Alcotest.test_case "incast with bounded pool" `Quick test_incast_bounded_pool;
        Alcotest.test_case "bottleneck fairness" `Quick test_bottleneck_fairness;
        Alcotest.test_case "outcomes are deterministic" `Quick
          test_scenarios_deterministic;
        Alcotest.test_case "compare matrix" `Quick test_compare_matrix;
      ] );
  ]
