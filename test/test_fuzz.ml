(* Adversarial robustness: random junk, shuffled and duplicated segments.
   The stack must never raise, never leak MNodes, and always deliver the
   byte stream in order exactly once. *)

open Pnp_engine
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let in_sim plat body =
  let fin = ref false in
  let _ =
    Sim.spawn plat.Platform.sim ~name:"fuzz" (fun () ->
        body ();
        fin := true)
  in
  Sim.run ~until:(Pnp_util.Units.sec 30.0) plat.Platform.sim;
  Alcotest.(check bool) "fuzz thread completed" true !fin

let recv_stack ?(mss = 512) () =
  let plat = Platform.create ~seed:11 Arch.challenge_100 in
  let cfg = { Tcp.default_config with Tcp.mss; checksum = true } in
  let stack = Stack.create plat ~tcp_config:cfg ~local_addr:0x0a000002 () in
  (plat, stack)

(* Random raw bytes thrown at the MAC layer must be dropped somewhere,
   never crash. *)
let prop_garbage_frames_survive =
  QCheck.Test.make ~name:"garbage frames never crash the stack" ~count:60
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun junk ->
      let plat, stack = recv_stack () in
      let delivered = ref 0 in
      in_sim plat (fun () ->
          Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m ->
                  incr delivered;
                  Msg.destroy m));
          let frame = Msg.of_string stack.Stack.pool junk in
          Fddi.input stack.Stack.fddi frame);
      !delivered = 0)

(* Random-but-well-formed TCP headers (arbitrary seq/ack/flags) against an
   established connection: no crash, no stuck state. *)
let prop_random_segments_survive =
  QCheck.Test.make ~name:"random TCP segments never crash an established connection"
    ~count:60
    QCheck.(
      list_of_size (Gen.return 12)
        (quad (int_bound 0xffffff) (int_bound 0xffffff) (int_bound 31)
           (string_of_size Gen.(0 -- 64))))
    (fun segs ->
      let plat, stack = recv_stack () in
      let src =
        Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:512 ~checksum:true
          ~ports:[ (2000, 4000) ] ()
      in
      in_sim plat (fun () ->
          Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m -> Msg.destroy m));
          Tcp_source.start src;
          List.iter
            (fun (seq, ack, flagbits, payload) ->
              let flags =
                {
                  Tcp_wire.fin = flagbits land 1 <> 0;
                  syn = flagbits land 2 <> 0;
                  rst = flagbits land 4 <> 0;
                  psh = flagbits land 8 <> 0;
                  ack = flagbits land 16 <> 0;
                }
              in
              let p =
                if String.length payload = 0 then None
                else Some (Msg.of_string stack.Stack.pool payload)
              in
              let frame =
                Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002
                  ~sport:2000 ~dport:4000 ~seq ~ack ~flags ~win:(1 lsl 16) ~payload:p
                  ~checksum:true
              in
              Fddi.input stack.Stack.fddi frame)
            segs;
          (* The connection machinery must still answer a normal segment. *)
          ignore (Tcp_source.next src ~stream:0));
      true)

(* Any permutation of a valid segment sequence is reassembled into the
   original byte stream, delivered exactly once. *)
let prop_shuffled_segments_reassemble =
  QCheck.Test.make ~name:"shuffled segments reassemble to the original stream" ~count:40
    QCheck.(pair (int_bound 1000000) (int_range 2 10))
    (fun (seed, nsegs) ->
      let plat, stack = recv_stack () in
      let src =
        Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:512 ~checksum:true
          ~sequential_payload:true ~ports:[ (2000, 4000) ] ()
      in
      let delivered = Buffer.create 4096 in
      let ok = ref true in
      in_sim plat (fun () ->
          Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m ->
                  Buffer.add_string delivered (Msg.to_string m);
                  Msg.destroy m));
          Tcp_source.start src;
          (* Fabricate nsegs in-order segments, then deliver a shuffle. *)
          let iss = 0x10000000 + 2000 in
          let seg i =
            let payload = Msg.create stack.Stack.pool 512 in
            Msg.fill_pattern payload ~off:0 ~len:512 ~stream_off:(i * 512);
            Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
              ~dport:4000
              ~seq:(Tcp_seq.add (Tcp_seq.add iss 1) (i * 512))
              ~ack:1 ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20) ~payload:(Some payload)
              ~checksum:true
          in
          let order = Array.init nsegs Fun.id in
          Pnp_util.Prng.shuffle (Pnp_util.Prng.create seed) order;
          Array.iter (fun i -> Fddi.input stack.Stack.fddi (seg i)) order;
          (* Verify the delivered stream is the full in-order content. *)
          let expect = Buffer.create 4096 in
          for i = 0 to nsegs - 1 do
            let m = Msg.create stack.Stack.pool 512 in
            Msg.fill_pattern m ~off:0 ~len:512 ~stream_off:(i * 512);
            Buffer.add_string expect (Msg.to_string m);
            Msg.destroy m
          done;
          ok := String.equal (Buffer.contents delivered) (Buffer.contents expect));
      !ok)

(* Duplicated segments deliver exactly once. *)
let prop_duplicates_delivered_once =
  QCheck.Test.make ~name:"duplicate segments delivered exactly once" ~count:40
    QCheck.(pair (int_range 1 6) (int_range 2 4))
    (fun (nsegs, copies) ->
      let plat, stack = recv_stack () in
      let src =
        Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:256 ~checksum:true
          ~ports:[ (2000, 4000) ] ()
      in
      let bytes = ref 0 in
      in_sim plat (fun () ->
          Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m ->
                  bytes := !bytes + Msg.length m;
                  Msg.destroy m));
          Tcp_source.start src;
          let iss = 0x10000000 + 2000 in
          for i = 0 to nsegs - 1 do
            for _copy = 1 to copies do
              let payload = Msg.create stack.Stack.pool 256 in
              Msg.fill_pattern payload ~off:0 ~len:256 ~stream_off:(i * 256);
              let frame =
                Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002
                  ~sport:2000 ~dport:4000
                  ~seq:(Tcp_seq.add (Tcp_seq.add iss 1) (i * 256))
                  ~ack:1 ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20)
                  ~payload:(Some payload) ~checksum:true
              in
              Fddi.input stack.Stack.fddi frame
            done
          done);
      !bytes = nsegs * 256)

(* Corrupted payloads must be dropped by the checksum, not delivered. *)
let prop_corruption_never_delivered =
  QCheck.Test.make ~name:"corrupted segments never reach the application" ~count:40
    QCheck.(pair (int_bound 255) (int_bound 500))
    (fun (delta, pos) ->
      QCheck.assume (delta > 0);
      let plat, stack = recv_stack () in
      let src =
        Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:512 ~checksum:true
          ~ports:[ (2000, 4000) ] ()
      in
      let delivered = ref 0 in
      in_sim plat (fun () ->
          Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m ->
                  incr delivered;
                  Msg.destroy m));
          Tcp_source.start src;
          let payload = Msg.create stack.Stack.pool 512 in
          Msg.fill_pattern payload ~off:0 ~len:512 ~stream_off:0;
          let iss = 0x10000000 + 2000 in
          let frame =
            Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
              ~dport:4000 ~seq:(Tcp_seq.add iss 1) ~ack:1 ~flags:Tcp_wire.flag_ack
              ~win:(1 lsl 20) ~payload:(Some payload) ~checksum:true
          in
          (* Flip a payload byte after the checksum was computed. *)
          let off = Frame.headers_len - Fddi.header_bytes - Ip.header_bytes in
          ignore off;
          let target = Frame.headers_len + pos in
          Msg.set_u8 frame target ((Msg.get_u8 frame target + delta) land 0xff);
          Fddi.input stack.Stack.fddi frame);
      !delivered = 0)

let suites =
  [
    ( "fuzz.tcp",
      [
        Qrand.to_alcotest prop_garbage_frames_survive;
        Qrand.to_alcotest prop_random_segments_survive;
        Qrand.to_alcotest prop_shuffled_segments_reassemble;
        Qrand.to_alcotest prop_duplicates_delivered_once;
        Qrand.to_alcotest prop_corruption_never_delivered;
      ] );
  ]
