open Pnp_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_range () =
  let g = Prng.create 3 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done

let test_prng_int_covers () =
  let g = Prng.create 5 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.int g 8) <- true
  done;
  Array.iteri (fun i b -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true b) seen

let test_prng_float_range () =
  let g = Prng.create 11 in
  for _ = 1 to 10_000 do
    let x = Prng.float g 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.failf "out of range: %f" x
  done

let test_prng_split_independent () =
  let g = Prng.create 13 in
  let a = Prng.split g in
  let b = Prng.split g in
  Alcotest.(check bool) "split streams differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_exponential_mean () =
  let g = Prng.create 17 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %f within 5%% of 10" mean)
    true
    (abs_float (mean -. 10.0) < 0.5)

let test_prng_shuffle_permutation () =
  let g = Prng.create 19 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_prng_int_unbiased () =
  (* With bound = 3 * 2^60, a plain [mod] over 62-bit draws would return a
     value below 2^60 half the time (the wrapped tail doubles up the first
     interval); rejection sampling must give 1/3. *)
  let g = Prng.create 23 in
  let bound = 3 * (1 lsl 60) in
  let n = 30_000 in
  let low = ref 0 in
  for _ = 1 to n do
    if Prng.int g bound < 1 lsl 60 then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "low-interval fraction %.3f near 1/3" frac)
    true
    (abs_float (frac -. (1.0 /. 3.0)) < 0.02)

let test_prng_int_pinned () =
  (* Regression pin: the exact stream for a fixed seed.  Simulation results
     (e.g. unfair-lock grant orders) depend on it staying put. *)
  let g = Prng.create 42 in
  let got = List.init 8 (fun _ -> Prng.int g 100) in
  Alcotest.(check (list int)) "seed-42 bound-100 stream" [ 53; 72; 64; 41; 12; 65; 31; 77 ] got

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stats_summary_known () =
  let s = Stats.summary [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check_float "mean" 5.0 s.Stats.mean;
  Alcotest.(check int) "n" 8 s.Stats.n;
  check_float "min" 2.0 s.Stats.min;
  check_float "max" 9.0 s.Stats.max;
  (* sample stddev of this classic dataset is sqrt(32/7) *)
  Alcotest.(check (float 1e-6)) "stddev" (sqrt (32.0 /. 7.0)) s.Stats.stddev

let test_stats_single_point () =
  let s = Stats.summary [ 42.0 ] in
  check_float "mean" 42.0 s.Stats.mean;
  check_float "stddev" 0.0 s.Stats.stddev;
  check_float "ci90" 0.0 s.Stats.ci90

let test_stats_ci_shrinks () =
  (* More samples with the same spread => smaller CI. *)
  let base = [ 9.0; 10.0; 11.0 ] in
  let more = base @ base @ base @ base in
  let s3 = Stats.summary base and s12 = Stats.summary more in
  Alcotest.(check bool) "ci shrinks with n" true (s12.Stats.ci90 < s3.Stats.ci90)

let test_stats_empty_raises () =
  Alcotest.check_raises "empty summary" (Invalid_argument "Stats.summary: empty")
    (fun () -> ignore (Stats.summary []))

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_t_crit () =
  check_float "df=1" 6.314 (Stats.t_crit 1);
  check_float "df=2" 2.920 (Stats.t_crit 2);
  check_float "df=10" 1.812 (Stats.t_crit 10);
  check_float "df=20" 1.725 (Stats.t_crit 20);
  check_float "df=30" 1.697 (Stats.t_crit 30);
  (* beyond the table: asymptotic normal value *)
  check_float "df=31" 1.645 (Stats.t_crit 31);
  check_float "df=1000" 1.645 (Stats.t_crit 1000);
  check_float "df=0" 0.0 (Stats.t_crit 0);
  (* the table must decrease monotonically toward the z fallback *)
  for df = 1 to 30 do
    Alcotest.(check bool)
      (Printf.sprintf "t(%d) > t(%d)" df (df + 1))
      true
      (Stats.t_crit df > Stats.t_crit (df + 1))
  done

let prop_summary_bounds =
  QCheck.Test.make ~name:"summary mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.summary xs in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let test_units_conversions () =
  Alcotest.(check int) "1us" 1_000 (Units.us 1.0);
  Alcotest.(check int) "1.5us" 1_500 (Units.us 1.5);
  Alcotest.(check int) "2ms" 2_000_000 (Units.ms 2.0);
  Alcotest.(check int) "1s" 1_000_000_000 (Units.sec 1.0)

let test_units_throughput () =
  (* 125 MB in one second = 1000 Mbit/s *)
  check_float "1000 Mb/s" 1000.0
    (Units.mbits_per_sec ~bytes_transferred:125_000_000 ~duration:(Units.sec 1.0));
  check_float "zero duration" 0.0 (Units.mbits_per_sec ~bytes_transferred:1 ~duration:0)

let test_units_pp () =
  let s t = Format.asprintf "%a" Units.pp_ns t in
  Alcotest.(check string) "ns" "500ns" (s 500);
  Alcotest.(check string) "us" "1.500us" (s 1500);
  Alcotest.(check string) "ms" "2.000ms" (s 2_000_000)

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int in range" `Quick test_prng_int_range;
        Alcotest.test_case "int covers range" `Quick test_prng_int_covers;
        Alcotest.test_case "float in range" `Quick test_prng_float_range;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "int unbiased" `Quick test_prng_int_unbiased;
        Alcotest.test_case "int stream pinned" `Quick test_prng_int_pinned;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "summary on known data" `Quick test_stats_summary_known;
        Alcotest.test_case "single point" `Quick test_stats_single_point;
        Alcotest.test_case "ci shrinks with n" `Quick test_stats_ci_shrinks;
        Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "t critical values" `Quick test_stats_t_crit;
        Qrand.to_alcotest prop_summary_bounds;
      ] );
    ( "util.units",
      [
        Alcotest.test_case "conversions" `Quick test_units_conversions;
        Alcotest.test_case "throughput" `Quick test_units_throughput;
        Alcotest.test_case "pretty printing" `Quick test_units_pp;
      ] );
  ]
