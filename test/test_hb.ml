(* Happens-before race detection, the arena lifetime sanitizer, finding
   dedup/exit-code plumbing, and the columnar store's chunk boundaries. *)

open Pnp_engine
open Pnp_analysis

let arch = Arch.challenge_100

(* ------------------------------------------------------------------ *)
(* Hand-built traces (same helper shape as test_analysis)              *)
(* ------------------------------------------------------------------ *)

let make_trace ?(locks = []) evs =
  let t = Trace.create () in
  List.iter (fun (name, discipline) -> Trace.register_lock t ~name ~discipline) locks;
  Trace.enable t;
  (* The tracer was just enabled unconditionally above. *)
  List.iteri (fun i (tid, ev) -> Trace.emit t ~ts:(i * 10) ~tid ~cpu:0 ev) evs (* lint:allow *);
  t

let grant lock = Trace.Lock_grant { lock; waiters = 0; wait_ns = 0 }
let rel lock = Trace.Lock_release { lock; hold_ns = 0 }
let acc ?(write = true) state = Trace.Access { state; write }
let fork child = Trace.Thread_fork { child }
let join child = Trace.Thread_join { child }
let advance gate serving = Trace.Gate_advance { gate; serving }
let pass gate ticket = Trace.Gate_pass { gate; ticket; wait_ns = 0 }
let bus = Trace.Membus_charge { bytes = 64; dur_ns = 100 }

(* ------------------------------------------------------------------ *)
(* Happens-before                                                      *)
(* ------------------------------------------------------------------ *)

let test_hb_disjoint_locksets_race () =
  (* The tentpole seeded defect: each thread holds *a* lock but not a
     common one, and no other edge orders the writes.  Both the lockset
     checker and the HB checker must flag it. *)
  let t =
    make_trace
      [
        (1, grant "a"); (1, acc "x#f"); (1, rel "a");
        (2, grant "b"); (2, acc "x#f"); (2, rel "b");
      ]
  in
  Alcotest.(check (list string)) "hb flags" [ "x#f" ] (Hb.races t);
  (match Lockset.check t with
   | [ f ] -> Alcotest.(check string) "lockset agrees" "x#f" f.Finding.subject
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 lockset finding, got %d" (List.length fs)));
  match Hb.check t with
  | [ f ] ->
    Alcotest.(check string) "checker" "hb-race" f.Finding.checker;
    Alcotest.(check string) "subject" "x#f" f.Finding.subject;
    Alcotest.(check int) "both witnesses" 2 (List.length f.Finding.witnesses)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 hb finding, got %d" (List.length fs))

let test_hb_lock_edge_orders () =
  (* Release→acquire on the same lock orders the two writes: clean under
     both checkers. *)
  let t =
    make_trace
      [
        (1, grant "l"); (1, acc "x#f"); (1, rel "l");
        (2, grant "l"); (2, acc "x#f"); (2, rel "l");
      ]
  in
  Alcotest.(check (list string)) "hb clean" [] (Hb.races t);
  Alcotest.(check int) "lockset clean" 0 (List.length (Lockset.check t))

let test_hb_gate_orders_lockset_false_positive () =
  (* The seeded false positive: thread 1 writes, advances a gate; thread
     2 passes the gate, then writes — lock-free but strictly ordered.
     Lockset (no common lock) flags it; HB (signal→wait edge) must
     not. *)
  let t =
    make_trace
      [
        (1, acc "x#f"); (1, advance "g" 1);
        (2, pass "g" 1); (2, acc "x#f");
      ]
  in
  Alcotest.(check (list string)) "hb clean through gate" [] (Hb.races t);
  (match Lockset.check t with
   | [ f ] ->
     Alcotest.(check string) "lockset still fires (the false positive)" "x#f"
       f.Finding.subject
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 lockset finding, got %d" (List.length fs)));
  (* Same interleaving without the gate events IS a race. *)
  let bare = make_trace [ (1, acc "x#f"); (2, acc "x#f") ] in
  Alcotest.(check (list string)) "without the edge it races" [ "x#f" ] (Hb.races bare)

let test_hb_fork_edge () =
  (* Parent writes, then forks: the child's read is ordered.  A sibling
     forked before the write is not. *)
  let ordered = make_trace [ (1, acc "x#f"); (1, fork 2); (2, acc ~write:false "x#f") ] in
  Alcotest.(check (list string)) "fork orders parent past" [] (Hb.races ordered);
  let racy = make_trace [ (1, fork 2); (1, acc "x#f"); (2, acc "x#f") ] in
  Alcotest.(check (list string)) "post-fork parent write races" [ "x#f" ] (Hb.races racy)

let test_hb_join_edge () =
  (* Child writes and exits; parent joins, then writes: ordered.
     Without the join the same pair races. *)
  let ordered =
    make_trace
      [ (2, acc "x#f"); (2, Trace.Thread_exit); (1, join 2); (1, acc "x#f") ]
  in
  Alcotest.(check (list string)) "join orders child past" [] (Hb.races ordered);
  let racy = make_trace [ (2, acc "x#f"); (2, Trace.Thread_exit); (1, acc "x#f") ] in
  Alcotest.(check (list string)) "exit alone is not an edge" [ "x#f" ] (Hb.races racy)

let test_hb_bus_edge_toggle () =
  (* Membus replies serialise the two writes only when bus_sync is on. *)
  let t = make_trace [ (1, acc "x#f"); (1, bus); (2, bus); (2, acc "x#f") ] in
  Alcotest.(check (list string)) "bus reply edge orders" [] (Hb.races t);
  Alcotest.(check (list string)) "without bus_sync it races" [ "x#f" ]
    (Hb.races ~bus_sync:false t)

let test_hb_write_write_flag () =
  let t = make_trace [ (1, acc "x#f"); (2, acc ~write:false "x#f") ] in
  (match Hb.run t with
   | [ r ] ->
     Alcotest.(check bool) "read-write pair" false r.Hb.write_write;
     Alcotest.(check string) "state" "x#f" r.Hb.state
   | rs -> Alcotest.fail (Printf.sprintf "expected 1 race, got %d" (List.length rs)));
  let ww = make_trace [ (1, acc "x#f"); (2, acc "x#f") ] in
  match Hb.run ww with
  | [ r ] -> Alcotest.(check bool) "write-write pair" true r.Hb.write_write
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 race, got %d" (List.length rs))

let test_hb_reports_once_per_state () =
  let t =
    make_trace
      [ (1, acc "x#f"); (2, acc "x#f"); (1, acc "x#f"); (3, acc "x#f"); (2, acc "y#g"); (3, acc "y#g") ]
  in
  Alcotest.(check (list string)) "one race per state" [ "x#f"; "y#g" ] (Hb.races t)

(* ------------------------------------------------------------------ *)
(* Arena lifetime sanitizer                                            *)
(* ------------------------------------------------------------------ *)

let m_alloc node = Trace.Mnode_alloc { node }
let m_ref node refs = Trace.Mnode_ref { node; refs }
let m_unref node refs = Trace.Mnode_unref { node; refs }
let m_recycle node = Trace.Mnode_recycle { node }
let m_write node = Trace.Mnode_write { node }

let msgs fs = List.map (fun f -> f.Finding.message) fs

let expect_one_lifetime ~sub t =
  match Lifetime.check t with
  | [ f ] ->
    Alcotest.(check string) "checker" "lifetime" f.Finding.checker;
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains f.Finding.message sub) then
      Alcotest.failf "message %S does not mention %S" f.Finding.message sub
  | fs ->
    Alcotest.failf "expected 1 lifetime finding, got %d: %s" (List.length fs)
      (String.concat " | " (msgs fs))

let test_lifetime_use_after_free () =
  (* Seeded defect: a reference taken after the count hit zero. *)
  expect_one_lifetime ~sub:"use-after-free"
    (make_trace [ (1, m_alloc 7); (1, m_unref 7 0); (2, m_ref 7 1) ]);
  (* And the write flavour. *)
  expect_one_lifetime ~sub:"use-after-free"
    (make_trace [ (1, m_alloc 7); (1, m_unref 7 0); (1, m_write 7) ])

let test_lifetime_double_free () =
  expect_one_lifetime ~sub:"double-free"
    (make_trace [ (1, m_alloc 3); (1, m_unref 3 0); (2, m_unref 3 (-1)) ]);
  (* Recycling the same buffer twice is the arena-layer double free. *)
  expect_one_lifetime ~sub:"double-free"
    (make_trace
       [ (1, m_alloc 3); (1, m_unref 3 0); (1, m_recycle 3); (1, m_recycle 3) ])

let test_lifetime_write_after_recycle () =
  expect_one_lifetime ~sub:"write-after-recycle"
    (make_trace
       [ (1, m_alloc 9); (1, m_write 9); (1, m_unref 9 0); (1, m_recycle 9); (2, m_write 9) ])

let test_lifetime_recycle_live () =
  expect_one_lifetime ~sub:"live"
    (make_trace [ (1, m_alloc 4); (1, m_recycle 4) ])

let test_lifetime_clean_lifecycle () =
  (* Full healthy lifecycle incl. a cache re-arm (alloc of a previously
     freed node) and a recycle: nothing to report. *)
  let t =
    make_trace
      [
        (1, m_alloc 1); (1, m_write 1); (1, m_ref 1 2); (2, m_unref 1 1);
        (1, m_unref 1 0);
        (1, m_alloc 1) (* cache hit re-arms the freed node *);
        (1, m_write 1); (1, m_unref 1 0); (1, m_recycle 1);
        (2, m_alloc 2); (2, m_unref 2 0);
      ]
  in
  Alcotest.(check int) "clean lifecycle" 0 (List.length (Lifetime.check t));
  (* Mid-lifecycle adoption: a trace that opens on an unref of a node we
     never saw allocated must not be reported. *)
  let adopted = make_trace [ (1, m_unref 42 1); (1, m_unref 42 0) ] in
  Alcotest.(check int) "adopted silently" 0 (List.length (Lifetime.check adopted))

let test_lifetime_leaks_opt_in () =
  let t = make_trace [ (1, m_alloc 5); (1, m_write 5) ] in
  Alcotest.(check int) "leaks off by default" 0 (List.length (Lifetime.check t));
  match Lifetime.check ~leaks:true t with
  | [ f ] ->
    Alcotest.(check string) "subject" "leak" f.Finding.subject;
    Alcotest.(check string) "checker" "lifetime" f.Finding.checker
  | fs -> Alcotest.failf "expected 1 leak finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* Finding dedup + exit-code bits                                      *)
(* ------------------------------------------------------------------ *)

let test_finding_dedupe () =
  let f ?(msg = "m") checker subject = Finding.v ~checker ~subject msg in
  let fs =
    [ f "lockset" "x#f"; f "lockset" "x#f"; f "lockset" "y#g";
      f "hb-race" "x#f"; f ~msg:"other" "lockset" "x#f" ]
  in
  let deduped = Finding.dedupe fs in
  (* Identical (checker, subject, message) collapses; different checker,
     subject or message survives, order preserved. *)
  Alcotest.(check int) "4 distinct" 4 (List.length deduped);
  Alcotest.(check (list string)) "order preserved"
    [ "lockset"; "lockset"; "hb-race"; "lockset" ]
    (List.map (fun f -> f.Finding.checker) deduped)

let test_finding_exit_code () =
  let f checker = Finding.v ~checker ~subject:"s" "m" in
  Alcotest.(check int) "empty" 0 (Finding.exit_code []);
  Alcotest.(check int) "race bit" 1 (Finding.exit_code [ f "lockset" ]);
  Alcotest.(check int) "hb is race family" 1 (Finding.exit_code [ f "hb-race" ]);
  Alcotest.(check int) "lifetime bit" 2 (Finding.exit_code [ f "lifetime" ]);
  Alcotest.(check int) "order bit" 4 (Finding.exit_code [ f "lock-order" ]);
  Alcotest.(check int) "families OR together" 7
    (Finding.exit_code [ f "lockset"; f "lifetime"; f "fifo-order" ]);
  Alcotest.(check int) "race+lifetime" 3
    (Finding.exit_code [ f "hb-race"; f "lifetime" ])

(* ------------------------------------------------------------------ *)
(* Columnar store chunk boundaries                                     *)
(* ------------------------------------------------------------------ *)

let chunk = 4096 (* Trace's columnar chunk size *)

let boundary_trace n =
  let t = Trace.create () in
  Trace.enable t;
  for i = 0 to n - 1 do
    (* The tracer was enabled two lines up. *)
    Trace.emit t ~ts:i ~tid:(i mod 7) ~cpu:0 (acc "x#f") (* lint:allow *)
  done;
  t

let test_chunk_boundaries () =
  (* One short of the edge, exactly on it, one past it, and a two-chunk
     crossing: count, [events] order, [iter] and [fold] must all agree. *)
  List.iter
    (fun n ->
      let t = boundary_trace n in
      Alcotest.(check int) (Printf.sprintf "count %d" n) n (Trace.count t);
      let evs = Trace.events t in
      Alcotest.(check int) (Printf.sprintf "events %d" n) n (List.length evs);
      let ok = ref true in
      List.iteri (fun i r -> if r.Trace.ts <> i then ok := false) evs;
      Alcotest.(check bool) (Printf.sprintf "ts order %d" n) true !ok;
      let via_iter = ref [] in
      Trace.iter t (fun r -> via_iter := r :: !via_iter);
      Alcotest.(check bool)
        (Printf.sprintf "iter matches events %d" n)
        true
        (List.rev !via_iter = evs);
      Alcotest.(check int)
        (Printf.sprintf "fold count %d" n)
        n
        (Trace.fold t ~init:0 ~f:(fun a _ -> a + 1)))
    [ chunk - 1; chunk; chunk + 1; (2 * chunk) + 1 ]

let test_chunk_clear_and_refill () =
  (* Clearing at a boundary returns chunks to the free list; refilling
     past the boundary must produce a coherent trace again. *)
  let t = boundary_trace chunk in
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.count t);
  Alcotest.(check bool) "still enabled" true (Trace.enabled t);
  for i = 0 to chunk do
    (* Still enabled after clear (checked above). *)
    Trace.emit t ~ts:(1000 + i) ~tid:1 ~cpu:0 (acc "y#g") (* lint:allow *)
  done;
  Alcotest.(check int) "refilled across the edge" (chunk + 1) (Trace.count t);
  match Trace.events t with
  | first :: _ -> Alcotest.(check int) "first refill ts" 1000 first.Trace.ts
  | [] -> Alcotest.fail "no events after refill"

(* ------------------------------------------------------------------ *)
(* The engine and pool actually emit the new events                    *)
(* ------------------------------------------------------------------ *)

let test_engine_emits_fork_and_exit () =
  let sim = Sim.create () in
  Trace.enable (Sim.tracer sim);
  let child_tid = ref (-1) in
  let _ =
    Sim.spawn sim ~name:"parent" (fun () ->
        Sim.delay sim 10;
        let th = Sim.spawn sim ~name:"kid" (fun () -> Sim.delay sim 10) in
        child_tid := Sim.tid th)
  in
  Sim.run sim;
  let forks = ref [] and exits = ref 0 in
  Trace.iter (Sim.tracer sim) (fun r ->
      match r.Trace.ev with
      | Trace.Thread_fork { child } -> forks := child :: !forks
      | Trace.Thread_exit -> incr exits
      | _ -> ());
  (* Only the in-thread spawn records a fork edge (the root spawn has no
     simulated parent); every thread body that returns records an exit. *)
  Alcotest.(check (list int)) "fork edge carries child tid" [ !child_tid ] !forks;
  Alcotest.(check int) "both threads exited" 2 !exits

let test_gate_emits_advance_before_pass () =
  let sim = Sim.create () in
  Trace.enable (Sim.tracer sim);
  let gate = Gate.create sim arch ~name:"g" in
  for i = 0 to 1 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "t%d" i) (fun () ->
           Sim.delay sim (100 * i);
           let n = Gate.take gate in
           Gate.await gate n;
           Sim.delay sim 10;
           Gate.advance gate))
  done;
  Sim.run sim;
  (* Ticket 1 waits for ticket 0's advance; in the trace the advance to
     serving=1 must precede ticket 1's pass. *)
  let order = ref [] in
  Trace.iter (Sim.tracer sim) (fun r ->
      match r.Trace.ev with
      | Trace.Gate_advance { serving; _ } -> order := ("adv", serving) :: !order
      | Trace.Gate_pass { ticket; _ } -> order := ("pass", ticket) :: !order
      | _ -> ());
  match List.rev !order with
  | [ ("pass", 0); ("adv", 1); ("pass", 1); ("adv", 2) ] -> ()
  | o ->
    Alcotest.failf "unexpected gate event order: %s"
      (String.concat " "
         (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) o))

let test_pool_emits_lifecycle_and_sanitizer_passes () =
  (* Drive real Msg/Mpool traffic inside a simulated thread and demand
     (a) the lifecycle events appear, (b) bump_gen surfaces as
     Mnode_write, and (c) the sanitizer finds nothing to complain
     about — including with end-of-trace leak checking, since this
     fixture drains to completion. *)
  let p = Platform.create arch in
  let sim = p.Platform.sim in
  let pool = Pnp_xkern.Mpool.create p in
  Trace.enable (Sim.tracer sim);
  let _ =
    Sim.spawn sim ~name:"worker" (fun () ->
        let m = Pnp_xkern.Msg.of_string pool "hello world" in
        Pnp_xkern.Msg.set_u8 m 0 0x42;
        let d = Pnp_xkern.Msg.dup m in
        Pnp_xkern.Msg.destroy m;
        Pnp_xkern.Msg.destroy d;
        Sim.delay sim 10)
  in
  Sim.run sim;
  let tracer = Sim.tracer sim in
  let allocs = ref 0 and refs = ref 0 and unrefs = ref 0 and writes = ref 0 in
  Trace.iter tracer (fun r ->
      match r.Trace.ev with
      | Trace.Mnode_alloc _ -> incr allocs
      | Trace.Mnode_ref _ -> incr refs
      | Trace.Mnode_unref _ -> incr unrefs
      | Trace.Mnode_write _ -> incr writes
      | _ -> ());
  Alcotest.(check int) "one node allocated" 1 !allocs;
  Alcotest.(check int) "dup took a reference" 1 !refs;
  Alcotest.(check int) "both holders dropped" 2 !unrefs;
  Alcotest.(check bool) "bump_gen traced as writes" true (!writes >= 2);
  Alcotest.(check int) "sanitizer passes" 0 (List.length (Lifetime.check tracer));
  Alcotest.(check int) "no leaks at drain" 0
    (List.length (Lifetime.check ~leaks:true tracer))

let suites =
  [
    ( "analysis.hb",
      [
        Alcotest.test_case "disjoint locksets race (both checkers)" `Quick
          test_hb_disjoint_locksets_race;
        Alcotest.test_case "lock release->acquire orders" `Quick test_hb_lock_edge_orders;
        Alcotest.test_case "gate edge clears lockset false positive" `Quick
          test_hb_gate_orders_lockset_false_positive;
        Alcotest.test_case "fork edge" `Quick test_hb_fork_edge;
        Alcotest.test_case "exit+join edge" `Quick test_hb_join_edge;
        Alcotest.test_case "membus reply edge toggle" `Quick test_hb_bus_edge_toggle;
        Alcotest.test_case "write-write flag" `Quick test_hb_write_write_flag;
        Alcotest.test_case "one report per state" `Quick test_hb_reports_once_per_state;
      ] );
    ( "analysis.lifetime",
      [
        Alcotest.test_case "use-after-free" `Quick test_lifetime_use_after_free;
        Alcotest.test_case "double-free" `Quick test_lifetime_double_free;
        Alcotest.test_case "write-after-recycle" `Quick test_lifetime_write_after_recycle;
        Alcotest.test_case "recycle under a live node" `Quick test_lifetime_recycle_live;
        Alcotest.test_case "clean lifecycle and adoption" `Quick test_lifetime_clean_lifecycle;
        Alcotest.test_case "leaks are opt-in" `Quick test_lifetime_leaks_opt_in;
      ] );
    ( "analysis.finding",
      [
        Alcotest.test_case "dedupe identical findings" `Quick test_finding_dedupe;
        Alcotest.test_case "exit-code family bits" `Quick test_finding_exit_code;
      ] );
    ( "engine.trace.chunks",
      [
        Alcotest.test_case "boundary counts and order" `Quick test_chunk_boundaries;
        Alcotest.test_case "clear and refill across the edge" `Quick
          test_chunk_clear_and_refill;
      ] );
    ( "engine.trace.emission",
      [
        Alcotest.test_case "fork and exit events" `Quick test_engine_emits_fork_and_exit;
        Alcotest.test_case "gate advance precedes pass" `Quick
          test_gate_emits_advance_before_pass;
        Alcotest.test_case "mnode lifecycle traced and sanitized" `Quick
          test_pool_emits_lifecycle_and_sanitizer_passes;
      ] );
  ]
