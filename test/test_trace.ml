(* Event-tracing subsystem: ordering invariants, determinism, exporter
   sanity, and agreement between trace totals and aggregate counters. *)

open Pnp_engine
open Pnp_harness

let arch = Arch.challenge_100

(* Contended-lock scenario with the tracer on from the start: a holder
   pins the lock while six waiters arrive at known distinct times. *)
let traced_lock_run disc ~seed =
  let sim = Sim.create ~seed () in
  Trace.enable (Sim.tracer sim);
  let lock = Lock.create sim arch disc ~name:"l" in
  let _ =
    Sim.spawn sim ~name:"holder" (fun () ->
        Lock.acquire lock;
        Sim.delay sim 1_000_000;
        Lock.release lock)
  in
  for i = 1 to 6 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "w%d" i) (fun () ->
           Sim.delay sim (2_000 * i);
           Lock.acquire lock;
           Sim.delay sim 10;
           Lock.release lock))
  done;
  Sim.run sim;
  Sim.tracer sim

let grant_tids tracer =
  List.filter_map
    (fun r -> match r.Trace.ev with Trace.Lock_grant _ -> Some r.Trace.tid | _ -> None)
    (Trace.events tracer)

let request_tids tracer =
  List.filter_map
    (fun r -> match r.Trace.ev with Trace.Lock_request _ -> Some r.Trace.tid | _ -> None)
    (Trace.events tracer)

let test_grant_has_prior_request () =
  (* Every grant must be preceded by a request from the same thread on the
     same lock that has not been matched by an earlier grant. *)
  List.iter
    (fun disc ->
      let tracer = traced_lock_run disc ~seed:5 in
      let pending = Hashtbl.create 16 in
      List.iter
        (fun r ->
          match r.Trace.ev with
          | Trace.Lock_request { lock; _ } ->
            Hashtbl.replace pending (lock, r.Trace.tid) ()
          | Trace.Lock_grant { lock; _ } ->
            if not (Hashtbl.mem pending (lock, r.Trace.tid)) then
              Alcotest.failf "grant to tid %d without pending request" r.Trace.tid;
            Hashtbl.remove pending (lock, r.Trace.tid)
          | _ -> ())
        (Trace.events tracer);
      Alcotest.(check int) "no unmatched requests left behind" 0 (Hashtbl.length pending))
    [ Lock.Unfair; Lock.Fifo; Lock.Barging ]

let test_fifo_grants_in_request_order () =
  (* MCS hands the lock over in arrival order, so the grant tid sequence
     equals the request tid sequence. *)
  List.iter
    (fun seed ->
      let tracer = traced_lock_run Lock.Fifo ~seed in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: fifo grants = requests" seed)
        (request_tids tracer) (grant_tids tracer))
    [ 1; 2; 3; 4; 5 ]

let test_unfair_grants_observably_reorder () =
  (* The IRIX-style mutex grants an arbitrary waiter: for some seed the
     trace must show grants diverging from request order. *)
  let reordered =
    List.exists
      (fun seed ->
        let tracer = traced_lock_run Lock.Unfair ~seed in
        grant_tids tracer <> request_tids tracer)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "unfair reorders for some seed" true reordered

let test_wait_matches_lock_accounting () =
  (* The summed wait_ns in grant events equals the lock's own counter. *)
  let sim = Sim.create ~seed:9 () in
  Trace.enable (Sim.tracer sim);
  let lock = Lock.create sim arch Lock.Fifo ~name:"acct" in
  for i = 0 to 3 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "t%d" i) (fun () ->
           for _ = 1 to 20 do
             Lock.acquire lock;
             Sim.delay sim 5_000;
             Lock.release lock;
             Sim.delay sim 500
           done))
  done;
  Sim.run sim;
  let traced =
    List.fold_left
      (fun acc r ->
        match r.Trace.ev with
        | Trace.Lock_grant { wait_ns; _ } -> acc + wait_ns
        | _ -> acc)
      0
      (Trace.events (Sim.tracer sim))
  in
  Alcotest.(check int) "trace wait = counter wait" (Lock.total_wait_ns lock) traced;
  let table = Trace.lock_table (Sim.tracer sim) in
  (match table with
   | [ row ] ->
     Alcotest.(check string) "lock name" "acct" row.Trace.lock;
     Alcotest.(check int) "table wait" (Lock.total_wait_ns lock) row.Trace.wait_ns;
     Alcotest.(check int) "table hold" (Lock.total_hold_ns lock) row.Trace.hold_ns;
     Alcotest.(check int) "acquisitions" (Lock.acquisitions lock) row.Trace.acquisitions;
     Alcotest.(check int) "contended" (Lock.contended_acquisitions lock) row.Trace.contended
   | rows -> Alcotest.failf "expected one lock in table, got %d" (List.length rows))

let test_gate_pass_after_take_in_ticket_order () =
  let sim = Sim.create ~seed:3 () in
  Trace.enable (Sim.tracer sim);
  let gate = Gate.create sim arch ~name:"g" in
  (* Four threads take tickets in spawn order but await out of order. *)
  for i = 0 to 3 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "t%d" i) (fun () ->
           Sim.delay sim (100 * i);
           let n = Gate.take gate in
           (* later tickets dawdle before awaiting; earlier ones pass anyway *)
           Sim.delay sim (1_000 * (4 - i));
           Gate.await gate n;
           Sim.delay sim 10;
           Gate.advance gate))
  done;
  Sim.run sim;
  let takes = ref [] and passes = ref [] in
  let taken = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.Trace.ev with
      | Trace.Gate_take { ticket; _ } ->
        takes := ticket :: !takes;
        Hashtbl.replace taken ticket ()
      | Trace.Gate_pass { ticket; _ } ->
        if not (Hashtbl.mem taken ticket) then
          Alcotest.failf "ticket %d passed the gate before being taken" ticket;
        passes := ticket :: !passes
      | _ -> ())
    (Trace.events (Sim.tracer sim));
  Alcotest.(check (list int)) "tickets issued in order" [ 0; 1; 2; 3 ] (List.rev !takes);
  Alcotest.(check (list int)) "gate passes in ticket order" [ 0; 1; 2; 3 ]
    (List.rev !passes)

let test_disabled_records_nothing () =
  let sim = Sim.create ~seed:2 () in
  let lock = Lock.create sim arch Lock.Unfair ~name:"l" in
  for i = 0 to 2 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "t%d" i) (fun () ->
           for _ = 1 to 10 do
             Lock.acquire lock;
             Sim.delay sim 1_000;
             Lock.release lock
           done))
  done;
  Sim.run sim;
  Alcotest.(check int) "no events while disabled" 0 (Trace.count (Sim.tracer sim))

let fig10_cfg ~seed =
  Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
    ~lock_disc:Lock.Unfair ~procs:8 ~warmup:(Pnp_util.Units.ms 30.0)
    ~measure:(Pnp_util.Units.ms 60.0) ~seed ()

let test_tracing_does_not_perturb_results () =
  (* The acceptance bar: enabling the tracer must not change any reproduced
     number for a fixed seed, because trace emission consumes no simulated
     time. *)
  let cfg = fig10_cfg ~seed:11 in
  let plain = Run.run cfg in
  let traced, tracer = Run.run_traced cfg in
  Alcotest.(check bool) "identical results with tracing on" true (plain = traced);
  Alcotest.(check bool) "events were recorded" true (Trace.count tracer > 0)

let test_trace_wait_agrees_with_lock_wait_pct () =
  (* Fig-10-style run: the connection-lock wait total reconstructed from
     grant events must agree with the lock_wait_pct aggregate within 1%. *)
  let cfg = fig10_cfg ~seed:7 in
  let result, tracer = Run.run_traced cfg in
  let is_conn_lock name =
    (* conn locks are named "<proto>.conn:<lport>-<raddr>:<rport>" *)
    let rec has_sub i =
      if i + 6 > String.length name then false
      else String.sub name i 6 = ".conn:" || has_sub (i + 1)
    in
    has_sub 0
  in
  let traced_wait =
    List.fold_left
      (fun acc r ->
        match r.Trace.ev with
        | Trace.Lock_grant { lock; wait_ns; _ } when is_conn_lock lock -> acc + wait_ns
        | _ -> acc)
      0 (Trace.events tracer)
  in
  let traced_pct =
    100.0 *. float_of_int traced_wait /. float_of_int (8 * Pnp_util.Units.ms 60.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "run saw contention (lock_wait_pct = %.1f)" result.Run.lock_wait_pct)
    true
    (result.Run.lock_wait_pct > 1.0);
  let rel_err =
    abs_float (traced_pct -. result.Run.lock_wait_pct) /. result.Run.lock_wait_pct
  in
  Alcotest.(check bool)
    (Printf.sprintf "trace %.3f%% vs aggregate %.3f%% (rel err %.4f)" traced_pct
       result.Run.lock_wait_pct rel_err)
    true (rel_err < 0.01)

let test_chrome_export_sanity () =
  let tracer = traced_lock_run Lock.Unfair ~seed:4 in
  let s = Trace.to_chrome_string tracer in
  Alcotest.(check bool) "has traceEvents key" true
    (String.length s > 20 && String.sub s 0 16 = "{\"traceEvents\":[");
  (* Balanced braces/brackets outside string literals => structurally
     plausible JSON without pulling in a parser. *)
  let depth = ref 0 and bracket = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' -> incr depth
        | '}' -> decr depth
        | '[' -> incr bracket
        | ']' -> decr bracket
        | _ -> ())
    s;
  Alcotest.(check int) "balanced braces" 0 !depth;
  Alcotest.(check int) "balanced brackets" 0 !bracket;
  Alcotest.(check bool) "not inside a string" false !in_str;
  (* Writing to a file round-trips the same bytes. *)
  let file = Filename.temp_file "pnp_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.write_chrome tracer file;
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) "file matches string" s contents)

let test_packet_spans_balanced () =
  (* In a traced TCP run every span end must close a begun span of the
     same (seq, phase); at most the in-flight tail may stay open. *)
  let _, tracer = Run.run_traced (fig10_cfg ~seed:5) in
  let open_spans = Hashtbl.create 256 in
  let begins = ref 0 and ends = ref 0 and orphan_ends = ref 0 in
  List.iter
    (fun r ->
      match r.Trace.ev with
      | Trace.Span_begin { seq; phase } ->
        incr begins;
        Hashtbl.replace open_spans (seq, phase) ()
      | Trace.Span_end { seq; phase } ->
        incr ends;
        (* An end with no begin can only come from a span the warmup
           boundary cut in half (begin fell before tracing started). *)
        if Hashtbl.mem open_spans (seq, phase) then Hashtbl.remove open_spans (seq, phase)
        else incr orphan_ends
      | _ -> ())
    (Trace.events tracer);
  Alcotest.(check bool) "spans recorded" true (!begins > 0);
  Alcotest.(check bool)
    (Printf.sprintf "orphan ends (%d) bounded by window-start cut" !orphan_ends)
    true (!orphan_ends <= 16);
  Alcotest.(check bool)
    (Printf.sprintf "dangling begins (%d) bounded by window-end cut"
       (Hashtbl.length open_spans))
    true
    (Hashtbl.length open_spans <= 16)

let suites =
  [
    ( "engine.trace",
      [
        Alcotest.test_case "grant preceded by request" `Quick test_grant_has_prior_request;
        Alcotest.test_case "fifo grants in request order" `Quick
          test_fifo_grants_in_request_order;
        Alcotest.test_case "unfair observably reorders" `Quick
          test_unfair_grants_observably_reorder;
        Alcotest.test_case "wait matches lock accounting" `Quick
          test_wait_matches_lock_accounting;
        Alcotest.test_case "gate passes in ticket order" `Quick
          test_gate_pass_after_take_in_ticket_order;
        Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
        Alcotest.test_case "chrome export sanity" `Quick test_chrome_export_sanity;
      ] );
    ( "harness.trace",
      [
        Alcotest.test_case "tracing does not perturb results" `Slow
          test_tracing_does_not_perturb_results;
        Alcotest.test_case "trace wait agrees with aggregate" `Slow
          test_trace_wait_agrees_with_lock_wait_pct;
        Alcotest.test_case "packet spans balanced" `Slow test_packet_spans_balanced;
      ] );
  ]
