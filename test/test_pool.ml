(* The multicore sweep pool (Pool) and the determinism guarantee that
   rides on it: figure tables are byte-identical at any -j level. *)

open Pnp_harness

let with_jobs n f =
  let old = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs old) f

let test_map_matches_serial () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) - (3 * x) in
  let serial = List.map f xs in
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          Alcotest.(check (list int)) (Printf.sprintf "-j %d" j) serial (Pool.map f xs)))
    [ 1; 2; 3; 8 ]

let test_map_degenerate_inputs () =
  with_jobs 4 (fun () ->
      Alcotest.(check (list int)) "empty" [] (Pool.map succ []);
      Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map succ [ 1 ]);
      Alcotest.(check (list int)) "fewer items than workers" [ 2; 3 ]
        (Pool.map succ [ 1; 2 ]))

exception Boom of int

let test_first_error_in_input_order () =
  with_jobs 4 (fun () ->
      let f x = if x mod 3 = 0 then raise (Boom x) else x in
      match Pool.map f (List.init 20 (fun i -> i + 1)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> Alcotest.(check int) "first failing input wins" 3 x)

let test_nested_map_serialises () =
  with_jobs 4 (fun () ->
      let expect = List.init 4 (fun x -> List.init 5 (fun y -> (x * 10) + y)) in
      let got =
        Pool.map
          (fun x -> Pool.map (fun y -> (x * 10) + y) (List.init 5 Fun.id))
          (List.init 4 Fun.id)
      in
      Alcotest.(check (list (list int))) "nested map result" expect got)

let test_set_jobs_validates () =
  match Pool.set_jobs 0 with
  | () -> Alcotest.fail "set_jobs 0 must be rejected"
  | exception Invalid_argument _ -> ()

(* The pinned guarantee of the -j flag: a real sweep (Table 1, reduced)
   produces byte-identical JSON payloads serially and on four worker
   domains.  The payload covers every table, series, point, mean and CI
   the figure would print or export; jobs/elapsed_s are pinned so only
   sweep results are compared. *)
let sweep_opts =
  {
    Pnp_figures.Opts.max_procs = 2;
    seeds = 2;
    warmup = Pnp_util.Units.ms 30.0;
    measure = Pnp_util.Units.ms 60.0;
  }

let table1_payload () =
  Json_out.figure_json ~id:"table1" ~jobs:1 ~elapsed_s:0.0
    (Pnp_figures.Fig_ordering.table1_data sweep_opts)

let test_parallel_sweep_deterministic () =
  let serial = with_jobs 1 table1_payload in
  let parallel = with_jobs 4 table1_payload in
  Alcotest.(check string) "-j 1 and -j 4 byte-identical" serial parallel

let suites =
  [
    ( "harness.pool",
      [
        Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
        Alcotest.test_case "degenerate inputs" `Quick test_map_degenerate_inputs;
        Alcotest.test_case "first error in input order" `Quick
          test_first_error_in_input_order;
        Alcotest.test_case "nested map serialises" `Quick test_nested_map_serialises;
        Alcotest.test_case "set_jobs validates" `Quick test_set_jobs_validates;
        Alcotest.test_case "-j 1 = -j 4 on a real sweep" `Slow
          test_parallel_sweep_deterministic;
      ] );
  ]
