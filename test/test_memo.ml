(* The sweep-cell memo (Run) and its key (Config.canonical): caching
   repeated (config, seed) cells must never change a byte of figure
   output, at any -j level, and the key must distinguish every
   configuration field that changes what a run computes. *)

open Pnp_harness

let with_jobs n f =
  let old = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs old) f

let with_memo on f =
  Run.set_cell_memo on;
  Run.clear_cell_memo ();
  Fun.protect
    ~finally:(fun () ->
      Run.set_cell_memo true;
      Run.clear_cell_memo ())
    f

(* A reduced but real sweep whose figure shares cells internally (the
   speedup table reuses the throughput table's cells). *)
let sweep_opts =
  {
    Pnp_figures.Opts.max_procs = 2;
    seeds = 2;
    warmup = Pnp_util.Units.ms 30.0;
    measure = Pnp_util.Units.ms 60.0;
  }

let fig10_payload () =
  Json_out.figure_json ~id:"fig10" ~jobs:1 ~elapsed_s:0.0
    (Pnp_figures.Fig_ordering.fig10_data sweep_opts)

let test_memo_on_off_identical () =
  let cold = with_memo false fig10_payload in
  let warm =
    with_memo true (fun () ->
        let first = fig10_payload () in
        Alcotest.(check bool) "memo populated" true (Run.cell_memo_size () > 0);
        (* Second generation is served (partly) from the memo. *)
        let second = fig10_payload () in
        Alcotest.(check string) "memo-served repeat identical" first second;
        first)
  in
  Alcotest.(check string) "memo off and on byte-identical" cold warm

let test_memo_parallel_identical () =
  with_memo true (fun () ->
      let serial = with_jobs 1 fig10_payload in
      Run.clear_cell_memo ();
      let parallel = with_jobs 4 fig10_payload in
      Alcotest.(check string) "-j 1 and -j 4 byte-identical with memo" serial
        parallel)

(* The memo would silently corrupt figures if two different configs
   collided on one key; pin that every field that changes a run changes
   the key.  (The full every-field guarantee lives in Config.canonical's
   implementation: the key is built from an exhaustive field list.) *)
let test_canonical_distinguishes () =
  let base = Config.baseline in
  let distinct name a b =
    Alcotest.(check bool)
      (name ^ " changes the canonical key")
      false
      (String.equal (Config.canonical a) (Config.canonical b))
  in
  Alcotest.(check string)
    "equal configs, equal keys"
    (Config.canonical base)
    (Config.canonical { base with Config.seed = base.Config.seed });
  distinct "refcnt_mode" base
    { base with Config.refcnt_mode = Pnp_engine.Atomic_ctr.Locked };
  distinct "message_caching" base { base with Config.message_caching = false };
  distinct "loss_rate" base { base with Config.loss_rate = 0.01 };
  distinct "seed" base { base with Config.seed = base.Config.seed + 1 };
  distinct "procs" base { base with Config.procs = base.Config.procs + 1 };
  distinct "ticketing" base { base with Config.ticketing = true };
  distinct "cksum_under_lock" base { base with Config.cksum_under_lock = true };
  distinct "skew" base { base with Config.skew = 0.5 };
  distinct "offered_mbps" base { base with Config.offered_mbps = Some 100.0 };
  distinct "measure" base { base with Config.measure = base.Config.measure + 1 };
  distinct "steering" base { base with Config.steering = Some Pnp_driver.Steer.Hash };
  distinct "steering policy"
    { base with Config.steering = Some Pnp_driver.Steer.Hash }
    { base with Config.steering = Some Pnp_driver.Steer.Last_sender };
  distinct "demux_shards" base { base with Config.demux_shards = 8 }

(* A memo hit returns the very value a fresh run computes. *)
let test_memo_hit_equals_fresh_run () =
  let cfg =
    Config.v ~procs:2 ~side:Config.Recv ~protocol:Config.Tcp
      ~warmup:(Pnp_util.Units.ms 20.0)
      ~measure:(Pnp_util.Units.ms 40.0)
      ~seed:7 ()
  in
  let fresh = with_memo false (fun () -> Run.run cfg) in
  with_memo true (fun () ->
      let miss = Run.run cfg in
      let hit = Run.run cfg in
      Alcotest.(check bool) "miss equals fresh" true (miss = fresh);
      Alcotest.(check bool) "hit equals miss" true (hit = miss);
      Alcotest.(check int) "one cell cached" 1 (Run.cell_memo_size ()))

let suites =
  [
    ( "harness.memo",
      [
        Alcotest.test_case "canonical key distinguishes fields" `Quick
          test_canonical_distinguishes;
        Alcotest.test_case "hit equals fresh run" `Quick test_memo_hit_equals_fresh_run;
        Alcotest.test_case "memo on/off byte-identical" `Slow test_memo_on_off_identical;
        Alcotest.test_case "memo -j1 = -j4 on a real sweep" `Slow
          test_memo_parallel_identical;
      ] );
  ]
