open Pnp_util
open Pnp_engine

let arch = Arch.challenge_100

(* ------------------------------------------------------------------ *)
(* Eventq                                                              *)
(* ------------------------------------------------------------------ *)

let test_eventq_order () =
  let q = Eventq.create () in
  Eventq.add q ~time:30 "c";
  Eventq.add q ~time:10 "a";
  Eventq.add q ~time:20 "b";
  let popped =
    List.init 3 (fun _ ->
        let t = Eventq.peek_time_exn q in
        (t, Eventq.pop_exn q))
  in
  Alcotest.(check (list (pair int string)))
    "time order"
    [ (10, "a"); (20, "b"); (30, "c") ]
    popped;
  Alcotest.(check bool) "empty" true (Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  List.iter (fun s -> Eventq.add q ~time:5 s) [ "x"; "y"; "z" ];
  let popped = List.init 3 (fun _ -> Eventq.pop_exn q) in
  Alcotest.(check (list string)) "insertion order at equal time" [ "x"; "y"; "z" ] popped

let test_eventq_pop_empty () =
  let q = Eventq.create () in
  Alcotest.(check bool) "peek none" true (Eventq.peek_time q = None);
  Alcotest.(check int) "size" 0 (Eventq.size q)

let test_eventq_pop_exn () =
  let q = Eventq.create () in
  Eventq.add q ~time:20 "b";
  Eventq.add q ~time:10 "a";
  Alcotest.(check int) "peek_time_exn" 10 (Eventq.peek_time_exn q);
  Alcotest.(check string) "earliest payload" "a" (Eventq.pop_exn q);
  Alcotest.(check string) "then next" "b" (Eventq.pop_exn q);
  (match Eventq.pop_exn q with
   | _ -> Alcotest.fail "pop_exn on empty must raise"
   | exception Eventq.Empty -> ());
  match Eventq.peek_time_exn q with
  | _ -> Alcotest.fail "peek_time_exn on empty must raise"
  | exception Eventq.Empty -> ()

let prop_eventq_sorted =
  QCheck.Test.make ~name:"eventq pops sorted" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) small_nat)
    (fun times ->
      let q = Eventq.create () in
      List.iter (fun t -> Eventq.add q ~time:t ()) times;
      let rec drain acc =
        if Eventq.is_empty q then List.rev acc
        else
          let t = Eventq.peek_time_exn q in
          let () = Eventq.pop_exn q in
          drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare times)

(* Random interleavings of add and pop — long enough to cross several
   internal array grows — must drain in exact (time, seq) order against
   a sorted-list oracle, with FIFO tie-breaking at equal times.  Each
   op is (true, t) = add at time t (payload: the event's sequence
   number) or (false, _) = pop. *)
let prop_eventq_interleaved_oracle =
  QCheck.Test.make ~name:"eventq interleaved add/pop vs oracle" ~count:100
    QCheck.(list_of_size Gen.(0 -- 600) (pair bool (int_bound 40)))
    (fun ops ->
      let q = Eventq.create () in
      (* Oracle: pending (time, seq) pairs kept sorted lexicographically;
         seq assignment matches Eventq's monotone internal counter, so a
         plain sorted insert preserves FIFO ties. *)
      let pending = ref [] and next_seq = ref 0 in
      let insert ts =
        let rec go = function
          | [] -> [ ts ]
          | hd :: tl -> if ts < hd then ts :: hd :: tl else hd :: go tl
        in
        pending := go !pending
      in
      let ok = ref true in
      List.iter
        (fun (is_add, time) ->
          if is_add then begin
            Eventq.add q ~time !next_seq;
            insert (time, !next_seq);
            incr next_seq
          end
          else
            match !pending with
            | [] ->
              if not (Eventq.is_empty q) then ok := false;
              (match Eventq.pop_exn q with
               | _ -> ok := false
               | exception Eventq.Empty -> ())
            | (t, s) :: rest ->
              if Eventq.peek_time_exn q <> t then ok := false;
              if Eventq.pop_exn q <> s then ok := false;
              pending := rest)
        ops;
      (* Drain what's left: every remaining event in oracle order. *)
      List.iter
        (fun (t, s) ->
          if Eventq.peek_time_exn q <> t then ok := false;
          if Eventq.pop_exn q <> s then ok := false)
        !pending;
      !ok && Eventq.is_empty q)

(* Batched drains against the one-at-a-time oracle: any interleaving of
   adds and [pop_run] drains — including adds landing between drains at
   times at or below the pending minimum — must yield exactly the events
   repeated [pop_exn] calls on a twin queue produce, FIFO at ties.  The
   payloads are the events' sequence numbers, so an ordering slip inside
   a run is visible, not just a wrong multiset. *)
let prop_eventq_pop_run_oracle =
  QCheck.Test.make ~name:"eventq pop_run drains match the pop_exn oracle" ~count:100
    QCheck.(list_of_size Gen.(0 -- 400) (pair bool (int_bound 25)))
    (fun ops ->
      let batched = Eventq.create () and oracle = Eventq.create () in
      let buf = ref (Array.make 1 0) in
      let next_seq = ref 0 in
      let ok = ref true in
      let drain_one_run () =
        if Eventq.is_empty batched then begin
          if not (Eventq.is_empty oracle) then ok := false
        end
        else begin
          let t = Eventq.peek_time_exn batched in
          let n = Eventq.pop_run batched buf in
          if n <= 0 then ok := false;
          for i = 0 to n - 1 do
            if Eventq.peek_time_exn oracle <> t then ok := false;
            if Eventq.pop_exn oracle <> !buf.(i) then ok := false
          done;
          (* The run must be maximal: the oracle's next event, if any,
             sits at a strictly later time. *)
          match Eventq.peek_time oracle with
          | Some t' when t' = t -> ok := false
          | _ -> ()
        end
      in
      List.iter
        (fun (is_add, time) ->
          if is_add then begin
            Eventq.add batched ~time !next_seq;
            Eventq.add oracle ~time !next_seq;
            incr next_seq
          end
          else drain_one_run ())
        ops;
      while not (Eventq.is_empty batched) do
        drain_one_run ()
      done;
      !ok && Eventq.is_empty oracle)

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_delay () =
  let sim = Sim.create () in
  let trace = ref [] in
  let _ =
    Sim.spawn sim ~name:"t" (fun () ->
        Sim.delay sim 100;
        trace := (Sim.now sim, "a") :: !trace;
        Sim.delay sim 50;
        trace := (Sim.now sim, "b") :: !trace)
  in
  Sim.run sim;
  Alcotest.(check (list (pair int string))) "timeline" [ (100, "a"); (150, "b") ] (List.rev !trace)

let test_sim_interleaving () =
  let sim = Sim.create () in
  let trace = ref [] in
  let mk name d =
    ignore
      (Sim.spawn sim ~name (fun () ->
           Sim.delay sim d;
           trace := name :: !trace))
  in
  mk "slow" 200;
  mk "fast" 100;
  Sim.run sim;
  Alcotest.(check (list string)) "completion order" [ "fast"; "slow" ] (List.rev !trace)

let test_sim_run_until () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let _ =
    Sim.spawn sim ~name:"ticker" (fun () ->
        for _ = 1 to 100 do
          Sim.delay sim 10;
          incr hits
        done)
  in
  Sim.run ~until:55 sim;
  Alcotest.(check int) "five ticks by t=55" 5 !hits;
  Alcotest.(check int) "clock at limit" 55 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "all ticks eventually" 100 !hits

let test_sim_at_callback () =
  let sim = Sim.create () in
  let fired = ref (-1) in
  Sim.at sim 42 (fun () -> fired := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "fired at 42" 42 !fired

let test_sim_at_past_rejected () =
  let sim = Sim.create () in
  Sim.at sim 10 (fun () ->
      match Sim.at sim 5 (fun () -> ()) with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
  Sim.run sim

let test_sim_self_outside_thread () =
  let sim = Sim.create () in
  match Sim.self sim with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_sim_suspend_resume () =
  let sim = Sim.create () in
  let resumer = ref None in
  let woke_at = ref (-1) in
  let _ =
    Sim.spawn sim ~name:"sleeper" (fun () ->
        Sim.suspend sim (fun resume -> resumer := Some resume);
        woke_at := Sim.now sim)
  in
  Sim.at sim 500 (fun () -> (Option.get !resumer) 700);
  Sim.run sim;
  Alcotest.(check int) "woken at requested time" 700 !woke_at

let test_sim_double_resume_fails () =
  let sim = Sim.create () in
  let resumer = ref None in
  let _ = Sim.spawn sim ~name:"s" (fun () -> Sim.suspend sim (fun r -> resumer := Some r)) in
  Sim.at sim 10 (fun () ->
      let r = Option.get !resumer in
      r 20;
      match r 30 with
      | () -> Alcotest.fail "second resume should fail"
      | exception Failure _ -> ());
  Sim.run sim

let test_sim_spawn_on_cpu () =
  let sim = Sim.create () in
  let th = Sim.spawn sim ~cpu:3 ~name:"pinned" (fun () -> ()) in
  Alcotest.(check int) "cpu" 3 (Sim.cpu th);
  Sim.run sim;
  Alcotest.(check bool) "finished" true (Sim.is_finished th)

let test_sim_yield_fairness () =
  (* Two threads that yield in a loop interleave at the same timestamp. *)
  let sim = Sim.create () in
  let trace = Buffer.create 16 in
  let mk name =
    ignore
      (Sim.spawn sim ~name (fun () ->
           for _ = 1 to 3 do
             Buffer.add_string trace name;
             Sim.yield sim
           done))
  in
  mk "a";
  mk "b";
  Sim.run sim;
  Alcotest.(check string) "interleaved" "ababab" (Buffer.contents trace)

let test_sim_deterministic_given_seed () =
  let run seed =
    let sim = Sim.create ~seed () in
    let order = ref [] in
    for i = 1 to 5 do
      ignore
        (Sim.spawn sim ~name:(string_of_int i) (fun () ->
             Sim.delay sim (10 * Prng.int (Sim.prng sim) 100);
             order := i :: !order))
    done;
    Sim.run sim;
    !order
  in
  Alcotest.(check (list int)) "same seed, same order" (run 9) (run 9);
  (* Not a hard guarantee for every pair of seeds, but these differ. *)
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 5)

(* Batched dispatch must be invisible: the same program in a batched and
   an unbatched world fires every callback and thread step in the same
   order at the same times, and retires the same event count.  The
   program mixes contended locks (suspend/resume), timestamp ties
   ([at] callbacks and threads landing on the same instant), zero-length
   delays and PRNG-driven jitter — everything the now-ring, run drains
   and the inline delay path each handle specially. *)
let test_sim_batching_equivalence () =
  let run batching =
    let sim = Sim.create ~seed:17 ~batching () in
    let log = ref [] in
    let note tag = log := (tag, Sim.now sim) :: !log in
    let lock = Lock.create sim arch Lock.Fifo ~name:"l" in
    for k = 1 to 3 do
      Sim.at sim (k * 500) (fun () -> note (Printf.sprintf "cb%d" k));
      Sim.at sim (k * 500) (fun () -> note (Printf.sprintf "cb%d'" k))
    done;
    for i = 1 to 4 do
      ignore
        (Sim.spawn sim ~name:(Printf.sprintf "t%d" i) (fun () ->
             for r = 1 to 10 do
               Sim.delay sim (100 * Prng.int (Sim.prng sim) 5);
               Lock.acquire lock;
               note (Printf.sprintf "t%d.%d" i r);
               Sim.delay sim 100;
               Lock.release lock;
               if r mod 3 = 0 then Sim.yield sim
             done))
    done;
    Sim.run sim;
    (List.rev !log, Sim.events_processed sim)
  in
  let log_b, n_b = run true and log_u, n_u = run false in
  Alcotest.(check (list (pair string int))) "same dispatch order and times" log_u log_b;
  Alcotest.(check int) "same events processed" n_u n_b

(* ------------------------------------------------------------------ *)
(* Lock                                                                *)
(* ------------------------------------------------------------------ *)

let test_lock_mutual_exclusion () =
  let sim = Sim.create () in
  let lock = Lock.create sim arch Lock.Unfair ~name:"l" in
  let inside = ref 0 and max_inside = ref 0 and iterations = ref 0 in
  for i = 1 to 4 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "t%d" i) (fun () ->
           for _ = 1 to 25 do
             Lock.acquire lock;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Sim.delay sim 100;
             decr inside;
             incr iterations;
             Lock.release lock
           done))
  done;
  Sim.run sim;
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "all iterations ran" 100 !iterations;
  Alcotest.(check int) "acquisitions counted" 100 (Lock.acquisitions lock)

let test_lock_fifo_grant_order () =
  let sim = Sim.create () in
  let lock = Lock.create sim arch Lock.Fifo ~name:"mcs" in
  let grants = ref [] in
  (* A holder keeps the lock while others line up in a known order. *)
  let _ =
    Sim.spawn sim ~name:"holder" (fun () ->
        Lock.acquire lock;
        Sim.delay sim 100_000;
        Lock.release lock)
  in
  for i = 1 to 5 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "w%d" i) (fun () ->
           Sim.delay sim (1000 * i);
           Lock.acquire lock;
           grants := i :: !grants;
           Lock.release lock))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO grants in arrival order" [ 1; 2; 3; 4; 5 ] (List.rev !grants)

let test_lock_unfair_reorders () =
  (* With many rounds, the unfair lock must grant out of arrival order at
     least once; the FIFO lock never does. *)
  let misorders disc =
    let sim = Sim.create ~seed:123 () in
    let lock = Lock.create sim arch disc ~name:"l" in
    let expected = ref 0 and misordered = ref 0 in
    let _ =
      Sim.spawn sim ~name:"holder" (fun () ->
          for _ = 1 to 50 do
            Lock.acquire lock;
            Sim.delay sim 50_000;
            Lock.release lock;
            Sim.delay sim 10_000
          done)
    in
    for i = 1 to 4 do
      ignore
        (Sim.spawn sim ~name:(Printf.sprintf "w%d" i) (fun () ->
             Sim.delay sim (100 * i);
             for _ = 1 to 40 do
               Lock.acquire lock;
               Sim.delay sim 10;
               Lock.release lock;
               Sim.delay sim 30_000
             done))
    done;
    (* Track grant order vs a per-round arrival sequence implicitly via
       monotonically increasing "ticket" assigned at acquire start. *)
    ignore expected;
    ignore misordered;
    Sim.run sim;
    Lock.contended_acquisitions lock
  in
  (* Both disciplines see contention; this test just checks the machinery
     runs to completion and contention is observed. Order-sensitivity is
     covered by the dedicated ordering test below. *)
  Alcotest.(check bool) "unfair contended" true (misorders Lock.Unfair > 0);
  Alcotest.(check bool) "fifo contended" true (misorders Lock.Fifo > 0)

let grant_sequence disc ~seed =
  (* Threads arrive at known distinct times while the lock is held; record
     the order they are granted the lock. *)
  let sim = Sim.create ~seed () in
  let lock = Lock.create sim arch disc ~name:"l" in
  let grants = ref [] in
  let _ =
    Sim.spawn sim ~name:"holder" (fun () ->
        Lock.acquire lock;
        Sim.delay sim 1_000_000;
        Lock.release lock)
  in
  for i = 1 to 6 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "w%d" i) (fun () ->
           Sim.delay sim (2_000 * i);
           Lock.acquire lock;
           grants := i :: !grants;
           Sim.delay sim 10;
           Lock.release lock))
  done;
  Sim.run sim;
  List.rev !grants

let test_lock_unfair_eventually_misorders () =
  let misordered =
    List.exists
      (fun seed -> grant_sequence Lock.Unfair ~seed <> [ 1; 2; 3; 4; 5; 6 ])
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "unfair lock reorders waiters for some seed" true misordered;
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        "fifo never reorders" [ 1; 2; 3; 4; 5; 6 ]
        (grant_sequence Lock.Fifo ~seed))
    [ 1; 2; 3; 4; 5 ]

let test_lock_unfair_grants_pinned () =
  (* Regression pin for the unfair discipline's grant order per seed: it is
     a pure function of the Prng stream, so any change to random-number
     generation shows up here before it silently shifts figure results. *)
  List.iter
    (fun (seed, expected) ->
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d grant order" seed)
        expected
        (grant_sequence Lock.Unfair ~seed))
    [ (1, [ 5; 6; 4; 3; 1; 2 ]); (2, [ 6; 2; 5; 1; 3; 4 ]); (3, [ 6; 1; 2; 5; 4; 3 ]) ]

let test_lock_release_by_non_owner_fails () =
  let sim = Sim.create () in
  let lock = Lock.create sim arch Lock.Unfair ~name:"demux" in
  let contains msg sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  (* Released while not held at all: the message names the lock and says so. *)
  let _ =
    Sim.spawn sim ~name:"bad" (fun () ->
        match Lock.release lock with
        | () -> Alcotest.fail "release without acquire should fail"
        | exception Invalid_argument msg ->
          Alcotest.(check bool) "names the lock" true (contains msg "\"demux\"");
          Alcotest.(check bool) "says not held" true (contains msg "not held"))
  in
  Sim.run sim;
  (* Released by a thread other than the owner: both tids are named. *)
  let sim = Sim.create () in
  let lock = Lock.create sim arch Lock.Unfair ~name:"demux" in
  let owner = Sim.spawn sim ~name:"owner" (fun () ->
      Lock.acquire lock;
      Sim.delay sim 1_000_000;
      Lock.release lock)
  in
  let intruder = ref None in
  let it = Sim.spawn sim ~name:"intruder" (fun () ->
      Sim.delay sim 1_000;
      match Lock.release lock with
      | () -> Alcotest.fail "non-owner release should fail"
      | exception Invalid_argument msg -> intruder := Some msg)
  in
  Sim.run sim;
  match !intruder with
  | None -> Alcotest.fail "intruder never ran"
  | Some msg ->
    Alcotest.(check bool) "names caller tid" true
      (contains msg (Printf.sprintf "tid %d (intruder)" (Sim.tid it)));
    Alcotest.(check bool) "names owner tid" true
      (contains msg (Printf.sprintf "tid %d (owner)" (Sim.tid owner)))

let test_lock_with_lock_releases_on_exception () =
  let sim = Sim.create () in
  let lock = Lock.create sim arch Lock.Unfair ~name:"l" in
  let second_ran = ref false in
  let _ =
    Sim.spawn sim ~name:"thrower" (fun () ->
        match Lock.with_lock lock (fun () -> raise Exit) with
        | () -> ()
        | exception Exit -> ())
  in
  let _ =
    Sim.spawn sim ~name:"after" (fun () ->
        Sim.delay sim 10_000;
        Lock.with_lock lock (fun () -> second_ran := true))
  in
  Sim.run sim;
  Alcotest.(check bool) "lock released after exception" true !second_ran

let test_lock_wait_accounting () =
  let sim = Sim.create () in
  let lock = Lock.create sim arch Lock.Unfair ~name:"l" in
  let _ =
    Sim.spawn sim ~name:"holder" (fun () ->
        Lock.acquire lock;
        Sim.delay sim 100_000;
        Lock.release lock)
  in
  let waiter =
    Sim.spawn sim ~name:"waiter" (fun () ->
        Sim.delay sim 1_000;
        Lock.acquire lock;
        Lock.release lock)
  in
  Sim.run sim;
  Alcotest.(check bool) "lock wait recorded" true (Lock.total_wait_ns lock > 90_000);
  Alcotest.(check bool) "thread wait recorded" true (Sim.wait_ns waiter > 90_000);
  Alcotest.(check bool) "hold recorded" true (Lock.total_hold_ns lock >= 100_000)

let test_lock_coherency_penalty_cross_cpu () =
  (* Same-CPU reacquisition is cheaper than alternating CPUs on a
     coherency-synchronised machine. *)
  let elapsed ~cpus =
    let sim = Sim.create () in
    let lock = Lock.create sim arch Lock.Unfair ~name:"l" in
    let finish = ref 0 in
    let rounds = 100 in
    for i = 0 to 1 do
      ignore
        (Sim.spawn sim ~cpu:(if cpus = 1 then 0 else i) ~name:(Printf.sprintf "t%d" i)
           (fun () ->
             for _ = 1 to rounds do
               Lock.acquire lock;
               Sim.delay sim 10;
               Lock.release lock;
               Sim.delay sim 5_000
             done;
             finish := max !finish (Sim.now sim)))
    done;
    Sim.run sim;
    !finish
  in
  Alcotest.(check bool)
    "alternating CPUs slower than one CPU pair" true
    (elapsed ~cpus:2 > elapsed ~cpus:1)

let test_lock_power_series_no_penalty () =
  let elapsed a =
    let sim = Sim.create () in
    let lock = Lock.create sim a Lock.Unfair ~name:"l" in
    let t_end = ref 0 in
    for i = 0 to 1 do
      ignore
        (Sim.spawn sim ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun () ->
             for _ = 1 to 50 do
               Lock.acquire lock;
               Lock.release lock;
               Sim.delay sim 10_000
             done;
             t_end := max !t_end (Sim.now sim)))
    done;
    Sim.run sim;
    !t_end
  in
  let no_pen = { arch with Arch.sync = Arch.Sync_bus } in
  Alcotest.(check bool) "sync-bus arch avoids migration cost" true (elapsed no_pen < elapsed arch)

let test_counting_lock_recursion () =
  let sim = Sim.create () in
  let cl = Lock.Counting.create sim arch Lock.Unfair ~name:"map" in
  let ok = ref false in
  let _ =
    Sim.spawn sim ~name:"recurser" (fun () ->
        Lock.Counting.acquire cl;
        Lock.Counting.acquire cl;
        Alcotest.(check int) "depth 2" 2 (Lock.Counting.depth cl);
        Lock.Counting.release cl;
        Alcotest.(check int) "depth 1" 1 (Lock.Counting.depth cl);
        Lock.Counting.release cl;
        ok := true)
  in
  Sim.run sim;
  Alcotest.(check bool) "completed" true !ok

let test_counting_lock_excludes_others () =
  let sim = Sim.create () in
  let cl = Lock.Counting.create sim arch Lock.Unfair ~name:"map" in
  let order = ref [] in
  let _ =
    Sim.spawn sim ~name:"first" (fun () ->
        Lock.Counting.acquire cl;
        Lock.Counting.acquire cl;
        Sim.delay sim 10_000;
        order := "first-release" :: !order;
        Lock.Counting.release cl;
        Lock.Counting.release cl)
  in
  let _ =
    Sim.spawn sim ~name:"second" (fun () ->
        Sim.delay sim 100;
        Lock.Counting.acquire cl;
        order := "second-acquired" :: !order;
        Lock.Counting.release cl)
  in
  Sim.run sim;
  Alcotest.(check (list string))
    "second waits for full release"
    [ "first-release"; "second-acquired" ]
    (List.rev !order)

let test_lock_barging_grant_order () =
  (* With every waiter queued by release time, the barging spinlock is
     LIFO: the newest arrival wins each test-and-set race.  No randomness
     is involved, so this holds for every seed. *)
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: newest waiter first" seed)
        [ 6; 5; 4; 3; 2; 1 ]
        (grant_sequence Lock.Barging ~seed))
    [ 1; 2; 3 ]

let test_counting_release_balance () =
  let sim = Sim.create () in
  let cl = Lock.Counting.create sim arch Lock.Unfair ~name:"map" in
  let contains msg sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  let done_ = ref false in
  let _ =
    Sim.spawn sim ~name:"recurser" (fun () ->
        Lock.Counting.with_lock cl (fun () ->
            Lock.Counting.with_lock cl (fun () ->
                Alcotest.(check int) "nested depth" 2 (Lock.Counting.depth cl));
            Alcotest.(check int) "after inner" 1 (Lock.Counting.depth cl));
        Alcotest.(check int) "after outer" 0 (Lock.Counting.depth cl);
        (* A fresh acquire after full release starts a new depth-1 hold;
           the extra release beyond balance must raise, naming the lock. *)
        Lock.Counting.acquire cl;
        Alcotest.(check int) "re-acquired" 1 (Lock.Counting.depth cl);
        Lock.Counting.release cl;
        (match Lock.Counting.release cl with
         | () -> Alcotest.fail "unbalanced release must raise"
         | exception Invalid_argument msg ->
           Alcotest.(check bool) "names the lock" true (contains msg "\"map\"");
           Alcotest.(check bool) "says not held" true (contains msg "not held"));
        done_ := true)
  in
  Sim.run sim;
  Alcotest.(check bool) "completed" true !done_

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let test_gate_orders_delivery () =
  let sim = Sim.create () in
  let gate = Gate.create sim arch ~name:"app" in
  let delivered = ref [] in
  (* Tickets are taken in order 0,1,2 but threads arrive at the gate in
     reverse; delivery must still be in ticket order. *)
  let tickets = Array.make 3 0 in
  let _ =
    Sim.spawn sim ~name:"issuer" (fun () ->
        for i = 0 to 2 do
          tickets.(i) <- Gate.take gate
        done)
  in
  for i = 0 to 2 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "d%d" i) (fun () ->
           (* Later tickets arrive earlier. *)
           Sim.delay sim (10_000 * (3 - i));
           Gate.await gate tickets.(i);
           delivered := i :: !delivered;
           Gate.advance gate))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "ticket order" [ 0; 1; 2 ] (List.rev !delivered)

let test_gate_no_wait_when_in_order () =
  let sim = Sim.create () in
  let gate = Gate.create sim arch ~name:"app" in
  let _ =
    Sim.spawn sim ~name:"t" (fun () ->
        let k = Gate.take gate in
        Gate.await gate k;
        Gate.advance gate;
        let k2 = Gate.take gate in
        Gate.await gate k2;
        Gate.advance gate)
  in
  Sim.run sim;
  Alcotest.(check int) "no wait time" 0 (Gate.total_wait_ns gate);
  Alcotest.(check int) "served two" 2 (Gate.serving gate)

(* ------------------------------------------------------------------ *)
(* Atomic_ctr                                                          *)
(* ------------------------------------------------------------------ *)

let test_atomic_ctr_counts () =
  List.iter
    (fun mode ->
      let sim = Sim.create () in
      let c = Atomic_ctr.create sim arch mode ~name:"ref" ~init:5 in
      let _ =
        Sim.spawn sim ~name:"t" (fun () ->
            ignore (Atomic_ctr.incr c);
            ignore (Atomic_ctr.incr c);
            Alcotest.(check int) "after incr" 7 (Atomic_ctr.get c);
            ignore (Atomic_ctr.decr c);
            Alcotest.(check int) "after decr" 6 (Atomic_ctr.get c))
      in
      Sim.run sim)
    [ Atomic_ctr.Ll_sc; Atomic_ctr.Locked ]

let test_atomic_faster_than_locked () =
  let elapsed mode =
    let sim = Sim.create () in
    let c = Atomic_ctr.create sim arch mode ~name:"ref" ~init:0 in
    let t_end = ref 0 in
    let _ =
      Sim.spawn sim ~name:"t" (fun () ->
          for _ = 1 to 100 do
            ignore (Atomic_ctr.incr c)
          done;
          t_end := Sim.now sim)
    in
    Sim.run sim;
    !t_end
  in
  Alcotest.(check bool) "LL/SC cheaper" true
    (elapsed Atomic_ctr.Ll_sc < elapsed Atomic_ctr.Locked)

let test_atomic_parallel_consistent () =
  let sim = Sim.create () in
  let c = Atomic_ctr.create sim arch Atomic_ctr.Locked ~name:"ref" ~init:0 in
  for i = 0 to 3 do
    ignore
      (Sim.spawn sim ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun () ->
           for _ = 1 to 50 do
             ignore (Atomic_ctr.incr c)
           done))
  done;
  Sim.run sim;
  Alcotest.(check int) "no lost updates" 200 (Atomic_ctr.get c)

(* ------------------------------------------------------------------ *)
(* Membus                                                              *)
(* ------------------------------------------------------------------ *)

let test_membus_single_user_rate () =
  let sim = Sim.create () in
  let bus = Membus.create sim arch in
  (* 32 MB/s -> 4 KB takes 128 us. *)
  Alcotest.(check int) "4KB at 32MB/s" 128_000 (Membus.duration_ns bus ~bytes:4096 ~users:1)

let test_membus_shared_capacity () =
  let sim = Sim.create () in
  let bus = Membus.create sim arch in
  (* With 60 notional users the 1.2 GB/s bus gives each 20 MB/s < 32. *)
  let solo = Membus.duration_ns bus ~bytes:4096 ~users:1 in
  let crowded = Membus.duration_ns bus ~bytes:4096 ~users:60 in
  Alcotest.(check bool) "crowded slower" true (crowded > solo);
  (* At 8 users the Challenge bus is still not the bottleneck (paper: could
     support ~38 checksumming CPUs). *)
  Alcotest.(check int) "8 users same as 1" solo (Membus.duration_ns bus ~bytes:4096 ~users:8)

let test_membus_consume_blocks () =
  let sim = Sim.create () in
  let bus = Membus.create sim arch in
  let t_end = ref 0 in
  let _ =
    Sim.spawn sim ~name:"t" (fun () ->
        Membus.consume bus ~bytes:4096;
        t_end := Sim.now sim)
  in
  Sim.run sim;
  Alcotest.(check int) "blocked for transfer" 128_000 !t_end;
  Alcotest.(check int) "bytes accounted" 4096 (Membus.bytes_transferred bus);
  Alcotest.(check int) "no users left" 0 (Membus.concurrent_users bus)

(* ------------------------------------------------------------------ *)
(* Randomised engine properties                                        *)
(* ------------------------------------------------------------------ *)

(* Random programs of delays and critical sections over a few locks must
   preserve mutual exclusion, always terminate (no lost wakeups), and
   keep wait/hold accounting consistent. *)
let prop_random_lock_programs =
  QCheck.Test.make ~name:"random lock programs: exclusion, progress, accounting" ~count:60
    QCheck.(
      pair (int_bound 10_000)
        (list_of_size (Gen.return 4)
           (list_of_size Gen.(1 -- 12) (pair (int_bound 2) (int_bound 400)))))
    (fun (seed, programs) ->
      let sim = Sim.create ~seed:(seed + 1) () in
      let locks =
        Array.init 3 (fun i ->
            let disc = match i with 0 -> Lock.Unfair | 1 -> Lock.Fifo | _ -> Lock.Barging in
            Lock.create sim arch disc ~name:(Printf.sprintf "l%d" i))
      in
      let inside = Array.make 3 0 in
      let violated = ref false in
      let finished = ref 0 in
      List.iteri
        (fun ti prog ->
          ignore
            (Sim.spawn sim ~cpu:ti ~name:(Printf.sprintf "t%d" ti) (fun () ->
                 List.iter
                   (fun (which, d) ->
                     let l = locks.(which) in
                     Lock.acquire l;
                     inside.(which) <- inside.(which) + 1;
                     if inside.(which) > 1 then violated := true;
                     Sim.delay sim (1 + d);
                     inside.(which) <- inside.(which) - 1;
                     Lock.release l)
                   prog;
                 incr finished)))
        programs;
      Sim.run sim;
      (not !violated)
      && !finished = List.length programs
      && Array.for_all (fun l -> Lock.total_hold_ns l >= 0 && Lock.total_wait_ns l >= 0)
           locks
      && List.length (Sim.blocked_threads sim) = 0)

(* Every permutation of gate usage serves tickets strictly in order. *)
let prop_gate_serves_in_order =
  QCheck.Test.make ~name:"gate always serves tickets in order" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 2 8))
    (fun (seed, n) ->
      let sim = Sim.create ~seed:(seed + 3) () in
      let gate = Gate.create sim arch ~name:"g" in
      let served = ref [] in
      let rng = Pnp_util.Prng.create (seed + 11) in
      let tickets = Array.init n (fun i -> i) in
      (* issue in order, arrive in random order *)
      let arrival = Array.copy tickets in
      Pnp_util.Prng.shuffle rng arrival;
      let issued = Array.map (fun _ -> -1) tickets in
      let _ =
        Sim.spawn sim ~name:"issuer" (fun () ->
            Array.iteri (fun i _ -> issued.(i) <- Gate.take gate) tickets)
      in
      Array.iteri
        (fun pos i ->
          ignore
            (Sim.spawn sim ~name:(Printf.sprintf "w%d" i) (fun () ->
                 (* let the issuer finish taking every ticket first *)
                 Sim.delay sim (5_000 + (1000 * (pos + 1)));
                 Gate.await gate issued.(i);
                 served := i :: !served;
                 Gate.advance gate)))
        arrival;
      Sim.run sim;
      List.rev !served = Array.to_list tickets)

let suites =
  [
    ( "engine.eventq",
      [
        Alcotest.test_case "pops in time order" `Quick test_eventq_order;
        Alcotest.test_case "FIFO at equal times" `Quick test_eventq_fifo_ties;
        Alcotest.test_case "pop empty" `Quick test_eventq_pop_empty;
        Alcotest.test_case "pop_exn / peek_time_exn" `Quick test_eventq_pop_exn;
        Qrand.to_alcotest prop_eventq_sorted;
        Qrand.to_alcotest prop_eventq_interleaved_oracle;
        Qrand.to_alcotest prop_eventq_pop_run_oracle;
      ] );
    ( "engine.sim",
      [
        Alcotest.test_case "delay advances time" `Quick test_sim_delay;
        Alcotest.test_case "threads interleave" `Quick test_sim_interleaving;
        Alcotest.test_case "run until" `Quick test_sim_run_until;
        Alcotest.test_case "scheduled callback" `Quick test_sim_at_callback;
        Alcotest.test_case "past scheduling rejected" `Quick test_sim_at_past_rejected;
        Alcotest.test_case "self outside thread" `Quick test_sim_self_outside_thread;
        Alcotest.test_case "suspend/resume" `Quick test_sim_suspend_resume;
        Alcotest.test_case "double resume fails" `Quick test_sim_double_resume_fails;
        Alcotest.test_case "spawn on cpu" `Quick test_sim_spawn_on_cpu;
        Alcotest.test_case "yield fairness" `Quick test_sim_yield_fairness;
        Alcotest.test_case "deterministic per seed" `Quick test_sim_deterministic_given_seed;
        Alcotest.test_case "batched dispatch equals unbatched" `Quick
          test_sim_batching_equivalence;
      ] );
    ( "engine.lock",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
        Alcotest.test_case "FIFO grant order" `Quick test_lock_fifo_grant_order;
        Alcotest.test_case "contention observed" `Quick test_lock_unfair_reorders;
        Alcotest.test_case "unfair reorders, fifo does not" `Quick
          test_lock_unfair_eventually_misorders;
        Alcotest.test_case "unfair grant order pinned" `Quick
          test_lock_unfair_grants_pinned;
        Alcotest.test_case "release by non-owner fails" `Quick
          test_lock_release_by_non_owner_fails;
        Alcotest.test_case "with_lock releases on exception" `Quick
          test_lock_with_lock_releases_on_exception;
        Alcotest.test_case "wait accounting" `Quick test_lock_wait_accounting;
        Alcotest.test_case "coherency penalty across CPUs" `Quick
          test_lock_coherency_penalty_cross_cpu;
        Alcotest.test_case "sync-bus arch has no penalty" `Quick
          test_lock_power_series_no_penalty;
        Alcotest.test_case "counting lock recursion" `Quick test_counting_lock_recursion;
        Alcotest.test_case "counting lock excludes others" `Quick
          test_counting_lock_excludes_others;
        Alcotest.test_case "barging grants newest first" `Quick
          test_lock_barging_grant_order;
        Alcotest.test_case "counting release balance" `Quick
          test_counting_release_balance;
      ] );
    ( "engine.gate",
      [
        Alcotest.test_case "orders delivery" `Quick test_gate_orders_delivery;
        Alcotest.test_case "no wait when in order" `Quick test_gate_no_wait_when_in_order;
      ] );
    ( "engine.atomic",
      [
        Alcotest.test_case "counts" `Quick test_atomic_ctr_counts;
        Alcotest.test_case "LL/SC faster than locked" `Quick test_atomic_faster_than_locked;
        Alcotest.test_case "parallel consistency" `Quick test_atomic_parallel_consistent;
      ] );
    ( "engine.random",
      [
        Qrand.to_alcotest prop_random_lock_programs;
        Qrand.to_alcotest prop_gate_serves_in_order;
      ] );
    ( "engine.membus",
      [
        Alcotest.test_case "single user rate" `Quick test_membus_single_user_rate;
        Alcotest.test_case "shared capacity" `Quick test_membus_shared_capacity;
        Alcotest.test_case "consume blocks" `Quick test_membus_consume_blocks;
      ] );
  ]
