open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver
open Pnp_faults
open Pnp_harness
open Pnp_analysis

let plat ?(seed = 11) () = Platform.create ~seed Arch.challenge_100

(* Run [body] inside a simulated thread and drive the world to completion. *)
let in_sim plat body =
  let result = ref None in
  let _ = Sim.spawn plat.Platform.sim ~name:"test" (fun () -> result := Some (body ())) in
  Sim.run plat.Platform.sim;
  match !result with Some r -> r | None -> Alcotest.fail "simulated thread did not finish"

let ms = Units.ms
let us = Units.us

(* ------------------------------------------------------------------ *)
(* Pipeline unit tests                                                  *)
(* ------------------------------------------------------------------ *)

let test_builtin_lookup () =
  List.iter
    (fun (name, p) ->
      match Faults.find name with
      | Some q -> Alcotest.(check string) name p.Faults.name q.Faults.name
      | None -> Alcotest.failf "builtin plan %s not found" name)
    Faults.builtin;
  Alcotest.(check bool) "unknown name" true (Faults.find "no-such-plan" = None)

(* Feed the same frame sequence through two instances of the same plan
   seeded identically: the outcomes must match event for event and byte
   for byte. *)
let test_feed_deterministic () =
  let p = plat () in
  let pool = Mpool.create p in
  let plan = Option.get (Faults.find "chaos") in
  in_sim p (fun () ->
      let run_once seed =
        let t = Faults.instantiate plan ~prng:(Prng.create seed) ~skip_bytes:21 in
        let events = ref [] in
        let outputs = ref [] in
        for i = 0 to 199 do
          let m = Msg.create pool 600 in
          Msg.fill_pattern m ~off:0 ~len:600 ~stream_off:(i * 600);
          let out =
            Faults.feed t ~now:(i * us 100.0) ~on_event:(fun e -> events := e :: !events) m
          in
          List.iter
            (fun (frame, extra) ->
              outputs := (Msg.to_string frame, extra) :: !outputs;
              Msg.destroy frame)
            out
        done;
        (!events, !outputs, Faults.dropped t, Faults.corrupted t, Faults.duplicated t)
      in
      let a = run_once 42 and b = run_once 42 in
      Alcotest.(check bool) "same outcomes" true (a = b);
      let c = run_once 43 in
      let ev_of (e, _, _, _, _) = List.length e in
      Alcotest.(check bool) "different seed plausibly differs" true
        (a <> c || ev_of a = ev_of c))

let test_bernoulli_rate () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let t =
        Faults.instantiate (Faults.bernoulli 0.2) ~prng:(Prng.create 7) ~skip_bytes:21
      in
      for _ = 1 to 2000 do
        List.iter
          (fun (m, _) -> Msg.destroy m)
          (Faults.feed t ~now:0 ~on_event:(fun _ -> ()) (Msg.create pool 100))
      done;
      let rate = float_of_int (Faults.dropped t) /. 2000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "loss rate %.3f near 0.2" rate)
        true
        (rate > 0.1 && rate < 0.3))

(* Corruption must damage only the wire copy: a message sharing MNodes
   with the fed frame (the retransmission-queue situation) keeps its
   bytes. *)
let test_corrupt_spares_shared_nodes () =
  let p = plat () in
  let pool = Mpool.create p in
  let skip = 8 in
  in_sim p (fun () ->
      let t =
        Faults.instantiate
          (Faults.plan [ Faults.Corrupt { p = 1.0 } ])
          ~prng:(Prng.create 5) ~skip_bytes:skip
      in
      let original = Msg.create pool 64 in
      Msg.fill_pattern original ~off:0 ~len:64 ~stream_off:0;
      let before = Msg.to_string original in
      let flips = ref [] in
      let out =
        Faults.feed t ~now:0
          ~on_event:(fun e ->
            match e with Faults.Ev_corrupt { off; bit } -> flips := (off, bit) :: !flips | _ -> ())
          (Msg.dup original)
      in
      Alcotest.(check int) "one frame out" 1 (List.length out);
      Alcotest.(check int) "one flip" 1 (List.length !flips);
      let off, bit = List.hd !flips in
      Alcotest.(check bool) "flip past skip_bytes" true (off >= skip && off < 64);
      let wire = Msg.to_string (fst (List.hd out)) in
      Alcotest.(check string) "shared original untouched" before (Msg.to_string original);
      Alcotest.(check bool) "wire copy damaged" true (wire <> before);
      Alcotest.(check int) "damaged at the reported byte"
        (Char.code before.[off] lxor (1 lsl bit))
        (Char.code wire.[off]);
      List.iter (fun (m, _) -> Msg.destroy m) out;
      Msg.destroy original)

let test_duplicate_and_delays () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let t =
        Faults.instantiate
          (Faults.plan
             [
               Faults.Duplicate { p = 1.0 };
               Faults.Reorder { p = 1.0; hold_ns = 500 };
               Faults.Jitter { p = 1.0; spike_ns = 100 };
             ])
          ~prng:(Prng.create 9) ~skip_bytes:0
      in
      let out = Faults.feed t ~now:0 ~on_event:(fun _ -> ()) (Msg.create pool 50) in
      Alcotest.(check int) "original + one copy" 2 (List.length out);
      List.iter
        (fun (m, extra) ->
          Alcotest.(check bool)
            (Printf.sprintf "hold+jitter delay (%d)" extra)
            true
            (extra >= 500 && extra < 700);
          Msg.destroy m)
        out;
      Alcotest.(check int) "duplicated counter" 1 (Faults.duplicated t);
      Alcotest.(check int) "reordered counter (both copies)" 2 (Faults.reordered t))

let test_blackout_window () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let t =
        Faults.instantiate
          (Faults.plan
             [
               Faults.Blackout
                 { start_ns = ms 10.0; duration_ns = ms 5.0; period_ns = ms 100.0 };
             ])
          ~prng:(Prng.create 3) ~skip_bytes:0
      in
      let fate now =
        match Faults.feed t ~now ~on_event:(fun _ -> ()) (Msg.create pool 10) with
        | [] -> `Dropped
        | out ->
          List.iter (fun (m, _) -> Msg.destroy m) out;
          `Passed
      in
      Alcotest.(check bool) "before window" true (fate 0 = `Passed);
      Alcotest.(check bool) "inside window" true (fate (ms 12.0) = `Dropped);
      Alcotest.(check bool) "after window" true (fate (ms 16.0) = `Passed);
      Alcotest.(check bool) "next period" true (fate (ms 112.0) = `Dropped);
      Alcotest.(check int) "two blackout drops" 2 (Faults.dropped_blackout t))

let test_wan_rtt_per_flow () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let t =
        Faults.instantiate
          (Faults.plan [ Faults.Wan_rtt { base_ns = 1000; spread_ns = 500 } ])
          ~prng:(Prng.create 11) ~skip_bytes:0
      in
      (* A minimal unfragmented "IP" frame: proto, addresses and ports at
         their real offsets, everything else zero. *)
      let frame ~src ~sport =
        let m = Msg.create pool 40 in
        for i = 0 to 39 do
          Msg.set_u8 m i 0
        done;
        Msg.set_u8 m 9 6;
        Msg.set_u8 m 12 src;
        Msg.set_u8 m 16 99;
        Msg.set_u8 m 20 sport;
        m
      in
      let delay_of ~src ~sport =
        match Faults.feed t ~now:0 ~on_event:(fun _ -> ()) (frame ~src ~sport) with
        | [ (m, d) ] ->
          Msg.destroy m;
          d
        | _ -> Alcotest.fail "wan stage must pass exactly one frame"
      in
      let d1 = delay_of ~src:1 ~sport:10 in
      (* Same flow again, later: the draw is stable for the flow's life. *)
      let d1' = delay_of ~src:1 ~sport:10 in
      Alcotest.(check int) "same flow, same stretch" d1 d1';
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "stretch in [base, base+spread) (%d)" d)
            true
            (d >= 1000 && d < 1500))
        [ d1 ];
      (* Different flows draw different path lengths (a distribution, not
         one number).  Collect several and demand spread. *)
      let draws =
        List.map
          (fun (src, sport) -> delay_of ~src ~sport)
          [ (1, 10); (2, 10); (3, 10); (1, 11); (4, 20); (5, 30) ]
      in
      let distinct = List.sort_uniq compare draws in
      Alcotest.(check bool)
        (Printf.sprintf "flows spread across the RTT distribution (%d distinct)"
           (List.length distinct))
        true
        (List.length distinct >= 3);
      Alcotest.(check int) "all stretches counted" 8 (Faults.wan_stretched t))

(* ------------------------------------------------------------------ *)
(* Recovery oracle: a seeded defect must produce findings               *)
(* ------------------------------------------------------------------ *)

let clean_stream () =
  let d = Recovery.digest "hello world" in
  {
    Recovery.label = "tcp";
    sent_bytes = 11;
    received_bytes = 11;
    sent_digest = d;
    received_digest = d;
    established = true;
    drained = true;
    rexmits = 0;
  }

let obs ?(streams = [ clean_stream () ]) ?corruption ?udp () =
  { Recovery.run = "test"; streams; corruption; udp }

let test_oracle_clean () =
  let findings =
    Recovery.check
      (obs
         ~corruption:{ Recovery.injected = 3; caught = 3 }
         ~udp:
           {
             Recovery.injected = 10;
             duplicated = 1;
             delivered = 8;
             dropped_link = 2;
             dropped_proto = 1;
             dropped_pressure = 0;
           }
         ())
  in
  Alcotest.(check int) "no findings" 0 (List.length findings)

let test_oracle_catches_digest_mismatch () =
  let s = { (clean_stream ()) with Recovery.received_digest = Recovery.digest "hello worle" } in
  let findings = Recovery.check (obs ~streams:[ s ] ()) in
  Alcotest.(check bool) "digest finding" true
    (List.exists (fun f -> f.Finding.severity = Finding.Error) findings)

let test_oracle_catches_silent_corruption () =
  let findings =
    Recovery.check (obs ~corruption:{ Recovery.injected = 5; caught = 4 } ())
  in
  Alcotest.(check bool) "silent-corruption finding" true (findings <> [])

let test_oracle_catches_udp_imbalance () =
  let findings =
    Recovery.check
      (obs
         ~udp:
           {
             Recovery.injected = 10;
             duplicated = 0;
             delivered = 8;
             dropped_link = 1;
             dropped_proto = 0;
             dropped_pressure = 0;
           }
         ())
  in
  Alcotest.(check bool) "accounting finding" true (findings <> [])

let test_oracle_catches_wedged_stream () =
  let s = { (clean_stream ()) with Recovery.drained = false; received_bytes = 4 } in
  let findings = Recovery.check (obs ~streams:[ s ] ()) in
  Alcotest.(check bool) "liveness finding" true (findings <> [])

(* ------------------------------------------------------------------ *)
(* End-to-end chaos cells                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_builtins_recover () =
  List.iter
    (fun (name, plan) ->
      let o = Chaos.run_cell ~bytes:60_000 ~datagrams:300 ~plan ~disc:Lock.Fifo () in
      if not (Chaos.passed o) then
        Alcotest.failf "plan %s failed the oracle:\n%s\n%s" name (Chaos.to_line o)
          (String.concat "\n" (List.map Finding.to_string o.Chaos.findings)))
    Faults.builtin

let test_chaos_cell_deterministic () =
  let plan = Option.get (Faults.find "chaos") in
  let line () =
    Chaos.to_line (Chaos.run_cell ~bytes:60_000 ~datagrams:300 ~plan ~disc:Lock.Unfair ())
  in
  Alcotest.(check string) "same cell twice" (line ()) (line ())

(* The TCP coalescing fast paths (checksum-sum memo, header-only ACK
   emit) are host-cost-only: with the memo toggled off, every cell —
   stream digest, retransmit count, fault accounting, findings — must
   come out byte-identical under fault plans that force retransmission,
   reordering and corruption rejection.  Same for the other two host
   fast paths (batched dispatch, buffer arena), checked all-off at once
   as the worst-case A/B leg. *)
let test_chaos_coalescing_toggle_identical () =
  let cell plan disc =
    Chaos.to_line (Chaos.run_cell ~bytes:60_000 ~datagrams:300 ~plan ~disc ())
  in
  let plans = [ "chaos"; "blackout"; "corrupt"; "reorder" ] in
  let with_toggles ~coalesce ~batch ~arena f =
    let c0 = Mpool.sum_cache_enabled ()
    and b0 = Sim.batching_enabled ()
    and a0 = Mpool.arena_enabled () in
    Mpool.set_sum_cache coalesce;
    Sim.set_batching batch;
    Mpool.set_arena arena;
    Fun.protect
      ~finally:(fun () ->
        Mpool.set_sum_cache c0;
        Sim.set_batching b0;
        Mpool.set_arena a0)
      f
  in
  List.iter
    (fun name ->
      let plan = Option.get (Faults.find name) in
      List.iter
        (fun disc ->
          let fast =
            with_toggles ~coalesce:true ~batch:true ~arena:true (fun () -> cell plan disc)
          in
          let no_coalesce =
            with_toggles ~coalesce:false ~batch:true ~arena:true (fun () -> cell plan disc)
          in
          let all_off =
            with_toggles ~coalesce:false ~batch:false ~arena:false (fun () ->
                cell plan disc)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: coalescing off" name (Chaos.disc_label disc))
            fast no_coalesce;
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: batching+arena+coalescing off" name
               (Chaos.disc_label disc))
            fast all_off)
        [ Lock.Unfair; Lock.Fifo ])
    plans

(* Random small plans: whatever the faults do, TCP must deliver the exact
   byte stream and every UDP datagram must be accounted for. *)
let prop_random_plans_recover =
  let open QCheck in
  (* Stages that destroy frames outright (loss, corruption the checksum
     will reject).  At most one per plan: stacking them multiplies the
     per-frame kill rate, and past ~15% sustained loss the faithful Net/2
     backoff (Karn resets the shift only on a timed, retransmission-free
     ack, so a loss in every window ratchets it to the 64 s cap) needs
     more than the cell's 300 s horizon to drain — a stall, not a
     recovery bug, as the ext-faults figure documents at 3% Bernoulli. *)
  let lossy_gen =
    Gen.oneof
      [
        Gen.map (fun p -> Faults.Bernoulli_loss { p }) (Gen.float_bound_inclusive 0.1);
        Gen.map2
          (fun p_gb p_bg ->
            Faults.Gilbert_elliott { p_gb; p_bg = 0.2 +. p_bg; loss_good = 0.0; loss_bad = 0.4 })
          (Gen.float_bound_inclusive 0.05)
          (Gen.float_bound_inclusive 0.4);
        Gen.map (fun p -> Faults.Corrupt { p }) (Gen.float_bound_inclusive 0.1);
      ]
  in
  (* Stages every frame survives (possibly late, doubled or misordered). *)
  let benign_gen =
    Gen.oneof
      [
        Gen.map (fun p -> Faults.Duplicate { p }) (Gen.float_bound_inclusive 0.15);
        Gen.map2
          (fun p hold -> Faults.Reorder { p; hold_ns = 1 + hold })
          (Gen.float_bound_inclusive 0.2)
          (Gen.int_bound (us 800.0));
        Gen.map2
          (fun p spike -> Faults.Jitter { p; spike_ns = 1 + spike })
          (Gen.float_bound_inclusive 0.2)
          (Gen.int_bound (ms 1.0));
        Gen.map2
          (fun start dur ->
            Faults.Blackout { start_ns = start; duration_ns = 1 + dur; period_ns = 0 })
          (Gen.int_bound (ms 40.0))
          (Gen.int_bound (ms 15.0));
      ]
  in
  let stage_str = function
    | Faults.Bernoulli_loss { p } -> Printf.sprintf "loss(%.3f)" p
    | Faults.Gilbert_elliott { p_gb; p_bg; loss_bad; _ } ->
      Printf.sprintf "ge(%.3f,%.3f,bad=%.2f)" p_gb p_bg loss_bad
    | Faults.Duplicate { p } -> Printf.sprintf "dup(%.3f)" p
    | Faults.Reorder { p; hold_ns } -> Printf.sprintf "reorder(%.3f,%dns)" p hold_ns
    | Faults.Corrupt { p } -> Printf.sprintf "corrupt(%.3f)" p
    | Faults.Jitter { p; spike_ns } -> Printf.sprintf "jitter(%.3f,%dns)" p spike_ns
    | Faults.Wan_rtt { base_ns; spread_ns } ->
      Printf.sprintf "wan(%dns,%dns)" base_ns spread_ns
    | Faults.Blackout { start_ns; duration_ns; period_ns } ->
      Printf.sprintf "blackout(%d,%d,%d)" start_ns duration_ns period_ns
  in
  let plan_gen =
    Gen.(
      opt lossy_gen >>= fun lossy ->
      map
        (fun benign -> match lossy with None -> benign | Some s -> s :: benign)
        (list_size (1 -- 2) benign_gen))
  in
  let arb =
    make
      ~print:(fun stages -> String.concat " | " (List.map stage_str stages))
      plan_gen
  in
  Test.make ~name:"random fault plans recover exactly" ~count:8 arb (fun stages ->
      let plan = Faults.plan ~name:"random" stages in
      let o = Chaos.run_cell ~bytes:30_000 ~datagrams:200 ~plan ~disc:Lock.Unfair () in
      if not (Chaos.passed o) then
        Test.fail_reportf "oracle findings:\n%s\n%s" (Chaos.to_line o)
          (String.concat "\n" (List.map Finding.to_string o.Chaos.findings));
      true)

(* ------------------------------------------------------------------ *)
(* Mpool exhaustion under a blackout-induced retransmission pile-up     *)
(* ------------------------------------------------------------------ *)

let test_mpool_exhaustion_typed () =
  let p = plat () in
  let pool = Mpool.create ~capacity:4 p in
  in_sim p (fun () ->
      Alcotest.(check int) "capacity recorded" 4 (Mpool.pool_capacity pool);
      let nodes = List.init 4 (fun _ -> Mpool.alloc pool 64) in
      Alcotest.check_raises "fifth alloc refused"
        (Mpool.Out_of_mnodes { requested = 64; live = 4; capacity = 4 })
        (fun () -> ignore (Mpool.alloc pool 64));
      Mpool.decref pool (List.hd nodes);
      let again = Mpool.alloc pool 64 in
      Alcotest.(check int) "back at capacity" 4 (Mpool.live_nodes pool);
      List.iter (fun n -> Mpool.decref pool n) (again :: List.tl nodes))

(* A paced sender over a 40 Mbit/s link keeps ~13 nodes live in steady
   state; a 40 ms blackout stalls the ACK clock while the application
   keeps writing, so unacknowledged data would pile up in the send
   buffer without bound (high-water ~170 nodes against a 60-node pool).
   Graceful degradation is what keeps the cell alive: the pool's soft
   watermark (30 nodes) parks the application inside [Tcp.send] until
   the post-blackout retransmission drains the buffer, so the run must
   complete byte-exactly instead of dying with [Out_of_mnodes]. *)
let blackout_pileup ~plan =
  let p = Platform.create ~seed:1 Arch.challenge_100 in
  let cfg = { Tcp.default_config with Tcp.mss = 1024 } in
  let a =
    Stack.create p ~tcp_config:cfg ~pool_capacity:60 ~local_addr:0x0a000001 ()
  in
  let b = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let _link =
    Link.connect p ~bandwidth_mbps:40.0 ~latency:(us 200.0) ~plan ~a ~b ()
  in
  let got_eof = ref false in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:0 ~name:"srv" (fun () ->
        let lst = Socket.Listener.listen p b.Stack.pool b.Stack.tcp ~port:80 in
        let sock = Socket.Listener.accept lst in
        let rec drain () =
          match Socket.recv_string sock with
          | Some _ -> drain ()
          | None -> got_eof := true
        in
        drain ())
  in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:1 ~name:"cli" (fun () ->
        Sim.delay p.Platform.sim (ms 1.0);
        let sock =
          Socket.connect p a.Stack.pool a.Stack.tcp ~local_port:5000
            ~remote_addr:0x0a000002 ~remote_port:80
        in
        for _ = 1 to 200 do
          Socket.send_string sock (String.make 1000 'x');
          Sim.delay p.Platform.sim (us 500.0)
        done;
        Socket.close sock)
  in
  match Sim.run ~until:(Units.sec 300.0) p.Platform.sim with
  | () ->
    if !got_eof then `Completed (Mpool.pressure_entries a.Stack.pool)
    else `Wedged
  | exception Mpool.Out_of_mnodes { live; capacity; _ } -> `Exhausted (live, capacity)

let test_mpool_survives_clean_run () =
  match blackout_pileup ~plan:Faults.none with
  | `Completed _ -> ()
  | `Wedged -> Alcotest.fail "clean run wedged"
  | `Exhausted _ -> Alcotest.fail "clean run exhausted the pool"

let test_mpool_degrades_under_blackout () =
  let plan = Option.get (Faults.find "blackout") in
  match blackout_pileup ~plan with
  | `Completed pressure_entries ->
    (* Completing is not enough: the admission path must actually have
       engaged, or the cell just never reached the watermark. *)
    Alcotest.(check bool)
      "pool pressure engaged during the blackout" true (pressure_entries > 0)
  | `Exhausted (live, capacity) ->
    Alcotest.failf "escaped Out_of_mnodes (%d live of %d): degradation failed" live
      capacity
  | `Wedged -> Alcotest.fail "run wedged: blocked sender was never resumed"

let suites =
  [
    ( "faults.pipeline",
      [
        Alcotest.test_case "builtin lookup" `Quick test_builtin_lookup;
        Alcotest.test_case "feed is deterministic" `Quick test_feed_deterministic;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "corrupt spares shared nodes" `Quick
          test_corrupt_spares_shared_nodes;
        Alcotest.test_case "duplicate and delays" `Quick test_duplicate_and_delays;
        Alcotest.test_case "blackout window" `Quick test_blackout_window;
        Alcotest.test_case "wan rtt per-flow stretch" `Quick test_wan_rtt_per_flow;
      ] );
    ( "faults.oracle",
      [
        Alcotest.test_case "clean obs passes" `Quick test_oracle_clean;
        Alcotest.test_case "catches digest mismatch" `Quick
          test_oracle_catches_digest_mismatch;
        Alcotest.test_case "catches silent corruption" `Quick
          test_oracle_catches_silent_corruption;
        Alcotest.test_case "catches udp imbalance" `Quick test_oracle_catches_udp_imbalance;
        Alcotest.test_case "catches wedged stream" `Quick test_oracle_catches_wedged_stream;
      ] );
    ( "faults.chaos",
      [
        Alcotest.test_case "builtin plans recover" `Quick test_chaos_builtins_recover;
        Alcotest.test_case "cells are deterministic" `Quick test_chaos_cell_deterministic;
        Alcotest.test_case "coalescing/batching/arena toggles change nothing" `Quick
          test_chaos_coalescing_toggle_identical;
        Qrand.to_alcotest prop_random_plans_recover;
      ] );
    ( "faults.mpool",
      [
        Alcotest.test_case "typed exhaustion" `Quick test_mpool_exhaustion_typed;
        Alcotest.test_case "survives clean paced run" `Quick test_mpool_survives_clean_run;
        Alcotest.test_case "degrades gracefully under blackout pile-up" `Quick
          test_mpool_degrades_under_blackout;
      ] );
  ]
