(* One pinned RNG state per property test, so the suite samples the same
   cases on every run: adding or reordering a property elsewhere must not
   change what later suites draw (the shared self-initialised state did
   exactly that, and one reshuffle handed the chaos property a plan whose
   stacked loss stages no horizon could absorb).  QCHECK_SEED still
   overrides for exploration, matching the runner's documented knob. *)
let state () =
  let seed =
    match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
    | Some s -> s
    | None -> 0x5eedca5e
  in
  Random.State.make [| seed |]

(* Drop-in for [QCheck_alcotest.to_alcotest], deterministically seeded. *)
let to_alcotest test = QCheck_alcotest.to_alcotest ~rand:(state ()) test
