open Pnp_engine
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let plat ?(lock_disc = Lock.Unfair) () = Platform.create ~lock_disc Arch.challenge_100

let in_sim ?(horizon = Pnp_util.Units.sec 30.0) plat body =
  let result = ref None in
  let _ = Sim.spawn plat.Platform.sim ~name:"test" (fun () -> result := Some (body ())) in
  Sim.run ~until:horizon plat.Platform.sim;
  match !result with Some r -> r | None -> Alcotest.fail "simulated thread did not finish"

(* ------------------------------------------------------------------ *)
(* Internet checksum                                                   *)
(* ------------------------------------------------------------------ *)

let test_cksum_known_vector () =
  (* Classic example: the IP-style words 0x0001 0xf203 0xf4f5 0xf6f7 *)
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let m = Msg.create pool 8 in
      List.iteri (fun i w -> Msg.set_u16 m (2 * i) w) [ 0x0001; 0xf203; 0xf4f5; 0xf6f7 ];
      let ck = Inet_cksum.finish (Inet_cksum.sum_slices m) in
      Alcotest.(check int) "rfc1071 example" 0x220d ck;
      Msg.destroy m)

let test_cksum_odd_length () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let m = Msg.of_string pool "abc" in
      (* 0x6162 + 0x6300 = 0xc462 -> complement 0x3b9d *)
      Alcotest.(check int) "odd pad" 0x3b9d (Inet_cksum.finish (Inet_cksum.sum_slices m));
      Msg.destroy m)

let test_cksum_split_equals_whole () =
  (* Sum over a multi-part message equals sum over the flat bytes. *)
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let m = Msg.of_string pool "the quick brown fox" in
      Msg.push m 3;
      Msg.set_u8 m 0 1;
      Msg.set_u8 m 1 2;
      Msg.set_u8 m 2 3;
      let flat = Msg.of_string pool (Msg.to_string m) in
      Alcotest.(check int) "split = flat" (Inet_cksum.sum_slices flat) (Inet_cksum.sum_slices m);
      Msg.destroy m;
      Msg.destroy flat)

let test_cksum_odd_middle_slice () =
  (* An interior slice of odd length flips byte parity for everything after
     it; the summed result must still match the flat byte string. *)
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let m = Msg.of_string pool "ab" in
      let mid = Msg.of_string pool "cde" in
      let tail = Msg.of_string pool "fghi" in
      Msg.append m mid;
      Msg.append m tail;
      Alcotest.(check int) "length" 9 (Msg.length m);
      let flat = Msg.of_string pool "abcdefghi" in
      Alcotest.(check int) "odd middle slice = flat"
        (Inet_cksum.sum_slices flat) (Inet_cksum.sum_slices m);
      Msg.destroy m;
      Msg.destroy mid;
      Msg.destroy tail;
      Msg.destroy flat)

(* The word-at-a-time [sum_bytes] against the byte-wise oracle it
   replaced: every offset parity and every tail length, including
   all-zero and all-ones buffers (the 0 vs 0xffff representatives of the
   same one's-complement class). *)
let test_cksum_word_vs_bytewise_exhaustive () =
  let check b off len =
    Alcotest.(check int)
      (Printf.sprintf "off=%d len=%d" off len)
      (Inet_cksum.sum_bytes_bytewise b off len)
      (Inet_cksum.sum_bytes b off len)
  in
  let mixed = Bytes.init 96 (fun i -> Char.chr ((i * 131 + 17) land 0xff)) in
  let zeros = Bytes.make 96 '\000' in
  let ones = Bytes.make 96 '\xff' in
  List.iter
    (fun b ->
      for off = 0 to 9 do
        for len = 0 to Bytes.length b - off do
          check b off len
        done
      done)
    [ mixed; zeros; ones ]

let prop_cksum_word_vs_bytewise =
  QCheck.Test.make ~name:"sum_bytes agrees with the byte-wise oracle" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 90) (0 -- 255)) (0 -- 9))
    (fun (payload, off) ->
      let len = List.length payload in
      let b = Bytes.make (off + len + 3) '\xa5' in
      List.iteri (fun i v -> Bytes.set b (off + i) (Char.chr v)) payload;
      Inet_cksum.sum_bytes b off len = Inet_cksum.sum_bytes_bytewise b off len)

let prop_cksum_verifies =
  QCheck.Test.make ~name:"stored checksum verifies; corruption detected" ~count:60
    QCheck.(string_of_size Gen.(2 -- 300))
    (fun payload ->
      let p = plat () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let m = Msg.of_string pool payload in
          Tcp_wire.encode m
            { Tcp_wire.sport = 1; dport = 2; seq = 3; ack = 4;
              flags = Tcp_wire.flag_ack; win = 5; cksum = 0 };
          Tcp_wire.store_checksum_free ~src:0x0a000001 ~dst:0x0a000002 m;
          let ok = Tcp_wire.verify_checksum p ~src:0x0a000001 ~dst:0x0a000002 m in
          (* flip one payload byte *)
          let off = Tcp_wire.header_bytes in
          Msg.set_u8 m off ((Msg.get_u8 m off + 1) land 0xff);
          let bad = Tcp_wire.verify_checksum p ~src:0x0a000001 ~dst:0x0a000002 m in
          Msg.destroy m;
          ok && not bad))

let test_cksum_incremental_matches_full () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let payload = Msg.of_string pool "incremental checksum payload, odd!" in
      let payload_sum = Inet_cksum.sum_slices payload in
      let a = Msg.dup payload in
      let hdr =
        { Tcp_wire.sport = 9; dport = 10; seq = 11; ack = 12;
          flags = Tcp_wire.flag_ack; win = 13; cksum = 0 }
      in
      Tcp_wire.encode a hdr;
      Tcp_wire.store_checksum_free ~src:1 ~dst:2 a;
      let b = Msg.dup payload in
      Tcp_wire.encode b hdr;
      Tcp_wire.store_checksum_incremental ~src:1 ~dst:2 ~payload_sum b;
      Alcotest.(check int) "same checksum" (Msg.get_u16 a 18) (Msg.get_u16 b 18);
      Msg.destroy a;
      Msg.destroy b;
      Msg.destroy payload)

(* ------------------------------------------------------------------ *)
(* Sequence arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let test_seq_wraparound () =
  let near_top = 0xffffff00 in
  Alcotest.(check int) "add wraps" 0x60 (Tcp_seq.add near_top 0x160);
  Alcotest.(check bool) "lt across wrap" true (Tcp_seq.lt near_top (Tcp_seq.add near_top 10));
  Alcotest.(check bool) "gt across wrap" true (Tcp_seq.gt (Tcp_seq.add near_top 0x200) near_top);
  Alcotest.(check int) "diff across wrap" 0x200 (Tcp_seq.diff (Tcp_seq.add near_top 0x200) near_top)

let prop_seq_diff_add =
  QCheck.Test.make ~name:"seq: diff (add a n) a = n" ~count:500
    QCheck.(pair (int_bound 0xffffff) (int_bound 0xffff))
    (fun (a, n) ->
      let a = Tcp_seq.mask (a * 257) in
      Tcp_seq.diff (Tcp_seq.add a n) a = n)

(* ------------------------------------------------------------------ *)
(* Sockbuf                                                             *)
(* ------------------------------------------------------------------ *)

let test_sockbuf_basic () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let sb = Sockbuf.create pool ~max:100 in
      Sockbuf.append sb (Msg.of_string pool "hello ");
      Sockbuf.append sb (Msg.of_string pool "world");
      Alcotest.(check int) "cc" 11 (Sockbuf.cc sb);
      Alcotest.(check int) "space" 89 (Sockbuf.space sb);
      let v = Sockbuf.peek sb ~off:3 ~len:5 in
      Alcotest.(check string) "peek across messages" "lo wo" (Msg.to_string v);
      Msg.destroy v;
      Sockbuf.drop sb 6;
      Alcotest.(check int) "cc after drop" 5 (Sockbuf.cc sb);
      let v2 = Sockbuf.peek sb ~off:0 ~len:5 in
      Alcotest.(check string) "front after drop" "world" (Msg.to_string v2);
      Msg.destroy v2;
      Sockbuf.clear sb;
      Alcotest.(check int) "cleared" 0 (Sockbuf.cc sb);
      Alcotest.(check int) "no leaks" 0 (Mpool.live_nodes pool))

let test_sockbuf_overflow_rejected () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let sb = Sockbuf.create pool ~max:4 in
      match Sockbuf.append sb (Msg.of_string pool "12345") with
      | () -> Alcotest.fail "expected overflow rejection"
      | exception Invalid_argument _ -> ())

let prop_sockbuf_stream =
  QCheck.Test.make ~name:"sockbuf preserves the byte stream" ~count:60
    QCheck.(list_of_size Gen.(1 -- 10) (string_of_size Gen.(1 -- 40)))
    (fun chunks ->
      let p = plat () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let sb = Sockbuf.create pool ~max:100_000 in
          List.iter (fun c -> Sockbuf.append sb (Msg.of_string pool c)) chunks;
          let whole = String.concat "" chunks in
          let v = Sockbuf.peek sb ~off:0 ~len:(String.length whole) in
          let got = Msg.to_string v in
          Msg.destroy v;
          (* Drop a prefix and re-check. *)
          let d = String.length whole / 2 in
          Sockbuf.drop sb d;
          let rest_len = String.length whole - d in
          let v2 = Sockbuf.peek sb ~off:0 ~len:rest_len in
          let got2 = Msg.to_string v2 in
          Msg.destroy v2;
          got = whole && got2 = String.sub whole d rest_len))

(* ------------------------------------------------------------------ *)
(* Tcp_wire codec                                                      *)
(* ------------------------------------------------------------------ *)

let prop_tcp_wire_roundtrip =
  QCheck.Test.make ~name:"tcp header encode/decode roundtrip" ~count:200
    QCheck.(quad (int_bound 0xffff) (int_bound 0xffff) (int_bound 0xfffffff) (int_bound 31))
    (fun (sport, dport, seq, flagbits) ->
      let p = plat () in
      let pool = Mpool.create p in
      in_sim p (fun () ->
          let flags =
            {
              Tcp_wire.fin = flagbits land 1 <> 0;
              syn = flagbits land 2 <> 0;
              rst = flagbits land 4 <> 0;
              psh = flagbits land 8 <> 0;
              ack = flagbits land 16 <> 0;
            }
          in
          let hdr =
            { Tcp_wire.sport; dport; seq; ack = Tcp_seq.mask (seq * 3); flags;
              win = 123456; cksum = 0 }
          in
          let m = Msg.of_string pool "payload" in
          Tcp_wire.encode m hdr;
          let got = Option.get (Tcp_wire.decode m) in
          Tcp_wire.strip m;
          let ok = got = hdr && Msg.to_string m = "payload" in
          Msg.destroy m;
          ok))

(* ------------------------------------------------------------------ *)
(* FDDI + IP (loopback wiring)                                         *)
(* ------------------------------------------------------------------ *)

let loopback_stack ?(udp_checksum = true) p =
  let stack = Stack.create p ~udp_checksum ~local_addr:0x0a000001 () in
  (* wire transmit straight back into input: talk to ourselves *)
  Fddi.set_transmit stack.Stack.fddi (fun frame -> Fddi.input stack.Stack.fddi frame);
  stack

let test_fddi_roundtrip () =
  let p = plat () in
  let stack = loopback_stack p in
  let got = ref [] in
  in_sim p (fun () ->
      Fddi.register stack.Stack.fddi ~ethertype:0x9999 (fun msg ->
          got := Msg.to_string msg :: !got;
          Msg.destroy msg);
      let m = Msg.of_string stack.Stack.pool "frame payload" in
      Fddi.output stack.Stack.fddi ~ethertype:0x9999 ~dst_mac:0x0a000001 m;
      Alcotest.(check (list string)) "delivered" [ "frame payload" ] !got;
      Alcotest.(check int) "counted out" 1 (Fddi.frames_out stack.Stack.fddi))

let test_fddi_unknown_type_dropped () =
  let p = plat () in
  let stack = loopback_stack p in
  in_sim p (fun () ->
      let m = Msg.of_string stack.Stack.pool "payload" in
      Fddi.output stack.Stack.fddi ~ethertype:0x7777 ~dst_mac:0x0a000001 m;
      Alcotest.(check int) "dropped" 1 (Fddi.frames_dropped stack.Stack.fddi))

let test_fddi_mtu_enforced () =
  let p = plat () in
  let stack = loopback_stack p in
  in_sim p (fun () ->
      let m = Msg.create stack.Stack.pool (Fddi.mtu + 1) in
      match Fddi.output stack.Stack.fddi ~ethertype:1 ~dst_mac:2 m with
      | () -> Alcotest.fail "expected MTU rejection"
      | exception Invalid_argument _ -> Msg.destroy m)

let test_ip_roundtrip_small () =
  let p = plat () in
  let stack = loopback_stack p in
  let got = ref [] in
  in_sim p (fun () ->
      Ip.register stack.Stack.ip ~proto:99 (fun ~src ~dst msg ->
          Alcotest.(check int) "src" 0x0a000001 src;
          Alcotest.(check int) "dst" 0x0a000001 dst;
          got := Msg.to_string msg :: !got;
          Msg.destroy msg);
      let m = Msg.of_string stack.Stack.pool "datagram" in
      Ip.output stack.Stack.ip ~proto:99 ~dst:0x0a000001 m;
      Alcotest.(check (list string)) "delivered" [ "datagram" ] !got;
      Alcotest.(check int) "no fragmentation" 0 (Ip.fragments_out stack.Stack.ip))

let test_ip_fragmentation_roundtrip () =
  let p = plat () in
  let stack = loopback_stack p in
  let got = ref [] in
  in_sim p (fun () ->
      Ip.register stack.Stack.ip ~proto:99 (fun ~src:_ ~dst:_ msg ->
          got := Msg.to_string msg :: !got;
          Msg.destroy msg);
      (* 3x the per-fragment payload: must split and reassemble *)
      let n = 10_000 in
      let m = Msg.create stack.Stack.pool n in
      Msg.fill_pattern m ~off:0 ~len:n ~stream_off:7;
      let reference = Msg.to_string m in
      Ip.output stack.Stack.ip ~proto:99 ~dst:0x0a000001 m;
      Alcotest.(check bool) "fragmented" true (Ip.fragments_out stack.Stack.ip >= 3);
      Alcotest.(check int) "one reassembly" 1 (Ip.reassemblies stack.Stack.ip);
      match !got with
      | [ s ] -> Alcotest.(check bool) "bytes identical" true (String.equal s reference)
      | l -> Alcotest.failf "expected 1 datagram, got %d" (List.length l))

let test_ip_bad_header_checksum_dropped () =
  let p = plat () in
  let stack = loopback_stack p in
  let got = ref 0 in
  in_sim p (fun () ->
      Ip.register stack.Stack.ip ~proto:99 (fun ~src:_ ~dst:_ msg ->
          incr got;
          Msg.destroy msg);
      let m = Msg.of_string stack.Stack.pool "x" in
      Ip.encap m ~src:1 ~dst:2 ~proto:99 ~id:5;
      (* corrupt the header *)
      Msg.set_u8 m 8 ((Msg.get_u8 m 8 + 1) land 0xff);
      Fddi.encap m ~src_mac:1 ~dst_mac:2 ~ethertype:Ip.ethertype;
      Fddi.input stack.Stack.fddi m;
      Alcotest.(check int) "not delivered" 0 !got;
      Alcotest.(check bool) "counted dropped" true (Ip.datagrams_dropped stack.Stack.ip > 0))

(* ------------------------------------------------------------------ *)
(* UDP end-to-end (loopback)                                           *)
(* ------------------------------------------------------------------ *)

let test_udp_roundtrip cksum () =
  let p = plat () in
  let stack = loopback_stack ~udp_checksum:cksum p in
  let got = ref [] in
  in_sim p (fun () ->
      let recv sess_msg =
        got := Msg.to_string sess_msg :: !got;
        Msg.destroy sess_msg
      in
      let sess =
        Udp.open_session stack.Stack.udp ~local_port:7 ~remote_addr:0x0a000001
          ~remote_port:7 ~recv
      in
      Udp.send sess (Msg.of_string stack.Stack.pool "ping");
      Udp.send sess (Msg.of_string stack.Stack.pool "pong");
      Alcotest.(check (list string)) "delivered in order" [ "ping"; "pong" ] (List.rev !got);
      Alcotest.(check int) "no drops" 0 (Udp.datagrams_dropped stack.Stack.udp))

let test_udp_bad_checksum_dropped () =
  let p = plat () in
  let stack = loopback_stack ~udp_checksum:true p in
  let got = ref 0 in
  in_sim p (fun () ->
      let _sess =
        Udp.open_session stack.Stack.udp ~local_port:9 ~remote_addr:0x0a000001
          ~remote_port:9
          ~recv:(fun m -> incr got; Msg.destroy m)
      in
      (* Hand-build a datagram with a corrupted checksum. *)
      let m = Msg.of_string stack.Stack.pool "corrupt me" in
      Udp.encap_free m ~src:0x0a000001 ~dst:0x0a000001 ~sport:9 ~dport:9 ~checksum:true;
      Msg.set_u16 m 6 (Msg.get_u16 m 6 lxor 0x5555);
      Ip.encap m ~src:0x0a000001 ~dst:0x0a000001 ~proto:Udp.protocol_number ~id:1;
      Fddi.encap m ~src_mac:1 ~dst_mac:1 ~ethertype:Ip.ethertype;
      Fddi.input stack.Stack.fddi m;
      Alcotest.(check int) "not delivered" 0 !got;
      Alcotest.(check int) "checksum failure counted" 1
        (Udp.checksum_failures stack.Stack.udp))

let test_udp_unbound_port_dropped () =
  let p = plat () in
  let stack = loopback_stack p in
  in_sim p (fun () ->
      let m = Msg.of_string stack.Stack.pool "nobody home" in
      Udp.encap_free m ~src:0x0a000001 ~dst:0x0a000001 ~sport:5 ~dport:4242 ~checksum:true;
      Ip.encap m ~src:0x0a000001 ~dst:0x0a000001 ~proto:Udp.protocol_number ~id:1;
      Fddi.encap m ~src_mac:1 ~dst_mac:1 ~ethertype:Ip.ethertype;
      Fddi.input stack.Stack.fddi m;
      Alcotest.(check bool) "dropped" true (Udp.datagrams_dropped stack.Stack.udp > 0))

let test_udp_source_sink_drivers () =
  (* The receive-side driver injects template datagrams that the real UDP
     demultiplexes to the session. *)
  let p = plat () in
  let stack = Stack.create p ~udp_checksum:true ~local_addr:0x0a000002 () in
  let received = ref 0 and bytes = ref 0 in
  let src =
    Udp_source.attach stack ~peer_addr:0x0a000001 ~payload:1024 ~checksum:true
      ~ports:[ (2000, 4000) ] ()
  in
  in_sim p (fun () ->
      let _sess =
        Udp.open_session stack.Stack.udp ~local_port:4000 ~remote_addr:0x0a000001
          ~remote_port:2000
          ~recv:(fun m ->
            incr received;
            bytes := !bytes + Msg.length m;
            Alcotest.(check bool) "payload pattern intact" true
              (Msg.check_pattern m ~off:0 ~len:(Msg.length m) ~stream_off:0);
            Msg.destroy m)
      in
      for _ = 1 to 50 do
        Udp_source.next src ~stream:0
      done);
  Alcotest.(check int) "all delivered" 50 !received;
  Alcotest.(check int) "all bytes" (50 * 1024) !bytes;
  Alcotest.(check int) "injected counted" 50 (Udp_source.frames_injected src)

(* ------------------------------------------------------------------ *)
(* TCP end-to-end                                                      *)
(* ------------------------------------------------------------------ *)

let tcp_cfg ?(locking = Tcp.One) ?(checksum = true) ?(mss = 1024) () =
  { Tcp.default_config with locking; checksum; mss }

(* Send-side: a real TCP sender over the simulated receiver driver. *)
let send_side_env ?(locking = Tcp.One) ?(checksum = true) ?loss_rate () =
  let p = plat () in
  let stack =
    Stack.create p ~tcp_config:(tcp_cfg ~locking ~checksum ()) ~local_addr:0x0a000001 ()
  in
  let peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum
      ?loss_rate ()
  in
  (p, stack, peer)

let test_tcp_connect_establishes locking () =
  let p, stack, peer = send_side_env ~locking () in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      Alcotest.(check string) "established" "ESTABLISHED" (Tcp.state_name sess);
      Alcotest.(check bool) "peer saw handshake" true
        (Tcp_peer.stream_established peer ~port:5000))

let test_tcp_send_delivers locking () =
  let p, stack, peer = send_side_env ~locking () in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      for i = 0 to 9 do
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:(i * 1024);
        Tcp.send sess m
      done;
      (* Everything fits in the window, so it is all on the wire already. *)
      Alcotest.(check int) "driver consumed all bytes" (10 * 1024)
        (Tcp_peer.unique_bytes peer ~port:5000);
      let st = Tcp.stats sess in
      (* 12 = SYN + handshake ack + 10 data segments *)
      Alcotest.(check int) "segments out incl. handshake" 12 st.Tcp.segs_out;
      Alcotest.(check int) "driver saw 10 data segments" 10 (Tcp_peer.data_segments peer);
      Alcotest.(check bool) "acks came back" true (st.Tcp.acks_in > 0));
  ()

let test_tcp_send_acks_every_other () =
  let p, stack, peer = send_side_env () in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      for i = 0 to 19 do
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:(i * 1024);
        Tcp.send sess m
      done;
      ignore sess;
      (* 20 data segments: 1 immediate first-data ack + ~every other *)
      let acks = Tcp_peer.acks_sent peer in
      Alcotest.(check bool)
        (Printf.sprintf "ack count plausible (%d)" acks)
        true
        (acks >= 10 && acks <= 12))

let test_tcp_retransmission_on_loss () =
  let p, stack, peer = send_side_env ~loss_rate:0.2 () in
  in_sim ~horizon:(Pnp_util.Units.sec 90.0) p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      for i = 0 to 29 do
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:(i * 1024);
        Tcp.send sess m
      done;
      (* Let the retransmission machinery recover all the losses. *)
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 80.0);
      Alcotest.(check int) "all bytes eventually delivered" (30 * 1024)
        (Tcp_peer.unique_bytes peer ~port:5000);
      let st = Tcp.stats sess in
      Alcotest.(check bool) "retransmissions happened" true (st.Tcp.rexmits > 0);
      Alcotest.(check bool) "drops happened" true (Tcp_peer.segments_dropped peer > 0))

let test_tcp_zero_window_persist () =
  (* Close the peer's window mid-transfer: the sender must arm the persist
     timer, probe, and finish once the window reopens. *)
  let p, stack, peer = send_side_env () in
  in_sim ~horizon:(Pnp_util.Units.sec 60.0) p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      let send_one i =
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:(i * 1024);
        Tcp.send sess m
      in
      send_one 0;
      send_one 1;
      (* Shut the window; the sender learns via the next ack. *)
      Tcp_peer.set_window peer 0;
      send_one 2;
      send_one 3;
      (* Give the sender time to drain what the old window allowed and
         start probing. *)
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 20.0);
      let st = Tcp.stats sess in
      Alcotest.(check bool)
        (Printf.sprintf "persist probes fired (%d)" st.Tcp.persist_probes)
        true (st.Tcp.persist_probes >= 1);
      Alcotest.(check bool) "transfer stalled below total" true
        (Tcp_peer.unique_bytes peer ~port:5000 < 4 * 1024);
      (* Reopen; everything must complete. *)
      Tcp_peer.set_window peer (1 lsl 20);
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 20.0);
      Alcotest.(check int) "all bytes delivered after reopen" (4 * 1024)
        (Tcp_peer.unique_bytes peer ~port:5000))

let test_tcp_small_window_segments () =
  (* A window smaller than the MSS forces partial segments. *)
  let p = plat () in
  let stack =
    Stack.create p ~tcp_config:(tcp_cfg ~mss:4096 ()) ~local_addr:0x0a000001 ()
  in
  let peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:2048 ~checksum:true ()
  in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      let m = Msg.create stack.Stack.pool 4096 in
      Msg.fill_pattern m ~off:0 ~len:4096 ~stream_off:0;
      Tcp.send sess m;
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 5.0);
      Alcotest.(check int) "all bytes despite tiny window" 4096
        (Tcp_peer.unique_bytes peer ~port:5000);
      let st = Tcp.stats sess in
      Alcotest.(check bool) "needed more than one segment" true
        (Tcp_peer.data_segments peer >= 2);
      ignore st)

let test_tcp_close_handshake () =
  let p, stack, peer = send_side_env () in
  in_sim p (fun () ->
      let sess =
        Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
          ~remote_port:80
      in
      let m = Msg.create stack.Stack.pool 512 in
      Msg.fill_pattern m ~off:0 ~len:512 ~stream_off:0;
      Tcp.send sess m;
      Tcp.close sess;
      Sim.delay p.Platform.sim (Pnp_util.Units.sec 2.0);
      Alcotest.(check bool) "peer saw FIN" true (Tcp_peer.stream_closed peer ~port:5000);
      Alcotest.(check string) "reached TIME_WAIT" "TIME_WAIT" (Tcp.state_name sess))

(* Receive-side: the simulated sender driver against a real TCP receiver. *)
let recv_side_env ?(locking = Tcp.One) ?(checksum = true) ?(ticketing = false)
    ?(assume_in_order = false) ?(payload = 1024) ?(sequential = true) () =
  let p = plat () in
  let cfg =
    { (tcp_cfg ~locking ~checksum ~mss:payload ()) with
      Tcp.ticketing; assume_in_order }
  in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload ~checksum
      ~sequential_payload:sequential ~ports:[ (2000, 4000) ] ()
  in
  (p, stack, src)

let test_tcp_recv_in_order locking () =
  let p, stack, src = recv_side_env ~locking () in
  let bytes = ref 0 and chunks = ref 0 and next_off = ref 0 and in_order = ref true in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              let len = Msg.length m in
              if not (Msg.check_pattern m ~off:0 ~len ~stream_off:!next_off) then
                in_order := false;
              next_off := !next_off + len;
              bytes := !bytes + len;
              incr chunks;
              Msg.destroy m));
      Tcp_source.start src;
      Alcotest.(check bool) "handshake done" true (Tcp_source.established src ~stream:0);
      for _ = 1 to 40 do
        ignore (Tcp_source.next src ~stream:0)
      done);
  Alcotest.(check int) "all bytes delivered" (40 * 1024) !bytes;
  Alcotest.(check bool) "stream content in order" true !in_order;
  let sess = List.hd (Tcp.sessions stack.Stack.tcp) in
  let st = Tcp.stats sess in
  Alcotest.(check int) "no out-of-order on 1 cpu" 0 st.Tcp.ooo_segs;
  Alcotest.(check bool) "header prediction dominates" true
    (st.Tcp.pred_hits > st.Tcp.pred_misses)

let test_tcp_recv_reorder_reassembles () =
  (* Inject segments 2,1,4,3 by hand and check in-order delivery. *)
  let p = plat () in
  let cfg = tcp_cfg ~mss:512 () in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:512 ~checksum:true
      ~sequential_payload:true ~ports:[ (2000, 4000) ] ()
  in
  ignore src;
  let delivered = Buffer.create 64 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              Buffer.add_string delivered (Msg.to_string m);
              Msg.destroy m));
      Tcp_source.start src;
      (* Fabricate four segments and deliver them out of order. *)
      let iss = 0x10000000 + 2000 in
      let seg i =
        let payload = Msg.of_string stack.Stack.pool (Printf.sprintf "[seg%d]..." i) in
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2000
          ~dport:4000
          ~seq:(Tcp_seq.add (Tcp_seq.add iss 1) (i * 9))
          ~ack:1 ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20) ~payload:(Some payload)
          ~checksum:true
      in
      List.iter (fun i -> Fddi.input stack.Stack.fddi (seg i)) [ 1; 0; 3; 2 ]);
  Alcotest.(check string) "delivered in sequence order"
    "[seg0]...[seg1]...[seg2]...[seg3]..." (Buffer.contents delivered);
  let sess = List.hd (Tcp.sessions stack.Stack.tcp) in
  let st = Tcp.stats sess in
  Alcotest.(check int) "two ooo segments" 2 st.Tcp.ooo_segs;
  Alcotest.(check bool) "reassembly used" true (st.Tcp.reass_inserts >= 2)

let test_tcp_recv_acks_every_other () =
  let p, stack, src = recv_side_env () in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m -> Msg.destroy m));
      Tcp_source.start src;
      for _ = 1 to 20 do
        ignore (Tcp_source.next src ~stream:0)
      done);
  let sess = List.hd (Tcp.sessions stack.Stack.tcp) in
  let st = Tcp.stats sess in
  Alcotest.(check bool)
    (Printf.sprintf "~every other segment acked (%d acks / 20 segs)" st.Tcp.acks_out)
    true
    (st.Tcp.acks_out >= 9 && st.Tcp.acks_out <= 12)

let test_tcp_recv_ticketing_orders_app () =
  let p, stack, src = recv_side_env ~ticketing:true () in
  let next_off = ref 0 and in_order = ref true and chunks = ref 0 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              let len = Msg.length m in
              if not (Msg.check_pattern m ~off:0 ~len ~stream_off:!next_off) then
                in_order := false;
              next_off := !next_off + len;
              incr chunks;
              Msg.destroy m));
      Tcp_source.start src;
      for _ = 1 to 25 do
        ignore (Tcp_source.next src ~stream:0)
      done;
      let sess = List.hd (Tcp.sessions stack.Stack.tcp) in
      Alcotest.(check int) "one ticket per data segment" 25
        (Gate.tickets_issued (Tcp.ticket_gate sess));
      Alcotest.(check int) "gate fully served" 25 (Gate.serving (Tcp.ticket_gate sess)));
  Alcotest.(check bool) "stream in order through the gate" true !in_order;
  Alcotest.(check int) "all chunks delivered" 25 !chunks

let test_tcp_recv_assume_in_order_mode () =
  let p, stack, src = recv_side_env ~assume_in_order:true ~sequential:false () in
  let bytes = ref 0 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              bytes := !bytes + Msg.length m;
              Msg.destroy m));
      Tcp_source.start src;
      for _ = 1 to 30 do
        ignore (Tcp_source.next src ~stream:0)
      done);
  Alcotest.(check int) "all segments delivered" (30 * 1024) !bytes

let test_tcp_recv_flow_control_window () =
  (* With a tiny advertised window the driver must stall until acks. *)
  let p = plat () in
  (* Window of exactly one segment: the first (delayed-ack'ed) segment
     closes it until the 200 ms fast timer flushes the ack. *)
  let cfg = { (tcp_cfg ~mss:1024 ()) with Tcp.rcv_wnd = 1024 } in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:1024 ~checksum:true
      ~ports:[ (2000, 4000) ] ()
  in
  let bytes = ref 0 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              bytes := !bytes + Msg.length m;
              Msg.destroy m));
      Tcp_source.start src;
      let sent = ref 0 in
      for _ = 1 to 100 do
        if Tcp_source.next src ~stream:0 then incr sent;
        Sim.delay p.Platform.sim (Pnp_util.Units.ms 5.0)
      done;
      Alcotest.(check bool) "window limited the driver" true
        (Tcp_source.window_stalls src > 0);
      Alcotest.(check int) "delivered what was sent" (!sent * 1024) !bytes)

let test_tcp_six_locking_roundtrip () =
  let p, stack, src = recv_side_env ~locking:Tcp.Six () in
  let bytes = ref 0 in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          Tcp.set_receiver sess (fun m ->
              bytes := !bytes + Msg.length m;
              Msg.destroy m));
      Tcp_source.start src;
      for _ = 1 to 15 do
        ignore (Tcp_source.next src ~stream:0)
      done);
  Alcotest.(check int) "TCP-6 delivers too" (15 * 1024) !bytes

let test_tcp_multi_connection_demux () =
  let p = plat () in
  let cfg = tcp_cfg ~mss:1024 () in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:1024 ~checksum:true
      ~ports:[ (2000, 4000); (2001, 4001); (2002, 4002) ] ()
  in
  let per_port = Hashtbl.create 4 in
  in_sim p (fun () ->
      List.iter
        (fun port ->
          Tcp.listen stack.Stack.tcp ~local_port:port ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m ->
                  let v = try Hashtbl.find per_port port with Not_found -> 0 in
                  Hashtbl.replace per_port port (v + Msg.length m);
                  Msg.destroy m)))
        [ 4000; 4001; 4002 ];
      Tcp_source.start src;
      for stream = 0 to 2 do
        for _ = 1 to 5 + stream do
          ignore (Tcp_source.next src ~stream)
        done
      done);
  List.iteri
    (fun i port ->
      Alcotest.(check int)
        (Printf.sprintf "port %d bytes" port)
        ((5 + i) * 1024)
        (try Hashtbl.find per_port port with Not_found -> 0))
    [ 4000; 4001; 4002 ]

let test_tcp_close_listener () =
  let p = plat () in
  let cfg = tcp_cfg ~mss:1024 () in
  let stack = Stack.create p ~tcp_config:cfg ~local_addr:0x0a000002 () in
  let src =
    Tcp_source.attach stack ~peer_addr:0x0a000001 ~payload:1024 ~checksum:true
      ~ports:[ (2000, 4000) ] ()
  in
  let accepts = ref 0 and bytes = ref 0 and endpoint = ref (0, 0) in
  in_sim p (fun () ->
      Tcp.listen stack.Stack.tcp ~local_port:4000 ~accept:(fun sess ->
          incr accepts;
          endpoint := Tcp.remote_endpoint sess;
          Tcp.set_receiver sess (fun m ->
              bytes := !bytes + Msg.length m;
              Msg.destroy m));
      Tcp_source.start src;
      Alcotest.(check int) "accepted once" 1 !accepts;
      Alcotest.(check (pair int int)) "accept sees the peer endpoint"
        (0x0a000001, 2000) !endpoint;
      Alcotest.(check bool) "close removes the listener" true
        (Tcp.close_listener stack.Stack.tcp ~local_port:4000);
      Alcotest.(check bool) "second close finds nothing" false
        (Tcp.close_listener stack.Stack.tcp ~local_port:4000);
      (* The established child is untouched by the listener teardown. *)
      for _ = 1 to 10 do
        ignore (Tcp_source.next src ~stream:0)
      done;
      Alcotest.(check int) "established child still delivers" (10 * 1024) !bytes;
      (* A fresh SYN to the closed port is dropped: no session, no accept. *)
      let before = List.length (Tcp.sessions stack.Stack.tcp) in
      let syn =
        Frame.build_tcp stack.Stack.pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:2177
          ~dport:4000 ~seq:7777 ~ack:0 ~flags:Tcp_wire.flag_syn ~win:(1 lsl 20)
          ~payload:None ~checksum:true
      in
      Fddi.input stack.Stack.fddi syn;
      Alcotest.(check int) "SYN to a closed port makes no session" before
        (List.length (Tcp.sessions stack.Stack.tcp));
      Alcotest.(check int) "and runs no accept callback" 1 !accepts)

(* ------------------------------------------------------------------ *)
(* Presentation layer                                                  *)
(* ------------------------------------------------------------------ *)

let test_pres_roundtrip () =
  let p = plat () in
  let pool = Mpool.create p in
  in_sim p (fun () ->
      let original = "presentation layer marshalling roundtrip!" in
      let m = Msg.of_string pool original in
      let encoded = Pres.encode p pool m in
      Alcotest.(check bool) "encoding changes the bytes" false
        (String.equal (Msg.to_string encoded) original);
      let decoded = Pres.decode p pool encoded in
      Alcotest.(check string) "decode inverts encode" original (Msg.to_string decoded);
      Msg.destroy decoded)

let test_pres_charges_time () =
  let p = plat () in
  let pool = Mpool.create p in
  let elapsed = ref 0 in
  let _ =
    Sim.spawn p.Platform.sim ~name:"t" (fun () ->
        let m = Msg.create pool 4096 in
        let m = Pres.encode p pool m in
        Msg.destroy m;
        elapsed := Sim.now p.Platform.sim)
  in
  Sim.run p.Platform.sim;
  (* 4096 bytes at ~95 ns/byte, plus allocator costs *)
  Alcotest.(check bool)
    (Printf.sprintf "conversion cost charged (%dns)" !elapsed)
    true
    (!elapsed > 350_000 && !elapsed < 500_000)

let suites =
  [
    ( "proto.cksum",
      [
        Alcotest.test_case "known vector" `Quick test_cksum_known_vector;
        Alcotest.test_case "odd length" `Quick test_cksum_odd_length;
        Alcotest.test_case "split = whole" `Quick test_cksum_split_equals_whole;
        Alcotest.test_case "odd middle slice" `Quick test_cksum_odd_middle_slice;
        Alcotest.test_case "incremental matches full" `Quick
          test_cksum_incremental_matches_full;
        Alcotest.test_case "word sum = byte-wise oracle (exhaustive)" `Quick
          test_cksum_word_vs_bytewise_exhaustive;
        Qrand.to_alcotest prop_cksum_word_vs_bytewise;
        Qrand.to_alcotest prop_cksum_verifies;
      ] );
    ( "proto.seq",
      [
        Alcotest.test_case "wraparound" `Quick test_seq_wraparound;
        Qrand.to_alcotest prop_seq_diff_add;
      ] );
    ( "proto.sockbuf",
      [
        Alcotest.test_case "basic" `Quick test_sockbuf_basic;
        Alcotest.test_case "overflow rejected" `Quick test_sockbuf_overflow_rejected;
        Qrand.to_alcotest prop_sockbuf_stream;
      ] );
    ("proto.wire", [ Qrand.to_alcotest prop_tcp_wire_roundtrip ]);
    ( "proto.fddi",
      [
        Alcotest.test_case "roundtrip" `Quick test_fddi_roundtrip;
        Alcotest.test_case "unknown type dropped" `Quick test_fddi_unknown_type_dropped;
        Alcotest.test_case "MTU enforced" `Quick test_fddi_mtu_enforced;
      ] );
    ( "proto.ip",
      [
        Alcotest.test_case "roundtrip" `Quick test_ip_roundtrip_small;
        Alcotest.test_case "fragmentation roundtrip" `Quick test_ip_fragmentation_roundtrip;
        Alcotest.test_case "bad header checksum dropped" `Quick
          test_ip_bad_header_checksum_dropped;
      ] );
    ( "proto.udp",
      [
        Alcotest.test_case "roundtrip (cksum on)" `Quick (test_udp_roundtrip true);
        Alcotest.test_case "roundtrip (cksum off)" `Quick (test_udp_roundtrip false);
        Alcotest.test_case "bad checksum dropped" `Quick test_udp_bad_checksum_dropped;
        Alcotest.test_case "unbound port dropped" `Quick test_udp_unbound_port_dropped;
        Alcotest.test_case "source/sink drivers" `Quick test_udp_source_sink_drivers;
      ] );
    ( "proto.pres",
      [
        Alcotest.test_case "roundtrip" `Quick test_pres_roundtrip;
        Alcotest.test_case "charges time" `Quick test_pres_charges_time;
      ] );
    ( "proto.tcp.send",
      [
        Alcotest.test_case "connect (TCP-1)" `Quick (test_tcp_connect_establishes Tcp.One);
        Alcotest.test_case "connect (TCP-2)" `Quick (test_tcp_connect_establishes Tcp.Two);
        Alcotest.test_case "connect (TCP-6)" `Quick (test_tcp_connect_establishes Tcp.Six);
        Alcotest.test_case "send delivers (TCP-1)" `Quick (test_tcp_send_delivers Tcp.One);
        Alcotest.test_case "send delivers (TCP-2)" `Quick (test_tcp_send_delivers Tcp.Two);
        Alcotest.test_case "send delivers (TCP-6)" `Quick (test_tcp_send_delivers Tcp.Six);
        Alcotest.test_case "acks every other" `Quick test_tcp_send_acks_every_other;
        Alcotest.test_case "retransmission on loss" `Quick test_tcp_retransmission_on_loss;
        Alcotest.test_case "zero-window persist probe" `Quick test_tcp_zero_window_persist;
        Alcotest.test_case "sub-MSS window segments" `Quick test_tcp_small_window_segments;
        Alcotest.test_case "close handshake" `Quick test_tcp_close_handshake;
      ] );
    ( "proto.tcp.recv",
      [
        Alcotest.test_case "in-order delivery (TCP-1)" `Quick
          (test_tcp_recv_in_order Tcp.One);
        Alcotest.test_case "in-order delivery (TCP-2)" `Quick
          (test_tcp_recv_in_order Tcp.Two);
        Alcotest.test_case "reorder reassembles" `Quick test_tcp_recv_reorder_reassembles;
        Alcotest.test_case "acks every other" `Quick test_tcp_recv_acks_every_other;
        Alcotest.test_case "ticketing orders app" `Quick test_tcp_recv_ticketing_orders_app;
        Alcotest.test_case "assumed in-order mode" `Quick test_tcp_recv_assume_in_order_mode;
        Alcotest.test_case "flow control window" `Quick test_tcp_recv_flow_control_window;
        Alcotest.test_case "TCP-6 roundtrip" `Quick test_tcp_six_locking_roundtrip;
        Alcotest.test_case "multi-connection demux" `Quick test_tcp_multi_connection_demux;
        Alcotest.test_case "close_listener drops SYNs, keeps children" `Quick
          test_tcp_close_listener;
      ] );
  ]
