open Pnp_util
open Pnp_engine
open Pnp_analysis

let arch = Arch.challenge_100

(* ------------------------------------------------------------------ *)
(* Hand-built traces                                                   *)
(* ------------------------------------------------------------------ *)

let make_trace ?(locks = []) evs =
  let t = Trace.create () in
  List.iter (fun (name, discipline) -> Trace.register_lock t ~name ~discipline) locks;
  Trace.enable t;
  (* The tracer was just enabled unconditionally above. *)
  List.iteri (fun i (tid, ev) -> Trace.emit t ~ts:(i * 10) ~tid ~cpu:0 ev) evs (* lint:allow *);
  t

let req lock = Trace.Lock_request { lock; waiters = 0 }
let grant lock = Trace.Lock_grant { lock; waiters = 0; wait_ns = 0 }
let rel lock = Trace.Lock_release { lock; hold_ns = 0 }
let acc ?(write = true) state = Trace.Access { state; write }
let enq seq = Trace.Span_begin { seq; phase = Trace.Enqueue }

(* ------------------------------------------------------------------ *)
(* Lockset (Eraser)                                                    *)
(* ------------------------------------------------------------------ *)

let test_lockset_clean_locked_counter () =
  let t =
    make_trace
      [
        (1, grant "l"); (1, acc "tcb#ctr"); (1, rel "l");
        (2, grant "l"); (2, acc "tcb#ctr"); (2, rel "l");
      ]
  in
  let states, findings = Lockset.run t in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  match states with
  | [ s ] ->
    Alcotest.(check string) "id" "tcb#ctr" s.Lockset.id;
    (match s.Lockset.class_ with
     | Lockset.Shared_modified [ "l" ] -> ()
     | _ -> Alcotest.fail "expected Shared_modified [l]")
  | _ -> Alcotest.fail "expected one tracked id"

let test_lockset_fires_on_unlocked_counter () =
  (* Seeded defect: two threads write the same state with no common
     lock.  Exclusive first-thread initialisation is not reported; the
     second thread's write is. *)
  let t =
    make_trace
      [
        (1, acc "tcb#ctr"); (1, acc "tcb#ctr");  (* init, still Exclusive *)
        (2, acc "tcb#ctr");                       (* race *)
        (2, acc "tcb#ctr");                       (* already reported *)
      ]
  in
  let findings = Lockset.check t in
  (match findings with
   | [ f ] ->
     Alcotest.(check string) "checker" "lockset" f.Finding.checker;
     Alcotest.(check string) "subject" "tcb#ctr" f.Finding.subject;
     Alcotest.(check int) "witness pair" 2 (List.length f.Finding.witnesses)
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)))

let test_lockset_read_shared_not_reported () =
  (* Reads of stable data by many threads without locks are fine as long
     as nobody writes after the data becomes shared. *)
  let t =
    make_trace
      [
        (1, acc ~write:true "cfg#mtu");
        (2, acc ~write:false "cfg#mtu");
        (3, acc ~write:false "cfg#mtu");
      ]
  in
  Alcotest.(check int) "no findings" 0 (List.length (Lockset.check t))

let test_lockset_partial_lock_overlap_fires () =
  (* Each thread holds *a* lock, but not a common one: the candidate set
     goes empty exactly on the second thread's write. *)
  let t =
    make_trace
      [
        (1, grant "a"); (1, acc "x#f"); (1, rel "a");
        (2, grant "b"); (2, acc "x#f"); (2, rel "b");
      ]
  in
  (match Lockset.check t with
   | [ f ] -> Alcotest.(check string) "subject" "x#f" f.Finding.subject
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)))

let test_lockset_fires_on_unlocked_map_cache () =
  (* The pre-shard demux bug, as a trace: [Xmap.lookup]'s unlocked fast
     path used to write the map's shared 1-behind cache and counters.
     One thread updates the cache under the map lock (an insert), the
     other writes it holding nothing (the unlocked lookup) — the
     candidate set goes empty on the second write. *)
  let t =
    make_trace
      [
        (1, grant "tcp.demux");
        (1, acc "tcp.demux#cache");
        (1, rel "tcp.demux");
        (2, acc "tcp.demux#cache");
      ]
  in
  match Lockset.check t with
  | [ f ] ->
    Alcotest.(check string) "checker" "lockset" f.Finding.checker;
    Alcotest.(check string) "subject" "tcp.demux#cache" f.Finding.subject
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

module Imap = Pnp_xkern.Xmap.Make (struct
  type t = int

  let hash x = x * 2654435761
  let equal = Int.equal
end)

let test_unlocked_map_lookup_is_clean () =
  (* The fixed map against the real engine: with map locking disabled,
     concurrent lookups keep their 1-behind bookkeeping in per-thread
     slots, so a traced multi-thread run produces no lockset findings
     where the old shared-cache mutation pattern fired. *)
  let p = Platform.create ~map_locking:false arch in
  let m = Imap.create p ~shards:4 ~name:"demux" () in
  let tracer = Sim.tracer p.Platform.sim in
  Trace.enable tracer;
  let sum = ref 0 in
  for i = 0 to 3 do
    ignore
      (Sim.spawn p.Platform.sim ~cpu:i ~name:(Printf.sprintf "rdr.%d" i) (fun () ->
           Imap.insert m i i;
           for _ = 1 to 50 do
             (match Imap.lookup m i with Some v -> sum := !sum + v | None -> ());
             ignore (Imap.lookup m ((i + 1) mod 4));
             Sim.delay p.Platform.sim 100
           done))
  done;
  Sim.run p.Platform.sim;
  Alcotest.(check int) "lookups served" (50 * (0 + 1 + 2 + 3)) !sum;
  Alcotest.(check int) "no lockset findings" 0 (List.length (Lockset.check tracer))

(* ------------------------------------------------------------------ *)
(* Lock-order graph                                                    *)
(* ------------------------------------------------------------------ *)

(* The TCP-6 hazard as a seeded defect against the real engine: one
   thread takes reass before rexmt, another takes them inverted (at a
   disjoint time, so the run itself never deadlocks — the checker must
   still see the potential). *)
let inversion_trace ~invert =
  let sim = Sim.create () in
  let tracer = Sim.tracer sim in
  let reass = Lock.create sim arch Lock.Unfair ~name:"tcp.1.reass" in
  let rexmt = Lock.create sim arch Lock.Unfair ~name:"tcp.1.rexmt" in
  Trace.enable tracer;
  let pair_in_order a b =
    Lock.acquire a;
    Sim.delay sim 100;
    Lock.acquire b;
    Sim.delay sim 100;
    Lock.release b;
    Lock.release a
  in
  let _ = Sim.spawn sim ~name:"input" (fun () -> pair_in_order reass rexmt) in
  let _ =
    Sim.spawn sim ~name:"timer" (fun () ->
        Sim.delay sim 1_000_000;
        if invert then pair_in_order rexmt reass else pair_in_order reass rexmt)
  in
  Sim.run sim;
  tracer

let test_lock_order_cycle_detected () =
  let tracer = inversion_trace ~invert:true in
  match Lock_order.check tracer with
  | [ f ] ->
    Alcotest.(check string) "checker" "lock-order" f.Finding.checker;
    let mentions sub =
      let n = String.length f.Finding.subject and m = String.length sub in
      let rec go i = i + m <= n && (String.sub f.Finding.subject i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names reass" true (mentions "tcp.1.reass");
    Alcotest.(check bool) "names rexmt" true (mentions "tcp.1.rexmt");
    Alcotest.(check bool) "has witnesses" true (List.length f.Finding.witnesses >= 2)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 cycle, got %d" (List.length fs))

let test_lock_order_consistent_is_clean () =
  let tracer = inversion_trace ~invert:false in
  Alcotest.(check int) "no cycles" 0 (List.length (Lock_order.check tracer));
  (* The held-before edge itself is recorded. *)
  match Lock_order.edges tracer with
  | [ e ] ->
    Alcotest.(check string) "first" "tcp.1.reass" e.Lock_order.first;
    Alcotest.(check string) "second" "tcp.1.rexmt" e.Lock_order.second
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_lock_order_three_cycle () =
  let t =
    make_trace
      [
        (1, grant "a"); (1, grant "b"); (1, rel "b"); (1, rel "a");
        (2, grant "b"); (2, grant "c"); (2, rel "c"); (2, rel "b");
        (3, grant "c"); (3, grant "a"); (3, rel "a"); (3, rel "c");
      ]
  in
  match Lock_order.check t with
  | [ _ ] -> ()
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 three-lock cycle, got %d" (List.length fs))

(* ------------------------------------------------------------------ *)
(* Grant order / reorder windows                                       *)
(* ------------------------------------------------------------------ *)

let test_fifo_order_violation_detected () =
  let evs = [ (1, req "m"); (2, req "m"); (2, grant "m"); (1, grant "m") ] in
  (match Order_check.check (make_trace ~locks:[ ("m", "fifo") ] evs) with
   | [ f ] ->
     Alcotest.(check string) "checker" "fifo-order" f.Finding.checker;
     Alcotest.(check string) "subject" "m" f.Finding.subject;
     Alcotest.(check int) "witnesses" 2 (List.length f.Finding.witnesses)
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* The same overtake on a lock that never promised FIFO is not a
     violation. *)
  Alcotest.(check int) "unfair lock may barge" 0
    (List.length (Order_check.check (make_trace ~locks:[ ("m", "unfair") ] evs)))

let test_fifo_order_in_order_clean () =
  let evs = [ (1, req "m"); (2, req "m"); (1, grant "m"); (2, grant "m") ] in
  Alcotest.(check int) "in-order grants" 0
    (List.length (Order_check.check (make_trace ~locks:[ ("m", "fifo") ] evs)))

let test_reorder_window_stats () =
  (* Thread 2 carries a later packet (seq 8192) and wins the lock before
     thread 1 (seq 0) and thread 3 (seq 4096). *)
  let t =
    make_trace
      [
        (1, enq 0); (2, enq 8192); (3, enq 4096);
        (2, grant "l"); (2, rel "l");
        (3, grant "l"); (3, rel "l");
        (1, grant "l"); (1, rel "l");
      ]
  in
  (match Order_check.stats t with
   | [ s ] ->
     Alcotest.(check string) "lock" "l" s.Order_check.lock;
     Alcotest.(check int) "grants" 3 s.Order_check.grants;
     Alcotest.(check int) "reordered" 2 s.Order_check.reordered;
     Alcotest.(check int) "deepest window" 8192 s.Order_check.max_window
   | rows -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length rows)));
  let reordered, grants = Order_check.reordered_total (Order_check.stats t) in
  Alcotest.(check (pair int int)) "totals" (2, 3) (reordered, grants)

(* ------------------------------------------------------------------ *)
(* Replay round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_replay_round_trip () =
  let t =
    make_trace
      [
        (1, enq 0); (1, req "l"); (1, grant "l"); (1, acc "x#f"); (1, rel "l");
        (2, req "l"); (2, grant "l"); (2, rel "l");
      ]
  in
  (* Replay re-delivers exactly the emitted records, in emission order. *)
  let replayed = ref [] in
  Replay.replay t (fun _ctx r -> replayed := r :: !replayed);
  Alcotest.(check int) "count matches" (Trace.count t) (List.length !replayed);
  Alcotest.(check bool) "order matches" true (List.rev !replayed = Trace.events t);
  (* iter and fold agree with events. *)
  let via_iter = ref [] in
  Trace.iter t (fun r -> via_iter := r :: !via_iter);
  Alcotest.(check bool) "iter order" true (List.rev !via_iter = Trace.events t);
  let n = Trace.fold t ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "fold count" (Trace.count t) n

let test_replay_held_and_seq () =
  let t =
    make_trace
      [ (1, enq 4096); (1, grant "a"); (1, grant "b"); (1, rel "b"); (1, rel "a") ]
  in
  (* Inspect the context right before each record is applied. *)
  let at_b_grant = ref [] and after_rel_b = ref [] and seq = ref None in
  Replay.replay t (fun ctx r ->
      match r.Trace.ev with
      | Trace.Lock_grant { lock = "b"; _ } ->
        at_b_grant := Replay.held ctx ~tid:1;
        seq := Replay.current_seq ctx ~tid:1
      | Trace.Lock_release { lock = "a"; _ } -> after_rel_b := Replay.held ctx ~tid:1
      | _ -> ());
  Alcotest.(check (list string)) "held before b's grant" [ "a" ] !at_b_grant;
  Alcotest.(check (option int)) "carried seq" (Some 4096) !seq;
  Alcotest.(check (list string)) "b released before a" [ "a" ] !after_rel_b

(* ------------------------------------------------------------------ *)
(* The real stack under the checkers                                   *)
(* ------------------------------------------------------------------ *)

let checked_scenario ?(side = Pnp_harness.Config.Recv) ~tcp_locking () =
  let open Pnp_harness in
  let cfg =
    Config.v ~arch ~procs:4 ~side ~protocol:Config.Tcp ~payload:4096
      ~checksum:true ~tcp_locking
      ~warmup:(Units.ms 5.0) ~measure:(Units.ms 20.0) ~seed:1 ()
  in
  Run.run_traced cfg

let test_clean_tcp6_run_has_no_findings () =
  let _result, tracer = checked_scenario ~tcp_locking:Pnp_proto.Tcp.Six () in
  let findings = Check.all tracer in
  List.iter (fun f -> Format.eprintf "unexpected: %a@." Finding.pp f) findings;
  Alcotest.(check int) "clean tree is clean" 0 (List.length findings);
  (* The run actually exercised the checkers: state was tracked and
     held-before edges exist under fine-grained locking. *)
  let states, _ = Lockset.run tracer in
  Alcotest.(check bool) "lockset saw annotated state" true (List.length states > 0);
  Alcotest.(check bool) "held-before edges exist" true
    (List.length (Lock_order.edges tracer) > 0)

let test_clean_tcp_send_run_has_no_findings () =
  let _result, tracer =
    checked_scenario ~side:Pnp_harness.Config.Send ~tcp_locking:Pnp_proto.Tcp.Two ()
  in
  Alcotest.(check int) "clean tree is clean" 0 (List.length (Check.all tracer))

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint ?(file = "lib/figures/fig_test.ml") src = Lint.check_source ~file src

let rules fs = List.map (fun f -> f.Lint.rule) fs

let test_lint_scrub () =
  let scrubbed =
    Lint.scrub
      "let x = 1 (* outer (* nested *) \"string with *) inside\" end *) + 2\n\
       let s = \"Printf.printf \\\" quoted\" in s\n"
  in
  let contains sub =
    let n = String.length scrubbed and m = String.length sub in
    let rec go i = i + m <= n && (String.sub scrubbed i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "code survives" true (contains "let x = 1");
  Alcotest.(check bool) "code after nested comment survives" true (contains "+ 2");
  Alcotest.(check bool) "comment text blanked" false (contains "outer");
  Alcotest.(check bool) "string text blanked" false (contains "Printf");
  Alcotest.(check int) "line structure preserved" 2
    (List.length
       (List.filter (fun c -> c = '\n') (List.init (String.length scrubbed) (String.get scrubbed))))

let test_lint_no_print_in_data_phase () =
  (match lint "let fig_data opts =\n  Printf.printf \"x\";\n  []\n" with
   | [ f ] ->
     Alcotest.(check string) "rule" "no-print" f.Lint.rule;
     Alcotest.(check int) "line" 2 f.Lint.line
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* Presentation bindings may print. *)
  Alcotest.(check (list string)) "_present exempt" []
    (rules (lint "let fig_present opts tables =\n  Printf.printf \"x\"\n"));
  (* sprintf is pure string formatting, not printing. *)
  Alcotest.(check (list string)) "sprintf allowed" []
    (rules (lint "let fig_data opts =\n  Printf.sprintf \"x\"\n"));
  (* A print mentioned in a comment or a string is not a print. *)
  Alcotest.(check (list string)) "comment not flagged" []
    (rules (lint "let fig_data opts =\n  (* Printf.printf \"x\" *)\n  []\n"));
  Alcotest.(check (list string)) "string not flagged" []
    (rules (lint "let fig_data opts =\n  ignore \"Printf.printf\";\n  []\n"));
  (* Only fig_*.ml files have data phases. *)
  Alcotest.(check (list string)) "non-fig file exempt" []
    (rules (lint ~file:"lib/harness/report.ml" "let f () =\n  Printf.printf \"x\"\n"))

let test_lint_no_wallclock_in_data_phase () =
  (match lint "let fig_data opts =\n  Unix.gettimeofday ()\n" with
   | [ f ] -> Alcotest.(check string) "rule" "no-wallclock" f.Lint.rule
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  match lint "let fig_data opts =\n  Random.self_init ()\n" with
  | [ f ] -> Alcotest.(check string) "rule" "no-wallclock" f.Lint.rule
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_lint_no_global_mutable () =
  (match lint "let total = ref 0\nlet fig_data opts = !total\n" with
   | [ f ] ->
     Alcotest.(check string) "rule" "no-global-mutable" f.Lint.rule;
     Alcotest.(check int) "line" 1 f.Lint.line
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* Local refs inside a binding are fine. *)
  Alcotest.(check (list string)) "local ref allowed" []
    (rules (lint "let fig_data opts =\n  let n = ref 0 in\n  !n\n"))

let test_lint_lock_pairing () =
  (match lint ~file:"lib/proto/foo.ml" "let f l =\n  Lock.acquire l;\n  work ()\n" with
   | [ f ] ->
     Alcotest.(check string) "rule" "lock-pairing" f.Lint.rule;
     Alcotest.(check int) "whole file" 0 f.Lint.line
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* One acquire feeding several early-exit releases is legitimate. *)
  Alcotest.(check (list string)) "extra releases fine" []
    (rules
       (lint ~file:"lib/driver/foo.ml"
          "let f l =\n\
          \  Lock.acquire l;\n\
          \  if a then (Lock.release l; 0)\n\
          \  else (Lock.release l; 1)\n"));
  (* Tests exercise unpaired acquires on purpose. *)
  Alcotest.(check (list string)) "tests exempt" []
    (rules (lint ~file:"test/test_foo.ml" "let f l =\n  Lock.acquire l\n"))

let test_lint_trace_guard () =
  (match
     lint ~file:"lib/xkern/foo.ml"
       "let f tracer =\n  Trace.emit tracer ~ts:0 ~tid:0 ~cpu:0 ev\n"
   with
   | [ f ] -> Alcotest.(check string) "rule" "trace-guard" f.Lint.rule
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  Alcotest.(check (list string)) "guarded emit fine" []
    (rules
       (lint ~file:"lib/xkern/foo.ml"
          "let f tracer =\n\
          \  if Trace.enabled tracer then\n\
          \    Trace.emit tracer ~ts:0 ~tid:0 ~cpu:0 ev\n"));
  Alcotest.(check (list string)) "trace.ml itself exempt" []
    (rules
       (lint ~file:"lib/engine/trace.ml"
          "let f t =\n  Trace.emit t ~ts:0 ~tid:0 ~cpu:0 ev\n"))

let test_lint_allow_marker () =
  Alcotest.(check (list string)) "lint:allow suppresses" []
    (rules
       (lint "let fig_data opts =\n  Printf.printf \"x\" (* lint:allow: demo *)\n"))

let test_lint_msg_bump_gen () =
  (* Seeded violation: a binding mutates node bytes (Mpool.data +
     Bytes.set) without calling bump_gen — the checksum memo would go
     stale. *)
  (match
     lint ~file:"lib/xkern/fake.ml"
       "let poke node =\n  Bytes.set (Mpool.data node) 0 'x'\n"
   with
   | [ f ] ->
     Alcotest.(check string) "rule" "msg-bump-gen" f.Lint.rule;
     Alcotest.(check int) "line of the mutation" 2 f.Lint.line
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* Calling bump_gen anywhere in the binding satisfies the rule. *)
  Alcotest.(check (list string)) "bump_gen present" []
    (rules
       (lint ~file:"lib/xkern/fake.ml"
          "let poke pool node =\n\
          \  Mpool.bump_gen pool node;\n\
          \  Bytes.set (Mpool.data node) 0 'x'\n"));
  (* Mutating a plain buffer (no node bytes in scope) is out of scope. *)
  Alcotest.(check (list string)) "non-node mutation exempt" []
    (rules (lint ~file:"lib/xkern/fake.ml" "let poke buf =\n  Bytes.set buf 0 'x'\n"));
  (* An explicit allow documents intentional exceptions. *)
  Alcotest.(check (list string)) "allow marker honoured" []
    (rules
       (lint ~file:"lib/xkern/fake.ml"
          "let poke node =\n\
          \  (* lint:allow msg-bump-gen: writes the caller's view *)\n\
          \  Bytes.set (Mpool.data node) 0 'x'\n"))

let test_lint_state_matrix () =
  (* Seeded violation: a proto-layer binding writes annotated shared
     state with no lock acquisition in scope. *)
  (match
     lint ~file:"lib/proto/fake.ml"
       "let f sess =\n  access sess ~write:true \"snd\"\n"
   with
   | [ f ] ->
     Alcotest.(check string) "rule" "state-matrix" f.Lint.rule;
     Alcotest.(check int) "anchored at the binding" 1 f.Lint.line
   | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* A lock acquisition in the same binding satisfies the rule; reads
     never require one. *)
  Alcotest.(check (list string)) "locked write fine" []
    (rules
       (lint ~file:"lib/proto/fake.ml"
          "let f sess l =\n\
          \  Lock.acquire l;\n\
          \  access sess ~write:true \"snd\";\n\
          \  Lock.release l\n"));
  Alcotest.(check (list string)) "unlocked read fine" []
    (rules
       (lint ~file:"lib/proto/fake.ml"
          "let f sess =\n  access sess ~write:false \"snd\"\n"));
  (* lint:allow documents caller-locked helpers. *)
  Alcotest.(check (list string)) "caller-locked allow" []
    (rules
       (lint ~file:"lib/proto/fake.ml"
          "let f sess =\n\
          \  (* lint:allow state-matrix: caller holds the input locks *)\n\
          \  access sess ~write:true \"snd\"\n"));
  (* Layers outside lib/proto are out of scope for the matrix. *)
  Alcotest.(check (list string)) "non-proto exempt" []
    (rules
       (lint ~file:"lib/driver/fake.ml"
          "let f sess =\n  access sess ~write:true \"snd\"\n"))

let test_lint_state_matrix_rows () =
  (* The inferred matrix itself: reads/writes/locks per binding. *)
  let src =
    "let reader sess l =\n\
    \  Lock.acquire l;\n\
    \  access sess ~write:false \"rcv\";\n\
    \  Lock.release l\n\
     \n\
     let writer sess =\n\
    \  with_reass_lock sess (fun () ->\n\
    \    access sess ~write:true \"reass\";\n\
    \    access sess ~write:false \"rcv\")\n"
  in
  let rows = Lint.state_matrix_source ~file:"lib/proto/fake.ml" src in
  (match rows with
   | [ r1; r2 ] ->
     Alcotest.(check string) "first binding" "reader" r1.Lint.m_binding;
     Alcotest.(check (list string)) "reader reads" [ "rcv" ] r1.Lint.m_reads;
     Alcotest.(check (list string)) "reader writes" [] r1.Lint.m_writes;
     Alcotest.(check bool) "reader locks seen" true (r1.Lint.m_locks <> []);
     Alcotest.(check string) "second binding" "writer" r2.Lint.m_binding;
     Alcotest.(check (list string)) "writer writes" [ "reass" ] r2.Lint.m_writes;
     Alcotest.(check (list string)) "writer reads" [ "rcv" ] r2.Lint.m_reads;
     Alcotest.(check bool) "with_* counts as a lock" true (r2.Lint.m_locks <> [])
   | rs -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rs)));
  Alcotest.(check int) "no violations in the fixture" 0
    (List.length (Lint.matrix_violations rows));
  (* The real proto layer yields a non-empty, violation-free matrix. *)
  let root =
    let rec up d =
      if Sys.file_exists (Filename.concat d "dune-project") then Some d
      else
        let parent = Filename.dirname d in
        if parent = d then None else up parent
    in
    up (Sys.getcwd ())
  in
  match root with
  | None -> ()
  | Some root ->
    let rows = Lint.state_matrix ~roots:[ Filename.concat root "lib" ] in
    Alcotest.(check bool) "proto matrix non-empty" true (List.length rows > 0);
    Alcotest.(check int) "proto matrix violation-free" 0
      (List.length (Lint.matrix_violations rows));
    (* The JSON export is structurally plausible and names every row. *)
    let json = Lint.matrix_json rows in
    Alcotest.(check bool) "json mentions the matrix key" true
      (String.length json > 2
      && String.sub json 0 2 = "{\""
      && List.for_all
           (fun r ->
             let sub = "\"" ^ r.Lint.m_binding ^ "\"" in
             let n = String.length json and m = String.length sub in
             let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
             go 0)
           rows)

let test_lint_clean_tree () =
  (* The repo must lint clean — this is `dune build @lint` as a unit
     test, pinned to wherever the runner starts. *)
  let root =
    let rec up d =
      if Sys.file_exists (Filename.concat d "dune-project") then Some d
      else
        let parent = Filename.dirname d in
        if parent = d then None else up parent
    in
    up (Sys.getcwd ())
  in
  match root with
  | None -> () (* sandboxed runner without the source tree: nothing to lint *)
  | Some root ->
    let roots =
      List.filter_map
        (fun d ->
          let p = Filename.concat root d in
          if Sys.file_exists p then Some p else None)
        [ "lib"; "bin" ]
    in
    let findings = Lint.check_tree ~roots in
    List.iter (fun f -> Format.eprintf "lint: %a@." Lint.pp_finding f) findings;
    Alcotest.(check int) "clean" 0 (List.length findings)

let suites =
  [
    ( "analysis.lockset",
      [
        Alcotest.test_case "locked counter clean" `Quick test_lockset_clean_locked_counter;
        Alcotest.test_case "unlocked counter fires" `Quick
          test_lockset_fires_on_unlocked_counter;
        Alcotest.test_case "read-shared not reported" `Quick
          test_lockset_read_shared_not_reported;
        Alcotest.test_case "disjoint locksets fire" `Quick
          test_lockset_partial_lock_overlap_fires;
        Alcotest.test_case "unlocked map-cache write fires" `Quick
          test_lockset_fires_on_unlocked_map_cache;
        Alcotest.test_case "per-thread map cache is clean" `Quick
          test_unlocked_map_lookup_is_clean;
      ] );
    ( "analysis.lockorder",
      [
        Alcotest.test_case "inverted TCP-6 order is a cycle" `Quick
          test_lock_order_cycle_detected;
        Alcotest.test_case "consistent order is clean" `Quick
          test_lock_order_consistent_is_clean;
        Alcotest.test_case "three-lock cycle" `Quick test_lock_order_three_cycle;
      ] );
    ( "analysis.order",
      [
        Alcotest.test_case "fifo violation detected" `Quick
          test_fifo_order_violation_detected;
        Alcotest.test_case "in-order grants clean" `Quick test_fifo_order_in_order_clean;
        Alcotest.test_case "reorder windows quantified" `Quick test_reorder_window_stats;
      ] );
    ( "analysis.replay",
      [
        Alcotest.test_case "round-trip count and order" `Quick test_replay_round_trip;
        Alcotest.test_case "held locks and carried seq" `Quick test_replay_held_and_seq;
      ] );
    ( "analysis.e2e",
      [
        Alcotest.test_case "TCP-6 recv run is clean" `Quick
          test_clean_tcp6_run_has_no_findings;
        Alcotest.test_case "TCP-2 send run is clean" `Quick
          test_clean_tcp_send_run_has_no_findings;
      ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "scrubber" `Quick test_lint_scrub;
        Alcotest.test_case "no print in data phase" `Quick test_lint_no_print_in_data_phase;
        Alcotest.test_case "no wallclock in data phase" `Quick
          test_lint_no_wallclock_in_data_phase;
        Alcotest.test_case "no global mutable state" `Quick test_lint_no_global_mutable;
        Alcotest.test_case "lock pairing" `Quick test_lint_lock_pairing;
        Alcotest.test_case "trace guard" `Quick test_lint_trace_guard;
        Alcotest.test_case "allow marker" `Quick test_lint_allow_marker;
        Alcotest.test_case "msg mutators must bump_gen" `Quick test_lint_msg_bump_gen;
        Alcotest.test_case "state-access matrix violations" `Quick test_lint_state_matrix;
        Alcotest.test_case "state-access matrix rows" `Quick test_lint_state_matrix_rows;
        Alcotest.test_case "tree lints clean" `Quick test_lint_clean_tree;
      ] );
  ]
