(* End-to-end shape tests: the qualitative claims of the paper must hold
   in the reproduction at reduced (fast) sweep settings. *)

open Pnp_engine
open Pnp_harness

let fast = Pnp_util.Units.ms 250.0

let cfg ?(arch = Arch.challenge_100) ?(procs = 8) ?(side = Config.Recv)
    ?(protocol = Config.Tcp) ?(payload = 4096) ?(checksum = true)
    ?(lock_disc = Lock.Unfair) ?(tcp_locking = Pnp_proto.Tcp.One)
    ?(assume_in_order = false) ?(ticketing = false)
    ?(refcnt_mode = Atomic_ctr.Ll_sc) ?(message_caching = true) ?(map_locking = true)
    ?(connections = 1) ?(placement = Config.Packet_level) ?(seed = 3) () =
  Config.v ~arch ~procs ~side ~protocol ~payload ~checksum ~lock_disc ~tcp_locking
    ~assume_in_order ~ticketing ~refcnt_mode ~message_caching ~map_locking ~connections
    ~placement ~measure:fast ~seed ()

let tput c = (Run.run c).Run.throughput_mbps

let check_gt name a b =
  if not (a > b) then Alcotest.failf "%s: expected %.1f > %.1f" name a b

let check_between name lo x hi =
  if not (x >= lo && x <= hi) then
    Alcotest.failf "%s: expected %.1f within [%.1f, %.1f]" name x lo hi

(* ------------------------------------------------------------------ *)
(* Baseline shapes (Figs 2-9)                                          *)
(* ------------------------------------------------------------------ *)

let test_udp_send_scales () =
  let t1 = tput (cfg ~protocol:Config.Udp ~side:Config.Send ~procs:1 ()) in
  let t8 = tput (cfg ~protocol:Config.Udp ~side:Config.Send ~procs:8 ()) in
  check_gt "UDP send speedup at 8 CPUs > 6x" (t8 /. t1) 6.0

let test_udp_recv_scales_but_levels () =
  let t1 = tput (cfg ~protocol:Config.Udp ~side:Config.Recv ~checksum:false ~procs:1 ()) in
  let t8 = tput (cfg ~protocol:Config.Udp ~side:Config.Recv ~checksum:false ~procs:8 ()) in
  let s = t8 /. t1 in
  check_between "UDP recv ck-off speedup at 8 CPUs" 4.0 s 7.5

let test_tcp_send_saturates () =
  let t1 = tput (cfg ~side:Config.Send ~checksum:false ~procs:1 ()) in
  let t8 = tput (cfg ~side:Config.Send ~checksum:false ~procs:8 ()) in
  (* The paper: levels off around 215 Mbit/s; speedup stays near 2. *)
  check_between "TCP send saturation level" 180.0 t8 260.0;
  check_between "TCP send speedup at 8 CPUs" 1.6 (t8 /. t1) 3.2

let test_tcp_send_less_parallel_than_udp () =
  let u8 = tput (cfg ~protocol:Config.Udp ~side:Config.Send ~procs:8 ()) in
  let u1 = tput (cfg ~protocol:Config.Udp ~side:Config.Send ~procs:1 ()) in
  let t8 = tput (cfg ~side:Config.Send ~procs:8 ()) in
  let t1 = tput (cfg ~side:Config.Send ~procs:1 ()) in
  check_gt "UDP speedup dominates TCP's" (u8 /. u1) (2.0 *. (t8 /. t1))

let test_tcp_recv_drop_beyond_peak () =
  (* Figure 8: mutex receive throughput peaks around 4-5 CPUs and then
     falls off. *)
  let at p = tput (cfg ~procs:p ()) in
  let t4 = at 4 and t5 = at 5 and t8 = at 8 in
  let peak = max t4 t5 in
  check_gt "receive throughput drops past the peak" (peak *. 0.95) t8

let test_checksum_slows_but_speeds_up_better () =
  (* Larger packets with checksumming show the best relative speedup. *)
  let s ~payload ~checksum =
    let t1 = tput (cfg ~protocol:Config.Udp ~side:Config.Recv ~payload ~checksum ~procs:1 ()) in
    let t8 = tput (cfg ~protocol:Config.Udp ~side:Config.Recv ~payload ~checksum ~procs:8 ()) in
    t8 /. t1
  in
  check_gt "4K ck-on speedup >= 1K ck-off speedup"
    (s ~payload:4096 ~checksum:true +. 0.2)
    (s ~payload:1024 ~checksum:false)

(* ------------------------------------------------------------------ *)
(* Ordering (Fig 10, Table 1, Fig 11, send-side aside)                 *)
(* ------------------------------------------------------------------ *)

let test_ordering_table1_shape () =
  let ooo disc p = (Run.run (cfg ~lock_disc:disc ~procs:p ())).Run.ooo_pct in
  let mutex8 = ooo Lock.Unfair 8 in
  let mcs8 = ooo Lock.Fifo 8 in
  check_gt "mutex misorders a lot at 8 CPUs" mutex8 20.0;
  check_gt "MCS misorders far less" (mutex8 /. 4.0) mcs8;
  let mutex4 = ooo Lock.Unfair 4 in
  check_gt "misordering grows with processors" mutex8 mutex4

let test_mcs_recovers_throughput () =
  let t disc = tput (cfg ~lock_disc:disc ~procs:8 ()) in
  check_gt "MCS beats mutex at 8 CPUs" (t Lock.Fifo) (t Lock.Unfair *. 1.2)

let test_assumed_in_order_is_upper_boundish () =
  let bound = tput (cfg ~assume_in_order:true ~procs:8 ()) in
  let mutex = tput (cfg ~procs:8 ()) in
  check_gt "assumed-in-order above mutex" bound mutex

let test_single_cpu_never_misorders () =
  let r = Run.run (cfg ~procs:1 ()) in
  Alcotest.(check (float 0.0)) "no ooo on one CPU" 0.0 r.Run.ooo_pct

let test_ticketing_costs_throughput () =
  let t tick = tput (cfg ~lock_disc:Lock.Fifo ~ticketing:tick ~procs:8 ~seed:9 ()) in
  check_gt "ticketing does not help" (t false *. 1.02) (t true)

let test_send_side_misordering_below_one_pct () =
  let r = Run.run (cfg ~side:Config.Send ~procs:8 ()) in
  if r.Run.wire_misorder_pct >= 1.0 then
    Alcotest.failf "wire misordering %.2f%% (paper: <1%%)" r.Run.wire_misorder_pct

(* ------------------------------------------------------------------ *)
(* Multiple connections (Fig 12)                                       *)
(* ------------------------------------------------------------------ *)

let test_multiconn_scales () =
  let single = tput (cfg ~lock_disc:Lock.Fifo ~procs:8 ()) in
  let multi =
    tput
      (cfg ~lock_disc:Lock.Fifo ~procs:8 ~connections:8
         ~placement:Config.Connection_level ())
  in
  check_gt "one connection per CPU scales further" multi (single *. 1.25)

(* ------------------------------------------------------------------ *)
(* Locking granularity (Figs 13, 14)                                   *)
(* ------------------------------------------------------------------ *)

let test_simple_locking_wins () =
  List.iter
    (fun side ->
      let t l = tput (cfg ~side ~lock_disc:Lock.Fifo ~tcp_locking:l ~procs:8 ()) in
      let t1 = t Pnp_proto.Tcp.One and t6 = t Pnp_proto.Tcp.Six in
      check_gt
        (Printf.sprintf "TCP-1 beats TCP-6 (%s)" (Config.side_to_string side))
        t1 t6)
    [ Config.Send; Config.Recv ]

let test_tcp2_between () =
  let t l = tput (cfg ~side:Config.Send ~lock_disc:Lock.Fifo ~tcp_locking:l ~procs:8 ()) in
  check_gt "TCP-2 no better than TCP-1 (send)"
    (t Pnp_proto.Tcp.One *. 1.05)
    (t Pnp_proto.Tcp.Two)

(* ------------------------------------------------------------------ *)
(* Atomic ops (Fig 15) and message caching (Fig 16)                    *)
(* ------------------------------------------------------------------ *)

let test_atomic_ops_help_receive () =
  let t m = tput (cfg ~side:Config.Recv ~refcnt_mode:m ~procs:8 ~lock_disc:Lock.Fifo ()) in
  check_gt "LL/SC refcounts beat lock-inc-unlock"
    (t Atomic_ctr.Ll_sc)
    (t Atomic_ctr.Locked *. 1.02)

let test_message_caching_helps () =
  let t c = tput (cfg ~side:Config.Send ~message_caching:c ~procs:8 ()) in
  check_gt "per-thread MNode caches help" (t true) (t false *. 1.01)

(* ------------------------------------------------------------------ *)
(* Architecture comparison (Figs 17, 18) and micro results             *)
(* ------------------------------------------------------------------ *)

let test_faster_machine_higher_throughput () =
  let t arch = tput (cfg ~arch ~procs:4 ()) in
  let c150 = t Arch.challenge_150 and c100 = t Arch.challenge_100 in
  let p33 = t Arch.power_series_33 in
  check_gt "150MHz above 100MHz" c150 c100;
  check_gt "100MHz above Power Series" c100 p33

let test_uniprocessor_gap_25_to_50_pct () =
  let t arch = tput (cfg ~arch ~procs:1 ~protocol:Config.Udp ~side:Config.Send ()) in
  let ratio = t Arch.challenge_100 /. t Arch.power_series_33 in
  check_between "Challenge only 25-50% faster at 1 CPU despite 3x clock" 1.15 ratio 1.75

let test_power_series_best_speedup () =
  let speedup arch =
    tput (cfg ~arch ~procs:4 ()) /. tput (cfg ~arch ~procs:1 ())
  in
  check_gt "Power Series speedup best (sync bus)"
    (speedup Arch.power_series_33 +. 0.01)
    (speedup Arch.challenge_100)

let test_lock_wait_dominates_at_8 () =
  let r = Run.run (cfg ~side:Config.Recv ~procs:8 ()) in
  check_gt "most time spent waiting on the connection lock" r.Run.lock_wait_pct 40.0;
  let s = Run.run (cfg ~side:Config.Send ~procs:8 ()) in
  check_gt "send side waits too" s.Run.lock_wait_pct 40.0

let test_map_unlocking_helps_a_little () =
  let t ml = tput (cfg ~protocol:Config.Udp ~side:Config.Recv ~map_locking:ml ~procs:8 ()) in
  let gain = 100.0 *. (t false -. t true) /. t true in
  check_between "unlocked maps gain small and positive" 0.0 gain 25.0

let test_checksum_microbench () =
  let opts = { Pnp_figures.Opts.quick with Pnp_figures.Opts.max_procs = 8 } in
  let data = Pnp_figures.Fig_micro.checksum_points opts in
  List.iter
    (fun (p, mb) ->
      let per_cpu = mb /. float_of_int p in
      check_between (Printf.sprintf "per-CPU checksum rate at %d CPUs" p) 30.0 per_cpu 34.0)
    data

let test_run_metrics_consistent () =
  let r = Run.run (cfg ~procs:2 ()) in
  check_gt "packets counted" (float_of_int r.Run.packets) 10.0;
  check_gt "throughput positive" r.Run.throughput_mbps 1.0;
  check_between "cache hit rate high with caching on" 50.0 r.Run.cache_hit_pct 100.0

let test_deterministic_runs () =
  let r1 = Run.run (cfg ~procs:4 ()) in
  let r2 = Run.run (cfg ~procs:4 ()) in
  Alcotest.(check (float 0.0)) "same seed, same throughput" r1.Run.throughput_mbps
    r2.Run.throughput_mbps;
  let r3 = Run.run (cfg ~procs:4 ~seed:99 ()) in
  Alcotest.(check bool) "different seed perturbs" true
    (abs_float (r3.Run.throughput_mbps -. r1.Run.throughput_mbps) > 1e-9)

let suites =
  [
    ( "harness.baseline",
      [
        Alcotest.test_case "UDP send scales" `Quick test_udp_send_scales;
        Alcotest.test_case "UDP recv scales but levels" `Quick test_udp_recv_scales_but_levels;
        Alcotest.test_case "TCP send saturates ~215" `Quick test_tcp_send_saturates;
        Alcotest.test_case "TCP less parallel than UDP" `Quick
          test_tcp_send_less_parallel_than_udp;
        Alcotest.test_case "TCP recv drops past peak" `Quick test_tcp_recv_drop_beyond_peak;
        Alcotest.test_case "checksum improves relative speedup" `Quick
          test_checksum_slows_but_speeds_up_better;
      ] );
    ( "harness.ordering",
      [
        Alcotest.test_case "table 1 shape" `Quick test_ordering_table1_shape;
        Alcotest.test_case "MCS recovers throughput" `Quick test_mcs_recovers_throughput;
        Alcotest.test_case "assumed in-order is bound" `Quick
          test_assumed_in_order_is_upper_boundish;
        Alcotest.test_case "1 CPU never misorders" `Quick test_single_cpu_never_misorders;
        Alcotest.test_case "ticketing costs throughput" `Quick test_ticketing_costs_throughput;
        Alcotest.test_case "send wire misorder < 1%" `Quick
          test_send_side_misordering_below_one_pct;
      ] );
    ( "harness.structure",
      [
        Alcotest.test_case "multiconn scales" `Quick test_multiconn_scales;
        Alcotest.test_case "simple locking wins" `Quick test_simple_locking_wins;
        Alcotest.test_case "TCP-2 <= TCP-1" `Quick test_tcp2_between;
        Alcotest.test_case "atomic ops help" `Quick test_atomic_ops_help_receive;
        Alcotest.test_case "message caching helps" `Quick test_message_caching_helps;
      ] );
    ( "harness.arch",
      [
        Alcotest.test_case "faster machine higher throughput" `Quick
          test_faster_machine_higher_throughput;
        Alcotest.test_case "uniprocessor gap 25-50%" `Quick test_uniprocessor_gap_25_to_50_pct;
        Alcotest.test_case "Power Series best speedup" `Quick test_power_series_best_speedup;
        Alcotest.test_case "lock wait dominates at 8" `Quick test_lock_wait_dominates_at_8;
        Alcotest.test_case "map unlocking aside" `Quick test_map_unlocking_helps_a_little;
        Alcotest.test_case "checksum microbench 32MB/s" `Quick test_checksum_microbench;
        Alcotest.test_case "metrics consistent" `Quick test_run_metrics_consistent;
        Alcotest.test_case "deterministic given seed" `Quick test_deterministic_runs;
      ] );
  ]
