let () =
  Alcotest.run "pnp"
    (List.concat [ Test_util.suites; Test_engine.suites; Test_trace.suites; Test_xkern.suites; Test_proto.suites; Test_harness.suites; Test_pool.suites; Test_memo.suites; Test_extensions.suites; Test_fuzz.suites; Test_edge.suites; Test_network.suites; Test_driver.suites; Test_report.suites; Test_analysis.suites; Test_hb.suites; Test_faults.suites; Test_overload.suites; Test_scr.suites ])
