open Pnp_engine
open Pnp_proto
open Pnp_harness

(* The ext-scr figure: state-compute replication vs the paper's lock
   ladder on the TCP receive side.  Per packet SCR pays
   F + (K-1)*r — the full protocol work F plus a replay tax r for each
   of the other K-1 threads' log entries — where the locked disciplines
   serialize F behind the connection lock.  With r well under F the
   redundant compute wins once the lock wait the paper measures (85-90%
   of thread time at 8 CPUs) exceeds the replay bill, so the curves
   cross between 2 and 4 CPUs and diverge from there.  The companion
   tables make the trade visible: replayed-entries-per-append (the
   redundancy factor, ~K-1 under saturation) against the locked
   disciplines' wait share. *)

let disciplines =
  [
    ("TCP-1", Tcp.One);
    ("TCP-2", Tcp.Two);
    ("TCP-6", Tcp.Six);
    ("SCR", Tcp.Scr);
    ("RCU", Tcp.Rcu);
  ]

let cell opts ~tcp_locking ~connections procs =
  Opts.apply opts
    (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
       ~lock_disc:Lock.Fifo ~tcp_locking ~connections ~procs ())

let throughput opts ~connections =
  List.map
    (fun (label, tcp_locking) ->
      Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
        (cell opts ~tcp_locking ~connections))
    disciplines

(* The cost ledger at one connection: what SCR spends (replays per
   appended entry, resyncs) next to what the locked ladder spends (lock
   wait share).  Both sides of the trade in one table. *)
let cost_series opts =
  let metric_for label =
    Report.metric_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
  in
  [
    metric_for "SCR replays/append"
      ~metric:(fun r ->
        if r.Run.scr_appends = 0 then 0.0
        else float_of_int r.Run.scr_replayed /. float_of_int r.Run.scr_appends)
      (cell opts ~tcp_locking:Tcp.Scr ~connections:1);
    metric_for "SCR resyncs"
      ~metric:(fun r -> float_of_int r.Run.scr_resyncs)
      (cell opts ~tcp_locking:Tcp.Scr ~connections:1);
    metric_for "TCP-1 lock wait %"
      ~metric:(fun r -> r.Run.lock_wait_pct)
      (cell opts ~tcp_locking:Tcp.One ~connections:1);
    metric_for "TCP-6 lock wait %"
      ~metric:(fun r -> r.Run.lock_wait_pct)
      (cell opts ~tcp_locking:Tcp.Six ~connections:1);
  ]

let scr_data opts =
  [
    Report.table
      ~title:
        "ext-scr: TCP receive throughput, lock ladder vs state-compute \
         replication (1 connection, checksum on, MCS)"
      ~unit_label:"Mbit/s"
      (throughput opts ~connections:1);
    Report.table
      ~title:"ext-scr: the same ladder at 4 connections"
      ~unit_label:"Mbit/s"
      (throughput opts ~connections:4);
    Report.table
      ~title:"ext-scr: what each side of the trade costs (1 connection)"
      ~unit_label:"ratio / count / %"
      (cost_series opts);
  ]

(* Crossover summary under the throughput tables: the least processor
   count at which SCR beats TCP-1, and the margins at the extremes. *)
let scr_present opts tables =
  List.iter Report.print tables;
  match tables with
  | t1 :: _ -> (
    let find label =
      List.find_opt (fun (s : Report.series) -> s.Report.label = label) t1.Report.series
    in
    match (find "SCR", find "TCP-1") with
    | Some scr, Some one ->
      let procs = Opts.procs opts in
      let crossover =
        List.find_opt
          (fun p -> Report.value_at scr p > Report.value_at one p)
          procs
      in
      let margin p =
        let o = Report.value_at one p in
        if o = 0.0 then 0.0 else 100.0 *. ((Report.value_at scr p /. o) -. 1.0)
      in
      let last = List.fold_left max 1 procs in
      (match crossover with
       | Some p ->
         Printf.printf
           "SCR passes TCP-1 at %d CPU%s and leads %+.1f%% at %d CPUs; at 1 CPU \
            the margin is %+.1f%% (log appends against lock ops, nobody to \
            wait for on either side)\n"
           p
           (if p = 1 then "" else "s")
           (margin last) last (margin 1)
       | None -> print_endline "SCR never passes TCP-1 on this sweep")
    | _ -> ())
  | [] -> ()
