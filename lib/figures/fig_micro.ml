open Pnp_engine
open Pnp_util
open Pnp_harness

let one_point label p v =
  { Report.label; points = [ { Report.procs = p; mean = v; ci90 = 0.0 } ] }

(* Pure checksum load: threads stream cold data through the bus.  Each
   processor count is an independent simulation, so the sweep fans out
   over the worker pool. *)
let checksum_points opts =
  let chunk = 65536 in
  Pool.map
    (fun procs ->
      let plat = Platform.create ~seed:7 Arch.challenge_100 in
      let done_bytes = ref 0 in
      for i = 0 to procs - 1 do
        ignore
          (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "ck%d" i) (fun () ->
               while true do
                 Membus.consume plat.Platform.bus ~bytes:chunk;
                 done_bytes := !done_bytes + chunk
               done))
      done;
      let horizon = opts.Opts.measure in
      Sim.run ~until:horizon plat.Platform.sim;
      let mb_per_s = float_of_int !done_bytes /. 1e6 /. Units.ns_to_sec horizon in
      (procs, mb_per_s))
    (Opts.procs opts)

let checksum_bandwidth_data opts =
  let data = checksum_points opts in
  let point (p, mb) = { Report.procs = p; mean = mb; ci90 = 0.0 } in
  [
    Report.table ~title:"Checksum bandwidth (cold data)" ~unit_label:"MB/s"
      [
        { Report.label = "aggregate"; points = List.map point data };
        {
          Report.label = "per-cpu";
          points = List.map (fun (p, mb) -> point (p, mb /. float_of_int p)) data;
        };
      ];
  ]

let checksum_bandwidth_present _opts tables =
  let data =
    match tables with
    | { Report.series = agg :: _; _ } :: _ ->
      List.map (fun (p : Report.point) -> (p.Report.procs, p.Report.mean)) agg.Report.points
    | _ -> []
  in
  Printf.printf
    "\n== Section 3.2 micro-benchmark: checksum bandwidth (cold data) ==\n";
  Printf.printf "%-6s %14s %14s\n" "procs" "aggregate MB/s" "per-CPU MB/s";
  List.iter
    (fun (p, mb) -> Printf.printf "%-6d %14.1f %14.1f\n" p mb (mb /. float_of_int p))
    data;
  let arch = Arch.challenge_100 in
  Printf.printf
    "bus %.0f MB/s / %.0f MB/s per CPU => supports ~%.0f checksumming CPUs (paper: 38)\n"
    arch.Arch.bus_mb_per_s arch.Arch.cksum_mb_per_s
    (arch.Arch.bus_mb_per_s /. arch.Arch.cksum_mb_per_s);
  flush stdout

let udp_recv_cfg opts ~map_locking procs =
  Opts.apply opts
    (Config.v ~protocol:Config.Udp ~side:Config.Recv ~payload:4096 ~checksum:true
       ~map_locking ~procs ())

let map_locking_data opts =
  let p = opts.Opts.max_procs in
  let tput ml =
    (Run.throughput_summary (udp_recv_cfg opts ~map_locking:ml p) ~seeds:opts.Opts.seeds)
      .Stats.mean
  in
  let locked = tput true in
  let unlocked = tput false in
  [
    Report.table ~title:"Demux map locking (UDP recv)" ~unit_label:"Mbit/s"
      [ one_point "maps-locked" p locked; one_point "maps-unlocked" p unlocked ];
  ]

let map_locking_present opts tables =
  let p = opts.Opts.max_procs in
  let locked, unlocked =
    match tables with
    | { Report.series = [ l; u ]; _ } :: _ -> (Report.value_at l p, Report.value_at u p)
    | _ -> (0.0, 0.0)
  in
  Printf.printf
    "\n== Section 3.1 aside: demultiplexing map locks (UDP recv, %d CPUs) ==\n" p;
  Printf.printf "maps locked:   %8.1f Mbit/s\n" locked;
  Printf.printf "maps unlocked: %8.1f Mbit/s  (+%.1f%%; paper: ~10%%)\n" unlocked
    (100.0 *. (unlocked -. locked) /. locked);
  flush stdout

let lock_profile_data opts =
  let p = opts.Opts.max_procs in
  let wait side =
    let cfg =
      Opts.apply opts
        (Config.v ~protocol:Config.Tcp ~side ~payload:4096 ~checksum:true ~procs:p ())
    in
    let results = Run.run_seeds cfg ~seeds:opts.Opts.seeds in
    Pnp_util.Stats.mean (List.map (fun r -> r.Run.lock_wait_pct) results)
  in
  let recv = wait Config.Recv in
  let send = wait Config.Send in
  [
    Report.table ~title:"Connection-lock wait profile" ~unit_label:"% of thread time"
      [ one_point "recv" p recv; one_point "send" p send ];
  ]

let lock_profile_present opts tables =
  let p = opts.Opts.max_procs in
  let recv, send =
    match tables with
    | { Report.series = [ r; s ]; _ } :: _ -> (Report.value_at r p, Report.value_at s p)
    | _ -> (0.0, 0.0)
  in
  Printf.printf
    "\n== Section 3 profile: time waiting on the TCP connection-state lock (%d CPUs) ==\n"
    p;
  Printf.printf "receive side: %5.1f%% of thread time  (paper: 90%%)\n" recv;
  Printf.printf "send side:    %5.1f%% of thread time  (paper: 85%%)\n" send;
  flush stdout
