open Pnp_engine
open Pnp_util
open Pnp_harness

(* Pure checksum load: threads stream cold data through the bus. *)
let checksum_bandwidth_data opts =
  let chunk = 65536 in
  List.map
    (fun procs ->
      let plat = Platform.create ~seed:7 Arch.challenge_100 in
      let done_bytes = ref 0 in
      for i = 0 to procs - 1 do
        ignore
          (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "ck%d" i) (fun () ->
               while true do
                 Membus.consume plat.Platform.bus ~bytes:chunk;
                 done_bytes := !done_bytes + chunk
               done))
      done;
      let horizon = opts.Opts.measure in
      Sim.run ~until:horizon plat.Platform.sim;
      let mb_per_s = float_of_int !done_bytes /. 1e6 /. Units.ns_to_sec horizon in
      (procs, mb_per_s))
    (Opts.procs opts)

let checksum_bandwidth opts =
  let data = checksum_bandwidth_data opts in
  Json_out.add_table ~title:"Checksum bandwidth (cold data)" ~unit_label:"MB/s"
    ~series:
      [
        ("aggregate", List.map (fun (p, mb) -> (p, mb, 0.0)) data);
        ("per-cpu", List.map (fun (p, mb) -> (p, mb /. float_of_int p, 0.0)) data);
      ];
  Printf.printf
    "\n== Section 3.2 micro-benchmark: checksum bandwidth (cold data) ==\n";
  Printf.printf "%-6s %14s %14s\n" "procs" "aggregate MB/s" "per-CPU MB/s";
  List.iter
    (fun (p, mb) -> Printf.printf "%-6d %14.1f %14.1f\n" p mb (mb /. float_of_int p))
    data;
  let arch = Arch.challenge_100 in
  Printf.printf
    "bus %.0f MB/s / %.0f MB/s per CPU => supports ~%.0f checksumming CPUs (paper: 38)\n"
    arch.Arch.bus_mb_per_s arch.Arch.cksum_mb_per_s
    (arch.Arch.bus_mb_per_s /. arch.Arch.cksum_mb_per_s);
  flush stdout

let udp_recv_cfg opts ~map_locking procs =
  Opts.apply opts
    (Config.v ~protocol:Config.Udp ~side:Config.Recv ~payload:4096 ~checksum:true
       ~map_locking ~procs ())

let map_locking_data opts =
  let p = opts.Opts.max_procs in
  let tput ml =
    (Run.throughput_summary (udp_recv_cfg opts ~map_locking:ml p) ~seeds:opts.Opts.seeds)
      .Stats.mean
  in
  (tput true, tput false)

let map_locking opts =
  let locked, unlocked = map_locking_data opts in
  let p = opts.Opts.max_procs in
  Json_out.add_table ~title:"Demux map locking (UDP recv)" ~unit_label:"Mbit/s"
    ~series:[ ("maps-locked", [ (p, locked, 0.0) ]); ("maps-unlocked", [ (p, unlocked, 0.0) ]) ];
  Printf.printf
    "\n== Section 3.1 aside: demultiplexing map locks (UDP recv, %d CPUs) ==\n"
    opts.Opts.max_procs;
  Printf.printf "maps locked:   %8.1f Mbit/s\n" locked;
  Printf.printf "maps unlocked: %8.1f Mbit/s  (+%.1f%%; paper: ~10%%)\n" unlocked
    (100.0 *. (unlocked -. locked) /. locked);
  flush stdout

let lock_profile_data opts =
  let p = opts.Opts.max_procs in
  let wait side =
    let cfg =
      Opts.apply opts
        (Config.v ~protocol:Config.Tcp ~side ~payload:4096 ~checksum:true ~procs:p ())
    in
    let results = Run.run_seeds cfg ~seeds:opts.Opts.seeds in
    Pnp_util.Stats.mean (List.map (fun r -> r.Run.lock_wait_pct) results)
  in
  (wait Config.Recv, wait Config.Send)

let lock_profile opts =
  let recv, send = lock_profile_data opts in
  let p = opts.Opts.max_procs in
  Json_out.add_table ~title:"Connection-lock wait profile" ~unit_label:"% of thread time"
    ~series:[ ("recv", [ (p, recv, 0.0) ]); ("send", [ (p, send, 0.0) ]) ];
  Printf.printf
    "\n== Section 3 profile: time waiting on the TCP connection-state lock (%d CPUs) ==\n"
    opts.Opts.max_procs;
  Printf.printf "receive side: %5.1f%% of thread time  (paper: 90%%)\n" recv;
  Printf.printf "send side:    %5.1f%% of thread time  (paper: 85%%)\n" send;
  flush stdout
