open Pnp_harness

let series opts =
  let series label ~side ~message_caching =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun procs ->
        Opts.apply opts
          (Config.v ~protocol:Config.Tcp ~side ~payload:4096 ~checksum:true
             ~message_caching ~procs ()))
  in
  [
    series "recv cached" ~side:Config.Recv ~message_caching:true;
    series "recv not cached" ~side:Config.Recv ~message_caching:false;
    series "send cached" ~side:Config.Send ~message_caching:true;
    series "send not cached" ~side:Config.Send ~message_caching:false;
  ]

let fig16_data opts =
  [
    Report.table
      ~title:"Figure 16: TCP Message Caching Impact (4KB, checksum on)"
      ~unit_label:"Mbit/s" (series opts);
  ]
