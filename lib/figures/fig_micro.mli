(** The smaller measurements quoted in the text.

    - Section 3.2's checksum micro-benchmark: each CPU checksums
      cache-missing data at ~32 MB/s against a 1.2 GB/s bus, so about 38
      processors could do nothing but checksum.
    - Section 3.1's aside: running the receive test without locking the
      demultiplexing maps buys about 10%.
    - Section 3's profile: at 8 CPUs, 90% (receive) / 85% (send) of time
      is spent waiting for the TCP connection-state lock.

    Each measurement is split into a pure [_data] phase (safe on worker
    domains) and a [_present] phase that reprints the table in the
    prose-style format the text uses (stdout, main domain only). *)

val checksum_points : Opts.t -> (int * float) list
(** (processors, aggregate MB/s) for pure checksumming. *)

val checksum_bandwidth_data : Opts.t -> Pnp_harness.Report.table list
val checksum_bandwidth_present : Opts.t -> Pnp_harness.Report.table list -> unit

val map_locking_data : Opts.t -> Pnp_harness.Report.table list
(** UDP receive throughput at [max_procs] with map locking on and off. *)

val map_locking_present : Opts.t -> Pnp_harness.Report.table list -> unit

val lock_profile_data : Opts.t -> Pnp_harness.Report.table list
(** (recv, send) percentage of thread time spent waiting on the TCP
    connection-state lock at [max_procs] CPUs. *)

val lock_profile_present : Opts.t -> Pnp_harness.Report.table list -> unit
