(** The ext-incast figure: heavy-traffic overload scenarios
    ({!Pnp_harness.Overload}) — incast fan-in to 10^3 senders and a
    shared-bottleneck fairness workload, on a clean link and under the
    Gilbert-Elliott burst-loss profile.  Tables: goodput, Jain fairness,
    p99 completion latency, accounted drops, and the oracle/watchdog
    findings count (0 everywhere = graceful degradation). *)

val incast_data : Opts.t -> Pnp_harness.Report.table list
val incast_present : Opts.t -> Pnp_harness.Report.table list -> unit
