(** Figure 12: TCP with multiple connections (Section 4.3).

    One connection per processor, TCP-1 with MCS locks and no ticketing:
    throughput grows steadily as connections (and processors) are added,
    because the per-connection state lock is no longer shared.

    Data phase only (pure sweep; safe on worker domains). *)

val series : Opts.t -> Pnp_harness.Report.series list
val fig12_data : Opts.t -> Pnp_harness.Report.table list
