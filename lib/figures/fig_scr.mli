(** The ext-scr extension figure: state-compute replication ([Tcp.Scr])
    and the read-mostly hybrid ([Tcp.Rcu]) against the paper's lock
    ladder (TCP-1/2/6) on the receive side, at 1 and 4 connections, with
    a cost ledger putting SCR's replays-per-append and resyncs next to
    the locked disciplines' lock-wait share. *)

val scr_data : Opts.t -> Pnp_harness.Report.table list
val scr_present : Opts.t -> Pnp_harness.Report.table list -> unit
