open Pnp_harness

let variants =
  [
    ("4KB ck-off", 4096, false);
    ("4KB ck-on", 4096, true);
    ("1KB ck-off", 1024, false);
    ("1KB ck-on", 1024, true);
  ]

let series opts ~protocol ~side =
  List.map
    (fun (label, payload, checksum) ->
      Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
        (fun procs ->
          Opts.apply opts (Config.v ~protocol ~side ~payload ~checksum ~procs ())))
    variants

let pair ~what ~fig_tput ~fig_speedup series =
  [
    Report.table
      ~title:(Printf.sprintf "Figure %d: %s Throughputs" fig_tput what)
      ~unit_label:"Mbit/s" series;
    Report.table
      ~title:(Printf.sprintf "Figure %d: %s Speedup" fig_speedup what)
      ~unit_label:"x vs 1 CPU"
      (List.map Report.speedup series);
  ]

let fig2_3_data opts =
  pair ~what:"UDP Send Side" ~fig_tput:2 ~fig_speedup:3
    (series opts ~protocol:Config.Udp ~side:Config.Send)

let fig4_5_data opts =
  pair ~what:"UDP Receive Side" ~fig_tput:4 ~fig_speedup:5
    (series opts ~protocol:Config.Udp ~side:Config.Recv)

let fig6_7_data opts =
  pair ~what:"TCP Send Side" ~fig_tput:6 ~fig_speedup:7
    (series opts ~protocol:Config.Tcp ~side:Config.Send)

let fig8_9_data opts =
  pair ~what:"TCP Receive Side" ~fig_tput:8 ~fig_speedup:9
    (series opts ~protocol:Config.Tcp ~side:Config.Recv)
