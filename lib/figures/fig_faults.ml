open Pnp_engine
open Pnp_harness

(* Loss rates chosen to bracket the goodput knee: 0.3% is mostly repaired
   by fast retransmit, 1% forces regular retransmission timeouts, and 3%
   keeps TCP in recovery most of the time. *)
let losses = [ 0.0; 0.003; 0.01; 0.03 ]

(* Loss recovery runs on the BSD slow-timeout clock: the retransmission
   timer is floored at two 500 ms ticks, so every lost recovery segment
   stalls the connection for about a second.  The measurement window must
   span several such stall/burst cycles or the per-seed numbers
   degenerate into "caught a stall" zeros versus "missed every stall"
   full rate — hence 8x the sweep's usual window (4 s under the
   defaults; the residual cycle-lottery variance shows up honestly in
   the printed confidence intervals). *)
let measure_scale = 8

let send_cfg opts ~lock_disc ~loss_rate procs =
  let cfg =
    Opts.apply opts
      (Config.v ~protocol:Config.Tcp ~side:Config.Send ~payload:4096 ~checksum:true
         ~lock_disc ~loss_rate ~procs ())
  in
  { cfg with Config.measure = cfg.Config.measure * measure_scale }

let sweep ~metric opts =
  List.concat_map
    (fun loss_rate ->
      List.map
        (fun (dname, lock_disc) ->
          Report.metric_series
            ~label:(Printf.sprintf "loss %g%% (%s)" (loss_rate *. 100.0) dname)
            ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds ~metric
            (fun p -> send_cfg opts ~lock_disc ~loss_rate p))
        [ ("mutex", Lock.Unfair); ("MCS", Lock.Fifo) ])
    losses

let faults_data opts =
  [
    Report.table
      ~title:
        "Extension: goodput under segment loss (TCP send, 4KB, ck-on; unique bytes only)"
      ~unit_label:"Mbit/s goodput"
      (sweep ~metric:(fun r -> r.Run.goodput_mbps) opts);
    Report.table ~title:"The same sweep: retransmitted share of segments sent"
      ~unit_label:"% rexmit"
      (sweep ~metric:(fun r -> r.Run.rexmit_pct) opts);
  ]
