(** Figure 16: per-thread message (MNode) caching in the message tool
    (Section 6).

    Data phase only (pure sweep; safe on worker domains). *)

val series : Opts.t -> Pnp_harness.Report.series list
val fig16_data : Opts.t -> Pnp_harness.Report.table list
