open Pnp_engine
open Pnp_harness

let series opts =
  let series label ~side ~checksum =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun procs ->
        Opts.apply opts
          (Config.v ~protocol:Config.Tcp ~side ~payload:4096 ~checksum
             ~lock_disc:Lock.Fifo ~connections:procs
             ~placement:Config.Connection_level ~procs ()))
  in
  [
    series "recv ck-off" ~side:Config.Recv ~checksum:false;
    series "recv ck-on" ~side:Config.Recv ~checksum:true;
    series "send ck-off" ~side:Config.Send ~checksum:false;
    series "send ck-on" ~side:Config.Send ~checksum:true;
  ]

let fig12_data opts =
  [
    Report.table
      ~title:
        "Figure 12: TCP with Multiple Connections (4KB, MCS, no ticketing, one conn/CPU)"
      ~unit_label:"Mbit/s" (series opts);
  ]
