(** Figure 15: LL/SC atomic increment/decrement vs lock-increment-unlock
    for reference counts (Section 5.2).

    Data phase only (pure sweep; safe on worker domains). *)

val series : Opts.t -> Pnp_harness.Report.series list
val fig15_data : Opts.t -> Pnp_harness.Report.table list
