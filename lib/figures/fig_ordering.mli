(** Section 4: ordering effects.

    Figure 10 compares baseline TCP-1 under raw mutexes, under MCS FIFO
    locks, and a modified TCP that assumes every packet is in order (the
    upper bound).  Table 1 gives the percentage of out-of-order packets
    under both lock types.  Figure 11 measures the cost of preserving
    order above TCP with the ticketing scheme, and Section 4.1's aside
    measures send-side misordering below TCP (< 1%).

    All functions are data phase only (pure sweeps; safe on worker
    domains); the registry's default presenter prints the tables. *)

val fig10_series : Opts.t -> Pnp_harness.Report.series list
val fig10_data : Opts.t -> Pnp_harness.Report.table list

val table1_series : Opts.t -> Pnp_harness.Report.series list
val table1_data : Opts.t -> Pnp_harness.Report.table list

val fig11_data : Opts.t -> Pnp_harness.Report.table list

val send_side_misordering_series : Opts.t -> Pnp_harness.Report.series
val send_side_misordering_data : Opts.t -> Pnp_harness.Report.table list
