(** Figures 2-9: baseline throughput and speedup for UDP and TCP, send and
    receive sides, 1 KB / 4 KB packets, checksumming on and off, on a
    single connection (Section 3).

    Data phase only (pure sweeps; safe on worker domains): each function
    returns the throughput table plus the derived speedup table, and the
    registry's default presenter prints them on the main domain. *)

val series :
  Opts.t ->
  protocol:Pnp_harness.Config.protocol ->
  side:Pnp_harness.Config.side ->
  Pnp_harness.Report.series list
(** The four packet-size x checksum series of one baseline figure. *)

val fig2_3_data : Opts.t -> Pnp_harness.Report.table list
(** UDP send throughput (Fig 2) and speedup (Fig 3). *)

val fig4_5_data : Opts.t -> Pnp_harness.Report.table list
(** UDP receive throughput (Fig 4) and speedup (Fig 5). *)

val fig6_7_data : Opts.t -> Pnp_harness.Report.table list
(** TCP send throughput (Fig 6) and speedup (Fig 7). *)

val fig8_9_data : Opts.t -> Pnp_harness.Report.table list
(** TCP receive throughput (Fig 8) and speedup (Fig 9). *)
