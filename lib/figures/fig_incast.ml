open Pnp_util
open Pnp_harness

(* The ext-incast figure: heavy-traffic overload scenarios from
   {!Pnp_harness.Overload}.  Incast fans N synchronized senders into one
   server port over one shared link (the SYN burst overruns the
   listener's bounded backlog and is recovered by retransmission);
   the shared-bottleneck workload paces N long flows onto a slower link
   and asks how evenly TCP divides it.  Every cell runs under the
   liveness watchdog and the {!Pnp_analysis.Recovery.check_overload}
   oracle, so the findings row is itself a result: 0 means the run
   degraded gracefully — every byte delivered exactly or accounted to a
   named drop cause. *)

let burst_plan =
  match Pnp_faults.Faults.find "burst" with
  | Some p -> p
  | None -> invalid_arg "fig_incast: missing builtin plan \"burst\""

(* Series: the clean link vs the Gilbert-Elliott burst-loss WAN profile
   (the hardest of the built-in plans for a synchronized burst: a bad
   state swallows whole runs of the SYN wave). *)
let plans = [ ("baseline", Pnp_faults.Faults.none); ("burst", burst_plan) ]

(* Reduced smoke sweeps (the CI determinism job runs with a 100 ms
   window) scale the fan-in down; the full figure reaches 10^3
   simultaneous senders through the sharded demux. *)
let incast_axis opts =
  if opts.Opts.measure < Units.ms 250.0 then [ 8; 32 ] else [ 32; 100; 320; 1000 ]

let bottleneck_axis opts =
  if opts.Opts.measure < Units.ms 250.0 then [ 4; 8 ] else [ 4; 8; 16 ]

(* Keep the aggregate transfer roughly constant across the axis so the
   x-axis varies contention, not workload size. *)
let bytes_per_flow senders = min 8192 (2_000_000 / senders)

let p99_ms (o : Overload.outcome) =
  match o.Overload.completion_ns with
  | [] -> 0.0
  | cs -> Report.percentile 99.0 (List.map (fun (_, ns) -> float_of_int ns /. 1e6) cs)

(* The sweep axis is the sender count, not processors; encode it directly
   in the integer [procs] field (the presenter and the JSON export read
   it back as senders). *)
let point senders v = { Report.procs = senders; mean = v; ci90 = 0.0 }

let series plans axis results pick =
  List.mapi
    (fun i (name, _) ->
      let points =
        List.mapi
          (fun j senders ->
            point senders (pick (List.nth results ((i * List.length axis) + j))))
          axis
      in
      { Report.label = name; points })
    plans

let incast_data opts =
  let iaxis = incast_axis opts in
  let baxis = bottleneck_axis opts in
  let icells =
    List.concat_map
      (fun (_, plan) ->
        List.map
          (fun senders () ->
            Overload.incast ~plan ~senders ~bytes_per_flow:(bytes_per_flow senders) ())
          iaxis)
      plans
  in
  let bcells =
    List.concat_map
      (fun (_, plan) ->
        List.map (fun senders () -> Overload.shared_bottleneck ~plan ~senders ()) baxis)
      plans
  in
  let results = Pool.map (fun cell -> cell ()) (icells @ bcells) in
  (* [Pool.map] preserves order: the first |plans|*|iaxis| results are the
     incast cells, chunked one run of the axis per plan; the rest are the
     bottleneck cells in the same layout. *)
  let n_incast = List.length icells in
  let iresults = List.filteri (fun i _ -> i < n_incast) results in
  let bresults = List.filteri (fun i _ -> i >= n_incast) results in
  let iseries = series plans iaxis iresults in
  let bseries = series plans baxis bresults in
  [
    Report.table ~title:"Extension: incast goodput (x-axis: senders)"
      ~unit_label:"Mbit/s"
      (iseries (fun o -> o.Overload.goodput_mbps));
    Report.table ~title:"Extension: incast fairness (x-axis: senders)"
      ~unit_label:"Jain index"
      (iseries (fun o -> o.Overload.fairness));
    Report.table
      ~title:"Extension: incast p99 connect-to-done latency (x-axis: senders)"
      ~unit_label:"ms" (iseries p99_ms);
    Report.table
      ~title:"Extension: incast accounted drops, all named causes (x-axis: senders)"
      ~unit_label:"frames"
      (iseries (fun o ->
           float_of_int (Pnp_analysis.Recovery.total_drops o.Overload.drops)));
    Report.table
      ~title:
        "Extension: incast oracle + watchdog findings — 0 everywhere means \
         graceful degradation (x-axis: senders)"
      ~unit_label:"findings"
      (iseries (fun o -> float_of_int (List.length o.Overload.findings)));
    Report.table
      ~title:"Extension: shared-bottleneck fairness (x-axis: flows)"
      ~unit_label:"Jain index"
      (bseries (fun o -> o.Overload.fairness));
    Report.table
      ~title:
        "Extension: shared-bottleneck p99 connect-to-done latency (x-axis: flows)"
      ~unit_label:"ms" (bseries p99_ms);
  ]

let incast_present _opts tables =
  Printf.printf
    "\n== Extension: overload robustness (incast fan-in, shared bottleneck) ==\n";
  Printf.printf
    "N senders connect to one server port at the same instant over one \n\
     100 Mbit/s link (incast): the SYN wave overruns the 16-entry listener \n\
     backlog, the drops are counted, and SYN retransmission recovers every \n\
     connection.  The burst series adds Gilbert-Elliott two-state loss on \n\
     the wire.  The shared-bottleneck workload paces long flows onto a \n\
     40 Mbit/s link and reports how evenly TCP divides it.  Every cell runs \n\
     under the liveness watchdog and the overload oracle: a findings value \n\
     of 0 asserts that every flow's bytes arrived exactly or are accounted \n\
     to a named drop cause — no silent loss, no hang.\n";
  List.iter Report.print tables;
  Printf.printf
    "Goodput holds (retransmission recovers what the backlog and the wire \n\
     shed) while p99 latency absorbs the damage — backoff on a lossy burst \n\
     state stretches the tail by orders of magnitude.  Fairness stays near \n\
     1.0: the losses spread over flows instead of starving a few.\n";
  flush stdout
