open Pnp_engine
open Pnp_harness

let recv_cfg opts ?(lock_disc = Lock.Unfair) ?(assume_in_order = false)
    ?(ticketing = false) ?(checksum = true) procs =
  Opts.apply opts
    (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum ~lock_disc
       ~assume_in_order ~ticketing ~procs ())

let fig10_series opts =
  let series label mk =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds mk
  in
  [
    series "Assumed In-Order" (fun p -> recv_cfg opts ~assume_in_order:true p);
    series "MCS Locks" (fun p -> recv_cfg opts ~lock_disc:Lock.Fifo p);
    series "Mutex Locks" (fun p -> recv_cfg opts p);
  ]

let fig10_data opts =
  [
    Report.table
      ~title:"Figure 10: Ordering Effects in TCP (recv, 4KB, checksum on)"
      ~unit_label:"Mbit/s" (fig10_series opts);
  ]

let table1_series opts =
  let series label disc =
    Report.metric_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      ~metric:(fun r -> r.Run.ooo_pct)
      (fun p -> recv_cfg opts ~lock_disc:disc p)
  in
  [ series "Mutex Locks" Lock.Unfair; series "MCS Locks" Lock.Fifo ]

let table1_data opts =
  [
    Report.table
      ~title:"Table 1: Percentage of packets out-of-order (recv, 4KB, checksum on)"
      ~unit_label:"% out-of-order" (table1_series opts);
  ]

let fig11_data opts =
  let series label ~checksum ~ticketing =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun p -> recv_cfg opts ~checksum ~ticketing p)
  in
  [
    Report.table
      ~title:"Figure 11: Ticketing Effects in TCP (recv, 4KB)"
      ~unit_label:"Mbit/s"
      [
        series "ck-off no-ticket" ~checksum:false ~ticketing:false;
        series "ck-on  no-ticket" ~checksum:true ~ticketing:false;
        series "ck-off ticketing" ~checksum:false ~ticketing:true;
        series "ck-on  ticketing" ~checksum:true ~ticketing:true;
      ];
  ]

let send_side_misordering_series opts =
  Report.metric_series ~label:"wire misordered"
    ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
    ~metric:(fun r -> r.Run.wire_misorder_pct)
    (fun procs ->
      Opts.apply opts
        (Config.v ~protocol:Config.Tcp ~side:Config.Send ~payload:4096 ~checksum:true
           ~procs ()))

let send_side_misordering_data opts =
  [
    Report.table
      ~title:"Section 4.1 aside: send-side misordering below TCP (expect < 1%)"
      ~unit_label:"% of data segments"
      [ send_side_misordering_series opts ];
  ]
