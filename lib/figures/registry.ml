open Pnp_harness

type entry = {
  id : string;
  title : string;
  data : Opts.t -> Report.table list;
  present : Opts.t -> Report.table list -> unit;
}

let print_tables _opts tables = List.iter Report.print tables
let entry ?(present = print_tables) id title data = { id; title; data; present }

let all =
  [
    entry "fig2-3" "UDP send throughput & speedup" Fig_baseline.fig2_3_data;
    entry "fig4-5" "UDP receive throughput & speedup" Fig_baseline.fig4_5_data;
    entry "fig6-7" "TCP send throughput & speedup" Fig_baseline.fig6_7_data;
    entry "fig8-9" "TCP receive throughput & speedup" Fig_baseline.fig8_9_data;
    entry "fig10" "Ordering effects in TCP" Fig_ordering.fig10_data;
    entry "table1" "% packets out-of-order, mutex vs MCS" Fig_ordering.table1_data;
    entry "fig11" "Ticketing effects in TCP" Fig_ordering.fig11_data;
    entry "send-ooo" "Send-side misordering below TCP (Section 4.1)"
      Fig_ordering.send_side_misordering_data;
    entry "fig12" "TCP with multiple connections" Fig_multiconn.fig12_data;
    entry "fig13" "TCP send-side locking comparison" Fig_locking.fig13_data;
    entry "fig14" "TCP receive-side locking comparison" Fig_locking.fig14_data;
    entry "fig15" "Atomic operations impact" Fig_atomics.fig15_data;
    entry "fig16" "Message caching impact" Fig_caching.fig16_data;
    entry "fig17-18" "TCP across architectures" Fig_archcmp.fig17_18_data;
    entry "micro-cksum" "Checksum bandwidth micro-benchmark (Section 3.2)"
      Fig_micro.checksum_bandwidth_data ~present:Fig_micro.checksum_bandwidth_present;
    entry "micro-maps" "Demux map locking aside (Section 3.1)" Fig_micro.map_locking_data
      ~present:Fig_micro.map_locking_present;
    entry "micro-lockwait" "Connection-lock wait profile (Section 3)"
      Fig_micro.lock_profile_data ~present:Fig_micro.lock_profile_present;
    entry "ext-clp"
      "Future work (Section 8): connection-level vs packet-level parallelism"
      Fig_extensions.clp_vs_plp_data ~present:Fig_extensions.clp_vs_plp_present;
    entry "ext-grant" "Ablation: lock grant policy vs misordering"
      Fig_extensions.grant_policy_data;
    entry "ext-coherency" "Ablation: cache-line migration penalty"
      Fig_extensions.coherency_data;
    entry "ext-jitter" "Ablation: driver jitter vs MCS misordering"
      Fig_extensions.jitter_data;
    entry "ext-pres"
      "Extension: presentation-layer conversion vs speedup (Section 3.2 contrast)"
      Fig_extensions.presentation_data;
    entry "ext-cksum-lock" "Ablation: checksum placement relative to the state lock"
      Fig_extensions.cksum_placement_data;
    entry "ext-faults" "Extension: goodput & retransmit rate under segment loss"
      Fig_faults.faults_data;
    entry "ext-steering"
      "Extension: packet steering at 10^5 connections (RSS vs Flow Director)"
      Fig_steering.steering_data ~present:Fig_steering.steering_present;
    entry "ext-incast"
      "Extension: overload robustness (incast fan-in, shared bottleneck)"
      Fig_incast.incast_data ~present:Fig_incast.incast_present;
    entry "ext-scr"
      "Extension: state-compute replication vs the lock ladder (log replay)"
      Fig_scr.scr_data ~present:Fig_scr.scr_present;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* Compute on the pool, then present and export on the calling domain.
   Wall clock (not CPU time — the whole point of [-j] is that they
   differ) around the data phase only, so the recorded elapsed_s tracks
   the parallel sweep and not terminal I/O. *)
let run_entry ?(json = Json_out.disabled) e opts =
  let h0 = Hostprof.snapshot () in
  let tables = e.data opts in
  let host = Hostprof.delta h0 (Hostprof.snapshot ()) in
  e.present opts tables;
  Json_out.write_figure json ~id:e.id ~jobs:(Pool.jobs ())
    ~elapsed_s:host.Hostprof.elapsed_s ~host tables

let run_all ?json opts =
  List.iter
    (fun e ->
      Printf.printf "\n###### %s: %s ######\n%!" e.id e.title;
      run_entry ?json e opts)
    all
