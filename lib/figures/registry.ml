type entry = { id : string; title : string; run : Opts.t -> unit }

let all =
  [
    { id = "fig2-3"; title = "UDP send throughput & speedup"; run = Fig_baseline.fig2_3 };
    { id = "fig4-5"; title = "UDP receive throughput & speedup"; run = Fig_baseline.fig4_5 };
    { id = "fig6-7"; title = "TCP send throughput & speedup"; run = Fig_baseline.fig6_7 };
    { id = "fig8-9"; title = "TCP receive throughput & speedup"; run = Fig_baseline.fig8_9 };
    { id = "fig10"; title = "Ordering effects in TCP"; run = Fig_ordering.fig10 };
    { id = "table1"; title = "% packets out-of-order, mutex vs MCS"; run = Fig_ordering.table1 };
    { id = "fig11"; title = "Ticketing effects in TCP"; run = Fig_ordering.fig11 };
    {
      id = "send-ooo";
      title = "Send-side misordering below TCP (Section 4.1)";
      run = Fig_ordering.send_side_misordering;
    };
    { id = "fig12"; title = "TCP with multiple connections"; run = Fig_multiconn.fig12 };
    { id = "fig13"; title = "TCP send-side locking comparison"; run = Fig_locking.fig13 };
    { id = "fig14"; title = "TCP receive-side locking comparison"; run = Fig_locking.fig14 };
    { id = "fig15"; title = "Atomic operations impact"; run = Fig_atomics.fig15 };
    { id = "fig16"; title = "Message caching impact"; run = Fig_caching.fig16 };
    { id = "fig17-18"; title = "TCP across architectures"; run = Fig_archcmp.fig17_18 };
    {
      id = "micro-cksum";
      title = "Checksum bandwidth micro-benchmark (Section 3.2)";
      run = Fig_micro.checksum_bandwidth;
    };
    {
      id = "micro-maps";
      title = "Demux map locking aside (Section 3.1)";
      run = Fig_micro.map_locking;
    };
    {
      id = "micro-lockwait";
      title = "Connection-lock wait profile (Section 3)";
      run = Fig_micro.lock_profile;
    };
    {
      id = "ext-clp";
      title = "Future work (Section 8): connection-level vs packet-level parallelism";
      run = Fig_extensions.clp_vs_plp;
    };
    {
      id = "ext-grant";
      title = "Ablation: lock grant policy vs misordering";
      run = Fig_extensions.grant_policy;
    };
    {
      id = "ext-coherency";
      title = "Ablation: cache-line migration penalty";
      run = Fig_extensions.coherency;
    };
    {
      id = "ext-jitter";
      title = "Ablation: driver jitter vs MCS misordering";
      run = Fig_extensions.jitter;
    };
    {
      id = "ext-pres";
      title = "Extension: presentation-layer conversion vs speedup (Section 3.2 contrast)";
      run = Fig_extensions.presentation;
    };
    {
      id = "ext-cksum-lock";
      title = "Ablation: checksum placement relative to the state lock";
      run = Fig_extensions.cksum_placement;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* Run one entry with its tables mirrored to BENCH_<id>.json when JSON
   export is on (Json_out.set_dir); a plain pass-through otherwise. *)
let run_entry e opts = Pnp_harness.Json_out.with_figure e.id (fun () -> e.run opts)

let run_all opts =
  List.iter
    (fun e ->
      Printf.printf "\n###### %s: %s ######\n%!" e.id e.title;
      run_entry e opts)
    all
