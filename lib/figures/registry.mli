(** Index of every reproducible figure and table. *)

type entry = {
  id : string;          (** e.g. "fig8", "table1", "micro-cksum" *)
  title : string;
  run : Opts.t -> unit;
}

val all : entry list

val find : string -> entry option

val run_entry : entry -> Opts.t -> unit
(** Run one figure, mirroring its tables to [BENCH_<id>.json] when JSON
    export is enabled via {!Pnp_harness.Json_out.set_dir}. *)

val run_all : Opts.t -> unit
(** Regenerate every figure and table in order (via {!run_entry}). *)
