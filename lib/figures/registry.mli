(** Index of every reproducible figure and table.

    Each entry is split into a pure [data] phase that runs the sweeps
    (on the {!Pnp_harness.Pool} worker domains) and returns its result
    tables, and a [present] phase that formats them on the calling
    domain.  Most entries use the default presenter (aligned tables via
    {!Pnp_harness.Report.print}); the micro-benchmarks and the
    CLP-vs-PLP extension keep their prose-style output via custom
    presenters. *)

type entry = {
  id : string;          (** e.g. "fig8", "table1", "micro-cksum" *)
  title : string;
  data : Opts.t -> Pnp_harness.Report.table list;
      (** Pure sweep: no printing, no global state. *)
  present : Opts.t -> Pnp_harness.Report.table list -> unit;
      (** Print the tables on stdout; main domain only. *)
}

val print_tables : Opts.t -> Pnp_harness.Report.table list -> unit
(** The default presenter: print each table in order. *)

val entry :
  ?present:(Opts.t -> Pnp_harness.Report.table list -> unit) ->
  string ->
  string ->
  (Opts.t -> Pnp_harness.Report.table list) ->
  entry

val all : entry list

val find : string -> entry option

val run_entry : ?json:Pnp_harness.Json_out.ctx -> entry -> Opts.t -> unit
(** Time the data phase (wall clock), present the tables, and mirror
    them to [BENCH_<id>.json] — stamped with the [-j] level and the data
    phase's elapsed seconds — when [json] is an enabled context. *)

val run_all : ?json:Pnp_harness.Json_out.ctx -> Opts.t -> unit
(** Regenerate every figure and table in order (via {!run_entry}). *)
