open Pnp_engine
open Pnp_proto
open Pnp_harness

let variants =
  [
    ("TCP-1 4KB", Tcp.One, 4096);
    ("TCP-2 4KB", Tcp.Two, 4096);
    ("TCP-6 4KB", Tcp.Six, 4096);
    ("TCP-1 1KB", Tcp.One, 1024);
    ("TCP-2 1KB", Tcp.Two, 1024);
    ("TCP-6 1KB", Tcp.Six, 1024);
  ]

let series opts ~side =
  List.map
    (fun (label, tcp_locking, payload) ->
      Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
        (fun procs ->
          Opts.apply opts
            (Config.v ~protocol:Config.Tcp ~side ~payload ~checksum:true
               ~lock_disc:Lock.Fifo ~tcp_locking ~procs ())))
    variants

let fig13_data opts =
  [
    Report.table
      ~title:"Figure 13: TCP Send-Side Locking Comparison (checksum on, MCS)"
      ~unit_label:"Mbit/s"
      (series opts ~side:Config.Send);
  ]

let fig14_data opts =
  [
    Report.table
      ~title:"Figure 14: TCP Receive-Side Locking Comparison (checksum on, MCS)"
      ~unit_label:"Mbit/s"
      (series opts ~side:Config.Recv);
  ]
