open Pnp_engine
open Pnp_util
open Pnp_driver
open Pnp_harness

(* The ext-steering figure: TCP receive behind a virtual multi-queue NIC
   ({!Pnp_driver.Steer}), demultiplexing through the sharded map manager,
   at connection counts far beyond what the single-lock map (or the
   16-bit port space) could carry.  RSS-style [Hash] steering keeps each
   connection's segments on one worker — serial and in order — while
   Flow-Director-style [Last_sender] affinity follows the migrating
   application thread and reorders segments that are still queued on the
   old worker.  The cost shows up as a widening reorder window and a
   collapsing header-prediction hit rate. *)

let policies = [ Steer.Hash; Steer.Last_sender ]

(* Reduced smoke sweeps (the CI determinism job runs with a 100 ms
   window) scale the connection axis down; the full figure reaches 10^5
   simultaneous connections. *)
let conns_axis opts =
  if opts.Opts.measure < Units.ms 250.0 then [ 1_000; 4_000; 16_000 ]
  else [ 1_000; 10_000; 100_000 ]

(* Reordering needs at least two workers; sweep the top of the CPU range
   only — the interesting axis here is connections, not speedup. *)
let cpus_axis opts =
  let m = opts.Opts.max_procs in
  match List.sort_uniq compare (List.filter (fun p -> p >= 2) [ m / 2; m ]) with
  | [] -> [ max 1 m ]
  | l -> l

let demux_shards = 64

(* Accepting 10^5 connections takes real simulated time (the handshakes
   are spread over the workers, ~100 us each, plus the per-session timers
   filling the wheel), so each cell's warmup grows with its population;
   the configured warmup is kept on top as the post-handshake settle. *)
let cell_cfg opts ~policy ~cpus ~conns =
  let cfg =
    Opts.apply opts
      (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
         ~lock_disc:Lock.Unfair ~connections:conns ~steering:policy
         ~demux_shards ~procs:cpus ())
  in
  {
    cfg with
    Config.warmup =
      cfg.Config.warmup + Units.ms (0.5 *. float_of_int conns /. float_of_int cpus);
  }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* One traced run (base seed) per cell: throughput and prediction misses
   from the aggregate counters, the reorder window from the lock-grant
   stream of the same measurement window.  Only connection-state locks
   ("<tcp>.conn:...") are meaningful for the window: each serialises one
   connection's segments, so its grant stream compares like with like,
   whereas shared locks (NIC demux, rings, map shards) interleave every
   connection's sequence space.  [max_window] is a sequence-number
   distance — bytes — so divide by the payload to get packets. *)
let cell_metrics opts ~policy ~cpus ~conns =
  let result, trace = Run.run_traced (cell_cfg opts ~policy ~cpus ~conns) in
  let window_bytes =
    List.fold_left
      (fun acc (s : Pnp_analysis.Order_check.lock_stat) ->
        if contains ~sub:".conn:" s.Pnp_analysis.Order_check.lock then
          max acc s.Pnp_analysis.Order_check.max_window
        else acc)
      0
      (Pnp_analysis.Order_check.stats trace)
  in
  ( result.Run.throughput_mbps,
    float_of_int window_bytes /. 4096.0,
    result.Run.pred_miss_pct )

let series_keys opts =
  List.concat_map
    (fun policy -> List.map (fun cpus -> (policy, cpus)) (cpus_axis opts))
    policies

let series_label (policy, cpus) =
  Printf.sprintf "%s @%dcpu" (Steer.policy_to_string policy) cpus

(* The sweep axis is the connection count, not processors; encode
   connections/1000 in the integer [procs] field (the presenter and the
   JSON export read it back as kilo-connections). *)
let point conns v = { Report.procs = conns / 1000; mean = v; ci90 = 0.0 }

let steering_data opts =
  let conns_axis = conns_axis opts in
  let keys = series_keys opts in
  let cells =
    List.concat_map
      (fun (policy, cpus) -> List.map (fun conns -> (policy, cpus, conns)) conns_axis)
    keys
  in
  let results =
    Pool.map (fun (policy, cpus, conns) -> cell_metrics opts ~policy ~cpus ~conns) cells
  in
  (* [Pool.map] preserves order: chunk the flat result list back into one
     run of [conns_axis] per series key. *)
  let per_key = List.length conns_axis in
  let series pick =
    List.mapi
      (fun i key ->
        let points =
          List.mapi
            (fun j conns ->
              let v = pick (List.nth results ((i * per_key) + j)) in
              point conns v)
            conns_axis
        in
        { Report.label = series_label key; points })
      keys
  in
  [
    Report.table
      ~title:
        "Extension: steered TCP receive throughput (x-axis: connections x 1000)"
      ~unit_label:"Mbit/s"
      (series (fun (t, _, _) -> t));
    Report.table
      ~title:
        "Extension: deepest reorder window in the lock-grant stream (x-axis: \
         connections x 1000)"
      ~unit_label:"packets"
      (series (fun (_, w, _) -> w));
    Report.table
      ~title:
        "Extension: header-prediction miss rate under steering (x-axis: \
         connections x 1000)"
      ~unit_label:"% of data segments"
      (series (fun (_, _, p) -> p));
  ]

let steering_present _opts tables =
  Printf.printf
    "\n== Extension: packet steering at scale (TCP recv, 4KB, ck-on, %d-shard \
     demux) ==\n"
    demux_shards;
  Printf.printf
    "A virtual multi-queue NIC feeds the receive workers.  hash = RSS (a \n\
     connection's frames always steer to one worker); last-sender = Flow \n\
     Director-style affinity that follows the migrating application thread, \n\
     leaving earlier frames queued on the old worker.  One traced run per \n\
     cell (base seed); the reorder window is the deepest sequence-number \n\
     overtake any lock granted in the measurement window.\n";
  List.iter Report.print tables;
  Printf.printf
    "Hash keeps every segment in order at any population; last-sender trades \n\
     the demux win for reordering: the reassembly queue absorbs the window \n\
     and header prediction stops paying (the Section 4 ordering lesson, \n\
     rediscovered by multi-queue NICs).\n";
  flush stdout
