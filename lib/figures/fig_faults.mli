(** Extension figure [ext-faults]: TCP goodput and retransmission rate
    under segment loss, mutex vs MCS locking.

    The paper measures loss-free throughput; this extension asks how the
    lock-discipline comparison holds up once loss forces the
    retransmission machinery to run.  Goodput counts unique application
    bytes only, so retransmitted copies of a segment inflate the
    retransmit-rate table without inflating the goodput one. *)

val faults_data : Opts.t -> Pnp_harness.Report.table list
