(** Figures 17 and 18: TCP receive-side throughput and speedup across the
    three machine generations (Section 7): the 100 MHz and 150 MHz R4400
    Challenges and the 33 MHz R3000 Power Series (synchronisation bus).

    Data phase only (pure sweeps; safe on worker domains). *)

val series : Opts.t -> Pnp_harness.Report.series list
val fig17_18_data : Opts.t -> Pnp_harness.Report.table list
