open Pnp_engine
open Pnp_util
open Pnp_harness

let skews = [ 0.0; 0.5; 1.0; 1.5; 2.0 ]

(* Offered load: comfortably above what one CPU can absorb on its own
   connections but near the machine's aggregate capacity, so skew makes
   the statically-placed hot connection's owner the bottleneck. *)
let offered_mbps opts = 90.0 *. float_of_int opts.Opts.max_procs

let clp_vs_plp_points opts =
  let procs = opts.Opts.max_procs in
  let conns = 2 * procs in
  let offered = offered_mbps opts in
  let tput placement skew =
    (Run.throughput_summary
       (Opts.apply opts
          (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
             ~lock_disc:Lock.Fifo ~connections:conns ~placement ~skew
             ~offered_mbps:offered ~procs ()))
       ~seeds:opts.Opts.seeds)
      .Stats.mean
  in
  (* Each (skew, placement) cell is an independent sweep; fan them out
     over the worker pool (the seed loop inside falls back to serial on
     workers). *)
  let cells =
    List.concat_map
      (fun skew -> [ (skew, Config.Packet_level); (skew, Config.Connection_level) ])
      skews
  in
  let results = Pool.map (fun (skew, placement) -> tput placement skew) cells in
  let rec pair = function
    | [] -> []
    | plp :: clp :: rest -> (plp, clp) :: pair rest
    | [ _ ] -> invalid_arg "clp_vs_plp_points: odd result list"
  in
  List.map2 (fun skew (plp, clp) -> (skew, plp, clp)) skews (pair results)

(* The sweep axis is Zipf skew, not processor count; encode skew*10 in
   the integer [procs] field so the table fits the common shape (and the
   JSON export).  The presenter divides by 10 again. *)
let clp_vs_plp_data opts =
  let pts = clp_vs_plp_points opts in
  let point v (skew, _, _) =
    { Report.procs = int_of_float ((skew *. 10.0) +. 0.5); mean = v; ci90 = 0.0 }
  in
  [
    Report.table
      ~title:
        "Extension: connection-level vs packet-level parallelism (x-axis: Zipf skew x 10)"
      ~unit_label:"Mbit/s"
      [
        {
          Report.label = "packet-level";
          points = List.map (fun ((_, plp, _) as r) -> point plp r) pts;
        };
        {
          Report.label = "connection-level";
          points = List.map (fun ((_, _, clp) as r) -> point clp r) pts;
        };
      ];
  ]

let clp_vs_plp_present opts tables =
  let rows =
    match tables with
    | { Report.series = [ plp; clp ]; _ } :: _ ->
      List.map2
        (fun (p : Report.point) (c : Report.point) ->
          (float_of_int p.Report.procs /. 10.0, p.Report.mean, c.Report.mean))
        plp.Report.points clp.Report.points
    | _ -> []
  in
  Printf.printf
    "\n== Extension (Section 8 future work): connection-level vs packet-level \
     parallelism ==\n";
  Printf.printf
    "TCP recv, %d CPUs, %d connections, MCS locks; offered load %.0f Mbit/s split\n\
     over the connections by Zipf(skew) arrival rates.\n"
    opts.Opts.max_procs (2 * opts.Opts.max_procs) (offered_mbps opts);
  Printf.printf "%-6s %18s %22s %10s\n" "skew" "packet-level Mb/s" "connection-level Mb/s"
    "CLP/PLP";
  List.iter
    (fun (skew, plp, clp) ->
      Printf.printf "%-6.1f %18.1f %22.1f %10.2f\n" skew plp clp (clp /. plp))
    rows;
  Printf.printf
    "Connection-level placement avoids state-lock sharing but cannot balance a\n\
     skewed load; packet-level placement balances but contends on hot connections.\n";
  flush stdout

let recv_cfg opts ?(lock_disc = Lock.Unfair) ?(arch = Arch.challenge_100)
    ?(driver_jitter_ns = 8000.0) ?(cksum_under_lock = false) procs =
  Opts.apply opts
    (Config.v ~arch ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
       ~lock_disc ~driver_jitter_ns ~cksum_under_lock ~procs ())

let grant_policy_data opts =
  let series label disc =
    Report.metric_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      ~metric:(fun r -> r.Run.ooo_pct)
      (fun p -> recv_cfg opts ~lock_disc:disc p)
  in
  [
    Report.table
      ~title:"Ablation: lock grant policy vs out-of-order rate (recv, 4KB, ck-on)"
      ~unit_label:"% out-of-order"
      [
        series "random (mutex)" Lock.Unfair;
        series "barging (LIFO)" Lock.Barging;
        series "FIFO (MCS)" Lock.Fifo;
      ];
  ]

let coherency_data opts =
  (* UDP receive is where the migration penalty shows: the demux and ring
     locks ping-pong between CPUs on every packet, which is what produces
     the 2-CPU dip the paper sees on the Challenges but not on the
     synchronisation-bus Power Series. *)
  let series label coherency_ns =
    let arch = { Arch.challenge_100 with Arch.coherency_ns } in
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun procs ->
        Opts.apply opts
          (Config.v ~arch ~protocol:Config.Udp ~side:Config.Recv ~payload:4096
             ~checksum:false ~procs ()))
  in
  let series_list =
    [
      series "no penalty (sync bus-like)" 0;
      series "1300 ns (Challenge)" 1300;
      series "2600 ns" 2600;
      series "5200 ns" 5200;
    ]
  in
  [
    Report.table
      ~title:"Ablation: cache-line migration penalty (UDP recv, 4KB, ck-off)"
      ~unit_label:"Mbit/s" series_list;
    Report.table
      ~title:"Ablation: the same, as speedup (watch the low-CPU efficiency)"
      ~unit_label:"x vs 1 CPU"
      (List.map Report.speedup series_list);
  ]

let jitter_data opts =
  let series label driver_jitter_ns =
    Report.metric_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      ~metric:(fun r -> r.Run.ooo_pct)
      (fun p -> recv_cfg opts ~lock_disc:Lock.Fifo ~driver_jitter_ns p)
  in
  [
    Report.table
      ~title:"Ablation: driver service jitter vs MCS out-of-order rate (Table 1's MCS column)"
      ~unit_label:"% out-of-order"
      [
        series "no jitter" 0.0;
        series "2 us" 2000.0;
        series "8 us (default)" 8000.0;
        series "16 us" 16000.0;
      ];
  ]

let presentation_data opts =
  let series label ~presentation =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun procs ->
        Opts.apply opts
          (Config.v ~protocol:Config.Udp ~side:Config.Recv ~payload:4096 ~checksum:true
             ~presentation ~procs ()))
  in
  let series_list =
    [
      series "checksum only" ~presentation:false;
      series "+ presentation conversion" ~presentation:true;
    ]
  in
  [
    Report.table
      ~title:
        "Extension: presentation-layer conversion (UDP recv, 4KB, ck-on; the Goldberg        et al. workload of Section 3.2)"
      ~unit_label:"Mbit/s" series_list;
    Report.table ~title:"The same, as speedup (heavier data-touching scales better)"
      ~unit_label:"x vs 1 CPU"
      (List.map Report.speedup series_list);
  ]

let cksum_placement_data opts =
  let series label cksum_under_lock =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun p -> recv_cfg opts ~lock_disc:Lock.Fifo ~cksum_under_lock p)
  in
  [
    Report.table
      ~title:
        "Ablation: checksum inside vs outside the connection lock (TCP-1 recv, 4KB, MCS)"
      ~unit_label:"Mbit/s"
      [
        series "outside locks (restructured)" false;
        series "under the state lock" true;
      ];
  ]
