(** The [ext-steering] figure: TCP receive behind a virtual multi-queue
    NIC at up to 10^5 simultaneous connections, demultiplexed through the
    sharded map manager.

    Sweeps connection count x steering policy ({!Pnp_driver.Steer.Hash}
    vs {!Pnp_driver.Steer.Last_sender}) x CPUs and reports throughput,
    the deepest reorder window observed in the lock-grant stream
    ({!Pnp_analysis.Order_check}), and the header-prediction miss rate.
    One traced run per cell (base seed, no seed averaging); reduced
    sweeps (measurement window under 250 ms) scale the connection axis
    down for the CI determinism job. *)

val steering_data : Opts.t -> Pnp_harness.Report.table list
val steering_present : Opts.t -> Pnp_harness.Report.table list -> unit
