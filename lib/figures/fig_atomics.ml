open Pnp_engine
open Pnp_harness

let series opts =
  let series label ~side ~refcnt_mode =
    Report.throughput_series ~label ~procs:(Opts.procs opts) ~seeds:opts.Opts.seeds
      (fun procs ->
        Opts.apply opts
          (Config.v ~protocol:Config.Tcp ~side ~payload:4096 ~checksum:true ~refcnt_mode
             ~procs ()))
  in
  [
    series "recv atomic ops" ~side:Config.Recv ~refcnt_mode:Atomic_ctr.Ll_sc;
    series "recv locked ops" ~side:Config.Recv ~refcnt_mode:Atomic_ctr.Locked;
    series "send atomic ops" ~side:Config.Send ~refcnt_mode:Atomic_ctr.Ll_sc;
    series "send locked ops" ~side:Config.Send ~refcnt_mode:Atomic_ctr.Locked;
  ]

let fig15_data opts =
  [
    Report.table
      ~title:"Figure 15: TCP Atomic Operations Impact (4KB, checksum on)"
      ~unit_label:"Mbit/s" (series opts);
  ]
