(** Figures 13 and 14: locking granularity in TCP (Section 5.1).

    TCP-1 (one state lock), TCP-2 (send + receive locks) and TCP-6 (the
    SICS six-lock style, checksumming under the header locks), each with
    1 KB and 4 KB packets, checksumming on, MCS locks.

    Data phase only (pure sweeps; safe on worker domains). *)

val series :
  Opts.t -> side:Pnp_harness.Config.side -> Pnp_harness.Report.series list

val fig13_data : Opts.t -> Pnp_harness.Report.table list
(** Send side. *)

val fig14_data : Opts.t -> Pnp_harness.Report.table list
(** Receive side. *)
