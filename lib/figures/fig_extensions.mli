(** Beyond the paper: the Section 8 future-work experiment and ablations
    of the model's design choices (DESIGN.md section 7).

    - {!clp_vs_plp_data}: connection-level parallelism (connections
      statically bound to processors — no state-lock contention, but load
      imbalance) against packet-level parallelism over the same
      many-connection workload, as a function of how skewed the
      per-connection load is.
    - {!grant_policy_data}: out-of-order rates under three lock-grant
      disciplines — random (IRIX mutex), barging (LIFO test-and-set) and
      FIFO (MCS).
    - {!coherency_data}: the receive-side curve as the cache-line
      migration penalty is varied — the knob that separates the Challenge
      from the synchronisation-bus Power Series.
    - {!jitter_data}: Table 1's MCS column as a function of driver
      service jitter, the source of pre-lock misordering.
    - {!presentation_data}: speedup with an added compute-bound
      presentation-conversion pass per packet — the Goldberg et al.
      contrast of Section 3.2.
    - {!cksum_placement_data}: TCP-1 with checksums inside vs outside
      the connection-state lock (what Section 5.1's restructuring
      bought).

    All [_data] functions are pure sweeps (safe on worker domains); the
    CLP-vs-PLP figure additionally has a custom presenter that decodes
    the skew axis (stored as skew x 10 in the [procs] field). *)

val clp_vs_plp_points : Opts.t -> (float * float * float) list
(** (skew, packet-level Mbit/s, connection-level Mbit/s) at [max_procs]. *)

val clp_vs_plp_data : Opts.t -> Pnp_harness.Report.table list
val clp_vs_plp_present : Opts.t -> Pnp_harness.Report.table list -> unit

val grant_policy_data : Opts.t -> Pnp_harness.Report.table list
val coherency_data : Opts.t -> Pnp_harness.Report.table list
val jitter_data : Opts.t -> Pnp_harness.Report.table list
val presentation_data : Opts.t -> Pnp_harness.Report.table list
val cksum_placement_data : Opts.t -> Pnp_harness.Report.table list
