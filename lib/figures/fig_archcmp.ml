open Pnp_engine
open Pnp_harness

let archs =
  [
    ("R4400/150", Arch.challenge_150);
    ("R4400/100", Arch.challenge_100);
    ("R3000/33", Arch.power_series_33);
  ]

let series opts =
  List.concat_map
    (fun (name, arch) ->
      List.map
        (fun checksum ->
          let label =
            Printf.sprintf "%s ck-%s" name (if checksum then "on" else "off")
          in
          let procs =
            List.filter (fun p -> p <= arch.Arch.cpus) (Opts.procs opts)
          in
          Report.throughput_series ~label ~procs ~seeds:opts.Opts.seeds (fun procs ->
              Opts.apply opts
                (Config.v ~arch ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096
                   ~checksum ~procs ())))
        [ false; true ])
    archs

let fig17_18_data opts =
  let series = series opts in
  [
    Report.table
      ~title:"Figure 17: TCP Receive Throughputs across Architectures (4KB)"
      ~unit_label:"Mbit/s" series;
    Report.table
      ~title:"Figure 18: TCP Receive Speedups across Architectures (4KB)"
      ~unit_label:"x vs 1 CPU"
      (List.map Report.speedup series);
  ]
