(** Chaos runner: end-to-end fault-injection cells with a recovery oracle.

    One {e cell} = one fault plan x one lock discipline, run in two
    single-threaded simulation worlds:

    - a {b TCP world}: two complete stacks over a faulted {!Pnp_driver.Link},
      a blocking-socket transfer of a seeded golden stream, drained to EOF;
    - a {b UDP world}: paced datagrams over the same plan, where every
      datagram's fate must be accounted for exactly.

    The observations feed {!Pnp_analysis.Recovery.check}: byte-stream
    equality (length and digest), zero silent corruption (every injected
    bit flip caught by a checksum), balanced UDP accounting and drain
    liveness.  Worlds are seeded only from the cell parameters and run on
    a single simulated host each, so a cell's outcome — and the printed
    matrix — is byte-identical regardless of how many {!Pool} workers
    execute cells concurrently. *)

type outcome = {
  plan_name : string;
  disc : Pnp_engine.Lock.discipline;
  locking : Pnp_proto.Tcp.locking;  (** TCP state-locking granularity *)
  bytes : int;  (** golden-stream length of the TCP transfer *)
  tcp_done_ns : int;  (** sim time the receiver saw EOF; [-1] = never *)
  tcp_rexmits : int;
  tcp_link : Pnp_driver.Link.fault_stats;
  udp_link : Pnp_driver.Link.fault_stats;
  udp : Pnp_analysis.Recovery.udp_account;
  corruption : Pnp_analysis.Recovery.corruption;  (** both worlds summed *)
  findings : Pnp_analysis.Finding.t list;  (** [] = recovered *)
}

val disc_label : Pnp_engine.Lock.discipline -> string
(** ["mutex"], ["mcs"] or ["barging"] — matches {!Config.describe}. *)

val locking_label : Pnp_proto.Tcp.locking -> string
(** ["tcp1"], ["tcp2"], ["tcp6"], ["scr"] or ["rcu"]. *)

val run_cell :
  ?bytes:int ->
  ?datagrams:int ->
  ?seed:int ->
  ?tcp_locking:Pnp_proto.Tcp.locking ->
  plan:Pnp_faults.Faults.plan ->
  disc:Pnp_engine.Lock.discipline ->
  unit ->
  outcome
(** Run one cell.  Defaults: 200 kB TCP transfer, 600 paced datagrams,
    seed 1, TCP-1 state locking.  The TCP world's link runs at 40 Mbit/s with 200 us latency,
    so the default transfer takes ~50 ms of simulated time — long enough
    to straddle the built-in plans' blackout and burst windows. *)

val passed : outcome -> bool

val to_line : outcome -> string
(** One deterministic summary line (no timestamps, no float formatting
    that depends on locale) — what [repro chaos] prints per cell. *)

val matrix :
  ?bytes:int -> ?datagrams:int -> ?seed:int -> unit -> outcome list
(** Every built-in plan x {Unfair (mutex), Fifo (MCS), Fifo+SCR
    (log-replay state-compute replication)}, fanned out over the {!Pool}
    workers; the list is in plan-table order and independent of the
    worker count.  The SCR leg is the recovery-oracle check over the
    replication discipline: faults must drain to a byte-identical
    stream through the replay path too. *)
