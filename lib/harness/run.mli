(** Execute one experiment configuration and measure steady state.

    Mirrors the paper's methodology: spawn one wired thread per processor,
    let the system warm up, then measure throughput over a steady-state
    window (Section 3: 30 s warmup + 30 s measurement on real hardware; the
    simulator reaches steady state within a few thousand packets, so the
    defaults are shorter and configurable). *)

type result = {
  throughput_mbps : float;   (** user payload over the measurement window *)
  goodput_mbps : float;
      (** in-order bytes net of retransmitted duplicates — equals
          [throughput_mbps] on a lossless path, and falls below it as
          [Config.loss_rate] forces retransmissions *)
  packets : int;             (** payload-carrying packets in the window *)
  ooo_pct : float;           (** TCP data segments arriving out of order, % *)
  wire_misorder_pct : float; (** send side: segments passed below TCP, % *)
  pred_miss_pct : float;     (** header-prediction misses among data segments, % *)
  rexmit_pct : float;        (** retransmitted segments among segments sent, % *)
  lock_wait_pct : float;     (** share of thread time blocked on connection locks, % *)
  cache_hit_pct : float;     (** MNode allocations served by per-thread caches, % *)
  gate_wait_ns : int;        (** total ticketing wait in the window *)
  scr_appends : int;
      (** [Scr] only: packet-history log entries appended in the window
          (0 under any other discipline) *)
  scr_replayed : int;
      (** [Scr] only: redundant foreign entries replicas replayed — the
          compute SCR trades for lock waiting *)
  scr_resyncs : int;         (** [Scr] only: replica bootstraps + post-truncation resyncs *)
  rcu_reads : int;
      (** [Rcu] only: segments answered lock-free against the published
          snapshot (0 under any other discipline) *)
}

val run : Config.t -> result
(** Build the platform, stack, drivers and workers for the configuration,
    simulate warmup + measurement, and report the steady-state window.

    Results are memoized on {!Config.canonical} (the sweep-cell memo):
    a cell is a pure function of its configuration, so when figures share
    cells — and several do — repeats are served from a process-wide cache.
    Hits return exactly the value a fresh run would compute, so output is
    byte-identical with the memo on or off, at any [-j].  The table is
    mutex-protected and safe from {!Pool} worker domains. *)

val set_cell_memo : bool -> unit
(** Enable / disable the sweep-cell memo (default: enabled).  The bench
    harness disables it so micro-benchmarks measure the engine, not the
    cache. *)

val clear_cell_memo : unit -> unit
(** Drop every cached cell (tests use this to isolate scenarios). *)

val cell_memo_size : unit -> int
(** Number of distinct cells currently cached. *)

val run_traced : Config.t -> result * Pnp_engine.Trace.t
(** Like [run], but enables the simulator's event tracer for exactly the
    measurement window: recording starts at the warmup snapshot and stops
    when the run ends, so trace-derived totals (e.g. per-lock wait time)
    correspond to the same window as the aggregate counters in [result].
    Tracing never consumes simulated time, so the [result] is identical to
    what [run] returns for the same configuration and seed. *)

val run_watched :
  ?stall_ns:Pnp_util.Units.ns -> Config.t -> result * Pnp_analysis.Finding.t list
(** Like [run], but with a {!Pnp_engine.Watchdog} armed on the
    application-byte progress counter (default horizon 100 ms simulated).
    A cell that wedges — deadlocked workers, a livelocked retransmission
    storm — comes back as a result plus one finding per stalled horizon
    (checker ["watchdog"], naming the blocked threads) instead of
    hanging the sweep.  Never memoized: liveness is a property of the
    execution, and a memo hit would not re-execute. *)

val run_seeds : Config.t -> seeds:int -> result list
(** [run] repeated with seeds [cfg.seed .. cfg.seed+seeds-1], fanned out
    over the {!Pool} workers; the result list is in seed order and
    independent of the worker count. *)

val throughput_summary : Config.t -> seeds:int -> Pnp_util.Stats.summary
(** Summary (mean, 90% CI) of throughput across seeds. *)
