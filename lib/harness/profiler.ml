(* Flamegraph-friendly sampling profiler for the host engine.

   `bench --profile FILE` and `repro perf --profile FILE` need to say
   *where* host time goes when the events-per-second figure moves, not
   just that it moved.  OCaml has no built-in sampling profiler, but it
   has the two halves of one: [Unix.setitimer ITIMER_PROF] delivers
   SIGPROF every quantum of consumed CPU time, and
   [Printexc.get_callstack] captures the current call stack from any
   OCaml code — including a signal handler, which the runtime runs at
   the program's next safe point, i.e. on top of the frames we want.

   Each sample is collapsed to a "root;caller;...;leaf" line keyed in a
   table of counts; [write] emits the classic collapsed-stacks format
   ("stack count" per line) that flamegraph.pl, speedscope and most
   flamegraph viewers consume directly.

   Caveats, stated rather than hidden: samples land on safe points, so
   allocation-free loops under-sample (the sift loops in Eventq bias
   toward their callers), and frame names come from debug info —
   functions inlined by flambda-less OCaml keep their names, which is
   the common case for this repo's builds. *)

type t = {
  counts : (string, int ref) Hashtbl.t;
  mutable samples : int;
  mutable truncated : int; (* stacks deeper than the capture limit *)
}

let max_depth = 64

(* One profiler can run at a time (SIGPROF is process-wide). *)
let active : t option ref = ref None

let frame_name slot =
  match Printexc.Slot.name slot with
  | Some n -> n
  | None -> (
    match Printexc.Slot.location slot with
    | Some loc -> Printf.sprintf "%s:%d" loc.Printexc.filename loc.Printexc.line_number
    | None -> "?")

let record t raw =
  t.samples <- t.samples + 1;
  let n = Printexc.raw_backtrace_length raw in
  if n >= max_depth then t.truncated <- t.truncated + 1;
  let buf = Buffer.create 256 in
  (* Deepest frame last in the collapsed line: walk the raw backtrace
     from outermost (index n-1) to the leaf (index 0). *)
  for i = n - 1 downto 0 do
    let entry = Printexc.get_raw_backtrace_slot raw i in
    let slot = Printexc.convert_raw_backtrace_slot entry in
    let name = frame_name slot in
    (* The handler's own frames sit below the program's; drop them. *)
    if not (String.length name >= 9 && String.sub name 0 9 = "Pnp_harne" &&
            (name = "Pnp_harness__Profiler.handler" || name = "Pnp_harness__Profiler.record"))
    then begin
      if Buffer.length buf > 0 then Buffer.add_char buf ';';
      Buffer.add_string buf name
    end
  done;
  let key = if Buffer.length buf = 0 then "(unknown)" else Buffer.contents buf in
  match Hashtbl.find_opt t.counts key with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts key (ref 1)

let handler _ =
  match !active with
  | None -> ()
  | Some t -> record t (Printexc.get_callstack max_depth)

(* Start sampling at [hz] (default 997 Hz — prime, so the sampler does
   not phase-lock with millisecond-periodic work). *)
let start ?(hz = 997) () =
  if !active <> None then invalid_arg "Profiler.start: already profiling";
  let interval_us = max 1 (1_000_000 / hz) in
  let t = { counts = Hashtbl.create 1024; samples = 0; truncated = 0 } in
  active := Some t;
  ignore (Sys.signal Sys.sigprof (Sys.Signal_handle handler));
  let v = float_of_int interval_us /. 1e6 in
  ignore
    (Unix.setitimer Unix.ITIMER_PROF
       { Unix.it_interval = v; it_value = v });
  t

let stop t =
  ignore
    (Unix.setitimer Unix.ITIMER_PROF { Unix.it_interval = 0.0; it_value = 0.0 });
  ignore (Sys.signal Sys.sigprof Sys.Signal_default);
  active := None;
  t.samples

let samples t = t.samples

(* Collapsed-stacks output, heaviest stack first so a plain `sort | head`
   or an eyeball both work without tooling. *)
let write t file =
  let rows = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counts [] in
  let rows = List.sort (fun (_, a) (_, b) -> compare b a) rows in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun (stack, n) -> Printf.fprintf oc "%s %d\n" stack n) rows)

(* Run [f] under the profiler and write the profile; returns [f ()]'s
   result and the sample count. *)
let profile ?hz ~file f =
  let t = start ?hz () in
  let finish () = ignore (stop t); write t file in
  match f () with
  | v ->
    finish ();
    (v, t.samples)
  | exception e ->
    finish ();
    raise e
