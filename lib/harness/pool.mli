(** Multicore scheduler for independent sweep cells.

    The experiment sweeps are embarrassingly parallel: each cell (one
    {!Config.t} at one seed) builds its own simulator, platform and stack
    and shares no mutable state with any other cell.  [map] fans cells
    out across OCaml 5 domains while keeping the result list — and
    therefore every table, printed or JSON-exported — byte-identical to
    the serial run: results come back in input order, and a failing cell
    raises the same (first-in-input-order) exception the serial path
    would.

    The worker count is a process-wide knob so the [-j] flag reaches
    every sweep without threading a context through each figure
    generator.  [1] (the default) is exactly the historical serial
    path. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the CLIs use for [-j]
    when the flag is absent. *)

val set_jobs : int -> unit
(** Set the worker count used by subsequent {!map} calls.  [1] runs
    serially on the calling domain.  @raise Invalid_argument if < 1. *)

val jobs : unit -> int
(** The current worker count. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs], computed on up to [jobs ()] domains
    (the caller included).  [f] must not touch shared mutable state —
    sweep cells, which build everything per-run, qualify.  Results are
    gathered in input order, so output is independent of the worker
    count.  Nested calls from inside a worker run serially rather than
    oversubscribing. *)
