(** SIGPROF sampling profiler emitting collapsed-stacks output.

    Backs [bench --profile FILE] and [repro perf --profile FILE]: while
    a workload runs, [Unix.setitimer ITIMER_PROF] fires SIGPROF per
    quantum of consumed CPU time and the handler records the current
    OCaml call stack ([Printexc.get_callstack]).  Stacks are collapsed
    to ["frameA;frameB;frameC count"] lines — the format flamegraph.pl
    and speedscope read directly — written heaviest-first.

    Sampling is process-wide (SIGPROF has one handler), so only one
    profiler may run at a time; [start] raises [Invalid_argument] if one
    is active.  Samples land on OCaml safe points, which biases tight
    allocation-free loops toward their callers — good enough to rank
    subsystems, not to time individual instructions. *)

type t

val start : ?hz:int -> unit -> t
(** Begin sampling at [hz] samples per CPU-second (default 997). *)

val stop : t -> int
(** Disarm the timer and restore the default SIGPROF disposition.
    Returns the number of samples collected. *)

val samples : t -> int

val write : t -> string -> unit
(** Write collapsed-stacks lines to a file, heaviest stack first. *)

val profile : ?hz:int -> file:string -> (unit -> 'a) -> 'a * int
(** [profile ~file f] runs [f] under the profiler and writes the
    collapsed-stacks profile to [file] (also on exception).  Returns
    [f ()]'s result and the sample count. *)
