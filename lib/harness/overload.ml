open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver
open Pnp_faults
open Pnp_analysis

let client_addr = 0x0a000001
let server_addr = 0x0a000002
let server_port = 80
let base_port = 5000

type flow = {
  id : int;
  mutable established : bool;
  mutable completed : bool;
  mutable received : int;
  mutable digest : int;
  mutable start_ns : int;
  mutable done_ns : int;
}

type outcome = {
  scenario : string;
  senders : int;
  bytes_per_flow : int;
  plan_name : string;
  accepted : int;
  completed : int;
  elapsed_ns : int;
  goodput_mbps : float;
  fairness : float;
  completion_ns : (int * int) list;
  drops : Recovery.overload_drops;
  rexmits : int;
  pool_pressure_entries : int;
  stalls : Watchdog.stall list;
  findings : Finding.t list;
}

(* Per-flow golden stream: printable, deterministic, distinct per flow,
   so cross-flow misdelivery shows up as a digest mismatch rather than
   passing by coincidence. *)
let golden ~seed ~flow ~bytes =
  String.init bytes (fun i -> Char.chr (32 + ((i + (seed * 131) + (flow * 17)) mod 95)))

let caught_checksums (a : Stack.t) (b : Stack.t) =
  Ip.header_failures a.Stack.ip + Ip.header_failures b.Stack.ip
  + Tcp.checksum_failures a.Stack.tcp
  + Tcp.checksum_failures b.Stack.tcp

(* The common world: one client stack and one server stack joined by one
   link — the link {e is} the shared bottleneck, exactly the incast
   topology (N sources funnelling into one receiver port).  [stagger_ns]
   separates flow starts: 0 is the synchronized incast burst (and, with a
   small [syn_backlog], a SYN flood); a positive value paces the joins
   for the steady shared-bottleneck fairness workload. *)
let world ~scenario ~plan ~seed ~senders ~bytes_per_flow ~stagger_ns ~syn_backlog
    ~sb_policy ~pool_capacity ~demux_shards ~lock_disc ~tcp_locking ~bandwidth_mbps
    ~latency ~stall_ns ~horizon () =
  if senders < 1 || senders > 8000 then
    invalid_arg "Overload: senders out of range (port space)";
  let plat =
    Platform.create ~seed ~lock_disc ~map_shards:demux_shards Arch.challenge_100
  in
  let sim = plat.Platform.sim in
  let tcp_config =
    {
      Tcp.default_config with
      Tcp.mss = 1024;
      syn_backlog;
      sb_policy;
      locking = tcp_locking;
    }
  in
  let client =
    Stack.create plat ~tcp_config ?pool_capacity ~local_addr:client_addr ()
  in
  let server =
    Stack.create plat ~tcp_config ?pool_capacity ~local_addr:server_addr ()
  in
  let link =
    Link.connect plat ~bandwidth_mbps ~latency ~plan ~a:client ~b:server ()
  in
  let flows =
    Array.init senders (fun id ->
        {
          id;
          established = false;
          completed = false;
          received = 0;
          digest = Recovery.digest "";
          start_ns = -1;
          done_ns = -1;
        })
  in
  let received_total = ref 0 in
  let completed_total = ref 0 in
  let accepted_total = ref 0 in
  (* Server: pure upcall plumbing, no per-connection threads — 10^3
     concurrent flows cost 10^3 sessions, not 10^3 fibers. *)
  Tcp.listen server.Stack.tcp ~local_port:server_port ~accept:(fun sess ->
      let _, rport = Tcp.remote_endpoint sess in
      let f = flows.(rport - base_port) in
      Tcp.set_receiver sess (fun msg ->
          let s = Msg.to_string msg in
          Msg.destroy msg;
          f.received <- f.received + String.length s;
          f.digest <- Recovery.digest_add f.digest s;
          received_total := !received_total + String.length s);
      Tcp.set_fin_handler sess (fun () ->
          if (not f.completed) && f.received = bytes_per_flow then begin
            f.completed <- true;
            f.done_ns <- Sim.now sim;
            incr completed_total;
            (* Termination detection: once every flow has delivered its
               whole stream there is nothing left to wait for. *)
            if !completed_total = senders then Sim.stop sim
          end));
  for j = 0 to senders - 1 do
    let f = flows.(j) in
    let body = golden ~seed ~flow:j ~bytes:bytes_per_flow in
    ignore
      (Sim.spawn sim ~cpu:(j mod 8) ~name:(Printf.sprintf "%s.%d" scenario j)
         (fun () ->
           Sim.delay sim (Units.ms 1.0 + (j * stagger_ns));
           f.start_ns <- Sim.now sim;
           let sock =
             Socket.connect plat client.Stack.pool client.Stack.tcp
               ~local_port:(base_port + j) ~remote_addr:server_addr
               ~remote_port:server_port
           in
           f.established <- true;
           incr accepted_total;
           let n = String.length body in
           let rec send_from off =
             if off < n then begin
               let len = min 1000 (n - off) in
               Socket.send_string sock (String.sub body off len);
               send_from (off + len)
             end
           in
           send_from 0;
           Socket.close sock))
  done;
  (* Progress for the watchdog: anything the run can legitimately be
     doing — delivering bytes, finishing handshakes, or shedding load to
     a named cause.  Only a world doing none of these is stalled. *)
  let progress () =
    !received_total + !accepted_total
    + Link.dropped link
    + Link.pressure_drops link
    + Tcp.syn_backlog_drops server.Stack.tcp
    + Tcp.total_sockbuf_drops client.Stack.tcp
    + List.fold_left
        (fun acc s -> acc + (Tcp.stats s).Tcp.rexmits)
        0
        (Tcp.sessions client.Stack.tcp)
  in
  let wd = Watchdog.install sim ~stall_ns ~stop_on_stall:true ~progress () in
  Sim.run ~until:horizon sim;
  Watchdog.disarm wd;
  let elapsed_ns = Sim.now sim in
  let drops =
    {
      Recovery.link = Link.dropped link;
      pool_pressure =
        Link.pressure_drops link
        + Mpool.refusals client.Stack.pool
        + Mpool.refusals server.Stack.pool;
      syn_backlog =
        Tcp.syn_backlog_drops server.Stack.tcp
        + Tcp.syn_backlog_drops client.Stack.tcp;
      sockbuf_full =
        Tcp.total_sockbuf_drops client.Stack.tcp
        + Tcp.total_sockbuf_drops server.Stack.tcp;
      checksum = caught_checksums client server;
    }
  in
  let oracle_flows =
    Array.to_list
      (Array.map
         (fun f ->
           {
             Recovery.flow = Printf.sprintf "flow/%03d" f.id;
             accepted = f.established;
             completed = f.completed;
             sent_bytes = bytes_per_flow;
             received_bytes = f.received;
             received_digest = f.digest;
             expected_digest =
               (* over-delivery is reported by the oracle's length rule;
                  clamp so the digest here stays well-defined *)
               Recovery.digest
                 (String.sub
                    (golden ~seed ~flow:f.id ~bytes:bytes_per_flow)
                    0
                    (min f.received bytes_per_flow));
           })
         flows)
  in
  let oracle =
    Recovery.check_overload
      { Recovery.scenario; flows = oracle_flows; drops }
  in
  let stall_findings =
    List.map
      (fun s ->
        Finding.v ~checker:"watchdog"
          ~subject:(Printf.sprintf "%s@t=%dns" scenario s.Watchdog.at)
          (Watchdog.describe_stall s))
      (Watchdog.stalls wd)
  in
  let per_flow_received =
    Array.to_list (Array.map (fun f -> float_of_int f.received) flows)
  in
  let completion_ns =
    Array.to_list flows
    |> List.filter_map (fun (f : flow) ->
           if f.completed then Some (f.id, f.done_ns - f.start_ns) else None)
  in
  let rexmits =
    List.fold_left
      (fun acc s -> acc + (Tcp.stats s).Tcp.rexmits)
      0
      (Tcp.sessions client.Stack.tcp)
  in
  {
    scenario;
    senders;
    bytes_per_flow;
    plan_name = Link.plan_name link;
    accepted = !accepted_total;
    completed = !completed_total;
    elapsed_ns;
    goodput_mbps =
      Units.mbits_per_sec ~bytes_transferred:!received_total ~duration:elapsed_ns;
    fairness = Report.jain per_flow_received;
    completion_ns;
    drops;
    rexmits;
    pool_pressure_entries =
      Mpool.pressure_entries client.Stack.pool
      + Mpool.pressure_entries server.Stack.pool;
    stalls = Watchdog.stalls wd;
    findings = Finding.sort (oracle @ stall_findings);
  }

(* The stall horizon must exceed TCP's longest legitimate silence: the
   retransmit timer backs off to 64x the RTO ({!set_rexmt_timer}'s BSD
   shift cap), so a lone connection sitting out a ~64 s backoff is live,
   not stalled.  70 s clears that ceiling. *)
let default_stall_ns = Units.sec 70.0

let incast ?(plan = Faults.none) ?(senders = 32) ?(bytes_per_flow = 2048) ?(seed = 1)
    ?(syn_backlog = 16) ?(sb_policy = Sockbuf.Block) ?pool_capacity
    ?(demux_shards = 8) ?(lock_disc = Lock.Unfair) ?(tcp_locking = Tcp.One)
    ?(stall_ns = default_stall_ns) ?(horizon = Units.sec 600.0) () =
  world ~scenario:"incast" ~plan ~seed ~senders ~bytes_per_flow ~stagger_ns:0
    ~syn_backlog ~sb_policy ~pool_capacity ~demux_shards ~lock_disc ~tcp_locking
    ~bandwidth_mbps:100.0 ~latency:(Units.us 200.0) ~stall_ns ~horizon ()

let shared_bottleneck ?(plan = Faults.none) ?(senders = 8) ?(bytes_per_flow = 40_000)
    ?(seed = 1) ?(syn_backlog = 128) ?(sb_policy = Sockbuf.Block) ?pool_capacity
    ?(demux_shards = 1) ?(lock_disc = Lock.Unfair) ?(tcp_locking = Tcp.One)
    ?(stall_ns = default_stall_ns) ?(horizon = Units.sec 600.0) () =
  world ~scenario:"bottleneck" ~plan ~seed ~senders ~bytes_per_flow
    ~stagger_ns:(Units.ms 2.0) ~syn_backlog ~sb_policy ~pool_capacity ~demux_shards
    ~lock_disc ~tcp_locking ~bandwidth_mbps:40.0 ~latency:(Units.us 200.0) ~stall_ns
    ~horizon ()

let passed o = o.findings = []

let to_line o =
  Printf.sprintf
    "%-10s %-10s n=%-4d %5dB/flow  acc=%-4d done=%-4d  good=%7.2f Mb/s  jain=%.3f  \
     drops[link=%d pool=%d syn=%d sb=%d ck=%d]  rexmit=%d  stalls=%d  %s"
    o.scenario o.plan_name o.senders o.bytes_per_flow o.accepted o.completed
    o.goodput_mbps o.fairness o.drops.Recovery.link o.drops.Recovery.pool_pressure
    o.drops.Recovery.syn_backlog o.drops.Recovery.sockbuf_full
    o.drops.Recovery.checksum o.rexmits (List.length o.stalls)
    (if passed o then "PASS" else "FAIL")
