open Pnp_engine
open Pnp_util

type side = Send | Recv
type protocol = Udp | Tcp
type placement = Connection_level | Packet_level

type t = {
  arch : Arch.t;
  procs : int;
  side : side;
  protocol : protocol;
  payload : int;
  checksum : bool;
  lock_disc : Lock.discipline;
  map_disc : Lock.discipline;
  tcp_locking : Pnp_proto.Tcp.locking;
  scr_log_bound : int;
  assume_in_order : bool;
  ticketing : bool;
  refcnt_mode : Atomic_ctr.mode;
  message_caching : bool;
  map_locking : bool;
  connections : int;
  placement : placement;
  steering : Pnp_driver.Steer.policy option;
  demux_shards : int;
  skew : float;
  driver_jitter_ns : float;
  offered_mbps : float option;
  loss_rate : float;
  cksum_under_lock : bool;
  presentation : bool;
  syn_backlog : int;
  pool_capacity : int option;
  warmup : Units.ns;
  measure : Units.ns;
  seed : int;
}

let baseline =
  {
    arch = Arch.challenge_100;
    procs = 1;
    side = Send;
    protocol = Tcp;
    payload = 4096;
    checksum = true;
    lock_disc = Lock.Unfair;
    map_disc = Lock.Unfair;
    tcp_locking = Pnp_proto.Tcp.One;
    scr_log_bound = 4096;
    assume_in_order = false;
    ticketing = false;
    refcnt_mode = Atomic_ctr.Ll_sc;
    message_caching = true;
    map_locking = true;
    connections = 1;
    placement = Packet_level;
    steering = None;
    demux_shards = 1;
    skew = 0.0;
    driver_jitter_ns = 8000.0;
    offered_mbps = None;
    loss_rate = 0.0;
    cksum_under_lock = false;
    presentation = false;
    syn_backlog = 128;
    pool_capacity = None;
    warmup = Units.ms 200.0;
    measure = Units.sec 1.0;
    seed = 1;
  }

let v ?(arch = baseline.arch) ?(procs = baseline.procs) ?(side = baseline.side)
    ?(protocol = baseline.protocol) ?(payload = baseline.payload)
    ?(checksum = baseline.checksum) ?(lock_disc = baseline.lock_disc)
    ?(map_disc = baseline.map_disc) ?(tcp_locking = baseline.tcp_locking)
    ?(scr_log_bound = baseline.scr_log_bound)
    ?(assume_in_order = baseline.assume_in_order) ?(ticketing = baseline.ticketing)
    ?(refcnt_mode = baseline.refcnt_mode) ?(message_caching = baseline.message_caching)
    ?(map_locking = baseline.map_locking) ?(connections = baseline.connections)
    ?(placement = baseline.placement) ?steering
    ?(demux_shards = baseline.demux_shards) ?(skew = baseline.skew)
    ?(driver_jitter_ns = baseline.driver_jitter_ns) ?offered_mbps
    ?(loss_rate = baseline.loss_rate)
    ?(cksum_under_lock = baseline.cksum_under_lock)
    ?(presentation = baseline.presentation)
    ?(syn_backlog = baseline.syn_backlog) ?pool_capacity
    ?(warmup = baseline.warmup) ?(measure = baseline.measure) ?(seed = baseline.seed) () =
  {
    arch;
    procs;
    side;
    protocol;
    payload;
    checksum;
    lock_disc;
    map_disc;
    tcp_locking;
    scr_log_bound;
    assume_in_order;
    ticketing;
    refcnt_mode;
    message_caching;
    map_locking;
    connections;
    placement;
    steering;
    demux_shards;
    skew;
    driver_jitter_ns;
    offered_mbps;
    loss_rate;
    cksum_under_lock;
    presentation;
    syn_backlog;
    pool_capacity;
    warmup;
    measure;
    seed;
  }

let side_to_string = function Send -> "send" | Recv -> "recv"
let protocol_to_string = function Udp -> "UDP" | Tcp -> "TCP"

(* Canonical cache key: every field that can influence a run, rendered
   exactly.  Floats use %h (hex) so distinct values never collide via
   decimal rounding.  The architecture is spelled out field by field, not
   just by name, so a custom Arch.t record gets its own key.  When a
   field is added to [t], it MUST be added here too — the sweep-cell memo
   ({!Run}) would otherwise conflate configs that differ in it. *)
let canonical t =
  let arch_key (a : Pnp_engine.Arch.t) =
    Printf.sprintf "%s;%d;%h;%h;%h;%h;%h;%h;%d;%d;%d;%d;%d;%s"
      a.Pnp_engine.Arch.name a.cpus a.clock_mhz a.cpi a.mem_ns_per_byte
      a.cksum_mb_per_s a.copy_mb_per_s a.bus_mb_per_s a.mutex_ns a.mcs_ns
      a.handoff_ns a.coherency_ns a.atomic_ns
      (match a.sync with
       | Pnp_engine.Arch.Coherency -> "coherency"
       | Pnp_engine.Arch.Sync_bus -> "sync-bus")
  in
  let disc = function
    | Pnp_engine.Lock.Unfair -> "unfair"
    | Pnp_engine.Lock.Fifo -> "fifo"
    | Pnp_engine.Lock.Barging -> "barging"
  in
  Printf.sprintf
    "arch=%s|procs=%d|side=%s|proto=%s|payload=%d|cksum=%b|lock=%s|map=%s|tcplk=%s|scrlog=%d|inorder=%b|ticket=%b|refs=%s|mcache=%b|maplock=%b|conns=%d|place=%s|steer=%s|dshards=%d|skew=%h|jitter=%h|offered=%s|loss=%h|cklock=%b|pres=%b|synbl=%d|poolcap=%s|warmup=%d|measure=%d|seed=%d"
    (arch_key t.arch) t.procs (side_to_string t.side)
    (protocol_to_string t.protocol) t.payload t.checksum (disc t.lock_disc)
    (disc t.map_disc)
    (match t.tcp_locking with
     | Pnp_proto.Tcp.One -> "1"
     | Pnp_proto.Tcp.Two -> "2"
     | Pnp_proto.Tcp.Six -> "6"
     | Pnp_proto.Tcp.Scr -> "scr"
     | Pnp_proto.Tcp.Rcu -> "rcu")
    t.scr_log_bound t.assume_in_order t.ticketing
    (match t.refcnt_mode with
     | Pnp_engine.Atomic_ctr.Ll_sc -> "llsc"
     | Pnp_engine.Atomic_ctr.Locked -> "locked")
    t.message_caching t.map_locking t.connections
    (match t.placement with
     | Connection_level -> "conn"
     | Packet_level -> "pkt")
    (match t.steering with
     | None -> "none"
     | Some p -> Pnp_driver.Steer.policy_to_string p)
    t.demux_shards t.skew t.driver_jitter_ns
    (match t.offered_mbps with None -> "sat" | Some r -> Printf.sprintf "%h" r)
    t.loss_rate t.cksum_under_lock t.presentation t.syn_backlog
    (match t.pool_capacity with None -> "inf" | Some c -> string_of_int c)
    t.warmup t.measure t.seed

let describe t =
  Printf.sprintf "%s %s-side %dB cksum=%b procs=%d conns=%d locks=%s%s"
    (protocol_to_string t.protocol) (side_to_string t.side) t.payload t.checksum t.procs
    t.connections
    (match t.lock_disc with
     | Lock.Unfair -> "mutex"
     | Lock.Fifo -> "mcs"
     | Lock.Barging -> "barging")
    (if t.loss_rate > 0.0 then Printf.sprintf " loss=%g%%" (t.loss_rate *. 100.0) else "")
