open Pnp_engine
open Pnp_util

type side = Send | Recv
type protocol = Udp | Tcp
type placement = Connection_level | Packet_level

type t = {
  arch : Arch.t;
  procs : int;
  side : side;
  protocol : protocol;
  payload : int;
  checksum : bool;
  lock_disc : Lock.discipline;
  map_disc : Lock.discipline;
  tcp_locking : Pnp_proto.Tcp.locking;
  assume_in_order : bool;
  ticketing : bool;
  refcnt_mode : Atomic_ctr.mode;
  message_caching : bool;
  map_locking : bool;
  connections : int;
  placement : placement;
  skew : float;
  driver_jitter_ns : float;
  offered_mbps : float option;
  loss_rate : float;
  cksum_under_lock : bool;
  presentation : bool;
  warmup : Units.ns;
  measure : Units.ns;
  seed : int;
}

let baseline =
  {
    arch = Arch.challenge_100;
    procs = 1;
    side = Send;
    protocol = Tcp;
    payload = 4096;
    checksum = true;
    lock_disc = Lock.Unfair;
    map_disc = Lock.Unfair;
    tcp_locking = Pnp_proto.Tcp.One;
    assume_in_order = false;
    ticketing = false;
    refcnt_mode = Atomic_ctr.Ll_sc;
    message_caching = true;
    map_locking = true;
    connections = 1;
    placement = Packet_level;
    skew = 0.0;
    driver_jitter_ns = 8000.0;
    offered_mbps = None;
    loss_rate = 0.0;
    cksum_under_lock = false;
    presentation = false;
    warmup = Units.ms 200.0;
    measure = Units.sec 1.0;
    seed = 1;
  }

let v ?(arch = baseline.arch) ?(procs = baseline.procs) ?(side = baseline.side)
    ?(protocol = baseline.protocol) ?(payload = baseline.payload)
    ?(checksum = baseline.checksum) ?(lock_disc = baseline.lock_disc)
    ?(map_disc = baseline.map_disc) ?(tcp_locking = baseline.tcp_locking)
    ?(assume_in_order = baseline.assume_in_order) ?(ticketing = baseline.ticketing)
    ?(refcnt_mode = baseline.refcnt_mode) ?(message_caching = baseline.message_caching)
    ?(map_locking = baseline.map_locking) ?(connections = baseline.connections)
    ?(placement = baseline.placement) ?(skew = baseline.skew)
    ?(driver_jitter_ns = baseline.driver_jitter_ns) ?offered_mbps
    ?(loss_rate = baseline.loss_rate)
    ?(cksum_under_lock = baseline.cksum_under_lock)
    ?(presentation = baseline.presentation)
    ?(warmup = baseline.warmup) ?(measure = baseline.measure) ?(seed = baseline.seed) () =
  {
    arch;
    procs;
    side;
    protocol;
    payload;
    checksum;
    lock_disc;
    map_disc;
    tcp_locking;
    assume_in_order;
    ticketing;
    refcnt_mode;
    message_caching;
    map_locking;
    connections;
    placement;
    skew;
    driver_jitter_ns;
    offered_mbps;
    loss_rate;
    cksum_under_lock;
    presentation;
    warmup;
    measure;
    seed;
  }

let side_to_string = function Send -> "send" | Recv -> "recv"
let protocol_to_string = function Udp -> "UDP" | Tcp -> "TCP"

let describe t =
  Printf.sprintf "%s %s-side %dB cksum=%b procs=%d conns=%d locks=%s%s"
    (protocol_to_string t.protocol) (side_to_string t.side) t.payload t.checksum t.procs
    t.connections
    (match t.lock_disc with
     | Lock.Unfair -> "mutex"
     | Lock.Fifo -> "mcs"
     | Lock.Barging -> "barging")
    (if t.loss_rate > 0.0 then Printf.sprintf " loss=%g%%" (t.loss_rate *. 100.0) else "")
