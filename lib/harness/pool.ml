(* Multicore work pool for sweep cells.

   Every sweep cell (one Config x one seed) is an independent, seeded,
   side-effect-free simulation, so the only thing the pool has to get
   right is determinism: results are written into a slot per input index
   and returned in input order, which makes the output of [map]
   byte-identical to the serial [List.map] regardless of worker count or
   scheduling.  Workers pull indices from a shared atomic counter (a work
   queue with the queue compiled down to an integer), so long cells don't
   convoy behind short ones. *)

let jobs_ref = ref 1

let default_jobs () = Domain.recommended_domain_count ()

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: need at least one worker";
  jobs_ref := n

let jobs () = !jobs_ref

(* Workers must never spawn their own sub-pool: a nested [map] inside a
   cell falls back to the serial path.  Tracked per-domain so the check
   is race-free. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let map f xs =
  let n = List.length xs in
  let workers = min !jobs_ref n in
  if workers <= 1 || Domain.DLS.get inside_worker then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      Domain.DLS.set inside_worker true;
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else results.(i) <- Some (try Ok (f items.(i)) with e -> Error e)
      done
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn work) in
    (* The calling domain is the remaining worker; restore its nesting
       flag afterwards so later top-level [map]s still parallelise. *)
    let outer = Domain.DLS.get inside_worker in
    work ();
    Domain.DLS.set inside_worker outer;
    List.iter Domain.join spawned;
    (* Deterministic error propagation: the first failure in input order
       wins, exactly as it would under List.map. *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end
