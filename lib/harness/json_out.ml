type table = {
  title : string;
  unit_label : string;
  series : (string * (int * float * float) list) list;
}

let dir : string option ref = ref None
let open_figure : string option ref = ref None
let tables : table list ref = ref []

let set_dir d = dir := d
let enabled () = !dir <> None

let add_table ~title ~unit_label ~series =
  match (!dir, !open_figure) with
  | Some _, Some _ -> tables := { title; unit_label; series } :: !tables
  | _ -> ()

(* Minimal JSON emission: only strings and finite floats need care. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let write_figure id ts =
  match !dir with
  | None -> ()
  | Some d ->
    let b = Buffer.create 4096 in
    Buffer.add_string b (Printf.sprintf "{\"figure\":\"%s\",\"tables\":[" (escape id));
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"title\":\"%s\",\"unit\":\"%s\",\"series\":["
             (escape t.title) (escape t.unit_label));
        List.iteri
          (fun j (label, points) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "{\"label\":\"%s\",\"points\":[" (escape label));
            List.iteri
              (fun k (procs, mean, ci90) ->
                if k > 0 then Buffer.add_char b ',';
                Buffer.add_string b
                  (Printf.sprintf "{\"procs\":%d,\"mean\":%s,\"ci90\":%s}" procs (num mean)
                     (num ci90)))
              points;
            Buffer.add_string b "]}")
          t.series;
        Buffer.add_string b "]}")
      ts;
    Buffer.add_string b "]}\n";
    let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" id) in
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc

let with_figure id f =
  match !open_figure with
  | Some _ -> f () (* nested: let the outer call own the buffer *)
  | None ->
    open_figure := Some id;
    tables := [];
    Fun.protect
      ~finally:(fun () ->
        let ts = List.rev !tables in
        tables := [];
        open_figure := None;
        write_figure id ts)
      f
