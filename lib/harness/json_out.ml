type ctx = { dir : string option }

let make ?dir () = { dir }
let disabled = { dir = None }
let enabled t = t.dir <> None

(* Minimal JSON emission: only strings and finite floats need care. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

(* Flat keys only: determinism tooling normalises the whole object away
   with a regexp that stops at the first closing brace. *)
let host_json (d : Hostprof.delta) =
  Printf.sprintf
    "{\"events\":%d,\"events_per_sec\":%s,\"gc_minor_words\":%s,\"gc_major_words\":%s,\"cell_hits\":%d,\"cell_misses\":%d,\"arena_hwm\":%d,\"drains\":%d,\"batch_mean\":%s,\"batch_p99\":%d}"
    d.Hostprof.sim_events
    (num (Hostprof.events_per_sec d))
    (num d.Hostprof.gc_minor_words)
    (num d.Hostprof.gc_major_words)
    d.Hostprof.cell_hits d.Hostprof.cell_misses d.Hostprof.arena_hwm
    d.Hostprof.drains
    (num (Hostprof.batch_mean d))
    (Hostprof.batch_p99 d)

let figure_json ~id ~jobs ~elapsed_s ?host tables =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"figure\":\"%s\",\"jobs\":%d,\"elapsed_s\":%s,"
       (escape id) jobs (num elapsed_s));
  (match host with
  | Some d -> Buffer.add_string b (Printf.sprintf "\"host\":%s," (host_json d))
  | None -> ());
  Buffer.add_string b "\"tables\":[";
  List.iteri
    (fun i (t : Report.table) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"title\":\"%s\",\"unit\":\"%s\",\"series\":["
           (escape t.Report.title) (escape t.Report.unit_label));
      List.iteri
        (fun j (s : Report.series) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"label\":\"%s\",\"points\":[" (escape s.Report.label));
          List.iteri
            (fun k (p : Report.point) ->
              if k > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "{\"procs\":%d,\"mean\":%s,\"ci90\":%s}" p.Report.procs
                   (num p.Report.mean) (num p.Report.ci90)))
            s.Report.points;
          Buffer.add_string b "]}")
        t.Report.series;
      Buffer.add_string b "]}")
    tables;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write_figure t ~id ~jobs ~elapsed_s ?host tables =
  match t.dir with
  | None -> ()
  | Some d ->
    let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" id) in
    let oc = open_out path in
    output_string oc (figure_json ~id ~jobs ~elapsed_s ?host tables);
    close_out oc
