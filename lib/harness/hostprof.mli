(** Host-side performance profile: how fast the simulator itself runs.

    Every figure is bottlenecked on the host cost of the discrete-event
    engine (events retired per host second), not on the modeled
    hardware.  This module snapshots process-wide counters — simulated
    events executed (fed by {!Run}), GC minor/major allocation, and the
    sweep-cell memo's hit/miss counts — and reports deltas.  The bench
    harness and [repro perf] print them; {!Json_out} embeds them in
    [BENCH_*.json].

    Counters are atomics (sweep cells run on {!Pool} worker domains).
    GC words are read with [Gc.quick_stat] on the calling domain;
    terminated worker domains fold their counts into the totals when
    the pool joins them, so snapshots taken around a whole sweep see the
    whole run. *)

type snapshot

val snapshot : unit -> snapshot
(** Current wall clock, cumulative event / memo counters and GC words. *)

type delta = {
  elapsed_s : float;
  sim_events : int;          (** events the engine retired in the window *)
  gc_minor_words : float;
  gc_major_words : float;
  cell_hits : int;           (** sweep-cell memo hits in the window *)
  cell_misses : int;
  arena_hwm : int;           (** largest Mpool buffer-arena footprint any
                                 cell reached, bytes (process max at the
                                 window's end, not a per-window delta) *)
  drains : int;              (** batched-dispatch drains in the window *)
  batch_hist : int array;    (** drains by run length (last = overflow) *)
}

val delta : snapshot -> snapshot -> delta

val measure : (unit -> 'a) -> 'a * delta
(** [measure f] runs [f] between two snapshots. *)

val events_per_sec : delta -> float
(** Simulated events per host second — the headline engine metric (0 on
    an empty window). *)

val cell_hit_pct : delta -> float
(** Share of sweep cells served from the memo, % (0 when no cells ran). *)

val batch_mean : delta -> float
(** Mean events retired per dispatch drain (0 when nothing ran batched). *)

val batch_p99 : delta -> int
(** 99th-percentile drain run length — smallest length covering 99% of
    drains; the histogram's overflow bucket caps it at its index. *)

(** {2 Counter feeds (called by the harness, not by users)} *)

val note_sim_events : int -> unit
(** Add a finished simulation's event count to the process total
    ({!Run} calls this after every cell). *)

val note_cell_hit : unit -> unit
val note_cell_miss : unit -> unit

val note_arena_hwm : int -> unit
(** Fold one pool's arena high-water mark ({!Mpool.arena_hwm}) into the
    process-wide max. *)

val note_dispatch : drains:int -> hist:int array -> unit
(** Fold one finished sim's {!Sim.dispatch_stats} into the totals. *)
