open Pnp_proto
open Pnp_faults

type row = {
  label : string;
  lock_disc : string;
  tcp_locking : string;
  outcome : Overload.outcome;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

let pct p (o : Overload.outcome) =
  match o.Overload.completion_ns with
  | [] -> 0.0
  | cs -> Report.percentile p (List.map (fun (_, ns) -> float_of_int ns /. 1e6) cs)

let burst_plan =
  match Faults.find "burst" with
  | Some p -> p
  | None -> invalid_arg "Compare: missing builtin plan \"burst\""

(* Data-driven registration.  A cell is scenario x variant: scenarios
   supply the workload builder, variants supply the knob settings along
   two axes — the fault axis (clean / burst loss / bounded pool) and the
   lock axis (discipline x granularity).  Adding a scenario or a variant
   is one list entry; nothing else changes. *)

type variant = {
  v_label : string;
  v_plan : Faults.plan option;
  v_pool_capacity : int option;
  v_sb_policy : Sockbuf.policy option;
  v_lock_disc : Pnp_engine.Lock.discipline;
  v_tcp_locking : Tcp.locking;
}

let variant ?plan ?pool_capacity ?sb_policy
    ?(lock_disc = Pnp_engine.Lock.Unfair) ?(tcp_locking = Tcp.One) label =
  {
    v_label = label;
    v_plan = plan;
    v_pool_capacity = pool_capacity;
    v_sb_policy = sb_policy;
    v_lock_disc = lock_disc;
    v_tcp_locking = tcp_locking;
  }

let disc_name = function
  | Pnp_engine.Lock.Unfair -> "mutex"
  | Pnp_engine.Lock.Fifo -> "mcs"
  | Pnp_engine.Lock.Barging -> "barging"

let locking_name = function
  | Tcp.One -> "tcp1"
  | Tcp.Two -> "tcp2"
  | Tcp.Six -> "tcp6"
  | Tcp.Scr -> "scr"
  | Tcp.Rcu -> "rcu"

(* The lock axis: every lock discipline (mutex / MCS / barging grant
   policy) against every state-locking granularity including the
   replication disciplines, on the clean link.  SCR never touches the
   connection lock, so its three discipline rows should agree — a
   built-in cross-check that the matrix labels mean what they say. *)
let lock_axis =
  List.concat_map
    (fun disc ->
      List.map
        (fun lk ->
          variant ~lock_disc:disc ~tcp_locking:lk
            (disc_name disc ^ "+" ^ locking_name lk))
        [ Tcp.One; Tcp.Two; Tcp.Six; Tcp.Scr; Tcp.Rcu ])
    [ Pnp_engine.Lock.Unfair; Pnp_engine.Lock.Fifo; Pnp_engine.Lock.Barging ]

(* The fault axis keeps the original five labels stable for downstream
   consumers of COMPARE.json. *)
let fault_axis_incast =
  [
    variant "baseline";
    variant ~plan:burst_plan "burst";
    variant ~pool_capacity:200 ~sb_policy:Sockbuf.Drop "bounded-pool";
  ]

let fault_axis_bottleneck = [ variant "baseline"; variant ~plan:burst_plan "burst" ]

type scenario = {
  s_name : string;
  s_variants : variant list;
  s_build :
    senders:int -> bytes_per_flow:int -> seed:int -> variant -> Overload.outcome;
}

let scenarios =
  [
    {
      s_name = "incast";
      s_variants = fault_axis_incast @ lock_axis;
      s_build =
        (fun ~senders ~bytes_per_flow ~seed v ->
          Overload.incast ?plan:v.v_plan ~senders ~bytes_per_flow ~seed
            ?sb_policy:v.v_sb_policy ?pool_capacity:v.v_pool_capacity
            ~lock_disc:v.v_lock_disc ~tcp_locking:v.v_tcp_locking ());
    };
    {
      (* The paced fairness workload keeps its scenario defaults for
         senders/bytes; only the variant knobs vary. *)
      s_name = "bottleneck";
      s_variants = fault_axis_bottleneck @ lock_axis;
      s_build =
        (fun ~senders:_ ~bytes_per_flow:_ ~seed v ->
          Overload.shared_bottleneck ?plan:v.v_plan ~seed ?sb_policy:v.v_sb_policy
            ?pool_capacity:v.v_pool_capacity ~lock_disc:v.v_lock_disc
            ~tcp_locking:v.v_tcp_locking ());
    };
  ]

(* Every cell is fully seeded and runs its own simulation world, so the
   matrix is safe for {!Pool.map} and its output is byte-identical at
   any [-j]. *)
let cells ~senders ~bytes_per_flow ~seed =
  List.concat_map
    (fun s ->
      List.map
        (fun v ->
          ( s.s_name ^ "/" ^ v.v_label,
            v,
            fun () -> s.s_build ~senders ~bytes_per_flow ~seed v ))
        s.s_variants)
    scenarios

let run ?(senders = 32) ?(bytes_per_flow = 4096) ?(seed = 1) () =
  let cs = cells ~senders ~bytes_per_flow ~seed in
  let outcomes = Pool.map (fun (_, _, cell) -> cell ()) cs in
  List.map2
    (fun (label, v, _) o ->
      {
        label;
        lock_disc = disc_name v.v_lock_disc;
        tcp_locking = locking_name v.v_tcp_locking;
        outcome = o;
        p50_ms = pct 50.0 o;
        p90_ms = pct 90.0 o;
        p99_ms = pct 99.0 o;
      })
    cs outcomes

let passed rows = List.for_all (fun r -> Overload.passed r.outcome) rows

let print rows =
  Printf.printf "%-24s %-10s %5s %5s %5s %10s %7s %9s %9s %9s %6s %7s %7s %s\n"
    "scenario" "plan" "n" "acc" "done" "good Mb/s" "jain" "p50 ms" "p90 ms" "p99 ms"
    "drops" "rexmit" "stalls" "verdict";
  List.iter
    (fun r ->
      let o = r.outcome in
      Printf.printf
        "%-24s %-10s %5d %5d %5d %10.2f %7.3f %9.2f %9.2f %9.2f %6d %7d %7d %s\n"
        r.label o.Overload.plan_name o.Overload.senders o.Overload.accepted
        o.Overload.completed o.Overload.goodput_mbps o.Overload.fairness r.p50_ms
        r.p90_ms r.p99_ms
        (Pnp_analysis.Recovery.total_drops o.Overload.drops)
        o.Overload.rexmits
        (List.length o.Overload.stalls)
        (if Overload.passed o then "PASS" else "FAIL");
      if not (Overload.passed o) then
        List.iter
          (fun f -> Format.printf "  %a@." Pnp_analysis.Finding.pp f)
          o.Overload.findings)
    rows;
  Printf.printf "compare: %d scenario(s), %d failed\n" (List.length rows)
    (List.length (List.filter (fun r -> not (Overload.passed r.outcome)) rows))

let to_json rows =
  let esc = Json_out.escape in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"compare\":[";
  List.iteri
    (fun i r ->
      let o = r.outcome in
      let d = o.Overload.drops in
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"label\":\"%s\",\"scenario\":\"%s\",\"plan\":\"%s\",\
            \"lock_disc\":\"%s\",\"tcp_locking\":\"%s\",\"senders\":%d,\
            \"bytes_per_flow\":%d,\"accepted\":%d,\"completed\":%d,\
            \"elapsed_ns\":%d,\"goodput_mbps\":%.3f,\"fairness\":%.4f,\
            \"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\
            \"drops\":{\"link\":%d,\"pool_pressure\":%d,\"syn_backlog\":%d,\
            \"sockbuf_full\":%d,\"checksum\":%d},\"rexmits\":%d,\"stalls\":%d,\
            \"findings\":%d,\"passed\":%b}"
           (esc r.label) (esc o.Overload.scenario) (esc o.Overload.plan_name)
           (esc r.lock_disc) (esc r.tcp_locking) o.Overload.senders
           o.Overload.bytes_per_flow o.Overload.accepted o.Overload.completed
           o.Overload.elapsed_ns o.Overload.goodput_mbps o.Overload.fairness
           r.p50_ms r.p90_ms r.p99_ms d.Pnp_analysis.Recovery.link
           d.Pnp_analysis.Recovery.pool_pressure d.Pnp_analysis.Recovery.syn_backlog
           d.Pnp_analysis.Recovery.sockbuf_full d.Pnp_analysis.Recovery.checksum
           o.Overload.rexmits
           (List.length o.Overload.stalls)
           (List.length o.Overload.findings)
           (Overload.passed o)))
    rows;
  Buffer.add_string b "]}\n";
  Buffer.contents b
