open Pnp_proto
open Pnp_faults

type row = {
  label : string;
  outcome : Overload.outcome;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

let pct p (o : Overload.outcome) =
  match o.Overload.completion_ns with
  | [] -> 0.0
  | cs -> Report.percentile p (List.map (fun (_, ns) -> float_of_int ns /. 1e6) cs)

let burst_plan =
  match Faults.find "burst" with
  | Some p -> p
  | None -> invalid_arg "Compare: missing builtin plan \"burst\""

(* The fixed scenario matrix: the same incast workload clean, under
   Gilbert-Elliott burst loss, and with a bounded mnode pool shedding at
   the admission boundary; plus the paced shared-bottleneck fairness
   workload clean and bursty.  Every cell is fully seeded and runs its
   own simulation world, so the matrix is safe for {!Pool.map} and its
   output is byte-identical at any [-j]. *)
let cells ~senders ~bytes_per_flow ~seed =
  [
    ("incast/baseline", fun () -> Overload.incast ~senders ~bytes_per_flow ~seed ());
    ( "incast/burst",
      fun () -> Overload.incast ~plan:burst_plan ~senders ~bytes_per_flow ~seed () );
    ( "incast/bounded-pool",
      fun () ->
        Overload.incast ~senders ~bytes_per_flow ~seed ~pool_capacity:200
          ~sb_policy:Sockbuf.Drop () );
    ("bottleneck/baseline", fun () -> Overload.shared_bottleneck ~seed ());
    ("bottleneck/burst", fun () -> Overload.shared_bottleneck ~plan:burst_plan ~seed ());
  ]

let run ?(senders = 32) ?(bytes_per_flow = 4096) ?(seed = 1) () =
  let cs = cells ~senders ~bytes_per_flow ~seed in
  let outcomes = Pool.map (fun (_, cell) -> cell ()) cs in
  List.map2
    (fun (label, _) o ->
      { label; outcome = o; p50_ms = pct 50.0 o; p90_ms = pct 90.0 o; p99_ms = pct 99.0 o })
    cs outcomes

let passed rows = List.for_all (fun r -> Overload.passed r.outcome) rows

let print rows =
  Printf.printf "%-20s %-10s %5s %5s %5s %10s %7s %9s %9s %9s %6s %7s %7s %s\n"
    "scenario" "plan" "n" "acc" "done" "good Mb/s" "jain" "p50 ms" "p90 ms" "p99 ms"
    "drops" "rexmit" "stalls" "verdict";
  List.iter
    (fun r ->
      let o = r.outcome in
      Printf.printf
        "%-20s %-10s %5d %5d %5d %10.2f %7.3f %9.2f %9.2f %9.2f %6d %7d %7d %s\n"
        r.label o.Overload.plan_name o.Overload.senders o.Overload.accepted
        o.Overload.completed o.Overload.goodput_mbps o.Overload.fairness r.p50_ms
        r.p90_ms r.p99_ms
        (Pnp_analysis.Recovery.total_drops o.Overload.drops)
        o.Overload.rexmits
        (List.length o.Overload.stalls)
        (if Overload.passed o then "PASS" else "FAIL");
      if not (Overload.passed o) then
        List.iter
          (fun f -> Format.printf "  %a@." Pnp_analysis.Finding.pp f)
          o.Overload.findings)
    rows;
  Printf.printf "compare: %d scenario(s), %d failed\n" (List.length rows)
    (List.length (List.filter (fun r -> not (Overload.passed r.outcome)) rows))

let to_json rows =
  let esc = Json_out.escape in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"compare\":[";
  List.iteri
    (fun i r ->
      let o = r.outcome in
      let d = o.Overload.drops in
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"label\":\"%s\",\"scenario\":\"%s\",\"plan\":\"%s\",\"senders\":%d,\
            \"bytes_per_flow\":%d,\"accepted\":%d,\"completed\":%d,\
            \"elapsed_ns\":%d,\"goodput_mbps\":%.3f,\"fairness\":%.4f,\
            \"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\
            \"drops\":{\"link\":%d,\"pool_pressure\":%d,\"syn_backlog\":%d,\
            \"sockbuf_full\":%d,\"checksum\":%d},\"rexmits\":%d,\"stalls\":%d,\
            \"findings\":%d,\"passed\":%b}"
           (esc r.label) (esc o.Overload.scenario) (esc o.Overload.plan_name)
           o.Overload.senders o.Overload.bytes_per_flow o.Overload.accepted
           o.Overload.completed o.Overload.elapsed_ns o.Overload.goodput_mbps
           o.Overload.fairness r.p50_ms r.p90_ms r.p99_ms d.Pnp_analysis.Recovery.link
           d.Pnp_analysis.Recovery.pool_pressure d.Pnp_analysis.Recovery.syn_backlog
           d.Pnp_analysis.Recovery.sockbuf_full d.Pnp_analysis.Recovery.checksum
           o.Overload.rexmits
           (List.length o.Overload.stalls)
           (List.length o.Overload.findings)
           (Overload.passed o)))
    rows;
  Buffer.add_string b "]}\n";
  Buffer.contents b
