open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver
open Pnp_faults
open Pnp_analysis

let addr_a = 0x0a000001
let addr_b = 0x0a000002

type outcome = {
  plan_name : string;
  disc : Lock.discipline;
  locking : Tcp.locking;
  bytes : int;
  tcp_done_ns : int;
  tcp_rexmits : int;
  tcp_link : Link.fault_stats;
  udp_link : Link.fault_stats;
  udp : Recovery.udp_account;
  corruption : Recovery.corruption;
  findings : Finding.t list;
}

let disc_label = function
  | Lock.Unfair -> "mutex"
  | Lock.Fifo -> "mcs"
  | Lock.Barging -> "barging"

let locking_label = function
  | Tcp.One -> "tcp1"
  | Tcp.Two -> "tcp2"
  | Tcp.Six -> "tcp6"
  | Tcp.Scr -> "scr"
  | Tcp.Rcu -> "rcu"

(* A deterministic printable golden stream, keyed by the seed so different
   cells exchange different bytes. *)
let golden ~seed ~bytes = String.init bytes (fun i -> Char.chr (32 + ((i + (seed * 131)) mod 95)))

let caught_checksums (a : Stack.t) (b : Stack.t) =
  Ip.header_failures a.Stack.ip + Ip.header_failures b.Stack.ip
  + Tcp.checksum_failures a.Stack.tcp
  + Tcp.checksum_failures b.Stack.tcp
  + Udp.checksum_failures a.Stack.udp
  + Udp.checksum_failures b.Stack.udp

(* ------------------------------------------------------------------ *)
(* TCP world: a full blocking-socket transfer over the faulted link     *)
(* ------------------------------------------------------------------ *)

let tcp_world ~plan ~disc ~tcp_locking ~seed ~bytes ~horizon =
  let plat = Platform.create ~seed ~lock_disc:disc Arch.challenge_100 in
  let cfg = { Tcp.default_config with Tcp.mss = 1024; locking = tcp_locking } in
  let a = Stack.create plat ~tcp_config:cfg ~local_addr:addr_a () in
  let b = Stack.create plat ~tcp_config:cfg ~local_addr:addr_b () in
  (* Slow the wire down (40 Mbit/s, 200 us) so a default transfer spans
     the plans' burst and blackout windows instead of finishing first. *)
  let link =
    Link.connect plat ~bandwidth_mbps:40.0 ~latency:(Units.us 200.0) ~plan ~a ~b ()
  in
  let payload = golden ~seed ~bytes in
  let received_bytes = ref 0 in
  let received_digest = ref (Recovery.digest "") in
  let got_eof = ref false in
  let eof_at = ref (-1) in
  let established = ref false in
  let sent_all = ref false in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"chaos-server" (fun () ->
        let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:80 in
        let sock = Socket.Listener.accept lst in
        let rec drain () =
          match Socket.recv_string sock with
          | Some s ->
            received_bytes := !received_bytes + String.length s;
            received_digest := Recovery.digest_add !received_digest s;
            drain ()
          | None ->
            got_eof := true;
            eof_at := Sim.now plat.Platform.sim
        in
        drain ())
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"chaos-client" (fun () ->
        Sim.delay plat.Platform.sim (Units.ms 1.0);
        let sock =
          Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:5000
            ~remote_addr:addr_b ~remote_port:80
        in
        established := true;
        let n = String.length payload in
        let rec send_from off =
          if off < n then begin
            let len = min 1000 (n - off) in
            Socket.send_string sock (String.sub payload off len);
            send_from (off + len)
          end
        in
        send_from 0;
        sent_all := true;
        Socket.close sock)
  in
  Sim.run ~until:horizon plat.Platform.sim;
  let rexmits =
    List.fold_left (fun acc s -> acc + (Tcp.stats s).Tcp.rexmits) 0 (Tcp.sessions a.Stack.tcp)
  in
  let stream =
    {
      Recovery.label = "tcp";
      sent_bytes = String.length payload;
      received_bytes = !received_bytes;
      sent_digest = Recovery.digest payload;
      received_digest = !received_digest;
      established = !established;
      drained = !sent_all && !got_eof && Link.in_flight link = 0;
      rexmits;
    }
  in
  (stream, Link.fault_stats link, caught_checksums a b, !eof_at)

(* ------------------------------------------------------------------ *)
(* UDP world: paced datagrams whose fate must balance exactly           *)
(* ------------------------------------------------------------------ *)

let udp_world ~plan ~disc ~seed ~datagrams ~horizon =
  let plat = Platform.create ~seed:(seed + 7919) ~lock_disc:disc Arch.challenge_100 in
  let a = Stack.create plat ~local_addr:addr_a () in
  let b = Stack.create plat ~local_addr:addr_b () in
  let link = Link.connect plat ~plan ~a ~b () in
  let delivered = ref 0 in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"chaos-udp-recv" (fun () ->
        ignore
          (Udp.open_session b.Stack.udp ~local_port:9 ~remote_addr:addr_a ~remote_port:9
             ~recv:(fun m ->
               incr delivered;
               Msg.destroy m)))
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"chaos-udp-send" (fun () ->
        let sess =
          Udp.open_session a.Stack.udp ~local_port:9 ~remote_addr:addr_b ~remote_port:9
            ~recv:(fun m -> Msg.destroy m)
        in
        let body = golden ~seed ~bytes:512 in
        for _ = 1 to datagrams do
          Udp.send sess (Msg.of_string a.Stack.pool body);
          Sim.delay plat.Platform.sim (Units.us 200.0)
        done)
  in
  Sim.run ~until:horizon plat.Platform.sim;
  let fs = Link.fault_stats link in
  let dropped_proto =
    Fddi.frames_dropped b.Stack.fddi + Ip.datagrams_dropped b.Stack.ip
    + Udp.datagrams_dropped b.Stack.udp
  in
  let account =
    {
      Recovery.injected = fs.Link.offered;
      duplicated = fs.Link.duplicated;
      delivered = !delivered;
      dropped_link = fs.Link.dropped;
      dropped_proto;
      dropped_pressure = fs.Link.dropped_pool_pressure;
    }
  in
  (account, fs, caught_checksums a b)

(* ------------------------------------------------------------------ *)
(* Cells and the matrix                                                 *)
(* ------------------------------------------------------------------ *)

let run_cell ?(bytes = 200_000) ?(datagrams = 600) ?(seed = 1)
    ?(tcp_locking = Tcp.One) ~plan ~disc () =
  let horizon = Units.sec 300.0 in
  let stream, tcp_link, tcp_caught, eof_at =
    tcp_world ~plan ~disc ~tcp_locking ~seed ~bytes ~horizon
  in
  let udp, udp_link, udp_caught =
    udp_world ~plan ~disc ~seed ~datagrams ~horizon:(Units.sec 10.0)
  in
  let corruption =
    {
      Recovery.injected = tcp_link.Link.corrupted + udp_link.Link.corrupted;
      caught = tcp_caught + udp_caught;
    }
  in
  let obs =
    {
      Recovery.run =
        Printf.sprintf "chaos/%s/%s/%s" plan.Faults.name (disc_label disc)
          (locking_label tcp_locking);
      streams = [ stream ];
      corruption = Some corruption;
      udp = Some udp;
    }
  in
  {
    plan_name = plan.Faults.name;
    disc;
    locking = tcp_locking;
    bytes;
    tcp_done_ns = eof_at;
    tcp_rexmits = stream.Recovery.rexmits;
    tcp_link;
    udp_link;
    udp;
    corruption;
    findings = Recovery.check obs;
  }

let passed o = o.findings = []

let to_line o =
  let u = o.udp in
  Printf.sprintf
    "%-8s %-6s %-4s tcp: %dB in %.3fs rexmits=%-3d link(off=%d drop=%d corr=%d dup=%d reord=%d) | \
     udp: %d+%d = %d+%d+%d | cksum %d/%d | %s"
    o.plan_name (disc_label o.disc) (locking_label o.locking) o.bytes
    (if o.tcp_done_ns < 0 then -1.0 else float_of_int o.tcp_done_ns /. 1e9)
    o.tcp_rexmits o.tcp_link.Link.offered o.tcp_link.Link.dropped
    o.tcp_link.Link.corrupted o.tcp_link.Link.duplicated o.tcp_link.Link.reordered
    u.Recovery.injected u.Recovery.duplicated u.Recovery.delivered u.Recovery.dropped_link
    u.Recovery.dropped_proto o.corruption.Recovery.caught o.corruption.Recovery.injected
    (if passed o then "PASS" else "FAIL")

(* The matrix's recovery-oracle SCR leg: every plan also runs with the
   log-replay discipline under MCS, so faults (loss, dup, reorder,
   corruption) hit the replay path and the oracle still demands a
   byte-identical drained stream. *)
let matrix ?bytes ?datagrams ?seed () =
  let cells =
    List.concat_map
      (fun (_, plan) ->
        [
          (plan, Lock.Unfair, Tcp.One);
          (plan, Lock.Fifo, Tcp.One);
          (plan, Lock.Fifo, Tcp.Scr);
        ])
      Faults.builtin
  in
  Pool.map
    (fun (plan, disc, tcp_locking) ->
      run_cell ?bytes ?datagrams ?seed ~plan ~disc ~tcp_locking ())
    cells
