(* Host-side performance profile of the simulator itself.

   The paper's methodology multiplies seeds x processor counts x config
   cells, so the wall-clock cost of the reproduction is dominated by how
   many simulated events the host machine can retire per second — not by
   anything about the modeled hardware.  This module is the measuring
   stick: a process-wide event counter fed by [Run], OCaml GC allocation
   counters, and the sweep-cell memo's hit/miss counters, snapshotted
   around a workload and reported as a delta.

   The counters are atomics because sweep cells run on Pool worker
   domains.  GC words come from [Gc.quick_stat] on the calling domain;
   counts from worker domains fold into the global totals when the pool
   joins them, so a snapshot taken after a sweep sees the whole run. *)

let sim_events = Atomic.make 0
let cell_hits = Atomic.make 0
let cell_misses = Atomic.make 0

(* Mpool buffer-arena high-water mark: a process-wide max over pools (a
   max, not a sum — the figure of interest is the largest arena any one
   cell needed, which bounds per-cell host memory). *)
let arena_hwm = Atomic.make 0

(* Batched-dispatch shape, merged over every finished sim: total drains
   plus the per-run-length histogram [Sim.dispatch_stats] reports (bucket
   i = drains that retired i events; last bucket = overflow). *)
let hist_buckets = 65
let batch_drains = Atomic.make 0
let batch_hist = Array.init hist_buckets (fun _ -> Atomic.make 0)

let note_sim_events n = if n > 0 then ignore (Atomic.fetch_and_add sim_events n)
let note_cell_hit () = ignore (Atomic.fetch_and_add cell_hits 1)
let note_cell_miss () = ignore (Atomic.fetch_and_add cell_misses 1)

let rec note_arena_hwm n =
  let cur = Atomic.get arena_hwm in
  if n > cur && not (Atomic.compare_and_set arena_hwm cur n) then note_arena_hwm n

let note_dispatch ~drains ~hist =
  if drains > 0 then ignore (Atomic.fetch_and_add batch_drains drains);
  Array.iteri
    (fun i c ->
      if i < hist_buckets && c > 0 then ignore (Atomic.fetch_and_add batch_hist.(i) c))
    hist

type snapshot = {
  wall_s : float;
  events : int;
  minor_words : float;
  major_words : float;
  hits : int;
  misses : int;
  hwm : int;
  drains : int;
  hist : int array;
}

let snapshot () =
  let gc = Gc.quick_stat () in
  {
    wall_s = Unix.gettimeofday ();
    events = Atomic.get sim_events;
    minor_words = gc.Gc.minor_words;
    major_words = gc.Gc.major_words;
    hits = Atomic.get cell_hits;
    misses = Atomic.get cell_misses;
    hwm = Atomic.get arena_hwm;
    drains = Atomic.get batch_drains;
    hist = Array.map Atomic.get batch_hist;
  }

type delta = {
  elapsed_s : float;
  sim_events : int;
  gc_minor_words : float;
  gc_major_words : float;
  cell_hits : int;
  cell_misses : int;
  arena_hwm : int;
  drains : int;
  batch_hist : int array;
}

let delta before after =
  {
    elapsed_s = after.wall_s -. before.wall_s;
    sim_events = after.events - before.events;
    gc_minor_words = after.minor_words -. before.minor_words;
    gc_major_words = after.major_words -. before.major_words;
    cell_hits = after.hits - before.hits;
    cell_misses = after.misses - before.misses;
    (* The arena mark is a running process max, not a rate: report the
       window-end value rather than a meaningless difference. *)
    arena_hwm = after.hwm;
    drains = after.drains - before.drains;
    batch_hist = Array.mapi (fun i c -> c - before.hist.(i)) after.hist;
  }

let events_per_sec d =
  if d.elapsed_s > 0.0 then float_of_int d.sim_events /. d.elapsed_s else 0.0

let cell_hit_pct d =
  let total = d.cell_hits + d.cell_misses in
  if total > 0 then 100.0 *. float_of_int d.cell_hits /. float_of_int total
  else 0.0

let batch_mean d =
  if d.drains > 0 then float_of_int d.sim_events /. float_of_int d.drains else 0.0

(* Smallest run length k with at least 99% of drains at length <= k; the
   overflow bucket makes the answer "last bucket or more". *)
let batch_p99 d =
  let total = Array.fold_left ( + ) 0 d.batch_hist in
  if total = 0 then 0
  else begin
    let target = ((99 * total) + 99) / 100 in
    let k = ref 0 and cum = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= target then begin
             k := i;
             raise Exit
           end)
         d.batch_hist
     with Exit -> ());
    !k
  end

let measure f =
  let before = snapshot () in
  let v = f () in
  (v, delta before (snapshot ()))
