(** Heavy-traffic overload scenarios over a real link: incast fan-in and
    a shared-bottleneck fairness workload, watched for liveness and
    checked against the {!Pnp_analysis.Recovery.check_overload} oracle.

    Both scenarios use one client stack and one server stack joined by a
    single {!Pnp_driver.Link} — the link {e is} the shared bottleneck, as
    in the classic incast topology (N sources funnelling into one
    receiver port).  Each of the N flows is a full TCP connection from
    its own client port to the server's port 80, so the server's sharded
    demux map carries N+1 entries and every handshake, segment and FIN
    crosses the (optionally faulted) wire.

    A {!Pnp_engine.Watchdog} is armed for the whole run: progress is
    bytes delivered + connections established + accounted drops +
    retransmissions, so a world that is shedding load or retransmitting
    is {e live}; only a world doing none of these stalls, which stops
    the run and becomes a finding instead of a hang.  Completion of
    every flow stops the run early (termination detection), so generous
    horizons cost nothing on healthy runs.

    An outcome with [findings = []] means the run degraded gracefully:
    every delivered byte prefix was byte-exact against the flow's golden
    pattern, every completed flow delivered everything, and any
    incomplete flow is covered by a named drop cause. *)

type flow = {
  id : int;
  mutable established : bool;
  mutable completed : bool;
  mutable received : int;
  mutable digest : int;
  mutable start_ns : int;   (** when the client began its connect, -1 if never *)
  mutable done_ns : int;    (** when the stream finished at the server, -1 *)
}

type outcome = {
  scenario : string;
  senders : int;
  bytes_per_flow : int;
  plan_name : string;        (** fault plan on the link *)
  accepted : int;            (** connections that reached ESTABLISHED *)
  completed : int;           (** flows fully delivered (FIN in order) *)
  elapsed_ns : int;          (** simulated time when the run ended *)
  goodput_mbps : float;      (** delivered application bytes over [elapsed_ns] *)
  fairness : float;          (** {!Report.jain} over per-flow delivered bytes *)
  completion_ns : (int * int) list;
      (** (flow id, connect-to-done latency) for completed flows, id order *)
  drops : Pnp_analysis.Recovery.overload_drops;  (** the named-cause taxonomy *)
  rexmits : int;             (** client-side TCP retransmissions *)
  pool_pressure_entries : int;
      (** times either stack's pool crossed its soft watermark *)
  stalls : Pnp_engine.Watchdog.stall list;
  findings : Pnp_analysis.Finding.t list;
      (** oracle + watchdog findings; [] = degraded gracefully *)
}

val incast :
  ?plan:Pnp_faults.Faults.plan ->
  ?senders:int ->
  ?bytes_per_flow:int ->
  ?seed:int ->
  ?syn_backlog:int ->
  ?sb_policy:Pnp_proto.Sockbuf.policy ->
  ?pool_capacity:int ->
  ?demux_shards:int ->
  ?lock_disc:Pnp_engine.Lock.discipline ->
  ?tcp_locking:Pnp_proto.Tcp.locking ->
  ?stall_ns:Pnp_util.Units.ns ->
  ?horizon:Pnp_util.Units.ns ->
  unit ->
  outcome
(** Synchronized fan-in: all [senders] (default 32, tested to 10^3)
    connect at the same instant — with the default [syn_backlog] of 16
    the burst overruns the listener and is recovered by SYN
    retransmission — then each pushes [bytes_per_flow] (default 2048)
    over the shared 100 Mbit/s link.  [demux_shards] (default 8) sizes
    the server's sharded demux map; [pool_capacity] (default unbounded)
    turns on mnode admission control.  [lock_disc] (default unfair
    mutex) and [tcp_locking] (default TCP-1) pick the lock discipline
    and the per-connection parallelization for both stacks, so the
    overload matrix can sweep the lock ladder and the SCR/RCU
    disciplines ({!Compare}). *)

val shared_bottleneck :
  ?plan:Pnp_faults.Faults.plan ->
  ?senders:int ->
  ?bytes_per_flow:int ->
  ?seed:int ->
  ?syn_backlog:int ->
  ?sb_policy:Pnp_proto.Sockbuf.policy ->
  ?pool_capacity:int ->
  ?demux_shards:int ->
  ?lock_disc:Pnp_engine.Lock.discipline ->
  ?tcp_locking:Pnp_proto.Tcp.locking ->
  ?stall_ns:Pnp_util.Units.ns ->
  ?horizon:Pnp_util.Units.ns ->
  unit ->
  outcome
(** Steady fairness workload: [senders] (default 8) long flows (default
    40 kB each) join 2 ms apart and share a 40 Mbit/s link, so the
    interesting number is [fairness] — how evenly TCP divides the
    bottleneck — and the completion-latency spread, not raw goodput. *)

val passed : outcome -> bool
(** [findings = []]. *)

val to_line : outcome -> string
(** One fixed-width summary line (deterministic; safe to diff across
    [-j]). *)
