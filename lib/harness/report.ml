open Pnp_util

type point = { procs : int; mean : float; ci90 : float }
type series = { label : string; points : point list }
type table = { title : string; unit_label : string; series : series list }

let table ~title ~unit_label series = { title; unit_label; series }

(* One sweep cell = one (processor count, seed) pair.  The cells are
   independent seeded simulations, so they fan out across the worker
   pool; results come back in input order, which keeps every derived
   table identical to the serial run. *)
let metric_series ~label ~procs ~seeds ~metric cfg_of_procs =
  let cells =
    List.concat_map (fun p -> List.init seeds (fun s -> (p, s))) procs
  in
  let results =
    Pool.map
      (fun (p, s) ->
        let cfg = cfg_of_procs p in
        metric (Run.run { cfg with Config.seed = cfg.Config.seed + s }))
      cells
  in
  (* Regroup the flat cell results: [seeds] consecutive values per
     processor count, in sweep order. *)
  let rec chunk = function
    | [] -> []
    | vs ->
      let rec split i acc = function
        | rest when i = seeds -> (List.rev acc, rest)
        | v :: rest -> split (i + 1) (v :: acc) rest
        | [] -> invalid_arg "Report.metric_series: short result list"
      in
      let mine, rest = split 0 [] vs in
      mine :: chunk rest
  in
  let points =
    List.map2
      (fun p vs ->
        let s = Stats.summary vs in
        { procs = p; mean = s.Stats.mean; ci90 = s.Stats.ci90 })
      procs (chunk results)
  in
  { label; points }

let throughput_series ~label ~procs ~seeds cfg_of_procs =
  metric_series ~label ~procs ~seeds ~metric:(fun r -> r.Run.throughput_mbps) cfg_of_procs

let speedup s =
  match s.points with
  | [] -> s
  | first :: _ ->
    let base = first.mean in
    if base <= 0.0 then s
    else
      {
        s with
        points =
          List.map
            (fun p -> { p with mean = p.mean /. base; ci90 = p.ci90 /. base })
            s.points;
      }

let print_table ~title ~unit_label series =
  Printf.printf "\n== %s ==\n" title;
  let width = List.fold_left (fun w s -> max w (String.length s.label)) 14 series in
  let width = width + 2 in
  Printf.printf "%-6s" "procs";
  List.iter (fun s -> Printf.printf "%*s" width s.label) series;
  Printf.printf "   (%s)\n" unit_label;
  let all_procs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map (fun p -> p.procs) s.points) series)
  in
  List.iter
    (fun procs ->
      Printf.printf "%-6d" procs;
      List.iter
        (fun s ->
          match List.find_opt (fun p -> p.procs = procs) s.points with
          | Some p -> Printf.printf "%*s" width (Printf.sprintf "%.1f ±%.1f" p.mean p.ci90)
          | None -> Printf.printf "%*s" width "-")
        series;
      print_newline ())
    all_procs;
  flush stdout

let print t = print_table ~title:t.title ~unit_label:t.unit_label t.series

let value_at s procs =
  match List.find_opt (fun p -> p.procs = procs) s.points with
  | Some p -> p.mean
  | None -> raise Not_found

(* Jain's fairness index: (sum x)^2 / (n * sum x^2).  1.0 = perfectly
   even shares; 1/n = one flow has everything.  All-zero allocations are
   treated as perfectly fair (nobody got anything, evenly). *)
let jain = function
  | [] -> 1.0
  | xs ->
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0
    else s *. s /. (float_of_int (List.length xs) *. s2)

(* Nearest-rank percentile on a copy of the input; [p] in [0, 100]. *)
let percentile p xs =
  match xs with
  | [] -> invalid_arg "Report.percentile: empty list"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Report.percentile: p out of range";
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(* Table-1-style contention attribution: where the blocked time went,
   lock by lock, over the traced window. *)
let print_lock_table ?(max_rows = 20) tracer =
  let open Pnp_engine in
  let stats = Trace.lock_table tracer in
  let total_wait =
    List.fold_left (fun acc s -> acc + s.Trace.wait_ns) 0 stats
  in
  Printf.printf "\n== Lock contention (traced window) ==\n";
  if stats = [] then print_string "  (no lock events recorded)\n"
  else begin
    let ms ns = float_of_int ns /. 1e6 in
    Printf.printf "%-28s %9s %9s %10s %10s %10s %6s %7s\n" "lock" "acqs" "contend"
      "wait ms" "hold ms" "handoff ms" "maxQ" "wait%";
    let shown = ref 0 in
    List.iter
      (fun s ->
        if !shown < max_rows then begin
          incr shown;
          Printf.printf "%-28s %9d %9d %10.3f %10.3f %10.3f %6d %6.1f%%\n"
            s.Trace.lock s.Trace.acquisitions s.Trace.contended (ms s.Trace.wait_ns)
            (ms s.Trace.hold_ns) (ms s.Trace.handoff_ns) s.Trace.max_queue
            (if total_wait > 0 then
               100.0 *. float_of_int s.Trace.wait_ns /. float_of_int total_wait
             else 0.0)
        end)
      stats;
    let hidden = List.length stats - !shown in
    if hidden > 0 then Printf.printf "  ... %d more locks\n" hidden
  end;
  flush stdout

(* Host-side profile: how fast the harness itself ran a workload.  This
   is presentation (stdout, main domain) — the numbers describe the host
   machine, so it must never appear in figure data output that the
   determinism CI diffs byte-for-byte. *)
let print_host_profile ?(title = "Host profile") (d : Hostprof.delta) =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "  %-22s %12.3f s\n" "wall clock" d.Hostprof.elapsed_s;
  Printf.printf "  %-22s %12d\n" "simulated events" d.Hostprof.sim_events;
  Printf.printf "  %-22s %12.0f\n" "events / host sec" (Hostprof.events_per_sec d);
  Printf.printf "  %-22s %12.2f M\n" "GC minor words"
    (d.Hostprof.gc_minor_words /. 1e6);
  Printf.printf "  %-22s %12.2f M\n" "GC major words"
    (d.Hostprof.gc_major_words /. 1e6);
  Printf.printf "  %-22s %6d hit / %d miss (%.1f%% hit)\n" "sweep-cell memo"
    d.Hostprof.cell_hits d.Hostprof.cell_misses (Hostprof.cell_hit_pct d);
  Printf.printf "  %-22s %12.2f MB\n" "arena high-water"
    (float_of_int d.Hostprof.arena_hwm /. 1e6);
  Printf.printf "  %-22s %12d (mean %.2f ev, p99 %d)\n" "dispatch drains"
    d.Hostprof.drains (Hostprof.batch_mean d) (Hostprof.batch_p99 d);
  flush stdout
