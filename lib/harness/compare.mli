(** Cross-scenario overload comparator behind [repro compare].

    Runs a data-driven matrix of {!Overload} scenarios x variants.
    Scenarios register a workload builder (incast fan-in, paced
    shared-bottleneck fairness); variants register knob settings along
    two axes: the fault axis (clean link, Gilbert-Elliott burst loss, a
    bounded mnode pool shedding at the admission boundary) and the lock
    axis — every lock discipline (mutex / MCS / barging) crossed with
    every TCP state-locking granularity (TCP-1/2/6 plus the SCR and RCU
    replication disciplines).  Each row lines up goodput, Jain fairness,
    p50/p90/p99 connect-to-done latency, the named-cause drop taxonomy
    and the oracle/watchdog verdicts.

    Cells fan out over {!Pool.map} and every cell is fully seeded, so
    {!print} output and {!to_json} are byte-identical at any [-j]. *)

type row = {
  label : string;              (** "scenario/variant" *)
  lock_disc : string;          (** "mutex" | "mcs" | "barging" *)
  tcp_locking : string;        (** "tcp1" | "tcp2" | "tcp6" | "scr" | "rcu" *)
  outcome : Overload.outcome;
  p50_ms : float;              (** connect-to-done latency percentiles over *)
  p90_ms : float;              (** completed flows ({!Report.percentile}, *)
  p99_ms : float;              (** nearest-rank); 0 if nothing completed *)
}

val run : ?senders:int -> ?bytes_per_flow:int -> ?seed:int -> unit -> row list
(** [run ()] computes the matrix: [senders] (default 32) and
    [bytes_per_flow] (default 4096) size the incast variants; the
    bottleneck variants keep their scenario defaults (8 paced 40 kB
    flows).  Rows come back in fixed registration order, the original
    five fault-axis labels first within each scenario. *)

val passed : row list -> bool
(** Every row's outcome has no findings. *)

val print : row list -> unit
(** The fixed-width comparison table (plus each failing row's findings)
    on stdout; deterministic. *)

val to_json : row list -> string
(** The same rows as one machine-readable JSON document. *)
