(** Cross-scenario overload comparator behind [repro compare].

    Runs a fixed matrix of {!Overload} scenarios — incast clean, incast
    under Gilbert-Elliott burst loss, incast with a bounded mnode pool
    (admission control shedding at the boundary), and the paced
    shared-bottleneck fairness workload clean and bursty — and lines
    their outcomes up: goodput, Jain fairness, p50/p90/p99
    connect-to-done latency, the named-cause drop taxonomy and the
    oracle/watchdog verdicts.

    Cells fan out over {!Pool.map} and every cell is fully seeded, so
    {!print} output and {!to_json} are byte-identical at any [-j]. *)

type row = {
  label : string;              (** "scenario/variant" *)
  outcome : Overload.outcome;
  p50_ms : float;              (** connect-to-done latency percentiles over *)
  p90_ms : float;              (** completed flows ({!Report.percentile}, *)
  p99_ms : float;              (** nearest-rank); 0 if nothing completed *)
}

val run : ?senders:int -> ?bytes_per_flow:int -> ?seed:int -> unit -> row list
(** [run ()] computes the matrix: [senders] (default 32) and
    [bytes_per_flow] (default 4096) size the three incast variants; the
    bottleneck variants keep their scenario defaults (8 paced 40 kB
    flows).  Rows come back in fixed presentation order. *)

val passed : row list -> bool
(** Every row's outcome has no findings. *)

val print : row list -> unit
(** The fixed-width comparison table (plus each failing row's findings)
    on stdout; deterministic. *)

val to_json : row list -> string
(** The same rows as one machine-readable JSON document. *)
