open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver

type result = {
  throughput_mbps : float;
  goodput_mbps : float;
  packets : int;
  ooo_pct : float;
  wire_misorder_pct : float;
  pred_miss_pct : float;
  rexmit_pct : float;
  lock_wait_pct : float;
  cache_hit_pct : float;
  gate_wait_ns : int;
  scr_appends : int;
  scr_replayed : int;
  scr_resyncs : int;
  rcu_reads : int;
}

let sender_addr = 0x0a000001
let receiver_addr = 0x0a000002

type probe = {
  bytes : unit -> int;              (* payload bytes forwarded so far *)
  unique : unit -> int;             (* in-order bytes net of retransmitted dups *)
  packets : unit -> int;
  ooo : unit -> int * int;          (* (ooo segments, data segments) *)
  wire : unit -> int * int;         (* (misordered, data segments) on the wire *)
  pred : unit -> int * int;         (* (misses, hits+misses) *)
  lock_wait : unit -> int;
  cache : unit -> int * int;        (* (cache hits, allocations) *)
  gate_wait : unit -> int;
  rexmit : unit -> int * int;       (* (retransmitted segments, segments out) *)
  scr : unit -> int * int * int;    (* (log appends, entries replayed, resyncs) *)
  rcu : unit -> int * int;          (* (lock-free reads, snapshot publishes) *)
  p_pool : Mpool.t;                 (* the cell's allocator, for host-side
                                       arena accounting and quiescence *)
}

let pct num den = if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let percent_between f0 f1 =
  let n0, d0 = f0 and n1, d1 = f1 in
  pct (n1 - n0) (d1 - d0)

(* Sum a per-session statistic over all TCP sessions. *)
let sum_sessions tcp f = List.fold_left (fun acc s -> acc + f s) 0 (Tcp.sessions tcp)

let tcp_data_segs st = st.Tcp.segs_in - st.Tcp.acks_in

let make_tcp_probe stack ?app_unique ~app_bytes ~app_packets ~peer ~gates () =
  let tcp = stack.Stack.tcp in
  {
    bytes = app_bytes;
    unique = Option.value app_unique ~default:app_bytes;
    packets = app_packets;
    ooo =
      (fun () ->
        ( sum_sessions tcp (fun s -> (Tcp.stats s).Tcp.ooo_segs),
          sum_sessions tcp (fun s -> tcp_data_segs (Tcp.stats s)) ));
    wire =
      (fun () ->
        match peer with
        | Some p -> (Tcp_peer.wire_misorders p, Tcp_peer.data_segments p)
        | None -> (0, 0));
    pred =
      (fun () ->
        ( sum_sessions tcp (fun s -> (Tcp.stats s).Tcp.pred_misses),
          sum_sessions tcp (fun s ->
              let st = Tcp.stats s in
              st.Tcp.pred_hits + st.Tcp.pred_misses) ));
    lock_wait = (fun () -> sum_sessions tcp Tcp.lock_wait_ns);
    cache = (fun () -> (Mpool.cache_hits stack.Stack.pool, Mpool.allocations stack.Stack.pool));
    gate_wait = (fun () -> List.fold_left (fun acc g -> acc + Gate.total_wait_ns g) 0 gates);
    rexmit =
      (fun () ->
        ( sum_sessions tcp (fun s -> (Tcp.stats s).Tcp.rexmits),
          sum_sessions tcp (fun s -> (Tcp.stats s).Tcp.segs_out) ));
    scr =
      (fun () ->
        List.fold_left
          (fun (a, r, y) s ->
            match Tcp.scr_counters s with
            | None -> (a, r, y)
            | Some c ->
              ( a + c.Tcp.scr_appends,
                r + c.Tcp.scr_replayed,
                y + c.Tcp.scr_resyncs ))
          (0, 0, 0) (Tcp.sessions tcp));
    rcu =
      (fun () ->
        List.fold_left
          (fun (rd, pb) s ->
            match Tcp.rcu_counters s with
            | None -> (rd, pb)
            | Some (r, p) -> (rd + r, pb + p))
          (0, 0) (Tcp.sessions tcp));
    p_pool = stack.Stack.pool;
  }

type snapshot = {
  s_bytes : int;
  s_unique : int;
  s_packets : int;
  s_ooo : int * int;
  s_wire : int * int;
  s_pred : int * int;
  s_lock_wait : int;
  s_cache : int * int;
  s_gate : int;
  s_rexmit : int * int;
  s_scr : int * int * int;
  s_rcu : int * int;
}

let take probe =
  {
    s_bytes = probe.bytes ();
    s_unique = probe.unique ();
    s_packets = probe.packets ();
    s_ooo = probe.ooo ();
    s_wire = probe.wire ();
    s_pred = probe.pred ();
    s_lock_wait = probe.lock_wait ();
    s_cache = probe.cache ();
    s_gate = probe.gate_wait ();
    s_rexmit = probe.rexmit ();
    s_scr = probe.scr ();
    s_rcu = probe.rcu ();
  }

(* ------------------------------------------------------------------ *)
(* Workload assembly                                                   *)
(* ------------------------------------------------------------------ *)

let tcp_config (cfg : Config.t) =
  {
    Tcp.locking = cfg.Config.tcp_locking;
    checksum = cfg.Config.checksum;
    cksum_under_lock = cfg.Config.cksum_under_lock;
    assume_in_order = cfg.Config.assume_in_order;
    ticketing = cfg.Config.ticketing;
    nodelay = false;
    mss = cfg.Config.payload;
    rcv_wnd = 1 lsl 20;
    snd_buf = 1 lsl 20;
    syn_backlog = cfg.Config.syn_backlog;
    sb_policy = Pnp_proto.Sockbuf.Block;
    scr_log_bound = cfg.Config.scr_log_bound;
  }

let make_platform (cfg : Config.t) =
  Platform.create ~seed:cfg.Config.seed ~lock_disc:cfg.Config.lock_disc
    ~map_disc:cfg.Config.map_disc ~refcnt_mode:cfg.Config.refcnt_mode
    ~message_caching:cfg.Config.message_caching ~map_locking:cfg.Config.map_locking
    ~map_shards:cfg.Config.demux_shards cfg.Config.arch

(* The per-connection application endpoint: counts packets under its own
   small lock (the paper's lock-increment-unlock critical section), honouring
   tickets when ordering is required. *)
type app = {
  app_lock : Lock.t;
  mutable app_bytes : int;
  mutable app_packets : int;
}

let make_app plat j =
  {
    app_lock =
      Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair
        ~name:(Printf.sprintf "app.%d" j);
    app_bytes = 0;
    app_packets = 0;
  }

(* The per-connection application step: the paper's lock-increment-unlock
   critical section.  When ticketing is on, TCP already serialises this
   upcall in packet order.  With [presentation], the application first
   unmarshals the payload — a compute-bound per-byte pass. *)
let app_receive (cfg : Config.t) plat pool app msg =
  let msg = if cfg.Config.presentation then Pres.decode plat pool msg else msg in
  Costs.charge plat Costs.app_recv;
  Lock.acquire app.app_lock;
  app.app_bytes <- app.app_bytes + Msg.length msg;
  app.app_packets <- app.app_packets + 1;
  Lock.release app.app_lock;
  Msg.destroy msg

(* How receive workers choose which connection's next packet to carry up.

   Placement: Connection_level statically partitions the connections over
   the workers (the paper's Figure 12 setup and its Section 8 future-work
   strategy); Packet_level lets any worker take any connection's packet.

   Load: per-connection weights follow Zipf(skew).  With [offered_mbps]
   unset the drivers saturate (a packet is always ready); with it set,
   arrivals on stream j are paced at the stream's share of the offered
   rate, so a worker whose streams have no backlog idles — which is what
   exposes load imbalance under connection-level placement. *)

type feed =
  | Now of int     (* carry stream j's next packet up *)
  | Wait of int    (* no backlog; next arrival in this many ns *)

let zipf_weights (cfg : Config.t) =
  Array.init cfg.Config.connections (fun j ->
      1.0 /. (float_of_int (j + 1) ** cfg.Config.skew))

(* Shared pacing state: arrivals accrued per stream since time 0. *)
type pacing = { intervals : float array; consumed : int array }

let make_pacing (cfg : Config.t) =
  match cfg.Config.offered_mbps with
  | None -> None
  | Some rate ->
    let ws = zipf_weights cfg in
    let total_w = Array.fold_left ( +. ) 0.0 ws in
    let bits = float_of_int (8 * cfg.Config.payload) in
    let intervals =
      Array.map
        (fun w ->
          let rate_j_mbps = rate *. w /. total_w in
          (* Mbit/s = 10^6 bits/s = 10^-3 bits/ns *)
          bits /. (rate_j_mbps /. 1000.0))
        ws
    in
    Some { intervals; consumed = Array.make cfg.Config.connections 0 }

let make_feeder (cfg : Config.t) plat pacing ~worker =
  let conns = cfg.Config.connections in
  let procs = cfg.Config.procs in
  let mine =
    match cfg.Config.placement with
    | Config.Connection_level ->
      List.filter (fun j -> j mod procs = worker) (List.init conns Fun.id)
    | Config.Packet_level -> List.init conns Fun.id
  in
  match mine with
  | [] -> None
  | js -> (
    let js = Array.of_list js in
    match pacing with
    | Some pace ->
      (* Arrival-limited: serve the most backlogged owned stream. *)
      Some
        (fun () ->
          let now = float_of_int (Sim.now plat.Platform.sim) in
          let best = ref (-1) and best_backlog = ref 0 in
          let soonest = ref infinity in
          Array.iter
            (fun j ->
              let arrived = int_of_float (now /. pace.intervals.(j)) in
              let backlog = arrived - pace.consumed.(j) in
              if backlog > !best_backlog then begin
                best := j;
                best_backlog := backlog
              end;
              let next_arrival = float_of_int (pace.consumed.(j) + 1) *. pace.intervals.(j) in
              if next_arrival -. now < !soonest then soonest := next_arrival -. now)
            js;
          if !best >= 0 then begin
            pace.consumed.(!best) <- pace.consumed.(!best) + 1;
            Now !best
          end
          else Wait (max 1_000 (int_of_float !soonest)))
    | None ->
      (* Saturating: weighted random pick (uniform when skew = 0). *)
      if Array.length js = 1 then Some (fun () -> Now js.(0))
      else begin
        let ws_all = zipf_weights cfg in
        let ws = Array.map (fun j -> ws_all.(j)) js in
        let total = Array.fold_left ( +. ) 0.0 ws in
        let rng = Prng.split (Sim.prng plat.Platform.sim) in
        Some
          (fun () ->
            let x = Prng.float rng total in
            let rec go i acc =
              if i >= Array.length js - 1 then js.(i)
              else if acc +. ws.(i) > x then js.(i)
              else go (i + 1) (acc +. ws.(i))
            in
            Now (go 0 0.0))
      end)

(* Build stack + drivers + worker threads; return the probe. *)
let setup (cfg : Config.t) plat =
  let procs = cfg.Config.procs in
  let conns = cfg.Config.connections in
  assert (procs >= 1 && conns >= 1);
  (match cfg.Config.steering with
   | Some _ when cfg.Config.protocol <> Config.Tcp || cfg.Config.side <> Config.Recv ->
     invalid_arg "Run.setup: steering applies to the TCP receive side only"
   | _ -> ());
  match (cfg.Config.protocol, cfg.Config.side) with
  | Config.Udp, Config.Send ->
    let stack =
      Stack.create plat ~udp_checksum:cfg.Config.checksum
        ?pool_capacity:cfg.Config.pool_capacity ~local_addr:sender_addr ()
    in
    let sink = Udp_sink.attach stack in
    let sessions =
      Array.init conns (fun j ->
          Udp.open_session stack.Stack.udp ~local_port:(5000 + j)
            ~remote_addr:receiver_addr ~remote_port:(80 + j)
            ~recv:(fun m -> Msg.destroy m))
    in
    for i = 0 to procs - 1 do
      let sess = sessions.(i mod conns) in
      let rng = Prng.split (Sim.prng plat.Platform.sim) in
      ignore
        (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "udp-send.%d" i)
           (fun () ->
             while true do
               Costs.charge plat Costs.app_send;
               (* small application service jitter; keeps the system off
                  artificial deterministic phase-locks *)
               Platform.charge plat (int_of_float (Prng.exponential rng ~mean:1000.0));
               let m = Msg.create stack.Stack.pool cfg.Config.payload in
               Costs.fill_payload plat m ~off:0 ~len:cfg.Config.payload ~stream_off:0;
               let m =
                 if cfg.Config.presentation then Pres.encode plat stack.Stack.pool m
                 else m
               in
               Udp.send sess m
             done))
    done;
    {
      bytes = (fun () -> Udp_sink.bytes_received sink);
      unique = (fun () -> Udp_sink.bytes_received sink);
      packets = (fun () -> Udp_sink.frames_received sink);
      ooo = (fun () -> (0, 0));
      wire = (fun () -> (0, 0));
      pred = (fun () -> (0, 0));
      lock_wait = (fun () -> 0);
      cache = (fun () -> (Mpool.cache_hits stack.Stack.pool, Mpool.allocations stack.Stack.pool));
      gate_wait = (fun () -> 0);
      rexmit = (fun () -> (0, 0));
      scr = (fun () -> (0, 0, 0));
      rcu = (fun () -> (0, 0));
      p_pool = stack.Stack.pool;
    }
  | Config.Udp, Config.Recv ->
    let stack =
      Stack.create plat ~udp_checksum:cfg.Config.checksum
        ?pool_capacity:cfg.Config.pool_capacity ~local_addr:receiver_addr ()
    in
    let ports = List.init conns (fun j -> (2000 + j, 4000 + j)) in
    let src =
      let jitter =
        cfg.Config.driver_jitter_ns *. (1.0 +. (0.12 *. float_of_int (procs - 1)))
      in
      Udp_source.attach stack ~peer_addr:sender_addr ~payload:cfg.Config.payload
        ~checksum:cfg.Config.checksum ~jitter_mean_ns:jitter ~ports ()
    in
    let apps = Array.init conns (fun j -> make_app plat j) in
    List.iteri
      (fun j (_, rcv_port) ->
        ignore
          (Udp.open_session stack.Stack.udp ~local_port:rcv_port ~remote_addr:sender_addr
             ~remote_port:(2000 + j)
             ~recv:(fun m -> app_receive cfg plat stack.Stack.pool apps.(j) m)))
      ports;
    let pacing = make_pacing cfg in
    for i = 0 to procs - 1 do
      match make_feeder cfg plat pacing ~worker:i with
      | None -> () (* more workers than owned connections *)
      | Some feed ->
        ignore
          (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "udp-recv.%d" i)
             (fun () ->
               while true do
                 match feed () with
                 | Now stream -> Udp_source.next src ~stream
                 | Wait d -> Sim.delay plat.Platform.sim d
               done))
    done;
    {
      bytes = (fun () -> Array.fold_left (fun acc a -> acc + a.app_bytes) 0 apps);
      unique = (fun () -> Array.fold_left (fun acc a -> acc + a.app_bytes) 0 apps);
      packets = (fun () -> Array.fold_left (fun acc a -> acc + a.app_packets) 0 apps);
      ooo = (fun () -> (0, 0));
      wire = (fun () -> (0, 0));
      pred = (fun () -> (0, 0));
      lock_wait = (fun () -> 0);
      cache = (fun () -> (Mpool.cache_hits stack.Stack.pool, Mpool.allocations stack.Stack.pool));
      gate_wait = (fun () -> 0);
      rexmit = (fun () -> (0, 0));
      scr = (fun () -> (0, 0, 0));
      rcu = (fun () -> (0, 0));
      p_pool = stack.Stack.pool;
    }
  | Config.Tcp, Config.Send ->
    let stack =
      Stack.create plat ~tcp_config:(tcp_config cfg)
        ?pool_capacity:cfg.Config.pool_capacity ~local_addr:sender_addr ()
    in
    let peer =
      Tcp_peer.attach stack ~peer_addr:receiver_addr ~ack_window:(1 lsl 20)
        ~checksum:cfg.Config.checksum ~loss_rate:cfg.Config.loss_rate ()
    in
    let sessions = Array.make conns None in
    ignore
      (Sim.spawn plat.Platform.sim ~cpu:0 ~name:"tcp-connector" (fun () ->
           for j = 0 to conns - 1 do
             sessions.(j) <-
               Some
                 (Tcp.connect stack.Stack.tcp ~local_port:(5000 + j)
                    ~remote_addr:receiver_addr ~remote_port:(80 + j))
           done));
    for i = 0 to procs - 1 do
      let j = i mod conns in
      let rng = Prng.split (Sim.prng plat.Platform.sim) in
      ignore
        (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "tcp-send.%d" i)
           (fun () ->
             (* wait for the connector to finish our session *)
             while sessions.(j) = None do
               Sim.delay plat.Platform.sim (Units.us 20.0)
             done;
             let sess = Option.get sessions.(j) in
             while true do
               Costs.charge plat Costs.app_send;
               (* small application service jitter; keeps the system off
                  artificial deterministic phase-locks *)
               Platform.charge plat (int_of_float (Prng.exponential rng ~mean:1000.0));
               let m = Msg.create stack.Stack.pool cfg.Config.payload in
               Costs.fill_payload plat m ~off:0 ~len:cfg.Config.payload ~stream_off:0;
               let m =
                 if cfg.Config.presentation then Pres.encode plat stack.Stack.pool m
                 else m
               in
               Tcp.send sess m
             done))
    done;
    make_tcp_probe stack
      ~app_unique:(fun () ->
        let u = ref 0 in
        for j = 0 to conns - 1 do
          u := !u + Tcp_peer.unique_bytes peer ~port:(5000 + j)
        done;
        !u)
      ~app_bytes:(fun () -> Tcp_peer.bytes_received peer)
      ~app_packets:(fun () -> Tcp_peer.data_segments peer)
      ~peer:(Some peer) ~gates:[] ()
  | Config.Tcp, Config.Recv when cfg.Config.steering <> None ->
    (* Steered receive: a virtual multi-queue NIC (Steer) picks the
       worker per frame instead of the placement feeders.  One shared
       listen port with per-stream source addresses carries the
       connection count past the 16-bit port space. *)
    let policy = Option.get cfg.Config.steering in
    if cfg.Config.offered_mbps <> None then
      invalid_arg "Run.setup: steering models a saturating NIC; unset offered_mbps";
    let stack =
      Stack.create plat ~tcp_config:(tcp_config cfg)
        ?pool_capacity:cfg.Config.pool_capacity ~local_addr:receiver_addr ()
    in
    let listen_port = 4000 in
    let addr_span = 1 lsl 14 (* streams per source address *) in
    let addr_of j = sender_addr + ((j / addr_span) lsl 16) in
    let ports = List.init conns (fun j -> (2000 + (j mod addr_span), listen_port)) in
    let src =
      let jitter =
        cfg.Config.driver_jitter_ns *. (1.0 +. (0.12 *. float_of_int (procs - 1)))
      in
      Tcp_source.attach stack ~peer_addr:sender_addr ~payload:cfg.Config.payload
        ~checksum:cfg.Config.checksum ~jitter_mean_ns:jitter ~addr_of ~ports ()
    in
    let apps = Array.init conns (fun j -> make_app plat j) in
    Tcp.listen stack.Stack.tcp ~local_port:listen_port ~accept:(fun sess ->
        let raddr, rport = Tcp.remote_endpoint sess in
        let j = (((raddr - sender_addr) lsr 16) * addr_span) + (rport - 2000) in
        Tcp.set_receiver sess (fun m -> app_receive cfg plat stack.Stack.pool apps.(j) m));
    (* Handshake in parallel slices: serially opening 10^5 connections
       from one thread would eat whole simulated seconds. *)
    let slice = (conns + procs - 1) / procs in
    for i = 0 to procs - 1 do
      let first = i * slice and last = min conns ((i + 1) * slice) in
      if first < last then
        ignore
          (Sim.spawn plat.Platform.sim ~cpu:i
             ~name:(Printf.sprintf "tcp-handshaker.%d" i)
             (fun () -> Tcp_source.start_range src ~first ~last))
    done;
    let steer = Steer.create plat ~policy ~workers:procs ~conns () in
    let reserve ~conn = Tcp_source.reserve src ~stream:conn in
    for i = 0 to procs - 1 do
      ignore
        (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "tcp-recv.%d" i)
           (fun () ->
             while true do
               match Steer.next steer ~worker:i ~reserve with
               | Some r -> Tcp_source.inject src r
               | None -> Sim.delay plat.Platform.sim (Units.us 20.0)
             done))
    done;
    make_tcp_probe stack
      ~app_bytes:(fun () -> Array.fold_left (fun acc a -> acc + a.app_bytes) 0 apps)
      ~app_packets:(fun () -> Array.fold_left (fun acc a -> acc + a.app_packets) 0 apps)
      ~peer:None ~gates:[] ()
  | Config.Tcp, Config.Recv ->
    let stack =
      Stack.create plat ~tcp_config:(tcp_config cfg)
        ?pool_capacity:cfg.Config.pool_capacity ~local_addr:receiver_addr ()
    in
    let ports = List.init conns (fun j -> (2000 + j, 4000 + j)) in
    let src =
      (* Interrupt/DMA service variance grows with the number of CPUs
         hammering the bus; Table 1's MCS column is its footprint. *)
      let jitter =
        cfg.Config.driver_jitter_ns *. (1.0 +. (0.12 *. float_of_int (procs - 1)))
      in
      Tcp_source.attach stack ~peer_addr:sender_addr ~payload:cfg.Config.payload
        ~checksum:cfg.Config.checksum ~jitter_mean_ns:jitter ~ports ()
    in
    let apps = Array.init conns (fun j -> make_app plat j) in
    let gates = ref [] in
    List.iteri
      (fun j (_, rcv_port) ->
        Tcp.listen stack.Stack.tcp ~local_port:rcv_port ~accept:(fun sess ->
            gates := Tcp.ticket_gate sess :: !gates;
            Tcp.set_receiver sess (fun m -> app_receive cfg plat stack.Stack.pool apps.(j) m)))
      ports;
    ignore
      (Sim.spawn plat.Platform.sim ~cpu:0 ~name:"tcp-handshaker" (fun () ->
           Tcp_source.start src));
    let pacing = make_pacing cfg in
    for i = 0 to procs - 1 do
      match make_feeder cfg plat pacing ~worker:i with
      | None -> ()
      | Some feed ->
        ignore
          (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "tcp-recv.%d" i)
             (fun () ->
               while true do
                 match feed () with
                 | Now stream ->
                   if not (Tcp_source.next src ~stream) then
                     Sim.delay plat.Platform.sim (Units.us 20.0)
                 | Wait d -> Sim.delay plat.Platform.sim d
               done))
    done;
    make_tcp_probe stack
      ~app_bytes:(fun () -> Array.fold_left (fun acc a -> acc + a.app_bytes) 0 apps)
      ~app_packets:(fun () -> Array.fold_left (fun acc a -> acc + a.app_packets) 0 apps)
      ~peer:None
      ~gates:!gates ()

let run_gen ?(trace = false) ?stall_ns (cfg : Config.t) =
  let plat = make_platform cfg in
  let probe = setup cfg plat in
  let tracer = Sim.tracer plat.Platform.sim in
  let wd =
    match stall_ns with
    | None -> None
    | Some s ->
      Some
        (Watchdog.install plat.Platform.sim ~stall_ns:s
           ~progress:(fun () -> probe.bytes ())
           ())
  in
  let s0 = ref None in
  Sim.at plat.Platform.sim cfg.Config.warmup (fun () ->
      s0 := Some (take probe);
      (* Start tracing at the same instant the warmup snapshot is taken, so
         trace-event totals line up with the aggregate counter deltas over
         the measurement window. *)
      if trace then Trace.enable tracer);
  Sim.run ~until:(cfg.Config.warmup + cfg.Config.measure) plat.Platform.sim;
  (match wd with Some w -> Watchdog.disarm w | None -> ());
  if trace then Trace.disable tracer;
  Hostprof.note_sim_events (Sim.events_processed plat.Platform.sim);
  (let drains, hist = Sim.dispatch_stats plat.Platform.sim in
   Hostprof.note_dispatch ~drains ~hist);
  Hostprof.note_arena_hwm (Mpool.arena_hwm probe.p_pool);
  (* The run just reached its event horizon — quiescence: release surplus
     recycled buffers so a burst in this cell does not pin host memory
     while the next cells run. *)
  Mpool.quiesce probe.p_pool;
  let s0 = match !s0 with Some s -> s | None -> failwith "Run.run: warmup never fired" in
  let s1 = take probe in
  let duration = cfg.Config.measure in
  ( {
      throughput_mbps =
        Units.mbits_per_sec ~bytes_transferred:(s1.s_bytes - s0.s_bytes) ~duration;
      goodput_mbps =
        Units.mbits_per_sec ~bytes_transferred:(s1.s_unique - s0.s_unique) ~duration;
      packets = s1.s_packets - s0.s_packets;
      ooo_pct = percent_between s0.s_ooo s1.s_ooo;
      wire_misorder_pct = percent_between s0.s_wire s1.s_wire;
      pred_miss_pct = percent_between s0.s_pred s1.s_pred;
      rexmit_pct = percent_between s0.s_rexmit s1.s_rexmit;
      lock_wait_pct =
        pct (s1.s_lock_wait - s0.s_lock_wait) (cfg.Config.procs * duration);
      cache_hit_pct = percent_between s0.s_cache s1.s_cache;
      gate_wait_ns = s1.s_gate - s0.s_gate;
      scr_appends =
        (let a1, _, _ = s1.s_scr and a0, _, _ = s0.s_scr in
         a1 - a0);
      scr_replayed =
        (let _, r1, _ = s1.s_scr and _, r0, _ = s0.s_scr in
         r1 - r0);
      scr_resyncs =
        (let _, _, y1 = s1.s_scr and _, _, y0 = s0.s_scr in
         y1 - y0);
      rcu_reads = fst s1.s_rcu - fst s0.s_rcu;
    },
    tracer,
    match wd with None -> [] | Some w -> Watchdog.stalls w )

(* Sweep-cell memo.  A cell is a pure function of its [Config.t] (every
   stochastic choice is seeded from [cfg.seed]), and the figures reuse
   many identical cells — Figure 10's mutex column is Figure 8/9's 4 KB
   checksum-on sweep, Table 1 re-runs Figure 10's configurations for a
   different metric, and so on.  Memoizing on the canonical key makes
   those repeats free without changing a single byte of output: a hit
   returns exactly the value a fresh run would compute.

   The table is shared across Pool worker domains, hence the mutex.  If
   two domains race on the same miss, both compute the (identical)
   result and the first one wins the insert — wasted work, never a wrong
   answer. *)
let memo_enabled = ref true
let memo_lock = Mutex.create ()
let memo : (string, result) Hashtbl.t = Hashtbl.create 256

let set_cell_memo on = memo_enabled := on

let clear_cell_memo () =
  Mutex.protect memo_lock (fun () -> Hashtbl.reset memo)

let cell_memo_size () = Mutex.protect memo_lock (fun () -> Hashtbl.length memo)

let result_of (r, _, _) = r

let run cfg =
  if not !memo_enabled then result_of (run_gen cfg)
  else
    let key = Config.canonical cfg in
    match Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key) with
    | Some r ->
        Hostprof.note_cell_hit ();
        r
    | None ->
        Hostprof.note_cell_miss ();
        let r = result_of (run_gen cfg) in
        Mutex.protect memo_lock (fun () ->
            if not (Hashtbl.mem memo key) then Hashtbl.add memo key r);
        r

(* Traced runs are never memoized: the caller wants the tracer. *)
let run_traced cfg =
  let r, tracer, _ = run_gen ~trace:true cfg in
  (r, tracer)

(* Watched runs are never memoized either: liveness is a property of the
   execution, and a memo hit would not re-execute. *)
let run_watched ?(stall_ns = Units.ms 100.0) cfg =
  let r, _, stalls = run_gen ~stall_ns cfg in
  let findings =
    List.map
      (fun (s : Watchdog.stall) ->
        Pnp_analysis.Finding.v ~checker:"watchdog"
          ~subject:(Printf.sprintf "%s@t=%dns" (Config.describe cfg) s.Watchdog.at)
          (Watchdog.describe_stall s))
      stalls
  in
  (r, findings)

let run_seeds cfg ~seeds =
  Pool.map
    (fun i -> run { cfg with Config.seed = cfg.Config.seed + i })
    (List.init seeds Fun.id)

let throughput_summary cfg ~seeds =
  Stats.summary (List.map (fun r -> r.throughput_mbps) (run_seeds cfg ~seeds))
