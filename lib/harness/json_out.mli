(** Machine-readable export of figure tables.

    Figure runners print fixed-width tables for humans; this module
    mirrors each figure's {!Report.table} list into a JSON document so
    benchmark runs can be diffed and plotted without scraping stdout.

    The export destination is an explicit context threaded through the
    presentation path (the registry and the CLIs) rather than global
    state: the *data* phase of figure generation runs on worker domains
    and never touches this module, and the *present* phase on the main
    domain serialises whatever tables the data phase returned.

    Each [BENCH_<id>.json] document also records the harness's own
    performance trajectory: the [-j] worker count the figure was
    generated with and the wall-clock seconds its data phase took.
    Diffing tools should ignore those two fields (the CI determinism job
    normalises them) — everything else is a pure function of the sweep
    configuration and seeds. *)

type ctx

val escape : string -> string
(** JSON string-content escaping (quotes, backslashes, control chars) —
    shared by every hand-rolled JSON emitter in the tree ([repro
    check --json] reuses it for the findings export). *)

val make : ?dir:string -> unit -> ctx
(** [make ~dir ()] exports into [dir] (which must already exist);
    [make ()] is a disabled context whose writes are no-ops. *)

val disabled : ctx
(** A context that never writes — what plain CLI runs use. *)

val enabled : ctx -> bool

val figure_json :
  id:string ->
  jobs:int ->
  elapsed_s:float ->
  ?host:Hostprof.delta ->
  Report.table list ->
  string
(** The JSON document for one figure, as written by {!write_figure}.
    Pure — useful for determinism tests that compare payloads without
    touching the filesystem.  When [host] is given, a ["host"] object
    (events retired, events/sec, GC words, sweep-cell memo hits/misses
    over the figure's data phase) is emitted after ["elapsed_s"]; like
    [jobs] and [elapsed_s] it describes the harness, not the modeled
    system, and diffing tools should normalise it away. *)

val write_figure :
  ctx ->
  id:string ->
  jobs:int ->
  elapsed_s:float ->
  ?host:Hostprof.delta ->
  Report.table list ->
  unit
(** Write [BENCH_<id>.json] into the context's directory; a no-op when
    the context is disabled. *)
