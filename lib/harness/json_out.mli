(** Machine-readable export of figure tables.

    Figure runners print fixed-width tables for humans; this module mirrors
    each table into a JSON document so benchmark runs can be diffed and
    plotted without scraping stdout.  The flow is:

    - [set_dir (Some dir)] turns the exporter on;
    - [with_figure id f] collects every table added while [f] runs and
      writes them to [dir ^ "/BENCH_" ^ id ^ ".json"];
    - [add_table] records one table (called by {!Report.print_table}).

    With the directory unset (the default) all calls are no-ops, so plain
    CLI runs behave exactly as before. *)

val set_dir : string option -> unit
(** Enable ([Some dir]) or disable ([None]) JSON export.  The directory
    must already exist; files are created inside it. *)

val enabled : unit -> bool
(** Whether a destination directory is currently set. *)

val add_table :
  title:string ->
  unit_label:string ->
  series:(string * (int * float * float) list) list ->
  unit
(** Record one table: each series is a label plus [(procs, mean, ci90)]
    points.  Buffered until the enclosing [with_figure] writes it out; a
    no-op when export is disabled or no figure is open. *)

val with_figure : string -> (unit -> unit) -> unit
(** [with_figure id f] runs [f], then writes all tables recorded during it
    to [BENCH_<id>.json] in the export directory.  When export is disabled
    this just runs [f].  Nested calls are not supported; the inner call
    simply runs its body. *)
