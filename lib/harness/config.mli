(** Experiment configuration: one point of one of the paper's figures.

    The defaults reproduce the Section 3 baseline: the 8-CPU 100 MHz
    Challenge, IRIX mutex locks, a single connection, message caching on,
    LL/SC atomic reference counts, 4 KB packets, checksumming on. *)

type side = Send | Recv
type protocol = Udp | Tcp

type placement =
  | Connection_level
      (** each worker statically owns a subset of the connections (the
          paper's Figure 12 setup and its Section 8 future-work strategy) *)
  | Packet_level
      (** any worker may process any connection's next packet *)

type t = {
  arch : Pnp_engine.Arch.t;
  procs : int;
  side : side;
  protocol : protocol;
  payload : int;                         (** user bytes per packet *)
  checksum : bool;
  lock_disc : Pnp_engine.Lock.discipline; (** connection-state locks *)
  map_disc : Pnp_engine.Lock.discipline;
  tcp_locking : Pnp_proto.Tcp.locking;
  scr_log_bound : int;
      (** [Scr] only: depth of the per-session packet-history log before
          truncation (see {!Pnp_proto.Tcp.config}); default 4096 *)
  assume_in_order : bool;
  ticketing : bool;
  refcnt_mode : Pnp_engine.Atomic_ctr.mode;
  message_caching : bool;
  map_locking : bool;
  connections : int;                     (** number of simultaneous connections *)
  placement : placement;
  steering : Pnp_driver.Steer.policy option;
      (** NIC packet steering for TCP receive: [None] (default) keeps the
          classic worker feeders; [Some Hash] statically assigns each
          connection's frames to one worker (RSS); [Some Last_sender]
          models Flow-Director-style affinity that follows the migrating
          application thread, reordering in-flight segments.  Steered
          runs use a single shared listen port with per-stream source
          addresses, so [connections] may go far beyond the port space *)
  demux_shards : int;
      (** shards per demux map ({!Pnp_xkern.Xmap}); 1 (default) is the
          classic single-lock map manager *)
  skew : float;
      (** Zipf exponent of the per-connection load (0 = uniform): the
          weight of connection j is 1/(j+1)^skew *)
  driver_jitter_ns : float;              (** mean per-packet driver service jitter *)
  offered_mbps : float option;
      (** receive-side offered load.  [None] (default) saturates: the
          drivers always have the next packet ready.  [Some rate] limits
          arrivals to [rate] Mbit/s in total, split over the connections
          by the Zipf weights — an arrival-limited workload that exposes
          load imbalance under connection-level placement *)
  loss_rate : float;
      (** Bernoulli per-segment loss applied by the in-memory peer on the
          TCP send side (0 = lossless, the default).  Drives the
          [ext-faults] goodput/retransmission figure; end-to-end fault
          plans over a real link use {!Pnp_faults.Faults} instead. *)
  cksum_under_lock : bool;
      (** compute TCP checksums inside the connection-state lock(s) — the
          unrestructured placement Section 5.1 argues against *)
  presentation : bool;
      (** add an XDR-style presentation-conversion pass per packet in the
          application (the Goldberg et al. workload Section 3.2 contrasts
          with plain checksumming) *)
  syn_backlog : int;
      (** bound on half-open (SYN_RCVD) children per TCP listener; SYNs
          beyond it are shed as accounted drops and recovered by SYN
          retransmission.  0 disables the bound; default 128 *)
  pool_capacity : int option;
      (** bound on simultaneously live mnodes per stack pool ([None] =
          unbounded, the default).  Bounded pools get a soft watermark at
          half capacity: {!Pnp_xkern.Mpool} admission control makes
          senders shed or park instead of raising [Out_of_mnodes] *)
  warmup : Pnp_util.Units.ns;
  measure : Pnp_util.Units.ns;
  seed : int;
}

val baseline : t
(** 1 CPU, TCP send side, 4 KB, checksum on, packet-level placement,
    everything else per Section 3. *)

val v :
  ?arch:Pnp_engine.Arch.t ->
  ?procs:int ->
  ?side:side ->
  ?protocol:protocol ->
  ?payload:int ->
  ?checksum:bool ->
  ?lock_disc:Pnp_engine.Lock.discipline ->
  ?map_disc:Pnp_engine.Lock.discipline ->
  ?tcp_locking:Pnp_proto.Tcp.locking ->
  ?scr_log_bound:int ->
  ?assume_in_order:bool ->
  ?ticketing:bool ->
  ?refcnt_mode:Pnp_engine.Atomic_ctr.mode ->
  ?message_caching:bool ->
  ?map_locking:bool ->
  ?connections:int ->
  ?placement:placement ->
  ?steering:Pnp_driver.Steer.policy ->
  ?demux_shards:int ->
  ?skew:float ->
  ?driver_jitter_ns:float ->
  ?offered_mbps:float ->
  ?loss_rate:float ->
  ?cksum_under_lock:bool ->
  ?presentation:bool ->
  ?syn_backlog:int ->
  ?pool_capacity:int ->
  ?warmup:Pnp_util.Units.ns ->
  ?measure:Pnp_util.Units.ns ->
  ?seed:int ->
  unit ->
  t
(** [baseline] with overrides. *)

val side_to_string : side -> string
val protocol_to_string : protocol -> string
val describe : t -> string

val canonical : t -> string
(** Canonical cache key covering {e every} field of [t] (the architecture
    is rendered field by field; floats in exact hex).  Two configurations
    have the same key iff a run of one is a run of the other, which is
    what the sweep-cell memo in {!Run} keys on.  Any field added to [t]
    must be added to the key. *)
