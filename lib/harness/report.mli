(** Paper-style result tables.

    Each figure in the paper is a set of series over processor counts;
    this module runs the sweeps, attaches 90% confidence intervals (the
    paper's error bars) and prints fixed-width tables.

    The sweep functions ({!metric_series}, {!throughput_series}) are the
    *data* phase of figure generation: they build one independent
    simulation per (processor count, seed) cell, fan the cells out over
    {!Pool}, and perform no I/O, so they are safe to run on worker
    domains.  Printing ({!print}, {!print_table}) is the *present* phase
    and writes to stdout on the calling domain. *)

type point = { procs : int; mean : float; ci90 : float }
type series = { label : string; points : point list }

type table = { title : string; unit_label : string; series : series list }
(** One printed/exported table: a titled set of series with a unit. *)

val table : title:string -> unit_label:string -> series list -> table

val throughput_series :
  label:string -> procs:int list -> seeds:int -> (int -> Config.t) -> series
(** [throughput_series ~label ~procs ~seeds cfg_of_procs] measures
    throughput at each processor count, running the (procs x seeds)
    sweep cells on the {!Pool} workers.  The result is independent of
    the worker count. *)

val metric_series :
  label:string ->
  procs:int list ->
  seeds:int ->
  metric:(Run.result -> float) ->
  (int -> Config.t) ->
  series
(** Like {!throughput_series} for any [Run.result] field. *)

val speedup : series -> series
(** Normalise to the 1-processor mean, as the paper's speedup figures do
    (each curve relative to its own uniprocessor throughput). *)

val print : table -> unit
(** Print one table (see {!print_table}). *)

val print_table : title:string -> unit_label:string -> series list -> unit
(** Aligned table: one row per processor count, one column per series.
    Pure printing — JSON export happens from the table values in
    {!Json_out}, not here. *)

val value_at : series -> int -> float
(** Mean at the given processor count.  @raise Not_found if absent. *)

val jain : float list -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)] of a set of
    per-flow allocations: 1.0 = perfectly even, [1/n] = one flow has
    everything.  [[]] and all-zero lists give 1.0. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank [p]-th percentile ([p] in
    [0, 100]); [percentile 50.0] is the median, [percentile 100.0] the
    maximum.  @raise Invalid_argument on an empty list. *)

val print_host_profile : ?title:string -> Hostprof.delta -> unit
(** Human-readable host-side profile (wall clock, simulated events per
    host second, GC words, sweep-cell memo hit rate) for [repro perf]
    and the bench harness.  Presentation only — these numbers describe
    the host machine, never the modeled system, so callers must keep
    them out of figure output that determinism checks diff. *)

val print_lock_table : ?max_rows:int -> Pnp_engine.Trace.t -> unit
(** Contention attribution from a trace (see {!Run.run_traced}): one row
    per lock, sorted by total wait time, with acquisition counts, wait /
    hold / handoff breakdown in milliseconds, the deepest waiter queue
    observed, and each lock's share of all blocked time.  The paper's
    Table 1 asks "where does the time go?"; this answers it per lock. *)
