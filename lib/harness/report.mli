(** Paper-style result tables.

    Each figure in the paper is a set of series over processor counts;
    this module runs the sweeps, attaches 90% confidence intervals (the
    paper's error bars) and prints fixed-width tables. *)

type point = { procs : int; mean : float; ci90 : float }
type series = { label : string; points : point list }

val throughput_series :
  label:string -> procs:int list -> seeds:int -> (int -> Config.t) -> series
(** [throughput_series ~label ~procs ~seeds cfg_of_procs] measures
    throughput at each processor count. *)

val metric_series :
  label:string ->
  procs:int list ->
  seeds:int ->
  metric:(Run.result -> float) ->
  (int -> Config.t) ->
  series
(** Like {!throughput_series} for any [Run.result] field. *)

val speedup : series -> series
(** Normalise to the 1-processor mean, as the paper's speedup figures do
    (each curve relative to its own uniprocessor throughput). *)

val print_table : title:string -> unit_label:string -> series list -> unit
(** Aligned table: one row per processor count, one column per series. *)

val value_at : series -> int -> float
(** Mean at the given processor count.  @raise Not_found if absent. *)

val print_lock_table : ?max_rows:int -> Pnp_engine.Trace.t -> unit
(** Contention attribution from a trace (see {!Run.run_traced}): one row
    per lock, sorted by total wait time, with acquisition counts, wait /
    hold / handoff breakdown in milliseconds, the deepest waiter queue
    observed, and each lock's share of all blocked time.  The paper's
    Table 1 asks "where does the time go?"; this answers it per lock. *)
