(** Umbrella module: the whole system under one name.

    {1 Layers}

    - {!Sim}, {!Lock}, {!Gate}, {!Atomic_ctr}, {!Membus}, {!Arch},
      {!Platform} — the simulated shared-memory multiprocessor.
    - {!Mpool}, {!Msg}, {!Xmap}, {!Timewheel} — the x-kernel
      infrastructure (message tool, map manager, event manager).
    - {!Fddi}, {!Ip}, {!Udp}, {!Tcp} (+ {!Tcp_wire}, {!Tcp_seq},
      {!Sockbuf}, {!Inet_cksum}) — the protocol stack.
    - {!Stack}, {!Tcp_peer}, {!Tcp_source}, {!Udp_sink}, {!Udp_source} —
      assembly and the in-memory drivers of the paper's Section 2.3.
    - {!Faults}, {!Chaos}, {!Recovery} — deterministic link-fault
      injection and the end-to-end recovery oracle behind [repro chaos].
    - {!Watchdog}, {!Overload}, {!Compare} — the liveness watchdog and
      the heavy-traffic overload scenarios (incast, shared bottleneck)
      behind [repro compare].
    - {!Config}, {!Run}, {!Report} — the experiment harness.
    - {!Figures} — the generators for every figure and table in the paper.
    - {!Analysis} — trace-driven concurrency checkers (lockset,
      lock-order, grant-order) and the source-invariant lint.

    {1 Thirty-second tour}

    {[
      let plat = Pnp.Platform.create Pnp.Arch.challenge_100 in
      let cfg  = Pnp.Config.v ~procs:8 ~side:Pnp.Config.Recv () in
      let r    = Pnp.Run.run cfg in
      Printf.printf "%.1f Mbit/s, %.1f%% out of order\n"
        r.Pnp.Run.throughput_mbps r.Pnp.Run.ooo_pct
    ]} *)

(* engine *)
module Sim = Pnp_engine.Sim
module Lock = Pnp_engine.Lock
module Gate = Pnp_engine.Gate
module Atomic_ctr = Pnp_engine.Atomic_ctr
module Membus = Pnp_engine.Membus
module Arch = Pnp_engine.Arch
module Platform = Pnp_engine.Platform
module Eventq = Pnp_engine.Eventq
module Watchdog = Pnp_engine.Watchdog

(* x-kernel infrastructure *)
module Mpool = Pnp_xkern.Mpool
module Msg = Pnp_xkern.Msg
module Xmap = Pnp_xkern.Xmap
module Timewheel = Pnp_xkern.Timewheel

(* protocols *)
module Inet_cksum = Pnp_proto.Inet_cksum
module Costs = Pnp_proto.Costs
module Fddi = Pnp_proto.Fddi
module Ip = Pnp_proto.Ip
module Udp = Pnp_proto.Udp
module Icmp = Pnp_proto.Icmp
module Tcp = Pnp_proto.Tcp
module Tcp_wire = Pnp_proto.Tcp_wire
module Tcp_seq = Pnp_proto.Tcp_seq
module Sockbuf = Pnp_proto.Sockbuf
module Pres = Pnp_proto.Pres
module Socket = Pnp_proto.Socket

(* drivers and stack assembly *)
module Stack = Pnp_driver.Stack
module Frame = Pnp_driver.Frame
module Tcp_peer = Pnp_driver.Tcp_peer
module Tcp_source = Pnp_driver.Tcp_source
module Udp_sink = Pnp_driver.Udp_sink
module Udp_source = Pnp_driver.Udp_source
module Sniffer = Pnp_driver.Sniffer
module Link = Pnp_driver.Link

(* fault injection and recovery verification *)
module Faults = Pnp_faults.Faults
module Chaos = Pnp_harness.Chaos
module Recovery = Pnp_analysis.Recovery

(* harness *)
module Config = Pnp_harness.Config
module Run = Pnp_harness.Run
module Report = Pnp_harness.Report
module Overload = Pnp_harness.Overload
module Compare = Pnp_harness.Compare

(* trace-driven checkers and lint *)
module Analysis = struct
  module Finding = Pnp_analysis.Finding
  module Replay = Pnp_analysis.Replay
  module Lockset = Pnp_analysis.Lockset
  module Lock_order = Pnp_analysis.Lock_order
  module Order_check = Pnp_analysis.Order_check
  module Check = Pnp_analysis.Check
  module Lint = Pnp_analysis.Lint
end

(* figure generators *)
module Figures = struct
  module Opts = Pnp_figures.Opts
  module Baseline = Pnp_figures.Fig_baseline
  module Ordering = Pnp_figures.Fig_ordering
  module Multiconn = Pnp_figures.Fig_multiconn
  module Locking = Pnp_figures.Fig_locking
  module Atomics = Pnp_figures.Fig_atomics
  module Caching = Pnp_figures.Fig_caching
  module Archcmp = Pnp_figures.Fig_archcmp
  module Micro = Pnp_figures.Fig_micro
  module Extensions = Pnp_figures.Fig_extensions
  module Registry = Pnp_figures.Registry
end

(* utilities *)
module Units = Pnp_util.Units
module Stats = Pnp_util.Stats
module Prng = Pnp_util.Prng
