(* NIC packet steering: which receive worker carries the next arriving
   frame of which connection up the stack.

   The model is a virtual multi-queue NIC in front of the receive
   workers.  A deterministic global arrival stream walks a sliding "hot
   window" of connections (traffic concentrates on a small working set
   that drifts over the whole population) in short per-connection bursts.
   Each arrival is *reserved* against its connection's source stream the
   moment the NIC sees it — that pins the segment's sequence number in
   arrival order — and the reservation token is appended to the queue of
   the worker the steering policy assigns:

   - [Hash] (RSS): the worker is a pure hash of the connection identity.
     All frames of a connection land on one worker's FIFO queue forever,
     so each connection's segments climb the stack serially and in
     arrival order.

   - [Last_sender] (Intel Flow Director's ATR mode): the NIC routes a
     flow to the core that last transmitted on it.  When the application
     thread migrates, the flow's affinity follows it *while earlier
     frames are still queued on the old core* — two workers then hold
     consecutive segments of one connection concurrently, and whichever
     queue drains faster delivers its segments first.  That is exactly
     the reordering mechanism "Why Does Flow Director Cause Packet
     Reordering?" documents; we model the migration as a deterministic
     affinity flap part-way through a burst.

   Arrivals are generated lazily: a worker that finds its queue empty
   pulls the global stream forward (bounded) until a frame steers to it.
   The pull — counter advance, reservation, queue append — happens under
   the NIC's demux lock, so reservations are made strictly in arrival
   order no matter which worker is pulling.  Everything is a pure
   function of the call sequence, so runs are deterministic for a given
   simulator seed. *)

open Pnp_engine

type policy = Hash | Last_sender

let policy_to_string = function Hash -> "hash" | Last_sender -> "last-sender"

type 'a t = {
  policy : policy;
  workers : int;
  conns : int;
  affinity : int array; (* connection -> current worker *)
  queues : 'a Queue.t array; (* per-worker reserved, undelivered frames *)
  lock : Lock.t; (* the NIC's single demux/DMA engine *)
  hot_size : int; (* connections in the hot window *)
  burst : int; (* consecutive frames per connection *)
  flap_every : int; (* Last_sender: every Nth burst migrates mid-burst *)
  queue_cap : int; (* per-worker ring depth; overflow drops the frame *)
  mutable counter : int; (* global arrival counter *)
  mutable flaps : int;
  mutable dropped : int; (* arrivals the reservation refused *)
}

let create plat ?(hot_size = 64) ?(burst = 4) ?(flap_every = 2) ?(queue_cap = 16)
    ~policy ~workers ~conns () =
  if workers <= 0 then invalid_arg "Steer.create: workers must be positive";
  if conns <= 0 then invalid_arg "Steer.create: conns must be positive";
  if hot_size <= 0 || burst <= 0 || flap_every <= 0 || queue_cap <= 0 then
    invalid_arg
      "Steer.create: hot_size, burst, flap_every and queue_cap must be positive";
  {
    policy;
    workers;
    conns;
    affinity = Array.init conns (fun c -> c mod workers);
    queues = Array.init workers (fun _ -> Queue.create ());
    lock =
      Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair ~name:"nic.steer";
    hot_size = min hot_size conns;
    burst;
    flap_every;
    queue_cap;
    counter = 0;
    flaps = 0;
    dropped = 0;
  }

(* Advance the global arrival stream one frame: pick the connection, let
   the policy (possibly) migrate it, and return (conn, worker).  Callers
   hold [t.lock]. *)
let arrival t =
  let n = t.counter in
  let burst_no = n / t.burst in
  let slot = burst_no mod t.hot_size in
  let window = burst_no / t.hot_size in
  let base = window * t.hot_size mod t.conns in
  let conn = (base + slot) mod t.conns in
  (* Flow-Director flap: every [flap_every]-th appearance of a
     connection migrates its application thread after the burst's first
     frame, so the rest of the burst steers to the next worker while the
     first frame is still queued on the old one.  Mix the window number
     in: [slot] alone is fixed per connection (the window base moves in
     [hot_size] strides), so a slot-only or burst_no-only condition
     flaps a fixed subset of connections forever and drives the affinity
     map into a one-worker degenerate state. *)
  if
    t.policy = Last_sender && t.workers > 1
    && n mod t.burst = 1
    && (window + slot) mod t.flap_every = 0
  then begin
    t.affinity.(conn) <- (t.affinity.(conn) + 1) mod t.workers;
    t.flaps <- t.flaps + 1
  end;
  t.counter <- n + 1;
  (conn, t.affinity.(conn))

let next t ~worker ~reserve =
  if worker < 0 || worker >= t.workers then invalid_arg "Steer.next: bad worker";
  if Queue.is_empty t.queues.(worker) then
    Lock.with_lock t.lock (fun () ->
        (* Another worker's pull may have fed this queue while we waited
           for the demux engine; the loop condition re-checks. *)
        let budget = ref (t.burst * (t.hot_size + t.workers)) in
        while Queue.is_empty t.queues.(worker) && !budget > 0 do
          decr budget;
          let conn, w = arrival t in
          if Queue.length t.queues.(w) >= t.queue_cap then
            (* Ring overflow: the frame is dropped before any sequence
               number is consumed, so the stream stays hole-free.  A
               finite ring is also what keeps the reorder window bounded
               — without it a slow worker's backlog grows without limit
               and reserved segments are never delivered at all. *)
            t.dropped <- t.dropped + 1
          else
            match reserve ~conn with
            | Some token -> Queue.push token t.queues.(w)
            | None ->
              (* Closed window or unestablished stream: the NIC does not
                 retry an arrival slot. *)
              t.dropped <- t.dropped + 1
        done);
  Queue.take_opt t.queues.(worker)

let flaps t = t.flaps
let arrivals t = t.counter
let dropped t = t.dropped
