(** A simulated full-duplex point-to-point link between two complete
    stacks.

    Unlike the in-memory drivers of the paper's experiments (which play
    the role of an infinitely fast peer), a link connects two {e real}
    stacks: both ends run the full protocol machinery, the handshake and
    every acknowledgement crosses the wire, and the link itself models
    propagation latency, serialisation at a finite bandwidth, and an
    arbitrary fault pipeline ({!Pnp_faults.Faults.plan}): loss (uniform
    and bursty), duplication, bounded reordering, checksum-detectable
    payload corruption, delay jitter and timed blackouts.  This is the
    configuration a user of the library would deploy.

    Frames are delivered to each end by a per-direction receive thread
    (the "interrupt context"), so protocol input runs in a context that
    may take locks.  When tracing is enabled, every pipeline action is
    emitted as a [Trace.Fault_*] event, so retransmissions seen later in
    the trace are attributable to the injected fault that caused them. *)

type t

val connect :
  Pnp_engine.Platform.t ->
  ?latency:Pnp_util.Units.ns ->
  ?bandwidth_mbps:float ->
  ?loss_rate:float ->
  ?plan:Pnp_faults.Faults.plan ->
  a:Stack.t ->
  b:Stack.t ->
  unit ->
  t
(** Wire the two stacks together (replaces both FDDI transmit hooks).
    Defaults: 50 us propagation latency, 100 Mbit/s serialisation, no
    faults.  [?loss_rate] is sugar for a [Bernoulli_loss] stage prepended
    to [?plan] (by default the empty plan).  Each direction instantiates
    its own pipeline with independent PRNG streams split off the
    simulation's seed, so a faulted run replays byte-identically for a
    fixed seed.  Both stacks must share [plat]'s simulation. *)

val frames_ab : t -> int
(** Frames {e offered} to the a->b direction, i.e. counted before the
    fault pipeline — dropped and corrupted frames are included. *)

val frames_ba : t -> int
(** Same for b->a. *)

val dropped : t -> int
(** Frames consumed by the pipeline (both directions, all causes: uniform
    loss + burst loss + blackout windows).  Corrupted frames are {e not}
    counted here: they are delivered damaged and discarded above the MAC
    layer by an Internet checksum, where the protocol's own
    [checksum_failures] counters account for them. *)

val pressure_drops : t -> int
(** Frames shed at the receive side (both directions) because the
    destination stack's mnode pool lacked the headroom to process them —
    the [pool_pressure] cause.  Unlike the pipeline causes these are not
    injected faults: they are the link degrading gracefully instead of
    letting receive processing raise [Out_of_mnodes].  TCP's
    retransmission machinery recovers the shed data. *)

(** Cumulative pipeline accounting summed over both directions.  [offered]
    equals [frames_ab + frames_ba]; [dropped] splits by cause into
    [dropped_loss] (Bernoulli), [dropped_burst] (Gilbert-Elliott) and
    [dropped_blackout]; [duplicated] counts extra copies injected (each
    also adds to [offered]'s deliveries but not to [offered] itself).

    [dropped_pool_pressure] counts rx-side sheds under destination-pool
    pressure; it is {e not} included in [dropped] (those are pipeline
    consumptions on the transmit side).  The full overload drop-cause
    taxonomy a recovery oracle must balance is: link-level
    [loss]/[burst]/[blackout]/[pool_pressure] (here), protocol-level
    [syn_backlog] ({!Pnp_proto.Tcp.syn_backlog_drops}) and
    [sockbuf_full] ({!Pnp_proto.Tcp.total_sockbuf_drops},
    {!Pnp_proto.Udp} send-side pressure sheds), plus checksum discards
    of corrupted-but-delivered frames. *)
type fault_stats = {
  offered : int;
  dropped : int;
  dropped_loss : int;
  dropped_burst : int;
  dropped_blackout : int;
  dropped_pool_pressure : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
  delayed : int;
}

val fault_stats : t -> fault_stats

val plan_name : t -> string
(** Name of the effective fault plan both directions run. *)

val in_flight : t -> int
(** Frames queued or propagating in either direction. *)
