(** Host-side frame construction and inspection for the in-memory drivers.

    Drivers play the role of the network hardware and the remote peer; per
    the paper (Section 2.3) their packet fabrication is free of simulated
    cost (templates are preconstructed), so everything here works directly
    on message bytes without charging the clock. *)

type tcp_view = {
  dst : int;  (** IP destination address *)
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  flags : Pnp_proto.Tcp_wire.flags;
  win : int;
  payload_len : int;
}

val headers_len : int
(** FDDI + IP + TCP header bytes. *)

val parse_tcp : Pnp_xkern.Msg.t -> tcp_view option
(** Inspect a full FDDI frame carrying a TCP segment; [None] if it is not
    one. *)

val build_tcp :
  Pnp_xkern.Mpool.t ->
  src:int ->
  dst:int ->
  sport:int ->
  dport:int ->
  seq:int ->
  ack:int ->
  flags:Pnp_proto.Tcp_wire.flags ->
  win:int ->
  payload:Pnp_xkern.Msg.t option ->
  checksum:bool ->
  Pnp_xkern.Msg.t
(** A complete FDDI frame around a TCP segment with valid checksums (when
    [checksum]); consumes [payload]. *)

val build_udp :
  Pnp_xkern.Mpool.t ->
  src:int ->
  dst:int ->
  sport:int ->
  dport:int ->
  payload:Pnp_xkern.Msg.t ->
  checksum:bool ->
  Pnp_xkern.Msg.t
(** A complete FDDI frame around a UDP datagram; consumes [payload]. *)
