(** Receive-side in-memory driver: a simulated TCP {e sender} below FDDI.

    It produces data segments in sequence order for consumption by the
    real TCP receiver above, flow-controlling itself with the
    acknowledgements and window information the receiver sends down
    (Section 2.3).  Segments are fabricated from preconstructed payload
    templates at no simulated cost beyond the per-packet driver charge; a
    small exponential service jitter models interrupt/DMA variance, the
    source of the residual misordering the paper observes even under MCS
    locks (Table 1's MCS column). *)

type t

val attach :
  Stack.t ->
  peer_addr:int ->
  payload:int ->
  checksum:bool ->
  ?jitter_mean_ns:float ->
  ?sequential_payload:bool ->
  ?iss_base:int ->
  ?addr_of:(int -> int) ->
  ports:(int * int) list ->
  unit ->
  t
(** [ports] lists (driver port, receiver port) pairs — one stream per
    connection.  The receiver must already be listening on each receiver
    port when {!start} runs.  [addr_of j] gives stream [j]'s source
    address (default: [peer_addr] for every stream); per-stream addresses
    let a source carry more streams than the 16-bit port space, as long
    as every (address, driver port) pair is unique.  By default each
    segment carries the shared preconstructed payload template;
    [sequential_payload] instead writes the stream-offset pattern into
    every segment, so an application can byte-verify the whole
    reassembled stream (used by correctness tests). *)

val start : t -> unit
(** Perform the connection handshakes.  Call from a simulated thread. *)

val start_range : t -> first:int -> last:int -> unit
(** Handshake streams [first, last) only — lets several threads split a
    large handshake load. *)

val next : t -> stream:int -> bool
(** Produce one in-order segment on the given stream and push it up the
    stack from the calling thread.  Returns [false] (without injecting)
    when the receiver's advertised window is full. *)

type reserved
(** A sequence number pinned to a stream but not yet injected. *)

val reserve : t -> stream:int -> reserved option
(** Pin the stream's next sequence number (under its ring lock) without
    building or injecting the segment.  [None] when the advertised
    window is full, the stream is not established, or the stack's mnode
    pool lacks the headroom to build a segment (counted in
    {!pressure_sheds}; the sequence number is not advanced, so a shed
    reservation is retried later, not lost).  The steered NIC
    ({!Steer}) reserves at arrival time and injects when the assigned
    worker drains its queue, so reservations of one stream parked on two
    workers' queues can be injected out of order — the Flow-Director
    reordering mechanism.  [next] is [reserve] + {!inject} back-to-back. *)

val inject : t -> reserved -> unit
(** Build the reserved segment (jitter + template fill) and push it up
    the stack from the calling thread. *)

val established : t -> stream:int -> bool
val segments_injected : t -> int
val window_stalls : t -> int

(** Reservations refused because the stack's pool was too close to
    capacity to build a segment ([pool_pressure] admission control at the
    driver boundary). *)
val pressure_sheds : t -> int
val finish : t -> stream:int -> unit
(** Send FIN on the stream (for close-path tests). *)

val last_ack : t -> stream:int -> int
(** Highest acknowledgement number seen from the receiver. *)
