open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto

type stream = {
  src_addr : int;
  drv_port : int;
  rcv_port : int;
  iss : int;
  mutable snd_nxt : int;
  mutable snd_una : int; (* last cumulative ack from the receiver *)
  mutable peer_win : int;
  mutable peer_ack : int; (* what we acknowledge of the receiver's seqs *)
  mutable established : bool;
  ring_lock : Lock.t;
}

type t = {
  stack : Stack.t;
  payload : int;
  checksum : bool;
  jitter_mean_ns : float;
  sequential_payload : bool;
  payload_tmpl : Msg.t; (* preconstructed payload shared by all segments *)
  payload_sum : int;
  streams : stream array;
  by_key : (int * int, stream) Hashtbl.t; (* (src addr, driver port) -> stream *)
  jitter : Prng.t;
  mutable injected : int;
  mutable stalls : int;
  mutable pressure_sheds : int;
}

(* Injecting one segment costs a payload node plus the header pushes of
   the TCP/IP/FDDI climb.  Refusing to reserve while the pool can't cover
   that keeps the driver from tripping [Out_of_mnodes]; nothing is lost —
   the sequence number is not advanced, so the feeder retries later. *)
let inject_headroom_margin = 8

let plat t = t.stack.Stack.plat

(* Acks come back addressed to the stream's source address and driver
   port; both are needed once the port space is reused across addresses
   (beyond 2^14 streams). *)
let find_stream t addr port = Hashtbl.find_opt t.by_key (addr, port)

(* Acks (and the SYN-ACK) from the real receiver arrive here. *)
let handle t frame =
  Costs.charge (plat t) Costs.driver_xmit;
  (match Frame.parse_tcp frame with
   | None -> ()
   | Some v -> (
     match find_stream t v.Frame.dst v.Frame.dport with
     | None -> ()
     | Some s ->
       if v.Frame.flags.Tcp_wire.syn && v.Frame.flags.Tcp_wire.ack then begin
         (* SYN-ACK of our handshake: finish it. *)
         s.peer_ack <- Tcp_seq.add v.Frame.seq 1;
         s.snd_una <- v.Frame.ack;
         s.peer_win <- v.Frame.win;
         s.established <- true;
         let ack =
           Frame.build_tcp t.stack.Stack.pool ~src:s.src_addr
             ~dst:t.stack.Stack.local_addr ~sport:s.drv_port ~dport:s.rcv_port
             ~seq:s.snd_nxt ~ack:s.peer_ack ~flags:Tcp_wire.flag_ack
             ~win:(1 lsl 20) ~payload:None ~checksum:t.checksum
         in
         Fddi.input t.stack.Stack.fddi ack
       end
       else begin
         if v.Frame.flags.Tcp_wire.ack && Tcp_seq.gt v.Frame.ack s.snd_una then
           s.snd_una <- v.Frame.ack;
         s.peer_win <- v.Frame.win;
         if v.Frame.flags.Tcp_wire.fin then
           s.peer_ack <- Tcp_seq.add (Tcp_seq.add v.Frame.seq v.Frame.payload_len) 1
       end));
  Msg.destroy frame

let attach stack ~peer_addr ~payload ~checksum ?(jitter_mean_ns = 8000.0)
    ?(sequential_payload = false) ?(iss_base = 0x10000000) ?addr_of ~ports () =
  let addr_of = match addr_of with Some f -> f | None -> fun _ -> peer_addr in
  let streams =
    Array.of_list
      (List.mapi
         (fun j (drv_port, rcv_port) ->
           let iss = Pnp_proto.Tcp_seq.mask (iss_base + drv_port) in
           {
             src_addr = addr_of j;
             drv_port;
             rcv_port;
             iss;
             snd_nxt = iss;
             snd_una = iss;
             peer_win = 0;
             peer_ack = 0;
             established = false;
             ring_lock =
               Lock.create stack.Stack.plat.Platform.sim stack.Stack.plat.Platform.arch
                 Lock.Unfair
                 ~name:(Printf.sprintf "driver.ring.%d" j);
           })
         ports)
  in
  let by_key = Hashtbl.create (max 16 (2 * Array.length streams)) in
  Array.iter
    (fun s ->
      if Hashtbl.mem by_key (s.src_addr, s.drv_port) then
        invalid_arg "Tcp_source.attach: duplicate (source address, driver port)";
      Hashtbl.replace by_key (s.src_addr, s.drv_port) s)
    streams;
  let payload_tmpl = Msg.create stack.Stack.pool payload in
  Msg.fill_pattern payload_tmpl ~off:0 ~len:payload ~stream_off:0;
  let t =
    {
      stack;
      payload;
      checksum;
      jitter_mean_ns;
      sequential_payload;
      payload_tmpl;
      payload_sum = Pnp_proto.Inet_cksum.sum_slices payload_tmpl;
      streams;
      by_key;
      jitter = Prng.split (Sim.prng stack.Stack.plat.Platform.sim);
      injected = 0;
      stalls = 0;
      pressure_sheds = 0;
    }
  in
  Fddi.set_transmit stack.Stack.fddi (fun frame -> handle t frame);
  t

let start_range t ~first ~last =
  if first < 0 || last > Array.length t.streams || first > last then
    invalid_arg "Tcp_source.start_range: bad stream range";
  for j = first to last - 1 do
    let s = t.streams.(j) in
    let syn =
      Frame.build_tcp t.stack.Stack.pool ~src:s.src_addr ~dst:t.stack.Stack.local_addr
        ~sport:s.drv_port ~dport:s.rcv_port ~seq:s.iss ~ack:0 ~flags:Tcp_wire.flag_syn
        ~win:(1 lsl 20) ~payload:None ~checksum:t.checksum
    in
    s.snd_nxt <- Tcp_seq.add s.iss 1;
    Fddi.input t.stack.Stack.fddi syn;
    if not s.established then
      failwith "Tcp_source.start: handshake did not complete synchronously"
  done

(* Handshake every stream, serially, from the calling thread. *)
let start t = start_range t ~first:0 ~last:(Array.length t.streams)

type reserved = { r_stream : int; r_seq : int }

(* Pin the next sequence number of [stream] under the ring lock.  In the
   classic feeders reservation and injection are back-to-back ([next]);
   the steered NIC reserves at arrival time and injects whenever the
   owning worker drains its queue, so a reservation can sit behind
   younger reservations of the same stream on another worker's queue —
   that gap is the Flow-Director reordering. *)
let reserve t ~stream =
  let s = t.streams.(stream) in
  let p = plat t in
  if Mpool.headroom t.stack.Stack.pool < inject_headroom_margin then begin
    t.pressure_sheds <- t.pressure_sheds + 1;
    None
  end
  else begin
  Lock.acquire s.ring_lock;
  Costs.charge p Costs.driver_recv;
  if not s.established then begin
    Lock.release s.ring_lock;
    None
  end
  else begin
    let in_flight = Tcp_seq.diff s.snd_nxt s.snd_una in
    if in_flight + t.payload > s.peer_win then begin
      t.stalls <- t.stalls + 1;
      Lock.release s.ring_lock;
      None
    end
    else begin
      let seq = s.snd_nxt in
      s.snd_nxt <- Tcp_seq.add s.snd_nxt t.payload;
      t.injected <- t.injected + 1;
      Lock.release s.ring_lock;
      Some { r_stream = stream; r_seq = seq }
    end
  end
  end

let inject t { r_stream; r_seq = seq } =
  let s = t.streams.(r_stream) in
  let p = plat t in
  (* The packet lifecycle span covers driver service plus the synchronous
     climb through FDDI/IP, on the thread that carries the packet. *)
  let tracer = Sim.tracer p.Platform.sim in
  let tracing = Trace.enabled tracer && Sim.in_thread p.Platform.sim in
  let span ev =
    let th = Sim.self p.Platform.sim in
    Trace.emit tracer ~ts:(Sim.now p.Platform.sim) ~tid:(Sim.tid th)
      ~cpu:(Sim.cpu th) ev
  in
  if tracing then span (Trace.Span_begin { seq; phase = Trace.Enqueue });
  (* Interrupt/DMA service variance hits each thread independently after
     the in-order handout — the source of the residual misordering
     Table 1 shows even under MCS locks. *)
  Platform.charge p (int_of_float (Prng.exponential t.jitter ~mean:t.jitter_mean_ns));
  (* Build from the template outside the ring lock: the thread carries
     its own packet up the stack, as in the paper. *)
  let frame =
    if t.sequential_payload then begin
      let payload = Msg.create t.stack.Stack.pool t.payload in
      Msg.fill_pattern payload ~off:0 ~len:t.payload
        ~stream_off:(Tcp_seq.diff seq (Tcp_seq.add s.iss 1));
      Frame.build_tcp t.stack.Stack.pool ~src:s.src_addr
        ~dst:t.stack.Stack.local_addr ~sport:s.drv_port ~dport:s.rcv_port ~seq
        ~ack:s.peer_ack ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20)
        ~payload:(Some payload) ~checksum:t.checksum
    end
    else begin
      (* Template path: share the payload node; checksum updated
         incrementally from the precomputed payload sum. *)
      let seg = Msg.dup t.payload_tmpl in
      Tcp_wire.encode seg
        {
          Tcp_wire.sport = s.drv_port;
          dport = s.rcv_port;
          seq;
          ack = s.peer_ack;
          flags = Tcp_wire.flag_ack;
          win = 1 lsl 20;
          cksum = 0;
        };
      if t.checksum then
        Tcp_wire.store_checksum_incremental ~src:s.src_addr
          ~dst:t.stack.Stack.local_addr ~payload_sum:t.payload_sum seg
      else Msg.set_u16 seg 18 0;
      Ip.encap seg ~src:s.src_addr ~dst:t.stack.Stack.local_addr
        ~proto:Tcp_wire.protocol_number ~id:0;
      Fddi.encap seg ~src_mac:s.src_addr ~dst_mac:t.stack.Stack.local_addr
        ~ethertype:Ip.ethertype;
      seg
    end
  in
  if tracing then span (Trace.Span_end { seq; phase = Trace.Enqueue });
  Fddi.input t.stack.Stack.fddi frame

let next t ~stream =
  match reserve t ~stream with
  | None -> false
  | Some r ->
    inject t r;
    true

let established t ~stream = t.streams.(stream).established
let segments_injected t = t.injected
let window_stalls t = t.stalls
let pressure_sheds t = t.pressure_sheds

let finish t ~stream =
  let s = t.streams.(stream) in
  let fin =
    Frame.build_tcp t.stack.Stack.pool ~src:s.src_addr ~dst:t.stack.Stack.local_addr
      ~sport:s.drv_port ~dport:s.rcv_port ~seq:s.snd_nxt ~ack:s.peer_ack
      ~flags:Tcp_wire.flag_fin_ack ~win:(1 lsl 20) ~payload:None ~checksum:t.checksum
  in
  s.snd_nxt <- Tcp_seq.add s.snd_nxt 1;
  Fddi.input t.stack.Stack.fddi fin

let last_ack t ~stream = t.streams.(stream).snd_una
