open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto

type stream = {
  drv_port : int;
  rcv_port : int;
  iss : int;
  mutable snd_nxt : int;
  mutable snd_una : int; (* last cumulative ack from the receiver *)
  mutable peer_win : int;
  mutable peer_ack : int; (* what we acknowledge of the receiver's seqs *)
  mutable established : bool;
  ring_lock : Lock.t;
}

type t = {
  stack : Stack.t;
  peer_addr : int;
  payload : int;
  checksum : bool;
  jitter_mean_ns : float;
  sequential_payload : bool;
  payload_tmpl : Msg.t; (* preconstructed payload shared by all segments *)
  payload_sum : int;
  streams : stream array;
  jitter : Prng.t;
  mutable injected : int;
  mutable stalls : int;
}

let plat t = t.stack.Stack.plat



let find_stream t port =
  let n = Array.length t.streams in
  let rec go i =
    if i >= n then None
    else if t.streams.(i).drv_port = port then Some t.streams.(i)
    else go (i + 1)
  in
  go 0

(* Acks (and the SYN-ACK) from the real receiver arrive here. *)
let handle t frame =
  Costs.charge (plat t) Costs.driver_xmit;
  (match Frame.parse_tcp frame with
   | None -> ()
   | Some v -> (
     match find_stream t v.Frame.dport with
     | None -> ()
     | Some s ->
       if v.Frame.flags.Tcp_wire.syn && v.Frame.flags.Tcp_wire.ack then begin
         (* SYN-ACK of our handshake: finish it. *)
         s.peer_ack <- Tcp_seq.add v.Frame.seq 1;
         s.snd_una <- v.Frame.ack;
         s.peer_win <- v.Frame.win;
         s.established <- true;
         let ack =
           Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr
             ~dst:t.stack.Stack.local_addr ~sport:s.drv_port ~dport:s.rcv_port
             ~seq:s.snd_nxt ~ack:s.peer_ack ~flags:Tcp_wire.flag_ack
             ~win:(1 lsl 20) ~payload:None ~checksum:t.checksum
         in
         Fddi.input t.stack.Stack.fddi ack
       end
       else begin
         if v.Frame.flags.Tcp_wire.ack && Tcp_seq.gt v.Frame.ack s.snd_una then
           s.snd_una <- v.Frame.ack;
         s.peer_win <- v.Frame.win;
         if v.Frame.flags.Tcp_wire.fin then
           s.peer_ack <- Tcp_seq.add (Tcp_seq.add v.Frame.seq v.Frame.payload_len) 1
       end));
  Msg.destroy frame

let attach stack ~peer_addr ~payload ~checksum ?(jitter_mean_ns = 8000.0)
    ?(sequential_payload = false) ?(iss_base = 0x10000000) ~ports () =
  let streams =
    Array.of_list
      (List.map
         (fun (drv_port, rcv_port) ->
           let iss = Pnp_proto.Tcp_seq.mask (iss_base + drv_port) in
           {
             drv_port;
             rcv_port;
             iss;
             snd_nxt = iss;
             snd_una = iss;
             peer_win = 0;
             peer_ack = 0;
             established = false;
             ring_lock =
               Lock.create stack.Stack.plat.Platform.sim stack.Stack.plat.Platform.arch
                 Lock.Unfair
                 ~name:(Printf.sprintf "driver.ring.%d" drv_port);
           })
         ports)
  in
  let payload_tmpl = Msg.create stack.Stack.pool payload in
  Msg.fill_pattern payload_tmpl ~off:0 ~len:payload ~stream_off:0;
  let t =
    {
      stack;
      peer_addr;
      payload;
      checksum;
      jitter_mean_ns;
      sequential_payload;
      payload_tmpl;
      payload_sum = Pnp_proto.Inet_cksum.sum_slices payload_tmpl;
      streams;
      jitter = Prng.split (Sim.prng stack.Stack.plat.Platform.sim);
      injected = 0;
      stalls = 0;
    }
  in
  Fddi.set_transmit stack.Stack.fddi (fun frame -> handle t frame);
  t

let start t =
  Array.iter
    (fun s ->
      let syn =
        Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr ~dst:t.stack.Stack.local_addr
          ~sport:s.drv_port ~dport:s.rcv_port ~seq:s.iss ~ack:0 ~flags:Tcp_wire.flag_syn
          ~win:(1 lsl 20) ~payload:None ~checksum:t.checksum
      in
      s.snd_nxt <- Tcp_seq.add s.iss 1;
      Fddi.input t.stack.Stack.fddi syn;
      if not s.established then
        failwith "Tcp_source.start: handshake did not complete synchronously")
    t.streams

let next t ~stream =
  let s = t.streams.(stream) in
  let p = plat t in
  Lock.acquire s.ring_lock;
  Costs.charge p Costs.driver_recv;
  if not s.established then begin
    Lock.release s.ring_lock;
    false
  end
  else begin
    let in_flight = Tcp_seq.diff s.snd_nxt s.snd_una in
    if in_flight + t.payload > s.peer_win then begin
      t.stalls <- t.stalls + 1;
      Lock.release s.ring_lock;
      false
    end
    else begin
      let seq = s.snd_nxt in
      s.snd_nxt <- Tcp_seq.add s.snd_nxt t.payload;
      t.injected <- t.injected + 1;
      Lock.release s.ring_lock;
      (* Packet lifecycle begins at the in-order seq handout; the span covers
         driver service plus the synchronous climb through FDDI/IP. *)
      let tracer = Sim.tracer p.Platform.sim in
      let tracing = Trace.enabled tracer && Sim.in_thread p.Platform.sim in
      let span ev =
        let th = Sim.self p.Platform.sim in
        Trace.emit tracer ~ts:(Sim.now p.Platform.sim) ~tid:(Sim.tid th)
          ~cpu:(Sim.cpu th) ev
      in
      if tracing then span (Trace.Span_begin { seq; phase = Trace.Enqueue });
      (* Interrupt/DMA service variance hits each thread independently
         after the in-order handout — the source of the residual
         misordering Table 1 shows even under MCS locks. *)
      Platform.charge p (int_of_float (Prng.exponential t.jitter ~mean:t.jitter_mean_ns));
      (* Build from the template outside the ring lock: the thread carries
         its own packet up the stack, as in the paper. *)
      let frame =
        if t.sequential_payload then begin
          let payload = Msg.create t.stack.Stack.pool t.payload in
          Msg.fill_pattern payload ~off:0 ~len:t.payload
            ~stream_off:(Tcp_seq.diff seq (Tcp_seq.add s.iss 1));
          Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr
            ~dst:t.stack.Stack.local_addr ~sport:s.drv_port ~dport:s.rcv_port ~seq
            ~ack:s.peer_ack ~flags:Tcp_wire.flag_ack ~win:(1 lsl 20)
            ~payload:(Some payload) ~checksum:t.checksum
        end
        else begin
          (* Template path: share the payload node; checksum updated
             incrementally from the precomputed payload sum. *)
          let seg = Msg.dup t.payload_tmpl in
          Tcp_wire.encode seg
            {
              Tcp_wire.sport = s.drv_port;
              dport = s.rcv_port;
              seq;
              ack = s.peer_ack;
              flags = Tcp_wire.flag_ack;
              win = 1 lsl 20;
              cksum = 0;
            };
          if t.checksum then
            Tcp_wire.store_checksum_incremental ~src:t.peer_addr
              ~dst:t.stack.Stack.local_addr ~payload_sum:t.payload_sum seg
          else Msg.set_u16 seg 18 0;
          Ip.encap seg ~src:t.peer_addr ~dst:t.stack.Stack.local_addr
            ~proto:Tcp_wire.protocol_number ~id:0;
          Fddi.encap seg ~src_mac:t.peer_addr ~dst_mac:t.stack.Stack.local_addr
            ~ethertype:Ip.ethertype;
          seg
        end
      in
      if tracing then span (Trace.Span_end { seq; phase = Trace.Enqueue });
      Fddi.input t.stack.Stack.fddi frame;
      true
    end
  end

let established t ~stream = t.streams.(stream).established
let segments_injected t = t.injected
let window_stalls t = t.stalls

let finish t ~stream =
  let s = t.streams.(stream) in
  let fin =
    Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr ~dst:t.stack.Stack.local_addr
      ~sport:s.drv_port ~dport:s.rcv_port ~seq:s.snd_nxt ~ack:s.peer_ack
      ~flags:Tcp_wire.flag_fin_ack ~win:(1 lsl 20) ~payload:None ~checksum:t.checksum
  in
  s.snd_nxt <- Tcp_seq.add s.snd_nxt 1;
  Fddi.input t.stack.Stack.fddi fin

let last_ack t ~stream = t.streams.(stream).snd_una
