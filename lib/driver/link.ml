open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_faults
open Pnp_proto

(* One direction of the link: a serialising transmitter feeding a receive
   thread through a delivery queue.  Every offered frame runs through the
   direction's fault pipeline before it reaches the wire. *)
type direction = {
  dest : Stack.t;
  queue : Msg.t Queue.t;
  mutable rx_wakeup : (int -> unit) option; (* receive thread parked here *)
  mutable busy_until : int; (* transmitter serialisation horizon *)
  mutable frames : int; (* frames OFFERED to this direction *)
  mutable pressure_drops : int; (* frames shed at rx for dest pool pressure *)
  faults : Faults.t;
}

(* A frame pushed up the stack can allocate a couple of transient mnodes
   from the receiver's pool (header walk + a pure ACK in reply).  Shedding
   at the wire while the pool can't cover that keeps receive processing
   from ever tripping the hard capacity — the drop is accounted and TCP's
   retransmission recovers the data. *)
let rx_headroom_margin = 4

type t = {
  plat : Platform.t;
  latency : Units.ns;
  bandwidth_mbps : float;
  ab : direction;
  ba : direction;
  mutable in_flight : int;
}

type fault_stats = {
  offered : int;
  dropped : int;
  dropped_loss : int;
  dropped_burst : int;
  dropped_blackout : int;
  dropped_pool_pressure : int;
  corrupted : int;
  duplicated : int;
  reordered : int;
  delayed : int;
}

let serialisation_ns t bytes =
  (* Mbit/s = 10^-3 bits/ns. *)
  int_of_float (float_of_int (8 * bytes) /. (t.bandwidth_mbps /. 1000.0))

let trace_ev_of_fault = function
  | Faults.Ev_drop cause ->
    Some (Trace.Fault_drop { cause = Faults.drop_cause_label cause })
  | Faults.Ev_dup -> Some (Trace.Fault_dup { copies = 1 })
  | Faults.Ev_corrupt { off; bit } -> Some (Trace.Fault_corrupt { off; bit })
  | Faults.Ev_reorder { delay_ns } -> Some (Trace.Fault_reorder { delay_ns })
  | Faults.Ev_delay _ -> None (* jitter perturbs timing only; not a fault event *)

let trace_fault t ev =
  let sim = t.plat.Platform.sim in
  let tracer = Sim.tracer sim in
  let ids () =
    if Sim.in_thread sim then
      let th = Sim.self sim in
      (Sim.tid th, Sim.cpu th)
    else (-1, -1)
  in
  if Trace.enabled tracer then
    let tid, cpu = ids () in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid ~cpu ev

(* The receive side: a daemon thread that sleeps until frames arrive and
   pushes them up the destination stack. *)
let start_rx t dir ~name ~cpu =
  ignore
    (Sim.spawn t.plat.Platform.sim ~cpu ~name (fun () ->
         while true do
           if Queue.is_empty dir.queue then
             Sim.suspend t.plat.Platform.sim (fun resume -> dir.rx_wakeup <- Some resume)
           else begin
             let frame = Queue.pop dir.queue in
             t.in_flight <- t.in_flight - 1;
             if Mpool.headroom dir.dest.Stack.pool < rx_headroom_margin then begin
               dir.pressure_drops <- dir.pressure_drops + 1;
               trace_fault t (Trace.Fault_drop { cause = "pool_pressure" });
               Msg.destroy frame
             end
             else Fddi.input dir.dest.Stack.fddi frame
           end
         done))

let deliver t dir frame =
  Queue.push frame dir.queue;
  match dir.rx_wakeup with
  | Some resume ->
    dir.rx_wakeup <- None;
    resume (Sim.now t.plat.Platform.sim)
  | None -> ()

(* The transmit side: run the fault pipeline, then schedule each surviving
   frame's arrival after serialisation + propagation (+ any fault-injected
   extra delay).  Runs in the sender's thread; only the arrival crosses
   into the receive thread. *)
let transmit t dir frame =
  dir.frames <- dir.frames + 1;
  let sim = t.plat.Platform.sim in
  let now = Sim.now sim in
  let deliveries =
    Faults.feed dir.faults ~now
      ~on_event:(fun ev ->
        match trace_ev_of_fault ev with Some tev -> trace_fault t tev | None -> ())
      frame
  in
  List.iter
    (fun (frame, extra_ns) ->
      let start = max now dir.busy_until in
      let ser = serialisation_ns t (Msg.length frame) in
      dir.busy_until <- start + ser;
      t.in_flight <- t.in_flight + 1;
      Sim.at sim (start + ser + t.latency + extra_ns) (fun () -> deliver t dir frame))
    deliveries

let connect plat ?(latency = Units.us 50.0) ?(bandwidth_mbps = 100.0)
    ?(loss_rate = 0.0) ?(plan = Faults.none) ~(a : Stack.t) ~(b : Stack.t) () =
  (* [?loss_rate] is sugar for a Bernoulli stage prepended to the plan. *)
  let eff_plan =
    if loss_rate <= 0.0 then plan
    else if plan.Faults.stages = [] then Faults.bernoulli loss_rate
    else
      Faults.plan ~name:plan.Faults.name
        (Faults.Bernoulli_loss { p = loss_rate } :: plan.Faults.stages)
  in
  let rng = Prng.split (Sim.prng plat.Platform.sim) in
  let mk dest =
    {
      dest;
      queue = Queue.create ();
      rx_wakeup = None;
      busy_until = 0;
      frames = 0;
      pressure_drops = 0;
      faults = Faults.instantiate eff_plan ~prng:rng ~skip_bytes:Fddi.header_bytes;
    }
  in
  let t = { plat; latency; bandwidth_mbps; ab = mk b; ba = mk a; in_flight = 0 } in
  Fddi.set_transmit a.Stack.fddi (fun frame -> transmit t t.ab frame);
  Fddi.set_transmit b.Stack.fddi (fun frame -> transmit t t.ba frame);
  start_rx t t.ab ~name:"link.rx.b" ~cpu:100;
  start_rx t t.ba ~name:"link.rx.a" ~cpu:101;
  t

let frames_ab t = t.ab.frames
let frames_ba t = t.ba.frames

let fault_stats t =
  let f g = g t.ab.faults + g t.ba.faults in
  {
    offered = f Faults.offered;
    dropped = f Faults.dropped;
    dropped_loss = f Faults.dropped_loss;
    dropped_burst = f Faults.dropped_burst;
    dropped_blackout = f Faults.dropped_blackout;
    dropped_pool_pressure = t.ab.pressure_drops + t.ba.pressure_drops;
    corrupted = f Faults.corrupted;
    duplicated = f Faults.duplicated;
    reordered = f Faults.reordered;
    delayed = f Faults.delayed;
  }

let dropped t = Faults.dropped t.ab.faults + Faults.dropped t.ba.faults
let pressure_drops t = t.ab.pressure_drops + t.ba.pressure_drops
let plan_name t = (Faults.plan_of t.ab.faults).Faults.name
let in_flight t = t.in_flight
