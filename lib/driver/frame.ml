open Pnp_xkern
open Pnp_proto

type tcp_view = {
  dst : int;
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  flags : Tcp_wire.flags;
  win : int;
  payload_len : int;
}

let fddi_len = Fddi.header_bytes (* 21 *)
let ip_off = fddi_len
let tcp_off = fddi_len + Ip.header_bytes (* 41 *)
let headers_len = tcp_off + Tcp_wire.header_bytes

let parse_tcp msg =
  if Msg.length msg < headers_len then None
  else if Msg.get_u16 msg 19 <> Ip.ethertype then None
  else if Msg.get_u8 msg (ip_off + 9) <> Tcp_wire.protocol_number then None
  else
    let flags_word = Msg.get_u16 msg (tcp_off + 12) in
    Some
      {
        dst = Msg.get_u32 msg (ip_off + 16);
        sport = Msg.get_u16 msg tcp_off;
        dport = Msg.get_u16 msg (tcp_off + 2);
        seq = Msg.get_u32 msg (tcp_off + 4);
        ack = Msg.get_u32 msg (tcp_off + 8);
        flags =
          {
            Tcp_wire.fin = flags_word land 1 <> 0;
            syn = flags_word land 2 <> 0;
            rst = flags_word land 4 <> 0;
            psh = flags_word land 8 <> 0;
            ack = flags_word land 16 <> 0;
          };
        win = Msg.get_u32 msg (tcp_off + 14);
        payload_len = Msg.length msg - headers_len;
      }

let build_tcp pool ~src ~dst ~sport ~dport ~seq ~ack ~flags ~win ~payload ~checksum =
  let msg = match payload with Some m -> m | None -> Msg.create pool 0 in
  Tcp_wire.encode msg
    { Tcp_wire.sport; dport; seq; ack; flags; win; cksum = 0 };
  if checksum then Tcp_wire.store_checksum_free ~src ~dst msg
  else Msg.set_u16 msg 18 0;
  Ip.encap msg ~src ~dst ~proto:Tcp_wire.protocol_number ~id:0;
  Fddi.encap msg ~src_mac:src ~dst_mac:dst ~ethertype:Ip.ethertype;
  msg

let build_udp pool ~src ~dst ~sport ~dport ~payload ~checksum =
  ignore pool;
  Udp.encap_free payload ~src ~dst ~sport ~dport ~checksum;
  Ip.encap payload ~src ~dst ~proto:Udp.protocol_number ~id:0;
  Fddi.encap payload ~src_mac:src ~dst_mac:dst ~ethertype:Ip.ethertype;
  payload
