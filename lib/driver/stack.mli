(** Assembled protocol stack: FDDI / IP / {UDP, TCP} over one platform,
    ready to have an in-memory device driver attached below FDDI.

    This mirrors the paper's test configurations (Figure 1): a throughput
    test sits on top, the protocol stack in the middle, and a simulated
    driver below the media access layer. *)

type t = {
  plat : Pnp_engine.Platform.t;
  pool : Pnp_xkern.Mpool.t;
  wheel : Pnp_xkern.Timewheel.t;
  fddi : Pnp_proto.Fddi.t;
  ip : Pnp_proto.Ip.t;
  udp : Pnp_proto.Udp.t;
  tcp : Pnp_proto.Tcp.t;
  icmp : Pnp_proto.Icmp.t;
  local_addr : int;
}

val create :
  Pnp_engine.Platform.t ->
  ?tcp_config:Pnp_proto.Tcp.config ->
  ?udp_checksum:bool ->
  ?pool_capacity:int ->
  local_addr:int ->
  unit ->
  t
(** Build the full stack.  [tcp_config] defaults to
    {!Pnp_proto.Tcp.default_config}; [udp_checksum] defaults to [true];
    [pool_capacity] bounds the stack's MNode pool (default unbounded).
    A bounded pool gets a soft watermark at half capacity
    ({!Pnp_xkern.Mpool}): TCP senders park and the link/driver layers
    shed accounted [pool_pressure] drops above it, so only code that
    bypasses admission control can still hit the hard bound's
    {!Pnp_xkern.Mpool.Out_of_mnodes}. *)
