open Pnp_engine
open Pnp_xkern
open Pnp_proto

type t = {
  plat : Platform.t;
  pool : Mpool.t;
  wheel : Timewheel.t;
  fddi : Fddi.t;
  ip : Ip.t;
  udp : Udp.t;
  tcp : Tcp.t;
  icmp : Icmp.t;
  local_addr : int;
}

let create plat ?(tcp_config = Tcp.default_config) ?(udp_checksum = true) ?pool_capacity
    ~local_addr () =
  let pool = Mpool.create ?capacity:pool_capacity plat in
  let wheel = Timewheel.create plat ~name:"evmgr" () in
  let fddi = Fddi.create plat ~local_mac:local_addr ~name:"fddi" in
  let ip = Ip.create plat pool ~wheel ~fddi ~local_addr ~name:"ip" in
  let udp = Udp.create plat ~ip ~checksum:udp_checksum ~name:"udp" in
  let tcp = Tcp.create plat pool ~wheel ~ip tcp_config ~name:"tcp" in
  let icmp = Icmp.create plat pool ~ip ~name:"icmp" in
  { plat; pool; wheel; fddi; ip; udp; tcp; icmp; local_addr }
