(** FastTrack-style happens-before race detection over trace replay.

    Builds per-thread vector clocks from the ordering edges the engine
    traces — thread fork/join ([Thread_fork]/[Thread_exit]/[Thread_join]),
    lock release→acquire ([Lock_release]/[Lock_grant]), gate signal→wait
    ([Gate_advance]/[Gate_pass]), membus replies ([Membus_charge]) and
    SCR log append→apply→apply chains
    ([Scr_append]/[Scr_apply]/[Scr_apply_end]) —
    and reports two accesses to the same state as a race when neither
    happens-before the other.

    Complements {!Lockset}: the lockset abstraction cannot see
    lock-free ordering, so findings present there but absent here are
    false-positive candidates, and findings present here but absent
    there are real races the lockset analysis missed (e.g. an unlocked
    write against reads Eraser's read-shared state never reports).
    `repro check` prints the two checkers' verdicts side by side. *)

type race = {
  state : string;                 (** the ["owner#field"] state id *)
  first : Pnp_engine.Trace.record;  (** earlier access of the pair *)
  second : Pnp_engine.Trace.record; (** the access that exposed the race *)
  write_write : bool;             (** both accesses are writes *)
}

val run : ?bus_sync:bool -> Pnp_engine.Trace.t -> race list
(** At most one race per state id, in order of detection.  [bus_sync]
    (default [true]) treats every [Membus_charge] as an
    acquire+release on a single bus channel — the membus-reply edge;
    pass [false] to drop that edge and check lock/gate/fork ordering
    alone. *)

val races : ?bus_sync:bool -> Pnp_engine.Trace.t -> string list
(** Just the racy state ids, for cross-checking against {!Lockset}. *)

val check : ?bus_sync:bool -> Pnp_engine.Trace.t -> Finding.t list
(** {!run} as findings (checker ["hb-race"]), with both access
    witnesses — plus one finding per SCR log-replay violation: a
    [Scr_apply] whose index exceeds every index the trace saw appended
    consumed an entry that did not exist yet (replay read ahead of the
    appended tail). *)
