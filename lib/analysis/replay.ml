open Pnp_engine

(* Per thread: held locks as (name, grant record), oldest first, and the
   seq of the packet it is currently carrying up the stack. *)
type thread_state = {
  mutable locks : (string * Trace.record) list;
  mutable seq : int option;
}

type ctx = (int, thread_state) Hashtbl.t

let state ctx tid =
  match Hashtbl.find_opt ctx tid with
  | Some s -> s
  | None ->
    let s = { locks = []; seq = None } in
    Hashtbl.replace ctx tid s;
    s

let held ctx ~tid =
  match Hashtbl.find_opt ctx tid with
  | None -> []
  | Some s -> List.map fst s.locks

let grant_record ctx ~tid ~lock =
  match Hashtbl.find_opt ctx tid with
  | None -> None
  | Some s -> List.assoc_opt lock s.locks

let current_seq ctx ~tid =
  match Hashtbl.find_opt ctx tid with None -> None | Some s -> s.seq

(* Remove the most recent occurrence: a Counting lock's underlying lock
   appears once, but be robust to repeated names. *)
let remove_last name locks =
  let rec go = function
    | [] -> []
    | (n, _) :: rest when n = name && not (List.mem_assoc name rest) -> rest
    | entry :: rest -> entry :: go rest
  in
  go locks

let apply ctx (r : Trace.record) =
  match r.Trace.ev with
  | Trace.Lock_grant { lock; _ } ->
    let s = state ctx r.Trace.tid in
    s.locks <- s.locks @ [ (lock, r) ]
  | Trace.Lock_release { lock; _ } ->
    let s = state ctx r.Trace.tid in
    s.locks <- remove_last lock s.locks
  (* SCR apply sections are host-atomic and ordered by the log, so for
     lockset purposes they behave as critical sections of one synthetic
     per-log lock: accesses inside them are consistently protected.  The
     channel ordering itself is Hb's job; this only keeps Eraser-style
     classification from calling the serialized sections unprotected. *)
  | Trace.Scr_apply { log; _ } ->
    let s = state ctx r.Trace.tid in
    s.locks <- s.locks @ [ ("scr:" ^ log, r) ]
  | Trace.Scr_apply_end { log; _ } ->
    let s = state ctx r.Trace.tid in
    s.locks <- remove_last ("scr:" ^ log) s.locks
  | Trace.Span_begin { seq; phase = Trace.Enqueue } ->
    (state ctx r.Trace.tid).seq <- Some seq
  | _ -> ()

let replay tracer f =
  let ctx : ctx = Hashtbl.create 64 in
  Trace.iter tracer (fun r ->
      f ctx r;
      apply ctx r)
