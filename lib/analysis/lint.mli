(** Source-invariant lint over the repo's OCaml sources.

    Complementing the trace-driven checkers, this enforces conventions
    that keep figure output deterministic and the tracer cheap:

    - {b no-print / no-wallclock / no-global-mutable} (figure data
      phases): in [fig_*.ml], top-level bindings that are not
      presentation helpers (name ending in [_present]) compute figure
      data and must stay pure — no [Printf.printf]-style console
      output, no [Unix.gettimeofday] / [Sys.time] / [Random.self_init]
      (wall-clock or ambient nondeterminism), and the file must not
      define top-level mutable state ([let x = ref ...]).

    - {b lock-pairing} (lib/ and bin/): a file with more textual
      [Lock.acquire] than [Lock.release] call sites almost certainly
      leaks a lock on some path; prefer [Lock.with_lock].  Extra
      releases are fine (early-exit branches share one acquire).

    - {b trace-guard}: every [Trace.emit] call site must test
      [Trace.enabled] within the few preceding lines, so tracing stays
      zero-cost when disabled.  [trace.ml] itself is exempt.

    The scanner understands OCaml lexical structure well enough not to
    be fooled: nested [(* *)] comments, string literals (including
    strings inside comments) and char literals are blanked before rules
    run.  A line containing [lint:allow] (inside a comment) is skipped
    by all line-based rules. *)

type finding = {
  file : string;
  line : int;  (** 1-based; 0 for whole-file findings *)
  rule : string;
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit

val scrub : string -> string
(** Blank out comments, string literals and char literals, preserving
    line structure (every other character, including newlines, is kept
    in place).  Exposed for tests. *)

val check_source : file:string -> string -> finding list
(** Lint one file's contents.  [file] is the (relative) path used both
    for reporting and for deciding which rules apply.  Includes the
    {{!state_matrix}state-access matrix} violations (rule
    [state-matrix], proto files) and the Msg-mutator generation rule
    (rule [msg-bump-gen], files handling raw node bytes): a top-level
    binding that mutates [Bytes.t] in a file mentioning [Mpool.data] or
    [Msg.head_view] must also call [bump_gen]. *)

(** {2 State-access matrix}

    Inferred per top-level binding in [lib/proto]: which shared-state
    classes ([snd]/[rcv]/[sb]/[reass], from the [access sess
    ~write:b "class"] annotations) the binding reads and writes, and
    which lock-context tokens ([Lock.acquire], [*_acquire], [with_*]
    helpers) appear in it.  A binding writing shared state with no lock
    token and no [lint:allow] is a [state-matrix] violation. *)

type matrix_row = {
  m_file : string;
  m_binding : string;
  m_line : int;           (** first line of the binding, 1-based *)
  m_reads : string list;  (** state classes read *)
  m_writes : string list; (** state classes written *)
  m_locks : string list;  (** lock-context tokens seen in the binding *)
  m_allowed : bool;       (** a [lint:allow] marker covers the binding *)
}

val state_matrix_source : file:string -> string -> matrix_row list
(** Rows for one file's contents (empty outside [lib/proto]). *)

val state_matrix : roots:string list -> matrix_row list
(** Rows for every [.ml] file under the roots, sorted by file. *)

val matrix_violations : matrix_row list -> finding list

val matrix_to_string : matrix_row list -> string
(** The matrix as an aligned text table. *)

val matrix_json : matrix_row list -> string
(** The matrix as a one-object JSON document. *)

val check_file : string -> finding list
(** [check_file path] reads and lints [path]. *)

val check_tree : roots:string list -> finding list
(** Recursively lint every [.ml] file under the given root
    directories, skipping [_build] and dot-directories.  Findings are
    sorted by (file, line). *)
