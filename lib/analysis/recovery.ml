type tcp_stream = {
  label : string;
  sent_bytes : int;
  received_bytes : int;
  sent_digest : int;
  received_digest : int;
  established : bool;
  drained : bool;
  rexmits : int;
}

type corruption = { injected : int; caught : int }

type udp_account = {
  injected : int;
  duplicated : int;
  delivered : int;
  dropped_link : int;
  dropped_proto : int;
}

type obs = {
  run : string;
  streams : tcp_stream list;
  corruption : corruption option;
  udp : udp_account option;
}

(* FNV-1a, 64-bit.  Order-sensitive and cheap; OCaml's native int is 63
   bits, so the offset basis is folded into range — equality checking
   only needs a consistent, well-mixed value. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let digest_add acc s =
  let h = ref acc in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime)
    s;
  !h

let digest s = digest_add fnv_offset s

let checker = "recovery"

let check obs =
  let findings = ref [] in
  let fail ~subject msg = findings := Finding.v ~checker ~subject msg :: !findings in
  List.iter
    (fun s ->
      let subject = obs.run ^ "/" ^ s.label in
      if not s.established then
        fail ~subject "connection never reached ESTABLISHED under the fault plan"
      else begin
        if not s.drained then
          fail ~subject
            (Printf.sprintf
               "connection did not drain: %d of %d bytes delivered, %d rexmits — a \
                fault-triggered retransmission never resolved"
               s.received_bytes s.sent_bytes s.rexmits);
        if s.received_bytes <> s.sent_bytes then
          fail ~subject
            (Printf.sprintf "stream length mismatch: sent %d bytes, delivered %d"
               s.sent_bytes s.received_bytes)
        else if s.received_digest <> s.sent_digest then
          fail ~subject
            (Printf.sprintf
               "stream digest mismatch over %d bytes: corrupted or misordered data \
                reached the application"
               s.sent_bytes)
      end)
    obs.streams;
  (match obs.corruption with
  | Some c when c.caught < c.injected ->
    fail ~subject:(obs.run ^ "/corruption")
      (Printf.sprintf
         "silent corruption: %d bit flips injected but only %d checksum rejections \
          observed — %d damaged frame(s) passed verification"
         c.injected c.caught (c.injected - c.caught))
  | Some _ | None -> ());
  (match obs.udp with
  | Some u ->
    let offered = u.injected + u.duplicated in
    let accounted = u.delivered + u.dropped_link + u.dropped_proto in
    if offered <> accounted then
      fail ~subject:(obs.run ^ "/udp")
        (Printf.sprintf
           "datagram accounting does not balance: %d offered (%d + %d dup) but %d \
            accounted (%d delivered + %d link drops + %d proto drops)"
           offered u.injected u.duplicated accounted u.delivered u.dropped_link
           u.dropped_proto)
  | None -> ());
  Finding.sort !findings
