type tcp_stream = {
  label : string;
  sent_bytes : int;
  received_bytes : int;
  sent_digest : int;
  received_digest : int;
  established : bool;
  drained : bool;
  rexmits : int;
}

type corruption = { injected : int; caught : int }

type udp_account = {
  injected : int;
  duplicated : int;
  delivered : int;
  dropped_link : int;
  dropped_proto : int;
  dropped_pressure : int;
}

type obs = {
  run : string;
  streams : tcp_stream list;
  corruption : corruption option;
  udp : udp_account option;
}

(* FNV-1a, 64-bit.  Order-sensitive and cheap; OCaml's native int is 63
   bits, so the offset basis is folded into range — equality checking
   only needs a consistent, well-mixed value. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let digest_add acc s =
  let h = ref acc in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime)
    s;
  !h

let digest s = digest_add fnv_offset s

let checker = "recovery"

let check obs =
  let findings = ref [] in
  let fail ~subject msg = findings := Finding.v ~checker ~subject msg :: !findings in
  List.iter
    (fun s ->
      let subject = obs.run ^ "/" ^ s.label in
      if not s.established then
        fail ~subject "connection never reached ESTABLISHED under the fault plan"
      else begin
        if not s.drained then
          fail ~subject
            (Printf.sprintf
               "connection did not drain: %d of %d bytes delivered, %d rexmits — a \
                fault-triggered retransmission never resolved"
               s.received_bytes s.sent_bytes s.rexmits);
        if s.received_bytes <> s.sent_bytes then
          fail ~subject
            (Printf.sprintf "stream length mismatch: sent %d bytes, delivered %d"
               s.sent_bytes s.received_bytes)
        else if s.received_digest <> s.sent_digest then
          fail ~subject
            (Printf.sprintf
               "stream digest mismatch over %d bytes: corrupted or misordered data \
                reached the application"
               s.sent_bytes)
      end)
    obs.streams;
  (match obs.corruption with
  | Some c when c.caught < c.injected ->
    fail ~subject:(obs.run ^ "/corruption")
      (Printf.sprintf
         "silent corruption: %d bit flips injected but only %d checksum rejections \
          observed — %d damaged frame(s) passed verification"
         c.injected c.caught (c.injected - c.caught))
  | Some _ | None -> ());
  (match obs.udp with
  | Some u ->
    let offered = u.injected + u.duplicated in
    let accounted =
      u.delivered + u.dropped_link + u.dropped_proto + u.dropped_pressure
    in
    if offered <> accounted then
      fail ~subject:(obs.run ^ "/udp")
        (Printf.sprintf
           "datagram accounting does not balance: %d offered (%d + %d dup) but %d \
            accounted (%d delivered + %d link drops + %d proto drops + %d pressure \
            drops)"
           offered u.injected u.duplicated accounted u.delivered u.dropped_link
           u.dropped_proto u.dropped_pressure)
  | None -> ());
  Finding.sort !findings

(* {2 Overload oracle} *)

type overload_flow = {
  flow : string;
  accepted : bool;
  completed : bool;
  sent_bytes : int;
  received_bytes : int;
  received_digest : int;
  expected_digest : int;
}

type overload_drops = {
  link : int;
  pool_pressure : int;
  syn_backlog : int;
  sockbuf_full : int;
  checksum : int;
}

type overload = {
  scenario : string;
  flows : overload_flow list;
  drops : overload_drops;
}

let total_drops d =
  d.link + d.pool_pressure + d.syn_backlog + d.sockbuf_full + d.checksum

let check_overload o =
  let findings = ref [] in
  let fail ~subject msg =
    findings := Finding.v ~checker:"overload" ~subject msg :: !findings
  in
  let incomplete = ref 0 and shortfall = ref 0 in
  List.iter
    (fun f ->
      let subject = o.scenario ^ "/" ^ f.flow in
      (* Byte exactness holds for every flow, complete or not: whatever
         prefix of the stream arrived must be exactly the sender's
         prefix.  The harness computes [expected_digest] over the first
         [received_bytes] bytes of the flow's golden pattern. *)
      if f.received_bytes > f.sent_bytes then
        fail ~subject
          (Printf.sprintf "delivered %d bytes but only %d were ever sent"
             f.received_bytes f.sent_bytes)
      else if f.received_digest <> f.expected_digest then
        fail ~subject
          (Printf.sprintf
             "prefix digest mismatch over %d delivered bytes: corrupted or \
              misordered data reached the application"
             f.received_bytes);
      if f.completed then begin
        if not f.accepted then
          fail ~subject "flow marked completed but never reached ESTABLISHED";
        if f.received_bytes <> f.sent_bytes then
          fail ~subject
            (Printf.sprintf
               "flow marked completed but delivered %d of %d bytes"
               f.received_bytes f.sent_bytes)
      end
      else begin
        incr incomplete;
        shortfall := !shortfall + (f.sent_bytes - f.received_bytes)
      end)
    o.flows;
  (* Zero silent loss: a flow may legally end incomplete under overload,
     but only if the run accounts for the pressure that stopped it — some
     named drop cause must have fired.  Missing bytes with every drop
     counter at zero means the stack lost data without admitting it. *)
  if !incomplete > 0 && total_drops o.drops = 0 then
    fail ~subject:(o.scenario ^ "/accounting")
      (Printf.sprintf
         "silent loss: %d flow(s) incomplete (%d bytes missing) but every named \
          drop cause (link, pool_pressure, syn_backlog, sockbuf_full, checksum) \
          is zero"
         !incomplete !shortfall);
  Finding.sort !findings
