(** Trace replay with reconstructed per-thread lock context.

    The trace-driven checkers all need the same derived fact: which
    locks each simulated thread held at a given event.  [replay] walks a
    recorded trace in emission order, maintains that state from the
    [Lock_grant]/[Lock_release] stream, and hands every record to the
    callback together with the context.

    The context passed to the callback reflects the state {e before} the
    current record is applied: on a [Lock_grant] the granted lock is not
    yet in the thread's held list (which is exactly the held-before set
    the lock-order checker wants), and on a [Lock_release] it still is. *)

type ctx

val held : ctx -> tid:int -> string list
(** Locks currently held by the thread, oldest acquisition first. *)

val grant_record : ctx -> tid:int -> lock:string -> Pnp_engine.Trace.record option
(** The [Lock_grant] record under which the thread still holds [lock]. *)

val current_seq : ctx -> tid:int -> int option
(** The packet sequence number the thread is currently carrying: the seq
    of its most recent [Span_begin Enqueue]. *)

val replay : Pnp_engine.Trace.t -> (ctx -> Pnp_engine.Trace.record -> unit) -> unit
(** Replay every record in emission order through the callback. *)
