open Pnp_engine

(* ASan-for-Mpool: replay the node lifecycle events the pool emits
   (Mnode_alloc / Mnode_ref / Mnode_unref / Mnode_recycle / Mnode_write)
   and flag every touch of a node that is dead or whose arena buffer has
   been recycled.

   The state machine per node id:

     Live refs --unref to 0--> Freed --recycle--> Recycled
       ^  |                      |                   |
       |  alloc (cache re-arm)   +---alloc-----------+
       +--+                          (fresh id / cache hit)

   A node parked in a simulated per-thread cache is Freed but not
   Recycled: its buffer is retained, so a later cache-hit alloc re-arms
   the same id.  Recycling happens only for arena-drawn nodes freed past
   the cache, and after it the bytes belong to someone else — a write
   there is the memory-corruption class the arena introduced.

   Traces start mid-run, so ids can appear first as a ref/unref/write of
   a node allocated before the window: unknown ids are adopted at face
   value, never reported.  Leak reporting (nodes still live when the
   trace ends) is opt-in for the same reason — a measurement window
   legitimately ends with traffic in flight; only drain-to-completion
   fixtures can demand emptiness. *)

type status = Live of int | Freed | Recycled

type node_state = {
  mutable status : status;
  mutable last : Trace.record option; (* most recent lifecycle event *)
  mutable reported : bool;
}

let status_label = function
  | Live n -> Printf.sprintf "live (refs %d)" n
  | Freed -> "freed"
  | Recycled -> "recycled"

let run ?(leaks = false) tracer =
  let nodes : (int, node_state) Hashtbl.t = Hashtbl.create 64 in
  let findings = ref [] in
  let get id =
    match Hashtbl.find_opt nodes id with
    | Some s -> Some s
    | None -> None
  in
  let adopt id status r =
    Hashtbl.replace nodes id { status; last = Some r; reported = false }
  in
  let report s id r what =
    if not s.reported then begin
      s.reported <- true;
      let witnesses = match s.last with Some prev -> [ prev; r ] | None -> [ r ] in
      findings :=
        Finding.v ~checker:"lifetime"
          ~subject:(Printf.sprintf "mnode %d" id)
          ~witnesses
          (Printf.sprintf "%s: node was %s" what (status_label s.status))
        :: !findings
    end
  in
  Trace.iter tracer (fun r ->
      match r.Trace.ev with
      | Trace.Mnode_alloc { node = id } -> (
        match get id with
        | None -> adopt id (Live 1) r
        | Some s ->
          (match s.status with
          | Freed | Recycled -> () (* cache re-arm / recycled buffer reissued *)
          | Live _ -> report s id r "allocated while still live");
          s.status <- Live 1;
          s.last <- Some r)
      | Trace.Mnode_ref { node = id; refs } -> (
        match get id with
        | None -> adopt id (Live refs) r
        | Some s ->
          (match s.status with
          | Freed | Recycled -> report s id r "reference taken on a dead node (use-after-free)"
          | Live _ -> ());
          s.status <- Live refs;
          s.last <- Some r)
      | Trace.Mnode_unref { node = id; refs } -> (
        let next = if refs = 0 then Freed else Live refs in
        match get id with
        | None -> adopt id next r
        | Some s ->
          (match s.status with
          | Freed | Recycled -> report s id r "reference dropped on a dead node (double-free)"
          | Live _ -> ());
          s.status <- next;
          s.last <- Some r)
      | Trace.Mnode_recycle { node = id } -> (
        match get id with
        | None -> adopt id Recycled r
        | Some s ->
          (match s.status with
          | Freed -> ()
          | Recycled -> report s id r "buffer recycled twice (double-free)"
          | Live _ -> report s id r "buffer recycled under a live node");
          s.status <- Recycled;
          s.last <- Some r)
      | Trace.Mnode_write { node = id } -> (
        match get id with
        | None -> () (* pre-window allocation; liveness unknowable *)
        | Some s -> (
          match s.status with
          | Live _ -> s.last <- Some r
          | Freed -> report s id r "bytes written after free (use-after-free)"
          | Recycled -> report s id r "bytes written after arena recycle (write-after-recycle)"))
      | _ -> ());
  if leaks then begin
    let leaked =
      Hashtbl.fold
        (fun id s acc ->
          match s.status with Live _ -> (id, s) :: acc | Freed | Recycled -> acc)
        nodes []
      |> List.sort compare
    in
    match leaked with
    | [] -> ()
    | (id0, s0) :: _ ->
      let ids = List.map fst leaked in
      let shown = List.filteri (fun i _ -> i < 8) ids in
      findings :=
        Finding.v ~checker:"lifetime" ~subject:"leak"
          ~witnesses:(match s0.last with Some r -> [ r ] | None -> [])
          (Printf.sprintf
             "%d node(s) still live at end of trace: %s%s (first leaked id %d)"
             (List.length ids)
             (String.concat ", " (List.map string_of_int shown))
             (if List.length ids > List.length shown then ", ..." else "")
             id0)
        :: !findings
  end;
  Finding.sort (List.rev !findings)

let check ?leaks tracer = run ?leaks tracer
