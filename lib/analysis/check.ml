let all tracer =
  Finding.sort
    (Lockset.check tracer @ Lock_order.check tracer @ Order_check.check tracer)
