let all tracer =
  Finding.dedupe
    (Finding.sort
       (Lockset.check tracer @ Hb.check tracer @ Lifetime.check tracer
       @ Lock_order.check tracer @ Order_check.check tracer))
