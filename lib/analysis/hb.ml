open Pnp_engine

(* FastTrack-style happens-before race detection over trace replay.

   Every simulated thread carries a vector clock; every synchronisation
   object in the trace is a release/acquire channel:

     lock L      release at [Lock_release], acquire at [Lock_grant]
     gate G      release at [Gate_advance], acquire at [Gate_pass]
     fork        parent's clock seeds the child at [Thread_fork]
     join        child's final clock ([Thread_exit]) joins the joiner
                 at [Thread_join]
     membus      [Membus_charge] is both an acquire and a release on a
                 single bus channel: a charge models a coherence
                 round-trip whose reply orders it after every earlier
                 completed transfer
     SCR log S   release at [Scr_append] (the append publishes the entry)
                 and at [Scr_apply_end]; acquire at [Scr_apply].  The
                 chain append -> apply -> next apply is exactly the
                 ordering state-compute replication relies on: entries
                 apply in log order, each apply section after the
                 appends it consumes and after the previous section.

   Two accesses to the same state race when neither happens-before the
   other.  Unlike the Eraser-style lockset checker this sees ordering
   that involves no common lock (fork/join, gate hand-offs), so the two
   disagree in both directions: lockset-only findings are false-positive
   candidates, HB-only findings are real races the lockset abstraction
   missed.

   The tracer is usually enabled mid-run, so locks can be held (and
   nodes live) from before the first record.  That cannot manufacture a
   false HB race: an edge is only *missing* when its release half
   predates the trace, and a missing edge makes the detector report
   *more* concurrency, which the lockset cross-check in `repro check`
   surfaces rather than hides.  In practice every access in the window
   re-synchronises through in-window grants/releases. *)

(* Vector clocks as tid-keyed hash tables: tids are dense but the
   thread population per trace is small (tens), and most clocks are
   sparse, so per-entry hashing beats sizing arrays to max-tid. *)
module Vc = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let get (t : t) tid = Option.value ~default:0 (Hashtbl.find_opt t tid)
  let set (t : t) tid v = Hashtbl.replace t tid v
  let tick t tid = set t tid (get t tid + 1)

  (* a := a join b *)
  let join (a : t) (b : t) =
    Hashtbl.iter (fun tid v -> if v > get a tid then set a tid v) b

  let copy (t : t) : t = Hashtbl.copy t
end

type access = { a_tid : int; a_clk : int; a_rec : Trace.record }

type cell = {
  mutable last_write : access option;
  mutable reads : access list; (* reads since the last write, one per tid *)
  mutable reported : bool;
}

type race = {
  state : string;
  first : Trace.record;
  second : Trace.record;
  write_write : bool;
}

(* An SCR apply section claiming an index the trace never saw appended:
   the replay read ahead of the appended tail, so the "entry" it applied
   did not exist yet — the log-replay analogue of a use-before-publish
   race.  [v_max] is the highest index appended so far (-1 if none). *)
type violation = { v_log : string; v_idx : int; v_max : int; v_rec : Trace.record }

let bus_channel = "\x00bus" (* unspellable as a lock or gate name *)

(* [happened_before a vc] — did access [a] happen before the point whose
   clock is [vc]? *)
let hb (a : access) (vc : Vc.t) = a.a_clk <= Vc.get vc a.a_tid

let run_full ?(bus_sync = true) tracer =
  let clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let channels : (string, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let exited : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let forked : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  (* Per SCR log: highest index seen appended (-1 before any append). *)
  let appended : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let races = ref [] in
  let violations = ref [] in
  let clock tid =
    match Hashtbl.find_opt clocks tid with
    | Some vc -> vc
    | None ->
      let vc =
        (* A thread's first event adopts the fork-time snapshot of its
           parent, if the fork was traced. *)
        match Hashtbl.find_opt forked tid with
        | Some parent_vc -> Vc.copy parent_vc
        | None -> Vc.create ()
      in
      Vc.tick vc tid;
      Hashtbl.replace clocks tid vc;
      vc
  in
  let channel name =
    match Hashtbl.find_opt channels name with
    | Some vc -> vc
    | None ->
      let vc = Vc.create () in
      Hashtbl.replace channels name vc;
      vc
  in
  (* Release: publish the thread's clock into the channel, then tick so
     the thread's later events are not ordered behind this release. *)
  let release tid name =
    let vc = clock tid in
    Vc.join (channel name) vc;
    Vc.tick vc tid
  in
  let acquire tid name = Vc.join (clock tid) (channel name) in
  Trace.iter tracer (fun r ->
      let tid = r.Trace.tid in
      match r.Trace.ev with
      | Trace.Thread_fork { child } ->
        let vc = clock tid in
        Hashtbl.replace forked child (Vc.copy vc);
        Vc.tick vc tid
      | Trace.Thread_exit -> Hashtbl.replace exited tid (Vc.copy (clock tid))
      | Trace.Thread_join { child } -> (
        match Hashtbl.find_opt exited child with
        | Some final -> Vc.join (clock tid) final
        | None -> ())
      | Trace.Lock_grant { lock; _ } -> acquire tid ("L:" ^ lock)
      | Trace.Lock_release { lock; _ } -> release tid ("L:" ^ lock)
      | Trace.Scr_append { log; idx } ->
        let prev = Option.value ~default:(-1) (Hashtbl.find_opt appended log) in
        if idx > prev then Hashtbl.replace appended log idx;
        release tid ("S:" ^ log)
      | Trace.Scr_apply { log; idx } ->
        (* idx = -1 marks an output/timer section, which consumes no log
           entry and cannot read ahead of the tail. *)
        let max_app = Option.value ~default:(-1) (Hashtbl.find_opt appended log) in
        if idx >= 0 && idx > max_app then
          violations := { v_log = log; v_idx = idx; v_max = max_app; v_rec = r } :: !violations;
        acquire tid ("S:" ^ log)
      | Trace.Scr_apply_end { log; _ } -> release tid ("S:" ^ log)
      | Trace.Gate_advance { gate; _ } -> release tid ("G:" ^ gate)
      | Trace.Gate_pass { gate; _ } -> acquire tid ("G:" ^ gate)
      | Trace.Membus_charge _ when bus_sync ->
        acquire tid bus_channel;
        release tid bus_channel
      | Trace.Access { state; write } ->
        let vc = clock tid in
        let c =
          match Hashtbl.find_opt cells state with
          | Some c -> c
          | None ->
            let c = { last_write = None; reads = []; reported = false } in
            Hashtbl.replace cells state c;
            c
        in
        let report prev ~write_write =
          if not c.reported then begin
            c.reported <- true;
            races :=
              { state; first = prev.a_rec; second = r; write_write } :: !races
          end
        in
        (match c.last_write with
        | Some w when w.a_tid <> tid && not (hb w vc) ->
          report w ~write_write:write
        | _ -> ());
        if write then begin
          List.iter
            (fun rd -> if rd.a_tid <> tid && not (hb rd vc) then report rd ~write_write:false)
            c.reads;
          c.last_write <- Some { a_tid = tid; a_clk = Vc.get vc tid; a_rec = r };
          c.reads <- []
        end
        else begin
          let entry = { a_tid = tid; a_clk = Vc.get vc tid; a_rec = r } in
          c.reads <- entry :: List.filter (fun rd -> rd.a_tid <> tid) c.reads
        end
      | _ -> ());
  (List.rev !races, List.rev !violations)

let run ?bus_sync tracer = fst (run_full ?bus_sync tracer)
let races ?bus_sync tracer = List.map (fun r -> r.state) (run ?bus_sync tracer)

let check ?bus_sync tracer =
  let races, violations = run_full ?bus_sync tracer in
  List.map
    (fun r ->
      Finding.v ~checker:"hb-race" ~subject:r.state
        ~witnesses:[ r.first; r.second ]
        (Printf.sprintf
           "unordered %s by tid %d and tid %d: no happens-before path \
            (fork/join, gate, lock release→acquire or bus reply) connects the \
            two accesses"
           (if r.write_write then "writes" else "read/write pair")
           r.first.Trace.tid r.second.Trace.tid))
    races
  @ List.map
      (fun v ->
        Finding.v ~checker:"hb-race" ~subject:v.v_log ~witnesses:[ v.v_rec ]
          (Printf.sprintf
             "SCR replay read ahead of the appended tail: tid %d applied log \
              entry %d but only entries up to %d had been appended — the \
              append that publishes an entry must happen before the apply \
              that consumes it"
             v.v_rec.Trace.tid v.v_idx v.v_max))
      violations
  |> Finding.sort
