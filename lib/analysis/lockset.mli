(** Eraser-style lockset checker (Savage et al., SOSP 1997).

    For every shared-state identifier annotated with [Trace.Access]
    events, track the candidate set of locks that consistently protected
    it.  The per-identifier state machine avoids false positives on
    single-thread initialisation:

    - [Virgin]: never accessed.
    - [Exclusive tid]: only one thread has touched it (initialisation);
      emptiness is never reported here, but the locks the owner
      consistently holds are remembered and seed the candidate set at
      the transition to shared, so two threads using disjoint locks are
      caught on the second thread's first access.
    - [Shared ls]: read by multiple threads; the candidate set [ls] is
      intersected on every access but emptiness is not reported
      (read-shared data may be safely unprotected once stable).
    - [Shared_modified ls]: written after becoming shared; an empty
      candidate set now means a genuine data race and is reported.

    One finding is produced per identifier (the first time its candidate
    set goes empty), witnessed by the previous access and the access
    that emptied the set.

    Traces usually start mid-run (the measurement window), so a thread
    may hold locks whose grants predate the first record; those holds
    are revealed by releases with no recorded grant, and accesses by
    such a thread up to its last unmatched release are ignored rather
    than misclassified. *)

type class_ =
  | Virgin
  | Exclusive of int
  | Shared of string list
  | Shared_modified of string list

type state = {
  id : string;
  class_ : class_;
  accesses : int;  (** annotated accesses seen *)
}

val run : Pnp_engine.Trace.t -> state list * Finding.t list
(** Final per-identifier states (sorted by id) and the findings. *)

val check : Pnp_engine.Trace.t -> Finding.t list
