open Pnp_engine

type lock_stat = {
  lock : string;
  discipline : string option;
  grants : int;
  reordered : int;
  max_window : int;
}

type acc = {
  mutable grants : int;
  mutable reordered : int;
  mutable max_window : int;
  mutable max_seq : int; (* highest packet seq granted so far *)
  mutable any_seq : bool;
}

let stats tracer =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  Replay.replay tracer (fun ctx r ->
      match r.Trace.ev with
      | Trace.Lock_grant { lock; _ } -> (
        match Replay.current_seq ctx ~tid:r.Trace.tid with
        | None -> ()
        | Some seq ->
          let a =
            match Hashtbl.find_opt tbl lock with
            | Some a -> a
            | None ->
              let a =
                { grants = 0; reordered = 0; max_window = 0; max_seq = 0; any_seq = false }
              in
              Hashtbl.replace tbl lock a;
              a
          in
          a.grants <- a.grants + 1;
          if a.any_seq && seq < a.max_seq then begin
            a.reordered <- a.reordered + 1;
            a.max_window <- max a.max_window (a.max_seq - seq)
          end;
          if (not a.any_seq) || seq > a.max_seq then begin
            a.max_seq <- seq;
            a.any_seq <- true
          end)
      | _ -> ());
  Hashtbl.fold
    (fun lock a rows ->
      {
        lock;
        discipline = Trace.lock_discipline tracer lock;
        grants = a.grants;
        reordered = a.reordered;
        max_window = a.max_window;
      }
      :: rows)
    tbl []
  |> List.sort (fun (x : lock_stat) y ->
         match compare y.reordered x.reordered with
         | 0 -> compare x.lock y.lock
         | c -> c)

let reordered_total rows =
  List.fold_left
    (fun (r, g) (s : lock_stat) -> (r + s.reordered, g + s.grants))
    (0, 0) rows

(* FIFO grant-order assertion: replay each lock's request queue and
   require grants to pop the head. *)
let check tracer =
  let pending : (string, (int * Trace.record) list) Hashtbl.t = Hashtbl.create 32 in
  let findings = ref [] in
  let flagged : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  Replay.replay tracer (fun _ctx r ->
      match r.Trace.ev with
      | Trace.Lock_request { lock; _ } ->
        let q = Option.value ~default:[] (Hashtbl.find_opt pending lock) in
        Hashtbl.replace pending lock (q @ [ (r.Trace.tid, r) ])
      | Trace.Lock_grant { lock; _ } -> (
        let q = Option.value ~default:[] (Hashtbl.find_opt pending lock) in
        (* A grant whose request predates trace start is not in the queue;
           ignore it rather than mistake it for an overtake. *)
        if List.exists (fun (tid, _) -> tid = r.Trace.tid) q then
          match q with
          | (head_tid, head_req) :: rest when head_tid <> r.Trace.tid ->
            (* Overtake.  Only a violation for FIFO locks. *)
            (if Trace.lock_discipline tracer lock = Some "fifo"
                && not (Hashtbl.mem flagged lock) then begin
               Hashtbl.add flagged lock ();
               findings :=
                 Finding.v ~checker:"fifo-order" ~subject:lock
                   ~witnesses:[ head_req; r ]
                   (Printf.sprintf
                      "FIFO lock granted out of arrival order: tid %d overtook the \
                       pending request of tid %d"
                      r.Trace.tid head_tid)
                 :: !findings
             end);
            ignore rest;
            Hashtbl.replace pending lock
              (List.filter (fun (tid, _) -> tid <> r.Trace.tid) q)
          | _ :: rest -> Hashtbl.replace pending lock rest
          | [] -> ())
      | _ -> ());
  Finding.sort !findings
