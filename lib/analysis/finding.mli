(** A reported violation from one of the concurrency checkers or the
    source lint.

    Findings are the common currency of the analysis subsystem: every
    checker returns a list of them, `repro check` and `bin/lint` print
    them and exit non-zero when any exist, and the seeded-defect tests
    assert on their contents. *)

type severity = Error | Warning

type t = {
  checker : string;  (** which analysis produced it: "lockset", "lock-order", ... *)
  severity : severity;
  subject : string;  (** the state id, lock name or [file:line] concerned *)
  message : string;
  witnesses : Pnp_engine.Trace.record list;
      (** the trace events that prove the violation, in time order *)
}

val v :
  ?severity:severity ->
  ?witnesses:Pnp_engine.Trace.record list ->
  checker:string ->
  subject:string ->
  string ->
  t

val ev_label : Pnp_engine.Trace.ev -> string
(** One-line description of an event, used when printing witnesses. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering: headline plus one indented line per witness. *)

val to_string : t -> string

val sort : t list -> t list
(** Errors before warnings, then by checker and subject. *)
