(** A reported violation from one of the concurrency checkers or the
    source lint.

    Findings are the common currency of the analysis subsystem: every
    checker returns a list of them, `repro check` and `bin/lint` print
    them and exit non-zero when any exist, and the seeded-defect tests
    assert on their contents. *)

type severity = Error | Warning

type t = {
  checker : string;  (** which analysis produced it: "lockset", "lock-order", ... *)
  severity : severity;
  subject : string;  (** the state id, lock name or [file:line] concerned *)
  message : string;
  witnesses : Pnp_engine.Trace.record list;
      (** the trace events that prove the violation, in time order *)
}

val v :
  ?severity:severity ->
  ?witnesses:Pnp_engine.Trace.record list ->
  checker:string ->
  subject:string ->
  string ->
  t

val ev_label : Pnp_engine.Trace.ev -> string
(** One-line description of an event, used when printing witnesses. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering: headline plus one indented line per witness. *)

val to_string : t -> string

val sort : t list -> t list
(** Errors before warnings, then by checker and subject. *)

val dedupe : t list -> t list
(** Collapse findings with identical (checker, subject, message) to the
    first occurrence, preserving order.  Witnesses are not part of the
    key: the same defect observed at several points in the trace is one
    finding. *)

(** {2 Exit-code families}

    Each checker family owns a stable exit-code bit so CI can
    distinguish failure kinds without parsing output: races (lockset and
    happens-before) = 1, arena lifetime = 2, everything else (lock
    order, grant order) = 4. *)

type family = Race | Lifetime | Order

val family : t -> family
val family_bit : family -> int

val exit_code : t list -> int
(** OR of the family bits present in the list; 0 when empty. *)
