type finding = { file : string; line : int; rule : string; message : string }

let pp_finding fmt f =
  if f.line > 0 then
    Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line f.rule f.message
  else Format.fprintf fmt "%s: [%s] %s" f.file f.rule f.message

(* ------------------------------------------------------------------ *)
(* Lexical scrubbing: blank comments, strings and char literals so the
   line-based rules below only ever see real code.  All the scanning
   functions are tail-recursive over the character index. *)

let scrub src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let is_lower c = (c >= 'a' && c <= 'z') || c = '_' in
  let rec code i =
    if i >= n then ()
    else
      match src.[i] with
      | '(' when i + 1 < n && src.[i + 1] = '*' ->
        blank i;
        blank (i + 1);
        comment 1 (i + 2)
      | '"' ->
        blank i;
        string_lit (i + 1)
      | '{' ->
        (* {| ... |} and {id| ... |id} quoted strings *)
        let j = ref (i + 1) in
        while !j < n && is_lower src.[!j] do
          incr j
        done;
        if !j < n && src.[!j] = '|' then begin
          let id = String.sub src (i + 1) (!j - i - 1) in
          for k = i to !j do
            blank k
          done;
          quoted id (!j + 1)
        end
        else code (i + 1)
      | '\'' when i = 0 || not (is_ident src.[i - 1]) ->
        (* Char literal, or a type variable such as 'a.  A literal is a
           single non-backslash char or a backslash escape of at most
           five characters, closed by a quote. *)
        if i + 2 < n && src.[i + 1] <> '\\' && src.[i + 1] <> '\''
           && src.[i + 2] = '\''
        then begin
          blank i;
          blank (i + 1);
          blank (i + 2);
          code (i + 3)
        end
        else if i + 1 < n && src.[i + 1] = '\\' then begin
          let close = ref 0 in
          (let j = ref (i + 2) in
           while !close = 0 && !j < n && !j <= i + 6 do
             if src.[!j] = '\'' then close := !j;
             incr j
           done);
          if !close > 0 then begin
            for k = i to !close do
              blank k
            done;
            code (!close + 1)
          end
          else code (i + 1)
        end
        else code (i + 1)
      | _ -> code (i + 1)
  and string_lit i =
    if i >= n then ()
    else if src.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      string_lit (i + 2)
    end
    else if src.[i] = '"' then begin
      blank i;
      code (i + 1)
    end
    else begin
      blank i;
      string_lit (i + 1)
    end
  and quoted id i =
    if i >= n then ()
    else
      let idn = String.length id in
      if
        src.[i] = '|'
        && i + idn + 1 < n
        && String.sub src (i + 1) idn = id
        && src.[i + idn + 1] = '}'
      then begin
        for k = i to i + idn + 1 do
          blank k
        done;
        code (i + idn + 2)
      end
      else begin
        blank i;
        quoted id (i + 1)
      end
  and comment depth i =
    if i >= n then ()
    else if src.[i] = '(' && i + 1 < n && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (depth + 1) (i + 2)
    end
    else if src.[i] = '*' && i + 1 < n && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
    end
    else if src.[i] = '"' then begin
      (* Strings are lexed inside comments: a close-comment sequence
         inside such a string does not close the comment. *)
      blank i;
      comment_string depth (i + 1)
    end
    else begin
      blank i;
      comment depth (i + 1)
    end
  and comment_string depth i =
    if i >= n then ()
    else if src.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      comment_string depth (i + 2)
    end
    else if src.[i] = '"' then begin
      blank i;
      comment depth (i + 1)
    end
    else begin
      blank i;
      comment_string depth (i + 1)
    end
  in
  code 0;
  Bytes.to_string out

(* ------------------------------------------------------------------ *)
(* Token matching with identifier boundaries, so e.g. "sprintf" never
   matches a search for "printf". *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let count_token line tok =
  let nl = String.length line and nt = String.length tok in
  let hits = ref 0 in
  let i = ref 0 in
  while !i + nt <= nl do
    if
      String.sub line !i nt = tok
      && (!i = 0 || not (is_ident_char line.[!i - 1]))
      && (!i + nt = nl || not (is_ident_char line.[!i + nt]))
    then begin
      incr hits;
      i := !i + nt
    end
    else incr i
  done;
  !hits

let has_token line tok = count_token line tok > 0

(* ------------------------------------------------------------------ *)
(* Rules *)

let print_tokens =
  [
    "Printf.printf"; "Printf.eprintf"; "Printf.fprintf"; "Format.printf";
    "Format.eprintf"; "Format.fprintf"; "Format.print_string"; "print_string";
    "print_endline"; "print_newline"; "print_int"; "print_float"; "print_char";
    "prerr_string"; "prerr_endline"; "prerr_newline";
  ]

let wallclock_tokens =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Random.self_init" ]

let allow_marker = "lint:allow"

let path_parts file = String.split_on_char '/' file

let is_fig_file file =
  let base = Filename.basename file in
  String.length base > 4
  && String.sub base 0 4 = "fig_"
  && Filename.check_suffix base ".ml"

let in_tests file = List.mem "test" (path_parts file)

(* Name of the top-level binding a fig line belongs to: lines starting
   with "let " in column 0 open a new one. *)
let toplevel_binding line current =
  if String.length line > 4 && String.sub line 0 4 = "let " then begin
    let rest = String.sub line 4 (String.length line - 4) in
    let rest =
      if String.length rest > 4 && String.sub rest 0 4 = "rec " then
        String.sub rest 4 (String.length rest - 4)
      else rest
    in
    let j = ref 0 in
    while
      !j < String.length rest
      && (let c = rest.[!j] in
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9') || c = '_' || c = '\'')
    do
      incr j
    done;
    if !j > 0 then String.sub rest 0 !j else current
  end
  else current

let ends_with s suffix =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let starts_with s prefix =
  let ls = String.length s and lx = String.length prefix in
  ls >= lx && String.sub s 0 lx = prefix

let contains_sub s sub =
  let ls = String.length s and lx = String.length sub in
  let rec scan j = j + lx <= ls && (String.sub s j lx = sub || scan (j + 1)) in
  scan 0

(* All maximal identifier runs on a (scrubbed) line, dotted paths
   included — the raw material for the token-set rules below. *)
let line_tokens line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_char line.[!i] then begin
      let s = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      toks := String.sub line s (!i - s) :: !toks
    end
    else incr i
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* State-access matrix (lib/proto)

   Each `access sess ~write:<b> "<class>"` annotation names a shared
   protocol state class (snd/rcv/sb/reass); the matrix records, per
   top-level binding, which classes it reads and writes and which
   lock-context tokens appear in the same binding.  A binding that
   writes shared state with no lock token and no [lint:allow] fails the
   lint: either it is a real hole or the protection is held by a caller,
   and the latter must be said out loud in an allow comment. *)

type matrix_row = {
  m_file : string;
  m_binding : string;
  m_line : int; (* first line of the binding, 1-based *)
  m_reads : string list;
  m_writes : string list;
  m_locks : string list;
  m_allowed : bool;
}

(* A token that brings a lock context into scope: direct acquires
   ([Lock.acquire], [Counting.acquire], the drivers' [*_acquire]
   helpers), scoped holds ([Lock.with_lock], [with_*] helpers such as
   [with_rexmt_lock]/[with_send_state]).  The [with_] prefix is a
   naming convention this rule enforces backwards: lock-context helpers
   must be named so the lexical pass can see them.

   Deferred-charge sections count too: [Sim.defer_begin] (and the SCR
   wrappers [scr_section_begin]/[scr_apply_entry] built on it) opens a
   host-atomic section in which writes are replica-local — no other
   thread can observe the state mid-section, which is exactly the
   guarantee a lock provides to this rule. *)
let is_lock_token tok =
  ends_with tok ".acquire" || ends_with tok "_acquire" || tok = "with_lock"
  || ends_with tok ".with_lock"
  || starts_with tok "with_"
  || ends_with tok "defer_begin"
  || ends_with tok "_section_begin"

(* The annotation's write flag and state-class literal.  The flag
   survives scrubbing ([~write:true] is code); the class string does
   not, so it is pulled from the raw line. *)
let access_on_line ~raw ~scrubbed =
  if not (has_token scrubbed "access") then None
  else
    let write =
      if contains_sub scrubbed "~write:true" then Some true
      else if contains_sub scrubbed "~write:false" then Some false
      else None
    in
    match write with
    | None -> None
    | Some w -> (
      let n = String.length raw in
      let rec quote i = if i >= n then None else if raw.[i] = '"' then Some i else quote (i + 1) in
      match quote 0 with
      | None -> None
      | Some s -> (
        match quote (s + 1) with
        | None -> None
        | Some e -> Some (w, String.sub raw (s + 1) (e - s - 1))))

let has_allow_marker raw = contains_sub raw allow_marker

let state_matrix_source ~file src =
  if not (List.mem "proto" (path_parts file)) || in_tests file then []
  else begin
    let scrubbed = scrub src in
    let raw_lines = Array.of_list (String.split_on_char '\n' src) in
    let lines = Array.of_list (String.split_on_char '\n' scrubbed) in
    let rows = ref [] in
    let binding = ref "" and bstart = ref 0 in
    let reads = ref [] and writes = ref [] in
    let locks = ref [] and allowed = ref false in
    let flush () =
      if !binding <> "" && (!reads <> [] || !writes <> []) then
        rows :=
          {
            m_file = file;
            m_binding = !binding;
            m_line = !bstart;
            m_reads = List.sort_uniq compare !reads;
            m_writes = List.sort_uniq compare !writes;
            m_locks = List.sort_uniq compare !locks;
            m_allowed = !allowed;
          }
          :: !rows
    in
    Array.iteri
      (fun i line ->
        if String.length line > 4 && String.sub line 0 4 = "let " then begin
          flush ();
          binding := toplevel_binding line "";
          bstart := i + 1;
          reads := [];
          writes := [];
          locks := [];
          allowed := false
        end;
        if !binding <> "" then begin
          if has_allow_marker raw_lines.(i) then allowed := true;
          List.iter
            (fun tok -> if is_lock_token tok then locks := tok :: !locks)
            (line_tokens line);
          match access_on_line ~raw:raw_lines.(i) ~scrubbed:line with
          | Some (true, cls) -> writes := cls :: !writes
          | Some (false, cls) -> reads := cls :: !reads
          | None -> ()
        end)
      lines;
    flush ();
    List.rev !rows
  end

let matrix_violations rows =
  List.filter_map
    (fun r ->
      if r.m_writes <> [] && r.m_locks = [] && not r.m_allowed then
        Some
          {
            file = r.m_file;
            line = r.m_line;
            rule = "state-matrix";
            message =
              Printf.sprintf
                "%S writes shared state class(es) %s with no lock token in \
                 the binding and no %s; hold a lock, use a with_* helper, or \
                 document the caller's protection in an allow comment"
                r.m_binding
                (String.concat ", " r.m_writes)
                allow_marker;
          }
      else None)
    rows

let state_matrix ~roots =
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then begin
            if entry <> "_build" && entry.[0] <> '.' then walk path
          end
          else if Filename.check_suffix entry ".ml" then files := path :: !files)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter (fun r -> if Sys.file_exists r && Sys.is_directory r then walk r) roots;
  List.concat_map
    (fun path ->
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      state_matrix_source ~file:path src)
    (List.sort compare (List.rev !files))

let matrix_to_string rows =
  let b = Buffer.create 1024 in
  let cls_str = function [] -> "-" | l -> String.concat "," l in
  let w0 = ref 24 and w1 = ref 12 and w2 = ref 12 in
  List.iter
    (fun r ->
      w0 := max !w0 (String.length r.m_binding);
      w1 := max !w1 (String.length (cls_str r.m_reads));
      w2 := max !w2 (String.length (cls_str r.m_writes)))
    rows;
  Buffer.add_string b
    (Printf.sprintf "%-*s  %-*s  %-*s  %s\n" !w0 "binding" !w1 "reads" !w2 "writes"
       "locks");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %-*s  %-*s  %s%s\n" !w0 r.m_binding !w1
           (cls_str r.m_reads) !w2 (cls_str r.m_writes)
           (cls_str r.m_locks)
           (if r.m_allowed && r.m_locks = [] && r.m_writes <> [] then
              "  (caller-locked: " ^ allow_marker ^ ")"
            else "")))
    rows;
  Buffer.contents b

let matrix_json rows =
  let b = Buffer.create 1024 in
  let strs l = "[" ^ String.concat "," (List.map (Printf.sprintf "%S") l) ^ "]" in
  Buffer.add_string b "{\"state_access_matrix\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"file\":%S,\"line\":%d,\"binding\":%S,\"reads\":%s,\"writes\":%s,\"locks\":%s,\"allowed\":%b}"
           r.m_file r.m_line r.m_binding (strs r.m_reads) (strs r.m_writes)
           (strs r.m_locks) r.m_allowed))
    rows;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Msg-mutator generation rule

   The checksum-sum memo is keyed by the node's write generation
   ([Mpool.bump_gen]); a byte mutation that forgets the bump serves a
   stale checksum silently.  Scope: non-test files that handle raw node
   bytes (they mention [Mpool.data] or [Msg.head_view]); in those, any
   top-level binding that mutates a [Bytes.t] must also call [bump_gen]
   (or carry [lint:allow] explaining why the buffer is not node
   memory). *)

let is_bytes_mutation tok =
  starts_with tok "Bytes.set"
  || starts_with tok "Bytes.blit"
  || tok = "Bytes.fill"
  || starts_with tok "Bytes.unsafe_set"
  || starts_with tok "Bytes.unsafe_blit"
  || starts_with tok "Bytes.unsafe_fill"

let bump_gen_findings ~file src =
  let scrubbed = scrub src in
  let raw_lines = Array.of_list (String.split_on_char '\n' src) in
  let lines = Array.of_list (String.split_on_char '\n' scrubbed) in
  let handles_node_bytes =
    Array.exists
      (fun l -> has_token l "Mpool.data" || has_token l "Msg.head_view")
      lines
  in
  if in_tests file || not handles_node_bytes then []
  else begin
    let findings = ref [] in
    let binding = ref "" in
    let first_mut = ref 0 and bumped = ref false and allowed = ref false in
    let flush () =
      if !binding <> "" && !first_mut > 0 && (not !bumped) && not !allowed then
        findings :=
          {
            file;
            line = !first_mut;
            rule = "msg-bump-gen";
            message =
              Printf.sprintf
                "%S mutates buffer bytes without calling bump_gen; a missed \
                 write-generation bump serves a stale cached checksum (add \
                 Mpool.bump_gen, or %s if the buffer is not node memory)"
                !binding allow_marker;
          }
          :: !findings
    in
    Array.iteri
      (fun i line ->
        if String.length line > 4 && String.sub line 0 4 = "let " then begin
          flush ();
          binding := toplevel_binding line !binding;
          first_mut := 0;
          bumped := false;
          allowed := false
        end;
        if has_allow_marker raw_lines.(i) then allowed := true;
        if List.exists (fun tok -> ends_with tok "bump_gen") (line_tokens line) then
          bumped := true;
        if !first_mut = 0 && List.exists is_bytes_mutation (line_tokens line) then
          first_mut := i + 1)
      lines;
    flush ();
    List.rev !findings
  end

let check_source ~file src =
  let scrubbed = scrub src in
  let raw_lines = Array.of_list (String.split_on_char '\n' src) in
  let lines = Array.of_list (String.split_on_char '\n' scrubbed) in
  let findings = ref [] in
  let report line rule message = findings := { file; line; rule; message } :: !findings in
  let allowed i =
    (* The marker lives in a comment, so look at the raw line. *)
    let raw = raw_lines.(i) in
    let nl = String.length raw and nm = String.length allow_marker in
    let rec scan j =
      j + nm <= nl && (String.sub raw j nm = allow_marker || scan (j + 1))
    in
    scan 0
  in
  let fig = is_fig_file file in
  let binding = ref "" in
  let acquires = ref 0 and releases = ref 0 in
  Array.iteri
    (fun i line ->
      if not (allowed i) then begin
        let lineno = i + 1 in
        binding := toplevel_binding line !binding;
        (* Figure data phases must stay pure and deterministic. *)
        if fig && not (ends_with !binding "_present") then begin
          List.iter
            (fun tok ->
              if has_token line tok then
                report lineno "no-print"
                  (Printf.sprintf
                     "%s in figure data phase (binding %S); only *_present \
                      bindings may write to the console"
                     tok !binding))
            print_tokens;
          List.iter
            (fun tok ->
              if has_token line tok then
                report lineno "no-wallclock"
                  (Printf.sprintf
                     "%s in figure data phase (binding %S); figure data must \
                      be deterministic in sim time"
                     tok !binding))
            wallclock_tokens
        end;
        if
          fig
          && String.length line > 4
          && String.sub line 0 4 = "let "
          && (has_token line "ref" && has_token line "=")
        then
          report lineno "no-global-mutable"
            "top-level mutable state in a figure module; keep figure data \
             functional";
        (* Lock pairing (production code only: tests exercise the
           unpaired paths on purpose). *)
        if not (in_tests file) then begin
          acquires :=
            !acquires + count_token line "Lock.acquire"
            + count_token line "Lock.Counting.acquire"
            + count_token line "Counting.acquire";
          releases :=
            !releases + count_token line "Lock.release"
            + count_token line "Lock.Counting.release"
            + count_token line "Counting.release"
        end;
        (* Every Trace.emit must sit under a Trace.enabled guard so the
           disabled path stays free. *)
        if has_token line "Trace.emit" && Filename.basename file <> "trace.ml"
        then begin
          let guarded = ref false in
          for j = max 0 (i - 6) to i do
            if has_token lines.(j) "Trace.enabled" then guarded := true
          done;
          if not !guarded then
            report lineno "trace-guard"
              "Trace.emit without a Trace.enabled test in the preceding \
               lines; unguarded emission costs sim time even when tracing \
               is off"
        end
      end)
    lines;
  if !acquires > !releases then
    report 0 "lock-pairing"
      (Printf.sprintf
         "%d Lock.acquire call site(s) but only %d Lock.release; some path \
          leaks a lock — prefer Lock.with_lock"
         !acquires !releases);
  List.rev !findings
  @ matrix_violations (state_matrix_source ~file src)
  @ bump_gen_findings ~file src

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file path = check_source ~file:path (read_file path)

let check_tree ~roots =
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then begin
            if entry <> "_build" && entry.[0] <> '.' then walk path
          end
          else if Filename.check_suffix entry ".ml" then
            files := path :: !files)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter (fun r -> if Sys.file_exists r && Sys.is_directory r then walk r) roots;
  List.concat_map check_file (List.sort compare (List.rev !files))
  |> List.sort (fun a b ->
         match compare a.file b.file with 0 -> compare a.line b.line | c -> c)
