(** End-to-end recovery oracle for fault-injected runs.

    The fault pipeline ({!Pnp_faults.Faults}) damages the wire on
    purpose; this checker decides whether the protocols above it
    {e recovered}.  Four families of verdicts, from the chaos harness's
    observations of one run:

    - {b Stream integrity}: every TCP byte stream delivered to a
      receiving application must equal the stream the sender wrote —
      same length, same {!digest} — and the connection must have reached
      a drained terminal state (no retransmission left unresolved, no
      frame still in flight).
    - {b Zero silent corruption}: every payload bit flip the pipeline
      injected must have been caught by an Internet checksum (IP header,
      TCP or UDP) before reaching the socket layer.  Checksum failures
      [>=] injections is required; an excess is legal (a corrupt frame
      can be counted once per fragment), a deficit means a damaged byte
      may have been delivered as data.
    - {b UDP accounting}: datagrams have no recovery, so every injected
      datagram must be accounted for exactly:
      [injected + duplicated = delivered + dropped_link + dropped_proto].
    - {b Liveness}: a run that hits its horizon without draining fails
      ([drained = false] in the stream observation).

    The oracle is pure: it inspects an {!obs} record assembled by the
    caller (the chaos harness or a test) and returns findings — an empty
    list is a clean bill of health. *)

type tcp_stream = {
  label : string;  (** e.g. ["chaos/loss/tcp"] — names the finding subject *)
  sent_bytes : int;
  received_bytes : int;
  sent_digest : int;
  received_digest : int;
  established : bool;  (** handshake completed *)
  drained : bool;
      (** terminal: sender closed, receiver saw EOF, nothing in flight *)
  rexmits : int;  (** informational, echoed into the liveness message *)
}

type corruption = {
  injected : int;  (** bit flips the pipeline applied *)
  caught : int;
      (** checksum rejections observed above the MAC layer, summed over
          IP header failures and TCP/UDP checksum failures at both ends *)
}

type udp_account = {
  injected : int;  (** datagrams offered to the link *)
  duplicated : int;  (** extra copies the pipeline created *)
  delivered : int;  (** datagrams handed to the receiving application *)
  dropped_link : int;  (** consumed by the fault pipeline *)
  dropped_proto : int;
      (** discarded above the wire: MAC filter, IP header/reassembly,
          UDP checksum or no-listener drops *)
  dropped_pressure : int;
      (** shed under resource pressure: rx-side [pool_pressure] drops at
          the link boundary ({!Pnp_driver.Link.pressure_drops}) *)
}

type obs = {
  run : string;  (** subject prefix, e.g. the plan name *)
  streams : tcp_stream list;
  corruption : corruption option;
  udp : udp_account option;
}

val digest : string -> int
(** Order-sensitive 64-bit FNV-1a digest of a byte stream, for comparing
    sent and received streams without retaining either. *)

val digest_add : int -> string -> int
(** Extend a running {!digest}: [digest s = digest_add (digest "") s];
    feeding chunks in delivery order gives the whole-stream digest. *)

val check : obs -> Finding.t list
(** All recovery violations in the observation, sorted; [] = recovered. *)

(** {2 Overload oracle}

    Under deliberate resource exhaustion (incast fan-in, SYN floods,
    bounded mnode pools) flows are {e allowed} to end incomplete — the
    whole point of graceful degradation is shedding load instead of
    wedging.  What is never allowed is silent loss or corruption: every
    byte that reaches an application must be exactly the sender's byte,
    and every missing byte must be attributable to a named drop cause. *)

type overload_flow = {
  flow : string;       (** names the finding subject, e.g. ["flow/042"] *)
  accepted : bool;     (** connection reached ESTABLISHED *)
  completed : bool;    (** full stream delivered (FIN seen in order) *)
  sent_bytes : int;    (** bytes the sender committed to this flow *)
  received_bytes : int;
  received_digest : int;  (** {!digest} of the bytes as delivered *)
  expected_digest : int;
      (** {!digest} of the first [received_bytes] bytes of the flow's
          golden pattern — prefix exactness is checkable even for flows
          the overload cut short *)
}

(** Named drop causes summed over the run — the overload taxonomy
    ({!Pnp_driver.Link.fault_stats} for [link] and [pool_pressure],
    {!Pnp_proto.Tcp.syn_backlog_drops}, {!Pnp_proto.Tcp.total_sockbuf_drops},
    checksum discards of corrupted frames). *)
type overload_drops = {
  link : int;
  pool_pressure : int;
  syn_backlog : int;
  sockbuf_full : int;
  checksum : int;
}

type overload = {
  scenario : string;
  flows : overload_flow list;
  drops : overload_drops;
}

val total_drops : overload_drops -> int

val check_overload : overload -> Finding.t list
(** Violations, sorted; [] = degraded gracefully.  Checks per flow:
    delivered prefix is byte-exact against the golden pattern; a
    [completed] flow delivered every byte.  Globally: if any flow is
    incomplete, at least one named drop cause fired — zero silent loss. *)
