(** Run every trace-driven checker over one trace. *)

val all : Pnp_engine.Trace.t -> Finding.t list
(** Lockset, lock-order and FIFO grant-order findings, merged and
    sorted with {!Finding.sort}. *)
