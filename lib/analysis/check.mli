(** Run every trace-driven checker over one trace. *)

val all : Pnp_engine.Trace.t -> Finding.t list
(** Lockset, happens-before, arena lifetime, lock-order and FIFO
    grant-order findings, merged, sorted with {!Finding.sort} and
    collapsed with {!Finding.dedupe}. *)
