open Pnp_engine

type severity = Error | Warning

type t = {
  checker : string;
  severity : severity;
  subject : string;
  message : string;
  witnesses : Trace.record list;
}

let v ?(severity = Error) ?(witnesses = []) ~checker ~subject message =
  { checker; severity; subject; message; witnesses }

let ev_label (ev : Trace.ev) =
  match ev with
  | Trace.Thread_spawn { name } -> "spawn " ^ name
  | Thread_fork { child } -> Printf.sprintf "fork tid %d" child
  | Thread_exit -> "exit"
  | Thread_join { child } -> Printf.sprintf "join tid %d" child
  | Thread_block -> "block"
  | Thread_resume -> "resume"
  | Lock_request { lock; waiters } -> Printf.sprintf "request %s (waiters %d)" lock waiters
  | Lock_grant { lock; wait_ns; _ } -> Printf.sprintf "grant %s (waited %d ns)" lock wait_ns
  | Lock_handoff { lock; to_tid; _ } -> Printf.sprintf "handoff %s -> tid %d" lock to_tid
  | Lock_release { lock; hold_ns } -> Printf.sprintf "release %s (held %d ns)" lock hold_ns
  | Gate_take { gate; ticket } -> Printf.sprintf "ticket %d of %s" ticket gate
  | Gate_pass { gate; ticket; _ } -> Printf.sprintf "pass %d of %s" ticket gate
  | Gate_advance { gate; serving } -> Printf.sprintf "advance %s to %d" gate serving
  | Membus_charge { bytes; _ } -> Printf.sprintf "membus %d B" bytes
  | Mpool_alloc { hit } -> if hit then "mpool hit" else "mpool miss"
  | Mnode_alloc { node } -> Printf.sprintf "alloc mnode %d" node
  | Mnode_ref { node; refs } -> Printf.sprintf "ref mnode %d -> %d" node refs
  | Mnode_unref { node; refs } -> Printf.sprintf "unref mnode %d -> %d" node refs
  | Mnode_recycle { node } -> Printf.sprintf "recycle mnode %d" node
  | Mnode_write { node } -> Printf.sprintf "write mnode %d" node
  | Span_begin { seq; phase } -> Printf.sprintf "begin %s seq %d" (Trace.pp_phase phase) seq
  | Span_end { seq; phase } -> Printf.sprintf "end %s seq %d" (Trace.pp_phase phase) seq
  | Access { state; write } ->
    Printf.sprintf "%s %s" (if write then "write" else "read") state
  | Fault_drop { cause } -> "fault drop " ^ cause
  | Fault_dup { copies } -> Printf.sprintf "fault dup +%d" copies
  | Fault_corrupt { off; bit } -> Printf.sprintf "fault corrupt byte %d bit %d" off bit
  | Fault_reorder { delay_ns } -> Printf.sprintf "fault reorder +%d ns" delay_ns
  | Scr_append { log; idx } -> Printf.sprintf "scr append %s[%d]" log idx
  | Scr_apply { log; idx } -> Printf.sprintf "scr apply %s[%d]" log idx
  | Scr_apply_end { log; idx } -> Printf.sprintf "scr apply-end %s[%d]" log idx
  | Scr_replay { log; upto } -> Printf.sprintf "scr replay %s upto %d" log upto
  | Rcu_read { state } -> "rcu read " ^ state
  | Rcu_publish { state } -> "rcu publish " ^ state

let severity_label = function Error -> "error" | Warning -> "warning"

let pp fmt t =
  Format.fprintf fmt "[%s] %s: %s: %s" (severity_label t.severity) t.checker t.subject
    t.message;
  List.iter
    (fun (r : Trace.record) ->
      Format.fprintf fmt "@\n    witness: t=%d ns tid=%d cpu=%d  %s" r.Trace.ts
        r.Trace.tid r.Trace.cpu (ev_label r.Trace.ev))
    t.witnesses

let to_string t = Format.asprintf "%a" pp t

let sort ts =
  let sev_rank = function Error -> 0 | Warning -> 1 in
  List.stable_sort
    (fun a b ->
      match compare (sev_rank a.severity) (sev_rank b.severity) with
      | 0 -> (
        match compare a.checker b.checker with
        | 0 -> compare a.subject b.subject
        | c -> c)
      | c -> c)
    ts

(* Identical (checker, site, message) findings collapse to the first
   occurrence: re-running checkers over the same trace, or one defect
   witnessed through several replay passes, must not multiply the
   report.  Witnesses are deliberately left out of the key — the same
   defect seen at two timestamps is still one defect. *)
let dedupe ts =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      let key = (t.checker, t.subject, t.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    ts

(* Checker families with a stable exit-code bit each, so CI can tell a
   race from a lifetime defect from anything else without parsing the
   report.  New checkers must map themselves here. *)
type family = Race | Lifetime | Order

let family t =
  match t.checker with
  | "lockset" | "hb-race" -> Race
  | "lifetime" -> Lifetime
  | _ -> Order

let family_bit = function Race -> 1 | Lifetime -> 2 | Order -> 4

let exit_code ts =
  List.fold_left (fun acc t -> acc lor family_bit (family t)) 0 ts
