open Pnp_engine

type severity = Error | Warning

type t = {
  checker : string;
  severity : severity;
  subject : string;
  message : string;
  witnesses : Trace.record list;
}

let v ?(severity = Error) ?(witnesses = []) ~checker ~subject message =
  { checker; severity; subject; message; witnesses }

let ev_label (ev : Trace.ev) =
  match ev with
  | Trace.Thread_spawn { name } -> "spawn " ^ name
  | Thread_block -> "block"
  | Thread_resume -> "resume"
  | Lock_request { lock; waiters } -> Printf.sprintf "request %s (waiters %d)" lock waiters
  | Lock_grant { lock; wait_ns; _ } -> Printf.sprintf "grant %s (waited %d ns)" lock wait_ns
  | Lock_handoff { lock; to_tid; _ } -> Printf.sprintf "handoff %s -> tid %d" lock to_tid
  | Lock_release { lock; hold_ns } -> Printf.sprintf "release %s (held %d ns)" lock hold_ns
  | Gate_take { gate; ticket } -> Printf.sprintf "ticket %d of %s" ticket gate
  | Gate_pass { gate; ticket; _ } -> Printf.sprintf "pass %d of %s" ticket gate
  | Membus_charge { bytes; _ } -> Printf.sprintf "membus %d B" bytes
  | Mpool_alloc { hit } -> if hit then "mpool hit" else "mpool miss"
  | Span_begin { seq; phase } -> Printf.sprintf "begin %s seq %d" (Trace.pp_phase phase) seq
  | Span_end { seq; phase } -> Printf.sprintf "end %s seq %d" (Trace.pp_phase phase) seq
  | Access { state; write } ->
    Printf.sprintf "%s %s" (if write then "write" else "read") state
  | Fault_drop { cause } -> "fault drop " ^ cause
  | Fault_dup { copies } -> Printf.sprintf "fault dup +%d" copies
  | Fault_corrupt { off; bit } -> Printf.sprintf "fault corrupt byte %d bit %d" off bit
  | Fault_reorder { delay_ns } -> Printf.sprintf "fault reorder +%d ns" delay_ns

let severity_label = function Error -> "error" | Warning -> "warning"

let pp fmt t =
  Format.fprintf fmt "[%s] %s: %s: %s" (severity_label t.severity) t.checker t.subject
    t.message;
  List.iter
    (fun (r : Trace.record) ->
      Format.fprintf fmt "@\n    witness: t=%d ns tid=%d cpu=%d  %s" r.Trace.ts
        r.Trace.tid r.Trace.cpu (ev_label r.Trace.ev))
    t.witnesses

let to_string t = Format.asprintf "%a" pp t

let sort ts =
  let sev_rank = function Error -> 0 | Warning -> 1 in
  List.stable_sort
    (fun a b ->
      match compare (sev_rank a.severity) (sev_rank b.severity) with
      | 0 -> (
        match compare a.checker b.checker with
        | 0 -> compare a.subject b.subject
        | c -> c)
      | c -> c)
    ts
