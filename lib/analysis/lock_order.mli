(** Lock-order (held-before) graph and deadlock-potential detection.

    Every [Lock_grant] of lock [b] to a thread already holding lock [a]
    records a held-before edge [a -> b], witnessed by the two grant
    records.  A cycle in the resulting graph means two threads can
    acquire the same locks in opposite orders — a potential deadlock
    even if this particular run never interleaved into one (the classic
    TCP-6 hazard: the input path takes [reass] before [rexmt], an
    inverted path would take them the other way around). *)

type edge = {
  first : string;   (** the lock already held *)
  second : string;  (** the lock acquired while holding [first] *)
  holder : Pnp_engine.Trace.record;   (** grant under which [first] was held *)
  acquire : Pnp_engine.Trace.record;  (** grant of [second] *)
}

val edges : Pnp_engine.Trace.t -> edge list
(** One edge per distinct (first, second) pair, first witness kept,
    sorted by (first, second). *)

val cycles : edge list -> edge list list
(** Elementary cycles, each as the list of edges walked; every distinct
    (unordered) lock pair involved in an inversion is reported once. *)

val check : Pnp_engine.Trace.t -> Finding.t list
(** One finding per cycle, witnessed by the grant pairs of every edge in
    the cycle. *)
