(** FIFO-discipline and packet-order checking over the lock-grant stream.

    Two related analyses on every lock that appears in the trace:

    - {b Grant-order assertion}: a lock registered with the ["fifo"]
      discipline (the MCS lock) must grant in request-arrival order.
      Any grant that overtakes an earlier, still-pending request is a
      finding — this turns the {!Pnp_engine.Lock.Fifo} contract into a
      machine-checked invariant.

    - {b Reorder-window quantification}: cross-referencing each grant
      with the packet sequence number the grantee thread is carrying
      (its latest [Span_begin Enqueue]) measures how far the lock's
      grant order deviates from packet arrival order — the Figure 10
      mechanism (non-FIFO locks reorder packets inside TCP) as numbers
      instead of a chart.  [reordered] counts grants whose packet seq is
      lower than one already granted; [max_window] is the deepest such
      overtake in sequence-number distance (bytes). *)

type lock_stat = {
  lock : string;
  discipline : string option;  (** from {!Pnp_engine.Trace.lock_discipline} *)
  grants : int;                (** grants attributable to a carried packet *)
  reordered : int;
  max_window : int;            (** in packets, 0 when order was preserved *)
}

val stats : Pnp_engine.Trace.t -> lock_stat list
(** Per-lock reorder statistics, restricted to locks whose grantees
    carried packets; sorted by reordered count descending. *)

val reordered_total : lock_stat list -> int * int
(** [(reordered, grants)] summed over all locks. *)

val check : Pnp_engine.Trace.t -> Finding.t list
(** Grant-order violations on FIFO locks, witnessed by the overtaken
    request and the overtaking grant. *)
