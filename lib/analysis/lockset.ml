open Pnp_engine

type class_ =
  | Virgin
  | Exclusive of int
  | Shared of string list
  | Shared_modified of string list

type state = { id : string; class_ : class_; accesses : int }

type cell = {
  mutable cls : class_;
  mutable init_ls : string list;
      (* locks consistently held by the initialising thread; seeds the
         candidate set when the state becomes shared *)
  mutable n : int;
  mutable last : Trace.record option; (* previous access, for the witness pair *)
  mutable reported : bool;
}

let inter a b = List.filter (fun l -> List.mem l b) a

let locks_str = function
  | [] -> "{}"
  | ls -> "{" ^ String.concat ", " ls ^ "}"

(* The tracer is usually enabled mid-run (the measurement window), so a
   thread can be holding locks whose grants predate the trace.  Such a
   hold is revealed by its release: a [Lock_release] for a lock the
   replay never saw granted.  Accesses by that thread up to its last
   unmatched release ran with an unknowable held-set and must not be
   classified. *)
let context_cutoffs tracer =
  let cutoff : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Replay.replay tracer (fun ctx r ->
      match r.Trace.ev with
      | Trace.Lock_release { lock; _ } ->
        if not (List.mem lock (Replay.held ctx ~tid:r.Trace.tid)) then
          Hashtbl.replace cutoff r.Trace.tid r.Trace.ts
      | _ -> ());
  cutoff

let run tracer =
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  let findings = ref [] in
  let cutoff = context_cutoffs tracer in
  let incomplete_context r =
    match Hashtbl.find_opt cutoff r.Trace.tid with
    | Some t -> r.Trace.ts <= t
    | None -> false
  in
  Replay.replay tracer (fun ctx r ->
      match r.Trace.ev with
      | Trace.Access { state = id; write } when not (incomplete_context r) ->
        let c =
          match Hashtbl.find_opt cells id with
          | Some c -> c
          | None ->
            let c = { cls = Virgin; init_ls = []; n = 0; last = None; reported = false } in
            Hashtbl.replace cells id c;
            c
        in
        c.n <- c.n + 1;
        let tid = r.Trace.tid in
        let held = Replay.held ctx ~tid in
        let report ls =
          if not c.reported then begin
            c.reported <- true;
            let witnesses =
              match c.last with Some prev -> [ prev; r ] | None -> [ r ]
            in
            findings :=
              Finding.v ~checker:"lockset" ~subject:id ~witnesses
                (Printf.sprintf
                   "candidate lockset went empty: %s by tid %d holding %s (candidates \
                    were %s) — shared state is reachable without a consistent lock"
                   (if write then "write" else "read")
                   tid (locks_str held) (locks_str ls))
              :: !findings
          end
        in
        (match c.cls with
         | Virgin ->
           c.cls <- Exclusive tid;
           c.init_ls <- held
         | Exclusive owner when owner = tid -> c.init_ls <- inter c.init_ls held
         | Exclusive _ ->
           (* Second thread: the candidate set is the locks the
              initialising thread consistently held, intersected with
              this access's held set. *)
           let ls' = inter c.init_ls held in
           if write then begin
             c.cls <- Shared_modified ls';
             if ls' = [] then report c.init_ls
           end
           else c.cls <- Shared ls'
         | Shared ls ->
           let ls' = inter ls held in
           if write then begin
             c.cls <- Shared_modified ls';
             if ls' = [] then report ls
           end
           else c.cls <- Shared ls'
         | Shared_modified ls ->
           let ls' = inter ls held in
           c.cls <- Shared_modified ls';
           if ls' = [] then report ls);
        c.last <- Some r
      | _ -> ());
  let states =
    Hashtbl.fold (fun id c acc -> { id; class_ = c.cls; accesses = c.n } :: acc) cells []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  (states, Finding.sort !findings)

let check tracer = snd (run tracer)
