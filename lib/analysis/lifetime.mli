(** Arena lifetime sanitizer — ASan for {!Pnp_xkern.Mpool}.

    Replays the node lifecycle events the pool traces (alloc, ref,
    unref, arena recycle, byte writes) and reports, per node:

    - {b use-after-free}: a reference taken, or bytes written, after
      the reference count reached zero;
    - {b double-free}: an unref of an already-dead node, or a second
      recycle of the same buffer;
    - {b write-after-recycle}: bytes written after the node's arena
      buffer returned to the free lists — the corruption class buffer
      recycling (PR 7) introduced;
    - {b leaks} (opt-in): nodes still live when the trace ends.

    Nodes first seen mid-lifecycle (traces start mid-run) are adopted
    silently.  At most one finding is reported per node. *)

val check : ?leaks:bool -> Pnp_engine.Trace.t -> Finding.t list
(** Findings under checker ["lifetime"].  [leaks] (default [false])
    additionally demands every node be dead at end of trace — only
    meaningful for drain-to-completion fixtures, since a measurement
    window legitimately ends with traffic in flight. *)

val run : ?leaks:bool -> Pnp_engine.Trace.t -> Finding.t list
(** Alias of {!check}. *)
