open Pnp_engine

type edge = {
  first : string;
  second : string;
  holder : Trace.record;
  acquire : Trace.record;
}

let edges tracer =
  let seen : (string * string, edge) Hashtbl.t = Hashtbl.create 64 in
  Replay.replay tracer (fun ctx r ->
      match r.Trace.ev with
      | Trace.Lock_grant { lock = second; _ } ->
        let tid = r.Trace.tid in
        List.iter
          (fun first ->
            if first <> second && not (Hashtbl.mem seen (first, second)) then
              let holder =
                match Replay.grant_record ctx ~tid ~lock:first with
                | Some g -> g
                | None -> r (* unreachable: held implies a recorded grant *)
              in
              Hashtbl.replace seen (first, second)
                { first; second; holder; acquire = r })
          (Replay.held ctx ~tid)
      | _ -> ());
  Hashtbl.fold (fun _ e acc -> e :: acc) seen []
  |> List.sort (fun a b ->
         match compare a.first b.first with 0 -> compare a.second b.second | c -> c)

let cycles es =
  let adj : (string, edge list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj e.first) in
      Hashtbl.replace adj e.first (cur @ [ e ]))
    es;
  let found = ref [] in
  let keys = ref [] in
  let report cycle =
    (* Dedupe by the set of locks on the cycle. *)
    let key = List.sort_uniq compare (List.map (fun e -> e.first) cycle) in
    if not (List.mem key !keys) then begin
      keys := key :: !keys;
      found := cycle :: !found
    end
  in
  let nodes =
    List.sort_uniq compare (List.concat_map (fun e -> [ e.first; e.second ]) es)
  in
  let visited = Hashtbl.create 16 in
  List.iter
    (fun start ->
      (* DFS with an explicit path of edges (newest first); stepping onto a
         node already on the path closes a cycle.  Nodes fully explored as
         an earlier root are skipped: any cycle through them was already
         found from that root. *)
      let rec dfs node path on_path =
        if not (Hashtbl.mem visited node) || path = [] then
          List.iter
            (fun e ->
              if List.mem e.second on_path then begin
                (* Unwind the path back to where the cycle starts. *)
                let rec take = function
                  | [] -> []
                  | e' :: rest ->
                    if e'.first = e.second then [ e' ] else e' :: take rest
                in
                report (List.rev (e :: take path))
              end
              else dfs e.second (e :: path) (e.second :: on_path))
            (Option.value ~default:[] (Hashtbl.find_opt adj node))
      in
      dfs start [] [ start ];
      Hashtbl.replace visited start ())
    nodes;
  List.rev !found

let check tracer =
  cycles (edges tracer)
  |> List.map (fun cycle ->
         let path =
           match cycle with
           | [] -> ""
           | first :: _ ->
             String.concat " -> " (List.map (fun e -> e.first) cycle @ [ first.first ])
         in
         let witnesses =
           List.concat_map (fun e -> [ e.holder; e.acquire ]) cycle
           |> List.sort_uniq (fun (a : Trace.record) b ->
                  match compare a.Trace.ts b.Trace.ts with
                  | 0 -> compare a b
                  | c -> c)
         in
         Finding.v ~checker:"lock-order" ~subject:path ~witnesses
           (Printf.sprintf
              "lock-order cycle over %d lock(s): threads acquire these locks in \
               conflicting orders, a potential deadlock"
              (List.length cycle)))
  |> Finding.sort
