(** The x-kernel map manager.

    Maps translate external identifiers (port numbers, protocol numbers)
    to internal ones (sessions, protocols) and are primarily used for
    demultiplexing.  Implementation follows the paper: chained-bucket hash
    tables with a 1-behind cache, protected by a counting lock so that
    [iter] (the x-kernel's [mapForEach]) may recurse into the same map
    (Section 2.1).

    Beyond the paper's fixed 32-bucket table, the map is sharded and
    growable so the demux layer scales into the 10^5..10^6-connection
    range: keys are spread over a power-of-two number of shards (low hash
    bits), each with its own counting lock, bucket array and 1-behind
    cache, and a shard doubles its buckets whenever its mean chain length
    would exceed a small constant.  A single-shard map (the default) is
    behaviourally identical to the classic layout, including its lock
    name and simulated costs.

    When the platform disables map locking, [lookup] skips the lock — the
    Section 3.1 experiment that measured the cost of demultiplexing
    serialisation (about 10% of receive-side throughput).  On that path
    the 1-behind cache and statistics are kept per thread, so the
    unlocked read writes no shared state. *)

module type KEY = sig
  type t

  val hash : t -> int
  val equal : t -> t -> bool
end

module Make (K : KEY) : sig
  type 'v t

  val create :
    Pnp_engine.Platform.t -> ?shards:int -> ?buckets:int -> name:string -> unit -> 'v t
  (** [shards] (default 1) and [buckets] (default 32, the initial bucket
      count per shard) are each rounded up to a power of two, so both the
      shard and the bucket index are mask extractions of the key hash. *)

  val insert : 'v t -> K.t -> 'v -> unit
  (** Bind (replacing any existing binding). *)

  val lookup : 'v t -> K.t -> 'v option
  (** Demultiplex through the 1-behind cache, then the chain. *)

  val remove : 'v t -> K.t -> bool

  val iter : 'v t -> (K.t -> 'v -> unit) -> unit
  (** [mapForEach]: the callback runs under the visited shard's counting
      lock and may call back into this map.  Bindings added by the
      callback may or may not be visited (as with [Hashtbl]). *)

  val length : 'v t -> int

  (** {2 Statistics} *)

  val lookups : 'v t -> int
  val cache_hits : 'v t -> int

  val shard_count : 'v t -> int
  val bucket_count : 'v t -> int
  (** Total buckets across all shards (grows as shards resize). *)

  val resizes : 'v t -> int
  (** Number of shard bucket-array doublings so far. *)
end
