open Pnp_engine

module type KEY = sig
  type t

  val hash : t -> int
  val equal : t -> t -> bool
end

(* Instruction budgets for the simulated cost of a map operation.  These
   are 1994 path lengths: hashing, key comparison and chain chasing on a
   machine where most of it misses the cache — large enough that locking
   the maps on the demultiplexing path costs measurable throughput
   (Section 3.1 reports ~10%% at 8 CPUs). *)
let cache_probe_instrs = 45
let hash_instrs = 70
let link_instrs = 25 (* per chain element examined *)

(* A shard doubles its bucket array when its population exceeds this many
   bindings per bucket, keeping mean chain length bounded as the map
   grows into the 10^5..10^6 range. *)
let grow_load = 2

module Make (K : KEY) = struct
  type 'v shard = {
    sname : string; (* lock name; also namespaces Trace.Access state *)
    lock : Lock.Counting.t;
    mutable buckets : (K.t * 'v) list array;
    mutable one_behind : (K.t * 'v) option;
    mutable size : int;
    mutable lookups : int;
    mutable cache_hits : int;
    mutable resizes : int;
  }

  (* One thread's private 1-behind cache and counters, used only on the
     unlocked lookup path (map_locking = false).  Keeping them per thread
     is what makes the unlocked path write-free on shared state: the old
     implementation mutated the shared cache and counters from an
     intentionally lock-free read, a write/write race the lockset checker
     (rightly) flags. *)
  type 'v tslot = {
    mutable t_behind : (K.t * 'v) option;
    mutable t_lookups : int;
    mutable t_hits : int;
  }

  type 'v t = {
    plat : Platform.t;
    mask : int; (* shard count - 1; shard count is a power of two *)
    shift : int; (* log2 shard count; bucket index uses the high bits *)
    shards : 'v shard array;
    mutable tslots : 'v tslot array; (* tid-indexed; unlocked path only *)
    hslot : 'v tslot; (* host-context (outside any sim thread) slot *)
  }

  let fresh_slot () = { t_behind = None; t_lookups = 0; t_hits = 0 }

  let create plat ?(shards = 1) ?(buckets = 32) ~name () =
    if shards <= 0 then invalid_arg "Xmap.create: shards must be positive";
    if buckets <= 0 then invalid_arg "Xmap.create: buckets must be positive";
    let rec pow2 n = if n >= shards then n else pow2 (2 * n) in
    let nshards = pow2 1 in
    (* Bucket arrays are kept at power-of-two sizes (rounding the request
       up) so the bucket index is a mask, not a division, on the
       per-packet demux path. *)
    let rec bpow2 n = if n >= buckets then n else bpow2 (2 * n) in
    let buckets = bpow2 1 in
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    let shard i =
      (* A single-shard map keeps the bare name so existing lock tables
         and traces are unchanged. *)
      let sname = if nshards = 1 then name else Printf.sprintf "%s.s%d" name i in
      {
        sname;
        lock =
          Lock.Counting.create plat.Platform.sim plat.Platform.arch
            plat.Platform.map_disc ~name:sname;
        buckets = Array.make buckets [];
        one_behind = None;
        size = 0;
        lookups = 0;
        cache_hits = 0;
        resizes = 0;
      }
    in
    {
      plat;
      mask = nshards - 1;
      shift = log2 nshards;
      shards = Array.init nshards shard;
      tslots = [||];
      hslot = fresh_slot ();
    }

  let hashv k = K.hash k land max_int
  let shard_of t h = t.shards.(h land t.mask)
  let bindex t sh h = (h lsr t.shift) land (Array.length sh.buckets - 1)

  let locked t sh f =
    if Sim.in_thread t.plat.Platform.sim then Lock.Counting.with_lock sh.lock f
    else f ()

  (* Shared-state access annotation for the lockset checker; guarded on
     the tracer so the disabled path costs one field read. *)
  let access t sh ~write =
    let sim = t.plat.Platform.sim in
    let tracer = Sim.tracer sim in
    if Trace.enabled tracer && Sim.in_thread sim then
      let th = Sim.self sim in
      Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th)
        (Trace.Access { state = sh.sname ^ "#cache"; write })

  let grow_tslots t tid =
    let cap = max 16 (max (tid + 1) (2 * Array.length t.tslots)) in
    let table =
      Array.init cap (fun i ->
          if i < Array.length t.tslots then t.tslots.(i) else fresh_slot ())
    in
    t.tslots <- table

  let tslot t =
    let sim = t.plat.Platform.sim in
    if Sim.in_thread sim then begin
      let tid = Sim.tid (Sim.self sim) in
      if tid >= Array.length t.tslots then grow_tslots t tid;
      Array.unsafe_get t.tslots tid
    end
    else t.hslot

  (* Drop any per-thread cached binding for [k]; called (under the shard
     lock) whenever a binding is replaced or removed so no thread can
     keep serving a stale value.  The slots are host-side bookkeeping —
     scrubbing them carries no simulated cost, like the shared
     invalidation in [remove]. *)
  let scrub_tslots t k =
    let scrub s =
      match s.t_behind with
      | Some (k', _) when K.equal k k' -> s.t_behind <- None
      | _ -> ()
    in
    Array.iter scrub t.tslots;
    scrub t.hslot

  (* Single-pass chain surgery: walk once, report whether a binding for
     [k] was dropped.  When nothing matches the original list is returned
     untouched (no reallocation). *)
  let remove_binding k chain =
    let rec walk acc = function
      | [] -> (false, chain)
      | (k', _) :: rest when K.equal k k' -> (true, List.rev_append acc rest)
      | b :: rest -> walk (b :: acc) rest
    in
    walk [] chain

  (* Double a shard's bucket array, redistributing every binding.  Runs
     under the shard lock; charges one link traversal per rehashed
     binding, the simulated cost of walking the old chains. *)
  let grow_shard t sh =
    sh.resizes <- sh.resizes + 1;
    let old = sh.buckets in
    let nb = 2 * Array.length old in
    sh.buckets <- Array.make nb [];
    Array.iter
      (fun chain ->
        List.iter
          (fun ((k, _) as b) ->
            Platform.charge_instrs t.plat link_instrs;
            let i = (hashv k lsr t.shift) land (nb - 1) in
            sh.buckets.(i) <- b :: sh.buckets.(i))
          chain)
      old

  let insert t k v =
    let h = hashv k in
    let sh = shard_of t h in
    locked t sh (fun () ->
        Platform.charge_instrs t.plat hash_instrs;
        let i = bindex t sh h in
        let replaced, chain = remove_binding k sh.buckets.(i) in
        sh.buckets.(i) <- (k, v) :: chain;
        if not replaced then sh.size <- sh.size + 1;
        access t sh ~write:true;
        sh.one_behind <- Some (k, v);
        scrub_tslots t k;
        (tslot t).t_behind <- Some (k, v);
        if sh.size > grow_load * Array.length sh.buckets then grow_shard t sh)

  let chain_find t sh i k =
    let rec walk pos = function
      | [] ->
        Platform.charge_instrs t.plat (hash_instrs + (link_instrs * pos));
        None
      | (k', v) :: rest ->
        if K.equal k k' then begin
          Platform.charge_instrs t.plat (hash_instrs + (link_instrs * (pos + 1)));
          Some (k', v)
        end
        else walk (pos + 1) rest
    in
    walk 0 sh.buckets.(i)

  (* The locked lookup keeps the shared per-shard 1-behind cache and
     counters, all under the shard lock.  When the platform disables map
     locking (the Section 3.1 aside) the lookup runs lock-free and uses
     only its thread's private slot — the chain read itself is the
     intentionally unserialised demux read the experiment measures, but
     the bookkeeping no longer writes shared state from the unlocked
     path. *)
  let lookup t k =
    let h = hashv k in
    let sh = shard_of t h in
    if t.plat.Platform.map_locking then
      locked t sh (fun () ->
          sh.lookups <- sh.lookups + 1;
          Platform.charge_instrs t.plat cache_probe_instrs;
          access t sh ~write:false;
          match sh.one_behind with
          | Some (k', v) when K.equal k k' ->
            sh.cache_hits <- sh.cache_hits + 1;
            Some v
          | _ -> (
            match chain_find t sh (bindex t sh h) k with
            | Some ((_, v) as binding) ->
              access t sh ~write:true;
              sh.one_behind <- Some binding;
              Some v
            | None -> None))
    else begin
      let s = tslot t in
      s.t_lookups <- s.t_lookups + 1;
      Platform.charge_instrs t.plat cache_probe_instrs;
      match s.t_behind with
      | Some (k', v) when K.equal k k' ->
        s.t_hits <- s.t_hits + 1;
        Some v
      | _ -> (
        match chain_find t sh (bindex t sh h) k with
        | Some ((_, v) as binding) ->
          s.t_behind <- Some binding;
          Some v
        | None -> None)
    end

  let remove t k =
    let h = hashv k in
    let sh = shard_of t h in
    locked t sh (fun () ->
        Platform.charge_instrs t.plat hash_instrs;
        let i = bindex t sh h in
        let removed, chain = remove_binding k sh.buckets.(i) in
        if removed then begin
          sh.buckets.(i) <- chain;
          sh.size <- sh.size - 1;
          access t sh ~write:true;
          (match sh.one_behind with
          | Some (k', _) when K.equal k k' -> sh.one_behind <- None
          | _ -> ());
          scrub_tslots t k
        end;
        removed)

  let iter t f =
    Array.iter
      (fun sh ->
        locked t sh (fun () ->
            Array.iter
              (fun chain ->
                List.iter
                  (fun (k, v) ->
                    Platform.charge_instrs t.plat link_instrs;
                    f k v)
                  chain)
              sh.buckets))
      t.shards

  let sum t f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards

  let length t = sum t (fun sh -> sh.size)

  let lookups t =
    sum t (fun sh -> sh.lookups)
    + Array.fold_left (fun acc s -> acc + s.t_lookups) 0 t.tslots
    + t.hslot.t_lookups

  let cache_hits t =
    sum t (fun sh -> sh.cache_hits)
    + Array.fold_left (fun acc s -> acc + s.t_hits) 0 t.tslots
    + t.hslot.t_hits

  let shard_count t = Array.length t.shards
  let bucket_count t = sum t (fun sh -> Array.length sh.buckets)
  let resizes t = sum t (fun sh -> sh.resizes)
end
