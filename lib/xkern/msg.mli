(** The x-kernel message tool.

    A message is an ordered sequence of views onto reference-counted
    MNodes.  Messages are per-thread objects (the paper: "Messages are
    per-thread data structures, and thus required no locks"); only the
    MNode reference counts underneath are shared.

    Headers are pushed and popped at the front without copying payload
    data; [dup] shares the underlying nodes, which is how the TCP
    retransmission queue keeps unacknowledged segments without copies. *)

type t

val create : Mpool.t -> int -> t
(** [create pool n] makes a message with an [n]-byte payload (contents
    unspecified until written). *)

val of_string : Mpool.t -> string -> t

val length : t -> int

val pool : t -> Mpool.t
(** The pool the message allocates from — for callers that write through
    {!head_view} and must call {!Mpool.bump_gen} on the exposed node. *)

val push : t -> int -> unit
(** [push t n] prepends [n] bytes of header space; bytes 0..n-1 of the
    message now address it. *)

val pop : t -> int -> unit
(** [pop t n] strips the first [n] bytes.  @raise Invalid_argument if the
    message is shorter. *)

val truncate : t -> int -> unit
(** [truncate t n] keeps only the first [n] bytes. *)

val dup : t -> t
(** Share the same bytes under a new message (reference counts bumped). *)

val unshare : t -> off:int -> unit
(** Make the node viewed by the part containing offset [off] exclusive to
    this message, copying the viewed bytes into a fresh node when the
    reference count shows sharing.  Writes through this message inside
    that part are then invisible to every other message.  Fault injection
    needs this: damaging a frame "on the wire" must not reach the
    sender's retransmission buffers, which {!dup} left sharing the same
    nodes. *)

val append : t -> t -> unit
(** [append t u] moves [u]'s contents to the tail of [t]; [u] becomes
    empty (its node references transfer, so no copying happens). *)

val destroy : t -> unit
(** Drop all node references.  The message must not be used afterwards. *)

(** {2 Byte access}

    Offsets are message-relative.  Multi-byte accessors are big-endian
    (network order) and may span node boundaries; when the whole range
    lies inside one node (the common case for headers) they locate the
    node once and use direct 16-bit loads/stores instead of one
    part-list walk per byte. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit

val blit_to_bytes : t -> Bytes.t -> unit
(** Copy the whole message into a buffer of at least [length t] bytes. *)

val to_string : t -> string

val fill_pattern : t -> off:int -> len:int -> stream_off:int -> unit
(** Write the deterministic payload pattern used by the workloads: byte
    [i] of the stream is [(stream_off + i) mod 251]. *)

val check_pattern : t -> off:int -> len:int -> stream_off:int -> bool
(** Verify the pattern written by {!fill_pattern}. *)

val head_view : t -> len:int -> (Mpool.mnode * Bytes.t * int) option
(** [head_view t ~len] exposes the first part's node, buffer, and the
    absolute byte offset of message offset 0 within it, when that part
    covers at least [len] bytes — the single-pass header fast path for
    protocol encode/decode.  Readers may use the view freely; a writer
    must call {!Mpool.bump_gen} on the node before storing and may
    refresh the sum memo ({!Mpool.cache_sum}) only with a sum of the
    final byte values. *)

val iter_slices : t -> (Bytes.t -> int -> int -> unit) -> unit
(** Apply the function to each underlying (buffer, offset, length) slice in
    order; used by the checksum. *)

val iter_parts : t -> (Mpool.mnode -> int -> int -> unit) -> unit
(** Like {!iter_slices} but exposing the node, so callers can consult
    the per-node checksum-sum memo ({!Mpool.cached_sum}).  Treat the
    node's bytes as read-only: writes that bypass the [Msg] mutators do
    not bump the write generation and would poison the memo. *)

val parts : t -> int
(** Number of underlying node views (observability). *)
