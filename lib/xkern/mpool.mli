(** MNode allocator: the memory behind the x-kernel message tool.

    MNodes are reference-counted buffers (the x-kernel analogue of mbuf
    clusters).  Reference counts are manipulated with the platform's
    counter mode — LL/SC atomics or lock-inc-unlock (Section 5.2).

    Allocation either goes to the global allocator, whose internal lock
    serialises all CPUs (malloc's lock in the paper), or — when the
    platform enables message caching (Section 6) — hits a per-thread LIFO
    free cache, which costs no locking and reuses memory last touched by
    the same processor.

    The per-thread caches are held in a tid-indexed array, so the alloc
    and free fast paths do a bounds check plus two array loads and never
    a hash-table lookup; the only non-O(1) step is the table growth the
    first time a new tid touches the pool ({!cache_table_growths} counts
    those, so tests can pin the fast path to zero table traffic). *)

type t
(** The allocator. *)

type mnode
(** A reference-counted buffer. *)

exception Out_of_mnodes of { requested : int; live : int; capacity : int }
(** Raised by {!alloc} when the pool is exhausted: [live] nodes are
    already out (per-thread caches hold only dead nodes, so they cannot
    help) and the pool was created with a bound of [capacity].  A real
    x-kernel returns [MSG_ERROR] here; in the simulator the exception
    propagates out of [Sim.run] so tests can assert on exhaustion
    instead of silently growing the heap without bound. *)

val create : ?capacity:int -> Pnp_engine.Platform.t -> t
(** [capacity] bounds the number of simultaneously live MNodes
    (default: unbounded).  Must be positive. *)

val alloc : t -> int -> mnode
(** [alloc t n] returns an MNode with capacity at least [n] and reference
    count 1.

    @raise Out_of_mnodes when [capacity] live nodes are already out. *)

val incref : t -> mnode -> unit
val decref : t -> mnode -> unit
(** Drop a reference; at zero the node returns to the caller's LIFO cache
    (if caching is on and the cache has room) or to the global allocator. *)

val data : mnode -> Bytes.t
val capacity : mnode -> int
val refs : mnode -> int

(** {2 Statistics (for the Section 6 experiment and tests)} *)

val allocations : t -> int
val cache_hits : t -> int
val global_allocations : t -> int
val live_nodes : t -> int
(** Nodes currently allocated (refcount > 0); zero after clean teardown. *)

val pool_capacity : t -> int
(** The bound given at creation ([max_int] when unbounded). *)

val cache_table_growths : t -> int
(** Times the tid-indexed cache table had to grow (a new tid beyond the
    table's capacity touched the pool).  Steady-state allocation and
    free must not move this counter: the hot path is array indexing
    only.  Regression tests assert it stays flat across alloc/free
    bursts once every thread has touched the pool. *)
