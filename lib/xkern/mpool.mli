(** MNode allocator: the memory behind the x-kernel message tool.

    MNodes are reference-counted buffers (the x-kernel analogue of mbuf
    clusters).  Reference counts are manipulated with the platform's
    counter mode — LL/SC atomics or lock-inc-unlock (Section 5.2).

    Allocation either goes to the global allocator, whose internal lock
    serialises all CPUs (malloc's lock in the paper), or — when the
    platform enables message caching (Section 6) — hits a per-thread LIFO
    free cache, which costs no locking and reuses memory last touched by
    the same processor.

    The per-thread caches are held in a tid-indexed array, so the alloc
    and free fast paths do a bounds check plus two array loads and never
    a hash-table lookup; the only non-O(1) step is the table growth the
    first time a new tid touches the pool ({!cache_table_growths} counts
    those, so tests can pin the fast path to zero table traffic). *)

type t
(** The allocator. *)

type mnode
(** A reference-counted buffer. *)

exception Out_of_mnodes of { requested : int; live : int; capacity : int }
(** Raised by {!alloc} when the pool is exhausted: [live] nodes are
    already out (per-thread caches hold only dead nodes, so they cannot
    help) and the pool was created with a bound of [capacity].  A real
    x-kernel returns [MSG_ERROR] here; in the simulator the exception
    propagates out of [Sim.run] so tests can assert on exhaustion
    instead of silently growing the heap without bound. *)

val create : ?capacity:int -> ?soft_watermark:int -> Pnp_engine.Platform.t -> t
(** [capacity] bounds the number of simultaneously live MNodes
    (default: unbounded).  Must be positive.

    [soft_watermark] sets the graceful-degradation threshold (see
    {!under_pressure}); it must be in [1, capacity].  Defaults to
    [capacity / 2] for bounded pools and to "never" for unbounded ones.
    The gap between the watermark and the hard capacity is the protocol
    headroom budget: admission-controlled producers ({!await_headroom})
    stop at the watermark, leaving room for protocol-internal transients
    (header pushes, ACK emission, retransmission) that must not block. *)

val alloc : t -> int -> mnode
(** [alloc t n] returns an MNode with capacity at least [n] and reference
    count 1.

    @raise Out_of_mnodes when [capacity] live nodes are already out. *)

val try_alloc : t -> int -> mnode option
(** Wire-boundary variant of {!alloc}: [None] instead of raising when the
    pool is at hard capacity, so drivers can turn allocation failure into
    an accounted per-cause drop (a NIC dropping on mbuf exhaustion)
    rather than an escaped exception.  Denials count in {!refusals}. *)

(** {2 Graceful degradation} *)

val under_pressure : t -> bool
(** The pool is at or above its soft watermark.  Producers that can shed
    or defer load should do so while this holds. *)

val headroom : t -> int
(** Nodes left before hard capacity ([max_int] when unbounded). *)

val await_headroom : t -> unit
(** Admission control: block the calling simulated thread until the pool
    is below its soft watermark.  Returns immediately when not under
    pressure or when called outside a simulated thread.  Waiters are
    woken (in registration order) by the {!decref} that takes the pool
    back below the watermark; a waiter on a pool that never drains is a
    liveness stall, which the watchdog reports as a finding. *)

val set_pressure_hook : t -> (bool -> unit) -> unit
(** Admission-control hook: called with [true] when the pool crosses its
    soft watermark upward and [false] when it falls back below.  Runs
    synchronously inside the alloc/decref that crossed the edge, so it
    must not block; drivers use it to start/stop shedding load. *)

val soft_watermark : t -> int
(** The pressure threshold ([max_int] when the pool never presses). *)

val pressure_entries : t -> int
(** Times the pool crossed the soft watermark upward. *)

val refusals : t -> int
(** {!try_alloc} denials at hard capacity (accounted wire-boundary
    drops). *)

val incref : t -> mnode -> unit
val decref : t -> mnode -> unit
(** Drop a reference; at zero the node returns to the caller's LIFO cache
    (if caching is on and the cache has room) or to the global allocator. *)

val data : mnode -> Bytes.t
val capacity : mnode -> int
val refs : mnode -> int

(** {2 Checksum-sum memo}

    A one-slot per-node cache of the 16-bit one's-complement sum over a
    byte range of the node, validated by a write-generation counter that
    {!Msg} bumps on every mutation of the node's bytes.  Payloads shared
    via [Msg.dup] (driver templates, the TCP retransmission queue) are
    summed once and then checksummed in O(1) — the host-side analogue of
    checksum offload.  Purely a host-cost cache: a hit returns exactly
    the sum a fresh scan would, which the fault-plan digest tests pin.
    [PNP_NO_COALESCE=1] (or {!set_sum_cache}[ false]) disables lookups
    for A/B determinism diffs. *)

val bump_gen : t -> mnode -> unit
(** Record that the node's bytes changed (invalidates the cached sum).
    Takes the pool so the write is visible to tracing: under an enabled
    tracer every bump emits an [Mnode_write] event, which is what lets
    the arena lifetime sanitizer catch writes to dead or recycled
    nodes. *)

val cached_sum : mnode -> off:int -> len:int -> int
(** The cached sum for exactly this range at the current generation, or
    [-1] (sums are 16-bit, so negative is free) on miss/disabled. *)

val cache_sum : mnode -> off:int -> len:int -> int -> unit
(** Store the sum for this range at the current generation. *)

val set_sum_cache : bool -> unit
val sum_cache_enabled : unit -> bool

(** {2 Buffer arena}

    Host allocation policy for the bytes behind cached-class nodes: the
    pool draws buffers from per-class free lists and recycles them when a
    node's reference count reaches zero outside the simulated per-thread
    caches, instead of handing every global allocation a fresh
    [Bytes.create].  The simulated malloc/cache charges are untouched, so
    figures are identical with the arena on or off
    ([PNP_NO_ARENA=1] or {!set_arena}[ false] disables it for A/B
    determinism diffs).

    Safety with retransmission-queue sharing: a buffer re-enters the free
    lists only at reference count zero, so a node still held anywhere —
    the rexmt queue's [Msg.dup], a reassembly queue, an in-flight frame —
    keeps its buffer; [Msg.unshare]'s copy-out escape hatch composes
    unchanged (the aliasing regression test pins this). *)

val set_arena : bool -> unit
val arena_enabled : unit -> bool

val quiesce : ?retain:int -> t -> unit
(** Reset-at-quiescence: drop recycled buffers beyond [retain] (default
    64) per class back to the GC.  Call only when no simulated thread is
    running (between run phases, teardown); live nodes are unaffected. *)

val arena_hwm : t -> int
(** Peak bytes simultaneously inside live arena-drawn nodes — the arena
    high-water mark reported by the host profile. *)

val arena_out : t -> int
(** Bytes currently inside live arena-drawn nodes. *)

(** {2 Statistics (for the Section 6 experiment and tests)} *)

val allocations : t -> int
val cache_hits : t -> int
val global_allocations : t -> int
val live_nodes : t -> int
(** Nodes currently allocated (refcount > 0); zero after clean teardown. *)

val pool_capacity : t -> int
(** The bound given at creation ([max_int] when unbounded). *)

val cache_table_growths : t -> int
(** Times the tid-indexed cache table had to grow (a new tid beyond the
    table's capacity touched the pool).  Steady-state allocation and
    free must not move this counter: the hot path is array indexing
    only.  Regression tests assert it stays flat across alloc/free
    bursts once every thread has touched the pool. *)
