type part = { mutable node : Mpool.mnode; mutable off : int; mutable len : int }

type t = { pool : Mpool.t; mutable parts : part list; mutable total : int }

let create pool n =
  if n < 0 then invalid_arg "Msg.create: negative length";
  if n = 0 then { pool; parts = []; total = 0 }
  else
    let node = Mpool.alloc pool n in
    { pool; parts = [ { node; off = 0; len = n } ]; total = n }

let length t = t.total
let pool t = t.pool

let of_string pool s =
  let t = create pool (String.length s) in
  (match t.parts with
   | [ p ] ->
     Mpool.bump_gen pool p.node;
     Bytes.blit_string s 0 (Mpool.data p.node) p.off (String.length s)
   | _ -> assert (String.length s = 0));
  t

let push t n =
  if n < 0 then invalid_arg "Msg.push: negative length";
  if n > 0 then begin
    let node = Mpool.alloc t.pool n in
    t.parts <- { node; off = 0; len = n } :: t.parts;
    t.total <- t.total + n
  end

(* Single-part messages dominate the hot paths (a header node pushed on a
   payload node is consumed part by part), so [pop]/[truncate] and the
   byte accessors below special-case one-part messages: adjust the part
   in place, no list walk, no tuple from [locate]. *)

let pop_slow t n =
  let rec strip n parts =
    if n = 0 then parts
    else
      match parts with
      | [] -> assert false
      | p :: rest ->
        if p.len <= n then begin
          Mpool.decref t.pool p.node;
          strip (n - p.len) rest
        end
        else begin
          p.off <- p.off + n;
          p.len <- p.len - n;
          parts
        end
  in
  t.parts <- strip n t.parts;
  t.total <- t.total - n

let pop t n =
  if n < 0 || n > t.total then invalid_arg "Msg.pop: bad length";
  match t.parts with
  | [ p ] when n < p.len ->
    p.off <- p.off + n;
    p.len <- p.len - n;
    t.total <- t.total - n
  | _ -> pop_slow t n

let truncate_slow t n =
  let rec keep n parts =
    if n = 0 then begin
      List.iter (fun p -> Mpool.decref t.pool p.node) parts;
      []
    end
    else
      match parts with
      | [] -> assert false
      | p :: rest ->
        if p.len <= n then p :: keep (n - p.len) rest
        else begin
          p.len <- n;
          p :: keep 0 rest
        end
  in
  t.parts <- keep n t.parts;
  t.total <- n

let truncate t n =
  if n < 0 || n > t.total then invalid_arg "Msg.truncate: bad length";
  match t.parts with
  | [ p ] when n > 0 ->
    p.len <- n;
    t.total <- n
  | _ -> truncate_slow t n

let dup t =
  let parts =
    List.map
      (fun p ->
        Mpool.incref t.pool p.node;
        { node = p.node; off = p.off; len = p.len })
      t.parts
  in
  { pool = t.pool; parts; total = t.total }

let append t u =
  if t == u then invalid_arg "Msg.append: cannot append a message to itself";
  t.parts <- t.parts @ u.parts;
  t.total <- t.total + u.total;
  u.parts <- [];
  u.total <- 0

let destroy t =
  List.iter (fun p -> Mpool.decref t.pool p.node) t.parts;
  t.parts <- [];
  t.total <- 0

let unshare t ~off =
  if off < 0 || off >= t.total then invalid_arg "Msg.unshare: out of bounds";
  let rec find parts off =
    match parts with
    | [] -> assert false
    | p :: rest -> if off < p.len then p else find rest (off - p.len)
  in
  let p = find t.parts off in
  if Mpool.refs p.node > 1 then begin
    let fresh = Mpool.alloc t.pool p.len in
    Mpool.bump_gen t.pool fresh;
    Bytes.blit (Mpool.data p.node) p.off (Mpool.data fresh) 0 p.len;
    (* The copy is byte-identical, so the source's cached checksum sum —
       when it covers exactly the copied view — carries over. *)
    let s = Mpool.cached_sum p.node ~off:p.off ~len:p.len in
    if s >= 0 then Mpool.cache_sum fresh ~off:0 ~len:p.len s;
    Mpool.decref t.pool p.node;
    p.node <- fresh;
    p.off <- 0
  end

(* Locate message offset [off]: the part containing it and the index
   within that part's view. *)
let rec locate parts off =
  match parts with
  | [] -> invalid_arg "Msg: offset out of bounds"
  | p :: rest -> if off < p.len then (p, off) else locate rest (off - p.len)

let get_u8 t off =
  if off < 0 || off >= t.total then invalid_arg "Msg.get_u8: out of bounds";
  match t.parts with
  | [ p ] -> Char.code (Bytes.get (Mpool.data p.node) (p.off + off))
  | parts ->
    let p, i = locate parts off in
    Char.code (Bytes.get (Mpool.data p.node) (p.off + i))

let set_u8 t off v =
  if off < 0 || off >= t.total then invalid_arg "Msg.set_u8: out of bounds";
  match t.parts with
  | [ p ] ->
    Mpool.bump_gen t.pool p.node;
    Bytes.set (Mpool.data p.node) (p.off + off) (Char.chr (v land 0xff))
  | parts ->
    let p, i = locate parts off in
    Mpool.bump_gen t.pool p.node;
    Bytes.set (Mpool.data p.node) (p.off + i) (Char.chr (v land 0xff))

(* Multi-byte accessors take a single-part fast path (no [locate], no
   tuple) when the message is one part — the overwhelmingly common case,
   since headers live in a single pushed node.  Multi-part messages
   locate the containing part once and fall back to the byte path only
   when the range straddles a part boundary.  The original code walked
   the part list once per byte: four list walks for a u32. *)

let get_u16 t off =
  if off < 0 || off + 2 > t.total then invalid_arg "Msg.get_u16: out of bounds";
  match t.parts with
  | [ p ] -> Bytes.get_uint16_be (Mpool.data p.node) (p.off + off)
  | parts ->
    let p, i = locate parts off in
    if i + 2 <= p.len then Bytes.get_uint16_be (Mpool.data p.node) (p.off + i)
    else (get_u8 t off lsl 8) lor get_u8 t (off + 1)

let set_u16 t off v =
  if off < 0 || off + 2 > t.total then invalid_arg "Msg.set_u16: out of bounds";
  match t.parts with
  | [ p ] ->
    Mpool.bump_gen t.pool p.node;
    Bytes.set_uint16_be (Mpool.data p.node) (p.off + off) (v land 0xffff)
  | parts ->
    let p, i = locate parts off in
    if i + 2 <= p.len then begin
      Mpool.bump_gen t.pool p.node;
      Bytes.set_uint16_be (Mpool.data p.node) (p.off + i) (v land 0xffff)
    end
    else begin
      set_u8 t off (v lsr 8);
      set_u8 t (off + 1) v
    end

let get_u32 t off =
  if off < 0 || off + 4 > t.total then invalid_arg "Msg.get_u32: out of bounds";
  match t.parts with
  | [ p ] ->
    let b = Mpool.data p.node in
    let j = p.off + off in
    (Bytes.get_uint16_be b j lsl 16) lor Bytes.get_uint16_be b (j + 2)
  | parts ->
    let p, i = locate parts off in
    if i + 4 <= p.len then begin
      let b = Mpool.data p.node in
      let j = p.off + i in
      (Bytes.get_uint16_be b j lsl 16) lor Bytes.get_uint16_be b (j + 2)
    end
    else (get_u16 t off lsl 16) lor get_u16 t (off + 2)

let set_u32 t off v =
  if off < 0 || off + 4 > t.total then invalid_arg "Msg.set_u32: out of bounds";
  match t.parts with
  | [ p ] ->
    Mpool.bump_gen t.pool p.node;
    let b = Mpool.data p.node in
    let j = p.off + off in
    Bytes.set_uint16_be b j ((v lsr 16) land 0xffff);
    Bytes.set_uint16_be b (j + 2) (v land 0xffff)
  | parts ->
    let p, i = locate parts off in
    if i + 4 <= p.len then begin
      Mpool.bump_gen t.pool p.node;
      let b = Mpool.data p.node in
      let j = p.off + i in
      Bytes.set_uint16_be b j ((v lsr 16) land 0xffff);
      Bytes.set_uint16_be b (j + 2) (v land 0xffff)
    end
    else begin
      set_u16 t off (v lsr 16);
      set_u16 t (off + 2) v
    end

let head_view t ~len =
  match t.parts with
  | p :: _ when p.len >= len -> Some (p.node, Mpool.data p.node, p.off)
  | _ -> None

let iter_slices t f =
  List.iter (fun p -> if p.len > 0 then f (Mpool.data p.node) p.off p.len) t.parts

let iter_parts t f =
  List.iter (fun p -> if p.len > 0 then f p.node p.off p.len) t.parts

let blit_to_bytes t buf =
  (* lint:allow msg-bump-gen: writes into the caller's buffer, never node bytes *)
  if Bytes.length buf < t.total then invalid_arg "Msg.blit_to_bytes: buffer too small";
  let pos = ref 0 in
  iter_slices t (fun b off len ->
      Bytes.blit b off buf !pos len;
      pos := !pos + len)

let to_string t =
  let buf = Bytes.create t.total in
  blit_to_bytes t buf;
  Bytes.to_string buf

let pattern_byte stream_off i = (stream_off + i) mod 251

(* Apply [f node buf pos count done_so_far] to the byte ranges covering
   message offsets [off, off+len); [done_so_far] is the count of range
   bytes already visited.  Shared fast path for fill/check; the node is
   passed so writers can bump its generation. *)
let iter_range t ~off ~len f =
  if off < 0 || len < 0 || off + len > t.total then
    invalid_arg "Msg.iter_range: out of bounds";
  let skip = ref off and remaining = ref len and visited = ref 0 in
  iter_parts t (fun node boff blen ->
      if !remaining > 0 then begin
        if !skip >= blen then skip := !skip - blen
        else begin
          let start = boff + !skip in
          let count = min (blen - !skip) !remaining in
          skip := 0;
          f node (Mpool.data node) start count !visited;
          visited := !visited + count;
          remaining := !remaining - count
        end
      end)

(* The pattern is periodic (251), so a precomputed block turns fill into
   [Bytes.blit] and check into 8-bytes-at-a-time word compares instead
   of a mod per byte — the drivers pattern every payload they inject and
   verify, which made the byte loops one of the hottest host paths. *)
let pattern_period = 251
let pattern_block_len = 8192 (* > max mnode class (4608) + one period *)

let pattern_block =
  Bytes.init pattern_block_len (fun k -> Char.chr (pattern_byte 0 k))

(* Largest multiple of the period that still fits a window of the block:
   chunking by it keeps the phase unchanged across chunks. *)
let pattern_chunk =
  (pattern_block_len - pattern_period) / pattern_period * pattern_period

let fill_pattern t ~off ~len ~stream_off =
  iter_range t ~off ~len (fun node b start count visited ->
      Mpool.bump_gen t.pool node;
      let phase = ref ((stream_off + visited) mod pattern_period) in
      let pos = ref start and left = ref count in
      while !left > 0 do
        let n = min !left pattern_chunk in
        Bytes.blit pattern_block !phase b !pos n;
        phase := (!phase + n) mod pattern_period;
        pos := !pos + n;
        left := !left - n
      done)

let check_pattern t ~off ~len ~stream_off =
  let ok = ref true in
  iter_range t ~off ~len (fun _node b start count visited ->
      if !ok then begin
        let phase = ref ((stream_off + visited) mod pattern_period) in
        let pos = ref start and left = ref count in
        while !ok && !left > 0 do
          let n = min !left pattern_chunk in
          let i = ref 0 in
          while !ok && !i + 8 <= n do
            if
              Bytes.get_int64_ne b (!pos + !i)
              <> Bytes.get_int64_ne pattern_block (!phase + !i)
            then ok := false
            else i := !i + 8
          done;
          while !ok && !i < n do
            if
              Bytes.unsafe_get b (!pos + !i)
              <> Bytes.unsafe_get pattern_block (!phase + !i)
            then ok := false
            else incr i
          done;
          phase := (!phase + n) mod pattern_period;
          pos := !pos + n;
          left := !left - n
        done
      end);
  !ok

let parts t = List.length t.parts
