open Pnp_engine

type mnode = {
  id : int;
  data : Bytes.t;
  size_class : int;
  refs : Atomic_ctr.t;
}

(* Two cached size classes: header nodes and MTU-sized data nodes.  Larger
   requests are allocated exactly and never cached. *)
let class_capacities = [| 256; 4608 |]

let class_of n =
  if n <= class_capacities.(0) then 0 else if n <= class_capacities.(1) then 1 else 2

let cache_limit = 64

exception Out_of_mnodes of { requested : int; live : int; capacity : int }

(* One thread's free cache: a LIFO per size class, with the depth kept
   alongside so the free path never walks the list to count it. *)
type tid_cache = {
  nodes : mnode list array; (* per-class LIFO *)
  depths : int array;
}

type t = {
  plat : Platform.t;
  capacity : int; (* max live mnodes; max_int = unbounded *)
  malloc_lock : Lock.t;
  mutable caches : tid_cache array; (* tid-indexed; no hashing on the hot path *)
  mutable cache_table_growths : int;
  mutable next_id : int;
  mutable allocations : int;
  mutable cache_hits : int;
  mutable global_allocations : int;
  mutable live : int;
}

(* Instruction budgets: a cache hit is a couple of pointer operations; the
   global path runs the allocator under its lock and touches cold memory. *)
let cache_hit_instrs = 18
let malloc_instrs = 120
let free_instrs = 60

let trace_alloc t ~hit =
  let sim = t.plat.Platform.sim in
  let tracer = Sim.tracer sim in
  if Trace.enabled tracer && Sim.in_thread sim then
    let th = Sim.self sim in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th)
      (Trace.Mpool_alloc { hit })

let create ?(capacity = max_int) plat =
  if capacity <= 0 then invalid_arg "Mpool.create: capacity must be positive";
  {
    plat;
    capacity;
    malloc_lock =
      Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair ~name:"malloc";
    caches = [||];
    cache_table_growths = 0;
    next_id = 0;
    allocations = 0;
    cache_hits = 0;
    global_allocations = 0;
    live = 0;
  }

(* Extend the tid-indexed table to cover [tid], creating a cache per new
   slot.  The only non-O(1) step in the cache path, and it runs once per
   table doubling — the fast path below is a bounds check and two array
   loads, never a hash lookup. *)
let grow_caches t tid =
  t.cache_table_growths <- t.cache_table_growths + 1;
  let cap = max 16 (max (tid + 1) (2 * Array.length t.caches)) in
  let fresh () = { nodes = Array.make 2 []; depths = Array.make 2 0 } in
  let table = Array.init cap (fun i ->
      if i < Array.length t.caches then t.caches.(i) else fresh ())
  in
  t.caches <- table

let thread_cache t =
  let tid = Sim.tid (Sim.self t.plat.Platform.sim) in
  if tid >= Array.length t.caches then grow_caches t tid;
  Array.unsafe_get t.caches tid

let fresh_node t n cls =
  let cap = if cls = 2 then n else class_capacities.(cls) in
  let node =
    {
      id = t.next_id;
      data = Bytes.create cap;
      size_class = cls;
      refs = Platform.refcnt t.plat ~name:"mnode" ~init:1;
    }
  in
  t.next_id <- t.next_id + 1;
  node

let global_alloc t n cls =
  t.global_allocations <- t.global_allocations + 1;
  if Sim.in_thread t.plat.Platform.sim then begin
    Lock.acquire t.malloc_lock;
    Platform.charge_instrs t.plat malloc_instrs;
    Lock.release t.malloc_lock;
    (* Freshly allocated memory is cold for this CPU. *)
    Platform.charge t.plat (Arch.touch_ns t.plat.Platform.arch 128)
  end;
  fresh_node t n cls

let alloc t n =
  if n < 0 then invalid_arg "Mpool.alloc: negative size";
  if t.live >= t.capacity then
    raise (Out_of_mnodes { requested = n; live = t.live; capacity = t.capacity });
  t.allocations <- t.allocations + 1;
  t.live <- t.live + 1;
  let cls = class_of n in
  let use_cache =
    cls < 2 && t.plat.Platform.message_caching && Sim.in_thread t.plat.Platform.sim
  in
  if not use_cache then begin
    trace_alloc t ~hit:false;
    global_alloc t n cls
  end
  else begin
    let cache = thread_cache t in
    match cache.nodes.(cls) with
    | node :: rest ->
      cache.nodes.(cls) <- rest;
      cache.depths.(cls) <- cache.depths.(cls) - 1;
      t.cache_hits <- t.cache_hits + 1;
      trace_alloc t ~hit:true;
      Platform.charge_instrs t.plat cache_hit_instrs;
      ignore (Atomic_ctr.incr node.refs);
      node
    | [] ->
      trace_alloc t ~hit:false;
      global_alloc t n cls
  end

let incref t node =
  ignore t;
  ignore (Atomic_ctr.incr node.refs)

let global_free t =
  if Sim.in_thread t.plat.Platform.sim then begin
    Lock.acquire t.malloc_lock;
    Platform.charge_instrs t.plat free_instrs;
    Lock.release t.malloc_lock
  end

let decref t node =
  let r = Atomic_ctr.decr node.refs in
  if r < 0 then failwith "Mpool.decref: reference count went negative";
  if r = 0 then begin
    t.live <- t.live - 1;
    let use_cache =
      node.size_class < 2
      && t.plat.Platform.message_caching
      && Sim.in_thread t.plat.Platform.sim
    in
    if use_cache then begin
      let cache = thread_cache t in
      let cls = node.size_class in
      if cache.depths.(cls) < cache_limit then begin
        Platform.charge_instrs t.plat cache_hit_instrs;
        cache.nodes.(cls) <- node :: cache.nodes.(cls);
        cache.depths.(cls) <- cache.depths.(cls) + 1
      end
      else global_free t
    end
    else global_free t
  end

let data node = node.data
let capacity node = Bytes.length node.data
let refs node = Atomic_ctr.get node.refs

let pool_capacity t = t.capacity
let allocations t = t.allocations
let cache_hits t = t.cache_hits
let global_allocations t = t.global_allocations
let live_nodes t = t.live
let cache_table_growths t = t.cache_table_growths

(* id is kept for debugging/printing even though nothing reads it yet. *)
let _ = fun (n : mnode) -> n.id
