open Pnp_engine

type mnode = {
  id : int;
  data : Bytes.t;
  size_class : int;
  from_arena : bool; (* buffer drawn from the pool's arena free lists *)
  refs : Atomic_ctr.t;
  (* One-slot checksum-sum memo (see Inet_cksum.sum_slices): the 16-bit
     one's-complement sum of data[sum_off, sum_off+sum_len) as of write
     generation [sum_gen].  Msg bumps [gen] on every mutation of the
     node's bytes, so a segment duplicated from a template (refs > 1 on
     the rexmt queue, drivers' payload sharing) is summed once and then
     served in O(1) — the host-side "coalescing" of repeated data
     touches that real stacks get from hardware checksum offload. *)
  mutable gen : int;
  mutable sum_gen : int; (* -1 = no cached sum *)
  mutable sum_off : int;
  mutable sum_len : int;
  mutable sum_val : int;
}

(* Two cached size classes: header nodes and MTU-sized data nodes.  Larger
   requests are allocated exactly and never cached. *)
let class_capacities = [| 256; 4608 |]

let class_of n =
  if n <= class_capacities.(0) then 0 else if n <= class_capacities.(1) then 1 else 2

let cache_limit = 64

exception Out_of_mnodes of { requested : int; live : int; capacity : int }

(* One thread's free cache: a LIFO per size class, with the depth kept
   alongside so the free path never walks the list to count it. *)
type tid_cache = {
  nodes : mnode list array; (* per-class LIFO *)
  depths : int array;
}

type t = {
  plat : Platform.t;
  capacity : int; (* max live mnodes; max_int = unbounded *)
  malloc_lock : Lock.t;
  mutable caches : tid_cache array; (* tid-indexed; no hashing on the hot path *)
  mutable cache_table_growths : int;
  mutable next_id : int;
  mutable allocations : int;
  mutable cache_hits : int;
  mutable global_allocations : int;
  mutable live : int;
  (* Host-side buffer arena (PNP_NO_ARENA=1 disables): the Bytes behind
     cached-class nodes are drawn from per-class free lists and recycled
     when a node's refcount reaches zero outside the simulated per-thread
     caches.  Purely host allocation policy — the simulated malloc/cache
     charges above are untouched — so figures are identical either way.
     A buffer can only re-enter the free lists at refcount zero, which is
     what keeps recycling invisible to retransmission-queue sharing
     ([Msg.dup]/[Msg.unshare]): a node still referenced anywhere keeps
     its buffer. *)
  arena_free : Bytes.t list array; (* per cached class *)
  arena_free_n : int array;
  mutable arena_out : int; (* bytes inside arena-drawn nodes now live *)
  mutable arena_hwm : int; (* peak of [arena_out] *)
  (* Graceful degradation: a soft high-watermark below the hard capacity.
     Crossing it upward flips [in_pressure] and fires the admission-control
     hook; falling back below wakes any threads parked in
     [await_headroom].  The gap between the watermark and the hard
     capacity is the protocol's headroom budget: admission-controlled
     producers stop at the watermark so that protocol-internal transients
     (header pushes, ACK emission, retransmission) never hit the hard
     wall.  [soft = max_int] (unbounded pools) makes every check a single
     always-false compare, so bench-path pools pay nothing. *)
  soft : int;
  mutable in_pressure : bool;
  mutable pressure_entries : int;
  mutable refusals : int; (* try_alloc calls denied at hard capacity *)
  mutable headroom_waiters : (Pnp_util.Units.ns -> unit) list; (* LIFO; woken in reverse *)
  mutable pressure_hook : (bool -> unit) option;
}

(* Instruction budgets: a cache hit is a couple of pointer operations; the
   global path runs the allocator under its lock and touches cold memory. *)
let cache_hit_instrs = 18
let malloc_instrs = 120
let free_instrs = 60

let trace_alloc t ~hit =
  let sim = t.plat.Platform.sim in
  let tracer = Sim.tracer sim in
  if Trace.enabled tracer && Sim.in_thread sim then
    let th = Sim.self sim in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th)
      (Trace.Mpool_alloc { hit })

(* Lifecycle events for the arena sanitizer (Pnp_analysis.Lifetime):
   alloc / ref / unref / recycle / write, keyed by node id.  Same guard
   shape as [trace_alloc]: free when tracing is off, and silent outside
   simulated threads (setup/teardown traffic has no tid to charge). *)
let trace_node t ev =
  let sim = t.plat.Platform.sim in
  let tracer = Sim.tracer sim in
  if Trace.enabled tracer && Sim.in_thread sim then
    let th = Sim.self sim in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th) ev

let create ?(capacity = max_int) ?soft_watermark plat =
  if capacity <= 0 then invalid_arg "Mpool.create: capacity must be positive";
  let soft =
    match soft_watermark with
    | Some s ->
      if s <= 0 || s > capacity then
        invalid_arg "Mpool.create: soft watermark out of range";
      s
    | None -> if capacity = max_int then max_int else max 1 (capacity / 2)
  in
  {
    plat;
    capacity;
    soft;
    in_pressure = false;
    pressure_entries = 0;
    refusals = 0;
    headroom_waiters = [];
    pressure_hook = None;
    malloc_lock =
      Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair ~name:"malloc";
    caches = [||];
    cache_table_growths = 0;
    next_id = 0;
    allocations = 0;
    cache_hits = 0;
    global_allocations = 0;
    live = 0;
    arena_free = Array.make 2 [];
    arena_free_n = Array.make 2 0;
    arena_out = 0;
    arena_hwm = 0;
  }

(* Extend the tid-indexed table to cover [tid], creating a cache per new
   slot.  The only non-O(1) step in the cache path, and it runs once per
   table doubling — the fast path below is a bounds check and two array
   loads, never a hash lookup. *)
let grow_caches t tid =
  t.cache_table_growths <- t.cache_table_growths + 1;
  let cap = max 16 (max (tid + 1) (2 * Array.length t.caches)) in
  let fresh () = { nodes = Array.make 2 []; depths = Array.make 2 0 } in
  let table = Array.init cap (fun i ->
      if i < Array.length t.caches then t.caches.(i) else fresh ())
  in
  t.caches <- table

let thread_cache t =
  let tid = Sim.tid (Sim.self t.plat.Platform.sim) in
  if tid >= Array.length t.caches then grow_caches t tid;
  Array.unsafe_get t.caches tid

(* Arena toggle (host allocation policy only; see the [t] field docs).
   PNP_NO_ARENA=1 gives the reference fresh-Bytes-per-node behaviour for
   A/B determinism diffs. *)
let arena_default =
  ref
    (match Sys.getenv_opt "PNP_NO_ARENA" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

let set_arena on = arena_default := on
let arena_enabled () = !arena_default

(* Bound on recycled buffers kept per class: enough to absorb steady-state
   churn without pinning an allocation spike's memory forever. *)
let arena_retain = 1024

let arena_take t cls cap =
  t.arena_out <- t.arena_out + cap;
  if t.arena_out > t.arena_hwm then t.arena_hwm <- t.arena_out;
  match t.arena_free.(cls) with
  | b :: rest ->
    t.arena_free.(cls) <- rest;
    t.arena_free_n.(cls) <- t.arena_free_n.(cls) - 1;
    b
  | [] -> Bytes.create cap

(* A dead node's buffer returns to the free lists; only ever called at
   refcount zero for nodes not parked in a simulated per-thread cache. *)
let arena_recycle t node =
  if node.from_arena then begin
    trace_node t (Trace.Mnode_recycle { node = node.id });
    t.arena_out <- t.arena_out - Bytes.length node.data;
    let cls = node.size_class in
    if t.arena_free_n.(cls) < arena_retain then begin
      t.arena_free.(cls) <- node.data :: t.arena_free.(cls);
      t.arena_free_n.(cls) <- t.arena_free_n.(cls) + 1
    end
  end

let fresh_node t n cls =
  let cap = if cls = 2 then n else class_capacities.(cls) in
  let from_arena = cls < 2 && !arena_default in
  let node =
    {
      id = t.next_id;
      data = (if from_arena then arena_take t cls cap else Bytes.create cap);
      size_class = cls;
      from_arena;
      refs = Platform.refcnt t.plat ~name:"mnode" ~init:1;
      gen = 0;
      sum_gen = -1;
      sum_off = 0;
      sum_len = 0;
      sum_val = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  trace_node t (Trace.Mnode_alloc { node = node.id });
  node

let global_alloc t n cls =
  t.global_allocations <- t.global_allocations + 1;
  if Sim.in_thread t.plat.Platform.sim then begin
    Lock.acquire t.malloc_lock;
    Platform.charge_instrs t.plat malloc_instrs;
    Lock.release t.malloc_lock;
    (* Freshly allocated memory is cold for this CPU. *)
    Platform.charge t.plat (Arch.touch_ns t.plat.Platform.arch 128)
  end;
  fresh_node t n cls

(* Pressure edges.  Both are out of line: the hot paths only pay a
   compare-and-branch against [soft] / [in_pressure]. *)
let enter_pressure t =
  t.in_pressure <- true;
  t.pressure_entries <- t.pressure_entries + 1;
  match t.pressure_hook with Some f -> f true | None -> ()

let leave_pressure t =
  t.in_pressure <- false;
  (match t.pressure_hook with Some f -> f false | None -> ());
  match t.headroom_waiters with
  | [] -> ()
  | ws ->
    t.headroom_waiters <- [];
    let now = Sim.now t.plat.Platform.sim in
    (* Registration order (the list is a LIFO): deterministic wakeups. *)
    List.iter (fun resume -> resume now) (List.rev ws)

let alloc t n =
  if n < 0 then invalid_arg "Mpool.alloc: negative size";
  if t.live >= t.capacity then
    raise (Out_of_mnodes { requested = n; live = t.live; capacity = t.capacity });
  t.allocations <- t.allocations + 1;
  t.live <- t.live + 1;
  if (not t.in_pressure) && t.live >= t.soft then enter_pressure t;
  let cls = class_of n in
  let use_cache =
    cls < 2 && t.plat.Platform.message_caching && Sim.in_thread t.plat.Platform.sim
  in
  if not use_cache then begin
    trace_alloc t ~hit:false;
    global_alloc t n cls
  end
  else begin
    let cache = thread_cache t in
    match cache.nodes.(cls) with
    | node :: rest ->
      cache.nodes.(cls) <- rest;
      cache.depths.(cls) <- cache.depths.(cls) - 1;
      t.cache_hits <- t.cache_hits + 1;
      trace_alloc t ~hit:true;
      Platform.charge_instrs t.plat cache_hit_instrs;
      ignore (Atomic_ctr.incr node.refs);
      (* A cached node comes back to life: 0 -> 1 is a re-arm, not a
         reference taken on a live node, so it traces as an alloc. *)
      trace_node t (Trace.Mnode_alloc { node = node.id });
      node
    | [] ->
      trace_alloc t ~hit:false;
      global_alloc t n cls
  end

let incref t node =
  let r = Atomic_ctr.incr node.refs in
  trace_node t (Trace.Mnode_ref { node = node.id; refs = r })

let global_free t =
  if Sim.in_thread t.plat.Platform.sim then begin
    Lock.acquire t.malloc_lock;
    Platform.charge_instrs t.plat free_instrs;
    Lock.release t.malloc_lock
  end

let decref t node =
  let r = Atomic_ctr.decr node.refs in
  if r < 0 then failwith "Mpool.decref: reference count went negative";
  trace_node t (Trace.Mnode_unref { node = node.id; refs = r });
  if r = 0 then begin
    t.live <- t.live - 1;
    if t.in_pressure && t.live < t.soft then leave_pressure t;
    let use_cache =
      node.size_class < 2
      && t.plat.Platform.message_caching
      && Sim.in_thread t.plat.Platform.sim
    in
    if use_cache then begin
      let cache = thread_cache t in
      let cls = node.size_class in
      if cache.depths.(cls) < cache_limit then begin
        Platform.charge_instrs t.plat cache_hit_instrs;
        cache.nodes.(cls) <- node :: cache.nodes.(cls);
        cache.depths.(cls) <- cache.depths.(cls) + 1
      end
      else begin
        global_free t;
        arena_recycle t node
      end
    end
    else begin
      global_free t;
      arena_recycle t node
    end
  end

(* Wire-boundary allocation: a denial is an accounted drop (the NIC's
   "no mbufs, drop the frame" path), never an exception. *)
let try_alloc t n =
  if t.live >= t.capacity then begin
    t.refusals <- t.refusals + 1;
    None
  end
  else Some (alloc t n)

let under_pressure t = t.in_pressure
let headroom t = if t.capacity = max_int then max_int else t.capacity - t.live

(* Admission control for producers running in simulated threads: park
   until the pool falls back below the soft watermark.  Loops because a
   wakeup races other woken producers re-entering pressure.  Outside a
   simulated thread (setup traffic) this is a no-op — there is nothing
   to suspend. *)
let rec await_headroom t =
  if t.in_pressure && Sim.in_thread t.plat.Platform.sim then begin
    Sim.suspend t.plat.Platform.sim (fun resume ->
        t.headroom_waiters <- resume :: t.headroom_waiters);
    await_headroom t
  end

let set_pressure_hook t f = t.pressure_hook <- Some f

let data node = node.data
let capacity node = Bytes.length node.data
let refs node = Atomic_ctr.get node.refs

(* Checksum-sum memo.  PNP_NO_COALESCE=1 (or [set_sum_cache false])
   turns lookups into unconditional misses for A/B determinism diffs;
   cached and recomputed sums are equal by construction, which the
   fault-plan digest tests pin down. *)
let sum_cache_default =
  ref
    (match Sys.getenv_opt "PNP_NO_COALESCE" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

let set_sum_cache on = sum_cache_default := on
let sum_cache_enabled () = !sum_cache_default

let bump_gen t node =
  node.gen <- node.gen + 1;
  trace_node t (Trace.Mnode_write { node = node.id })

let cached_sum node ~off ~len =
  if
    !sum_cache_default && node.sum_gen = node.gen && node.sum_off = off
    && node.sum_len = len
  then node.sum_val
  else -1

let cache_sum node ~off ~len v =
  if !sum_cache_default then begin
    node.sum_gen <- node.gen;
    node.sum_off <- off;
    node.sum_len <- len;
    node.sum_val <- v
  end

(* Reset at quiescence: at a point where no simulated thread is running
   (between the warmup and measure phases, teardown) the caller lets the
   arena drop surplus recycled buffers back to the GC, so one phase's
   allocation burst does not pin host memory for the rest of the run. *)
let quiesce ?(retain = 64) t =
  for cls = 0 to Array.length t.arena_free - 1 do
    if t.arena_free_n.(cls) > retain then begin
      let rec take n = function
        | b :: rest when n > 0 -> b :: take (n - 1) rest
        | _ -> []
      in
      t.arena_free.(cls) <- take retain t.arena_free.(cls);
      t.arena_free_n.(cls) <- retain
    end
  done

let arena_hwm t = t.arena_hwm
let arena_out t = t.arena_out

let pool_capacity t = t.capacity
let soft_watermark t = t.soft
let pressure_entries t = t.pressure_entries
let refusals t = t.refusals
let allocations t = t.allocations
let cache_hits t = t.cache_hits
let global_allocations t = t.global_allocations
let live_nodes t = t.live
let cache_table_growths t = t.cache_table_growths

(* id is kept for debugging/printing even though nothing reads it yet. *)
let _ = fun (n : mnode) -> n.id
