(** Small statistics helpers for experiment reporting.

    The paper reports each data point as the average of 10 runs with 90%
    confidence intervals; [summary] computes the same quantities for a set
    of per-seed measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  ci90 : float;    (** half-width of the 90% confidence interval *)
  min : float;
  max : float;
}

val summary : float list -> summary
(** [summary xs] summarises a non-empty list of observations.  For n = 1 the
    standard deviation and confidence interval are 0.  Uses Student-t
    critical values for small n (the relevant regime here). *)

val mean : float list -> float

val t_crit : int -> float
(** Two-sided 90% Student-t critical value for the given degrees of
    freedom.  Tabulated through df = 30; beyond that the asymptotic
    normal value 1.645 is returned (the t distribution is within ~1% of
    N(0,1) there).  Returns 0 for df <= 0. *)

val pp_summary : Format.formatter -> summary -> unit
(** Prints ["mean ± ci90"]. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation between
    order statistics.  Raises [Invalid_argument] on an empty list. *)
