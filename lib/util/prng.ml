type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

(* Non-negative 62-bit int from the top bits, avoiding sign issues. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

(* Rejection sampling over the 62-bit draw: a plain [mod] favours small
   residues whenever bound does not divide 2^62.  Reject draws from the
   final partial interval instead; at most one extra draw is needed on
   average even for the worst-case bound. *)
let max62 = (1 lsl 61) - 1 + (1 lsl 61) (* 2^62 - 1 without overflowing *)

let int t bound =
  assert (bound > 0);
  let r = ((max62 mod bound) + 1) mod bound in
  (* Largest multiple of bound in [0, 2^62) is max62 - r + 1; draws at or
     above it are biased and rejected. *)
  let threshold = max62 - r in
  let rec go () =
    let x = positive_int t in
    if x > threshold then go () else x mod bound
  in
  go ()

let float t bound =
  let f = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0,1). *)
  f *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
