type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci90 : float;
  min : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Two-sided 90% Student-t critical values by degrees of freedom, through
   df = 30.  Beyond the table the t distribution is within ~1% of normal,
   so we fall back to the asymptotic z value 1.645 (one-sided 95% = the
   two-sided 90% point of N(0,1)). *)
let t90 =
  [|
    6.314; 2.920; 2.353; 2.132; 2.015; 1.943; 1.895; 1.860; 1.833; 1.812;
    1.796; 1.782; 1.771; 1.761; 1.753; 1.746; 1.740; 1.734; 1.729; 1.725;
    1.721; 1.717; 1.714; 1.711; 1.708; 1.706; 1.703; 1.701; 1.699; 1.697;
  |]

let t_crit df =
  if df <= 0 then 0.0
  else if df <= Array.length t90 then t90.(df - 1)
  else 1.645

let summary xs =
  match xs with
  | [] -> invalid_arg "Stats.summary: empty"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      if n < 2 then 0.0
      else
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (n - 1)
    in
    let sd = sqrt var in
    let ci = if n < 2 then 0.0 else t_crit (n - 1) *. sd /. sqrt (float_of_int n) in
    {
      n;
      mean = m;
      stddev = sd;
      ci90 = ci;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
    }

let pp_summary fmt s = Format.fprintf fmt "%.1f ± %.1f" s.mean s.ci90

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
    end
