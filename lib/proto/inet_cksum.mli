(** The Internet checksum (RFC 1071) over message-tool messages.

    The arithmetic is real — the 16-bit one's-complement sum of the actual
    bytes — and the cost is charged through the memory bus at the per-CPU
    checksum bandwidth the paper measures (32 MB/s on the Challenge), since
    checksumming is the data-touching operation of these stacks. *)

val sum_slices : Pnp_xkern.Msg.t -> int
(** Raw 16-bit one's-complement sum of the message bytes (host-side only;
    charges nothing).  Odd trailing bytes are padded with zero per the RFC. *)

val sum_bytes : Bytes.t -> int -> int -> int
(** One's-complement sum of a byte range (big-endian 16-bit words, odd
    trailing byte zero-padded).  Sums 8 bytes per iteration via 64-bit
    loads with the RFC 1071 lane fold; agrees with
    {!sum_bytes_bytewise} for every offset and length. *)

val sum_bytes_bytewise : Bytes.t -> int -> int -> int
(** The straightforward two-bytes-at-a-time reference implementation —
    the oracle the property tests check {!sum_bytes} against. *)

val add : int -> int -> int
(** One's-complement addition of two 16-bit partial sums. *)

val finish : int -> int
(** Fold and complement a partial sum into the final checksum field value. *)

val charge : Pnp_engine.Platform.t -> Pnp_xkern.Msg.t -> unit
(** The simulated cost of one checksum pass over [msg] — streaming its
    bytes through the memory bus — without doing the host-side
    arithmetic.  Fast paths that obtain the sum another way (the pure-ACK
    arithmetic checksum in [Tcp_wire]) call this where the reference path
    ran {!compute}, so the simulation sees identical charges. *)

val compute : Pnp_engine.Platform.t -> Pnp_xkern.Msg.t -> extra:int -> int
(** [compute plat msg ~extra] returns [finish (add (sum_slices msg) extra)]
    — [extra] carries the pseudo-header sum — and charges the calling
    thread for streaming [Msg.length msg] bytes through the bus. *)

val verify : Pnp_engine.Platform.t -> Pnp_xkern.Msg.t -> extra:int -> bool
(** A message whose checksum field was set correctly sums (with the
    pseudo-header) to 0xffff before complementing; charges like
    {!compute}. *)
