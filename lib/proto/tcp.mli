(** Parallelised TCP, after the paper's Net/2-derived implementation.

    The protocol machinery is real: 32-bit sequence arithmetic, header
    prediction, a reassembly queue for out-of-order segments, the send
    socket buffer doubling as the retransmission queue, slow start and
    congestion avoidance, Jacobson RTT estimation, and BSD-style fast
    (200 ms) and slow (500 ms) timers driven by the timing wheel.

    Five per-connection parallelization disciplines are provided — the
    paper's lock ladder (Section 5.1) plus two that step off it:

    - [One]: a single lock protects all connection state (the baseline,
      and the paper's winner).
    - [Two]: one lock for send-side state, one for receive-side state;
      header prediction must take both.
    - [Six]: the SICS MP-TCP style — separate locks for the reassembly
      queue, the retransmission buffer, header prepend, header remove,
      send window and receive window; checksums are computed while the
      header locks are held, as in that implementation.
    - [Scr]: state-compute replication — no connection-state lock at
      all.  Every arriving segment is appended to a per-session
      sequence-stamped packet-history log; entries apply to the
      authoritative state in log order as host-atomic sections whose
      simulated cost ([Costs] charges, lock instructions, bus traffic)
      is measured and charged on the owning thread's clock, and each
      thread's state replica catches up by replaying the log tail at
      {!Pnp_proto.Costs.scr_replay_per_entry} per foreign entry instead
      of blocking.  The log is bounded ([scr_log_bound]); a replica that
      falls behind a truncation pays {!Pnp_proto.Costs.scr_resync}.
      Per-packet work is F + (K-1)·r for K threads, against the locked
      disciplines' serialized F — redundant compute traded for the lock
      wait the paper measures at 85-90% of time at 8 CPUs.
    - [Rcu]: a read-mostly hybrid — mutating segments serialize on a
      writer lock that publishes an immutable snapshot of the
      reader-visible fields at each release, and segments the snapshot
      proves to be no-ops (stale pure acks, fully duplicate data) are
      answered without taking any lock.

    Segment checksums for [One]/[Two] are computed {e outside} any
    connection-state lock, the restructuring Section 5.1 describes.

    When [ticketing] is enabled, a receiving thread takes an up-ticket for
    the layer above before releasing connection state and waits for its
    turn before making the application upcall (Section 4.2), so the
    application sees packets in order at the cost of serialising the
    upcall path.

    [assume_in_order] reproduces the Figure 10 upper bound: every arriving
    data segment is treated as if its sequence number were the expected
    one. *)

type locking = One | Two | Six | Scr | Rcu

type config = {
  locking : locking;
  checksum : bool;
  cksum_under_lock : bool;
      (** ablation: checksum while holding the connection-state lock(s),
          the placement Section 5.1's restructuring removed *)
  assume_in_order : bool;
  ticketing : bool;
  nodelay : bool;
      (** disable Nagle's algorithm (small segments sent immediately even
          with data in flight) *)
  mss : int;            (** maximum segment payload *)
  rcv_wnd : int;        (** advertised receive window (32-bit, Section 2.2) *)
  snd_buf : int;        (** send socket buffer limit *)
  syn_backlog : int;
      (** maximum half-open (SYN_RCVD) children per listener; a SYN that
          arrives with the backlog full is shed as an accounted drop
          ({!syn_backlog_drops}) and recovered by the peer's SYN
          retransmission.  [0] disables the bound. *)
  sb_policy : Sockbuf.policy;
      (** send-buffer overflow policy: [Block] parks the sender (BSD
          so_snd semantics, plus pool admission control — {!send} waits
          for mnode headroom under pool pressure); [Drop] sheds the
          overflowing message as an accounted [sockbuf_full] drop and
          never blocks. *)
  scr_log_bound : int;
      (** [Scr] only: packet-history log depth.  Older entries truncate
          once the log outgrows this bound; a replica whose high
          watermark predates the truncation must resynchronise from the
          authoritative snapshot instead of replaying.  Must be at
          least 2. *)
}

val default_config : config
(** TCP-1, checksum on, 4096-byte MSS, 1 MB windows, no ticketing,
    SYN backlog 128, blocking send buffer. *)

type t
type session

type stats = {
  mutable segs_in : int;
  mutable segs_out : int;
  mutable acks_in : int;        (** dataless segments carrying only an ACK *)
  mutable acks_out : int;
  mutable bytes_in : int;       (** payload bytes delivered to the application *)
  mutable bytes_out : int;      (** payload bytes accepted from the application *)
  mutable ooo_segs : int;       (** data segments arriving with seq <> rcv_nxt *)
  mutable pred_hits : int;
  mutable pred_misses : int;
  mutable rexmits : int;
  mutable dup_acks : int;
  mutable reass_inserts : int;
  mutable persist_probes : int; (** zero-window probes sent by the persist timer *)
}

val create :
  Pnp_engine.Platform.t ->
  Pnp_xkern.Mpool.t ->
  wheel:Pnp_xkern.Timewheel.t ->
  ip:Ip.t ->
  config ->
  name:string ->
  t

val shutdown : t -> unit
(** Stop rescheduling the protocol timers (lets a simulation drain). *)

val connect :
  ?iss:int -> t -> local_port:int -> remote_addr:int -> remote_port:int -> session
(** Active open.  Blocks the calling thread until the connection is
    established.  Must be called from a simulated thread.  [iss] overrides
    the initial send sequence number (tests use it to exercise 32-bit
    wraparound). *)

val listen : t -> local_port:int -> accept:(session -> unit) -> unit
(** Passive open.  [accept] is called (from the thread processing the SYN,
    with no connection locks held... before the SYN-ACK is sent) for each
    new connection, so the receiver can be attached before data arrives. *)

val close_listener : t -> local_port:int -> bool
(** Stop listening on [local_port]: removes the accept callback and the
    wildcard demux entry (established children are untouched).  Further
    SYNs to the port are dropped.  [false] if nothing was listening. *)

val remote_endpoint : session -> int * int
(** (remote address, remote port) of the session's connection key — lets
    a shared-listen-port accept callback recover which simulated peer
    stream the child belongs to. *)

val set_receiver : session -> (Pnp_xkern.Msg.t -> unit) -> unit
(** Attach the application upcall for payload delivery.  The upcall owns
    the message.  With [ticketing] the upcall runs inside the session's
    ordering gate. *)

val set_fin_handler : session -> (unit -> unit) -> unit
(** Upcall invoked (outside connection locks) when the peer's FIN has been
    received in order — i.e. end of the inbound stream.  May fire more
    than once if the FIN is retransmitted. *)

val ticket_gate : session -> Pnp_engine.Gate.t
(** The session's ordering gate (wait statistics, tickets issued). *)

val send : session -> Pnp_xkern.Msg.t -> unit
(** Queue payload and transmit as the window allows.  Takes ownership of
    the message.  Under the [Block] policy it blocks while the send
    buffer is full and, as admission control, while the mnode pool is
    above its soft watermark; under [Drop] it never blocks — an
    overflowing message is destroyed and counted ({!sockbuf_drops}). *)

val close : session -> unit
(** Send FIN.  Does not block for the full close handshake. *)

val state_name : session -> string
val stats : session -> stats
val config : t -> config
val sessions : t -> session list

val checksum_failures : t -> int
(** Segments discarded because checksum verification failed (any locking
    discipline).  The fault-injection recovery oracle balances this
    against the corruptions the link pipeline injected. *)

val syn_backlog_drops : t -> int
(** SYNs shed because a listener's half-open backlog was full
    ([syn_backlog] cause in the overload taxonomy). *)

val sockbuf_drops : session -> int
(** Messages shed by this session's [Drop]-policy send buffer
    ([sockbuf_full] cause). *)

val sockbuf_dropped_bytes : session -> int

val total_sockbuf_drops : t -> int
(** Sum of {!sockbuf_drops} over every session of this protocol. *)

val lock_wait_ns : session -> Pnp_util.Units.ns
(** Total time threads spent waiting on this session's state lock(s) — the
    paper's Pixie observation (85-90% of time at 8 CPUs). *)

val lock_hold_ns : session -> Pnp_util.Units.ns
val snd_nxt : session -> int
val rcv_nxt : session -> int
val cwnd : session -> int

val initial_seqs : session -> int * int
(** (iss, irs) — initial send and receive sequence numbers. *)

type scr_counters = {
  scr_appends : int;       (** log entries appended (= segments logged) *)
  scr_replayed : int;      (** redundant entries replicas replayed *)
  scr_resyncs : int;       (** replica bootstraps + post-truncation resyncs *)
  scr_truncations : int;   (** times the bounded log discarded history *)
  scr_max_depth : int;     (** deepest live log observed *)
}

val scr_counters : session -> scr_counters option
(** The session's SCR log counters; [None] unless [locking = Scr]. *)

val rcu_counters : session -> (int * int) option
(** [(reads, publishes)]: segments answered without the writer lock, and
    snapshot publications; [None] unless [locking = Rcu]. *)
