open Pnp_xkern

type policy = Block | Drop

type t = {
  pool : Mpool.t;
  max : int;
  policy : policy;
  mutable segs : Msg.t list; (* front first; kept short, so list suffices *)
  mutable cc : int;
  mutable drops : int; (* messages shed by the Drop policy *)
  mutable dropped_bytes : int;
}

let create ?(policy = Block) pool ~max =
  { pool; max; policy; segs = []; cc = 0; drops = 0; dropped_bytes = 0 }

let cc t = t.cc
let space t = t.max - t.cc
let max_size t = t.max
let policy t = t.policy
let drops t = t.drops
let dropped_bytes t = t.dropped_bytes

let append t msg =
  let len = Msg.length msg in
  if len > space t then invalid_arg "Sockbuf.append: no space";
  t.segs <- t.segs @ [ msg ];
  t.cc <- t.cc + len

(* Overflow resolution is explicit: [`Queued] took ownership, [`Must_wait]
   left the message with the caller (Block policy — the caller parks on
   buffer space and retries), [`Dropped] destroyed it and accounted the
   shed bytes (Drop policy — overload sheds newest-first instead of
   backpressuring the application). *)
let offer t msg =
  let len = Msg.length msg in
  if len <= space t then begin
    t.segs <- t.segs @ [ msg ];
    t.cc <- t.cc + len;
    `Queued
  end
  else
    match t.policy with
    | Block -> `Must_wait
    | Drop ->
      t.drops <- t.drops + 1;
      t.dropped_bytes <- t.dropped_bytes + len;
      Msg.destroy msg;
      `Dropped

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.cc then invalid_arg (Printf.sprintf "Sockbuf.peek: out of range off=%d len=%d cc=%d" off len t.cc);
  (* Collect the covered ranges as shared (dup'd) views and splice them
     into one message. *)
  let rec gather segs off len acc =
    if len = 0 then List.rev acc
    else
      match segs with
      | [] -> assert false
      | m :: rest ->
        let mlen = Msg.length m in
        if off >= mlen then gather rest (off - mlen) len acc
        else begin
          let take = min (mlen - off) len in
          let view = Msg.dup m in
          Msg.pop view off;
          Msg.truncate view take;
          gather rest 0 (len - take) (view :: acc)
        end
  in
  let views = gather t.segs off len [] in
  match views with
  | [] -> Msg.create t.pool 0
  | first :: rest ->
    List.iter (fun v -> Msg.append first v) rest;
    first

let drop t n =
  if n < 0 || n > t.cc then invalid_arg "Sockbuf.drop: out of range";
  let rec go n =
    if n > 0 then
      match t.segs with
      | [] -> assert false
      | m :: rest ->
        let mlen = Msg.length m in
        if mlen <= n then begin
          Msg.destroy m;
          t.segs <- rest;
          go (n - mlen)
        end
        else Msg.pop m n
  in
  go n;
  t.cc <- t.cc - n

let clear t =
  List.iter Msg.destroy t.segs;
  t.segs <- [];
  t.cc <- 0
