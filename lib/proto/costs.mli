(** Per-layer protocol processing budgets.

    Each budget is an instruction count plus (implicitly, through the
    allocator, maps, locks, reference counters, and checksum) the memory
    and synchronisation operations the code actually performs.  The
    instruction counts are the calibration points of the model; they are
    chosen so the Challenge-100 baseline lands near the paper's absolute
    Section 3 numbers (UDP 4 KB send around 190 Mbit/s at one CPU, TCP send
    saturating near 215 Mbit/s, TCP receive peaking above 350 Mbit/s).
    EXPERIMENTS.md records the resulting curves against the paper's. *)

val charge : Pnp_engine.Platform.t -> int -> unit
(** Charge an instruction budget on the platform's architecture. *)

val fill_payload :
  Pnp_engine.Platform.t -> Pnp_xkern.Msg.t -> off:int -> len:int -> stream_off:int -> unit
(** Write the payload pattern and charge the bytes at the architecture's
    bulk-copy bandwidth through the shared bus. *)

(** {2 Instruction budgets} *)

val app_send : int
val app_recv : int
val driver_xmit : int
val driver_recv : int

val fddi_output : int
val fddi_input : int

val ip_output : int
val ip_input : int
val ip_frag_per_fragment : int
val ip_reass_per_fragment : int

val udp_output : int
val udp_input : int

val tcp_demux : int
(** Locating the connection from the port/address tuple (map manager). *)

val tcp_output_locked : int
(** tcp_output under the connection-state lock: window calculations,
    sequence-number assignment, socket-buffer bookkeeping, header fill. *)

val tcp_output_unlocked : int
(** The part the paper moved outside the lock (excluding the checksum,
    which is charged separately through the bus). *)

val tcp_input_unlocked : int
(** Receive-path work done before taking connection locks: header parse,
    sanity checks, option processing, PCB bookkeeping. *)

val tcp_input_pred_locked : int
(** Header-prediction fast path under the lock. *)

val tcp_input_slow_locked : int
(** Slow path: full input processing without reassembly costs. *)

val tcp_reass_insert : int
(** Inserting one out-of-order segment into the reassembly queue. *)

val tcp_reass_drain_per_seg : int
(** Handing one queued segment to the application once the gap fills. *)

val tcp_ack_locked : int
(** Building an ACK (tcp_output for a dataless segment) under the lock. *)

val tcp_conn_setup : int
(** Non-steady-state connection processing (SYN/FIN handling). *)

val scr_append : int
(** SCR: appending one segment to the packet-history log (sequence stamp
    + store, no lock). *)

val scr_replay_per_entry : int
(** SCR: a replica re-deriving one logged entry's state delta locally —
    the redundant compute traded for never waiting on a connection
    lock. *)

val scr_resync : int
(** SCR: a replica whose watermark predates a log truncation
    resynchronising from the authoritative snapshot. *)

val rcu_read : int
(** RCU hybrid: snapshot load + no-op classification on the lock-free
    read path. *)

val rcu_publish : int
(** RCU hybrid: snapshot copy + pointer swap the writer pays at each
    release. *)
