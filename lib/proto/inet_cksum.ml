open Pnp_engine
open Pnp_xkern

let fold s =
  let s = (s land 0xffff) + (s lsr 16) in
  (s land 0xffff) + (s lsr 16)

let add a b = fold (a + b)

let sum_bytes_bytewise b off len =
  let s = ref 0 in
  let i = ref off in
  let stop = off + len - 1 in
  while !i < stop do
    s := !s + (Char.code (Bytes.unsafe_get b !i) lsl 8) + Char.code (Bytes.unsafe_get b (!i + 1));
    i := !i + 2
  done;
  if !i = stop then s := !s + (Char.code (Bytes.unsafe_get b !i) lsl 8);
  fold !s

(* Reduce an arbitrary non-negative partial sum to 16 bits with
   end-around carries (the two-round [fold] only handles 32-bit
   inputs). *)
let fold_carries s =
  let s = ref s in
  while !s > 0xffff do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  !s

let swap16 s = ((s land 0xff) lsl 8) lor (s lsr 8)

(* Word-at-a-time sum: 8 bytes per iteration.  Because 2^16 = 1
   (mod 2^16 - 1), a 64-bit word is congruent to the sum of its four
   16-bit lanes, so we accumulate whole words (as two 32-bit halves to
   stay inside the 63-bit native int) and fold once at the end.  On a
   little-endian host the lanes are the byte-swapped network-order
   words; the RFC 1071 byte-order-independence property says the one's-
   complement sum of swapped words is the swap of the sum, so a single
   [swap16] of the folded head corrects the whole prefix.  The <8-byte
   tail (whose first byte is always at even parity, since the head
   consumes multiples of 8) uses the byte-wise scheme. *)
let sum_bytes b off len =
  if len <= 0 then 0
  else begin
    let stop = off + len in
    let s = ref 0 in
    let i = ref off in
    let last8 = stop - 8 in
    if !i <= last8 then begin
      let acc = ref 0 in
      while !i <= last8 do
        let w = Bytes.get_int64_ne b !i in
        acc :=
          !acc
          + Int64.to_int (Int64.shift_right_logical w 32)
          + (Int64.to_int w land 0xffff_ffff);
        i := !i + 8
      done;
      let folded = fold_carries !acc in
      s := if Sys.big_endian then folded else swap16 folded
    end;
    let stop1 = stop - 1 in
    while !i < stop1 do
      s :=
        !s
        + (Char.code (Bytes.unsafe_get b !i) lsl 8)
        + Char.code (Bytes.unsafe_get b (!i + 1));
      i := !i + 2
    done;
    if !i = stop1 then s := !s + (Char.code (Bytes.unsafe_get b !i) lsl 8);
    fold !s
  end

(* Summing a multi-slice message must respect byte positions: a slice of
   odd length shifts the parity of every following byte.  We track the
   global offset and add odd-positioned slices byte-swapped, the standard
   technique for scattered data.

   Each slice first consults the node's one-slot sum memo (Mpool): a
   payload node shared via [Msg.dup] — driver templates, the rexmt
   queue — is scanned once and then checksummed in O(1).  Misses (e.g.
   every freshly written header) compute and refill the slot. *)
let sum_slices msg =
  let total = ref 0 in
  let pos = ref 0 in
  Msg.iter_parts msg (fun node off len ->
      let s =
        let c = Mpool.cached_sum node ~off ~len in
        if c >= 0 then c
        else begin
          let s = sum_bytes (Mpool.data node) off len in
          Mpool.cache_sum node ~off ~len s;
          s
        end
      in
      let s = if !pos land 1 = 0 then s else ((s land 0xff) lsl 8) lor (s lsr 8) in
      total := add !total s;
      pos := !pos + len);
  !total

let finish s = lnot (fold s) land 0xffff

let charge plat msg =
  if Sim.in_thread plat.Platform.sim then
    Membus.consume plat.Platform.bus ~bytes:(Msg.length msg)

let compute plat msg ~extra =
  charge plat msg;
  finish (add (sum_slices msg) extra)

let verify plat msg ~extra =
  charge plat msg;
  fold (add (sum_slices msg) extra) = 0xffff
