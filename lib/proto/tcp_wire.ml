open Pnp_xkern

type flags = { fin : bool; syn : bool; rst : bool; psh : bool; ack : bool }

let no_flags = { fin = false; syn = false; rst = false; psh = false; ack = false }
let flag_ack = { no_flags with ack = true }
let flag_syn = { no_flags with syn = true }
let flag_syn_ack = { no_flags with syn = true; ack = true }
let flag_fin_ack = { no_flags with fin = true; ack = true }
let flag_rst = { no_flags with rst = true }

type header = {
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  flags : flags;
  win : int;
  cksum : int;
}

let header_bytes = 24
let protocol_number = 6

let flags_to_int f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor if f.ack then 16 else 0

let flags_of_int i =
  {
    fin = i land 1 <> 0;
    syn = i land 2 <> 0;
    rst = i land 4 <> 0;
    psh = i land 8 <> 0;
    ack = i land 16 <> 0;
  }

let encode msg h =
  Msg.push msg header_bytes;
  Msg.set_u16 msg 0 h.sport;
  Msg.set_u16 msg 2 h.dport;
  Msg.set_u32 msg 4 (Tcp_seq.mask h.seq);
  Msg.set_u32 msg 8 (Tcp_seq.mask h.ack);
  (* data offset in 32-bit words (6) in the high nibble, flags low. *)
  Msg.set_u16 msg 12 ((6 lsl 12) lor flags_to_int h.flags);
  Msg.set_u32 msg 14 h.win;
  Msg.set_u16 msg 18 h.cksum;
  Msg.set_u16 msg 20 0;
  Msg.set_u16 msg 22 0

let decode msg =
  if Msg.length msg < header_bytes then None
  else
    match Msg.head_view msg ~len:header_bytes with
    | Some (_, b, j) ->
      (* Single-pass read: the header always lives in one node (its own
         pushed node on send, the remaining front node after the IP pop on
         receive), so skip the per-field accessor walks. *)
      Some
        {
          sport = Bytes.get_uint16_be b j;
          dport = Bytes.get_uint16_be b (j + 2);
          seq = (Bytes.get_uint16_be b (j + 4) lsl 16) lor Bytes.get_uint16_be b (j + 6);
          ack = (Bytes.get_uint16_be b (j + 8) lsl 16) lor Bytes.get_uint16_be b (j + 10);
          flags = flags_of_int (Bytes.get_uint16_be b (j + 12) land 0x3f);
          win = (Bytes.get_uint16_be b (j + 14) lsl 16) lor Bytes.get_uint16_be b (j + 16);
          cksum = Bytes.get_uint16_be b (j + 18);
        }
    | None ->
      Some
        {
          sport = Msg.get_u16 msg 0;
          dport = Msg.get_u16 msg 2;
          seq = Msg.get_u32 msg 4;
          ack = Msg.get_u32 msg 8;
          flags = flags_of_int (Msg.get_u16 msg 12 land 0x3f);
          win = Msg.get_u32 msg 14;
          cksum = Msg.get_u16 msg 18;
        }

let strip msg = Msg.pop msg header_bytes

let pseudo_sum ~src ~dst ~len =
  let open Inet_cksum in
  let s = add (src lsr 16) (src land 0xffff) in
  let s = add s (dst lsr 16) in
  let s = add s (dst land 0xffff) in
  let s = add s protocol_number in
  add s len

let store_checksum plat ~src ~dst msg =
  let len = Msg.length msg in
  Msg.set_u16 msg 18 0;
  let ck = Inet_cksum.compute plat msg ~extra:(pseudo_sum ~src ~dst ~len) in
  Msg.set_u16 msg 18 (if ck = 0 then 0xffff else ck)

let store_checksum_free ~src ~dst msg =
  let len = Msg.length msg in
  Msg.set_u16 msg 18 0;
  let sum = Inet_cksum.add (Inet_cksum.sum_slices msg) (pseudo_sum ~src ~dst ~len) in
  let ck = Inet_cksum.finish sum in
  Msg.set_u16 msg 18 (if ck = 0 then 0xffff else ck)

let store_checksum_incremental ~src ~dst ~payload_sum msg =
  let len = Msg.length msg in
  Msg.set_u16 msg 18 0;
  let hdr_sum = ref 0 in
  for i = 0 to (header_bytes / 2) - 1 do
    hdr_sum := Inet_cksum.add !hdr_sum (Msg.get_u16 msg (2 * i))
  done;
  let total = Inet_cksum.add (Inet_cksum.add !hdr_sum payload_sum) (pseudo_sum ~src ~dst ~len) in
  let ck = Inet_cksum.finish total in
  Msg.set_u16 msg 18 (if ck = 0 then 0xffff else ck)

(* 16-bit one's-complement sum of an encoded header's words, computed
   from the fields without touching bytes.  Every 16-bit word of the
   header is a field (the trailing pad is zero), so for a header-only
   segment the whole checksum is arithmetic. *)
let header_sum h =
  let open Inet_cksum in
  let seq = Tcp_seq.mask h.seq and ackn = Tcp_seq.mask h.ack in
  let s = add h.sport h.dport in
  let s = add s (seq lsr 16) in
  let s = add s (seq land 0xffff) in
  let s = add s (ackn lsr 16) in
  let s = add s (ackn land 0xffff) in
  let s = add s ((6 lsl 12) lor flags_to_int h.flags) in
  let s = add s ((h.win lsr 16) land 0xffff) in
  let s = add s (h.win land 0xffff) in
  add s h.cksum

(* Coalesced construction of a header-only segment (pure ACK, SYN, FIN):
   one direct pass writes the header with the checksum already computed
   arithmetically from the fields — no re-scan of freshly written bytes —
   and primes the node's sum memo so the receiver's verify pass is O(1).
   The stored bytes are identical to [encode] followed by
   [store_checksum]/[store_checksum_free]; with [checksum:false] the
   field is written as the zero those paths leave.  Charges nothing:
   callers place the simulated checksum charge ({!Inet_cksum.charge})
   exactly where their reference path incurred it. *)
let encode_empty msg h ~src ~dst ~checksum =
  Msg.push msg header_bytes;
  let base = header_sum { h with cksum = 0 } in
  let ck =
    if not checksum then 0
    else
      let c = Inet_cksum.finish (Inet_cksum.add base (pseudo_sum ~src ~dst ~len:header_bytes)) in
      if c = 0 then 0xffff else c
  in
  match Msg.head_view msg ~len:header_bytes with
  | Some (node, b, j) ->
    Mpool.bump_gen (Msg.pool msg) node;
    Bytes.set_uint16_be b j h.sport;
    Bytes.set_uint16_be b (j + 2) h.dport;
    let seq = Tcp_seq.mask h.seq and ackn = Tcp_seq.mask h.ack in
    Bytes.set_uint16_be b (j + 4) (seq lsr 16);
    Bytes.set_uint16_be b (j + 6) (seq land 0xffff);
    Bytes.set_uint16_be b (j + 8) (ackn lsr 16);
    Bytes.set_uint16_be b (j + 10) (ackn land 0xffff);
    Bytes.set_uint16_be b (j + 12) ((6 lsl 12) lor flags_to_int h.flags);
    Bytes.set_uint16_be b (j + 14) ((h.win lsr 16) land 0xffff);
    Bytes.set_uint16_be b (j + 16) (h.win land 0xffff);
    Bytes.set_uint16_be b (j + 18) ck;
    Bytes.set_uint16_be b (j + 20) 0;
    Bytes.set_uint16_be b (j + 22) 0;
    Mpool.cache_sum node ~off:j ~len:header_bytes (Inet_cksum.add base ck)
  | None ->
    (* A fresh push is always a single covering part; kept for safety
       (the header space is already pushed, so write through the
       accessors as [encode] would). *)
    Msg.set_u16 msg 0 h.sport;
    Msg.set_u16 msg 2 h.dport;
    Msg.set_u32 msg 4 (Tcp_seq.mask h.seq);
    Msg.set_u32 msg 8 (Tcp_seq.mask h.ack);
    Msg.set_u16 msg 12 ((6 lsl 12) lor flags_to_int h.flags);
    Msg.set_u32 msg 14 h.win;
    Msg.set_u16 msg 18 ck;
    Msg.set_u16 msg 20 0;
    Msg.set_u16 msg 22 0

let verify_checksum plat ~src ~dst msg =
  let len = Msg.length msg in
  Inet_cksum.verify plat msg ~extra:(pseudo_sum ~src ~dst ~len)

let flags_to_string f =
  let b = Buffer.create 5 in
  if f.syn then Buffer.add_char b 'S';
  if f.fin then Buffer.add_char b 'F';
  if f.rst then Buffer.add_char b 'R';
  if f.psh then Buffer.add_char b 'P';
  if f.ack then Buffer.add_char b 'A';
  if Buffer.length b = 0 then "-" else Buffer.contents b
