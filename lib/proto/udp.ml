open Pnp_engine
open Pnp_xkern

let header_bytes = 8
let protocol_number = 17

module Port_map = Xmap.Make (struct
  type t = int

  let hash x = x * 0x9e3779b1
  let equal = Int.equal
end)

type t = {
  plat : Platform.t;
  ip : Ip.t;
  checksum : bool;
  obj_ref : Atomic_ctr.t;
  sessions : session Port_map.t;
  create_lock : Lock.t; (* serialises session creation *)
  mutable datagrams_out : int;
  mutable datagrams_in : int;
  mutable dropped : int;
  mutable cksum_failures : int;
}

and session = {
  udp : t;
  local_port : int;
  remote_addr : int;
  remote_port : int;
  sess_ref : Atomic_ctr.t;
  recv : Msg.t -> unit;
}

(* Pseudo-header sum: src + dst + proto + udp length. *)
let pseudo_sum ~src ~dst ~len =
  let s = Inet_cksum.add (src lsr 16) (src land 0xffff) in
  let s = Inet_cksum.add s (dst lsr 16) in
  let s = Inet_cksum.add s (dst land 0xffff) in
  let s = Inet_cksum.add s protocol_number in
  Inet_cksum.add s len

let rec input t ~src ~dst msg =
  Costs.charge t.plat Costs.udp_input;
  if Msg.length msg < header_bytes then begin
    t.dropped <- t.dropped + 1;
    Msg.destroy msg
  end
  else begin
    let dport = Msg.get_u16 msg 2 in
    let wire_cksum = Msg.get_u16 msg 6 in
    let len = Msg.length msg in
    let cksum_ok =
      if t.checksum && wire_cksum <> 0 then
        (* The receiver checksums the whole datagram (header included,
           checksum field as transmitted) plus the pseudo-header. *)
        Inet_cksum.verify t.plat msg ~extra:(pseudo_sum ~src ~dst ~len)
      else true
    in
    t.datagrams_in <- t.datagrams_in + 1;
    if not cksum_ok then begin
      t.cksum_failures <- t.cksum_failures + 1;
      t.dropped <- t.dropped + 1;
      Msg.destroy msg
    end
    else
      match Port_map.lookup t.sessions dport with
      | Some sess ->
        ignore (Atomic_ctr.incr sess.sess_ref);
        Msg.pop msg header_bytes;
        sess.recv msg;
        ignore (Atomic_ctr.decr sess.sess_ref)
      | None ->
        t.dropped <- t.dropped + 1;
        Msg.destroy msg
  end

and create plat ~ip ~checksum ~name =
  let t =
    {
      plat;
      ip;
      checksum;
      obj_ref = Platform.refcnt plat ~name:(name ^ ".ref") ~init:1;
      sessions =
        Port_map.create plat ~shards:plat.Platform.map_shards
          ~name:(name ^ ".demux") ();
      create_lock =
        Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair
          ~name:(name ^ ".create");
      datagrams_out = 0;
      datagrams_in = 0;
      dropped = 0;
      cksum_failures = 0;
    }
  in
  Ip.register ip ~proto:protocol_number (fun ~src ~dst msg -> input t ~src ~dst msg);
  t

let locked t f =
  if Sim.in_thread t.plat.Platform.sim then Lock.with_lock t.create_lock f else f ()

let open_session t ~local_port ~remote_addr ~remote_port ~recv =
  locked t (fun () ->
      match Port_map.lookup t.sessions local_port with
      | Some _ ->
        invalid_arg (Printf.sprintf "Udp.open_session: port %d already bound" local_port)
      | None ->
        let sess =
          {
            udp = t;
            local_port;
            remote_addr;
            remote_port;
            sess_ref = Platform.refcnt t.plat ~name:"udp.sess" ~init:1;
            recv;
          }
        in
        Port_map.insert t.sessions local_port sess;
        sess)

let close_session t sess =
  locked t (fun () -> ignore (Port_map.remove t.sessions sess.local_port))

let send sess msg =
  let t = sess.udp in
  Costs.charge t.plat Costs.udp_output;
  let payload_len = Msg.length msg in
  let len = payload_len + header_bytes in
  Msg.push msg header_bytes;
  Msg.set_u16 msg 0 sess.local_port;
  Msg.set_u16 msg 2 sess.remote_port;
  Msg.set_u16 msg 4 len;
  Msg.set_u16 msg 6 0;
  if t.checksum then begin
    let extra =
      pseudo_sum ~src:(Ip.local_addr t.ip) ~dst:sess.remote_addr ~len
    in
    let ck = Inet_cksum.compute t.plat msg ~extra in
    (* All-zero checksum is transmitted as all-ones per the RFC. *)
    Msg.set_u16 msg 6 (if ck = 0 then 0xffff else ck)
  end;
  t.datagrams_out <- t.datagrams_out + 1;
  Ip.output t.ip ~proto:protocol_number ~dst:sess.remote_addr msg

let encap_free msg ~src ~dst ~sport ~dport ~checksum =
  let len = Msg.length msg + header_bytes in
  Msg.push msg header_bytes;
  Msg.set_u16 msg 0 sport;
  Msg.set_u16 msg 2 dport;
  Msg.set_u16 msg 4 len;
  Msg.set_u16 msg 6 0;
  if checksum then begin
    let sum = Inet_cksum.add (Inet_cksum.sum_slices msg) (pseudo_sum ~src ~dst ~len) in
    let ck = Inet_cksum.finish sum in
    Msg.set_u16 msg 6 (if ck = 0 then 0xffff else ck)
  end

let datagrams_out t = t.datagrams_out
let datagrams_in t = t.datagrams_in
let datagrams_dropped t = t.dropped
let checksum_failures t = t.cksum_failures

(* obj_ref participates in the atomic-ops experiment through creation; the
   per-packet pair is on the session counter. *)
let _ = fun t -> t.obj_ref
