(** TCP segment wire format.

    The header is the Net/2 layout except that, as the paper does, the
    flow-control window is carried as a full 32-bit field (Section 2.2:
    16-bit windows cannot express the bandwidth-delay products these
    experiments generate; 4.4BSD large windows and the next-generation TCP
    proposals do the same).  That widens the header from 20 to 24 bytes.

    Layout (all big-endian):
    {v
    0  source port   (2)    12 data offset/flags (2)
    2  dest port     (2)    14 window            (4)
    4  sequence      (4)    18 checksum          (2)
    8  ack           (4)    20 urgent pointer    (2)
                            22 pad               (2)
    v} *)

type flags = { fin : bool; syn : bool; rst : bool; psh : bool; ack : bool }

val no_flags : flags
val flag_ack : flags
val flag_syn : flags
val flag_syn_ack : flags
val flag_fin_ack : flags
val flag_rst : flags

type header = {
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  flags : flags;
  win : int;
  cksum : int;
}

val header_bytes : int
val protocol_number : int

val encode : Pnp_xkern.Msg.t -> header -> unit
(** Push a header onto the message and write the fields (checksum field as
    given; use {!store_checksum} to fill it afterwards). *)

val decode : Pnp_xkern.Msg.t -> header option
(** Read the header at the front of the message (without stripping);
    [None] if the message is too short. *)

val strip : Pnp_xkern.Msg.t -> unit
(** Remove the header bytes from the front. *)

val pseudo_sum : src:int -> dst:int -> len:int -> int
(** Pseudo-header partial sum for checksumming a segment of [len] bytes. *)

val store_checksum : Pnp_engine.Platform.t -> src:int -> dst:int -> Pnp_xkern.Msg.t -> unit
(** Compute the real checksum of the encoded segment (pseudo-header
    included) and store it, charging the bus for the bytes. *)

val store_checksum_free : src:int -> dst:int -> Pnp_xkern.Msg.t -> unit
(** Same arithmetic with no simulated cost — for driver-built templates,
    which the paper's drivers produce without charge. *)

val store_checksum_incremental :
  src:int -> dst:int -> payload_sum:int -> Pnp_xkern.Msg.t -> unit
(** Set the checksum of an encoded segment whose payload partial sum is
    already known (driver templates): only the 24 header bytes are
    re-summed, at no simulated cost. *)

val encode_empty :
  Pnp_xkern.Msg.t -> header -> src:int -> dst:int -> checksum:bool -> unit
(** Coalesced construction of a header-only segment (pure ACK, SYN,
    FIN): pushes and writes the header in one direct pass with the
    checksum computed arithmetically from the fields — every 16-bit word
    of an empty-payload segment is a field, so no byte scan — and primes
    the node's checksum-sum memo so the receiver verifies it in O(1).
    Byte-identical to {!encode} + {!store_checksum}/{!store_checksum_free}
    (with [checksum:false], to the zero field those paths leave).
    Charges nothing; the caller places {!Inet_cksum.charge} wherever its
    reference path computed the checksum. *)

val verify_checksum : Pnp_engine.Platform.t -> src:int -> dst:int -> Pnp_xkern.Msg.t -> bool

val flags_to_string : flags -> string
