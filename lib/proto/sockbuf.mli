(** Send socket buffer.

    Holds the unacknowledged byte stream, exactly as in BSD: data stays in
    the buffer until acknowledged, and retransmission re-reads it from the
    front — this is the "retransmission queue" of the paper.  Reads share
    the underlying MNodes (no copies). *)

type t

type policy = Block | Drop
(** Overflow policy.  [Block]: {!offer} returns [`Must_wait] and the
    caller backpressures the application (BSD semantics — the default).
    [Drop]: {!offer} destroys the overflowing message and accounts it
    ([sockbuf_full] in the overload taxonomy) — load shedding for
    overload experiments. *)

val create : ?policy:policy -> Pnp_xkern.Mpool.t -> max:int -> t

val cc : t -> int
(** Bytes currently buffered. *)

val space : t -> int
(** Bytes that may still be appended. *)

val max_size : t -> int

val append : t -> Pnp_xkern.Msg.t -> unit
(** Take ownership of the message's bytes at the tail.
    @raise Invalid_argument if it does not fit. *)

val offer : t -> Pnp_xkern.Msg.t -> [ `Queued | `Must_wait | `Dropped ]
(** Policy-aware append.  [`Queued]: ownership taken.  [`Must_wait]
    (Block policy): no space, message untouched — park on buffer space
    and retry.  [`Dropped] (Drop policy): message destroyed and counted
    in {!drops}/{!dropped_bytes}. *)

val policy : t -> policy

val drops : t -> int
(** Messages shed by the Drop policy ([sockbuf_full] drops). *)

val dropped_bytes : t -> int

val peek : t -> off:int -> len:int -> Pnp_xkern.Msg.t
(** A new message viewing bytes [off, off+len) of the buffered stream
    (reference counts bumped, nothing copied).
    @raise Invalid_argument when out of range. *)

val drop : t -> int -> unit
(** Discard acknowledged bytes from the front. *)

val clear : t -> unit
