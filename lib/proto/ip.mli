(** Internet Protocol layer.

    Structured like FDDI but with more state (Section 2.2): on the send
    side a datagram identifier that must be incremented atomically
    per-datagram, and on the receive side a fragment table that must be
    locked to serialise lookups and updates.  Fragmentation occurs when a
    datagram exceeds the interface MTU; reassembled fragments are
    timed out through the event manager. *)

type t

val header_bytes : int
(** Standard 20-byte IPv4 header (no options). *)

val ethertype : int
(** The ethertype under which IP registers with the MAC layer. *)

val create :
  Pnp_engine.Platform.t ->
  Pnp_xkern.Mpool.t ->
  wheel:Pnp_xkern.Timewheel.t ->
  fddi:Fddi.t ->
  local_addr:int ->
  name:string ->
  t

val register : t -> proto:int -> (src:int -> dst:int -> Pnp_xkern.Msg.t -> unit) -> unit
(** Install a transport protocol's input handler. *)

val output : t -> proto:int -> dst:int -> Pnp_xkern.Msg.t -> unit
(** Send a datagram, fragmenting if needed.  The destination is resolved
    to a MAC address trivially (the simulated network is a single ring). *)

val local_addr : t -> int

val encap : Pnp_xkern.Msg.t -> src:int -> dst:int -> proto:int -> id:int -> unit
(** Prepend an unfragmented IP header (valid header checksum) without a
    layer instance — used by the in-memory drivers. *)

val datagrams_out : t -> int
val fragments_out : t -> int
val datagrams_in : t -> int
val reassemblies : t -> int
val datagrams_dropped : t -> int
(** Bad header checksum, unknown protocol, or reassembly timeout. *)

val header_failures : t -> int
(** Datagrams rejected by header verification (bad version, length or
    header checksum) — the subset of [datagrams_dropped] the
    fault-injection oracle can attribute to wire corruption. *)
