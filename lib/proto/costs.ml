open Pnp_engine
open Pnp_xkern

let charge plat n = Platform.charge_instrs plat n

let fill_payload plat msg ~off ~len ~stream_off =
  Msg.fill_pattern msg ~off ~len ~stream_off;
  if Sim.in_thread plat.Platform.sim then
    Membus.consume ~rate_mb_s:plat.Platform.arch.Arch.copy_mb_per_s plat.Platform.bus
      ~bytes:len

(* All counts are instructions at the architecture's CPI.  On the 100 MHz
   Challenge one instruction is 10 ns, so 1000 instructions = 10 us. *)

let app_send = 800
let app_recv = 1200
let driver_xmit = 1000
let driver_recv = 2000

let fddi_output = 1400
let fddi_input = 2200

let ip_output = 2000
let ip_input = 3200
let ip_frag_per_fragment = 1500
let ip_reass_per_fragment = 2200

let udp_output = 1800
let udp_input = 3600

let tcp_demux = 2400
let tcp_output_locked = 12000
let tcp_output_unlocked = 1500
let tcp_input_unlocked = 5600
let tcp_input_pred_locked = 4000
let tcp_input_slow_locked = 9000
let tcp_reass_insert = 4200
let tcp_reass_drain_per_seg = 1500
let tcp_ack_locked = 2800
let tcp_conn_setup = 6000

(* State-compute replication (SCR) and the read-mostly (RCU) hybrid.
   [scr_append] is the per-segment log-append tax (stamp + store, no
   lock); [scr_replay_per_entry] is the redundant-compute cost a replica
   pays to re-derive one logged entry's state delta locally — the price
   SCR trades for never serializing on the connection lock;
   [scr_resync] is the penalty for a replica that fell behind a log
   truncation and must resynchronise from the authoritative snapshot.
   [rcu_read] covers the snapshot load + no-op classification a lock-free
   reader performs before deciding it can skip the writer lock, and
   [rcu_publish] the snapshot copy + pointer swap the writer pays at each
   release to keep readers current. *)
let scr_append = 180
let scr_replay_per_entry = 700
let scr_resync = 2500
let rcu_read = 600
let rcu_publish = 120
