(** A blocking, BSD-socket-flavoured API over TCP sessions.

    The x-kernel delivers data by upcall; most applications want to
    {e pull}.  A socket buffers the upcalls and lets a simulated thread
    block in {!recv} until data (or the peer's FIN) arrives, and block in
    {!Listener.accept} until a connection does.  All blocking calls must
    run inside a simulated thread. *)

type t

val of_session : Pnp_engine.Platform.t -> Pnp_xkern.Mpool.t -> Tcp.session -> t
(** Wrap an established session (installs its receiver and FIN handler;
    do not call {!Tcp.set_receiver} afterwards). *)

val connect :
  Pnp_engine.Platform.t ->
  Pnp_xkern.Mpool.t ->
  Tcp.t ->
  local_port:int ->
  remote_addr:int ->
  remote_port:int ->
  t
(** Active open; blocks until established. *)

val send : t -> Pnp_xkern.Msg.t -> unit
(** Queue bytes on the connection (blocks while the send buffer is full);
    takes ownership of the message. *)

val send_string : t -> string -> unit
(** {!send} of a fresh message holding [s].  Parks for mnode headroom
    {e before} allocating ({!Pnp_xkern.Mpool.await_headroom}), so a
    storm of senders degrades into queuing instead of exhausting a
    bounded pool. *)

val recv : t -> Pnp_xkern.Msg.t option
(** The next chunk of in-order payload, blocking until one arrives.
    [None] means the peer closed its half (end of stream).  The caller
    owns the returned message. *)

val recv_string : t -> string option

val recv_exactly : t -> int -> string option
(** Accumulate exactly that many bytes (or [None] if the stream ends
    first). *)

val close : t -> unit
(** Send FIN.  Buffered inbound data can still be received. *)

val eof : t -> bool
(** The peer's FIN arrived and the buffer has been drained. *)

val pending_bytes : t -> int
val session : t -> Tcp.session

module Listener : sig
  type socket := t
  type t

  val listen :
    Pnp_engine.Platform.t -> Pnp_xkern.Mpool.t -> Tcp.t -> port:int -> t
  (** Passive open: every inbound connection is wrapped in a socket and
      queued. *)

  val accept : t -> socket
  (** Block until a connection arrives. *)

  val pending : t -> int
end
