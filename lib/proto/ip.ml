open Pnp_engine
open Pnp_xkern

let header_bytes = 20
let ethertype = 0x0800
let reass_timeout = Pnp_util.Units.sec 30.0

module Proto_map = Xmap.Make (struct
  type t = int

  let hash x = x * 0x9e3779b1
  let equal = Int.equal
end)

module Frag_key = struct
  type t = { src : int; dst : int; proto : int; id : int }

  let hash k = (k.src * 31) + (k.dst * 17) + (k.proto * 7) + k.id
  let equal a b = a.src = b.src && a.dst = b.dst && a.proto = b.proto && a.id = b.id
end

module Frag_map = Xmap.Make (Frag_key)

type frag_chain = {
  mutable pieces : (int * bool * Msg.t) list; (* (offset, more-fragments, payload) *)
  mutable timeout : Timewheel.handle option;
}

type t = {
  plat : Platform.t;
  pool : Mpool.t;
  wheel : Timewheel.t;
  fddi : Fddi.t;
  local_addr : int;
  obj_ref : Atomic_ctr.t;
  ident : Atomic_ctr.t; (* datagram identifier: atomic increment per datagram *)
  upper : (src:int -> dst:int -> Msg.t -> unit) Proto_map.t;
  frag_lock : Lock.t;
  frags : frag_chain Frag_map.t;
  mutable datagrams_out : int;
  mutable fragments_out : int;
  mutable datagrams_in : int;
  mutable reassemblies : int;
  mutable dropped : int;
  mutable header_failures : int; (* datagrams rejected by header verification *)
}

let make plat pool ~wheel ~fddi ~local_addr ~name =
  let t =
    {
      plat;
      pool;
      wheel;
      fddi;
      local_addr;
      obj_ref = Platform.refcnt plat ~name:(name ^ ".ref") ~init:1;
      ident = Platform.refcnt plat ~name:(name ^ ".ident") ~init:0;
      upper = Proto_map.create plat ~name:(name ^ ".demux") ();
      frag_lock =
        Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair
          ~name:(name ^ ".fragtab");
      frags = Frag_map.create plat ~name:(name ^ ".frags") ();
      datagrams_out = 0;
      fragments_out = 0;
      datagrams_in = 0;
      reassemblies = 0;
      dropped = 0;
      header_failures = 0;
    }
  in
  t

let register t ~proto handler = Proto_map.insert t.upper proto handler
let local_addr t = t.local_addr

(* The simulated network is one FDDI ring: MAC = IP address. *)
let mac_of_addr addr = addr

let max_payload = Fddi.mtu - header_bytes

let write_header ~src ~proto ~dst ~id ~frag_off ~more_frags msg =
  let total = Msg.length msg in
  Msg.set_u8 msg 0 0x45;
  Msg.set_u8 msg 1 0;
  Msg.set_u16 msg 2 total;
  Msg.set_u16 msg 4 id;
  Msg.set_u16 msg 6 (((if more_frags then 1 else 0) lsl 13) lor (frag_off lsr 3));
  Msg.set_u8 msg 8 64;
  Msg.set_u8 msg 9 proto;
  Msg.set_u16 msg 10 0;
  Msg.set_u32 msg 12 src;
  Msg.set_u32 msg 16 dst;
  (* Header checksum over the 20 header bytes; cheap, always computed. *)
  let sum = ref 0 in
  for i = 0 to 9 do
    sum := Inet_cksum.add !sum (Msg.get_u16 msg (2 * i))
  done;
  Msg.set_u16 msg 10 (Inet_cksum.finish !sum)

let encap msg ~src ~dst ~proto ~id =
  Msg.push msg header_bytes;
  write_header ~src ~proto ~dst ~id ~frag_off:0 ~more_frags:false msg

let send_one t ~proto ~dst ~id ~frag_off ~more_frags msg =
  Msg.push msg header_bytes;
  write_header ~src:t.local_addr ~proto ~dst ~id ~frag_off ~more_frags msg;
  Fddi.output t.fddi ~ethertype ~dst_mac:(mac_of_addr dst) msg

let output t ~proto ~dst msg =
  Costs.charge t.plat Costs.ip_output;
  t.datagrams_out <- t.datagrams_out + 1;
  let id = Atomic_ctr.incr t.ident land 0xffff in
  let len = Msg.length msg in
  if len <= max_payload then send_one t ~proto ~dst ~id ~frag_off:0 ~more_frags:false msg
  else begin
    (* Fragment: offsets must be multiples of 8. *)
    let chunk = max_payload land lnot 7 in
    let rec split off =
      if off < len then begin
        Costs.charge t.plat Costs.ip_frag_per_fragment;
        let this = min chunk (len - off) in
        let frag = Msg.dup msg in
        Msg.pop frag off;
        Msg.truncate frag this;
        t.fragments_out <- t.fragments_out + 1;
        send_one t ~proto ~dst ~id ~frag_off:off ~more_frags:(off + this < len) frag;
        split (off + this)
      end
    in
    split 0;
    Msg.destroy msg
  end

let verify_header msg =
  Msg.length msg >= header_bytes
  && Msg.get_u8 msg 0 = 0x45
  &&
  let sum = ref 0 in
  for i = 0 to 9 do
    sum := Inet_cksum.add !sum (Msg.get_u16 msg (2 * i))
  done;
  !sum = 0xffff

let deliver t ~proto ~src ~dst msg =
  match Proto_map.lookup t.upper proto with
  | Some handler ->
    ignore (Atomic_ctr.incr t.obj_ref);
    handler ~src ~dst msg;
    ignore (Atomic_ctr.decr t.obj_ref)
  | None ->
    t.dropped <- t.dropped + 1;
    Msg.destroy msg

let locked t f =
  if Sim.in_thread t.plat.Platform.sim then Lock.with_lock t.frag_lock f else f ()

let drop_chain t key chain =
  List.iter (fun (_, _, m) -> Msg.destroy m) chain.pieces;
  chain.pieces <- [];
  ignore (Frag_map.remove t.frags key)

(* If the chain covers a complete datagram, return its total length and
   the fragments in offset order. *)
let try_reassemble chain =
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) chain.pieces in
  let rec complete expected = function
    | [] -> false
    | [ (off, more, _) ] -> off = expected && not more
    | (off, more, m) :: rest -> off = expected && more && complete (expected + Msg.length m) rest
  in
  if complete 0 sorted then
    let total = List.fold_left (fun acc (_, _, m) -> acc + Msg.length m) 0 sorted in
    Some (total, List.map (fun (_, _, m) -> m) sorted)
  else None

let input t msg =
  Costs.charge t.plat Costs.ip_input;
  if not (verify_header msg) then begin
    t.dropped <- t.dropped + 1;
    t.header_failures <- t.header_failures + 1;
    Msg.destroy msg
  end
  else begin
    let proto = Msg.get_u8 msg 9 in
    let id = Msg.get_u16 msg 4 in
    let flags_off = Msg.get_u16 msg 6 in
    let more_frags = flags_off land 0x2000 <> 0 in
    let frag_off = (flags_off land 0x1fff) lsl 3 in
    let src = Msg.get_u32 msg 12 in
    let dst = Msg.get_u32 msg 16 in
    let total = Msg.get_u16 msg 2 in
    if dst <> t.local_addr then begin
      (* Not ours, and this host does not forward. *)
      t.dropped <- t.dropped + 1;
      Msg.destroy msg
    end
    else begin
    (* Trim any padding below the declared total length, then strip. *)
    if Msg.length msg > total then Msg.truncate msg total;
    Msg.pop msg header_bytes;
    t.datagrams_in <- t.datagrams_in + 1;
    if (not more_frags) && frag_off = 0 then deliver t ~proto ~src ~dst msg
    else begin
      (* A fragment: file it under the fragment-table lock. *)
      Costs.charge t.plat Costs.ip_reass_per_fragment;
      let key = { Frag_key.src; dst; proto; id } in
      let completed = ref None in
      locked t (fun () ->
          let chain =
            match Frag_map.lookup t.frags key with
            | Some c -> c
            | None ->
              let c = { pieces = []; timeout = None } in
              c.timeout <-
                Some
                  (Timewheel.schedule t.wheel ~after:reass_timeout (fun () ->
                       locked t (fun () ->
                           t.dropped <- t.dropped + 1;
                           drop_chain t key c)));
              Frag_map.insert t.frags key c;
              c
          in
          chain.pieces <- (frag_off, more_frags, msg) :: chain.pieces;
          match try_reassemble chain with
          | None -> ()
          | Some (total, parts) ->
            (match chain.timeout with
             | Some h -> ignore (Timewheel.cancel t.wheel h)
             | None -> ());
            chain.pieces <- [];
            ignore (Frag_map.remove t.frags key);
            completed := Some (total, parts));
      match !completed with
      | None -> ()
      | Some (total, parts) ->
        (* Copy the fragments into one contiguous datagram. *)
        let whole = Msg.create t.pool total in
        let pos = ref 0 in
        List.iter
          (fun m ->
            let len = Msg.length m in
            for i = 0 to len - 1 do
              Msg.set_u8 whole (!pos + i) (Msg.get_u8 m i)
            done;
            pos := !pos + len;
            Msg.destroy m)
          parts;
        if Sim.in_thread t.plat.Platform.sim then
          Membus.consume ~rate_mb_s:t.plat.Platform.arch.Arch.copy_mb_per_s
            t.plat.Platform.bus ~bytes:total;
        t.reassemblies <- t.reassemblies + 1;
        deliver t ~proto ~src ~dst whole
    end
    end
  end

let create plat pool ~wheel ~fddi ~local_addr ~name =
  let t = make plat pool ~wheel ~fddi ~local_addr ~name in
  Fddi.register fddi ~ethertype (fun msg -> input t msg);
  t

let datagrams_out t = t.datagrams_out
let fragments_out t = t.fragments_out
let datagrams_in t = t.datagrams_in
let reassemblies t = t.reassemblies
let datagrams_dropped t = t.dropped
let header_failures t = t.header_failures
