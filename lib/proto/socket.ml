open Pnp_engine
open Pnp_xkern

type t = {
  plat : Platform.t;
  pool : Mpool.t;
  sess : Tcp.session;
  inbox : Msg.t Queue.t;
  mutable pending_bytes : int;
  mutable fin : bool;
  mutable waiter : (int -> unit) option; (* a thread blocked in recv *)
}

let wake t =
  match t.waiter with
  | Some resume ->
    t.waiter <- None;
    resume (Sim.now t.plat.Platform.sim)
  | None -> ()

let of_session plat pool sess =
  let t =
    {
      plat;
      pool;
      sess;
      inbox = Queue.create ();
      pending_bytes = 0;
      fin = false;
      waiter = None;
    }
  in
  Tcp.set_receiver sess (fun msg ->
      Queue.push msg t.inbox;
      t.pending_bytes <- t.pending_bytes + Msg.length msg;
      wake t);
  Tcp.set_fin_handler sess (fun () ->
      t.fin <- true;
      wake t);
  t

let connect plat pool tcp ~local_port ~remote_addr ~remote_port =
  let sess = Tcp.connect tcp ~local_port ~remote_addr ~remote_port in
  of_session plat pool sess

let send t msg = Tcp.send t.sess msg

(* Admission control at the application boundary: park for mnode headroom
   BEFORE allocating the message.  Without this a storm of senders can
   exhaust the pool with freshly built messages that [Tcp.send]'s own
   admission check never gets to see.  No-op on unbounded pools. *)
let send_string t s =
  Mpool.await_headroom t.pool;
  send t (Msg.of_string t.pool s)

let rec recv t =
  if not (Queue.is_empty t.inbox) then begin
    let m = Queue.pop t.inbox in
    t.pending_bytes <- t.pending_bytes - Msg.length m;
    Some m
  end
  else if t.fin then None
  else begin
    Sim.suspend t.plat.Platform.sim (fun resume ->
        if t.waiter <> None then failwith "Socket.recv: concurrent receivers";
        t.waiter <- Some resume);
    recv t
  end

let recv_string t =
  match recv t with
  | None -> None
  | Some m ->
    let s = Msg.to_string m in
    Msg.destroy m;
    Some s

let recv_exactly t n =
  let buf = Buffer.create n in
  let rec go () =
    if Buffer.length buf >= n then Some (Buffer.contents buf)
    else
      match recv_string t with
      | None -> None
      | Some s ->
        Buffer.add_string buf s;
        go ()
  in
  (* Chunk boundaries may not line up with [n]; carry any excess back into
     the inbox as a fresh message. *)
  match go () with
  | None -> None
  | Some s when String.length s = n -> Some s
  | Some s ->
    let keep = String.sub s 0 n in
    let rest = String.sub s n (String.length s - n) in
    let m = Msg.of_string t.pool rest in
    (* Put the remainder at the front: drain the queue behind it. *)
    let tail = Queue.copy t.inbox in
    Queue.clear t.inbox;
    Queue.push m t.inbox;
    Queue.transfer tail t.inbox;
    t.pending_bytes <- t.pending_bytes + String.length rest;
    Some keep

let close t = Tcp.close t.sess
let eof t = t.fin && Queue.is_empty t.inbox
let pending_bytes t = t.pending_bytes
let session t = t.sess

module Listener = struct
  type socket = t

  type t = {
    plat : Platform.t;
    accepted : socket Queue.t;
    mutable waiter : (int -> unit) option;
  }

  let listen plat pool tcp ~port =
    let t = { plat; accepted = Queue.create (); waiter = None } in
    Tcp.listen tcp ~local_port:port ~accept:(fun sess ->
        Queue.push (of_session plat pool sess) t.accepted;
        match t.waiter with
        | Some resume ->
          t.waiter <- None;
          resume (Sim.now plat.Platform.sim)
        | None -> ());
    t

  let rec accept t =
    if not (Queue.is_empty t.accepted) then Queue.pop t.accepted
    else begin
      Sim.suspend t.plat.Platform.sim (fun resume ->
          if t.waiter <> None then failwith "Socket.Listener.accept: concurrent accepts";
          t.waiter <- Some resume);
      accept t
    end

  let pending t = Queue.length t.accepted
end
