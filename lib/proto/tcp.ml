open Pnp_engine
open Pnp_xkern

type locking = One | Two | Six | Scr | Rcu

type config = {
  locking : locking;
  checksum : bool;
  cksum_under_lock : bool;
  assume_in_order : bool;
  ticketing : bool;
  nodelay : bool;
  mss : int;
  rcv_wnd : int;
  snd_buf : int;
  syn_backlog : int; (* max half-open children per listener; 0 = unbounded *)
  sb_policy : Sockbuf.policy; (* send-buffer overflow: block or shed *)
  scr_log_bound : int; (* SCR: packet-history log depth before truncation *)
}

let default_config =
  {
    locking = One;
    checksum = true;
    cksum_under_lock = false;
    assume_in_order = false;
    ticketing = false;
    nodelay = false;
    mss = 4096;
    rcv_wnd = 1 lsl 20;
    snd_buf = 1 lsl 20;
    syn_backlog = 128;
    sb_policy = Sockbuf.Block;
    scr_log_bound = 4096;
  }

type stats = {
  mutable segs_in : int;
  mutable segs_out : int;
  mutable acks_in : int;
  mutable acks_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable ooo_segs : int;
  mutable pred_hits : int;
  mutable pred_misses : int;
  mutable rexmits : int;
  mutable dup_acks : int;
  mutable reass_inserts : int;
  mutable persist_probes : int;
}

let fresh_stats () =
  {
    segs_in = 0;
    segs_out = 0;
    acks_in = 0;
    acks_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    ooo_segs = 0;
    pred_hits = 0;
    pred_misses = 0;
    rexmits = 0;
    dup_acks = 0;
    reass_inserts = 0;
    persist_probes = 0;
  }

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

(* A segment built under connection locks, transmitted after they drop.
   [todo] is the checksum work left for [transmit]:
   - [Sum_and_fold]: the reference path — sum the segment and store the
     checksum (or zero the field when checksums are off), then charge the
     header fold;
   - [Fold_charge]: the coalesced pure-ACK path already stored the
     arithmetically computed checksum, but the simulated header-fold
     charge the reference path pays in [transmit] is still owed;
   - [Ck_done]: nothing left (Six computed it under the header-prepend
     lock, or checksums are off and the field is already zero). *)
type cksum_todo = Sum_and_fold | Fold_charge | Ck_done

type pending = { seg : Msg.t; todo : cksum_todo }

(* State-compute replication (SCR): instead of serializing threads on a
   connection-state lock, every arriving segment is appended to a
   per-session sequence-stamped packet-history log, and each thread's
   state replica catches up by replaying the log tail — redundant
   compute in place of lock waiting.  One entry per segment; the entry
   stores the state-delta inputs (header + payload) at append time and
   the measured apply cost plus deferred I/O once applied. *)
type scr_entry = {
  e_hdr : Tcp_wire.header;
  e_msg : Msg.t;
  mutable e_applied : bool;
  mutable e_cost : int; (* simulated ns the apply section consumed *)
  mutable e_out : pending list; (* segments the apply decided to send *)
  mutable e_deliveries : Msg.t list; (* payloads the apply made in-order *)
  mutable e_fin : bool; (* peer's FIN became in-order at this entry *)
}

type scr_log = {
  sl_name : string;
  sl_bound : int; (* ring capacity; history older than this truncates *)
  sl_ring : scr_entry option array; (* slot = idx mod sl_bound *)
  mutable sl_tail : int; (* next append index *)
  mutable sl_applied : int; (* entries [0, sl_applied) are applied *)
  mutable sl_trunc : int; (* entries below this were truncated away *)
  sl_marks : (int, int) Hashtbl.t; (* per-tid replica high watermark *)
  mutable sl_appends : int;
  mutable sl_replayed : int; (* redundant entries replicas replayed *)
  mutable sl_resyncs : int; (* replicas that fell behind a truncation *)
  mutable sl_truncations : int;
  mutable sl_max_depth : int; (* deepest live log observed *)
}

(* Read-mostly hybrid: mutating segments serialize on a writer lock that
   publishes an immutable snapshot of the reader-visible fields at each
   release; provably no-op segments are answered from the snapshot
   without taking the lock at all. *)
type rcu_snap = {
  r_state : state;
  r_snd_una : int;
  r_snd_max : int;
  r_snd_wnd : int;
  r_snd_nxt : int;
  r_rcv_nxt : int;
}

type rcu = {
  ru_wr : Lock.t;
  mutable ru_snap : rcu_snap;
  mutable ru_reads : int; (* segments answered without the writer lock *)
  mutable ru_publishes : int;
}

type locks =
  | L_one of Lock.t
  | L_two of { snd : Lock.t; rcv : Lock.t }
  | L_six of {
      reass : Lock.t;
      rexmt : Lock.t;
      hdr_prep : Lock.t;
      hdr_rem : Lock.t;
      snd_wnd : Lock.t;
      rcv_wnd : Lock.t;
    }
  | L_scr of scr_log
  | L_rcu of rcu

(* BSD timer scale: the slow timeout runs every 500 ms. *)
let slowtimo_ns = Pnp_util.Units.ms 500.0
let fasttimo_ns = Pnp_util.Units.ms 200.0
let rto_min_ns = Pnp_util.Units.ms 100.0
let rto_max_ns = Pnp_util.Units.sec 64.0
let msl_ticks = 60 (* 30 s at 500 ms ticks *)
let max_rxtshift = 12

type tcb = {
  mutable state : state;
  (* send sequence space *)
  mutable iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int;
  mutable snd_wnd : int; (* peer's advertised window *)
  mutable snd_cwnd : int;
  mutable snd_ssthresh : int;
  sb : Sockbuf.t;
  mutable fin_queued : bool; (* close requested; FIN follows the buffered data *)
  mutable fin_sent : bool;
  (* receive sequence space *)
  mutable irs : int;
  mutable rcv_nxt : int;
  rcv_adv_wnd : int; (* what we advertise *)
  mutable reass : (int * Msg.t) list; (* (seq, payload), ascending *)
  mutable rcv_fin_seq : int option; (* sequence number of a queued FIN *)
  (* ack strategy *)
  mutable delack_pending : bool;
  (* timers, in 500 ms ticks; 0 = disarmed *)
  mutable t_rexmt : int;
  mutable t_persist : int;
  mutable t_2msl : int;
  mutable rxtshift : int;
  mutable persist_shift : int;
  (* rtt estimation (ns) *)
  mutable t_rtttime : int; (* 0 = no segment being timed *)
  mutable t_rtseq : int;
  mutable srtt : int;
  mutable rttvar : int;
  mutable rto : int;
  mutable dupacks : int;
  mutable open_waiter : (int -> unit) option; (* connect() blocked here *)
  mutable sb_waiters : (int -> unit) list; (* send() blocked on buffer space *)
  (* SYN backlog: on a listener, how many children sit in Syn_received;
     on a child, whether it currently occupies one of its listener's
     backlog slots. *)
  mutable syn_pending : int;
  mutable syn_counted : bool;
}

module Conn_key = struct
  type t = { lport : int; raddr : int; rport : int }

  let hash k = (k.lport * 40503) lxor (k.raddr * 2654435761) lxor (k.rport * 97)
  let equal a b = a.lport = b.lport && a.raddr = b.raddr && a.rport = b.rport
end

module Conn_map = Xmap.Make (Conn_key)

type t = {
  plat : Platform.t;
  pool : Mpool.t;
  wheel : Timewheel.t;
  ip : Ip.t;
  cfg : config;
  name : string;
  obj_ref : Atomic_ctr.t;
  iss_source : Atomic_ctr.t;
  conns : session Conn_map.t;
  create_lock : Lock.t;
  mutable all_sessions : session list;
  accepting : (session -> unit) Conn_map.t; (* listen ports, wildcard-keyed *)
  mutable timers_running : bool;
  mutable shutdown : bool;
  mutable cksum_failures : int; (* segments discarded by checksum verification *)
  mutable syn_backlog_drops : int; (* SYNs shed by a full listener backlog *)
}

and session = {
  proto : t;
  key : Conn_key.t;
  tcb : tcb;
  state_ns : string; (* namespace for shared-state access annotations *)
  locks : locks;
  gate : Gate.t;
  sess_ref : Atomic_ctr.t;
  mutable receiver : Msg.t -> unit;
  mutable on_fin : unit -> unit; (* upcall once the peer's FIN is in order *)
  st : stats;
}

(* Packet-lifecycle trace spans, keyed by the segment's sequence number
   so a misordered segment's journey is visible end to end in the
   exported trace.  Guarded on the tracer so the disabled path costs one
   field read. *)
let span plat ev =
  let sim = plat.Platform.sim in
  let tracer = Sim.tracer sim in
  if Trace.enabled tracer && Sim.in_thread sim then
    let th = Sim.self sim in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th) ev

let span_begin plat ~seq phase = span plat (Trace.Span_begin { seq; phase })
let span_end plat ~seq phase = span plat (Trace.Span_end { seq; phase })

(* Shared-state access annotations for the Eraser-style lockset checker
   (Pnp_analysis.Lockset).  Each annotated site names the piece of
   per-connection state it touches ("<conn>#snd", "#rcv", "#reass",
   "#sb"); the checker intersects the locks held across all accesses of
   the same name and reports when the intersection goes empty.  Guarded
   on the tracer so the disabled path costs one field read. *)
let access sess ~write field =
  let sim = sess.proto.plat.Platform.sim in
  let tracer = Sim.tracer sim in
  if Trace.enabled tracer && Sim.in_thread sim then
    let th = Sim.self sim in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th)
      (Trace.Access { state = sess.state_ns ^ "#" ^ field; write })

(* ------------------------------------------------------------------ *)
(* Locking disciplines                                                 *)
(* ------------------------------------------------------------------ *)

let make_locks plat disc ~name ~scr_bound = function
  | One -> L_one (Lock.create plat.Platform.sim plat.Platform.arch disc ~name)
  | Two ->
    L_two
      {
        snd = Lock.create plat.Platform.sim plat.Platform.arch disc ~name:(name ^ ".snd");
        rcv = Lock.create plat.Platform.sim plat.Platform.arch disc ~name:(name ^ ".rcv");
      }
  | Six ->
    let mk suffix =
      Lock.create plat.Platform.sim plat.Platform.arch disc ~name:(name ^ suffix)
    in
    L_six
      {
        reass = mk ".reass";
        rexmt = mk ".rexmt";
        hdr_prep = mk ".hprep";
        hdr_rem = mk ".hrem";
        snd_wnd = mk ".swnd";
        rcv_wnd = mk ".rwnd";
      }
  | Scr ->
    L_scr
      {
        sl_name = name ^ ".log";
        sl_bound = scr_bound;
        sl_ring = Array.make scr_bound None;
        sl_tail = 0;
        sl_applied = 0;
        sl_trunc = 0;
        sl_marks = Hashtbl.create 8;
        sl_appends = 0;
        sl_replayed = 0;
        sl_resyncs = 0;
        sl_truncations = 0;
        sl_max_depth = 0;
      }
  | Rcu ->
    L_rcu
      {
        ru_wr =
          Lock.create plat.Platform.sim plat.Platform.arch disc ~name:(name ^ ".wr");
        ru_snap =
          {
            r_state = Closed;
            r_snd_una = 0;
            r_snd_max = 0;
            r_snd_wnd = 0;
            r_snd_nxt = 0;
            r_rcv_nxt = 0;
          };
        ru_reads = 0;
        ru_publishes = 0;
      }

let all_locks sess =
  match sess.locks with
  | L_one l -> [ l ]
  | L_two { snd; rcv } -> [ snd; rcv ]
  | L_six { reass; rexmt; hdr_prep; hdr_rem; snd_wnd; rcv_wnd } ->
    [ reass; rexmt; hdr_prep; hdr_rem; snd_wnd; rcv_wnd ]
  | L_scr _ -> []
  | L_rcu { ru_wr; _ } -> [ ru_wr ]

(* SCR/RCU synchronisation events for the analysis layer, guarded like
   [access] so the disabled path costs one field read. *)
let sync_trace sess ev =
  let sim = sess.proto.plat.Platform.sim in
  let tracer = Sim.tracer sim in
  if Trace.enabled tracer && Sim.in_thread sim then
    let th = Sim.self sim in
    Trace.emit tracer ~ts:(Sim.now sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th) ev

(* An SCR host-atomic section outside the log proper (output path,
   timers, send-buffer mutation): simulated charges accumulate while the
   section runs without a suspension point, and the accumulated cost is
   paid on this thread's clock once the section closes.  The index -1
   marks a section with no log entry; lockset analysis treats the span
   between [Scr_apply] and [Scr_apply_end] as a hold of the synthetic
   log lock either way. *)
let scr_section_begin sess log =
  sync_trace sess (Trace.Scr_apply { log = log.sl_name; idx = -1 });
  Sim.defer_begin sess.proto.plat.Platform.sim

let scr_section_end sess log =
  let cost = Sim.defer_end sess.proto.plat.Platform.sim in
  sync_trace sess (Trace.Scr_apply_end { log = log.sl_name; idx = -1 });
  Sim.delay sess.proto.plat.Platform.sim cost

(* RCU: publish a fresh immutable snapshot of the reader-visible fields.
   Called at every release point, while the writer lock is still held. *)
let rcu_publish sess r =
  let tcb = sess.tcb in
  r.ru_snap <-
    {
      r_state = tcb.state;
      r_snd_una = tcb.snd_una;
      r_snd_max = tcb.snd_max;
      r_snd_wnd = tcb.snd_wnd;
      r_snd_nxt = tcb.snd_nxt;
      r_rcv_nxt = tcb.rcv_nxt;
    };
  r.ru_publishes <- r.ru_publishes + 1;
  Costs.charge sess.proto.plat Costs.rcu_publish;
  sync_trace sess (Trace.Rcu_publish { state = sess.state_ns })

(* The lock(s) guarding the receive path's serialisation point.  Header
   prediction manipulates send-side state on the receive path (the Net/2
   structure), so Two and Six must take both window locks — exactly the
   redundancy Section 5.1 observes makes fine-grained locking lose. *)
let input_acquire sess =
  match sess.locks with
  | L_one l -> Lock.acquire l
  | L_two { snd; rcv } ->
    Lock.acquire snd;
    Lock.acquire rcv
  | L_six { snd_wnd; rcv_wnd; _ } ->
    Lock.acquire snd_wnd;
    Lock.acquire rcv_wnd
  | L_scr log -> scr_section_begin sess log
  | L_rcu r -> Lock.acquire r.ru_wr

let input_release sess =
  match sess.locks with
  | L_one l -> Lock.release l
  | L_two { snd; rcv } ->
    Lock.release rcv;
    Lock.release snd
  | L_six { snd_wnd; rcv_wnd; _ } ->
    Lock.release rcv_wnd;
    Lock.release snd_wnd
  | L_scr log -> scr_section_end sess log
  | L_rcu r ->
    rcu_publish sess r;
    Lock.release r.ru_wr

(* The lock(s) guarding the send path. *)
let output_acquire sess =
  match sess.locks with
  | L_one l -> Lock.acquire l
  | L_two { snd; _ } -> Lock.acquire snd
  | L_six { snd_wnd; _ } -> Lock.acquire snd_wnd
  | L_scr log -> scr_section_begin sess log
  | L_rcu r -> Lock.acquire r.ru_wr

let output_release sess =
  match sess.locks with
  | L_one l -> Lock.release l
  | L_two { snd; _ } -> Lock.release snd
  | L_six { snd_wnd; _ } -> Lock.release snd_wnd
  | L_scr log -> scr_section_end sess log
  | L_rcu r ->
    rcu_publish sess r;
    Lock.release r.ru_wr

(* Six-only scoped sections; no-ops for One/Two (already covered by the
   coarser lock). *)
let with_reass_lock sess f =
  match sess.locks with L_six { reass; _ } -> Lock.with_lock reass f | _ -> f ()

let with_rexmt_lock sess f =
  match sess.locks with L_six { rexmt; _ } -> Lock.with_lock rexmt f | _ -> f ()

(* Ack processing on the receive path touches send state; under every
   discipline the necessary locks are already held by input_acquire. *)
let with_send_state _sess f = f ()

let with_hdr_prep sess f =
  match sess.locks with L_six { hdr_prep; _ } -> Lock.with_lock hdr_prep f | _ -> f ()

let with_hdr_rem sess f =
  match sess.locks with L_six { hdr_rem; _ } -> Lock.with_lock hdr_rem f | _ -> f ()

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let fresh_tcb t =
  {
    state = Closed;
    iss = 0;
    snd_una = 0;
    snd_nxt = 0;
    snd_max = 0;
    snd_wnd = 0;
    snd_cwnd = t.cfg.mss;
    snd_ssthresh = 1 lsl 30;
    sb = Sockbuf.create ~policy:t.cfg.sb_policy t.pool ~max:t.cfg.snd_buf;
    fin_queued = false;
    fin_sent = false;
    irs = 0;
    rcv_nxt = 0;
    rcv_adv_wnd = t.cfg.rcv_wnd;
    reass = [];
    rcv_fin_seq = None;
    delack_pending = false;
    t_rexmt = 0;
    t_persist = 0;
    t_2msl = 0;
    rxtshift = 0;
    persist_shift = 0;
    t_rtttime = 0;
    t_rtseq = 0;
    srtt = 0;
    rttvar = 0;
    rto = Pnp_util.Units.sec 1.0;
    dupacks = 0;
    open_waiter = None;
    sb_waiters = [];
    syn_pending = 0;
    syn_counted = false;
  }

let fresh_session t key =
  let base =
    Printf.sprintf "%s.conn:%d-%x:%d" t.name key.Conn_key.lport key.Conn_key.raddr
      key.Conn_key.rport
  in
  {
    proto = t;
    key;
    tcb = fresh_tcb t;
    state_ns = base;
    locks =
      make_locks t.plat t.plat.Platform.lock_disc ~name:base
        ~scr_bound:t.cfg.scr_log_bound t.cfg.locking;
    gate = Gate.create t.plat.Platform.sim t.plat.Platform.arch ~name:"tcp.order";
    sess_ref = Platform.refcnt t.plat ~name:"tcp.sess" ~init:1;
    receiver = (fun msg -> Msg.destroy msg);
    on_fin = (fun () -> ());
    st = fresh_stats ();
  }

(* ------------------------------------------------------------------ *)
(* Segment emission                                                    *)
(* ------------------------------------------------------------------ *)

let advertised_window tcb = tcb.rcv_adv_wnd

(* Build a segment. Caller holds the locks its discipline requires for the
   snd-state it read; Six additionally wraps the header work (and, per the
   SICS code, the checksum) in the header-prepend lock. *)
let emit sess ~flags ~seq ~payload acc =
  let t = sess.proto in
  let tcb = sess.tcb in
  let hdr =
    {
      Tcp_wire.sport = sess.key.Conn_key.lport;
      dport = sess.key.Conn_key.rport;
      seq;
      ack = tcb.rcv_nxt;
      flags;
      win = advertised_window tcb;
      cksum = 0;
    }
  in
  match payload with
  | None when Mpool.sum_cache_enabled () ->
    (* Coalesced header-only emission (gated with the rest of the
       coalescing fast paths by PNP_NO_COALESCE): redundant pure ACKs all
       rebuild the same 24-byte shape, so build it in one pass with an
       arithmetic checksum instead of encode-then-rescan.  Wire bytes,
       stats, and every simulated charge are identical to the reference
       path below — the checksum charge is placed exactly where that path
       computed it. *)
    let msg = Msg.create t.pool 0 in
    let under_lock =
      t.cfg.checksum
      &&
      match sess.locks with
      | L_six _ -> true
      | L_one _ | L_two _ | L_rcu _ -> t.cfg.cksum_under_lock
      | L_scr _ -> false
    in
    with_hdr_prep sess (fun () ->
        Tcp_wire.encode_empty msg hdr ~src:(Ip.local_addr t.ip)
          ~dst:sess.key.Conn_key.raddr ~checksum:t.cfg.checksum;
        if under_lock then Inet_cksum.charge t.plat msg);
    sess.st.segs_out <- sess.st.segs_out + 1;
    if not flags.Tcp_wire.syn then sess.st.acks_out <- sess.st.acks_out + 1;
    let todo =
      if t.cfg.checksum && not under_lock then Fold_charge else Ck_done
    in
    { seg = msg; todo } :: acc
  | _ ->
    let msg = match payload with Some m -> m | None -> Msg.create t.pool 0 in
    let cksummed = ref false in
    with_hdr_prep sess (fun () ->
        Tcp_wire.encode msg hdr;
        match sess.locks with
        | L_six _ when t.cfg.checksum ->
          (* SICS-style: checksum while the header lock is held. *)
          Tcp_wire.store_checksum t.plat ~src:(Ip.local_addr t.ip)
            ~dst:sess.key.Conn_key.raddr msg;
          cksummed := true
        | (L_one _ | L_two _ | L_rcu _) when t.cfg.checksum && t.cfg.cksum_under_lock ->
          (* Ablation: the unrestructured placement, checksum inside the
             connection-state lock the caller holds. *)
          Tcp_wire.store_checksum t.plat ~src:(Ip.local_addr t.ip)
            ~dst:sess.key.Conn_key.raddr msg;
          cksummed := true
        | _ -> ());
    sess.st.segs_out <- sess.st.segs_out + 1;
    if Msg.length msg = Tcp_wire.header_bytes && not flags.Tcp_wire.syn then
      sess.st.acks_out <- sess.st.acks_out + 1;
    { seg = msg; todo = (if !cksummed then Ck_done else Sum_and_fold) } :: acc

let emit_ack sess acc =
  let tcb = sess.tcb in
  Costs.charge sess.proto.plat Costs.tcp_ack_locked;
  tcb.delack_pending <- false;
  emit sess ~flags:Tcp_wire.flag_ack ~seq:tcb.snd_nxt ~payload:None acc

(* Transmit segments built under the locks.  For One/Two the payload
   checksum pass was charged before the lock was taken (the Section 5.1
   restructuring: data is summed outside any connection-state lock and the
   header folded in incrementally here), so only the header fold is
   charged now. *)
let transmit sess pendings =
  let t = sess.proto in
  List.iter
    (fun p ->
      (match p.todo with
       | Sum_and_fold when t.cfg.checksum ->
         Tcp_wire.store_checksum_free ~src:(Ip.local_addr t.ip)
           ~dst:sess.key.Conn_key.raddr p.seg;
         Costs.charge t.plat 40 (* fold the header into the data sum *)
       | Sum_and_fold ->
         (* Zero checksum field: receivers skip verification too. *)
         Msg.set_u16 p.seg 18 0
       | Fold_charge ->
         (* Checksum already stored arithmetically; the simulated fold
            cost the reference path charges here is still due. *)
         Costs.charge t.plat 40
       | Ck_done -> ());
      Costs.charge t.plat Costs.tcp_output_unlocked;
      Ip.output t.ip ~proto:Tcp_wire.protocol_number ~dst:sess.key.Conn_key.raddr p.seg)
    (List.rev pendings)


let set_rexmt_timer tcb =
  (* BSD floors the retransmit timer at 2 ticks: with one tick a restart
     just before a slow-timeout boundary would fire spuriously while acks
     are still flowing. *)
  let ticks = (tcb.rto + slowtimo_ns - 1) / slowtimo_ns in
  let ticks = max 2 ticks in
  tcb.t_rexmt <- ticks lsl min tcb.rxtshift 6

(* Build at most ONE new segment (or the FIN).  Caller holds the
   send-state lock(s); Six takes rexmt/header locks inside.  One segment
   per lock hold is the BSD tcp_output structure, and it is what keeps
   send-side wire order: sequence numbers are assigned at least a locked
   section apart, which exceeds the post-lock flight time to the driver
   (Section 4.1 measures <1% send-side misordering). *)
let build_one sess =
  let t = sess.proto in
  let tcb = sess.tcb in
  access sess ~write:false "snd";
  let in_flight = Tcp_seq.diff tcb.snd_nxt tcb.snd_una in
  let wnd = min tcb.snd_wnd tcb.snd_cwnd in
  let off = in_flight in
  let unsent = Sockbuf.cc tcb.sb - off in
  let len = min t.cfg.mss (min unsent (wnd - in_flight)) in
  (* Nagle (RFC 896, as in Net/2): hold a small segment while earlier data
     is unacknowledged, unless it is all we will ever have (FIN queued) or
     the window itself is what made it small. *)
  let nagle_holds =
    (not t.cfg.nodelay) && len > 0 && len < t.cfg.mss && in_flight > 0
    && unsent <= len && not tcb.fin_queued
  in
  if len > 0 && not nagle_holds then begin
    Costs.charge t.plat Costs.tcp_output_locked;
    access sess ~write:true "snd";
    let payload =
      with_rexmt_lock sess (fun () ->
          access sess ~write:false "sb";
          Sockbuf.peek tcb.sb ~off ~len)
    in
    let seq = tcb.snd_nxt in
    tcb.snd_nxt <- Tcp_seq.add tcb.snd_nxt len;
    tcb.snd_max <- Tcp_seq.max tcb.snd_max tcb.snd_nxt;
    (* Time one segment per window for RTT estimation. *)
    if tcb.t_rtttime = 0 then begin
      tcb.t_rtttime <- Sim.now t.plat.Platform.sim;
      tcb.t_rtseq <- seq
    end;
    if tcb.t_rexmt = 0 then set_rexmt_timer tcb;
    tcb.delack_pending <- false;
    emit sess ~flags:Tcp_wire.flag_ack ~seq ~payload:(Some payload) []
  end
  else if
    unsent > 0 && wnd - in_flight <= 0 && in_flight = 0
    && tcb.t_rexmt = 0 && tcb.t_persist = 0
  then begin
    (* Zero window with nothing in flight: nothing will ever ack; arm the
       persist timer so we probe the window (BSD tcp_setpersist). *)
    let ticks = max 2 ((tcb.rto + slowtimo_ns - 1) / slowtimo_ns) in
    tcb.t_persist <- ticks lsl min tcb.persist_shift 6;
    []
  end
  else if tcb.fin_queued && (not tcb.fin_sent) && unsent <= 0 then begin
    Costs.charge t.plat Costs.tcp_conn_setup;
    access sess ~write:true "snd";
    let seq = tcb.snd_nxt in
    tcb.snd_nxt <- Tcp_seq.add tcb.snd_nxt 1;
    tcb.snd_max <- Tcp_seq.max tcb.snd_max tcb.snd_nxt;
    tcb.fin_sent <- true;
    if tcb.t_rexmt = 0 then set_rexmt_timer tcb;
    emit sess ~flags:Tcp_wire.flag_fin_ack ~seq ~payload:None []
  end
  else []

(* Drain permitted data: one segment per lock hold (see build_one). *)
let rec pump sess =
  output_acquire sess;
  let segs = build_one sess in
  output_release sess;
  match segs with
  | [] -> ()
  | _ ->
    transmit sess segs;
    pump sess

(* ------------------------------------------------------------------ *)
(* Input processing                                                    *)
(* ------------------------------------------------------------------ *)

let wake_sb_waiters sess =
  let tcb = sess.tcb in
  let ws = tcb.sb_waiters in
  tcb.sb_waiters <- [];
  let now = Sim.now sess.proto.plat.Platform.sim in
  List.iter (fun resume -> resume now) ws

let update_rtt tcb ~now =
  let delta = now - tcb.t_rtttime in
  tcb.t_rtttime <- 0;
  if tcb.srtt = 0 then begin
    tcb.srtt <- delta;
    tcb.rttvar <- delta / 2
  end
  else begin
    let err = delta - tcb.srtt in
    tcb.srtt <- tcb.srtt + (err / 8);
    tcb.rttvar <- tcb.rttvar + ((abs err - tcb.rttvar) / 4)
  end;
  tcb.rto <- min rto_max_ns (max rto_min_ns (tcb.srtt + (4 * tcb.rttvar)));
  tcb.rxtshift <- 0

(* Process an acceptable ack: drop acknowledged bytes, advance windows,
   grow the congestion window.  Caller holds send-state locks. *)
let process_ack sess ~ack ~now acc =
  let tcb = sess.tcb in
  let t = sess.proto in
  let acked = Tcp_seq.diff ack tcb.snd_una in
  if acked <= 0 then acc
  else begin
    access sess ~write:true "snd";
    if tcb.t_rtttime <> 0 && Tcp_seq.gt ack tcb.t_rtseq then update_rtt tcb ~now;
    (* Congestion window growth (Tahoe). *)
    let incr_ =
      if tcb.snd_cwnd <= tcb.snd_ssthresh then t.cfg.mss
      else max 1 (t.cfg.mss * t.cfg.mss / tcb.snd_cwnd)
    in
    tcb.snd_cwnd <- min (tcb.snd_cwnd + incr_) (1 lsl 30);
    let fin_acked =
      tcb.fin_sent && Tcp_seq.geq ack tcb.snd_max
      && Tcp_seq.diff tcb.snd_max tcb.snd_una = Sockbuf.cc tcb.sb + 1
    in
    let data_acked = min acked (Sockbuf.cc tcb.sb) in
    with_rexmt_lock sess (fun () ->
        if data_acked > 0 then begin
          access sess ~write:true "sb";
          Sockbuf.drop tcb.sb data_acked
        end);
    tcb.snd_una <- ack;
    if Tcp_seq.lt tcb.snd_nxt tcb.snd_una then tcb.snd_nxt <- tcb.snd_una;
    tcb.dupacks <- 0;
    (* Restart or stop the retransmission timer. *)
    if Tcp_seq.geq tcb.snd_una tcb.snd_max then tcb.t_rexmt <- 0 else set_rexmt_timer tcb;
    wake_sb_waiters sess;
    (* FIN-related state advances. *)
    (match tcb.state with
     | Fin_wait_1 when fin_acked -> tcb.state <- Fin_wait_2
     | Closing when fin_acked ->
       tcb.state <- Time_wait;
       tcb.t_2msl <- msl_ticks
     | Last_ack when fin_acked -> tcb.state <- Closed
     | _ -> ());
    acc
  end

(* Retransmit one segment from the front of the window (timeout or fast
   retransmit).  Caller holds send-state locks.  In the opening states the
   front of the window is the SYN (or SYN-ACK) itself: re-emitting it is
   what keeps handshakes live across a lossy link or a backlog drop —
   without it a single lost SYN wedges the connect forever. *)
let retransmit sess acc =
  let t = sess.proto in
  let tcb = sess.tcb in
  sess.st.rexmits <- sess.st.rexmits + 1;
  Costs.charge t.plat Costs.tcp_output_locked;
  access sess ~write:true "snd";
  match tcb.state with
  | Syn_sent ->
    (* The caller rewound snd_nxt to snd_una (= iss); the re-emitted SYN
       occupies that sequence slot again. *)
    tcb.snd_nxt <- Tcp_seq.max tcb.snd_nxt (Tcp_seq.add tcb.iss 1);
    emit sess ~flags:Tcp_wire.flag_syn ~seq:tcb.iss ~payload:None acc
  | Syn_received ->
    tcb.snd_nxt <- Tcp_seq.max tcb.snd_nxt (Tcp_seq.add tcb.iss 1);
    emit sess ~flags:Tcp_wire.flag_syn_ack ~seq:tcb.iss ~payload:None acc
  | _ ->
    let len = min t.cfg.mss (Sockbuf.cc tcb.sb) in
    tcb.snd_nxt <- Tcp_seq.max tcb.snd_nxt (Tcp_seq.add tcb.snd_una len);
    if len > 0 then begin
      let payload =
        with_rexmt_lock sess (fun () ->
            access sess ~write:false "sb";
            Sockbuf.peek tcb.sb ~off:0 ~len)
      in
      emit sess ~flags:Tcp_wire.flag_ack ~seq:tcb.snd_una ~payload:(Some payload) acc
    end
    else if tcb.fin_sent then
      emit sess ~flags:Tcp_wire.flag_fin_ack ~seq:tcb.snd_una ~payload:None acc
    else acc

(* Insert an out-of-order segment into the reassembly queue (no overlap
   merging: overlapping duplicates were trimmed by the caller, and our
   peers never send overlapping runs). *)
let reass_insert sess seq msg =
  let tcb = sess.tcb in
  sess.st.reass_inserts <- sess.st.reass_inserts + 1;
  Costs.charge sess.proto.plat Costs.tcp_reass_insert;
  with_reass_lock sess (fun () ->
      access sess ~write:true "reass";
      let rec ins = function
        | [] -> [ (seq, msg) ]
        | (s, m) :: rest as all ->
          if Tcp_seq.lt seq s then (seq, msg) :: all
          else if seq = s then begin
            (* exact duplicate *)
            Msg.destroy msg;
            all
          end
          else (s, m) :: ins rest
      in
      tcb.reass <- ins tcb.reass)

(* Drain now-contiguous segments from the reassembly queue. *)
let reass_drain sess deliveries =
  let tcb = sess.tcb in
  (* lint:allow state-matrix: caller-locked — reached only from slow_path,
     under segment_arrives' input locks (and, for discipline six, the
     reass lock it acquires up front). *)
  if tcb.reass <> [] then access sess ~write:true "reass";
  let rec go acc =
    match tcb.reass with
    | (s, m) :: rest when s = tcb.rcv_nxt ->
      Costs.charge sess.proto.plat Costs.tcp_reass_drain_per_seg;
      tcb.reass <- rest;
      tcb.rcv_nxt <- Tcp_seq.add tcb.rcv_nxt (Msg.length m);
      go (m :: acc)
    | (s, m) :: rest when Tcp_seq.lt s tcb.rcv_nxt ->
      (* stale duplicate that got queued *)
      Msg.destroy m;
      tcb.reass <- rest;
      go acc
    | _ -> List.rev acc
  in
  let msgs = go [] in
  List.fold_left
    (fun dels m ->
      sess.st.bytes_in <- sess.st.bytes_in + Msg.length m;
      m :: dels)
    deliveries msgs

(* Deliver one in-order payload (fast path). *)
let deliver_in_order sess msg deliveries =
  sess.st.bytes_in <- sess.st.bytes_in + Msg.length msg;
  msg :: deliveries

(* The full (slow-path) segment processing for an established-ish state.
   Returns (to_send, deliveries) accumulated. *)
let slow_path sess (hdr : Tcp_wire.header) msg ~now acc deliveries =
  let t = sess.proto in
  let tcb = sess.tcb in
  Costs.charge t.plat Costs.tcp_input_slow_locked;
  sess.st.pred_misses <- sess.st.pred_misses + 1;
  let acc = ref acc and deliveries = ref deliveries in
  let seq = ref hdr.seq in
  let ack_now = ref false in
  (* Trim data we already received. *)
  let overlap = Tcp_seq.diff tcb.rcv_nxt !seq in
  if overlap > 0 then begin
    let len = Msg.length msg in
    if overlap >= len && not hdr.flags.Tcp_wire.syn then begin
      (* complete duplicate: ack it again *)
      Msg.truncate msg 0;
      ack_now := true;
      seq := tcb.rcv_nxt
    end
    else if overlap <= len then begin
      Msg.pop msg (min overlap len);
      seq := tcb.rcv_nxt
    end
  end;
  (* Window update. *)
  if hdr.flags.Tcp_wire.ack then begin
    access sess ~write:true "snd";
    tcb.snd_wnd <- hdr.win;
    if hdr.win > 0 then begin
      tcb.t_persist <- 0;
      tcb.persist_shift <- 0
    end;
    (* Ack processing (may include duplicate-ack fast retransmit). *)
    with_send_state sess (fun () ->
        if Tcp_seq.gt hdr.ack tcb.snd_una && Tcp_seq.leq hdr.ack tcb.snd_max then
          acc := process_ack sess ~ack:hdr.ack ~now !acc
        else if
          Msg.length msg = 0 && hdr.ack = tcb.snd_una
          && Tcp_seq.gt tcb.snd_max tcb.snd_una
        then begin
          sess.st.dup_acks <- sess.st.dup_acks + 1;
          tcb.dupacks <- tcb.dupacks + 1;
          if tcb.dupacks = 3 then begin
            (* Tahoe fast retransmit *)
            let flight = min tcb.snd_wnd tcb.snd_cwnd in
            tcb.snd_ssthresh <- max (2 * t.cfg.mss) (flight / 2);
            tcb.snd_cwnd <- t.cfg.mss;
            tcb.snd_nxt <- tcb.snd_una;
            acc := retransmit sess !acc
          end
        end)
  end;
  (* Data. *)
  let len = Msg.length msg in
  if len > 0 then begin
    if !seq = tcb.rcv_nxt then begin
      access sess ~write:true "rcv";
      tcb.rcv_nxt <- Tcp_seq.add tcb.rcv_nxt len;
      deliveries := deliver_in_order sess msg !deliveries;
      deliveries := reass_drain sess !deliveries;
      if tcb.delack_pending then ack_now := true else tcb.delack_pending <- true
    end
    else begin
      (* Out of order: queue it and ack immediately (duplicate ack). *)
      reass_insert sess !seq msg;
      ack_now := true
    end
  end
  else if len = 0 && not (hdr.flags.Tcp_wire.fin || hdr.flags.Tcp_wire.syn) then
    Msg.destroy msg;
  (* FIN handling. *)
  if hdr.flags.Tcp_wire.fin then begin
    let fin_seq = Tcp_seq.add !seq len in
    if fin_seq = tcb.rcv_nxt then begin
      access sess ~write:true "rcv";
      tcb.rcv_nxt <- Tcp_seq.add tcb.rcv_nxt 1;
      ack_now := true;
      if len = 0 then Msg.destroy msg;
      (match tcb.state with
       | Established -> tcb.state <- Close_wait
       | Fin_wait_1 ->
         (* our FIN not yet acked: simultaneous close *)
         tcb.state <- Closing
       | Fin_wait_2 ->
         tcb.state <- Time_wait;
         tcb.t_2msl <- msl_ticks
       | _ -> ())
    end
    else begin
      tcb.rcv_fin_seq <- Some fin_seq;
      if len = 0 then Msg.destroy msg;
      ack_now := true
    end
  end;
  (* A queued FIN may have become in-order after reassembly drain. *)
  (match tcb.rcv_fin_seq with
   | Some fs when fs = tcb.rcv_nxt ->
     tcb.rcv_fin_seq <- None;
     tcb.rcv_nxt <- Tcp_seq.add tcb.rcv_nxt 1;
     ack_now := true;
     (match tcb.state with
      | Established -> tcb.state <- Close_wait
      | Fin_wait_1 -> tcb.state <- Closing
      | Fin_wait_2 ->
        tcb.state <- Time_wait;
        tcb.t_2msl <- msl_ticks
      | _ -> ())
   | _ -> ());
  (* New data permitted by the ack is sent by the caller (pump) after the
     input locks drop; here only emit an explicit ack if required. *)
  if !ack_now then acc := emit_ack sess !acc;
  (!acc, !deliveries)

(* Header prediction, Net/2 style (Section 4.1 depends on this fast path
   being order-sensitive). *)
let established_input sess (hdr : Tcp_wire.header) msg ~now acc deliveries =
  let t = sess.proto in
  let tcb = sess.tcb in
  let len = Msg.length msg in
  (* The Figure 10 "assumed in-order" upper bound: pretend every data
     segment landed exactly on rcv_nxt. *)
  let hdr =
    if t.cfg.assume_in_order && len > 0 && hdr.flags.Tcp_wire.ack && not hdr.flags.Tcp_wire.fin
    then { hdr with Tcp_wire.seq = tcb.rcv_nxt; ack = tcb.snd_una }
    else hdr
  in
  if len > 0 && hdr.seq <> tcb.rcv_nxt then
    sess.st.ooo_segs <- sess.st.ooo_segs + 1;
  let f = hdr.flags in
  if f.Tcp_wire.rst then begin
    (* A reset tears the connection down immediately (no challenge-ack
       subtleties; the simulated network cannot spoof). *)
    tcb.state <- Closed;
    tcb.t_rexmt <- 0;
    tcb.t_persist <- 0;
    Msg.destroy msg;
    (acc, deliveries)
  end
  else
  let predictable =
    tcb.state = Established && f.Tcp_wire.ack
    && (not (f.Tcp_wire.syn || f.Tcp_wire.fin || f.Tcp_wire.rst))
    && hdr.win = tcb.snd_wnd
    && tcb.snd_nxt = tcb.snd_max
    && hdr.seq = tcb.rcv_nxt
  in
  if predictable && len = 0 && Tcp_seq.gt hdr.ack tcb.snd_una
     && Tcp_seq.leq hdr.ack tcb.snd_max
     && tcb.snd_cwnd >= tcb.snd_wnd
  then begin
    (* Fast path 1: pure ack advancing snd_una. *)
    Costs.charge t.plat Costs.tcp_input_pred_locked;
    sess.st.pred_hits <- sess.st.pred_hits + 1;
    Msg.destroy msg;
    let acc = with_send_state sess (fun () -> process_ack sess ~ack:hdr.ack ~now acc) in
    (acc, deliveries)
  end
  else if predictable && len > 0 && hdr.ack = tcb.snd_una && tcb.reass = [] then begin
    (* Fast path 2: pure in-order data. *)
    Costs.charge t.plat Costs.tcp_input_pred_locked;
    sess.st.pred_hits <- sess.st.pred_hits + 1;
    access sess ~write:true "rcv";
    tcb.rcv_nxt <- Tcp_seq.add tcb.rcv_nxt len;
    let deliveries = deliver_in_order sess msg deliveries in
    (* Net/2 acks every other segment: the first leaves a delayed ack
       pending, the second forces it out. *)
    let acc =
      if tcb.delack_pending then emit_ack sess acc
      else begin
        tcb.delack_pending <- true;
        acc
      end
    in
    (acc, deliveries)
  end
  else slow_path sess hdr msg ~now acc deliveries

(* A child leaving Syn_received gives its listener's backlog slot back.
   The listener is found through the wildcard demux entry; if it closed
   meanwhile there is no backlog left to credit. *)
let release_syn_slot sess =
  let t = sess.proto in
  let tcb = sess.tcb in
  if tcb.syn_counted then begin
    tcb.syn_counted <- false;
    let lkey = { Conn_key.lport = sess.key.Conn_key.lport; raddr = 0; rport = 0 } in
    match Conn_map.lookup t.conns lkey with
    | Some l when l.tcb.state = Listen -> l.tcb.syn_pending <- l.tcb.syn_pending - 1
    | _ -> ()
  end

(* Non-established states: the connection machinery. *)
let opening_input sess (hdr : Tcp_wire.header) msg ~now acc deliveries =
  let t = sess.proto in
  let tcb = sess.tcb in
  Costs.charge t.plat Costs.tcp_conn_setup;
  let f = hdr.flags in
  match tcb.state with
  | Syn_sent when f.Tcp_wire.syn && f.Tcp_wire.ack && hdr.ack = Tcp_seq.add tcb.iss 1 ->
    tcb.irs <- hdr.seq;
    tcb.rcv_nxt <- Tcp_seq.add hdr.seq 1;
    tcb.snd_una <- hdr.ack;
    tcb.snd_wnd <- hdr.win;
    tcb.state <- Established;
    tcb.t_rexmt <- 0;
    Msg.destroy msg;
    (match tcb.open_waiter with
     | Some resume ->
       tcb.open_waiter <- None;
       (* Resume at the current instant, not the segment's arrival time:
          input processing has consumed simulated time since then. *)
       resume (Sim.now t.plat.Platform.sim)
     | None -> ());
    (emit_ack sess acc, deliveries)
  | Syn_received when f.Tcp_wire.ack && hdr.ack = Tcp_seq.add tcb.iss 1 ->
    tcb.snd_una <- hdr.ack;
    tcb.snd_wnd <- hdr.win;
    tcb.state <- Established;
    tcb.t_rexmt <- 0;
    release_syn_slot sess;
    if Msg.length msg > 0 then
      (* data arrived with the handshake ack *)
      established_input sess { hdr with Tcp_wire.flags = Tcp_wire.flag_ack } msg ~now acc
        deliveries
    else begin
      Msg.destroy msg;
      (acc, deliveries)
    end
  | Time_wait when f.Tcp_wire.fin ->
    (* peer retransmitted its FIN: re-ack *)
    Msg.destroy msg;
    (emit_ack sess acc, deliveries)
  | _ when f.Tcp_wire.rst ->
    tcb.state <- Closed;
    release_syn_slot sess;
    Msg.destroy msg;
    (acc, deliveries)
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
    established_input sess hdr msg ~now acc deliveries
  | _ ->
    (* Drop everything else. *)
    Msg.destroy msg;
    (acc, deliveries)

(* ------------------------------------------------------------------ *)
(* State-compute replication (SCR) input path                          *)
(* ------------------------------------------------------------------ *)

let scr_entry_at log idx =
  match log.sl_ring.(idx mod log.sl_bound) with
  | Some e -> e
  | None -> invalid_arg "Tcp: SCR log entry missing"

(* Append one segment to the packet-history log.  The append itself is
   host-atomic (stamp + store, no suspension point), so log order is the
   arrival order of append operations. *)
let scr_append_entry sess log hdr msg =
  let idx = log.sl_tail in
  log.sl_ring.(idx mod log.sl_bound) <-
    Some
      {
        e_hdr = hdr;
        e_msg = msg;
        e_applied = false;
        e_cost = 0;
        e_out = [];
        e_deliveries = [];
        e_fin = false;
      };
  log.sl_tail <- idx + 1;
  log.sl_appends <- log.sl_appends + 1;
  let depth = log.sl_tail - log.sl_trunc in
  if depth > log.sl_max_depth then log.sl_max_depth <- depth;
  sync_trace sess (Trace.Scr_append { log = log.sl_name; idx });
  (* Bounded log: retire the history the ring is about to overwrite.
     Entries apply in the same host event burst as their append, so
     sl_applied trails sl_tail by at most one and truncation can never
     discard an unapplied entry. *)
  if log.sl_tail - log.sl_trunc > log.sl_bound then begin
    log.sl_trunc <- log.sl_tail - log.sl_bound;
    log.sl_truncations <- log.sl_truncations + 1
  end;
  idx

(* Apply one log entry to the authoritative connection state as a
   host-atomic section: simulated charges are deferred into the entry,
   and the I/O the apply decided on (segments, deliveries, FIN verdict)
   is stored for the entry's owner to perform on its own clock. *)
let scr_apply_entry sess log idx =
  let e = scr_entry_at log idx in
  if not e.e_applied then begin
    e.e_applied <- true;
    sync_trace sess (Trace.Scr_apply { log = log.sl_name; idx });
    let sim = sess.proto.plat.Platform.sim in
    let now = Sim.now sim in
    Sim.defer_begin sim;
    let acc, deliveries =
      match sess.tcb.state with
      | Established -> established_input sess e.e_hdr e.e_msg ~now [] []
      | _ -> opening_input sess e.e_hdr e.e_msg ~now [] []
    in
    e.e_out <- acc;
    e.e_deliveries <- deliveries;
    e.e_fin <-
      (match sess.tcb.state with
       | Close_wait | Closing | Last_ack | Time_wait -> true
       | Closed -> e.e_hdr.Tcp_wire.flags.Tcp_wire.fin
       | _ -> false);
    e.e_cost <- Sim.defer_end sim;
    sync_trace sess (Trace.Scr_apply_end { log = log.sl_name; idx });
    log.sl_applied <- idx + 1
  end

(* The SCR receive path.  No connection-state lock exists: the segment
   is appended to the log, unapplied entries are applied in log order
   (usually just our own; a thread that overtook us during the append
   tax may already have applied it), this thread's replica pays the
   redundant-replay tax for entries other threads appended since its
   last packet, and finally the entry's stored cost and I/O land on the
   owner's clock.  With K threads, per-packet work is F + (K-1)*r
   instead of a serialized F hold — the log-replay trade the paper's
   lock ladder never reaches. *)
let scr_segment_arrives sess log (hdr : Tcp_wire.header) msg =
  let t = sess.proto in
  let sim = t.plat.Platform.sim in
  let tid = if Sim.in_thread sim then Sim.tid (Sim.self sim) else -1 in
  let idx = scr_append_entry sess log hdr msg in
  Costs.charge t.plat Costs.scr_append;
  while log.sl_applied < log.sl_tail do
    scr_apply_entry sess log log.sl_applied
  done;
  let mark =
    match Hashtbl.find_opt log.sl_marks tid with
    | Some m when m >= log.sl_trunc -> m
    | Some _ ->
      (* Fell behind a truncation: resynchronise from the authoritative
         snapshot, then replay what the bounded log still holds. *)
      log.sl_resyncs <- log.sl_resyncs + 1;
      Costs.charge t.plat Costs.scr_resync;
      log.sl_trunc
    | None ->
      (* Replica bootstrap: join at the current position from the
         snapshot rather than replaying the whole surviving log. *)
      log.sl_resyncs <- log.sl_resyncs + 1;
      Costs.charge t.plat Costs.scr_resync;
      idx
  in
  let gap = idx - mark in
  if gap > 0 then begin
    log.sl_replayed <- log.sl_replayed + gap;
    Costs.charge t.plat (Costs.scr_replay_per_entry * gap);
    sync_trace sess (Trace.Scr_replay { log = log.sl_name; upto = idx })
  end;
  Hashtbl.replace log.sl_marks tid (idx + 1);
  (* Our own entry: pay its measured processing cost on this thread's
     clock, then perform the I/O the apply deferred. *)
  let e = scr_entry_at log idx in
  span_begin t.plat ~seq:hdr.seq Trace.Tcp_input;
  Sim.delay sim e.e_cost;
  span_end t.plat ~seq:hdr.seq Trace.Tcp_input;
  let out = e.e_out in
  e.e_out <- [];
  transmit sess out;
  pump sess;
  let deliveries = e.e_deliveries in
  e.e_deliveries <- [];
  span_begin t.plat ~seq:hdr.seq Trace.Upcall;
  List.iter (fun m -> sess.receiver m) (List.rev deliveries);
  span_end t.plat ~seq:hdr.seq Trace.Upcall;
  if e.e_fin then sess.on_fin ()

(* ------------------------------------------------------------------ *)
(* RCU read path                                                       *)
(* ------------------------------------------------------------------ *)

(* Answer a fully duplicate data segment with an ack built purely from
   the published snapshot — no connection state is read or written. *)
let rcu_emit_dup_ack sess snap =
  let t = sess.proto in
  Costs.charge t.plat Costs.tcp_ack_locked;
  let hdr =
    {
      Tcp_wire.sport = sess.key.Conn_key.lport;
      dport = sess.key.Conn_key.rport;
      seq = snap.r_snd_nxt;
      ack = snap.r_rcv_nxt;
      flags = Tcp_wire.flag_ack;
      win = sess.tcb.rcv_adv_wnd; (* immutable after creation *)
      cksum = 0;
    }
  in
  let msg = Msg.create t.pool 0 in
  Tcp_wire.encode msg hdr;
  sess.st.segs_out <- sess.st.segs_out + 1;
  sess.st.acks_out <- sess.st.acks_out + 1;
  transmit sess [ { seg = msg; todo = Sum_and_fold } ]

(* The lock-free read path: process a segment without the writer lock
   when the snapshot proves it cannot change connection state.  Two
   provably no-op shapes qualify, both requiring an Established
   snapshot, a plain ack (no syn/fin/rst), an unchanged window, nothing
   in flight (snd_max = snd_una) and an old ack (ack <= snd_una):
   - a pure stale ack (no payload) is dropped — the slow path would
     neither mutate state nor emit anything for it;
   - fully duplicate data (seq+len <= rcv_nxt) is dropped and re-acked
     from the snapshot — the slow path would trim it to nothing and
     emit the same ack.
   Readers touch no tcb field the writer mutates, so they emit no
   Access annotations; the snapshot swap is the synchronisation. *)
let rcu_try_read sess r (hdr : Tcp_wire.header) msg =
  let t = sess.proto in
  if t.cfg.checksum && t.cfg.cksum_under_lock then false
  else begin
    let snap = r.ru_snap in
    let f = hdr.Tcp_wire.flags in
    let len = Msg.length msg in
    if
      snap.r_state = Established
      && f.Tcp_wire.ack
      && (not (f.Tcp_wire.syn || f.Tcp_wire.fin || f.Tcp_wire.rst))
      && hdr.win = snap.r_snd_wnd
      && snap.r_snd_max = snap.r_snd_una
      && Tcp_seq.leq hdr.ack snap.r_snd_una
    then
      if len = 0 then begin
        r.ru_reads <- r.ru_reads + 1;
        Costs.charge t.plat Costs.rcu_read;
        sync_trace sess (Trace.Rcu_read { state = sess.state_ns });
        Msg.destroy msg;
        true
      end
      else if Tcp_seq.leq (Tcp_seq.add hdr.seq len) snap.r_rcv_nxt then begin
        r.ru_reads <- r.ru_reads + 1;
        Costs.charge t.plat Costs.rcu_read;
        sync_trace sess (Trace.Rcu_read { state = sess.state_ns });
        Msg.destroy msg;
        rcu_emit_dup_ack sess snap;
        true
      end
      else false
    else false
  end

let segment_arrives sess (hdr : Tcp_wire.header) msg =
  let t = sess.proto in
  let now = Sim.now t.plat.Platform.sim in
  (* Input work that needs no connection state: parsing, validation. *)
  Costs.charge t.plat Costs.tcp_input_unlocked;
  sess.st.segs_in <- sess.st.segs_in + 1;
  if Msg.length msg = 0 && hdr.flags.Tcp_wire.ack && not hdr.flags.Tcp_wire.syn then
    sess.st.acks_in <- sess.st.acks_in + 1;
  match sess.locks with
  | L_scr log -> scr_segment_arrives sess log hdr msg
  | L_rcu r when rcu_try_read sess r hdr msg -> ()
  | _ ->
  let is_data = Msg.length msg > 0 in
  let plat = t.plat in
  span_begin plat ~seq:hdr.seq Trace.Lock_wait;
  input_acquire sess;
  span_end plat ~seq:hdr.seq Trace.Lock_wait;
  span_begin plat ~seq:hdr.seq Trace.Tcp_input;
  (* Ablation: verification charged while the state locks are held. *)
  if t.cfg.checksum && t.cfg.cksum_under_lock then
    Membus.consume t.plat.Platform.bus ~bytes:(Msg.length msg + Tcp_wire.header_bytes);
  (* The SICS six-lock structure serialises the reassembly and
     retransmission queues together with the window state on every packet
     — locking the paper calls "either redundant or unnecessary"
     (Section 5.1).  The cost is what makes TCP-6 lose. *)
  (match sess.locks with
   | L_six { reass; rexmt; _ } ->
     Lock.acquire reass;
     Lock.acquire rexmt;
     Costs.charge t.plat 200;
     Lock.release rexmt;
     Lock.release reass
   | L_one _ | L_two _ | L_scr _ | L_rcu _ -> ());
  let acc, deliveries =
    match sess.tcb.state with
    | Established -> established_input sess hdr msg ~now [] []
    | _ -> opening_input sess hdr msg ~now [] []
  in
  (* Section 4.2: before releasing the connection-state lock, a receiving
     thread acquires an up-ticket for the next higher layer; above TCP it
     waits for its ticket to be called.  Every data segment's thread goes
     through the gate — even one whose segment only joined the reassembly
     queue — which is what restricts order and limits performance. *)
  let ticket =
    if t.cfg.ticketing && is_data && sess.tcb.state <> Listen then
      Some (Gate.take sess.gate)
    else None
  in
  input_release sess;
  span_end plat ~seq:hdr.seq Trace.Tcp_input;
  transmit sess acc;
  (* Send whatever the ack (or window update) made possible. *)
  pump sess;
  (* Upcalls happen outside all connection locks — exactly the point where
     ordering can be lost without ticketing (Section 4.2). *)
  let upcall () =
    span_begin plat ~seq:hdr.seq Trace.Upcall;
    List.iter (fun m -> sess.receiver m) (List.rev deliveries);
    span_end plat ~seq:hdr.seq Trace.Upcall
  in
  (match ticket with
   | Some k ->
     Gate.await sess.gate k;
     upcall ();
     Gate.advance sess.gate
   | None -> upcall ());
  (* Tell the application about an in-order FIN (idempotent upcall).  The
     state, not this segment's FIN flag, is what matters: a FIN that
     arrived out of order sits in [rcv_fin_seq] until a retransmission
     fills the gap, and the segment that completes it carries no FIN. *)
  if
    (match sess.tcb.state with
     | Close_wait | Closing | Last_ack | Time_wait -> true
     | Closed -> hdr.flags.Tcp_wire.fin
     | _ -> false)
  then sess.on_fin ()

(* ------------------------------------------------------------------ *)
(* Demultiplexing                                                      *)
(* ------------------------------------------------------------------ *)

let lookup_session t ~lport ~raddr ~rport =
  match Conn_map.lookup t.conns { Conn_key.lport; raddr; rport } with
  | Some s -> Some s
  | None -> Conn_map.lookup t.conns { Conn_key.lport; raddr = 0; rport = 0 }

let handshake_syn t listener_key accept (hdr : Tcp_wire.header) ~src =
  (* Passive open: make the child session and send SYN-ACK. *)
  let key = { Conn_key.lport = listener_key.Conn_key.lport; raddr = src; rport = hdr.sport } in
  let sess = fresh_session t key in
  let tcb = sess.tcb in
  tcb.state <- Syn_received;
  tcb.syn_counted <- true;
  tcb.irs <- hdr.seq;
  tcb.rcv_nxt <- Tcp_seq.add hdr.seq 1;
  tcb.iss <- Tcp_seq.mask ((Atomic_ctr.incr t.iss_source * 64021) + (Ip.local_addr t.ip * 7919));
  tcb.snd_una <- tcb.iss;
  tcb.snd_nxt <- Tcp_seq.add tcb.iss 1;
  tcb.snd_max <- tcb.snd_nxt;
  tcb.snd_wnd <- hdr.win;
  (* A lost SYN-ACK must not wedge the child in Syn_received: arm the
     retransmission timer so [retransmit] re-emits it. *)
  set_rexmt_timer tcb;
  (if Sim.in_thread t.plat.Platform.sim then Lock.with_lock t.create_lock else fun f -> f ())
    (fun () ->
      Conn_map.insert t.conns key sess;
      t.all_sessions <- sess :: t.all_sessions);
  (* Let the application attach its receiver before any data can race in. *)
  accept sess;
  let acc = emit sess ~flags:Tcp_wire.flag_syn_ack ~seq:tcb.iss ~payload:None [] in
  transmit sess acc

let input t ~src ~dst msg =
  Costs.charge t.plat Costs.tcp_demux;
  match Tcp_wire.decode msg with
  | None -> Msg.destroy msg
  | Some hdr ->
    (* The segment entered TCP from IP: open its demux span. *)
    span_begin t.plat ~seq:hdr.seq Trace.Ip;
    let ip_span_done = ref false in
    let end_ip_span () =
      if not !ip_span_done then begin
        ip_span_done := true;
        span_end t.plat ~seq:hdr.seq Trace.Ip
      end
    in
    let cksum_ok =
      match t.cfg.locking with
      | (One | Two | Scr | Rcu) when not t.cfg.cksum_under_lock ->
        (* Checksum outside any connection-state lock. *)
        (not t.cfg.checksum) || hdr.cksum = 0
        || Tcp_wire.verify_checksum t.plat ~src ~dst msg
      | One | Two | Six | Scr | Rcu -> true (* verified under locks below *)
    in
    if not cksum_ok then begin
      t.cksum_failures <- t.cksum_failures + 1;
      end_ip_span ();
      Msg.destroy msg
    end
    else begin
      match lookup_session t ~lport:hdr.dport ~raddr:src ~rport:hdr.sport with
      | None ->
        end_ip_span ();
        Msg.destroy msg
      | Some sess ->
        ignore (Atomic_ctr.incr sess.sess_ref);
        let proceed = ref true in
        with_hdr_rem sess (fun () ->
            (match t.cfg.locking with
             | Six
               when t.cfg.checksum && hdr.cksum <> 0
                    && not (Tcp_wire.verify_checksum t.plat ~src ~dst msg) ->
               t.cksum_failures <- t.cksum_failures + 1;
               proceed := false
             | One | Two | Six | Scr | Rcu -> ());
            if !proceed then Tcp_wire.strip msg);
        (if not !proceed then begin
           end_ip_span ();
           Msg.destroy msg
         end
         else
           match (sess.tcb.state, hdr.flags.Tcp_wire.syn) with
           | Listen, true -> (
             end_ip_span ();
             (* find the accept callback for this port *)
             match Conn_map.lookup t.accepting sess.key with
             | Some accept ->
               Msg.destroy msg;
               if
                 t.cfg.syn_backlog > 0
                 && sess.tcb.syn_pending >= t.cfg.syn_backlog
               then
                 (* Bounded backlog (SYN-flood protection): shed the SYN
                    as an accounted drop; the peer's SYN retransmission
                    retries once slots free up. *)
                 t.syn_backlog_drops <- t.syn_backlog_drops + 1
               else begin
                 sess.tcb.syn_pending <- sess.tcb.syn_pending + 1;
                 handshake_syn t sess.key accept hdr ~src
               end
             | None -> Msg.destroy msg)
           | _ ->
             end_ip_span ();
             segment_arrives sess hdr msg);
        ignore (Atomic_ctr.decr sess.sess_ref)
    end

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let fasttimo t =
  List.iter
    (fun sess ->
      if sess.tcb.delack_pending then begin
        input_acquire sess;
        let acc = if sess.tcb.delack_pending then emit_ack sess [] else [] in
        input_release sess;
        transmit sess acc
      end)
    t.all_sessions

let rexmt_timeout sess =
  let t = sess.proto in
  let tcb = sess.tcb in
  output_acquire sess;
  let acc =
    if Tcp_seq.gt tcb.snd_max tcb.snd_una && tcb.state <> Closed then begin
      tcb.rxtshift <- min (tcb.rxtshift + 1) max_rxtshift;
      let flight = min tcb.snd_wnd tcb.snd_cwnd in
      tcb.snd_ssthresh <- max (2 * t.cfg.mss) (flight / 2);
      tcb.snd_cwnd <- t.cfg.mss;
      tcb.t_rtttime <- 0;
      tcb.snd_nxt <- tcb.snd_una;
      set_rexmt_timer tcb;
      retransmit sess []
    end
    else begin
      tcb.t_rexmt <- 0;
      []
    end
  in
  output_release sess;
  transmit sess acc

(* Window probe: force one byte past the closed window (BSD TF_FORCE). *)
let persist_timeout sess =
  let t = sess.proto in
  let tcb = sess.tcb in
  output_acquire sess;
  let acc =
    let in_flight = Tcp_seq.diff tcb.snd_nxt tcb.snd_una in
    let unsent = Sockbuf.cc tcb.sb - in_flight in
    if unsent > 0 && tcb.snd_wnd = 0 && tcb.state = Established then begin
      sess.st.persist_probes <- sess.st.persist_probes + 1;
      Costs.charge t.plat Costs.tcp_output_locked;
      access sess ~write:true "snd";
      let payload =
        with_rexmt_lock sess (fun () ->
            access sess ~write:false "sb";
            Sockbuf.peek tcb.sb ~off:in_flight ~len:1)
      in
      let seq = tcb.snd_nxt in
      tcb.snd_nxt <- Tcp_seq.add tcb.snd_nxt 1;
      tcb.snd_max <- Tcp_seq.max tcb.snd_max tcb.snd_nxt;
      tcb.persist_shift <- min (tcb.persist_shift + 1) max_rxtshift;
      let ticks = max 2 ((tcb.rto + slowtimo_ns - 1) / slowtimo_ns) in
      tcb.t_persist <- ticks lsl min tcb.persist_shift 6;
      emit sess ~flags:Tcp_wire.flag_ack ~seq ~payload:(Some payload) []
    end
    else begin
      tcb.t_persist <- 0;
      []
    end
  in
  output_release sess;
  transmit sess acc

let slowtimo t =
  List.iter
    (fun sess ->
      let tcb = sess.tcb in
      if tcb.t_rexmt > 0 then begin
        tcb.t_rexmt <- tcb.t_rexmt - 1;
        if tcb.t_rexmt = 0 then rexmt_timeout sess
      end;
      if tcb.t_persist > 0 then begin
        tcb.t_persist <- tcb.t_persist - 1;
        if tcb.t_persist = 0 then persist_timeout sess
      end;
      if tcb.t_2msl > 0 then begin
        tcb.t_2msl <- tcb.t_2msl - 1;
        if tcb.t_2msl = 0 && tcb.state = Time_wait then tcb.state <- Closed
      end)
    t.all_sessions

let rec arm_fasttimo t =
  if not t.shutdown then
    ignore
      (Timewheel.schedule t.wheel ~after:fasttimo_ns (fun () ->
           fasttimo t;
           arm_fasttimo t))

let rec arm_slowtimo t =
  if not t.shutdown then
    ignore
      (Timewheel.schedule t.wheel ~after:slowtimo_ns (fun () ->
           slowtimo t;
           arm_slowtimo t))

let start_timers t =
  if not t.timers_running then begin
    t.timers_running <- true;
    arm_fasttimo t;
    arm_slowtimo t
  end

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create plat pool ~wheel ~ip cfg ~name =
  (match cfg.locking with
   | Scr ->
     if cfg.ticketing then
       invalid_arg "Tcp: ticketing reintroduces the serialization SCR removes";
     if cfg.cksum_under_lock then
       invalid_arg "Tcp: cksum_under_lock requires a connection-state lock; SCR has none";
     if cfg.scr_log_bound < 2 then invalid_arg "Tcp: scr_log_bound must be at least 2"
   | One | Two | Six | Rcu -> ());
  let t =
    {
      plat;
      pool;
      wheel;
      ip;
      cfg;
      name;
      obj_ref = Platform.refcnt plat ~name:(name ^ ".ref") ~init:1;
      iss_source = Platform.refcnt plat ~name:(name ^ ".iss") ~init:1;
      conns =
        Conn_map.create plat ~shards:plat.Platform.map_shards
          ~name:(name ^ ".demux") ();
      create_lock =
        Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair
          ~name:(name ^ ".create");
      all_sessions = [];
      accepting = Conn_map.create plat ~name:(name ^ ".accepting") ();
      timers_running = false;
      shutdown = false;
      cksum_failures = 0;
      syn_backlog_drops = 0;
    }
  in
  Ip.register ip ~proto:Tcp_wire.protocol_number (fun ~src ~dst msg ->
      ignore (Atomic_ctr.incr t.obj_ref);
      input t ~src ~dst msg;
      ignore (Atomic_ctr.decr t.obj_ref));
  t

let shutdown t = t.shutdown <- true

let locked_create t f =
  if Sim.in_thread t.plat.Platform.sim then Lock.with_lock t.create_lock f else f ()

let connect ?iss t ~local_port ~remote_addr ~remote_port =
  let key = { Conn_key.lport = local_port; raddr = remote_addr; rport = remote_port } in
  let sess = fresh_session t key in
  let tcb = sess.tcb in
  (tcb.iss <-
     match iss with
     | Some s -> Tcp_seq.mask s
     | None ->
       (* derived from the host address too, so two stacks in one world
          do not pick identical initial sequence numbers *)
       Tcp_seq.mask ((Atomic_ctr.incr t.iss_source * 64021) + (Ip.local_addr t.ip * 7919)));
  tcb.snd_una <- tcb.iss;
  tcb.snd_nxt <- Tcp_seq.add tcb.iss 1;
  tcb.snd_max <- tcb.snd_nxt;
  tcb.state <- Syn_sent;
  locked_create t (fun () ->
      Conn_map.insert t.conns key sess;
      t.all_sessions <- sess :: t.all_sessions);
  start_timers t;
  Costs.charge t.plat Costs.tcp_conn_setup;
  let acc = emit sess ~flags:Tcp_wire.flag_syn ~seq:tcb.iss ~payload:None [] in
  set_rexmt_timer tcb;
  transmit sess acc;
  (* The in-memory peer may have answered synchronously on this stack. *)
  if tcb.state <> Established then
    Sim.suspend t.plat.Platform.sim (fun resume -> tcb.open_waiter <- Some resume);
  sess

let listen t ~local_port ~accept =
  let key = { Conn_key.lport = local_port; raddr = 0; rport = 0 } in
  let sess = fresh_session t key in
  sess.tcb.state <- Listen;
  locked_create t (fun () ->
      Conn_map.insert t.conns key sess;
      Conn_map.insert t.accepting key accept);
  start_timers t

(* Stop listening: drop both the accept callback and the wildcard demux
   entry, so closed listen ports no longer accumulate (established
   children are untouched).  Returns [false] if nothing was listening. *)
let close_listener t ~local_port =
  let key = { Conn_key.lport = local_port; raddr = 0; rport = 0 } in
  locked_create t (fun () ->
      let had_accept = Conn_map.remove t.accepting key in
      let had_demux =
        match Conn_map.lookup t.conns key with
        | Some sess when sess.tcb.state = Listen -> Conn_map.remove t.conns key
        | _ -> false
      in
      had_accept || had_demux)

let remote_endpoint sess = (sess.key.Conn_key.raddr, sess.key.Conn_key.rport)
let set_receiver sess f = sess.receiver <- f
let set_fin_handler sess f = sess.on_fin <- f
let ticket_gate sess = sess.gate

(* Queue application data under SCR: each attempt is a host-atomic
   deferred section whose cost is paid after it closes; a full buffer
   suspends OUTSIDE the section (deferred sections cannot block).  The
   failed offer and the waiter registration share one host-atomic span —
   no suspension point separates them — so a concurrent wake cannot be
   lost. *)
let scr_send_enqueue sess log msg =
  let sim = sess.proto.plat.Platform.sim in
  let rec go () =
    sync_trace sess (Trace.Scr_apply { log = log.sl_name; idx = -1 });
    Sim.defer_begin sim;
    let r =
      with_rexmt_lock sess (fun () ->
          access sess ~write:true "sb";
          Sockbuf.offer sess.tcb.sb msg)
    in
    let cost = Sim.defer_end sim in
    sync_trace sess (Trace.Scr_apply_end { log = log.sl_name; idx = -1 });
    match r with
    | `Queued ->
      Sim.delay sim cost;
      true
    | `Dropped ->
      Sim.delay sim cost;
      false
    | `Must_wait ->
      Sim.suspend sim (fun resume ->
          sess.tcb.sb_waiters <- resume :: sess.tcb.sb_waiters);
      Sim.delay sim cost;
      go ()
  in
  go ()

let send sess msg =
  let t = sess.proto in
  let tcb = sess.tcb in
  let len = Msg.length msg in
  if len > Sockbuf.max_size tcb.sb then
    invalid_arg "Tcp.send: message larger than the send buffer";
  (* Graceful degradation: under Block policy the application parks here
     (outside every connection lock) while the pool sits above its soft
     watermark, so protocol-internal transients keep their headroom.
     Under Drop the sockbuf sheds instead — nothing blocks. *)
  if t.cfg.sb_policy = Sockbuf.Block then Mpool.await_headroom t.pool;
  let queued =
    match sess.locks with
    | L_scr log ->
      let queued = scr_send_enqueue sess log msg in
      if queued then sess.st.bytes_out <- sess.st.bytes_out + len;
      queued
    | _ ->
      output_acquire sess;
      (* Queue, shed, or wait for socket-buffer space (so_snd semantics). *)
      let rec enqueue () =
        match
          with_rexmt_lock sess (fun () ->
              access sess ~write:true "sb";
              Sockbuf.offer tcb.sb msg)
        with
        | `Queued -> true
        | `Dropped -> false
        | `Must_wait ->
          let registered = ref false in
          Sim.suspend t.plat.Platform.sim (fun resume ->
              tcb.sb_waiters <- resume :: tcb.sb_waiters;
              registered := true;
              (* The register callback cannot consume simulated time, so
                 RCU releases without its (charging) snapshot publish —
                 sound, because a failed offer mutated nothing. *)
              match sess.locks with
              | L_rcu r -> Lock.release r.ru_wr
              | _ -> output_release sess);
          assert !registered;
          output_acquire sess;
          enqueue ()
      in
      let queued = enqueue () in
      if queued then sess.st.bytes_out <- sess.st.bytes_out + len;
      output_release sess;
      queued
  in
  if queued then begin
    (* The data checksum pass runs here, outside every connection-state
       lock (Section 5.1); the header is folded in at transmit time.  The
       Six discipline instead checksums under its header lock (SICS
       style). *)
    (match t.cfg.locking with
     | One | Two | Scr | Rcu ->
       if t.cfg.checksum && not t.cfg.cksum_under_lock then
         Membus.consume t.plat.Platform.bus ~bytes:len
     | Six -> ());
    pump sess
  end

let close sess =
  let tcb = sess.tcb in
  output_acquire sess;
  (match tcb.state with
   | Established -> tcb.state <- Fin_wait_1
   | Close_wait -> tcb.state <- Last_ack
   | _ -> ());
  tcb.fin_queued <- true;
  output_release sess;
  pump sess

let state_name sess = state_to_string sess.tcb.state
let stats sess = sess.st
let config t = t.cfg
let checksum_failures t = t.cksum_failures
let syn_backlog_drops t = t.syn_backlog_drops
let sockbuf_drops sess = Sockbuf.drops sess.tcb.sb
let sockbuf_dropped_bytes sess = Sockbuf.dropped_bytes sess.tcb.sb

let total_sockbuf_drops t =
  List.fold_left (fun acc s -> acc + Sockbuf.drops s.tcb.sb) 0 t.all_sessions

let sessions t = t.all_sessions

let lock_wait_ns sess =
  List.fold_left (fun acc l -> acc + Lock.total_wait_ns l) 0 (all_locks sess)

let lock_hold_ns sess =
  List.fold_left (fun acc l -> acc + Lock.total_hold_ns l) 0 (all_locks sess)

let snd_nxt sess = sess.tcb.snd_nxt
let rcv_nxt sess = sess.tcb.rcv_nxt
let cwnd sess = sess.tcb.snd_cwnd
let initial_seqs sess = (sess.tcb.iss, sess.tcb.irs)

type scr_counters = {
  scr_appends : int;
  scr_replayed : int;
  scr_resyncs : int;
  scr_truncations : int;
  scr_max_depth : int;
}

let scr_counters sess =
  match sess.locks with
  | L_scr l ->
    Some
      {
        scr_appends = l.sl_appends;
        scr_replayed = l.sl_replayed;
        scr_resyncs = l.sl_resyncs;
        scr_truncations = l.sl_truncations;
        scr_max_depth = l.sl_max_depth;
      }
  | _ -> None

let rcu_counters sess =
  match sess.locks with
  | L_rcu r -> Some (r.ru_reads, r.ru_publishes)
  | _ -> None
