open Pnp_util

type discipline = Unfair | Fifo | Barging

type waiter = { th : Sim.thread; resume : int -> unit }

type t = {
  sim : Sim.t;
  arch : Arch.t;
  disc : discipline;
  name : string;
  acquire_ns : int;
  mutable owner : Sim.thread option;
  mutable last_cpu : int;
  mutable waiters : waiter list; (* in arrival order *)
  mutable hold_start : int;
  mutable acquisitions : int;
  mutable contended : int;
  mutable total_wait_ns : int;
  mutable total_hold_ns : int;
}

let discipline_name = function
  | Unfair -> "unfair"
  | Fifo -> "fifo"
  | Barging -> "barging"

let create sim arch disc ~name =
  let acquire_ns =
    match disc with
    | Unfair | Barging -> arch.Arch.mutex_ns
    | Fifo -> arch.Arch.mcs_ns
  in
  Trace.register_lock (Sim.tracer sim) ~name ~discipline:(discipline_name disc);
  {
    sim;
    arch;
    disc;
    name;
    acquire_ns;
    owner = None;
    last_cpu = -1;
    waiters = [];
    hold_start = 0;
    acquisitions = 0;
    contended = 0;
    total_wait_ns = 0;
    total_hold_ns = 0;
  }

let discipline t = t.disc
let name t = t.name

let trace t ev =
  let tracer = Sim.tracer t.sim in
  if Trace.enabled tracer then
    let th = Sim.self t.sim in
    Trace.emit tracer ~ts:(Sim.now t.sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th) ev

let migration_ns t th =
  match t.arch.Arch.sync with
  | Arch.Sync_bus -> 0
  | Arch.Coherency ->
    if t.last_cpu >= 0 && t.last_cpu <> Sim.cpu th then t.arch.Arch.coherency_ns
    else 0

let become_owner t th ~grant_time =
  t.owner <- Some th;
  t.last_cpu <- Sim.cpu th;
  t.acquisitions <- t.acquisitions + 1;
  t.hold_start <- grant_time

let acquire t =
  if Sim.defer_active t.sim then
    (* Deferred-charge section (SCR replay): the section re-executes code
       that took this lock, but a replica's lock operations are local —
       there is no cross-thread lock to contend on.  Charge the lock
       instruction cost and skip ownership entirely; the matching
       [release] below is a no-op.  Sections are host-atomic, so no other
       thread can observe the skipped ownership. *)
    Sim.delay t.sim t.acquire_ns
  else begin
  let th = Sim.self t.sim in
  (* The lock operation itself (test-and-set / MCS swap) costs time before
     we learn the outcome; another thread may slip in during it. *)
  Sim.delay t.sim t.acquire_ns;
  if Trace.enabled (Sim.tracer t.sim) then
    trace t (Trace.Lock_request { lock = t.name; waiters = List.length t.waiters });
  match t.owner with
  | None ->
    let mig = migration_ns t th in
    become_owner t th ~grant_time:(Sim.now t.sim + mig);
    if Trace.enabled (Sim.tracer t.sim) then
      trace t (Trace.Lock_grant { lock = t.name; waiters = 0; wait_ns = 0 });
    if mig > 0 then Sim.delay t.sim mig
  | Some _ ->
    t.contended <- t.contended + 1;
    let enq_time = Sim.now t.sim in
    Sim.suspend t.sim (fun resume ->
        t.waiters <- t.waiters @ [ { th; resume } ]);
    (* Resumed by [release]; ownership and stats were set there. *)
    let waited = Sim.now t.sim - enq_time in
    t.total_wait_ns <- t.total_wait_ns + waited;
    Sim.note_wait th waited;
    if Trace.enabled (Sim.tracer t.sim) then
      trace t
        (Trace.Lock_grant
           { lock = t.name; waiters = List.length t.waiters; wait_ns = waited })
  end

(* Remove and return the waiter chosen by the discipline.  Unfair locks
   model the IRIX mutex: the grant goes to an arbitrary waiter. *)
let pick_waiter t =
  match t.waiters with
  | [] -> None
  | [ w ] ->
    t.waiters <- [];
    Some w
  | ws -> (
    match t.disc with
    | Fifo ->
      (match ws with
       | w :: rest ->
         t.waiters <- rest;
         Some w
       | [] -> None)
    | Barging ->
      (* newest arrival wins the test-and-set race *)
      (match List.rev ws with
       | w :: rest_rev ->
         t.waiters <- List.rev rest_rev;
         Some w
       | [] -> None)
    | Unfair ->
      let i = Prng.int (Sim.prng t.sim) (List.length ws) in
      let w = List.nth ws i in
      t.waiters <- List.filteri (fun j _ -> j <> i) ws;
      Some w)

(* A non-owner release is always a caller bug; name everyone involved so
   the report is actionable without a debugger. *)
let non_owner_release ~what ~lock ~owner th =
  let owner_desc =
    match owner with
    | Some o -> Printf.sprintf "owned by tid %d (%s)" (Sim.tid o) (Sim.thread_name o)
    | None -> "not held"
  in
  invalid_arg
    (Printf.sprintf "%s %S: caller tid %d (%s) is not the owner; lock is %s" what lock
       (Sim.tid th) (Sim.thread_name th) owner_desc)

let release t =
  if Sim.defer_active t.sim then ()
  else begin
  let th = Sim.self t.sim in
  (match t.owner with
   | Some o when o == th -> ()
   | owner -> non_owner_release ~what:"Lock.release" ~lock:t.name ~owner th);
  let now = Sim.now t.sim in
  t.total_hold_ns <- t.total_hold_ns + (now - t.hold_start);
  if Trace.enabled (Sim.tracer t.sim) then
    trace t (Trace.Lock_release { lock = t.name; hold_ns = now - t.hold_start });
  match pick_waiter t with
  | None ->
    t.owner <- None;
    t.last_cpu <- Sim.cpu th
  | Some w ->
    let mig = migration_ns t w.th in
    let grant_time = now + t.arch.Arch.handoff_ns + mig in
    if Trace.enabled (Sim.tracer t.sim) then
      trace t
        (Trace.Lock_handoff
           {
             lock = t.name;
             to_tid = Sim.tid w.th;
             handoff_ns = t.arch.Arch.handoff_ns + mig;
           });
    become_owner t w.th ~grant_time;
    w.resume grant_time
  end

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let holding t =
  match t.owner with Some o -> o == Sim.self t.sim | None -> false

let acquisitions t = t.acquisitions
let contended_acquisitions t = t.contended
let total_wait_ns t = t.total_wait_ns
let total_hold_ns t = t.total_hold_ns

let reset_stats t =
  t.acquisitions <- 0;
  t.contended <- 0;
  t.total_wait_ns <- 0;
  t.total_hold_ns <- 0

module Counting = struct
  type nonrec t = { lock : t; mutable owner : Sim.thread option; mutable depth : int }

  let create sim arch disc ~name = { lock = create sim arch disc ~name; owner = None; depth = 0 }

  let acquire t =
    let th = Sim.self t.lock.sim in
    match t.owner with
    | Some o when o == th -> t.depth <- t.depth + 1
    | _ ->
      acquire t.lock;
      t.owner <- Some th;
      t.depth <- 1

  let release t =
    let th = Sim.self t.lock.sim in
    (match t.owner with
     | Some o when o == th -> ()
     | owner ->
       non_owner_release ~what:"Lock.Counting.release" ~lock:t.lock.name ~owner th);
    t.depth <- t.depth - 1;
    if t.depth = 0 then begin
      t.owner <- None;
      release t.lock
    end

  let with_lock t f =
    acquire t;
    Fun.protect ~finally:(fun () -> release t) f

  let depth t = t.depth
  let underlying t = t.lock
end
