type t = {
  sim : Sim.t;
  arch : Arch.t;
  bus : Membus.t;
  lock_disc : Lock.discipline;
  map_disc : Lock.discipline;
  refcnt_mode : Atomic_ctr.mode;
  message_caching : bool;
  map_locking : bool;
  map_shards : int;
}

let create ?(seed = 42) ?(lock_disc = Lock.Unfair) ?(map_disc = Lock.Unfair)
    ?(refcnt_mode = Atomic_ctr.Ll_sc) ?(message_caching = true) ?(map_locking = true)
    ?(map_shards = 1) arch =
  if map_shards <= 0 then invalid_arg "Platform.create: map_shards must be positive";
  let sim = Sim.create ~seed () in
  let bus = Membus.create sim arch in
  {
    sim;
    arch;
    bus;
    lock_disc;
    map_disc;
    refcnt_mode;
    message_caching;
    map_locking;
    map_shards;
  }

let state_lock t ~name = Lock.create t.sim t.arch t.lock_disc ~name

let refcnt t ~name ~init = Atomic_ctr.create t.sim t.arch t.refcnt_mode ~name ~init

let charge t d = if Sim.in_thread t.sim && d > 0 then Sim.delay t.sim d

let charge_instrs t n = charge t (Arch.instr_ns t.arch n)
