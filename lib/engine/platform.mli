(** A configured simulated machine: world, architecture, bus, and the
    implementation toggles the paper's experiments vary. *)

type t = {
  sim : Sim.t;
  arch : Arch.t;
  bus : Membus.t;
  lock_disc : Lock.discipline;
      (** discipline used for connection/protocol-state locks (Section 4/5) *)
  map_disc : Lock.discipline;
      (** discipline used for map-manager locks; the paper keeps these as
          raw mutexes even in the MCS experiments (Section 4.1) *)
  refcnt_mode : Atomic_ctr.mode;
      (** reference counts: LL/SC vs lock-inc-unlock (Section 5.2) *)
  message_caching : bool;
      (** per-thread MNode caches in the message tool (Section 6) *)
  map_locking : bool;
      (** lock the map manager on demux (Section 3.1's 10% aside) *)
  map_shards : int;
      (** shards per demux map (power of two; 1 = the classic
          single-lock map manager) *)
}

val create :
  ?seed:int ->
  ?lock_disc:Lock.discipline ->
  ?map_disc:Lock.discipline ->
  ?refcnt_mode:Atomic_ctr.mode ->
  ?message_caching:bool ->
  ?map_locking:bool ->
  ?map_shards:int ->
  Arch.t ->
  t
(** Baseline defaults match Section 3: unfair mutexes, atomic LL/SC
    reference counts, message caching on, map locking on. *)

val state_lock : t -> name:string -> Lock.t
(** Make a protocol-state lock with the platform's discipline. *)

val refcnt : t -> name:string -> init:int -> Atomic_ctr.t
(** Make a reference counter with the platform's mode. *)

val charge : t -> Pnp_util.Units.ns -> unit
(** Consume simulated time if called from inside a simulated thread; a
    no-op during setup (outside any thread). *)

val charge_instrs : t -> int -> unit
(** [charge] expressed in instructions on the platform's architecture. *)
