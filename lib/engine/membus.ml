type t = {
  sim : Sim.t;
  arch : Arch.t;
  mutable users : int;
  mutable bytes : int;
}

let create sim arch = { sim; arch; users = 0; bytes = 0 }

let duration_ns ?rate_mb_s t ~bytes ~users =
  let users = max 1 users in
  let per_cpu = Option.value rate_mb_s ~default:t.arch.Arch.cksum_mb_per_s in
  let share = t.arch.Arch.bus_mb_per_s /. float_of_int users in
  let rate_mb_s = Float.min per_cpu share in
  (* MB/s = bytes per microsecond; convert to ns. *)
  int_of_float ((float_of_int bytes /. rate_mb_s *. 1000.0) +. 0.5)

let consume ?rate_mb_s t ~bytes =
  if bytes > 0 then begin
    t.users <- t.users + 1;
    let d = duration_ns ?rate_mb_s t ~bytes ~users:t.users in
    t.bytes <- t.bytes + bytes;
    Fun.protect
      ~finally:(fun () -> t.users <- t.users - 1)
      (fun () -> Sim.delay t.sim d);
    let tracer = Sim.tracer t.sim in
    if Trace.enabled tracer && Sim.in_thread t.sim then
      let th = Sim.self t.sim in
      Trace.emit tracer ~ts:(Sim.now t.sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th)
        (Trace.Membus_charge { bytes; dur_ns = d })
  end

let concurrent_users t = t.users
let bytes_transferred t = t.bytes
