type t = {
  sim : Sim.t;
  arch : Arch.t;
  name : string;
  mutable next_ticket : int;
  mutable serving : int;
  waiting : (int, int -> unit) Hashtbl.t; (* ticket -> resume *)
  mutable total_wait_ns : int;
}

let create sim arch ~name =
  { sim; arch; name; next_ticket = 0; serving = 0; waiting = Hashtbl.create 16; total_wait_ns = 0 }

let trace t ev =
  let tracer = Sim.tracer t.sim in
  if Trace.enabled tracer then
    let th = Sim.self t.sim in
    Trace.emit tracer ~ts:(Sim.now t.sim) ~tid:(Sim.tid th) ~cpu:(Sim.cpu th) ev

let take t =
  Sim.delay t.sim t.arch.Arch.atomic_ns;
  let n = t.next_ticket in
  t.next_ticket <- n + 1;
  if Trace.enabled (Sim.tracer t.sim) then
    trace t (Trace.Gate_take { gate = t.name; ticket = n });
  n

let await t n =
  if n < t.serving then
    failwith (Printf.sprintf "Gate.await %S: ticket %d already served" t.name n);
  let waited =
    if n > t.serving then begin
      let enq = Sim.now t.sim in
      Sim.suspend t.sim (fun resume ->
          if Hashtbl.mem t.waiting n then
            failwith (Printf.sprintf "Gate.await %S: duplicate ticket %d" t.name n);
          Hashtbl.replace t.waiting n resume);
      let waited = Sim.now t.sim - enq in
      t.total_wait_ns <- t.total_wait_ns + waited;
      Sim.note_wait (Sim.self t.sim) waited;
      waited
    end
    else 0
  in
  if Trace.enabled (Sim.tracer t.sim) then
    trace t (Trace.Gate_pass { gate = t.name; ticket = n; wait_ns = waited })

let advance t =
  Sim.delay t.sim t.arch.Arch.atomic_ns;
  t.serving <- t.serving + 1;
  (* The signal half of the gate's ordering edge, emitted before the
     next ticket holder is resumed so it precedes that thread's
     [Gate_pass] in the trace. *)
  if Trace.enabled (Sim.tracer t.sim) then
    trace t (Trace.Gate_advance { gate = t.name; serving = t.serving });
  match Hashtbl.find_opt t.waiting t.serving with
  | None -> ()
  | Some resume ->
    Hashtbl.remove t.waiting t.serving;
    resume (Sim.now t.sim)

let serving t = t.serving
let tickets_issued t = t.next_ticket
let total_wait_ns t = t.total_wait_ns
