(** Liveness watchdog: turns a wedged simulation into a reported finding
    instead of a hang.

    A watchdog samples a caller-supplied monotone progress counter (bytes
    delivered, packets processed...) on a fixed horizon.  If the counter
    is unchanged across one full horizon, the watchdog records a
    {!stall} — capturing which simulated threads are blocked with no
    scheduled resumption — and optionally stops the event loop, so an
    overload scenario that deadlocks or livelocks ends as an analysable
    result rather than an unbounded [Sim.run].

    The check runs as a scheduled callback outside any simulated thread
    (it cannot itself block), and consumes no simulated time beyond
    keeping one event per horizon in the queue.  Because of that pending
    event, a [Sim.run] {e without} [until] will not drain while the
    watchdog is armed: either run with [until], or {!disarm} once the
    workload completes.

    Detection latency is between one and two horizons.  A persistently
    wedged world yields one stall record per horizon (not per check), so
    [stalls] also measures how long the wedge lasted. *)

type stall = {
  at : Pnp_util.Units.ns;  (** when the stall was declared *)
  progress : int;          (** the unchanged progress value *)
  blocked : (int * string) list;
      (** (tid, thread name) of every thread suspended with no scheduled
          resumption at declaration time — the deadlock suspects.  Empty
          for a livelock (events still firing, no progress). *)
}

type t

val install :
  Sim.t ->
  stall_ns:Pnp_util.Units.ns ->
  ?stop_on_stall:bool ->
  progress:(unit -> int) ->
  unit ->
  t
(** Arm a watchdog with the given horizon.  [progress] is sampled
    immediately (outside simulated time) and then once per horizon.
    [stop_on_stall] (default false) calls [Sim.stop] and disarms on the
    first stall, so the driving [Sim.run] returns promptly.
    @raise Invalid_argument if [stall_ns <= 0]. *)

val disarm : t -> unit
(** Stop rescheduling the check (the already-queued event fires once more
    as a no-op).  Call when the workload is done so the event queue can
    drain. *)

val stalled : t -> bool
val stalls : t -> stall list
(** Stalls in chronological order. *)

val describe_stall : stall -> string
(** One-line rendering, naming the blocked (tid, name) suspects. *)
