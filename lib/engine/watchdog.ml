open Pnp_util

type stall = {
  at : Units.ns;
  progress : int;
  blocked : (int * string) list;
}

type t = {
  sim : Sim.t;
  stall_ns : Units.ns;
  progress : unit -> int;
  stop_on_stall : bool;
  mutable last_progress : int;
  mutable last_change_at : Units.ns;
  mutable stalls : stall list; (* newest first *)
  mutable armed : bool;
}

(* The periodic check runs as a plain scheduled callback (outside any
   thread), so it can never itself deadlock.  A stall is declared when the
   progress counter is unchanged across one full horizon, so detection
   latency is between [stall_ns] and 2*[stall_ns].  After recording a
   stall the change clock is reset: a persistently wedged world yields one
   stall record per horizon, not one per check. *)
let rec check t () =
  if t.armed then begin
    let p = t.progress () in
    let now = Sim.now t.sim in
    if p <> t.last_progress then begin
      t.last_progress <- p;
      t.last_change_at <- now
    end
    else if now - t.last_change_at >= t.stall_ns then begin
      let blocked =
        List.map
          (fun th -> (Sim.tid th, Sim.thread_name th))
          (Sim.blocked_threads t.sim)
      in
      t.stalls <- { at = now; progress = p; blocked } :: t.stalls;
      t.last_change_at <- now;
      if t.stop_on_stall then begin
        t.armed <- false;
        Sim.stop t.sim
      end
    end;
    if t.armed then Sim.after t.sim t.stall_ns (check t)
  end

let install sim ~stall_ns ?(stop_on_stall = false) ~progress () =
  if stall_ns <= 0 then invalid_arg "Watchdog.install: stall_ns must be positive";
  let t =
    {
      sim;
      stall_ns;
      progress;
      stop_on_stall;
      last_progress = progress ();
      last_change_at = Sim.now sim;
      stalls = [];
      armed = true;
    }
  in
  Sim.after sim stall_ns (check t);
  t

let disarm t = t.armed <- false
let stalls t = List.rev t.stalls
let stalled t = t.stalls <> []

let describe_stall s =
  let blocked =
    match s.blocked with
    | [] -> "no threads blocked (livelock or event starvation)"
    | bs ->
      String.concat ", "
        (List.map (fun (tid, name) -> Printf.sprintf "tid %d (%s)" tid name) bs)
  in
  Printf.sprintf "no progress for a full horizon at t=%dns (progress=%d); blocked: %s"
    s.at s.progress blocked
