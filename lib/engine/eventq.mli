(** Priority queue of timestamped simulator events.

    Events at equal timestamps fire in insertion order (a monotone sequence
    number breaks ties), which keeps every run of the simulator bit-for-bit
    deterministic.

    The implementation is a structure-of-arrays 4-ary min-heap: timestamps
    and sequence numbers live in unboxed [int array]s, so the one-event-per
    simulated-action hot loop ({!add}/{!pop_exn}) allocates nothing per
    event. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:int -> 'a -> unit
(** Insert an event at the given absolute time.  Allocation-free except
    when the heap's backing arrays grow. *)

exception Empty

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return its payload.  Allocation-free —
    the simulator's event loop calls this once per event; pair with
    {!peek_time_exn} when the timestamp is needed.  @raise Empty when
    the queue is empty. *)

val pop_run : 'a t -> 'a array ref -> int
(** [pop_run t buf] removes {e every} event sharing the earliest
    timestamp and writes them into [!buf] starting at index 0 (growing
    [buf] by doubling when too small), returning the run length.  The
    run lands in FIFO (sequence) order — the exact order repeated
    {!pop_exn} calls would yield — so batched dispatch is byte-identical
    to one-at-a-time dispatch.  @raise Empty when the queue is empty. *)

val peek_time_exn : 'a t -> int
(** Timestamp of the earliest event without removing it (no option
    allocation).  @raise Empty when the queue is empty. *)

val peek_time : 'a t -> int option
(** Timestamp of the earliest event without removing it.  Convenience
    for tests and diagnostics; the hot loop uses {!peek_time_exn}. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
