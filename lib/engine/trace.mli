(** Low-overhead typed event tracing for the simulator.

    The paper's evidence is *attribution*: knowing that threads wait is
    not enough, one must see which lock they wait on, in what order
    grants happen, and how a particular packet travelled the stack.
    Every synchronisation object in the engine (and the message pool and
    TCP above it) emits typed events here when tracing is enabled.

    Tracing is {e off by default} and must stay near-zero cost when off:
    every emitter guards on {!enabled} before even constructing its
    event, so a disabled tracer costs one mutable-field read per
    potential event.  Events never consume simulated time, so enabling
    tracing cannot perturb the simulation — traces are deterministic
    under a fixed seed.

    Timestamps are simulated nanoseconds; [tid]/[cpu] identify the
    simulated thread that emitted the event ([-1] outside any thread). *)

(** Phases of a packet's journey through the receive path, keyed by TCP
    sequence number so a misordered segment is visible end to end. *)
type pkt_phase =
  | Enqueue   (** driver handed the segment to a worker (in seq order) *)
  | Ip        (** entered TCP input demultiplexing from IP *)
  | Lock_wait (** waiting on the connection-state lock(s) *)
  | Tcp_input (** TCP segment processing under the state lock *)
  | Upcall    (** delivery to the application above TCP *)

type ev =
  | Thread_spawn of { name : string }
      (** recorded with the {e child}'s tid at spawn time *)
  | Thread_fork of { child : int }
      (** recorded with the {e parent}'s tid when the spawn happened from
          inside a simulated thread: the happens-before edge from the
          parent's past to everything the child does *)
  | Thread_exit
      (** the thread's body returned; its last event.  Together with
          {!Thread_join} this closes the fork/join ordering for the
          happens-before checker. *)
  | Thread_join of { child : int }
      (** the recording thread observed [child]'s completion (after its
          {!Thread_exit}); everything the child did happens-before the
          joiner's subsequent events *)
  | Thread_block
  | Thread_resume
  | Lock_request of { lock : string; waiters : int }
      (** [waiters] = queue depth seen at request time *)
  | Lock_grant of { lock : string; waiters : int; wait_ns : int }
      (** emitted by the grantee; [wait_ns] = 0 when uncontended *)
  | Lock_handoff of { lock : string; to_tid : int; handoff_ns : int }
      (** emitted by the releaser when passing to a waiter *)
  | Lock_release of { lock : string; hold_ns : int }
  | Gate_take of { gate : string; ticket : int }
  | Gate_pass of { gate : string; ticket : int; wait_ns : int }
  | Gate_advance of { gate : string; serving : int }
      (** emitted by the advancing thread {e before} the next ticket
          holder resumes: the signal half of the gate's signal→wait
          happens-before edge ({!Gate_pass} is the wait half) *)
  | Membus_charge of { bytes : int; dur_ns : int }
  | Mpool_alloc of { hit : bool }
  | Mnode_alloc of { node : int }
      (** an MNode left the allocator (fresh or re-armed from a
          per-thread cache) with reference count 1 *)
  | Mnode_ref of { node : int; refs : int }
      (** reference count incremented; [refs] is the new count *)
  | Mnode_unref of { node : int; refs : int }
      (** reference count decremented; [refs] is the new count — 0 means
          the node died here *)
  | Mnode_recycle of { node : int }
      (** the dead node's arena buffer returned to the free lists; any
          later touch of the node is a write-after-recycle *)
  | Mnode_write of { node : int }
      (** the node's bytes were mutated ({!Mpool.bump_gen}); the arena
          lifetime sanitizer flags writes to dead or recycled nodes *)
  | Span_begin of { seq : int; phase : pkt_phase }
  | Span_end of { seq : int; phase : pkt_phase }
  | Access of { state : string; write : bool }
      (** A read or write of a named piece of shared state, annotated by
          the engine/protocol layers at the access site.  The lockset
          checker ({!Pnp_analysis.Lockset}) intersects the locks held at
          each access; identifiers use a ["owner#field"] convention to
          keep them distinct from lock names. *)
  | Fault_drop of { cause : string }
      (** the link's fault pipeline consumed a frame; [cause] is the
          stage's label (["loss"], ["burst"], ["blackout"]) *)
  | Fault_dup of { copies : int }
      (** the pipeline injected [copies] extra copies of a frame *)
  | Fault_corrupt of { off : int; bit : int }
      (** bit [bit] of frame byte [off] was flipped on the wire; the
          recovery oracle demands a checksum failure accounts for it *)
  | Fault_reorder of { delay_ns : int }
      (** a frame was held back [delay_ns] so later traffic overtakes it *)
  | Scr_append of { log : string; idx : int }
      (** entry [idx] was appended to the SCR packet-history log — the
          release half of the log's append→replay happens-before edge *)
  | Scr_apply of { log : string; idx : int }
      (** a thread began applying entry [idx] to the replicated state;
          the acquire half of the append→replay edge.  Applying an index
          beyond the appended tail is a replication-protocol defect the
          happens-before checker flags directly. *)
  | Scr_apply_end of { log : string; idx : int }
      (** the apply section for entry [idx] finished; apply sections are
          host-atomic, so lockset analysis treats [log] as a lock held
          between {!Scr_apply} and {!Scr_apply_end} *)
  | Scr_replay of { log : string; upto : int }
      (** a replica caught its high watermark up to [upto], paying the
          per-entry redundant-replay cost *)
  | Rcu_read of { state : string }
      (** a lock-free reader classified a segment as a no-op against the
          published snapshot and answered it without the writer lock *)
  | Rcu_publish of { state : string }
      (** the writer published a fresh state snapshot at lock release *)

type record = { ts : int; tid : int; cpu : int; ev : ev }

type t

val create : unit -> t
(** A fresh, disabled tracer. *)

val enabled : t -> bool
(** Emitters must check this before building an event. *)

val enable : t -> unit
val disable : t -> unit
val clear : t -> unit

val emit : t -> ts:int -> tid:int -> cpu:int -> ev -> unit
(** Record an event; a no-op when disabled. *)

val register_thread : t -> tid:int -> cpu:int -> string -> unit
(** Remember a thread's name for the exported view.  Unlike {!emit} this
    works even while disabled, so threads spawned before tracing starts
    still appear named in Chrome. *)

val register_lock : t -> name:string -> discipline:string -> unit
(** Remember a lock's grant discipline (["fifo"], ["unfair"], ["barging"])
    for trace consumers.  Like {!register_thread} this works even while
    disabled: locks are usually created during setup, before tracing is
    enabled, and the order checkers need to know which locks promise
    FIFO grants. *)

val lock_discipline : t -> string -> string option
(** The discipline registered for a lock name, if any. *)

val registered_locks : t -> (string * string) list
(** All [(name, discipline)] registrations, sorted by name. *)

val events : t -> record list
(** All recorded events in emission (= time) order. *)

val count : t -> int

(** {2 Structured consumption}

    The replay interface for trace-driven analyses
    ({!Pnp_analysis}): a recorded trace is re-delivered as the same
    typed records, in emission order, without building an intermediate
    list when folding. *)

val iter : t -> (record -> unit) -> unit
(** [iter t f] applies [f] to every record in emission order. *)

val fold : t -> init:'a -> f:('a -> record -> 'a) -> 'a
(** [fold t ~init ~f] folds over the records in emission order. *)

(** {2 Contention attribution}

    Aggregated per-lock accounting derived from the event stream — the
    "where the time goes" breakdown of the paper's Table 1. *)

type lock_stats = {
  lock : string;
  acquisitions : int;
  contended : int;
  wait_ns : int;     (** total time grantees spent blocked *)
  hold_ns : int;     (** total time the lock was held *)
  handoff_ns : int;  (** total release-to-grant transfer cost *)
  max_queue : int;   (** deepest waiter queue observed at request time *)
}

val lock_table : t -> lock_stats list
(** One row per lock name, sorted by total wait descending. *)

val pp_phase : pkt_phase -> string

(** {2 Chrome trace_event export}

    The JSON object format loadable by [chrome://tracing] and Perfetto:
    lock waits/holds, gate waits and bus transfers become duration
    events on each simulated thread's track; packet journeys become
    async event spans keyed by sequence number. *)

val to_chrome_string : t -> string

val write_chrome : t -> string -> unit
(** [write_chrome t file] writes {!to_chrome_string} to [file]. *)
