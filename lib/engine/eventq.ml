(* Binary min-heap keyed by (time, seq).  The sequence number makes the
   ordering total, so ties resolve in insertion order. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let dummy = t.heap.(0) in
  let heap = Array.make cap dummy in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let add t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e
  else if t.len = Array.length t.heap then grow t;
  (* Sift up. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.heap.(!i) <- e;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue_ := false
  done

let sift_down t =
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.len && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue_ := false
  done

exception Empty

(* The simulator pops one event per simulated action, so this is the
   hottest loop in the system; [pop_exn]/[peek_time_exn] avoid the
   option + tuple allocation of [pop] (kept for compatibility). *)
let pop_exn t =
  if t.len = 0 then raise Empty;
  let e = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    sift_down t
  end;
  e.payload

let peek_time_exn t =
  if t.len = 0 then raise Empty;
  t.heap.(0).time

let pop t =
  if t.len = 0 then None
  else
    let time = peek_time_exn t in
    Some (time, pop_exn t)

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
let size t = t.len
let is_empty t = t.len = 0
