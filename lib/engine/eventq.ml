(* 4-ary min-heap keyed by (time, seq), stored as a structure of arrays.

   The simulator pops one event per simulated action, so this is the
   hottest data structure in the system.  Two layout decisions follow
   from that:

   - Structure of arrays, not an array of entry records: [times] and
     [seqs] are unboxed [int array]s, so [add]/[pop_exn] never allocate
     a per-event box (the old record layout cost a 4-word entry per
     event) and the sift loops walk flat integer arrays.
   - 4-ary rather than binary: the heap is shallower (log4 vs log2), and
     the four children of a node are adjacent, so a sift-down level is
     one cache line of keys instead of two scattered ones.

   The sequence number makes the ordering total, so ties resolve in
   insertion order — the determinism guarantee every run rides on. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { times = [||]; seqs = [||]; payloads = [||]; len = 0; next_seq = 0 }

(* Double capacity, seeding fresh payload slots with [dummy] (an 'a we
   already hold; unused slots are never read). *)
let grow t dummy =
  let cap = max 16 (2 * Array.length t.times) in
  let times = Array.make cap 0 and seqs = Array.make cap 0 in
  let payloads = Array.make cap dummy in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let add t ~time payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.len = Array.length t.times then grow t payload;
  let times = t.times and seqs = t.seqs and payloads = t.payloads in
  (* Sift up with a hole: shift parents down and write the new event
     once at its final slot. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 4 in
    if times.(p) > time || (times.(p) = time && seqs.(p) > seq) then begin
      times.(!i) <- times.(p);
      seqs.(!i) <- seqs.(p);
      payloads.(!i) <- payloads.(p);
      i := p
    end
    else continue_ := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  payloads.(!i) <- payload

exception Empty

let pop_exn t =
  let n = t.len in
  if n = 0 then raise Empty;
  let times = t.times and seqs = t.seqs and payloads = t.payloads in
  let res = payloads.(0) in
  let n = n - 1 in
  t.len <- n;
  if n > 0 then begin
    (* Re-insert the last element from the root, sifting its hole down
       toward the smaller of each node's (up to) four children. *)
    let xt = times.(n) and xs = seqs.(n) in
    let xp = payloads.(n) in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let base = (4 * !i) + 1 in
      if base >= n then continue_ := false
      else begin
        let m = ref base in
        let last = min (base + 3) (n - 1) in
        for c = base + 1 to last do
          if
            times.(c) < times.(!m)
            || (times.(c) = times.(!m) && seqs.(c) < seqs.(!m))
          then m := c
        done;
        let c = !m in
        if times.(c) < xt || (times.(c) = xt && seqs.(c) < xs) then begin
          times.(!i) <- times.(c);
          seqs.(!i) <- seqs.(c);
          payloads.(!i) <- payloads.(c);
          i := c
        end
        else continue_ := false
      end
    done;
    times.(!i) <- xt;
    seqs.(!i) <- xs;
    payloads.(!i) <- xp
  end;
  res

(* Drain the entire run of events sharing the minimum timestamp into
   [buf] (grown as needed), returning the run length.  Successive pops of
   equal-time entries leave the heap in (time, seq) order, so the run
   lands in [buf] in seq — i.e. insertion/FIFO — order: byte-identical
   dispatch order to popping one at a time, but the caller pays the
   peek/limit/loop bookkeeping once per run instead of once per event. *)
let pop_run t buf =
  let n = t.len in
  if n = 0 then raise Empty;
  let time = t.times.(0) in
  let k = ref 0 in
  while t.len > 0 && t.times.(0) = time do
    let b = !buf in
    let cap = Array.length b in
    if !k = cap then begin
      let nb = Array.make (max 16 (2 * cap)) t.payloads.(0) in
      Array.blit b 0 nb 0 !k;
      buf := nb
    end;
    !buf.(!k) <- pop_exn t;
    incr k
  done;
  !k

let peek_time_exn t =
  if t.len = 0 then raise Empty;
  t.times.(0)

let peek_time t = if t.len = 0 then None else Some t.times.(0)
let size t = t.len
let is_empty t = t.len = 0
