open Pnp_util

type thread = {
  tid : int;
  cpu : int;
  name : string;
  mutable finished : bool;
  mutable runnable : bool; (* has a scheduled resumption (or is running) *)
  mutable waited_ns : int;
  mutable suspend_gen : int; (* suspension generation; catches stale resumes *)
}

type t = {
  mutable now : int;
  events : (unit -> unit) Eventq.t;
  rng : Prng.t;
  mutable next_tid : int;
  mutable next_cpu : int;
  mutable current : thread option;
  mutable threads : thread array; (* tid-indexed; first [next_tid] slots live *)
  mutable stopping : bool;
  mutable processed : int;
  tracer : Trace.t;
  (* Batched dispatch (see [run]).  [batching] freezes the global toggle
     at creation so one world never mixes dispatch modes. *)
  batching : bool;
  mutable ring : (unit -> unit) array; (* circular FIFO of time-[now] events *)
  mutable ring_head : int;
  mutable ring_len : int;
  batch : (unit -> unit) array ref; (* pop_run scratch, drained by [run] *)
  mutable batch_pos : int;
  mutable batch_len : int;
  mutable limit : int; (* the active [run]'s [until] (max_int when none) *)
  mutable drains : int; (* timestamps dispatched, for the batch histogram *)
  batch_hist : int array; (* bucket i = drains of i events; last = overflow *)
  mutable cur_run : int; (* events dispatched at the current timestamp *)
  (* Deferred charging (SCR replay): while active, [delay] accumulates
     into [defer_acc] instead of advancing the clock, and [suspend] is an
     error — the section must be host-atomic. *)
  mutable defer_on : bool;
  mutable defer_acc : int;
}

type _ Effect.t += Suspend : t * ((int -> unit) -> unit) -> unit Effect.t

(* Batched dispatch is semantics-preserving (enforced by test and CI
   determinism diffs), so it defaults on; PNP_NO_BATCH=1 or
   [set_batching false] selects the one-event-at-a-time reference loop
   for A/B determinism checks and bisection. *)
let batching_default =
  ref
    (match Sys.getenv_opt "PNP_NO_BATCH" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

let set_batching on = batching_default := on
let batching_enabled () = !batching_default

let nop () = ()

let create ?(seed = 42) ?batching () =
  {
    now = 0;
    events = Eventq.create ();
    rng = Prng.create seed;
    next_tid = 0;
    next_cpu = 0;
    current = None;
    threads = [||];
    stopping = false;
    processed = 0;
    tracer = Trace.create ();
    batching = (match batching with Some b -> b | None -> !batching_default);
    ring = [||];
    ring_head = 0;
    ring_len = 0;
    batch = ref [||];
    batch_pos = 0;
    batch_len = 0;
    limit = max_int;
    drains = 0;
    batch_hist = Array.make 65 0;
    cur_run = 0;
    defer_on = false;
    defer_acc = 0;
  }

let now t = t.now
let prng t = t.rng
let tracer t = t.tracer

let trace_thread t th ev =
  if Trace.enabled t.tracer then
    Trace.emit t.tracer ~ts:t.now ~tid:th.tid ~cpu:th.cpu ev

(* Ring capacities stay powers of two so indexing is a mask. *)
let ring_push t f =
  let cap = Array.length t.ring in
  if t.ring_len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nr = Array.make ncap nop in
    for i = 0 to t.ring_len - 1 do
      nr.(i) <- t.ring.((t.ring_head + i) land (cap - 1))
    done;
    t.ring <- nr;
    t.ring_head <- 0
  end;
  t.ring.((t.ring_head + t.ring_len) land (Array.length t.ring - 1)) <- f;
  t.ring_len <- t.ring_len + 1

let ring_pop t =
  let i = t.ring_head in
  let f = t.ring.(i) in
  t.ring.(i) <- nop;
  t.ring_head <- (i + 1) land (Array.length t.ring - 1);
  t.ring_len <- t.ring_len - 1;
  f

(* An [at] for the current instant joins the FIFO ring instead of the
   heap.  Order argument: every heap entry with time = [now] was added
   before [now] became current (adds at the current time go to the ring,
   past times are rejected), so heap entries always precede ring entries
   in insertion order — [run] drains heap-run first, then ring, which is
   exactly global (time, seq) order. *)
let at t time f =
  if time > t.now then Eventq.add t.events ~time f
  else if time = t.now && t.batching then ring_push t f
  else if time = t.now then Eventq.add t.events ~time f
  else
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.now)

let after t d = at t (t.now + d)

let self t =
  match t.current with
  | Some th -> th
  | None -> failwith "Sim.self: not inside a simulated thread"

(* One burst of a thread's execution: [t.current] is set while [k] runs
   and cleared when the thread suspends, finishes, or escapes with an
   exception.  Hand-rolled rather than [Fun.protect] so the per-burst
   cost is two field writes, not a finaliser closure. *)
let run_burst t th k =
  t.current <- Some th;
  match k () with
  | () -> t.current <- None
  | exception e ->
    t.current <- None;
    raise e

(* Run [f] as the body of [th]: effects performed inside are handled here.
   Each resumption of the thread's continuation happens from an event-loop
   callback, so [t.current] is set for the duration of each burst of
   execution and cleared when the thread suspends or finishes. *)
let start_thread t th body =
  let open Effect.Deep in
  let handler =
    {
      retc =
        (fun () ->
          th.finished <- true;
          trace_thread t th Trace.Thread_exit);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (owner, register) ->
            if owner != t then None
            else
              Some
                (fun (k : (a, _) continuation) ->
                  (* A fresh generation per suspension: a resume carrying
                     an old generation (or arriving while the thread is
                     already runnable) is a double resume.  An int field
                     on the thread replaces the bool ref the old code
                     allocated per suspension. *)
                  th.suspend_gen <- th.suspend_gen + 1;
                  let gen = th.suspend_gen in
                  th.runnable <- false;
                  trace_thread t th Trace.Thread_block;
                  let resume time =
                    if th.runnable || gen <> th.suspend_gen then
                      failwith
                        (Printf.sprintf "Sim: thread %S resumed twice" th.name);
                    th.runnable <- true;
                    at t time (fun () ->
                        trace_thread t th Trace.Thread_resume;
                        run_burst t th (fun () -> continue k ()))
                  in
                  register resume)
          | _ -> None);
    }
  in
  run_burst t th (fun () -> match_with body () handler)

(* Append [th] to the tid-indexed table, doubling the backing array as
   needed (the table replaces the old newest-first list, so diagnostics
   walk threads in tid order and tid lookups are O(1)). *)
let register_thread t th =
  let cap = Array.length t.threads in
  if t.next_tid >= cap then begin
    let table = Array.make (max 8 (2 * cap)) th in
    Array.blit t.threads 0 table 0 t.next_tid;
    t.threads <- table
  end;
  t.threads.(t.next_tid) <- th;
  t.next_tid <- t.next_tid + 1

let spawn t ?cpu ~name body =
  let cpu =
    match cpu with
    | Some c -> c
    | None ->
      let c = t.next_cpu in
      t.next_cpu <- t.next_cpu + 1;
      c
  in
  let th =
    {
      tid = t.next_tid;
      cpu;
      name;
      finished = false;
      runnable = true;
      waited_ns = 0;
      suspend_gen = 0;
    }
  in
  register_thread t th;
  Trace.register_thread t.tracer ~tid:th.tid ~cpu:th.cpu name;
  (* The fork edge: when the spawner is itself a simulated thread, its
     past happens-before everything the child does.  Emitted with the
     parent's tid so the happens-before checker can seed the child's
     clock from it; top-level spawns (setup code) have no parent edge. *)
  (match t.current with
  | Some parent -> trace_thread t parent (Trace.Thread_fork { child = th.tid })
  | None -> ());
  trace_thread t th (Trace.Thread_spawn { name });
  at t t.now (fun () -> start_thread t th body);
  th

let in_thread t = Option.is_some t.current

let suspend t register =
  if t.defer_on then
    failwith "Sim.suspend: blocking operation inside a deferred-charge section";
  Effect.perform (Suspend (t, register))

(* Deferred charging: between [defer_begin] and [defer_end] every [delay]
   (and [yield]) accumulates into a counter instead of consuming simulated
   time, so a caller can run a whole protocol-processing section
   host-atomically and learn its total simulated cost afterwards.  SCR
   replay uses this to apply log entries in place and charge the stored
   cost on the applying thread's own clock.  Sections must not block:
   [suspend] raises while a defer is active.  Not nestable. *)
let defer_begin t =
  if t.defer_on then invalid_arg "Sim.defer_begin: already deferring";
  t.defer_on <- true;
  t.defer_acc <- 0

let defer_end t =
  if not t.defer_on then invalid_arg "Sim.defer_end: no deferred section";
  t.defer_on <- false;
  t.defer_acc

let defer_active t = t.defer_on

(* Close out the histogram entry for the timestamp being dispatched. *)
let note_drain_end t =
  if t.cur_run > 0 then begin
    t.drains <- t.drains + 1;
    let b = min t.cur_run (Array.length t.batch_hist - 1) in
    t.batch_hist.(b) <- t.batch_hist.(b) + 1;
    t.cur_run <- 0
  end

(* The suspend/resume machinery exists to let *other* pending events run
   while a thread waits.  When there provably are none — the batch and
   ring are drained and every heap event is strictly later than the
   wake-up — a [delay] can simply advance the clock in place: no effect,
   no continuation capture, no heap round-trip.  The skipped resume
   event still counts toward [processed] (and as a 1-event drain), so
   event totals and rates are comparable across modes.  Gated off when
   tracing: the real path emits Thread_block/Thread_resume records that
   replay analysis consumes. *)
let delay_fast t d =
  let wake = t.now + d in
  if
    t.batching && t.current != None && (not t.stopping)
    && t.batch_pos >= t.batch_len
    && t.ring_len = 0
    && wake <= t.limit
    && (not (Trace.enabled t.tracer))
    && (Eventq.is_empty t.events || Eventq.peek_time_exn t.events > wake)
  then begin
    note_drain_end t;
    t.now <- wake;
    t.processed <- t.processed + 1;
    t.cur_run <- 1;
    true
  end
  else false

let delay t d =
  if d < 0 then invalid_arg "Sim.delay: negative duration";
  if t.defer_on then t.defer_acc <- t.defer_acc + d
  else if d = 0 then ()
  else if not (delay_fast t d) then
    let deadline = t.now + d in
    suspend t (fun resume -> resume deadline)

let yield t =
  (* Same fast path with d = 0: nothing else is pending at this instant,
     so yielding to nobody is a plain no-op (minus the event count). *)
  if t.defer_on then ()
  else if not (delay_fast t 0) then suspend t (fun resume -> resume t.now)

let stop t = t.stopping <- true

(* Reference one-event-at-a-time loop, kept verbatim for PNP_NO_BATCH
   A/B determinism diffs: peek_time_exn/pop_exn return immediates rather
   than options/tuples, and emptiness is checked up front. *)
let run_unbatched ?until t =
  let continue_ = ref true in
  while !continue_ && not t.stopping do
    if Eventq.is_empty t.events then continue_ := false
    else begin
      let time = Eventq.peek_time_exn t.events in
      match until with
      | Some limit when time > limit ->
        t.now <- max t.now limit;
        continue_ := false
      | _ ->
        let action = Eventq.pop_exn t.events in
        assert (time >= t.now);
        t.now <- time;
        t.processed <- t.processed + 1;
        action ()
    end
  done

(* Batched loop: advance to the earliest timestamp, [Eventq.pop_run] its
   whole run into the scratch batch in one pass, dispatch the batch, then
   drain the ring of events added *at* that timestamp (FIFO), and only
   then look at the heap again.  [stop] mid-batch leaves the tail in
   [t.batch]; a later [run] resumes from it, preserving order. *)
let run_batched t limit =
  let continue_ = ref true in
  while !continue_ && not t.stopping do
    if t.batch_pos < t.batch_len then begin
      let b = !(t.batch) in
      let action = b.(t.batch_pos) in
      b.(t.batch_pos) <- nop;
      t.batch_pos <- t.batch_pos + 1;
      t.processed <- t.processed + 1;
      t.cur_run <- t.cur_run + 1;
      action ()
    end
    else if t.ring_len > 0 && t.now <= limit then begin
      let action = ring_pop t in
      t.processed <- t.processed + 1;
      t.cur_run <- t.cur_run + 1;
      action ()
    end
    else if Eventq.is_empty t.events then continue_ := false
    else begin
      let time = Eventq.peek_time_exn t.events in
      if time > limit then begin
        t.now <- max t.now limit;
        continue_ := false
      end
      else begin
        note_drain_end t;
        assert (time >= t.now);
        t.now <- time;
        t.batch_len <- Eventq.pop_run t.events t.batch;
        t.batch_pos <- 0
      end
    end
  done;
  note_drain_end t

let run ?until t =
  t.stopping <- false;
  t.limit <- (match until with Some l -> l | None -> max_int);
  if t.batching then run_batched t t.limit else run_unbatched ?until t;
  match until with
  | Some limit when not t.stopping -> t.now <- max t.now limit
  | _ -> ()

let dispatch_stats t = (t.drains, Array.copy t.batch_hist)

(* Diagnostics below walk the live prefix of the table; results come back
   in tid (spawn) order. *)
let filter_threads t pred =
  let acc = ref [] in
  for i = t.next_tid - 1 downto 0 do
    let th = t.threads.(i) in
    if pred th then acc := th :: !acc
  done;
  !acc

let blocked_threads t =
  filter_threads t (fun th -> (not th.finished) && not th.runnable)

let live_threads t = filter_threads t (fun th -> not th.finished)

let pp_blocked fmt t =
  match blocked_threads t with
  | [] -> Format.fprintf fmt "no blocked threads"
  | bs ->
    Format.fprintf fmt "%d blocked thread(s):" (List.length bs);
    List.iter
      (fun th -> Format.fprintf fmt "@ [tid %d cpu %d %S]" th.tid th.cpu th.name)
      bs

let tid th = th.tid
let cpu th = th.cpu
let thread_name th = th.name
let is_finished th = th.finished
let note_wait th d = th.waited_ns <- th.waited_ns + d
let wait_ns th = th.waited_ns
let events_processed t = t.processed
