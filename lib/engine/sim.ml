open Pnp_util

type thread = {
  tid : int;
  cpu : int;
  name : string;
  mutable finished : bool;
  mutable runnable : bool; (* has a scheduled resumption (or is running) *)
  mutable waited_ns : int;
  mutable suspend_gen : int; (* suspension generation; catches stale resumes *)
}

type t = {
  mutable now : int;
  events : (unit -> unit) Eventq.t;
  rng : Prng.t;
  mutable next_tid : int;
  mutable next_cpu : int;
  mutable current : thread option;
  mutable threads : thread array; (* tid-indexed; first [next_tid] slots live *)
  mutable stopping : bool;
  mutable processed : int;
  tracer : Trace.t;
}

type _ Effect.t += Suspend : t * ((int -> unit) -> unit) -> unit Effect.t

let create ?(seed = 42) () =
  {
    now = 0;
    events = Eventq.create ();
    rng = Prng.create seed;
    next_tid = 0;
    next_cpu = 0;
    current = None;
    threads = [||];
    stopping = false;
    processed = 0;
    tracer = Trace.create ();
  }

let now t = t.now
let prng t = t.rng
let tracer t = t.tracer

let trace_thread t th ev =
  if Trace.enabled t.tracer then
    Trace.emit t.tracer ~ts:t.now ~tid:th.tid ~cpu:th.cpu ev

let at t time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.now);
  Eventq.add t.events ~time f

let after t d = at t (t.now + d)

let self t =
  match t.current with
  | Some th -> th
  | None -> failwith "Sim.self: not inside a simulated thread"

(* One burst of a thread's execution: [t.current] is set while [k] runs
   and cleared when the thread suspends, finishes, or escapes with an
   exception.  Hand-rolled rather than [Fun.protect] so the per-burst
   cost is two field writes, not a finaliser closure. *)
let run_burst t th k =
  t.current <- Some th;
  match k () with
  | () -> t.current <- None
  | exception e ->
    t.current <- None;
    raise e

(* Run [f] as the body of [th]: effects performed inside are handled here.
   Each resumption of the thread's continuation happens from an event-loop
   callback, so [t.current] is set for the duration of each burst of
   execution and cleared when the thread suspends or finishes. *)
let start_thread t th body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> th.finished <- true);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (owner, register) ->
            if owner != t then None
            else
              Some
                (fun (k : (a, _) continuation) ->
                  (* A fresh generation per suspension: a resume carrying
                     an old generation (or arriving while the thread is
                     already runnable) is a double resume.  An int field
                     on the thread replaces the bool ref the old code
                     allocated per suspension. *)
                  th.suspend_gen <- th.suspend_gen + 1;
                  let gen = th.suspend_gen in
                  th.runnable <- false;
                  trace_thread t th Trace.Thread_block;
                  let resume time =
                    if th.runnable || gen <> th.suspend_gen then
                      failwith
                        (Printf.sprintf "Sim: thread %S resumed twice" th.name);
                    th.runnable <- true;
                    at t time (fun () ->
                        trace_thread t th Trace.Thread_resume;
                        run_burst t th (fun () -> continue k ()))
                  in
                  register resume)
          | _ -> None);
    }
  in
  run_burst t th (fun () -> match_with body () handler)

(* Append [th] to the tid-indexed table, doubling the backing array as
   needed (the table replaces the old newest-first list, so diagnostics
   walk threads in tid order and tid lookups are O(1)). *)
let register_thread t th =
  let cap = Array.length t.threads in
  if t.next_tid >= cap then begin
    let table = Array.make (max 8 (2 * cap)) th in
    Array.blit t.threads 0 table 0 t.next_tid;
    t.threads <- table
  end;
  t.threads.(t.next_tid) <- th;
  t.next_tid <- t.next_tid + 1

let spawn t ?cpu ~name body =
  let cpu =
    match cpu with
    | Some c -> c
    | None ->
      let c = t.next_cpu in
      t.next_cpu <- t.next_cpu + 1;
      c
  in
  let th =
    {
      tid = t.next_tid;
      cpu;
      name;
      finished = false;
      runnable = true;
      waited_ns = 0;
      suspend_gen = 0;
    }
  in
  register_thread t th;
  Trace.register_thread t.tracer ~tid:th.tid ~cpu:th.cpu name;
  trace_thread t th (Trace.Thread_spawn { name });
  at t t.now (fun () -> start_thread t th body);
  th

let in_thread t = Option.is_some t.current

let suspend t register = Effect.perform (Suspend (t, register))

let delay t d =
  if d < 0 then invalid_arg "Sim.delay: negative duration";
  if d = 0 then ()
  else
    let deadline = t.now + d in
    suspend t (fun resume -> resume deadline)

let yield t = suspend t (fun resume -> resume t.now)

let stop t = t.stopping <- true

let run ?until t =
  t.stopping <- false;
  let continue_ = ref true in
  (* Allocation-free event loop: peek_time_exn/pop_exn return immediates
     rather than options/tuples, and emptiness is checked up front. *)
  while !continue_ && not t.stopping do
    if Eventq.is_empty t.events then continue_ := false
    else begin
      let time = Eventq.peek_time_exn t.events in
      match until with
      | Some limit when time > limit ->
        t.now <- max t.now limit;
        continue_ := false
      | _ ->
        let action = Eventq.pop_exn t.events in
        assert (time >= t.now);
        t.now <- time;
        t.processed <- t.processed + 1;
        action ()
    end
  done;
  match until with
  | Some limit when not t.stopping -> t.now <- max t.now limit
  | _ -> ()

(* Diagnostics below walk the live prefix of the table; results come back
   in tid (spawn) order. *)
let filter_threads t pred =
  let acc = ref [] in
  for i = t.next_tid - 1 downto 0 do
    let th = t.threads.(i) in
    if pred th then acc := th :: !acc
  done;
  !acc

let blocked_threads t =
  filter_threads t (fun th -> (not th.finished) && not th.runnable)

let live_threads t = filter_threads t (fun th -> not th.finished)

let pp_blocked fmt t =
  match blocked_threads t with
  | [] -> Format.fprintf fmt "no blocked threads"
  | bs ->
    Format.fprintf fmt "%d blocked thread(s):" (List.length bs);
    List.iter
      (fun th -> Format.fprintf fmt "@ [tid %d cpu %d %S]" th.tid th.cpu th.name)
      bs

let tid th = th.tid
let cpu th = th.cpu
let thread_name th = th.name
let is_finished th = th.finished
let note_wait th d = th.waited_ns <- th.waited_ns + d
let wait_ns th = th.waited_ns
let events_processed t = t.processed
