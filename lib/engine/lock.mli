(** Simulated locks with the two grant disciplines the paper compares.

    [Unfair] models the raw IRIX mutex of Section 4.1: uncontended acquire
    costs 0.7 us (on the Challenge), and when the holder releases, the lock
    is granted to an {e arbitrary} waiter — the paper observes that these
    locks are not FIFO, which is exactly what reorders packets inside TCP.

    [Fifo] models the MCS queue lock (Mellor-Crummey & Scott): more
    expensive uncontended (1.5 us) but contended grants happen in arrival
    order, preserving packet order.

    On [Coherency]-synchronised architectures (the Challenge), moving a
    lock between CPUs additionally pays the cache-line migration penalty
    [arch.coherency_ns]; the Power Series' synchronisation bus does not. *)

type discipline =
  | Unfair  (** IRIX mutex: grant to a random waiter *)
  | Fifo    (** MCS queue lock: grant in arrival order *)
  | Barging (** test-and-set spinlock where the most recent arrival wins
                (LIFO) — an ablation point between Unfair and Fifo *)

type t

val create : Sim.t -> Arch.t -> discipline -> name:string -> t

val discipline : t -> discipline
val name : t -> string

val acquire : t -> unit
(** Block until the lock is held by the calling thread, charging the
    discipline's acquire cost (plus handoff and coherency costs when
    contended or migrating between CPUs). *)

val release : t -> unit
(** Release; if waiters exist, grant per the discipline.  Must be called by
    the owner.
    @raise Invalid_argument when the caller does not own the lock; the
    message names the lock, the caller's tid and the owner's tid (or
    "not held"). *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] = acquire; run [f]; release — releasing on exceptions. *)

val holding : t -> bool
(** Whether the calling thread currently owns the lock. *)

(** {2 Statistics} *)

val acquisitions : t -> int
val contended_acquisitions : t -> int
val total_wait_ns : t -> Pnp_util.Units.ns
val total_hold_ns : t -> Pnp_util.Units.ns
val reset_stats : t -> unit

(** {2 Recursive (counting) locks}

    The x-kernel map manager can call itself through [mapForEach]; the
    paper handles this with counting locks: a re-acquire by the owner just
    increments a count (Section 2.1). *)

module Counting : sig
  type lock := t
  type t

  val create : Sim.t -> Arch.t -> discipline -> name:string -> t
  val acquire : t -> unit
  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
  val depth : t -> int
  val underlying : t -> lock
end
