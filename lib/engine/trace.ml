type pkt_phase = Enqueue | Ip | Lock_wait | Tcp_input | Upcall

type ev =
  | Thread_spawn of { name : string }
  | Thread_fork of { child : int }
  | Thread_exit
  | Thread_join of { child : int }
  | Thread_block
  | Thread_resume
  | Lock_request of { lock : string; waiters : int }
  | Lock_grant of { lock : string; waiters : int; wait_ns : int }
  | Lock_handoff of { lock : string; to_tid : int; handoff_ns : int }
  | Lock_release of { lock : string; hold_ns : int }
  | Gate_take of { gate : string; ticket : int }
  | Gate_pass of { gate : string; ticket : int; wait_ns : int }
  | Gate_advance of { gate : string; serving : int }
  | Membus_charge of { bytes : int; dur_ns : int }
  | Mpool_alloc of { hit : bool }
  | Mnode_alloc of { node : int }
  | Mnode_ref of { node : int; refs : int }
  | Mnode_unref of { node : int; refs : int }
  | Mnode_recycle of { node : int }
  | Mnode_write of { node : int }
  | Span_begin of { seq : int; phase : pkt_phase }
  | Span_end of { seq : int; phase : pkt_phase }
  | Access of { state : string; write : bool }
  | Fault_drop of { cause : string }
  | Fault_dup of { copies : int }
  | Fault_corrupt of { off : int; bit : int }
  | Fault_reorder of { delay_ns : int }
  | Scr_append of { log : string; idx : int }
  | Scr_apply of { log : string; idx : int }
  | Scr_apply_end of { log : string; idx : int }
  | Scr_replay of { log : string; upto : int }
  | Rcu_read of { state : string }
  | Rcu_publish of { state : string }

type record = { ts : int; tid : int; cpu : int; ev : ev }

(* Arena-backed record store.  Records land in fixed-size chunks whose
   ts/tid/cpu columns are unboxed int arrays (only the event payload
   stays a heap value), replacing the one-cons-plus-one-record-per-event
   list the tracer used to build.  [clear] recycles full chunks into a
   free list, so repeated trace/clear cycles reuse the same memory.
   Chunks are allocated lazily on the first emit: a disabled tracer (the
   default — one exists per sim) costs a few words, not a chunk. *)
type chunk = {
  c_ts : int array;
  c_tid : int array;
  c_cpu : int array;
  c_ev : ev array;
}

let chunk_size = 4096

let empty_chunk = { c_ts = [||]; c_tid = [||]; c_cpu = [||]; c_ev = [||] }

let fresh_chunk () =
  {
    c_ts = Array.make chunk_size 0;
    c_tid = Array.make chunk_size 0;
    c_cpu = Array.make chunk_size 0;
    c_ev = Array.make chunk_size Thread_block;
  }

type t = {
  mutable on : bool;
  mutable filled : chunk list; (* full chunks, newest first *)
  mutable cur : chunk;
  mutable cur_len : int;
  mutable free : chunk list; (* recycled by [clear] *)
  mutable n : int;
  names : (int, string * int) Hashtbl.t; (* tid -> (name, cpu); always kept *)
  locks : (string, string) Hashtbl.t; (* lock name -> discipline; always kept *)
}

let create () =
  {
    on = false;
    filled = [];
    cur = empty_chunk;
    cur_len = 0;
    free = [];
    n = 0;
    names = Hashtbl.create 16;
    locks = Hashtbl.create 16;
  }

let enabled t = t.on
let enable t = t.on <- true
let disable t = t.on <- false

(* Registered at every spawn regardless of [on], so threads created before
   tracing starts still get names in the exported view. *)
let register_thread t ~tid ~cpu name = Hashtbl.replace t.names tid (name, cpu)

(* Registered at creation regardless of [on]: locks mostly exist before
   tracing starts, and the order checkers need their disciplines. *)
let register_lock t ~name ~discipline = Hashtbl.replace t.locks name discipline
let lock_discipline t name = Hashtbl.find_opt t.locks name

let registered_locks t =
  Hashtbl.fold (fun name disc acc -> (name, disc) :: acc) t.locks []
  |> List.sort compare

let clear t =
  (* Keep the chunks: the next trace run refills them in place. *)
  if Array.length t.cur.c_ts > 0 then t.free <- t.cur :: t.free;
  t.free <- List.rev_append t.filled t.free;
  t.filled <- [];
  t.cur <- empty_chunk;
  t.cur_len <- 0;
  t.n <- 0

let emit t ~ts ~tid ~cpu ev =
  if t.on then begin
    if t.cur_len = Array.length t.cur.c_ts then begin
      if t.cur_len > 0 then t.filled <- t.cur :: t.filled;
      (t.cur <-
         (match t.free with
         | c :: rest ->
           t.free <- rest;
           c
         | [] -> fresh_chunk ()));
      t.cur_len <- 0
    end;
    let c = t.cur and i = t.cur_len in
    c.c_ts.(i) <- ts;
    c.c_tid.(i) <- tid;
    c.c_cpu.(i) <- cpu;
    c.c_ev.(i) <- ev;
    t.cur_len <- i + 1;
    t.n <- t.n + 1
  end

let count t = t.n

let iter t f =
  let visit c len =
    for i = 0 to len - 1 do
      f { ts = c.c_ts.(i); tid = c.c_tid.(i); cpu = c.c_cpu.(i); ev = c.c_ev.(i) }
    done
  in
  List.iter (fun c -> visit c (Array.length c.c_ts)) (List.rev t.filled);
  visit t.cur t.cur_len

let events t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let pp_phase = function
  | Enqueue -> "enqueue"
  | Ip -> "ip"
  | Lock_wait -> "lock-wait"
  | Tcp_input -> "tcp-input"
  | Upcall -> "upcall"

(* ------------------------------------------------------------------ *)
(* Per-lock contention attribution                                     *)
(* ------------------------------------------------------------------ *)

type lock_stats = {
  lock : string;
  acquisitions : int;
  contended : int;
  wait_ns : int;
  hold_ns : int;
  handoff_ns : int;
  max_queue : int;
}

type acc = {
  mutable a_acq : int;
  mutable a_cont : int;
  mutable a_wait : int;
  mutable a_hold : int;
  mutable a_handoff : int;
  mutable a_maxq : int;
}

let lock_table t =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None ->
      let a = { a_acq = 0; a_cont = 0; a_wait = 0; a_hold = 0; a_handoff = 0; a_maxq = 0 } in
      Hashtbl.replace tbl name a;
      a
  in
  List.iter
    (fun r ->
      match r.ev with
      | Lock_request { lock; waiters } ->
        let a = get lock in
        if waiters > a.a_maxq then a.a_maxq <- waiters
      | Lock_grant { lock; wait_ns; _ } ->
        let a = get lock in
        a.a_acq <- a.a_acq + 1;
        if wait_ns > 0 then a.a_cont <- a.a_cont + 1;
        a.a_wait <- a.a_wait + wait_ns
      | Lock_handoff { lock; handoff_ns; _ } ->
        let a = get lock in
        a.a_handoff <- a.a_handoff + handoff_ns
      | Lock_release { lock; hold_ns } ->
        let a = get lock in
        a.a_hold <- a.a_hold + hold_ns
      | _ -> ())
    (events t);
  Hashtbl.fold
    (fun lock a rows ->
      {
        lock;
        acquisitions = a.a_acq;
        contended = a.a_cont;
        wait_ns = a.a_wait;
        hold_ns = a.a_hold;
        handoff_ns = a.a_handoff;
        max_queue = a.a_maxq;
      }
      :: rows)
    tbl []
  |> List.sort (fun x y ->
         match compare y.wait_ns x.wait_ns with 0 -> compare x.lock y.lock | c -> c)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ns -> us with sub-us precision preserved (chrome "ts" is microseconds). *)
let us ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let to_chrome_string t =
  let buf = Buffer.create 65536 in
  let first = ref true in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let evs = events t in
  (* Thread-name metadata rows (one per simulated thread). *)
  Hashtbl.fold (fun tid (name, cpu) acc -> (tid, name, cpu) :: acc) t.names []
  |> List.sort compare
  |> List.iter (fun (tid, name, cpu) ->
         add
           "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s (cpu %d)\"}}"
           tid (escape name) cpu);
  let complete ~name ~cat r ~start_ns ~dur_ns ~args =
    add "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"%s\",\"cat\":\"%s\"%s}"
      r.tid (us start_ns) (us dur_ns) (escape name) cat
      (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args)
  in
  let instant ~name ~cat r ~args =
    add "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\"%s}"
      r.tid (us r.ts) (escape name) cat
      (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args)
  in
  let async ph r ~seq ~phase =
    add
      "{\"ph\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"id\":\"0x%x\",\"cat\":\"pkt\",\"name\":\"%s\"}"
      ph r.tid (us r.ts) seq (pp_phase phase)
  in
  List.iter
    (fun r ->
      match r.ev with
      | Thread_spawn { name } -> instant ~name:("spawn " ^ name) ~cat:"thread" r ~args:""
      | Thread_fork { child } ->
        instant ~name:"fork" ~cat:"thread" r ~args:(Printf.sprintf "\"child\":%d" child)
      | Thread_exit -> instant ~name:"exit" ~cat:"thread" r ~args:""
      | Thread_join { child } ->
        instant ~name:"join" ~cat:"thread" r ~args:(Printf.sprintf "\"child\":%d" child)
      | Thread_block | Thread_resume ->
        (* Block/resume intervals are already visible through the wait
           duration events; keep the raw stream out of the rendered view. *)
        ()
      | Lock_request { lock; waiters } ->
        instant ~name:("request " ^ lock) ~cat:"lock" r
          ~args:(Printf.sprintf "\"waiters\":%d" waiters)
      | Lock_grant { lock; wait_ns; waiters } ->
        if wait_ns > 0 then
          complete ~name:("wait " ^ lock) ~cat:"lock" r ~start_ns:(r.ts - wait_ns)
            ~dur_ns:wait_ns
            ~args:(Printf.sprintf "\"waiters_left\":%d" waiters)
      | Lock_handoff { lock; to_tid; handoff_ns } ->
        complete ~name:("handoff " ^ lock) ~cat:"lock" r ~start_ns:r.ts ~dur_ns:handoff_ns
          ~args:(Printf.sprintf "\"to_tid\":%d" to_tid)
      | Lock_release { lock; hold_ns } ->
        complete ~name:("hold " ^ lock) ~cat:"lock" r ~start_ns:(r.ts - hold_ns)
          ~dur_ns:hold_ns ~args:""
      | Gate_take { gate; ticket } ->
        instant ~name:("ticket " ^ gate) ~cat:"gate" r
          ~args:(Printf.sprintf "\"ticket\":%d" ticket)
      | Gate_pass { gate; ticket; wait_ns } ->
        if wait_ns > 0 then
          complete ~name:("gate " ^ gate) ~cat:"gate" r ~start_ns:(r.ts - wait_ns)
            ~dur_ns:wait_ns
            ~args:(Printf.sprintf "\"ticket\":%d" ticket)
      | Gate_advance { gate; serving } ->
        instant ~name:("advance " ^ gate) ~cat:"gate" r
          ~args:(Printf.sprintf "\"serving\":%d" serving)
      | Membus_charge { bytes; dur_ns } ->
        complete ~name:"membus" ~cat:"bus" r ~start_ns:(r.ts - dur_ns) ~dur_ns
          ~args:(Printf.sprintf "\"bytes\":%d" bytes)
      | Mpool_alloc { hit } ->
        instant ~name:(if hit then "mpool hit" else "mpool miss") ~cat:"mpool" r ~args:""
      | Mnode_alloc { node } ->
        instant ~name:"mnode alloc" ~cat:"mpool" r
          ~args:(Printf.sprintf "\"node\":%d" node)
      | Mnode_ref { node; refs } ->
        instant ~name:"mnode ref" ~cat:"mpool" r
          ~args:(Printf.sprintf "\"node\":%d,\"refs\":%d" node refs)
      | Mnode_unref { node; refs } ->
        instant ~name:"mnode unref" ~cat:"mpool" r
          ~args:(Printf.sprintf "\"node\":%d,\"refs\":%d" node refs)
      | Mnode_recycle { node } ->
        instant ~name:"mnode recycle" ~cat:"mpool" r
          ~args:(Printf.sprintf "\"node\":%d" node)
      | Mnode_write { node } ->
        instant ~name:"mnode write" ~cat:"mpool" r
          ~args:(Printf.sprintf "\"node\":%d" node)
      | Span_begin { seq; phase } -> async "b" r ~seq ~phase
      | Span_end { seq; phase } -> async "e" r ~seq ~phase
      | Access { state; write } ->
        instant ~name:((if write then "write " else "read ") ^ state) ~cat:"access" r
          ~args:""
      | Fault_drop { cause } -> instant ~name:("fault drop " ^ cause) ~cat:"fault" r ~args:""
      | Fault_dup { copies } ->
        instant ~name:"fault dup" ~cat:"fault" r
          ~args:(Printf.sprintf "\"copies\":%d" copies)
      | Fault_corrupt { off; bit } ->
        instant ~name:"fault corrupt" ~cat:"fault" r
          ~args:(Printf.sprintf "\"off\":%d,\"bit\":%d" off bit)
      | Fault_reorder { delay_ns } ->
        instant ~name:"fault reorder" ~cat:"fault" r
          ~args:(Printf.sprintf "\"delay_ns\":%d" delay_ns)
      | Scr_append { log; idx } ->
        instant ~name:("append " ^ log) ~cat:"scr" r
          ~args:(Printf.sprintf "\"idx\":%d" idx)
      | Scr_apply { log; idx } ->
        instant ~name:("apply " ^ log) ~cat:"scr" r
          ~args:(Printf.sprintf "\"idx\":%d" idx)
      | Scr_apply_end { log; idx } ->
        instant ~name:("apply-end " ^ log) ~cat:"scr" r
          ~args:(Printf.sprintf "\"idx\":%d" idx)
      | Scr_replay { log; upto } ->
        instant ~name:("replay " ^ log) ~cat:"scr" r
          ~args:(Printf.sprintf "\"upto\":%d" upto)
      | Rcu_read { state } -> instant ~name:("rcu read " ^ state) ~cat:"rcu" r ~args:""
      | Rcu_publish { state } ->
        instant ~name:("rcu publish " ^ state) ~cat:"rcu" r ~args:"")
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_string t))
