(** Deterministic discrete-event simulator with direct-style threads.

    The simulator stands in for the paper's shared-memory multiprocessor:
    each simulated thread is wired to a processor (exactly the paper's
    one-thread-per-CPU configuration), and protocol code runs as ordinary
    OCaml inside those threads, suspending on OCaml 5 effects whenever it
    consumes simulated time or blocks on a synchronisation object.

    The event loop is single-threaded at the host level; all concurrency is
    simulated, which is what makes lock-grant order, packet misordering and
    contention measurable and reproducible. *)

type t
(** A simulation world. *)

type thread
(** A simulated thread. *)

val create : ?seed:int -> ?batching:bool -> unit -> t
(** Fresh world at time 0.  [seed] initialises the world's PRNG (used by
    unfair lock grants and workload jitter).  [batching] overrides the
    global {!set_batching} default for this world. *)

(** {2 Batched dispatch toggle}

    The event loop normally dispatches same-timestamp runs in one batch
    (one heap drain per distinct timestamp plus a FIFO ring for events
    scheduled at the current instant) and lets an uncontended {!delay}
    advance the clock without suspending.  Both are order-preserving —
    every figure is byte-identical either way, which CI enforces — so
    the toggle exists for A/B determinism diffs and bisection, not
    tuning.  [PNP_NO_BATCH=1] in the environment flips the default to
    the one-event-at-a-time reference loop. *)

val set_batching : bool -> unit
(** Set the default dispatch mode for worlds created afterwards. *)

val batching_enabled : unit -> bool

val dispatch_stats : t -> int * int array
(** [(drains, hist)]: how many distinct timestamps the batched loop
    dispatched, and a histogram of events per drain (bucket [i] counts
    drains of [i] events; the last bucket absorbs larger runs).  All
    zeros when the world runs unbatched. *)

val now : t -> Pnp_util.Units.ns
(** Current simulated time. *)

val prng : t -> Pnp_util.Prng.t
(** The world's deterministic random stream. *)

val tracer : t -> Trace.t
(** The world's event tracer (disabled by default).  The simulator emits
    thread spawn/block/resume events; synchronisation objects and the
    protocol layers add theirs.  Enabling it never consumes simulated
    time, so traced and untraced runs of the same seed are identical. *)

val spawn : t -> ?cpu:int -> name:string -> (unit -> unit) -> thread
(** [spawn t ~cpu ~name body] creates a thread wired to processor [cpu]
    (default: a fresh CPU number) that starts running at the current time.
    The body may call {!delay}, {!suspend} and the blocking operations of
    {!Lock}, {!Gate} and {!Membus}. *)

val at : t -> Pnp_util.Units.ns -> (unit -> unit) -> unit
(** [at t time f] schedules the callback [f] at absolute [time].  Callbacks
    run outside any thread and must not block. *)

val after : t -> Pnp_util.Units.ns -> (unit -> unit) -> unit
(** Relative variant of {!at}. *)

val run : ?until:Pnp_util.Units.ns -> t -> unit
(** Process events in time order.  With [until], stop as soon as the next
    event would fire strictly after that time (the clock is then set to
    [until]); without it, run until the event queue drains. *)

val stop : t -> unit
(** Ask {!run} to return after the current event. *)

(** {2 Operations usable only inside a spawned thread} *)

val self : t -> thread
(** The currently running thread.  @raise Failure outside a thread. *)

val in_thread : t -> bool
(** Whether the caller is executing inside a simulated thread.  Setup code
    (building packet templates, initialising state) runs outside and must
    not be charged simulated time. *)

val delay : t -> Pnp_util.Units.ns -> unit
(** Consume simulated time: the calling thread resumes [d] later. *)

val suspend : t -> ((Pnp_util.Units.ns -> unit) -> unit) -> unit
(** [suspend t register] blocks the calling thread.  [register] receives a
    one-shot [resume] function; whoever holds it may later call
    [resume time] to schedule the thread to continue at absolute [time]. *)

val yield : t -> unit
(** Reschedule the calling thread at the current time, letting other
    pending events at this instant run first. *)

(** {2 Deferred charging}

    State-compute replication replays logged protocol work in place: the
    applying thread must run a whole processing section host-atomically
    (no interleaving with other simulated threads) while still learning
    what the section {e would} have cost in simulated time.  Between
    {!defer_begin} and {!defer_end}, {!delay} accumulates its durations
    into a counter instead of advancing the clock (and {!yield} is a
    no-op); {!defer_end} returns the accumulated nanoseconds so the
    caller can charge them explicitly — on its own clock, or on another
    thread's, or never (a replica replaying an entry a peer already paid
    for).  Blocking is a programming error inside a deferred section:
    {!suspend} raises.  Sections do not nest. *)

val defer_begin : t -> unit
(** Start accumulating {!delay} charges instead of consuming time.
    @raise Invalid_argument if a deferred section is already active. *)

val defer_end : t -> Pnp_util.Units.ns
(** End the deferred section and return the accumulated simulated cost.
    @raise Invalid_argument if no deferred section is active. *)

val defer_active : t -> bool

(** {2 Thread accessors} *)

val tid : thread -> int
val cpu : thread -> int
val thread_name : thread -> string
val is_finished : thread -> bool

val note_wait : thread -> Pnp_util.Units.ns -> unit
(** Attribute [d] of blocked time to the thread (locks call this; the
    harness reads it back for the Section 3 lock-wait profile). *)

val wait_ns : thread -> Pnp_util.Units.ns
(** Total blocked time recorded with {!note_wait}. *)

val events_processed : t -> int
(** Number of events executed so far (observability / debugging). *)

(** {2 Diagnostics}

    When [run] returns with the event queue drained but threads still
    blocked, something is deadlocked (or waiting on a resume that will
    never come); these report the suspects. *)

val blocked_threads : t -> thread list
(** Threads that are suspended with no scheduled resumption, in spawn
    (tid) order. *)

val live_threads : t -> thread list
(** Threads that have not finished, in spawn (tid) order. *)

val pp_blocked : Format.formatter -> t -> unit
