open Pnp_util
open Pnp_xkern

type stage =
  | Bernoulli_loss of { p : float }
  | Gilbert_elliott of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }
  | Duplicate of { p : float }
  | Reorder of { p : float; hold_ns : int }
  | Corrupt of { p : float }
  | Jitter of { p : float; spike_ns : int }
  | Wan_rtt of { base_ns : int; spread_ns : int }
  | Blackout of { start_ns : int; duration_ns : int; period_ns : int }

type plan = { name : string; stages : stage list }

let plan ?(name = "custom") stages = { name; stages }
let none = { name = "baseline"; stages = [] }
let bernoulli p = { name = "loss"; stages = [ Bernoulli_loss { p } ] }

let ms f = int_of_float (f *. 1e6)
let us f = int_of_float (f *. 1e3)

(* Stage order within a plan is cosmetic — [instantiate] normalises
   consuming stages to the front.  Corruption itself is copy-on-write
   (Msg.unshare), so a flip damages exactly the one frame it hits even
   when duplicates share MNodes. *)
let builtin =
  [
    ("baseline", none);
    ("loss", bernoulli 0.02);
    ( "burst",
      plan ~name:"burst"
        [ Gilbert_elliott { p_gb = 0.02; p_bg = 0.25; loss_good = 0.0; loss_bad = 0.5 } ] );
    ("dup", plan ~name:"dup" [ Duplicate { p = 0.03 } ]);
    ("reorder", plan ~name:"reorder" [ Reorder { p = 0.1; hold_ns = us 400.0 } ]);
    ("corrupt", plan ~name:"corrupt" [ Corrupt { p = 0.02 } ]);
    ("jitter", plan ~name:"jitter" [ Jitter { p = 0.05; spike_ns = ms 1.0 } ]);
    ( "blackout",
      plan ~name:"blackout"
        [ Blackout { start_ns = ms 30.0; duration_ns = ms 40.0; period_ns = 0 } ] );
    ( "wan",
      plan ~name:"wan"
        [
          Wan_rtt { base_ns = ms 5.0; spread_ns = ms 20.0 };
          Jitter { p = 0.05; spike_ns = ms 2.0 };
        ] );
    ( "chaos",
      plan ~name:"chaos"
        [
          Gilbert_elliott { p_gb = 0.01; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
          Blackout { start_ns = ms 40.0; duration_ns = ms 15.0; period_ns = ms 400.0 };
          Corrupt { p = 0.005 };
          Duplicate { p = 0.01 };
          Reorder { p = 0.05; hold_ns = us 300.0 };
          Jitter { p = 0.02; spike_ns = us 500.0 };
        ] );
  ]

let find name = Option.map snd (List.find_opt (fun (n, _) -> n = name) builtin)

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

(* Gilbert-Elliott chain state: true = bad (bursty) state.  [salt] is
   drawn at instantiation for Wan_rtt stages only (0 otherwise, so the
   PRNG streams of every pre-existing plan are untouched): the per-flow
   base-RTT draw must depend on the seed but not on frame order. *)
type inst = { spec : stage; rng : Prng.t; mutable ge_bad : bool; salt : int }

type t = {
  source : plan;
  skip_bytes : int;
  insts : inst list;
  mutable offered : int;
  mutable dropped_loss : int;
  mutable dropped_burst : int;
  mutable dropped_blackout : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable wan_stretched : int;
}

(* Consuming stages (loss, blackout) must run before damaging/cloning
   ones: otherwise a counted bit flip (or duplicate) can be swallowed
   before it reaches the wire, and the recovery oracle's exact books —
   "every injected flip is either checksum-rejected or a failure" — stop
   balancing.  Rather than trust every plan author to order stages, the
   pipeline is normalised here; relative order within each group is
   preserved. *)
let consuming = function
  | Bernoulli_loss _ | Gilbert_elliott _ | Blackout _ -> true
  | Duplicate _ | Reorder _ | Corrupt _ | Jitter _ | Wan_rtt _ -> false

let normalise stages =
  List.filter consuming stages @ List.filter (fun s -> not (consuming s)) stages

let instantiate plan ~prng ~skip_bytes =
  {
    source = plan;
    skip_bytes;
    insts =
      List.map
        (fun spec ->
          let rng = Prng.split prng in
          let salt =
            match spec with Wan_rtt _ -> Prng.int rng 0x3FFFFFFF | _ -> 0
          in
          { spec; rng; ge_bad = false; salt })
        (normalise plan.stages);
    offered = 0;
    dropped_loss = 0;
    dropped_burst = 0;
    dropped_blackout = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0;
    delayed = 0;
    wan_stretched = 0;
  }

let plan_of t = t.source

type event =
  | Ev_drop of drop_cause
  | Ev_dup
  | Ev_corrupt of { off : int; bit : int }
  | Ev_reorder of { delay_ns : int }
  | Ev_delay of { delay_ns : int }

and drop_cause = Random_loss | Burst_loss | Blackout_window

let drop_cause_label = function
  | Random_loss -> "loss"
  | Burst_loss -> "burst"
  | Blackout_window -> "blackout"

let hit rng p = p > 0.0 && Prng.float rng 1.0 < p

(* Flip one bit inside the encapsulated datagram (at or past skip_bytes),
   where an Internet checksum is guaranteed to notice it.  The flip must
   stay on the wire: transmitted frames share MNodes with the sender's
   retransmission queue (Msg.dup), so writing in place would poison the
   source a later — checksummed-valid — retransmission is built from.
   [unshare] copy-on-writes the damaged node first. *)
let flip_one_bit t inst msg =
  let len = Msg.length msg in
  if len > t.skip_bytes then begin
    let off = t.skip_bytes + Prng.int inst.rng (len - t.skip_bytes) in
    let bit = Prng.int inst.rng 8 in
    Msg.unshare msg ~off;
    Msg.set_u8 msg off (Msg.get_u8 msg off lxor (1 lsl bit));
    Some (off, bit)
  end
  else None

(* FNV-1a over the frame's flow identity: IP protocol, source and
   destination addresses, and — when this is an unfragmented first piece
   long enough to carry them — the transport ports.  Fields that change
   per packet (id, ttl, length, the IP checksum) are deliberately
   excluded, so every frame of a connection hashes alike and the WAN
   stage's path-length draw is stable for the connection's lifetime. *)
let flow_hash t inst msg =
  let len = Msg.length msg in
  let h = ref (0x811c9dc5 lxor inst.salt) in
  let mix b = h := (!h lxor b) * 0x01000193 land 0x3FFFFFFF in
  let byte off = if t.skip_bytes + off < len then mix (Msg.get_u8 msg (t.skip_bytes + off)) in
  byte 9;
  for off = 12 to 19 do
    byte off
  done;
  let frag_off =
    if t.skip_bytes + 7 < len then
      ((Msg.get_u8 msg (t.skip_bytes + 6) lsl 8) lor Msg.get_u8 msg (t.skip_bytes + 7))
      land 0x1fff
    else 0
  in
  if frag_off = 0 then
    for off = 20 to 23 do
      byte off
    done;
  !h

let in_blackout ~start_ns ~duration_ns ~period_ns now =
  now >= start_ns
  &&
  if period_ns <= 0 then now < start_ns + duration_ns
  else (now - start_ns) mod period_ns < duration_ns

(* Run one candidate frame through one stage.  [None] means consumed. *)
let apply_stage t ~now ~on_event inst (msg, delay) =
  match inst.spec with
  | Bernoulli_loss { p } ->
    if hit inst.rng p then begin
      t.dropped_loss <- t.dropped_loss + 1;
      on_event (Ev_drop Random_loss);
      Msg.destroy msg;
      []
    end
    else [ (msg, delay) ]
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
    let loss = if inst.ge_bad then loss_bad else loss_good in
    let drop = hit inst.rng loss in
    (* Advance the chain once per offered frame, after the loss draw. *)
    (if inst.ge_bad then begin
       if hit inst.rng p_bg then inst.ge_bad <- false
     end
     else if hit inst.rng p_gb then inst.ge_bad <- true);
    if drop then begin
      t.dropped_burst <- t.dropped_burst + 1;
      on_event (Ev_drop Burst_loss);
      Msg.destroy msg;
      []
    end
    else [ (msg, delay) ]
  | Duplicate { p } ->
    if hit inst.rng p then begin
      t.duplicated <- t.duplicated + 1;
      on_event Ev_dup;
      [ (msg, delay); (Msg.dup msg, delay) ]
    end
    else [ (msg, delay) ]
  | Reorder { p; hold_ns } ->
    if hit inst.rng p then begin
      t.reordered <- t.reordered + 1;
      on_event (Ev_reorder { delay_ns = hold_ns });
      [ (msg, delay + hold_ns) ]
    end
    else [ (msg, delay) ]
  | Corrupt { p } ->
    if hit inst.rng p then begin
      match flip_one_bit t inst msg with
      | Some (off, bit) ->
        t.corrupted <- t.corrupted + 1;
        on_event (Ev_corrupt { off; bit });
        [ (msg, delay) ]
      | None -> [ (msg, delay) ] (* header-only runt; nothing safe to flip *)
    end
    else [ (msg, delay) ]
  | Jitter { p; spike_ns } ->
    if hit inst.rng p && spike_ns > 0 then begin
      let spike = Prng.int inst.rng spike_ns in
      t.delayed <- t.delayed + 1;
      on_event (Ev_delay { delay_ns = spike });
      [ (msg, delay + spike) ]
    end
    else [ (msg, delay) ]
  | Wan_rtt { base_ns; spread_ns } ->
    let extra =
      base_ns + if spread_ns > 0 then flow_hash t inst msg mod spread_ns else 0
    in
    t.wan_stretched <- t.wan_stretched + 1;
    on_event (Ev_delay { delay_ns = extra });
    [ (msg, delay + extra) ]
  | Blackout { start_ns; duration_ns; period_ns } ->
    if in_blackout ~start_ns ~duration_ns ~period_ns now then begin
      t.dropped_blackout <- t.dropped_blackout + 1;
      on_event (Ev_drop Blackout_window);
      Msg.destroy msg;
      []
    end
    else [ (msg, delay) ]

let feed t ~now ~on_event msg =
  t.offered <- t.offered + 1;
  List.fold_left
    (fun candidates inst ->
      List.concat_map (apply_stage t ~now ~on_event inst) candidates)
    [ (msg, 0) ] t.insts

let offered t = t.offered
let dropped t = t.dropped_loss + t.dropped_burst + t.dropped_blackout
let dropped_loss t = t.dropped_loss
let dropped_burst t = t.dropped_burst
let dropped_blackout t = t.dropped_blackout
let corrupted t = t.corrupted
let duplicated t = t.duplicated
let reordered t = t.reordered
let delayed t = t.delayed
let wan_stretched t = t.wan_stretched
