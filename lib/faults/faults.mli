(** Deterministic, seeded fault injection for the link/driver boundary.

    A {e plan} is a declarative pipeline of fault stages; instantiating it
    ({!instantiate}) splits an independent {!Pnp_util.Prng} stream per
    stage, so a plan replays byte-identically for a given seed no matter
    how many worker domains run other simulations concurrently — all
    randomness is drawn in frame-offer order inside one single-threaded
    simulation world.

    Stages compose left to right.  Each offered frame runs through every
    stage in plan order; a stage may consume it (loss, blackout), damage
    it (bit-flip corruption), clone it (duplication) or hold it back by
    an extra delay (reordering, jitter).  Corruption flips exactly one
    bit at an offset at or beyond [skip_bytes], i.e. inside the
    encapsulated IP datagram, so every injected corruption is detectable
    by the Internet checksums above the MAC layer (a one's-complement sum
    catches all single-bit errors); the link-layer header itself carries
    no checksum and is never touched.  The flip is applied through
    {!Pnp_xkern.Msg.unshare}, i.e. to a private copy of the damaged node:
    transmitted frames share MNodes with the sender's retransmission
    queue and with any duplicates, and wire damage must never reach
    either — flipping in place would make later retransmissions carry the
    corrupted bytes under a freshly computed, valid checksum.

    {!instantiate} normalises the pipeline so consuming stages (loss,
    blackout) run before damaging and cloning ones, preserving relative
    order within each group.  This is what keeps the recovery oracle's
    books exact for {e every} plan, not just well-ordered ones: a counted
    bit flip or duplicate always reaches the wire, where a checksum (or
    the sequence space) can account for it, instead of being silently
    swallowed by a later drop. *)

(** One stage of a fault pipeline.  Probabilities are per offered frame. *)
type stage =
  | Bernoulli_loss of { p : float }  (** uniform random loss *)
  | Gilbert_elliott of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }
      (** two-state Markov burst loss: the chain moves good->bad with
          probability [p_gb] and bad->good with [p_bg] after each offered
          frame, dropping with [loss_good] / [loss_bad] in each state *)
  | Duplicate of { p : float }  (** clone the frame (one extra copy) *)
  | Reorder of { p : float; hold_ns : int }
      (** hold the frame back by [hold_ns] so later frames overtake it — a
          bounded reordering window (nothing is held indefinitely) *)
  | Corrupt of { p : float }  (** flip one payload bit (checksum-detectable) *)
  | Jitter of { p : float; spike_ns : int }
      (** delay spike: add a uniform extra delay in [0, spike_ns) *)
  | Wan_rtt of { base_ns : int; spread_ns : int }
      (** WAN RTT distribution: every frame of a given flow is stretched
          by the same seeded extra one-way delay in
          [\[base_ns, base_ns + spread_ns)], drawn per connection from a
          hash of the flow's stable header bytes (protocol, addresses,
          ports).  Models a population of paths of different lengths —
          per-flow base RTTs differ but each flow's delay is constant, so
          the stage introduces no intra-flow reordering by itself; compose
          with {!Jitter} for variance on top *)
  | Blackout of { start_ns : int; duration_ns : int; period_ns : int }
      (** drop every frame offered inside the window
          [\[start + k*period, start + k*period + duration)]; [period_ns = 0]
          means a single one-shot window *)

type plan = { name : string; stages : stage list }

val plan : ?name:string -> stage list -> plan
val none : plan
(** The empty plan: every frame passes untouched. *)

val bernoulli : float -> plan
(** [bernoulli p] is the single-stage uniform-loss plan — what
    [Link.connect ~loss_rate] desugars to. *)

val builtin : (string * plan) list
(** The named plans behind [repro chaos --plan NAME] and the chaos
    matrix, in a fixed presentation order. *)

val find : string -> plan option

(** {2 Instantiation and per-frame processing} *)

type t
(** An instantiated pipeline: per-stage PRNG streams, Markov/burst state
    and fault counters.  One instance serves one link direction. *)

val instantiate : plan -> prng:Pnp_util.Prng.t -> skip_bytes:int -> t
(** [instantiate plan ~prng ~skip_bytes] splits one PRNG stream per stage
    off [prng].  [skip_bytes] is the link-header size corruption must
    never touch (no checksum covers it). *)

val plan_of : t -> plan

(** What the pipeline did to an offered frame, reported through
    {!feed}'s [on_event] callback (the link turns these into trace
    events and per-cause drop accounting). *)
type event =
  | Ev_drop of drop_cause
  | Ev_dup
  | Ev_corrupt of { off : int; bit : int }
  | Ev_reorder of { delay_ns : int }
  | Ev_delay of { delay_ns : int }

and drop_cause = Random_loss | Burst_loss | Blackout_window

val drop_cause_label : drop_cause -> string
(** ["loss"], ["burst"] or ["blackout"]. *)

val feed :
  t -> now:int -> on_event:(event -> unit) -> Pnp_xkern.Msg.t -> (Pnp_xkern.Msg.t * int) list
(** Run one offered frame through the pipeline.  Returns the frames to
    put on the wire, each with the extra delay (ns) the fault stages
    added on top of serialisation + propagation; the empty list means the
    frame was consumed (it has already been destroyed).  Must be called
    in frame-offer order for determinism. *)

(** {2 Accounting}

    All counters are cumulative since instantiation. *)

val offered : t -> int
(** Frames fed in. *)

val dropped : t -> int
(** Consumed frames, all causes. *)

val dropped_loss : t -> int
val dropped_burst : t -> int
val dropped_blackout : t -> int

val corrupted : t -> int
(** Frames damaged (and delivered). *)

val duplicated : t -> int
(** Extra copies injected. *)

val reordered : t -> int
(** Frames held back past later traffic. *)

val delayed : t -> int
(** Jitter spikes applied. *)

val wan_stretched : t -> int
(** Frames stretched by a {!Wan_rtt} per-flow base delay. *)
