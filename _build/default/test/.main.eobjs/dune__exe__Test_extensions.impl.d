test/test_extensions.ml: Alcotest Arch Config List Lock Pnp_engine Pnp_harness Pnp_util Printf Run Sim
