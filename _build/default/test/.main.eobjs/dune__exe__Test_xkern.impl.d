test/test_xkern.ml: Alcotest Arch Buffer Char Gen Int List Lock Mpool Msg Option Platform Pnp_engine Pnp_util Pnp_xkern Printf QCheck QCheck_alcotest Sim String Timewheel Xmap
