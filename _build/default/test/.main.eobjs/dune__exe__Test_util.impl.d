test/test_util.ml: Alcotest Array Format Fun Gen Pnp_util Printf Prng QCheck QCheck_alcotest Stats Units
