test/test_driver.ml: Alcotest Arch Frame Link List Mpool Msg Platform Pnp_driver Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Sim Sniffer Stack String Tcp Tcp_peer Tcp_wire Udp Units
