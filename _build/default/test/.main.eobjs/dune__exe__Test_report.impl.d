test/test_report.ml: Alcotest Config List Pnp_figures Pnp_harness Pnp_util Report Run
