test/test_network.ml: Alcotest Arch Buffer Char Icmp Link List Msg Platform Pnp_driver Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Sim Socket Stack String Tcp Udp Units
