test/main.mli:
