test/test_harness.ml: Alcotest Arch Atomic_ctr Config List Lock Pnp_engine Pnp_figures Pnp_harness Pnp_proto Pnp_util Printf Run
