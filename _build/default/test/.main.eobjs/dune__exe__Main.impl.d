test/main.ml: Alcotest List Test_driver Test_edge Test_engine Test_extensions Test_fuzz Test_harness Test_network Test_proto Test_report Test_util Test_xkern
