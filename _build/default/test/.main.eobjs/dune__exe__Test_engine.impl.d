test/test_engine.ml: Alcotest Arch Array Atomic_ctr Buffer Eventq Gate Gen List Lock Membus Option Pnp_engine Pnp_util Printf Prng QCheck QCheck_alcotest Sim
