(* Report/figure plumbing units. *)

open Pnp_harness

let series_of label points =
  {
    Report.label;
    points = List.map (fun (procs, mean, ci90) -> { Report.procs; mean; ci90 }) points;
  }

let test_speedup_normalises () =
  let s = series_of "x" [ (1, 50.0, 1.0); (2, 100.0, 2.0); (4, 150.0, 3.0) ] in
  let sp = Report.speedup s in
  Alcotest.(check (float 1e-9)) "1 cpu -> 1.0" 1.0 (Report.value_at sp 1);
  Alcotest.(check (float 1e-9)) "2 cpus -> 2.0" 2.0 (Report.value_at sp 2);
  Alcotest.(check (float 1e-9)) "4 cpus -> 3.0" 3.0 (Report.value_at sp 4)

let test_speedup_scales_ci () =
  let s = series_of "x" [ (1, 100.0, 10.0); (2, 200.0, 20.0) ] in
  let sp = Report.speedup s in
  (match List.find_opt (fun p -> p.Report.procs = 2) sp.Report.points with
   | Some p -> Alcotest.(check (float 1e-9)) "ci scaled" 0.2 p.Report.ci90
   | None -> Alcotest.fail "missing point")

let test_value_at_missing_raises () =
  let s = series_of "x" [ (1, 5.0, 0.0) ] in
  Alcotest.check_raises "missing procs" Not_found (fun () ->
      ignore (Report.value_at s 7))

let test_metric_series_runs () =
  (* A tiny real sweep through the harness. *)
  let s =
    Report.metric_series ~label:"pkts" ~procs:[ 1; 2 ] ~seeds:1
      ~metric:(fun r -> float_of_int r.Run.packets)
      (fun procs ->
        Config.v ~protocol:Config.Udp ~side:Config.Send ~procs
          ~measure:(Pnp_util.Units.ms 100.0) ())
  in
  Alcotest.(check int) "two points" 2 (List.length s.Report.points);
  Alcotest.(check bool) "more packets with 2 CPUs" true
    (Report.value_at s 2 > Report.value_at s 1)

let test_print_table_smoke () =
  (* Exercise the printer (output discarded by alcotest's capture). *)
  Report.print_table ~title:"smoke" ~unit_label:"u"
    [
      series_of "a" [ (1, 1.0, 0.1); (2, 2.0, 0.2) ];
      series_of "b" [ (1, 3.0, 0.0) ];
    ]

let test_opts_procs () =
  let o = { Pnp_figures.Opts.default with Pnp_figures.Opts.max_procs = 3 } in
  Alcotest.(check (list int)) "1..3" [ 1; 2; 3 ] (Pnp_figures.Opts.procs o)

let test_registry_ids_unique_and_found () =
  let ids = List.map (fun e -> e.Pnp_figures.Registry.id) Pnp_figures.Registry.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Pnp_figures.Registry.find id with
      | Some e -> Alcotest.(check string) "found itself" id e.Pnp_figures.Registry.id
      | None -> Alcotest.failf "id %s not found" id)
    ids;
  Alcotest.(check bool) "unknown id absent" true
    (Pnp_figures.Registry.find "fig99" = None);
  (* every paper item is present *)
  List.iter
    (fun must ->
      Alcotest.(check bool) (must ^ " registered") true (List.mem must ids))
    [
      "fig2-3"; "fig4-5"; "fig6-7"; "fig8-9"; "fig10"; "table1"; "fig11"; "send-ooo";
      "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fig17-18"; "micro-cksum";
      "micro-maps"; "micro-lockwait";
    ]

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "speedup normalises" `Quick test_speedup_normalises;
        Alcotest.test_case "speedup scales CI" `Quick test_speedup_scales_ci;
        Alcotest.test_case "value_at missing raises" `Quick test_value_at_missing_raises;
        Alcotest.test_case "metric series runs" `Quick test_metric_series_runs;
        Alcotest.test_case "print table smoke" `Quick test_print_table_smoke;
        Alcotest.test_case "opts procs" `Quick test_opts_procs;
        Alcotest.test_case "registry complete" `Quick test_registry_ids_unique_and_found;
      ] );
  ]
