(* Two complete stacks talking over a simulated link: both ends run the
   full protocol machinery (no simulated peer), with latency, finite
   bandwidth and loss on the wire, and the blocking socket API on top. *)

open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let addr_a = 0x0a000001
let addr_b = 0x0a000002

let two_hosts ?(latency = Units.us 50.0) ?(bandwidth_mbps = 100.0) ?(loss_rate = 0.0)
    ?(mss = 1024) () =
  let plat = Platform.create ~seed:21 Arch.challenge_100 in
  let cfg = { Tcp.default_config with Tcp.mss } in
  let a = Stack.create plat ~tcp_config:cfg ~local_addr:addr_a () in
  let b = Stack.create plat ~tcp_config:cfg ~local_addr:addr_b () in
  let link = Link.connect plat ~latency ~bandwidth_mbps ~loss_rate ~a ~b () in
  (plat, a, b, link)

let run_to ?(horizon = Units.sec 120.0) plat = Sim.run ~until:horizon plat.Platform.sim

(* ------------------------------------------------------------------ *)

let test_udp_across_link () =
  let plat, a, b, link = two_hosts () in
  let got = ref [] in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"host-b" (fun () ->
        ignore
          (Udp.open_session b.Stack.udp ~local_port:9 ~remote_addr:addr_a ~remote_port:9
             ~recv:(fun m ->
               got := Msg.to_string m :: !got;
               Msg.destroy m)))
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"host-a" (fun () ->
        Sim.delay plat.Platform.sim (Units.us 100.0);
        let sess =
          Udp.open_session a.Stack.udp ~local_port:9 ~remote_addr:addr_b ~remote_port:9
            ~recv:(fun m -> Msg.destroy m)
        in
        Udp.send sess (Msg.of_string a.Stack.pool "across");
        Udp.send sess (Msg.of_string a.Stack.pool "the wire"))
  in
  run_to plat;
  Alcotest.(check (list string)) "datagrams crossed" [ "across"; "the wire" ]
    (List.rev !got);
  Alcotest.(check int) "two frames a->b" 2 (Link.frames_ab link);
  Alcotest.(check int) "none in flight" 0 (Link.in_flight link)

let test_tcp_handshake_and_transfer_across_link () =
  let plat, a, b, _link = two_hosts () in
  let received = Buffer.create 1024 in
  let server_done = ref false in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"server" (fun () ->
        let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:80 in
        let sock = Socket.Listener.accept lst in
        let rec drain () =
          match Socket.recv_string sock with
          | Some s ->
            Buffer.add_string received s;
            drain ()
          | None -> server_done := true
        in
        drain ())
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"client" (fun () ->
        Sim.delay plat.Platform.sim (Units.ms 1.0);
        let sock =
          Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:5000
            ~remote_addr:addr_b ~remote_port:80
        in
        Alcotest.(check string) "client established" "ESTABLISHED"
          (Tcp.state_name (Socket.session sock));
        for i = 0 to 9 do
          Socket.send_string sock (Printf.sprintf "chunk-%02d." i)
        done;
        Socket.close sock)
  in
  run_to plat;
  Alcotest.(check bool) "server saw end of stream" true !server_done;
  let expect = String.concat "" (List.init 10 (Printf.sprintf "chunk-%02d.")) in
  Alcotest.(check string) "whole stream, in order" expect (Buffer.contents received)

let test_tcp_echo_roundtrip () =
  let plat, a, b, _ = two_hosts () in
  let echoed = ref None in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"echo-server" (fun () ->
        let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:7 in
        let sock = Socket.Listener.accept lst in
        let rec loop () =
          match Socket.recv_string sock with
          | Some s ->
            Socket.send_string sock s;
            loop ()
          | None -> Socket.close sock
        in
        loop ())
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"client" (fun () ->
        Sim.delay plat.Platform.sim (Units.ms 1.0);
        let sock =
          Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:6000
            ~remote_addr:addr_b ~remote_port:7
        in
        Socket.send_string sock "ping over a real network";
        echoed := Socket.recv_string sock;
        Socket.close sock)
  in
  run_to plat;
  Alcotest.(check (option string)) "echo came back" (Some "ping over a real network")
    !echoed

let test_tcp_recovers_from_link_loss () =
  let plat, a, b, link = two_hosts ~loss_rate:0.08 () in
  let received = Buffer.create 4096 in
  let got_eof = ref false in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"server" (fun () ->
        let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:80 in
        let sock = Socket.Listener.accept lst in
        let rec drain () =
          match Socket.recv_string sock with
          | Some s ->
            Buffer.add_string received s;
            drain ()
          | None -> got_eof := true
        in
        drain ())
  in
  let payload = String.init 20_000 (fun i -> Char.chr (32 + (i mod 95))) in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"client" (fun () ->
        Sim.delay plat.Platform.sim (Units.ms 1.0);
        let sock =
          Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:5000
            ~remote_addr:addr_b ~remote_port:80
        in
        (* Send in 1000-byte application writes. *)
        String.iteri (fun _ _ -> ()) "";
        let n = String.length payload in
        let rec send_from off =
          if off < n then begin
            let len = min 1000 (n - off) in
            Socket.send_string sock (String.sub payload off len);
            send_from (off + len)
          end
        in
        send_from 0;
        Socket.close sock)
  in
  run_to ~horizon:(Units.sec 300.0) plat;
  Alcotest.(check bool) "the lossy link really dropped frames" true (Link.dropped link > 0);
  Alcotest.(check bool) "stream completed (eof)" true !got_eof;
  Alcotest.(check string) "every byte arrived in order" payload (Buffer.contents received)

let test_latency_reflected_in_rtt () =
  (* Connect across two different latencies; the higher-latency handshake
     completes later. *)
  let complete_at latency =
    let plat, a, b, _ = two_hosts ~latency () in
    let t = ref 0 in
    let _ =
      Sim.spawn plat.Platform.sim ~cpu:0 ~name:"server" (fun () ->
          Tcp.listen b.Stack.tcp ~local_port:80 ~accept:(fun sess ->
              Tcp.set_receiver sess (fun m -> Msg.destroy m)))
    in
    let _ =
      Sim.spawn plat.Platform.sim ~cpu:1 ~name:"client" (fun () ->
          Sim.delay plat.Platform.sim (Units.us 100.0);
          let _sock =
            Tcp.connect a.Stack.tcp ~local_port:5000 ~remote_addr:addr_b ~remote_port:80
          in
          t := Sim.now plat.Platform.sim)
    in
    run_to plat;
    !t
  in
  let fast = complete_at (Units.us 20.0) in
  let slow = complete_at (Units.ms 5.0) in
  Alcotest.(check bool)
    (Printf.sprintf "5ms link connects later (%d vs %d ns)" slow fast)
    true
    (slow > fast + (2 * Units.ms 4.0))

let test_bandwidth_serialisation () =
  (* At 10 Mbit/s a 4-KB frame takes ~3.3 ms to serialise; a burst of 10
     cannot arrive faster than ~33 ms. *)
  let plat, a, b, _ = two_hosts ~bandwidth_mbps:10.0 ~latency:(Units.us 1.0) () in
  let last_arrival = ref 0 and count = ref 0 in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"sink" (fun () ->
        ignore
          (Udp.open_session b.Stack.udp ~local_port:9 ~remote_addr:addr_a ~remote_port:9
             ~recv:(fun m ->
               incr count;
               last_arrival := Sim.now plat.Platform.sim;
               Msg.destroy m)))
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"burst" (fun () ->
        let sess =
          Udp.open_session a.Stack.udp ~local_port:9 ~remote_addr:addr_b ~remote_port:9
            ~recv:(fun m -> Msg.destroy m)
        in
        for _ = 1 to 10 do
          let m = Msg.create a.Stack.pool 4096 in
          Msg.fill_pattern m ~off:0 ~len:4096 ~stream_off:0;
          Udp.send sess m
        done)
  in
  run_to plat;
  Alcotest.(check int) "all arrived" 10 !count;
  Alcotest.(check bool)
    (Printf.sprintf "serialised burst took %.1fms" (float_of_int !last_arrival /. 1e6))
    true
    (!last_arrival > Units.ms 30.0)

let test_socket_recv_exactly () =
  let plat, a, b, _ = two_hosts () in
  let first = ref None and second = ref None in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"server" (fun () ->
        let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:80 in
        let sock = Socket.Listener.accept lst in
        first := Socket.recv_exactly sock 5;
        second := Socket.recv_exactly sock 6)
  in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:1 ~name:"client" (fun () ->
        Sim.delay plat.Platform.sim (Units.ms 1.0);
        let sock =
          Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:5000
            ~remote_addr:addr_b ~remote_port:80
        in
        (* One write; the reader splits it at its own boundaries. *)
        Socket.send_string sock "helloworld!";
        Socket.close sock)
  in
  run_to plat;
  Alcotest.(check (option string)) "first five" (Some "hello") !first;
  Alcotest.(check (option string)) "next six" (Some "world!") !second

(* ------------------------------------------------------------------ *)
(* ICMP echo                                                           *)
(* ------------------------------------------------------------------ *)

let test_ping_across_link () =
  let plat, a, _b, _ = two_hosts ~latency:(Units.us 300.0) () in
  let rtts = ref [] in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"pinger" (fun () ->
        for seq = 1 to 5 do
          Icmp.ping a.Stack.icmp ~dst:addr_b ~ident:1 ~seq
            ~on_reply:(fun ~rtt_ns -> rtts := rtt_ns :: !rtts)
            ();
          Sim.delay plat.Platform.sim (Units.ms 2.0)
        done)
  in
  run_to plat;
  Alcotest.(check int) "all replies" 5 (List.length !rtts);
  List.iter
    (fun rtt ->
      (* at least two propagation delays, and well under 10 ms *)
      Alcotest.(check bool)
        (Printf.sprintf "rtt %dns sane" rtt)
        true
        (rtt >= 2 * Units.us 300.0 && rtt < Units.ms 10.0))
    !rtts;
  Alcotest.(check int) "no bad replies" 0 (Icmp.bad_replies a.Stack.icmp)

let test_ping_rtt_tracks_latency () =
  let rtt_at latency =
    let plat, a, _b, _ = two_hosts ~latency () in
    let rtt = ref 0 in
    let _ =
      Sim.spawn plat.Platform.sim ~cpu:0 ~name:"pinger" (fun () ->
          Icmp.ping a.Stack.icmp ~dst:addr_b ~ident:2 ~seq:1
            ~on_reply:(fun ~rtt_ns -> rtt := rtt_ns)
            ())
    in
    run_to plat;
    !rtt
  in
  let fast = rtt_at (Units.us 50.0) in
  let slow = rtt_at (Units.ms 2.0) in
  Alcotest.(check bool)
    (Printf.sprintf "rtt grows with latency (%d vs %d)" slow fast)
    true
    (slow - fast > 2 * (Units.ms 2.0 - Units.us 50.0) - Units.us 100.0)

let test_unanswered_ping_times_out_silently () =
  (* Ping an address nobody owns: no reply, no crash, pending entry
     stays (no timeout machinery is claimed for ICMP). *)
  let plat, a, _b, _ = two_hosts () in
  let got = ref 0 in
  let _ =
    Sim.spawn plat.Platform.sim ~cpu:0 ~name:"pinger" (fun () ->
        Icmp.ping a.Stack.icmp ~dst:0x0a0000ff ~ident:3 ~seq:1
          ~on_reply:(fun ~rtt_ns:_ -> incr got)
          ())
  in
  run_to plat;
  Alcotest.(check int) "no reply" 0 !got;
  Alcotest.(check int) "request counted" 1 (Icmp.requests_sent a.Stack.icmp)

let suites =
  [
    ( "network.two-hosts",
      [
        Alcotest.test_case "UDP across the link" `Quick test_udp_across_link;
        Alcotest.test_case "TCP handshake + transfer" `Quick
          test_tcp_handshake_and_transfer_across_link;
        Alcotest.test_case "TCP echo roundtrip" `Quick test_tcp_echo_roundtrip;
        Alcotest.test_case "TCP recovers from link loss" `Quick
          test_tcp_recovers_from_link_loss;
        Alcotest.test_case "latency reflected in connect time" `Quick
          test_latency_reflected_in_rtt;
        Alcotest.test_case "bandwidth serialisation" `Quick test_bandwidth_serialisation;
        Alcotest.test_case "socket recv_exactly" `Quick test_socket_recv_exactly;
      ] );
    ( "network.icmp",
      [
        Alcotest.test_case "ping across the link" `Quick test_ping_across_link;
        Alcotest.test_case "rtt tracks latency" `Quick test_ping_rtt_tracks_latency;
        Alcotest.test_case "unanswered ping is silent" `Quick
          test_unanswered_ping_times_out_silently;
      ] );
  ]
