(* Shape tests for the beyond-the-paper experiments: the Section 8
   future-work comparison and the model ablations. *)

open Pnp_engine
open Pnp_harness

let fast = Pnp_util.Units.ms 250.0

let recv_cfg ?(procs = 8) ?(lock_disc = Lock.Fifo) ?(connections = 1)
    ?(placement = Config.Packet_level) ?(skew = 0.0) ?offered_mbps
    ?(driver_jitter_ns = 8000.0) ?(cksum_under_lock = false) ?(seed = 5) () =
  Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
    ~lock_disc ~connections ~placement ~skew ?offered_mbps ~driver_jitter_ns
    ~cksum_under_lock ~procs ~measure:fast ~seed ()

let tput c = (Run.run c).Run.throughput_mbps

let check_gt name a b =
  if not (a > b) then Alcotest.failf "%s: expected %.1f > %.1f" name a b

(* ------------------------------------------------------------------ *)
(* Connection-level vs packet-level parallelism                        *)
(* ------------------------------------------------------------------ *)

let test_clp_matches_plp_uniform () =
  let base ~placement =
    tput (recv_cfg ~connections:16 ~placement ~offered_mbps:720.0 ())
  in
  let plp = base ~placement:Config.Packet_level in
  let clp = base ~placement:Config.Connection_level in
  let ratio = clp /. plp in
  if ratio < 0.9 || ratio > 1.15 then
    Alcotest.failf "uniform load: CLP/PLP = %.2f, expected ~1" ratio

let test_clp_suffers_under_skew () =
  let at ~placement =
    tput (recv_cfg ~connections:16 ~placement ~skew:2.0 ~offered_mbps:720.0 ())
  in
  check_gt "PLP balances a skewed load better"
    (at ~placement:Config.Packet_level)
    (1.25 *. at ~placement:Config.Connection_level)

let test_offered_load_caps_throughput () =
  let unlimited = tput (recv_cfg ()) in
  let limited = tput (recv_cfg ~offered_mbps:100.0 ()) in
  check_gt "offered load respected" 115.0 limited;
  check_gt "well below saturation" unlimited limited;
  check_gt "most of the offered load is carried" limited 80.0

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let test_grant_policy_ordering () =
  let ooo disc = (Run.run (recv_cfg ~lock_disc:disc ())).Run.ooo_pct in
  let fifo = ooo Lock.Fifo in
  let random = ooo Lock.Unfair in
  let barging = ooo Lock.Barging in
  check_gt "random reorders more than FIFO" random (fifo +. 5.0);
  check_gt "barging (LIFO) is the worst" barging random

let test_coherency_penalty_hurts () =
  let at coherency_ns =
    tput
      { (recv_cfg ~lock_disc:Lock.Unfair ()) with
        Config.arch = { Arch.challenge_100 with Arch.coherency_ns } }
  in
  check_gt "removing the migration penalty helps at 8 CPUs" (at 0) (at 2600)

let test_jitter_drives_mcs_misordering () =
  let ooo driver_jitter_ns = (Run.run (recv_cfg ~driver_jitter_ns ())).Run.ooo_pct in
  Alcotest.(check (float 0.001)) "no jitter, no MCS misorder" 0.0 (ooo 0.0);
  check_gt "more jitter, more misorder" (ooo 16000.0) (ooo 2000.0 -. 0.001)

let test_cksum_under_lock_hurts () =
  let at cksum_under_lock = tput (recv_cfg ~cksum_under_lock ()) in
  check_gt "checksum outside locks wins (the Section 5.1 restructuring)"
    (at false) (1.15 *. at true)

let test_barging_lock_unit () =
  (* Grant order under Barging is newest-first. *)
  let sim = Sim.create () in
  let lock = Lock.create sim Arch.challenge_100 Lock.Barging ~name:"l" in
  let grants = ref [] in
  let _ =
    Sim.spawn sim ~name:"holder" (fun () ->
        Lock.acquire lock;
        Sim.delay sim 1_000_000;
        Lock.release lock)
  in
  for i = 1 to 4 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "w%d" i) (fun () ->
           Sim.delay sim (1000 * i);
           Lock.acquire lock;
           grants := i :: !grants;
           Sim.delay sim 10;
           Lock.release lock))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "newest first" [ 4; 3; 2; 1 ] (List.rev !grants)

let suites =
  [
    ( "ext.clp",
      [
        Alcotest.test_case "CLP ~ PLP on uniform load" `Quick test_clp_matches_plp_uniform;
        Alcotest.test_case "CLP suffers under skew" `Quick test_clp_suffers_under_skew;
        Alcotest.test_case "offered load caps throughput" `Quick
          test_offered_load_caps_throughput;
      ] );
    ( "ext.ablation",
      [
        Alcotest.test_case "grant policy vs ordering" `Quick test_grant_policy_ordering;
        Alcotest.test_case "coherency penalty hurts" `Quick test_coherency_penalty_hurts;
        Alcotest.test_case "jitter drives MCS misorder" `Quick
          test_jitter_drives_mcs_misordering;
        Alcotest.test_case "checksum under lock hurts" `Quick test_cksum_under_lock_hurts;
        Alcotest.test_case "barging lock grants newest-first" `Quick test_barging_lock_unit;
      ] );
  ]
