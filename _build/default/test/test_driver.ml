(* Driver-layer units: frame summaries (sniffer), taps, and link
   accounting. *)

open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let plat () = Platform.create Arch.challenge_100

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_sniffer_summarises_tcp () =
  let p = plat () in
  let pool = Mpool.create p in
  let payload = Msg.of_string pool "xyz" in
  let frame =
    Frame.build_tcp pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:1234 ~dport:80 ~seq:42
      ~ack:7 ~flags:Tcp_wire.flag_syn_ack ~win:4096 ~payload:(Some payload) ~checksum:true
  in
  let s = Sniffer.summarise frame in
  List.iter
    (fun part -> Alcotest.(check bool) (Printf.sprintf "has %S in %S" part s) true (contains s part))
    [ "TCP"; "10.0.0.1:1234"; "10.0.0.2:80"; "seq=42"; "ack=7"; "len=3"; "[SA]" ];
  Msg.destroy frame

let test_sniffer_summarises_udp () =
  let p = plat () in
  let pool = Mpool.create p in
  let payload = Msg.of_string pool "hello" in
  let frame =
    Frame.build_udp pool ~src:0x0a000001 ~dst:0x0a000002 ~sport:53 ~dport:9999 ~payload
      ~checksum:true
  in
  let s = Sniffer.summarise frame in
  List.iter
    (fun part -> Alcotest.(check bool) (Printf.sprintf "has %S" part) true (contains s part))
    [ "UDP"; "10.0.0.1:53"; "10.0.0.2:9999" ];
  Msg.destroy frame

let test_sniffer_handles_junk () =
  let p = plat () in
  let pool = Mpool.create p in
  let short = Msg.of_string pool "tiny" in
  Alcotest.(check bool) "short frame reported" true
    (contains (Sniffer.summarise short) "short");
  Msg.destroy short

let test_sniffer_with_driver () =
  let p = plat () in
  let stack = Stack.create p ~local_addr:0x0a000001 () in
  let sniffer = Sniffer.attach stack () in
  let _peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum:true ()
  in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:0 ~name:"app" (fun () ->
        let sess =
          Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
            ~remote_port:80
        in
        let m = Msg.create stack.Stack.pool 1024 in
        Msg.fill_pattern m ~off:0 ~len:1024 ~stream_off:0;
        Tcp.send sess m)
  in
  Sim.run ~until:(Units.sec 2.0) p.Platform.sim;
  let es = Sniffer.entries sniffer in
  Alcotest.(check bool) "entries recorded" true (List.length es >= 4);
  let outs = List.filter (fun e -> e.Sniffer.dir = `Out) es in
  let ins = List.filter (fun e -> e.Sniffer.dir = `In) es in
  Alcotest.(check bool) "both directions" true (outs <> [] && ins <> []);
  let times = List.map (fun e -> e.Sniffer.time_ns) es in
  Alcotest.(check bool) "timestamps non-decreasing" true
    (List.sort compare times = times);
  Alcotest.(check int) "seen counts everything" (List.length es) (Sniffer.seen sniffer);
  Sniffer.clear sniffer;
  Alcotest.(check int) "cleared" 0 (List.length (Sniffer.entries sniffer))

let test_link_accounting () =
  let p = plat () in
  let a = Stack.create p ~local_addr:0x0a000001 () in
  let b = Stack.create p ~local_addr:0x0a000002 () in
  let link = Link.connect p ~latency:(Units.us 10.0) ~a ~b () in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:0 ~name:"rx" (fun () ->
        ignore
          (Udp.open_session b.Stack.udp ~local_port:9 ~remote_addr:0x0a000001
             ~remote_port:9
             ~recv:(fun m -> Msg.destroy m)))
  in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:1 ~name:"tx" (fun () ->
        Sim.delay p.Platform.sim 1000;
        let sess =
          Udp.open_session a.Stack.udp ~local_port:9 ~remote_addr:0x0a000002
            ~remote_port:9
            ~recv:(fun m -> Msg.destroy m)
        in
        for _ = 1 to 5 do
          Udp.send sess (Msg.of_string a.Stack.pool "x")
        done)
  in
  Sim.run ~until:(Units.sec 1.0) p.Platform.sim;
  Alcotest.(check int) "five frames a->b" 5 (Link.frames_ab link);
  Alcotest.(check int) "none b->a" 0 (Link.frames_ba link);
  Alcotest.(check int) "none dropped" 0 (Link.dropped link);
  Alcotest.(check int) "none in flight at quiescence" 0 (Link.in_flight link)

let test_lossy_link_drops () =
  let p = plat () in
  let a = Stack.create p ~local_addr:0x0a000001 () in
  let b = Stack.create p ~local_addr:0x0a000002 () in
  let link = Link.connect p ~loss_rate:0.5 ~a ~b () in
  let got = ref 0 in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:0 ~name:"rx" (fun () ->
        ignore
          (Udp.open_session b.Stack.udp ~local_port:9 ~remote_addr:0x0a000001
             ~remote_port:9
             ~recv:(fun m -> incr got; Msg.destroy m)))
  in
  let _ =
    Sim.spawn p.Platform.sim ~cpu:1 ~name:"tx" (fun () ->
        Sim.delay p.Platform.sim 1000;
        let sess =
          Udp.open_session a.Stack.udp ~local_port:9 ~remote_addr:0x0a000002
            ~remote_port:9
            ~recv:(fun m -> Msg.destroy m)
        in
        for _ = 1 to 100 do
          Udp.send sess (Msg.of_string a.Stack.pool "datagram")
        done)
  in
  Sim.run ~until:(Units.sec 2.0) p.Platform.sim;
  Alcotest.(check int) "drops + deliveries = sent" 100 (!got + Link.dropped link);
  Alcotest.(check bool)
    (Printf.sprintf "roughly half dropped (%d)" (Link.dropped link))
    true
    (Link.dropped link > 25 && Link.dropped link < 75)

let suites =
  [
    ( "driver.sniffer",
      [
        Alcotest.test_case "summarises TCP" `Quick test_sniffer_summarises_tcp;
        Alcotest.test_case "summarises UDP" `Quick test_sniffer_summarises_udp;
        Alcotest.test_case "handles junk" `Quick test_sniffer_handles_junk;
        Alcotest.test_case "records both directions" `Quick test_sniffer_with_driver;
      ] );
    ( "driver.link",
      [
        Alcotest.test_case "accounting" `Quick test_link_accounting;
        Alcotest.test_case "lossy link drops" `Quick test_lossy_link_drops;
      ] );
  ]
