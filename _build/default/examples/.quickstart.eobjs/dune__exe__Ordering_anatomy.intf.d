examples/ordering_anatomy.mli:
