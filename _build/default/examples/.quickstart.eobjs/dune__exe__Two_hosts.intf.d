examples/two_hosts.mli:
