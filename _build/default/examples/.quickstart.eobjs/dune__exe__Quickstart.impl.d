examples/quickstart.ml: Arch Msg Option Platform Pnp_driver Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Sim Stack Tcp Tcp_peer
