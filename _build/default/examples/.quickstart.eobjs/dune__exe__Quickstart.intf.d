examples/quickstart.mli:
