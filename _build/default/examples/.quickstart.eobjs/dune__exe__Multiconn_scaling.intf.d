examples/multiconn_scaling.mli:
