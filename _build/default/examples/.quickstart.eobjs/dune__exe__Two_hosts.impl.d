examples/two_hosts.ml: Arch Format Icmp Link List Platform Pnp_driver Pnp_engine Pnp_proto Pnp_util Printf Sim Sniffer Socket Stack String Units
