examples/ordering_anatomy.ml: Config List Lock Pnp_engine Pnp_harness Pnp_util Printf Run
