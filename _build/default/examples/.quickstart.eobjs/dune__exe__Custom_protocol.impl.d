examples/custom_protocol.ml: Arch Fddi Int Ip Msg Platform Pnp_driver Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Sim Stack Timewheel Xmap
