examples/multiconn_scaling.ml: Config List Lock Pnp_engine Pnp_harness Pnp_util Printf Run
