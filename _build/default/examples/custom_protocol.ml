(* Building a protocol on the x-kernel substrate directly: a tiny
   request/reply protocol ("PING", IP protocol number 200) implemented
   with the message tool, the map manager for demultiplexing, and the
   timing wheel for request timeouts — the same infrastructure FDDI, IP,
   UDP and TCP are built on.

   Run with: dune exec examples/custom_protocol.exe *)

open Pnp_engine
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let proto_number = 200
let header_bytes = 8 (* ident (4) + kind (1) + pad (3) *)

module Ident_map = Xmap.Make (struct
  type t = int

  let hash x = x * 0x9e3779b1
  let equal = Int.equal
end)

let () =
  let plat = Platform.create ~seed:7 Arch.challenge_100 in
  let stack = Stack.create plat ~local_addr:0x0a000001 () in
  (* Loop the wire back: we talk to ourselves, like the paper's in-memory
     drivers talk to a simulated peer. *)
  Fddi.set_transmit stack.Stack.fddi (fun frame -> Fddi.input stack.Stack.fddi frame);

  (* Pending requests, demultiplexed by identifier through the map manager
     (chained-bucket hash with a 1-behind cache and a counting lock). *)
  let pending : (unit -> unit) Ident_map.t =
    Ident_map.create plat ~name:"ping.pending" ()
  in
  let wheel = stack.Stack.wheel in
  let replies = ref 0 and timeouts = ref 0 in

  let send_packet ~ident ~kind payload =
    Msg.push payload header_bytes;
    Msg.set_u32 payload 0 ident;
    Msg.set_u8 payload 4 kind;
    Ip.output stack.Stack.ip ~proto:proto_number ~dst:0x0a000001 payload
  in

  (* The protocol's receive side: replies complete pending requests;
     requests are echoed back as replies. *)
  Ip.register stack.Stack.ip ~proto:proto_number (fun ~src:_ ~dst:_ msg ->
      let ident = Msg.get_u32 msg 0 in
      let kind = Msg.get_u8 msg 4 in
      Msg.pop msg header_bytes;
      if kind = 0 then (* request: echo it back *)
        send_packet ~ident ~kind:1 msg
      else begin
        (match Ident_map.lookup pending ident with
         | Some complete ->
           ignore (Ident_map.remove pending ident);
           complete ()
         | None -> ());
        Msg.destroy msg
      end);

  (* Issue requests from two processors, with timeouts on the wheel. *)
  for cpu = 0 to 1 do
    ignore
      (Sim.spawn plat.Platform.sim ~cpu ~name:(Printf.sprintf "pinger-%d" cpu)
         (fun () ->
           for i = 0 to 9 do
             let ident = (cpu * 100) + i in
             let timeout =
               Timewheel.schedule wheel ~after:(Pnp_util.Units.ms 50.0) (fun () ->
                   if Ident_map.remove pending ident then incr timeouts)
             in
             Ident_map.insert pending ident (fun () ->
                 ignore (Timewheel.cancel wheel timeout);
                 incr replies);
             send_packet ~ident ~kind:0 (Msg.of_string stack.Stack.pool "ping!");
             Sim.delay plat.Platform.sim (Pnp_util.Units.ms 1.0)
           done))
  done;

  Sim.run ~until:(Pnp_util.Units.ms 200.0) plat.Platform.sim;
  Printf.printf "requests sent:     20\n";
  Printf.printf "replies received:  %d\n" !replies;
  Printf.printf "timeouts fired:    %d\n" !timeouts;
  Printf.printf "map leftovers:     %d\n" (Ident_map.length pending);
  Printf.printf "ip datagrams:      %d out / %d in\n"
    (Ip.datagrams_out stack.Stack.ip) (Ip.datagrams_in stack.Stack.ip)
