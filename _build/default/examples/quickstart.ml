(* Quickstart: bring up a parallel TCP/IP stack on a simulated 4-CPU
   Challenge, connect over the in-memory driver, move some data from four
   processors at once, and look at the statistics.

   Run with: dune exec examples/quickstart.exe *)

open Pnp_engine
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let () =
  (* A simulated 100 MHz SGI Challenge with the paper's baseline toggles:
     IRIX-style (unfair) mutexes, LL/SC reference counts, per-thread
     message caching. *)
  let plat = Platform.create ~seed:42 Arch.challenge_100 in

  (* FDDI / IP / UDP / TCP, and the simulated TCP receiver below FDDI that
     consumes segments and acknowledges every other one. *)
  let stack = Stack.create plat ~local_addr:0x0a000001 () in
  let peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum:true ()
  in

  (* One thread wired per processor, all sending on a single connection —
     the paper's packet-level parallelism. *)
  let session = ref None in
  ignore
    (Sim.spawn plat.Platform.sim ~cpu:0 ~name:"connect" (fun () ->
         session :=
           Some
             (Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002
                ~remote_port:80)));
  for cpu = 0 to 3 do
    ignore
      (Sim.spawn plat.Platform.sim ~cpu ~name:(Printf.sprintf "sender-%d" cpu) (fun () ->
           while !session = None do
             Sim.delay plat.Platform.sim (Pnp_util.Units.us 10.0)
           done;
           let sess = Option.get !session in
           for i = 0 to 99 do
             let msg = Msg.create stack.Stack.pool 4096 in
             Msg.fill_pattern msg ~off:0 ~len:4096 ~stream_off:(i * 4096);
             Tcp.send sess msg
           done))
  done;

  (* Run one simulated second. *)
  Sim.run ~until:(Pnp_util.Units.sec 1.0) plat.Platform.sim;

  let sess = Option.get !session in
  let st = Tcp.stats sess in
  Printf.printf "connection state:     %s\n" (Tcp.state_name sess);
  Printf.printf "bytes sent:           %d (400 packets x 4096B from 4 CPUs)\n"
    st.Tcp.bytes_out;
  Printf.printf "bytes at the driver:  %d\n" (Tcp_peer.bytes_received peer);
  Printf.printf "data segments:        %d\n" (Tcp_peer.data_segments peer);
  Printf.printf "acks received:        %d (every other packet)\n" st.Tcp.acks_in;
  Printf.printf "retransmissions:      %d (error-free network)\n" st.Tcp.rexmits;
  Printf.printf "wire misordering:     %d segments\n" (Tcp_peer.wire_misorders peer);
  Printf.printf "time on lock waits:   %.1f us across senders\n"
    (float_of_int (Tcp.lock_wait_ns sess) /. 1e3);
  Printf.printf "simulated time used:  %.3f ms\n"
    (float_of_int (Sim.now plat.Platform.sim) /. 1e6)
