(* Two complete hosts over a simulated wire: no simulated peer here —
   both ends run the full FDDI/IP/TCP machinery, the link adds latency
   and finite bandwidth, and the blocking socket API drives it like an
   ordinary network program.  A sniffer prints what actually crossed.

   Run with: dune exec examples/two_hosts.exe *)

open Pnp_engine
open Pnp_util
open Pnp_proto
open Pnp_driver

let addr_a = 0x0a000001 (* 10.0.0.1, the client *)
let addr_b = 0x0a000002 (* 10.0.0.2, the echo server *)

let () =
  let plat = Platform.create ~seed:9 Arch.challenge_100 in
  let a = Stack.create plat ~local_addr:addr_a () in
  let b = Stack.create plat ~local_addr:addr_b () in
  let sniffer = Sniffer.attach a () in
  let link =
    Link.connect plat ~latency:(Units.us 200.0) ~bandwidth_mbps:100.0 ~loss_rate:0.02
      ~a ~b ()
  in

  (* Host B: an echo server. *)
  ignore
    (Sim.spawn plat.Platform.sim ~cpu:0 ~name:"echo-server" (fun () ->
         let lst = Socket.Listener.listen plat b.Stack.pool b.Stack.tcp ~port:7 in
         let sock = Socket.Listener.accept lst in
         let rec loop () =
           match Socket.recv_string sock with
           | Some s ->
             Socket.send_string sock (String.uppercase_ascii s);
             loop ()
           | None -> Socket.close sock
         in
         loop ()));

  (* Host A: the client. *)
  let replies = ref [] in
  ignore
    (Sim.spawn plat.Platform.sim ~cpu:1 ~name:"client" (fun () ->
         Sim.delay plat.Platform.sim (Units.ms 1.0);
         let sock =
           Socket.connect plat a.Stack.pool a.Stack.tcp ~local_port:5000
             ~remote_addr:addr_b ~remote_port:7
         in
         List.iter
           (fun line ->
             Socket.send_string sock line;
             match Socket.recv_string sock with
             | Some reply -> replies := reply :: !replies
             | None -> ())
           [ "hello, network"; "packets cross a real wire"; "with 2% loss" ];
         Socket.close sock));

  (* And a ping, for the road. *)
  let rtts = ref [] in
  ignore
    (Sim.spawn plat.Platform.sim ~cpu:2 ~name:"pinger" (fun () ->
         Sim.delay plat.Platform.sim (Units.ms 30.0);
         for seq = 1 to 3 do
           Icmp.ping a.Stack.icmp ~dst:addr_b ~ident:77 ~seq
             ~on_reply:(fun ~rtt_ns -> rtts := rtt_ns :: !rtts)
             ();
           Sim.delay plat.Platform.sim (Units.ms 5.0)
         done));

  Sim.run ~until:(Units.sec 60.0) plat.Platform.sim;

  Printf.printf "ping 10.0.0.2: %d/3 replies, rtts = %s\n"
    (List.length !rtts)
    (String.concat ", "
       (List.rev_map (fun ns -> Printf.sprintf "%.0fus" (float_of_int ns /. 1e3)) !rtts));
  Printf.printf "\necho replies received by the client:\n";
  List.iter (fun r -> Printf.printf "  %S\n" r) (List.rev !replies);
  Printf.printf "\nlink: %d frames ->, %d frames <-, %d dropped by the 2%% loss\n"
    (Link.frames_ab link) (Link.frames_ba link) (Link.dropped link);
  Printf.printf "\nfirst frames on host A's wire:\n";
  List.iteri
    (fun i e -> if i < 10 then Format.printf "%a@." Sniffer.pp_entry e)
    (Sniffer.entries sniffer)
