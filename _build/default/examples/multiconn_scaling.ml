(* Section 4.3: a single TCP connection cannot use many processors — the
   connection-state lock serialises everything — but one connection per
   processor scales, because each connection brings its own lock.

   Run with: dune exec examples/multiconn_scaling.exe *)

open Pnp_engine
open Pnp_harness

let run_point ~connections procs =
  (* A single shared connection is packet-level parallelism (any CPU takes
     any packet); one connection per CPU uses the paper's static
     assignment. *)
  let placement =
    if connections = 1 then Config.Packet_level else Config.Connection_level
  in
  Run.run
    (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
       ~lock_disc:Lock.Fifo ~connections ~placement ~procs
       ~measure:(Pnp_util.Units.ms 400.0) ())

let () =
  Printf.printf
    "TCP receive side, 4KB packets, MCS locks: one shared connection vs\n\
     one connection per processor.\n\n";
  Printf.printf "%5s | %16s | %20s | %10s\n" "CPUs" "1 connection" "conn-per-CPU"
    "advantage";
  List.iter
    (fun procs ->
      let single = run_point ~connections:1 procs in
      let multi = run_point ~connections:procs procs in
      Printf.printf "%5d | %11.1f Mb/s | %15.1f Mb/s | %9.2fx\n%!" procs
        single.Run.throughput_mbps multi.Run.throughput_mbps
        (multi.Run.throughput_mbps /. single.Run.throughput_mbps))
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\nThe price (Section 4.2): with multiple connections the application\n\
     must manage ordering across connections itself.\n"
