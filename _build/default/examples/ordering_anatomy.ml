(* The paper's headline result, reproduced in miniature: on the receive
   side of a single TCP connection, non-FIFO mutexes reorder contending
   threads — and therefore packets — which defeats TCP header prediction
   and makes throughput *fall* as processors are added.  FIFO (MCS) queue
   locks preserve order and recover the loss.

   Run with: dune exec examples/ordering_anatomy.exe *)

open Pnp_engine
open Pnp_harness

let run_point ~lock_disc ~assume_in_order procs =
  Run.run
    (Config.v ~protocol:Config.Tcp ~side:Config.Recv ~payload:4096 ~checksum:true
       ~lock_disc ~assume_in_order ~procs
       ~measure:(Pnp_util.Units.ms 400.0) ())

let () =
  Printf.printf
    "TCP receive side, one connection, 4KB packets, checksumming on.\n\
     Watch the mutex column: past ~4 CPUs, out-of-order arrivals (ooo%%)\n\
     explode and throughput drops.  MCS locks keep packets in order.\n\n";
  Printf.printf "%5s | %18s | %18s | %14s\n" "CPUs" "mutex Mb/s (ooo%)"
    "MCS Mb/s (ooo%)" "in-order bound";
  List.iter
    (fun procs ->
      let mutex = run_point ~lock_disc:Lock.Unfair ~assume_in_order:false procs in
      let mcs = run_point ~lock_disc:Lock.Fifo ~assume_in_order:false procs in
      let bound = run_point ~lock_disc:Lock.Unfair ~assume_in_order:true procs in
      Printf.printf "%5d | %10.1f (%4.1f%%) | %10.1f (%4.1f%%) | %14.1f\n%!" procs
        mutex.Run.throughput_mbps mutex.Run.ooo_pct mcs.Run.throughput_mbps
        mcs.Run.ooo_pct bound.Run.throughput_mbps)
    [ 1; 2; 4; 6; 8 ];
  Printf.printf
    "\nWhy: the header-prediction fast path fires only when a segment's\n\
     sequence number is exactly the one expected; a reordered segment takes\n\
     the slow path (reassembly queue, immediate duplicate ack) while every\n\
     other processor waits on the connection-state lock.\n"
