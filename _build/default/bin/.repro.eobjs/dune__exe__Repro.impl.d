bin/repro.ml: Arch Arg Cmd Cmdliner Config Format List Platform Pnp_driver Pnp_engine Pnp_figures Pnp_harness Pnp_proto Pnp_util Pnp_xkern Printf Run Sim Sniffer Stack Tcp_peer Term
