bin/repro.mli:
