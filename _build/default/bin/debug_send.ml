(* Scratch diagnostic for the TCP send path. *)
open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto
open Pnp_driver

let () =
  let procs = int_of_string Sys.argv.(1) in
  let plat = Platform.create ~seed:1 Arch.challenge_100 in
  let cfg = { Tcp.default_config with Tcp.checksum = false; mss = 4096 } in
  let stack = Stack.create plat ~tcp_config:cfg ~local_addr:0x0a000001 () in
  let peer =
    Tcp_peer.attach stack ~peer_addr:0x0a000002 ~ack_window:(1 lsl 20) ~checksum:false ()
  in
  let sess = ref None in
  ignore
    (Sim.spawn plat.Platform.sim ~cpu:0 ~name:"conn" (fun () ->
         sess :=
           Some (Tcp.connect stack.Stack.tcp ~local_port:5000 ~remote_addr:0x0a000002 ~remote_port:80)));
  for i = 0 to procs - 1 do
    ignore
      (Sim.spawn plat.Platform.sim ~cpu:i ~name:(Printf.sprintf "w%d" i) (fun () ->
           while !sess = None do
             Sim.delay plat.Platform.sim 1000
           done;
           let s = Option.get !sess in
           while true do
             Costs.charge plat Costs.app_send;
             let m = Msg.create stack.Stack.pool 4096 in
             Costs.fill_payload plat m ~off:0 ~len:4096 ~stream_off:0;
             Tcp.send s m
           done))
  done;
  Sim.run ~until:(Units.ms 600.0) plat.Platform.sim;
  let s = Option.get !sess in
  let st = Tcp.stats s in
  Printf.printf
    "procs=%d bytes(peer)=%d segs_out=%d acks_in=%d dup_acks=%d rexmits=%d pred_hits=%d \
     pred_miss=%d cwnd=%d wire_mis=%d peer_acks=%d bytes_out=%d\n"
    procs
    (Tcp_peer.bytes_received peer)
    st.Tcp.segs_out st.Tcp.acks_in st.Tcp.dup_acks st.Tcp.rexmits st.Tcp.pred_hits
    st.Tcp.pred_misses (Tcp.cwnd s) (Tcp_peer.wire_misorders peer) (Tcp_peer.acks_sent peer)
    st.Tcp.bytes_out
