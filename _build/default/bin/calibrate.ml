(* Developer tool: print the cost-model calibration grid against the
   paper's Section 3 anchors (not part of the figure harness). *)
open Pnp_harness

let () =
  let measure = Pnp_util.Units.ms 400.0 in
  let grid =
    [
      ("UDP send 4K ck-off", Config.v ~protocol:Config.Udp ~side:Config.Send ~checksum:false ~measure ());
      ("UDP send 4K ck-on ", Config.v ~protocol:Config.Udp ~side:Config.Send ~checksum:true ~measure ());
      ("UDP recv 4K ck-off", Config.v ~protocol:Config.Udp ~side:Config.Recv ~checksum:false ~measure ());
      ("UDP recv 4K ck-on ", Config.v ~protocol:Config.Udp ~side:Config.Recv ~checksum:true ~measure ());
      ("TCP send 4K ck-off", Config.v ~protocol:Config.Tcp ~side:Config.Send ~checksum:false ~measure ());
      ("TCP send 4K ck-on ", Config.v ~protocol:Config.Tcp ~side:Config.Send ~checksum:true ~measure ());
      ("TCP recv 4K ck-off", Config.v ~protocol:Config.Tcp ~side:Config.Recv ~checksum:false ~measure ());
      ("TCP recv 4K ck-on ", Config.v ~protocol:Config.Tcp ~side:Config.Recv ~checksum:true ~measure ());
    ]
  in
  Printf.printf "%-20s %6s %8s %8s %6s %6s %6s\n" "config" "procs" "Mb/s" "pkts" "ooo%" "wait%" "miss%";
  List.iter
    (fun (label, cfg) ->
      List.iter
        (fun procs ->
          let r = Run.run { cfg with Config.procs } in
          Printf.printf "%-20s %6d %8.1f %8d %6.1f %6.1f %6.1f\n%!" label procs
            r.Run.throughput_mbps r.Run.packets r.Run.ooo_pct r.Run.lock_wait_pct
            r.Run.pred_miss_pct)
        [ 1; 2; 4; 8 ])
    grid
